// Distributed spectrum run: the quickstart nanowire sweep executed on the
// Fig. 9 rank hierarchy — momentum groups sized by the dynamic allocation,
// energy groups pulling points from the shared work queue, work stealing
// when a k point finishes early.
//
//   $ ./build/distributed_spectrum [ranks]
//
// With 1 rank the engine degenerates to the flat in-process loop, so the
// printed spectrum is identical for every rank count.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "omen/simulator.hpp"
#include "transport/bands.hpp"

using namespace omenx;

int main(int argc, char** argv) {
  const int ranks = argc > 1 ? std::atoi(argv[1]) : 4;

  // Same device as the quickstart, but swept over 3 transverse momenta so
  // the momentum level of the hierarchy is real.
  omen::SimulationConfig cfg;
  cfg.structure = lattice::make_nanowire(0.6, 8);
  cfg.structure.periodicity = lattice::Periodicity::kZ;
  cfg.num_k = 3;
  cfg.point.obc = transport::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
  cfg.num_ranks = ranks;            // CommWorld size: momentum x energy
  cfg.ranks_per_energy_group = 1;   // widen for spatial decomposition
  cfg.work_stealing = true;
  omen::Simulator sim(cfg);
  std::printf("device: %s, %d communicator ranks\n",
              cfg.structure.name.c_str(), ranks);

  const auto bands = sim.bands(11);
  const auto window = transport::band_window(bands);
  std::vector<double> grid;
  for (double e = window.emin - 0.05; e <= window.emin + 0.7; e += 0.05)
    grid.push_back(e);
  const auto spectrum = sim.transmission_spectrum(grid);

  std::printf("%12s %12s %12s\n", "E (eV)", "T(E)", "channels");
  for (std::size_t i = 0; i < grid.size(); ++i)
    std::printf("%12.3f %12.4f %12lld\n", grid[i], spectrum.transmission[i],
                static_cast<long long>(spectrum.propagating[i]));

  const auto& stats = sim.last_sweep_stats();
  std::printf("\nengine: %lld tasks over %d ranks (%d energy groups), "
              "%lld stolen, wall %.3f s\n",
              static_cast<long long>(stats.tasks_total), stats.ranks,
              stats.energy_groups,
              static_cast<long long>(stats.tasks_stolen),
              stats.wall_seconds);
  for (std::size_t r = 0; r < stats.tasks_per_rank.size(); ++r)
    std::printf("  rank %zu: %lld tasks, %.3f s busy\n", r,
                static_cast<long long>(stats.tasks_per_rank[r]),
                stats.busy_seconds_per_rank[r]);
  return 0;
}
