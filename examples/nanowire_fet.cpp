// Gate-all-around nanowire FET: the Fig. 1(a)/Fig. 10 scenario.
//
// Applies a gate-controlled barrier to a Si nanowire, solves transport in
// the on and off states, and reports charge/current along the channel.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "omen/simulator.hpp"
#include "poisson/poisson1d.hpp"
#include "transport/bands.hpp"

using namespace omenx;

int main() {
  omen::SimulationConfig cfg;
  cfg.structure = lattice::make_nanowire(0.6, 16);
  cfg.point.obc = transport::ObcAlgorithm::kFeast;
  cfg.point.solver = transport::SolverAlgorithm::kSplitSolve;
  cfg.point.partitions = 2;
  omen::Simulator sim(cfg);

  const auto window = transport::band_window(sim.bands(11));
  const double mu_s = window.emin + 0.06;
  std::vector<double> grid;
  for (double e = window.emin - 0.02; e <= mu_s + 0.3; e += 0.02)
    grid.push_back(e);

  const lattice::DeviceRegions regions{5, 6, 5};
  poisson::PoissonOptions popt;
  popt.screening_length_cells = 2.0;

  std::printf("%10s %16s %16s\n", "state", "barrier (eV)", "Id (2e/h*eV)");
  for (const double vg : {-0.4, 0.0}) {
    auto pot = poisson::solve_device_potential(regions, vg, 0.2, {}, popt);
    for (auto& v : pot) v = -v;  // electron energy convention
    const double barrier = *std::max_element(pot.begin(), pot.end());
    const double id = sim.current(grid, mu_s, mu_s - 0.2, &pot);
    std::printf("%10s %16.3f %16.6e\n", vg < -0.1 ? "off" : "on", barrier, id);
  }

  // Channel-resolved picture in the off state.
  auto pot = poisson::solve_device_potential(regions, -0.4, 0.2, {}, popt);
  for (auto& v : pot) v = -v;
  const auto res = sim.solve_point(mu_s, &pot);
  const auto per_cell = transport::density_per_cell(
      res.orbital_density, cfg.structure.orbitals_per_cell(), 16);
  std::printf("\nelectron density along the channel (off state):\n");
  for (std::size_t c = 0; c < per_cell.size(); ++c)
    std::printf("  cell %2zu: %.3e%s\n", c, per_cell[c],
                (c >= 5 && c < 11) ? "   <- gate" : "");
  if (!res.interface_current.empty())
    std::printf("\nbond current spread (ballistic conservation): %.2e\n",
                *std::max_element(res.interface_current.begin(),
                                  res.interface_current.end()) -
                    *std::min_element(res.interface_current.begin(),
                                      res.interface_current.end()));
  return 0;
}
