// Lithiated SnO battery anode: the Fig. 1(e,f) scenario.
//
// Sweeps the lithiation capacity, reporting the volume expansion and the
// two-terminal electronic conductance of the anode stack.
#include <cstdio>
#include <vector>

#include "omen/simulator.hpp"
#include "transport/bands.hpp"

using namespace omenx;

int main() {
  std::printf("%12s %12s %14s\n", "C (mAh/g)", "dV/V0", "T at probe");
  for (const double capacity : {0.0, 500.0, 1000.0}) {
    omen::SimulationConfig cfg;
    cfg.structure = lattice::make_sno_anode(12, capacity > 0 ? 4 : 0, capacity);
    cfg.functional = dft::Functional::kPBE;
    cfg.build.cutoff_nm = 0.8;
    cfg.point.obc = transport::ObcAlgorithm::kShiftInvert;
    cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
    omen::Simulator sim(cfg);

    const auto window = transport::band_window(sim.bands(7));
    // Find the first conducting energy from the band bottom.
    double t_probe = 0.0;
    for (int i = 0; i < 60; ++i) {
      const auto res = sim.solve_point(window.emin + 0.05 * i);
      if (res.num_propagating > 0) {
        t_probe = res.transmission;
        break;
      }
    }
    std::printf("%12.0f %12.3f %14.4f\n", capacity,
                lattice::volume_expansion(capacity), t_probe);
  }
  std::printf("\nthe lattice expands with lithiation (Fig. 1e); the pristine "
              "stack conducts through the Sn/O backbone (Fig. 1f).\n");
  return 0;
}
