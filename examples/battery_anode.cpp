// Lithiated SnO battery anode: the Fig. 1(e,f) scenario.
//
// Sweeps the lithiation capacity, reporting the volume expansion and the
// two-terminal electronic conductance of the anode stack, then solves the
// equilibrium charge of the pristine stack self-consistently with the
// Anderson-accelerated SCF loop (two-contact ballistic charge at equal
// chemical potentials).
#include <cstdio>
#include <vector>

#include "omen/simulator.hpp"
#include "poisson/scf.hpp"
#include "transport/bands.hpp"

using namespace omenx;

int main() {
  std::printf("%12s %12s %14s\n", "C (mAh/g)", "dV/V0", "T at probe");
  for (const double capacity : {0.0, 500.0, 1000.0}) {
    omen::SimulationConfig cfg;
    cfg.structure = lattice::make_sno_anode(12, capacity > 0 ? 4 : 0, capacity);
    cfg.functional = dft::Functional::kPBE;
    cfg.build.cutoff_nm = 0.8;
    cfg.point.obc = transport::ObcAlgorithm::kShiftInvert;
    cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
    omen::Simulator sim(cfg);

    const auto window = transport::band_window(sim.bands(7));
    // Find the first conducting energy from the band bottom.
    double t_probe = 0.0;
    for (int i = 0; i < 60; ++i) {
      const auto res = sim.solve_point(window.emin + 0.05 * i);
      if (res.num_propagating > 0) {
        t_probe = res.transmission;
        break;
      }
    }
    std::printf("%12.0f %12.3f %14.4f\n", capacity,
                lattice::volume_expansion(capacity), t_probe);
  }
  std::printf("\nthe lattice expands with lithiation (Fig. 1e); the pristine "
              "stack conducts through the Sn/O backbone (Fig. 1f).\n");

  // --- self-consistent equilibrium charge of the pristine stack --------
  omen::SimulationConfig cfg;
  cfg.structure = lattice::make_sno_anode(12, 0, 0.0);
  cfg.functional = dft::Functional::kPBE;
  cfg.build.cutoff_nm = 0.8;
  cfg.point.obc = transport::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
  omen::Simulator sim(cfg);
  const auto window = transport::band_window(sim.bands(7));
  const double mu = window.emin + 0.15;
  std::vector<double> grid;
  for (double e = window.emin - 0.02; e <= mu + 0.25; e += 0.02)
    grid.push_back(e);

  poisson::ScfOptions scf;
  scf.poisson.screening_length_cells = 3.0;
  scf.poisson.charge_coupling = 0.02;
  // The 1/v van-Hove weight at the 1-D band edge makes the charge noisy at
  // this grid resolution; the tolerances sit just above that noise floor.
  scf.tol = 1e-2;
  scf.charge_tol = 5e-2;   // dual potential + charge criterion
  scf.anderson_depth = 3;  // Anderson(3) acceleration
  scf.mixing = 0.3;
  scf.max_iter = 40;
  const lattice::DeviceRegions regions{4, 4, 4};
  poisson::ChargeModel charge = [&](const std::vector<double>& v) {
    return sim.charge_density(grid, mu, mu, &v);  // equilibrium: mu_l = mu_r
  };
  const auto res =
      poisson::self_consistent_potential(regions, 0.0, 0.0, charge, scf);
  int anderson_steps = 0;
  for (const auto& it : res.history) anderson_steps += it.anderson ? 1 : 0;
  std::printf("\nequilibrium SCF: %d iterations (%d Anderson steps), "
              "residuals |dV| %.1e / |drho| %.1e, converged: %s\n",
              res.iterations, anderson_steps, res.residual,
              res.charge_residual, res.converged ? "yes" : "no");
  return 0;
}
