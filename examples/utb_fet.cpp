// Ultra-thin-body FET with transverse momentum: the Fig. 1(c) scenario.
//
// The UTB film is periodic out-of-plane, so transport observables are
// averaged over a k grid — H(k), S(k) are generated from the 3-D blocks in
// OMEN (the paper notes CP2K provides no k dependence itself).  The zone
// average uses trapezoidal BZ weights (the closed [0, pi] grid half-weights
// both edges).  The second half runs the self-consistent Id-Vgs transfer
// sweep with the accelerated SCF loop: Anderson(3) mixing and warm starts
// from the previous bias point.
#include <cstdio>
#include <vector>

#include "omen/simulator.hpp"
#include "transport/bands.hpp"

using namespace omenx;

int main() {
  omen::SimulationConfig cfg;
  cfg.structure = lattice::make_utb(0.8, 8);
  cfg.num_k = 3;  // transverse momentum points in [0, pi]
  cfg.point.obc = transport::ObcAlgorithm::kFeast;
  cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
  omen::Simulator sim(cfg);
  std::printf("device: %s, %lld k-points, N_SS = %lld\n",
              cfg.structure.name.c_str(), static_cast<long long>(cfg.num_k),
              static_cast<long long>(sim.hamiltonian_dimension()));

  const auto window = transport::band_window(sim.bands(9));
  std::vector<double> grid;
  for (double e = window.emin - 0.02; e <= window.emin + 0.6; e += 0.06)
    grid.push_back(e);

  const auto sp = sim.transmission_spectrum(grid);
  std::printf("%12s %16s %16s\n", "E (eV)", "<T(E)>_k", "channels (sum k)");
  for (std::size_t i = 0; i < grid.size(); ++i)
    std::printf("%12.3f %16.4f %16lld\n", grid[i], sp.transmission[i],
                static_cast<long long>(sp.propagating[i]));
  std::printf("\nk-averaging smears the single-k staircase, as expected for "
              "a 2-D film.\n");

  // --- self-consistent transfer characteristics ------------------------
  // The SCF sweep runs on the scaled 1-orbital channel (the fig01d bench's
  // idiom): the full film's FEAST solves cost seconds per energy point,
  // far too heavy for the 50+ charge sweeps of a bias sweep.
  omen::SimulationConfig ch;
  lattice::Structure chain;
  chain.cell_atoms = {{lattice::Species::kLi, {0.0, 0.0, 0.0}}};
  chain.cell_length = 0.5;
  chain.num_cells = 16;
  chain.name = "scaled UTBFET channel";
  ch.structure = chain;
  ch.build.cutoff_nm = 1.0;
  ch.point.obc = transport::ObcAlgorithm::kShiftInvert;
  ch.point.solver = transport::SolverAlgorithm::kBlockLU;
  omen::Simulator fet(ch);
  const auto cwin = transport::band_window(fet.bands(9));
  const double mu_s = cwin.emin + 0.1;
  const double vds = 0.2;
  const lattice::DeviceRegions regions{5, 6, 5};

  poisson::ScfOptions scf;
  scf.poisson.screening_length_cells = 2.0;
  scf.poisson.charge_coupling = 0.25;
  scf.tol = 1e-6;
  scf.charge_tol = 1e-5;           // dual criterion: charge must settle too
  scf.mixing = 0.3;
  scf.anderson_depth = 3;          // Anderson(3) acceleration
  scf.warm_start = true;           // seed each Vgs from the previous point
  scf.adaptive_energy_grid = true; // re-refine the grid every outer iteration
  scf.grid_refine_tol = 0.25;
  scf.grid_min_spacing = 2e-3;
  scf.max_iter = 80;

  std::vector<double> egrid;  // coarse base; refinement adds the rest
  for (double e = cwin.emin - 0.02; e <= mu_s + 0.3; e += 0.05)
    egrid.push_back(e);
  const std::vector<double> vgs{-0.15, -0.05, 0.05, 0.15};
  const auto iv =
      fet.transfer_characteristics(vgs, vds, regions, egrid, mu_s, scf);
  std::printf("\nself-consistent Id-Vgs (Anderson + warm starts + adaptive "
              "grid):\n");
  std::printf("%10s %16s %12s %8s\n", "Vgs (V)", "Id (2e/h*eV)", "SCF iters",
              "conv");
  for (const auto& p : iv)
    std::printf("%10.2f %16.6e %12d %8s\n", p.vgs, p.current,
                p.scf_iterations, p.converged ? "yes" : "no");
  std::printf("\nwarm-started points converge in a fraction of the first "
              "(cold) point's iterations.\n");
  return 0;
}
