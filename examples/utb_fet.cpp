// Ultra-thin-body FET with transverse momentum: the Fig. 1(c) scenario.
//
// The UTB film is periodic out-of-plane, so transport observables are
// averaged over a k grid — H(k), S(k) are generated from the 3-D blocks in
// OMEN (the paper notes CP2K provides no k dependence itself).
#include <cstdio>
#include <vector>

#include "omen/simulator.hpp"
#include "transport/bands.hpp"

using namespace omenx;

int main() {
  omen::SimulationConfig cfg;
  cfg.structure = lattice::make_utb(0.8, 8);
  cfg.num_k = 3;  // transverse momentum points in [0, pi]
  cfg.point.obc = transport::ObcAlgorithm::kFeast;
  cfg.point.solver = transport::SolverAlgorithm::kBlockLU;
  omen::Simulator sim(cfg);
  std::printf("device: %s, %lld k-points, N_SS = %lld\n",
              cfg.structure.name.c_str(), static_cast<long long>(cfg.num_k),
              static_cast<long long>(sim.hamiltonian_dimension()));

  const auto window = transport::band_window(sim.bands(9));
  std::vector<double> grid;
  for (double e = window.emin - 0.02; e <= window.emin + 0.6; e += 0.06)
    grid.push_back(e);

  const auto sp = sim.transmission_spectrum(grid);
  std::printf("%12s %16s %16s\n", "E (eV)", "<T(E)>_k", "channels (sum k)");
  for (std::size_t i = 0; i < grid.size(); ++i)
    std::printf("%12.3f %16.4f %16lld\n", grid[i], sp.transmission[i],
                static_cast<long long>(sp.propagating[i]));
  std::printf("\nk-averaging smears the single-k staircase, as expected for "
              "a 2-D film.\n");
  return 0;
}
