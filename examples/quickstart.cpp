// Quickstart: build a Si nanowire, look at its lead band structure, and
// compute the ballistic transmission T(E) with the FEAST + SplitSolve
// pipeline — the minimal end-to-end use of the public API.
//
//   $ ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "omen/simulator.hpp"
#include "transport/bands.hpp"

using namespace omenx;

int main() {
  // 1. Device: a gate-all-around Si nanowire, d = 0.6 nm, 8 transport cells.
  omen::SimulationConfig cfg;
  cfg.structure = lattice::make_nanowire(0.6, 8);
  cfg.functional = dft::Functional::kLDA;
  cfg.point.obc = transport::ObcAlgorithm::kFeast;     // OBCs on "CPUs"
  cfg.point.solver = transport::SolverAlgorithm::kSplitSolve;  // on "GPUs"
  cfg.point.partitions = 2;
  cfg.num_devices = 2;
  omen::Simulator sim(cfg);
  std::printf("device: %s\n", cfg.structure.name.c_str());
  std::printf("N_SS = %lld (atoms x orbitals)\n",
              static_cast<long long>(sim.hamiltonian_dimension()));

  // 2. Lead band structure: find the energy window worth probing.
  const auto bands = sim.bands(11);
  const auto window = transport::band_window(bands);
  std::printf("lead spectrum spans [%.2f, %.2f] eV\n", window.emin,
              window.emax);

  // 3. Transmission near the band bottom.
  std::vector<double> grid;
  for (double e = window.emin - 0.05; e <= window.emin + 0.7; e += 0.05)
    grid.push_back(e);
  const auto spectrum = sim.transmission_spectrum(grid);

  std::printf("%12s %12s %12s\n", "E (eV)", "T(E)", "channels");
  for (std::size_t i = 0; i < grid.size(); ++i)
    std::printf("%12.3f %12.4f %12lld\n", grid[i], spectrum.transmission[i],
                static_cast<long long>(spectrum.propagating[i]));
  std::printf("\nT(E) is an integer staircase in a pristine wire: each "
              "propagating subband adds one conductance quantum.\n");
  return 0;
}
