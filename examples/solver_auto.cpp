// Solver selection through the strategy layer: list the registered
// backends, ask the kAuto cost model what it would pick across system
// shapes and resources, and run a spectrum with solver = kAuto — the
// engine resolves the backend per device shape, deterministically.
//
//   $ ./build/solver_auto
#include <cstdio>
#include <vector>

#include "omen/simulator.hpp"
#include "parallel/device.hpp"
#include "solvers/solver.hpp"
#include "transport/bands.hpp"

using namespace omenx;

int main() {
  // 1. The registry: every backend selectable by name or enum, plus any
  // the embedding application registers itself.
  std::printf("registered solver backends:");
  for (const auto& name : solvers::registered_solvers())
    std::printf(" %s", name.c_str());
  std::printf("\n\n");

  // 2. The kAuto cost model — a pure function of shape and resources, so
  // the same inputs always pick the same backend on every rank.
  parallel::DevicePool pool(4);
  std::printf("%8s %6s %12s %20s\n", "blocks", "s", "resources", "kAuto picks");
  for (const numeric::idx nb : {8, 64, 512}) {
    for (const bool with_pool : {false, true}) {
      solvers::SolverContext ctx;
      ctx.partitions = 4;
      if (with_pool) ctx.pool = &pool;
      const auto pick = solvers::auto_algorithm(nb, 16, 32, ctx);
      std::printf("%8lld %6d %12s %20s\n", static_cast<long long>(nb), 16,
                  with_pool ? "4 devices" : "serial",
                  solvers::algorithm_name(pick));
    }
  }

  // 3. End to end: solver = kAuto in the simulator config.  Every energy
  // point resolves the same backend (same device shape, same resources);
  // spectra are reproducible run to run.
  omen::SimulationConfig cfg;
  cfg.structure = lattice::make_nanowire(0.6, 8);
  cfg.point.obc = transport::ObcAlgorithm::kFeast;
  cfg.point.solver = transport::SolverAlgorithm::kAuto;
  cfg.point.partitions = 2;
  cfg.num_devices = 2;
  omen::Simulator sim(cfg);

  const auto bands = sim.bands(11);
  const auto window = transport::band_window(bands);
  std::vector<double> grid;
  for (double e = window.emin + 0.05; e <= window.emin + 0.45; e += 0.1)
    grid.push_back(e);
  const auto spectrum = sim.transmission_spectrum(grid);
  std::printf("\n%12s %12s\n", "E (eV)", "T(E)");
  for (std::size_t i = 0; i < grid.size(); ++i)
    std::printf("%12.3f %12.6f\n", spectrum.energies[i],
                spectrum.transmission[i]);
  return 0;
}
