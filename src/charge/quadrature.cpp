#include "charge/quadrature.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

#include "transport/energy_grid.hpp"
#include "transport/transmission.hpp"

namespace omenx::charge {

namespace {

constexpr double kPi = 3.14159265358979323846;

void validate_window(const ChargeWindow& window) {
  if (window.grid.size() < 2)
    throw std::invalid_argument(
        "charge quadrature: real-axis grid needs >= 2 points");
  for (std::size_t i = 1; i < window.grid.size(); ++i)
    if (!(window.grid[i] > window.grid[i - 1]))
      throw std::invalid_argument(
          "charge quadrature: grid must be strictly increasing");
}

/// Exactly the pre-registry charge path: trapezoid weights on the caller's
/// grid times the real-axis Fermi factor of each contact, multiplied in the
/// same order the Simulator always multiplied them — bit-identical by
/// construction.
class RealGridQuadrature final : public Quadrature {
 public:
  const char* name() const noexcept override { return "real_grid"; }
  unsigned capabilities() const noexcept override { return 0; }

  NodeSet build(const ChargeWindow& window,
                const QuadratureOptions&) const override {
    validate_window(window);
    NodeSet out;
    out.energies = window.grid;
    const std::vector<double> w = transport::trapezoid_weights(window.grid);
    out.weight_l.reserve(w.size());
    out.weight_r.reserve(w.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
      out.weight_l.push_back(
          w[i] * transport::fermi(window.grid[i], window.mu_l, window.kt));
      out.weight_r.push_back(
          w[i] * transport::fermi(window.grid[i], window.mu_r, window.kt));
    }
    return out;
  }
};

/// L-shaped equilibrium contour + Matsubara residues + real remainder.
///
///   Im E                       poles x at mu_min + i pi kT (2p+1)
///    ^    o--o---o--o---o---o---o-->   height 2 * num_poles * pi * kT
///    |    o                x
///    |    o        x      (enclosed poles)
///    |    o    x
///    +----+-----------|--------|-----> Re E
///        EB         mu_min   mu_min + tail*kT
///
/// Residue theorem on the closed rectangle (the right edge sits where
/// f ~ e^-tail and is dropped):
///   int_EB^inf f G dE = int_riser + int_run - 2 pi i kT sum_p G(z_p),
/// and the density is -2 Im of it, so each contour node carries
///   w = -2 * (gauss weight * dz jacobian) * f(z),
/// and each pole carries w = +4 pi i kT.  The Fermi factor is evaluated at
/// mu_min = min(mu_L, mu_R): below mu_min both contacts agree, which is
/// what makes this window "equilibrium".  The disputed window
/// [mu_min, mu_max] stays on the real axis with occupation differences
/// (f_c - f_min) as weights — identically empty at zero bias.
class ContourQuadrature final : public Quadrature {
 public:
  const char* name() const noexcept override { return "contour"; }
  unsigned capabilities() const noexcept override {
    return kUsesComplexPlane | kSplitsWindows;
  }

  NodeSet build(const ChargeWindow& window,
                const QuadratureOptions& options) const override {
    validate_window(window);
    if (window.kt <= 0.0)
      throw std::invalid_argument(
          "contour quadrature: kt must be positive (the contour height and "
          "pole ladder scale with kT)");
    if (options.contour_points < 4)
      throw std::invalid_argument(
          "contour quadrature: contour_points must be >= 4");
    if (options.num_poles < 1)
      throw std::invalid_argument("contour quadrature: num_poles must be >= 1");

    const double mu_min = std::min(window.mu_l, window.mu_r);
    const double mu_max = std::max(window.mu_l, window.mu_r);
    const double kt = window.kt;
    const double eb = window.band_bottom;
    const double e_end = mu_min + options.tail_kt * kt;

    NodeSet out;

    if (e_end > eb) {
      // Height passes exactly between poles num_poles-1 and num_poles;
      // there f(x + i 2 n pi kT) = f(x) is real, so the run's integrand is
      // as tame as the real axis — but G there is smooth.
      const double height = 2.0 * options.num_poles * kPi * kt;
      const int n_riser = std::max(4, options.contour_points / 4);
      const int n_run = std::max(4, options.contour_points - n_riser);

      // Vertical riser EB -> EB + i*height: z = EB + i h (t+1)/2.
      const GaussLegendre riser = gauss_legendre(n_riser);
      for (int q = 0; q < n_riser; ++q) {
        const cplx z{eb, 0.5 * height * (riser.nodes[q] + 1.0)};
        const cplx jac{0.0, 0.5 * height};
        out.gf_nodes.push_back(z);
        out.gf_weights.push_back(-2.0 * riser.weights[q] * jac *
                                 transport::fermi(z, mu_min, kt));
      }
      // Horizontal run EB + i*height -> e_end + i*height.
      const GaussLegendre run = gauss_legendre(n_run);
      const double half = 0.5 * (e_end - eb);
      const double mid = 0.5 * (e_end + eb);
      for (int q = 0; q < n_run; ++q) {
        const cplx z{mid + half * run.nodes[q], height};
        out.gf_nodes.push_back(z);
        out.gf_weights.push_back(-2.0 * run.weights[q] * half *
                                 transport::fermi(z, mu_min, kt));
      }
      // Enclosed Matsubara poles: residue of f is -kT, so the density picks
      // up -2 * (-2 pi i kT) * G(z_p) from each.
      for (const cplx& zp :
           transport::matsubara_poles(mu_min, kt, options.num_poles)) {
        out.gf_nodes.push_back(zp);
        out.gf_weights.push_back(cplx{0.0, 4.0 * kPi * kt});
      }
    }
    // else: the occupied window ends below the band bottom — the
    // equilibrium charge is below the f < e^-tail floor, skip the contour.

    // Non-equilibrium remainder on the real axis, where the contacts
    // disagree: occupation difference f_c - f_min as the per-contact
    // weight.  At zero bias the window is empty and the whole integration
    // is the ~contour_points + num_poles Green's-function nodes above.
    if (window.mu_l != window.mu_r) {
      const double lo = mu_min - options.tail_kt * kt;
      const double hi = mu_max + options.tail_kt * kt;
      std::vector<double> sub;
      for (const double e : window.grid)
        if (e >= lo && e <= hi) sub.push_back(e);
      if (sub.size() < 2) {
        // The caller's grid does not resolve the bias window (coarse grid,
        // narrow window): fall back to a uniform 9-point panel.
        sub.resize(9);
        for (int q = 0; q < 9; ++q)
          sub[static_cast<std::size_t>(q)] = lo + (hi - lo) * q / 8.0;
      }
      const std::vector<double> w = transport::trapezoid_weights(sub);
      for (std::size_t i = 0; i < sub.size(); ++i) {
        const double f_min = transport::fermi(sub[i], mu_min, kt);
        out.energies.push_back(sub[i]);
        out.weight_l.push_back(
            w[i] * (transport::fermi(sub[i], window.mu_l, kt) - f_min));
        out.weight_r.push_back(
            w[i] * (transport::fermi(sub[i], window.mu_r, kt) - f_min));
      }
    }
    return out;
  }
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, QuadratureFactory> factories;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    reg->factories["real_grid"] = [] {
      return std::make_unique<RealGridQuadrature>();
    };
    reg->factories["contour"] = [] {
      return std::make_unique<ContourQuadrature>();
    };
    return reg;
  }();
  return *r;
}

}  // namespace

void register_quadrature(const std::string& name, QuadratureFactory factory) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.factories[name] = std::move(factory);
}

std::vector<std::string> registered_quadratures() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, factory] : r.factories) names.push_back(name);
  return names;
}

std::unique_ptr<Quadrature> make_quadrature(const std::string& name) {
  // Copy the factory out before invoking it: a registered factory may
  // itself call make_quadrature (delegating wrappers do), and invoking it
  // under the registry lock would self-deadlock.
  QuadratureFactory factory;
  {
    Registry& r = registry();
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it == r.factories.end())
      throw std::invalid_argument("make_quadrature: unknown backend '" + name +
                                  "'");
    factory = it->second;
  }
  return factory();
}

std::unique_ptr<Quadrature> make_quadrature(QuadratureAlgorithm algo) {
  return make_quadrature(quadrature_algorithm_name(algo));
}

const char* quadrature_algorithm_name(QuadratureAlgorithm algo) noexcept {
  switch (algo) {
    case QuadratureAlgorithm::kRealGrid:
      return "real_grid";
    case QuadratureAlgorithm::kContour:
      return "contour";
  }
  return "real_grid";
}

unsigned quadrature_algorithm_capabilities(QuadratureAlgorithm algo) {
  return make_quadrature(algo)->capabilities();
}

GaussLegendre gauss_legendre(int n) {
  if (n < 1)
    throw std::invalid_argument("gauss_legendre: n must be positive");
  GaussLegendre out;
  out.nodes.resize(static_cast<std::size_t>(n));
  out.weights.resize(static_cast<std::size_t>(n));
  // Roots of P_n by Newton from the Chebyshev-like initial guess; the
  // recurrence gives P_n and its derivative in one pass.  Symmetric rule:
  // compute one half, mirror the other.
  for (int i = 0; i < (n + 1) / 2; ++i) {
    double x = std::cos(kPi * (i + 0.75) / (n + 0.5));
    double dp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      double p0 = 1.0, p1 = 0.0;
      for (int j = 0; j < n; ++j) {
        const double p2 = p1;
        p1 = p0;
        p0 = ((2.0 * j + 1.0) * x * p1 - j * p2) / (j + 1.0);
      }
      dp = n * (x * p0 - p1) / (x * x - 1.0);
      const double dx = p0 / dp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    out.nodes[static_cast<std::size_t>(i)] = -x;
    out.nodes[static_cast<std::size_t>(n - 1 - i)] = x;
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    out.weights[static_cast<std::size_t>(i)] = w;
    out.weights[static_cast<std::size_t>(n - 1 - i)] = w;
  }
  return out;
}

}  // namespace omenx::charge
