// Pluggable charge-quadrature backends — how the SCF loop turns "integrate
// the occupied spectrum" into a list of energy-point solves.
//
// The ab-initio-transport lineage behind the paper integrates the
// *equilibrium* part of the charge on a complex contour: the retarded
// Green's function is analytic in the upper half plane, so the occupied
// window below min(mu_L, mu_R) can be swept far off the real axis where G
// is smooth and ~10-20 Gauss-Legendre nodes replace hundreds of real-axis
// points clustered around van Hove singularities.  Only the bias window
// [mu_R, mu_L] — where the two contacts disagree about occupation and the
// density matrix is genuinely non-equilibrium — must stay on the real axis.
//
// Backends mirror the solver/OBC registry idiom (solvers/solver.hpp,
// obc/strategy.hpp): a name -> factory registry with capability bits.
//   real_grid   trapezoid weights times Fermi factors on the caller's grid
//               — exactly the pre-registry charge path, bit-identical by
//               construction (same products in the same order).
//   contour     L-shaped contour (vertical riser at the contour anchor,
//               horizontal run at height 2 n pi kT between Matsubara
//               poles) + pole residues for the Fermi tail + the real-axis
//               remainder for the non-equilibrium window.
//
// A backend emits a NodeSet: real-axis wave-function tasks with per-contact
// occupation weights, plus complex Green's-function nodes with complex
// weights.  The engine executes both kinds in one sweep; a GF node with
// weight w contributes Im(w * G_ii) to the orbital density — the
// wave-function tasks contribute weight * |psi|^2 / flux, and the two
// agree because the flux-normalized injected density equals -2 Im G_ii.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "numeric/types.hpp"

namespace omenx::charge {

using numeric::cplx;

/// Selectable backends (registry names are the snake_case forms).
enum class QuadratureAlgorithm { kRealGrid, kContour };

/// Capability bits advertised by a quadrature backend.
enum QuadratureCapability : unsigned {
  /// Emits Green's-function nodes off the real axis: the executor must be
  /// able to solve complex-energy points, and the boundary cache must key
  /// on Im(E).
  kUsesComplexPlane = 1u << 0,
  /// Separates the equilibrium window (below min(mu_L, mu_R)) from the
  /// non-equilibrium bias window; adaptive grid refinement applies only to
  /// the real-axis remainder such a backend leaves behind.
  kSplitsWindows = 1u << 1,
};

/// The physical window one charge integration covers.
struct ChargeWindow {
  double mu_l = 0.0;  ///< source chemical potential (eV)
  double mu_r = 0.0;  ///< drain chemical potential (eV)
  double kt = 0.0;    ///< thermal energy (eV)
  /// Contour anchor: a guaranteed lower bound of the occupied spectrum
  /// (eV).  Im G vanishes identically on the real axis below the band
  /// bottom, so the contour may close there.  Callers must fold in
  /// everything that shifts spectral weight down — the most negative device
  /// potential and contact shift — plus a safety margin.
  double band_bottom = 0.0;
  /// Caller's real-axis grid (strictly increasing, >= 2 points).  real_grid
  /// executes it verbatim; contour only keeps the part inside the
  /// non-equilibrium window.
  std::vector<double> grid;
};

/// Backend tuning knobs.  Defaults are sized so the contour resolves the
/// equilibrium window of a ~1 eV band at room temperature to well below
/// 1e-6 charge accuracy.
struct QuadratureOptions {
  /// Total Gauss-Legendre nodes on the contour, split between the vertical
  /// riser (1/4, it is short) and the horizontal run.  Convergence is
  /// geometric: on the 1-D chain device 32 points leave ~1e-2 charge error,
  /// 64 ~1e-4, 96 ~5e-6, and 128 is converged past 2e-7 — the default sits
  /// there so the fixed-point parity with a quadrature-converged real-axis
  /// reference is well under 1e-6 while still being ~100x fewer solves.
  int contour_points = 128;
  /// Matsubara poles enclosed by the contour; also fixes the contour height
  /// 2 * num_poles * pi * kT (the horizontal run passes exactly between
  /// poles num_poles-1 and num_poles, where the Fermi function is real).
  int num_poles = 4;
  /// Fermi-window half-width in units of kT: the horizontal run ends at
  /// mu_min + tail_kt * kT (f < 1e-13 beyond), and the non-equilibrium
  /// remainder spans [mu_min - tail_kt*kT, mu_max + tail_kt*kT].
  double tail_kt = 30.0;

  // Memberwise — SCF drivers compare option sets to detect stale plans.
  friend bool operator==(const QuadratureOptions& a,
                         const QuadratureOptions& b) noexcept {
    return a.contour_points == b.contour_points &&
           a.num_poles == b.num_poles && a.tail_kt == b.tail_kt;
  }
};

/// One executable quadrature.  Real-axis entries are wave-function tasks
/// (per-contact occupation * trapezoid weight); gf entries are complex
/// Green's-function nodes whose weight already folds in direction, Fermi
/// factor, and the -2 spectral normalization:
///   n_i = sum_e [weight_l * rho^L_i(e) + weight_r * rho^R_i(e)]
///       + sum_z Im(weight * G_ii(z)).
struct NodeSet {
  std::vector<double> energies;  ///< real-axis task energies (ascending)
  std::vector<double> weight_l;  ///< source-contact weight per task
  std::vector<double> weight_r;  ///< drain-contact weight per task
  std::vector<cplx> gf_nodes;    ///< complex energies z (equilibrium window)
  std::vector<cplx> gf_weights;  ///< node weights w: density += Im(w G_ii)
};

/// Quadrature interface.  Implementations are stateless beyond the options
/// handed per call; one instance may serve many windows.
class Quadrature {
 public:
  virtual ~Quadrature() = default;

  virtual const char* name() const noexcept = 0;
  virtual unsigned capabilities() const noexcept = 0;

  /// Plan the node set for `window`.  Throws std::invalid_argument on
  /// windows the backend cannot represent (contour needs kt > 0).
  virtual NodeSet build(const ChargeWindow& window,
                        const QuadratureOptions& options = {}) const = 0;
};

using QuadratureFactory = std::function<std::unique_ptr<Quadrature>()>;

/// Register a backend under `name` (replaces an existing registration).
/// The built-ins ("real_grid", "contour") self-register on first use.
void register_quadrature(const std::string& name, QuadratureFactory factory);

/// Names of all registered backends, sorted.
std::vector<std::string> registered_quadratures();

/// Instantiate by name; throws std::invalid_argument for unknown names.
std::unique_ptr<Quadrature> make_quadrature(const std::string& name);

/// Instantiate by algorithm enum.
std::unique_ptr<Quadrature> make_quadrature(QuadratureAlgorithm algo);

/// Registry name of an algorithm.
const char* quadrature_algorithm_name(QuadratureAlgorithm algo) noexcept;

/// Capability bits of an algorithm (without instantiating it by hand).
unsigned quadrature_algorithm_capabilities(QuadratureAlgorithm algo);

/// Gauss-Legendre rule on [-1, 1]: Newton iteration on the Legendre
/// three-term recurrence (no external dependency).  Nodes ascend; weights
/// sum to 2 exactly up to roundoff.
struct GaussLegendre {
  std::vector<double> nodes;
  std::vector<double> weights;
};
GaussLegendre gauss_legendre(int n);

}  // namespace omenx::charge
