// Block cyclic reduction — OMEN's custom tight-binding solver (Ref. [33]).
//
// Eliminates odd-indexed block rows level by level (log2(nb) levels), each
// level halving the system.  The paper notes BCR "relies on the sparsity
// provided by a tight-binding basis [and] does not work with DFT" — in this
// repository that manifests as cost: BCR fill-in on the dense DFT blocks
// makes it no cheaper than direct LU, which the fig08 bench quantifies.
#pragma once

#include "blockmat/block_tridiag.hpp"
#include "numeric/matrix.hpp"

namespace omenx::solvers {

using blockmat::BlockTridiag;
using numeric::CMatrix;

/// Solve A X = B by block cyclic reduction (any nb >= 1).
CMatrix bcr_solve(const BlockTridiag& a, const CMatrix& b);

}  // namespace omenx::solvers
