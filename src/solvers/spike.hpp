// SPIKE-partitioned computation of the first and last block columns of
// A^{-1} on a pool of emulated accelerators (Fig. 6) — and, new with the
// strategy layer, across the ranks of a spatial communicator (Fig. 9's
// third parallelization level).
//
// The block-tridiagonal matrix is split into `partitions` contiguous
// partitions (a power of two, as in the paper).  Each partition computes the
// first/last block columns of its *local* inverse with the RGF sweeps of
// Algorithm 1 (phases P1..P4).  Partitions are then coupled through the
// spikes V_j = A_j^{-1} C_j^{up}, W_j = A_j^{-1} C_j^{down}; the resulting
// reduced interface system (block tridiagonal, 2s-sized blocks, p-1
// interfaces) is solved and the corrections are applied.  The paper merges
// partitions pairwise and recursively; the reduced-system formulation used
// here is algebraically equivalent (same spikes, same interface unknowns)
// and the per-step merge cost shows up as the reduced solve, which the
// fig07 bench measures as the spike overhead.
//
// The per-partition arithmetic depends only on (a, j, p) — never on where
// the partition executes.  That is what makes the rank-distributed variant
// (spike_block_columns_spatial_root / spike_spatial_member) bit-identical
// to the single-rank and device-pool paths for equal partition counts.
#pragma once

#include <utility>
#include <vector>

#include "blockmat/block_tridiag.hpp"
#include "numeric/matrix.hpp"
#include "parallel/device.hpp"

namespace omenx::parallel {
class Comm;
}

namespace omenx::solvers {

using blockmat::BlockTridiag;
using numeric::CMatrix;
using numeric::idx;

struct SpikeOptions {
  int partitions = 2;  ///< power of two, <= number of blocks
};

/// Global [A^{-1}_{:,first}, A^{-1}_{:,last}] (dim x 2s) computed with
/// `options.partitions` partitions on `pool`'s devices (partition j runs on
/// device j % pool.size()).
CMatrix spike_block_columns(const BlockTridiag& a, parallel::DevicePool& pool,
                            const SpikeOptions& options = {});

/// Host-only variant: partitions computed inline on the calling thread (no
/// device pool, no transfer accounting).  Same arithmetic, same result.
CMatrix spike_block_columns(const BlockTridiag& a,
                            const SpikeOptions& options = {});

/// Validity check used by callers: partitions must be a power of two and
/// leave at least one block per partition.
bool spike_partitioning_valid(idx num_blocks, int partitions);

// --- partition kernels (shared by the pool, host, and spatial paths) ------

/// Everything one partition contributes to the SPIKE coupling: its local
/// inverse's first/last block columns and the spikes toward its neighbours.
struct SpikePartition {
  idx lo = 0, hi = 0;  ///< block range [lo, hi)
  CMatrix first_col;   ///< local A_j^{-1} first block column ((hi-lo)*s x s)
  CMatrix last_col;    ///< local A_j^{-1} last block column
  CMatrix v;           ///< spike V_j = last_col * upper(hi-1)  (empty for last)
  CMatrix w;           ///< spike W_j = first_col * lower(lo-1) (empty for first)
};

/// Block range [lo, hi) of partition j of p over nb blocks (as even as
/// possible, remainder spread over the trailing partitions).
std::pair<idx, idx> spike_partition_bounds(idx nb, int j, int p);

/// Phases P1/P2 for partition j: local RGF block columns plus spikes.
/// Identical arithmetic wherever it runs — host thread, device stream, or
/// remote spatial rank.
SpikePartition spike_compute_partition(const BlockTridiag& a, int j, int p);

/// Reduced interface system solve ("spike merge"): interface unknowns
/// u_i = [x_i^{bot}; x_{i+1}^{top}] for the global RHS [e_first, e_last].
/// Requires p >= 2 partitions.
CMatrix spike_reduced_solve(const std::vector<SpikePartition>& parts, idx s);

/// Final correction for partition j: x_j = y_j - V_j t_{j+1} - W_j b_{j-1}
/// ((hi-lo)*s x m).  `u` is the reduced solution, `m` its column count.
CMatrix spike_partition_correction(const SpikePartition& pd, int j, int p,
                                   const CMatrix& u, idx s, idx m);

// --- spatial (rank-cooperative) path --------------------------------------

/// Rank of the spatial communicator that computes partition j when a solve
/// is split across `width` ranks.  With `ends_to_root`, the first and last
/// partitions — the only ones whose blocks the boundary self-energies touch
/// — are pinned to rank 0 (the only rank holding the self-energies) and the
/// interior partitions are spread over the other ranks; otherwise plain
/// round-robin.  Pure function: every rank derives the same mapping.
int spike_partition_owner(int j, int p, int width, bool ends_to_root);

/// Root side (spatial rank 0): compute this rank's partitions, receive the
/// members' (poison-tolerant: an empty partition from a failed member turns
/// into a std::runtime_error after all transfers completed), then run the
/// reduced solve and corrections exactly like the single-rank path.
/// `ends_to_root` must match what the members use (true for solves of the
/// boundary-applied T, false for plain A).
CMatrix spike_block_columns_spatial_root(const BlockTridiag& a,
                                         parallel::Comm& comm, int partitions,
                                         bool ends_to_root);

/// Member side: compute the partitions spike_partition_owner assigns to
/// this rank on the *locally assembled* matrix and send them to rank 0.  A
/// compute failure still sends (empty) placeholders for every owed
/// partition — the protocol never leaves the root short of messages — and
/// then rethrows.
void spike_spatial_member(const BlockTridiag& a, parallel::Comm& comm,
                          int partitions, bool ends_to_root);

/// Degraded member: send empty placeholders for every owed partition
/// without computing (used when the member has no valid inputs, e.g. its
/// device assembly failed).  Keeps the root's receive count intact.
void spike_spatial_member_poison(parallel::Comm& comm, int partitions,
                                 bool ends_to_root);

/// Root side of a *skipped* solve: receive and discard the members'
/// partition messages so the next solve's transfers start from an empty
/// mailbox.  Must mirror exactly the sends of spike_spatial_member.
void spike_spatial_drain(parallel::Comm& comm, int partitions,
                         bool ends_to_root);

/// Diagonal blocks of a^{-1} through the same partitioning: local RGF
/// diagonal recursion per partition plus interface corrections from the
/// reduced system (p = 1 degenerates to plain RGF).  Serves LDOS/charge
/// assembly for the SPIKE-family backends.
std::vector<CMatrix> spike_diagonal_blocks(const BlockTridiag& a,
                                           int partitions);

}  // namespace omenx::solvers
