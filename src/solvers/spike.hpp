// SPIKE-partitioned computation of the first and last block columns of
// A^{-1} on a pool of emulated accelerators (Fig. 6).
//
// The block-tridiagonal matrix is split into `partitions` contiguous
// partitions (a power of two, as in the paper).  Each partition computes the
// first/last block columns of its *local* inverse with the RGF sweeps of
// Algorithm 1 (phases P1..P4), entirely on its device.  Partitions are then
// coupled through the spikes V_j = A_j^{-1} C_j^{up}, W_j = A_j^{-1}
// C_j^{down}; the resulting reduced interface system (block tridiagonal,
// 2s-sized blocks, p-1 interfaces) is solved and the corrections are applied
// device-side.  The paper merges partitions pairwise and recursively; the
// reduced-system formulation used here is algebraically equivalent (same
// spikes, same interface unknowns) and the per-step merge cost shows up as
// the reduced solve, which the fig07 bench measures as the spike overhead.
#pragma once

#include "blockmat/block_tridiag.hpp"
#include "numeric/matrix.hpp"
#include "parallel/device.hpp"

namespace omenx::solvers {

using blockmat::BlockTridiag;
using numeric::CMatrix;
using numeric::idx;

struct SpikeOptions {
  int partitions = 2;  ///< power of two, <= number of blocks
};

/// Global [A^{-1}_{:,first}, A^{-1}_{:,last}] (dim x 2s) computed with
/// `options.partitions` partitions on `pool`'s devices (partition j runs on
/// device j % pool.size()).
CMatrix spike_block_columns(const BlockTridiag& a, parallel::DevicePool& pool,
                            const SpikeOptions& options = {});

/// Validity check used by callers: partitions must be a power of two and
/// leave at least one block per partition.
bool spike_partitioning_valid(idx num_blocks, int partitions);

}  // namespace omenx::solvers
