// Unified solver strategy layer.
//
// Every block-tridiagonal transport backend (RGF, block LU, BCR, SPIKE,
// SplitSolve) implements one interface with three capabilities —
// factor/solve, boundary solves, diagonal blocks — and registers itself in
// a name -> factory registry.  Callers (transport::solve_energy_point,
// transport Green's-function observables, benches) pick a backend by
// algorithm enum or by name, or ask for `kAuto` and get a deterministic
// cost-model choice fed by the perf/machine node model.
//
// A solver binds its execution resources at creation through SolverContext:
// the emulated accelerator pool (SPIKE/SplitSolve offload) and, new in this
// layer, the *spatial* sub-communicator of Fig. 9's third level.  When the
// spatial communicator has more than one rank, cooperative backends
// (kSpatialCooperative) split the partitions of one block-tridiagonal solve
// across the group's ranks: members compute their partitions' local RGF
// sweeps and spikes, the group leader (spatial rank 0) assembles the SPIKE
// reduced system and the corrections.  Because the per-partition arithmetic
// is fixed by the partition count — not by where a partition executes — the
// result is bit-identical to the single-rank solve with the same partition
// count.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "blockmat/block_tridiag.hpp"
#include "numeric/matrix.hpp"

namespace omenx::numeric {
class Backend;
}  // namespace omenx::numeric

namespace omenx::parallel {
class Comm;
class DevicePool;
}  // namespace omenx::parallel

namespace omenx::solvers {

using blockmat::BlockTridiag;
using numeric::CMatrix;
using numeric::idx;

/// Selectable backends.  kAuto resolves to a concrete backend through the
/// cost model (resolve_algorithm) — deterministically, from the system
/// shape and the bound resources only.
enum class SolverAlgorithm { kSplitSolve, kBlockLU, kBcr, kRgf, kSpike, kAuto };

/// Capability bits advertised by a backend.
enum Capability : unsigned {
  /// factor(t) + solve(b): a general factorization of the boundary-applied
  /// system reusable across right-hand sides.
  kFactorSolve = 1u << 0,
  /// diagonal_blocks(t) has a native implementation (not the identity-solve
  /// fallback).
  kDiagonalBlocksNative = 1u << 1,
  /// prepare(a) does useful work before the boundary self-energies exist
  /// (SplitSolve Step 1), overlapping with the OBC computation.
  kOverlapPrepare = 1u << 2,
  /// One solve can be split across the ranks of SolverContext::spatial.
  kSpatialCooperative = 1u << 3,
  /// Offloads partition work to the emulated accelerator pool.
  kUsesDevicePool = 1u << 4,
  /// solve_boundary_batched has a fused implementation: many same-shape
  /// (k, E) systems execute as single batched numeric::Backend calls
  /// (the paper's Section 5E pipeline), bit-identical per problem to the
  /// scalar solve_boundary path.
  kBatchable = 1u << 5,
  /// solve_attached accepts self-energy attachments at *interior* device
  /// blocks (>= 3-terminal layouts, probe contacts), not just the {first,
  /// last} corner pair.  Backends without this bit still handle any
  /// 2-terminal attachment at the corners through the default delegation
  /// to the validated solve_boundary path.
  kMultiTerminal = 1u << 6,
};

/// Capability bits of an algorithm without instantiating it (the batch
/// planner asks before building solvers).  kAuto reports 0 — resolve first.
unsigned algorithm_capabilities(SolverAlgorithm algo) noexcept;

/// Execution resources bound to a solver instance at creation.
struct SolverContext {
  parallel::DevicePool* pool = nullptr;  ///< accelerators (may be null)
  int partitions = 1;                    ///< SPIKE/SplitSolve partitions
  /// Spatial sub-communicator (Fig. 9 level 3).  Non-null with size > 1
  /// makes cooperative solvers split each solve across its ranks; the
  /// caller of solve_boundary must be spatial rank 0, and every other rank
  /// must be serving the same solve (transport::serve_spatial_point).
  parallel::Comm* spatial = nullptr;
  /// Nominal batch width the caller intends to issue through the batched
  /// entry points (1 = scalar operation).  Only the kAuto cost model reads
  /// it: with batch > 1, kBatchable candidates are credited the measured
  /// batched-GEMM throughput of perf::MachineSpec::host().  Callers that
  /// need rank-invariant resolution must pass a rank-invariant nominal
  /// width (the engine passes its configured max_batch, never the actual
  /// bucket fill).
  int batch = 1;
  /// The numeric::Backend the caller will pass to the batched entry points
  /// (null = undecided/host).  kAuto credits kBatchable candidates with the
  /// accelerator stream throughput when the backend offloads.  On the
  /// emulated host model this is a no-op by construction (gpu_gflops ==
  /// cpu_gflops <= batched_gemm_gflops), so in-process resolution stays a
  /// pure function of the problem shape regardless of where a leader's
  /// bucket lands — the rank/world-size determinism guarantee is unchanged.
  const numeric::Backend* backend = nullptr;
};

/// One boundary-solve problem of a batch: x = T^{-1} [b_top; 0; ...; b_bot]
/// with T = *a - diag-corner(*sigma_l, *sigma_r).  All pointers must stay
/// valid through the batched call; every problem in one batch must share
/// (num_blocks, block_size).
struct BoundaryProblem {
  const BlockTridiag* a = nullptr;
  const CMatrix* sigma_l = nullptr;
  const CMatrix* sigma_r = nullptr;
  const CMatrix* b_top = nullptr;
  const CMatrix* b_bot = nullptr;
};

/// One self-energy attachment of an N-terminal solve: `sigma` (s x s) is
/// subtracted from diagonal block `block` of A.  The classic two-terminal
/// problem is the pair {0, sigma_l}, {nb-1, sigma_r}.
struct Attachment {
  idx block = 0;
  const CMatrix* sigma = nullptr;
};

/// One non-zero block row of an N-terminal right-hand side: `b` (s x m,
/// shared column count m across all entries) occupies block row `block`.
struct RhsBlock {
  idx block = 0;
  const CMatrix* b = nullptr;
};

/// Strategy interface.  Instances are stateful (cached factorizations, warm
/// buffers, bound resources) and are not thread-safe; use one per thread.
class Solver {
 public:
  virtual ~Solver() = default;

  virtual const char* name() const noexcept = 0;
  virtual unsigned capabilities() const noexcept = 0;

  /// Early hook called with A = E*S - H *before* the boundary self-energies
  /// are known.  kOverlapPrepare backends start asynchronous work here;
  /// everyone else ignores it.  `a` must outlive the following
  /// solve_boundary call.
  virtual void prepare(const BlockTridiag& a) { (void)a; }

  /// Factor the (boundary-applied) system.  kFactorSolve only; others throw
  /// std::logic_error.
  virtual void factor(const BlockTridiag& t);

  /// Solve T X = B for a dense B against the last factor().  kFactorSolve
  /// only.
  virtual CMatrix solve(const CMatrix& b);

  /// The transmission work unit: x = T^{-1} [b_top; 0; ...; 0; b_bot] with
  /// T = a - diag-corner(sigma_l, sigma_r).  The right-hand side is non-zero
  /// only in the first and last block rows — exactly what the RGF/SPIKE
  /// block-column kernels and the SplitSolve SMW identity exploit.  The
  /// default applies the boundary, factors, expands the RHS and solves.
  virtual CMatrix solve_boundary(const BlockTridiag& a, const CMatrix& sigma_l,
                                 const CMatrix& sigma_r, const CMatrix& b_top,
                                 const CMatrix& b_bot);

  /// Batched counterpart of prepare(): called with the A = E*S - H of every
  /// problem of the upcoming solve_boundary_batched call, before any
  /// boundary self-energy exists.  kOverlapPrepare backends start the whole
  /// batch's heavy phase here (SplitSolve Step 1 for every system as one
  /// backend dispatch) so it overlaps with the asynchronous OBC stage.
  /// Default: nothing to prepare.  The systems must outlive the following
  /// solve_boundary_batched call and match it element for element.
  virtual void prepare_batched(const std::vector<const BlockTridiag*>& systems,
                               numeric::Backend& backend) {
    (void)systems;
    (void)backend;
  }

  /// Solve a batch of same-shape boundary problems, issuing the heavy
  /// kernels as batched numeric::Backend calls when the backend advertises
  /// kBatchable.  Results are in problem order; problem i is bit-identical
  /// to solve_boundary(*a, *sigma_l, *sigma_r, *b_top, *b_bot) on problem
  /// i's operands.  The default (any backend) is exactly that scalar loop.
  virtual std::vector<CMatrix> solve_boundary_batched(
      const std::vector<BoundaryProblem>& problems, numeric::Backend& backend);

  /// N-terminal work unit: x = T^{-1} B with T = a - sum_p diag(sigma_p at
  /// block_p) and B assembled from the non-zero block rows in `rhs`.
  /// When the attachments are exactly the {0, nb-1} corner pair the default
  /// delegates to solve_boundary — same arithmetic, same backend overrides,
  /// bit-identical to the 2-terminal path.  Interior attachment blocks
  /// require kMultiTerminal; backends without it throw std::logic_error.
  /// The kFactorSolve default for interior attachments applies every
  /// self-energy, factors, and solves the expanded dense RHS.
  virtual CMatrix solve_attached(const BlockTridiag& a,
                                 const std::vector<Attachment>& attachments,
                                 const std::vector<RhsBlock>& rhs);

  /// Diagonal blocks of t^{-1} (LDOS / charge assembly).  The default is
  /// the identity-solve fallback (factor + one solve per block column,
  /// O(nb^2 s^3)); backends with kDiagonalBlocksNative override it.
  virtual std::vector<CMatrix> diagonal_blocks(const BlockTridiag& t);

  /// The caller decided to skip this point's solve (e.g. no right-hand
  /// sides — nothing propagates at the energy).  Backends with outstanding
  /// cooperative or asynchronous work must settle it here: a spatial
  /// group's members have already sent their partitions, and leaving them
  /// unconsumed would desynchronize the next solve's transfers.  Default:
  /// nothing outstanding, no-op.
  virtual void discard() {}

 protected:
  /// Shared scratch for the default solve_boundary path (reused across
  /// energy points so the steady state stays allocation-free).
  BlockTridiag t_;
  CMatrix b_;
};

using SolverFactory =
    std::function<std::unique_ptr<Solver>(const SolverContext&)>;

/// Register a backend under `name` (replaces an existing registration).
/// The five built-ins ("rgf", "block_lu", "bcr", "spike", "splitsolve")
/// self-register on first registry use.
void register_solver(const std::string& name, SolverFactory factory);

/// Names of all registered backends, sorted.
std::vector<std::string> registered_solvers();

/// Instantiate a backend by name; throws std::invalid_argument for unknown
/// names.
std::unique_ptr<Solver> make_solver(const std::string& name,
                                    const SolverContext& ctx = {});

/// Instantiate a backend by algorithm enum.  kAuto must be resolved through
/// resolve_algorithm first (the choice depends on the system shape); passing
/// it here throws std::invalid_argument.
std::unique_ptr<Solver> make_solver(SolverAlgorithm algo,
                                    const SolverContext& ctx = {});

/// Registry name of a concrete algorithm ("auto" for kAuto).
const char* algorithm_name(SolverAlgorithm algo) noexcept;

/// Deterministic cost-model choice for a boundary solve of an nb x nb
/// block system with block size s and nrhs right-hand-side columns, given
/// the resources in `ctx`.  Pure function of its arguments and the
/// perf::MachineSpec::host() model: equal inputs always give equal outputs
/// (the kAuto determinism guarantee — every rank of a spatial group
/// resolves the same backend without communicating).
SolverAlgorithm auto_algorithm(idx nb, idx s, idx nrhs,
                               const SolverContext& ctx);

/// Identity on concrete algorithms; resolves kAuto via auto_algorithm.
SolverAlgorithm resolve_algorithm(SolverAlgorithm requested, idx nb, idx s,
                                  idx nrhs, const SolverContext& ctx);

/// The cost model itself: estimated seconds (on perf::MachineSpec::host())
/// for one boundary solve with `algo`.  `executors` is the number of
/// parallel lanes available to the partitioned backends — accelerators at
/// the node level, the energy group's width at the spatial level; the
/// direct backends ignore it.  Exposed so benches and capacity planning can
/// print the same numbers kAuto decides with.
double estimate_boundary_solve_seconds(SolverAlgorithm algo, idx nb, idx s,
                                       idx nrhs, int partitions,
                                       int executors);

/// True for backends whose solves are split across spatial ranks.
bool algorithm_is_cooperative(SolverAlgorithm algo) noexcept;

}  // namespace omenx::solvers
