#include "solvers/spike.hpp"

#include <future>
#include <stdexcept>
#include <vector>

#include "numeric/blas.hpp"
#include "parallel/comm.hpp"
#include "solvers/block_lu.hpp"
#include "solvers/rgf.hpp"

namespace omenx::solvers {

using numeric::cplx;

bool spike_partitioning_valid(idx num_blocks, int partitions) {
  if (partitions < 1) return false;
  if ((partitions & (partitions - 1)) != 0) return false;  // power of two
  return static_cast<idx>(partitions) <= num_blocks;
}

std::pair<idx, idx> spike_partition_bounds(idx nb, int j, int p) {
  return {nb * j / p, nb * (j + 1) / p};
}

namespace {

/// Messages of the spatial partition transfer (per partition: first_col,
/// last_col, v, w — empty stands in for "not present" and, for first_col,
/// for a failed member).
constexpr int kTagSpikeSpatial = 31;

BlockTridiag extract_partition(const BlockTridiag& a, idx lo, idx hi) {
  BlockTridiag part(hi - lo, a.block_size());
  for (idx i = lo; i < hi; ++i) {
    part.diag(i - lo) = a.diag(i);
    if (i + 1 < hi) {
      part.upper(i - lo) = a.upper(i);
      part.lower(i - lo) = a.lower(i);
    }
  }
  return part;
}

/// Plain (non-conjugating) block-structure transpose: (A^T)^{-1} = (A^{-1})^T
/// turns RGF *column* sweeps into the *row* blocks the diagonal corrections
/// need.
BlockTridiag block_transpose(const BlockTridiag& a) {
  BlockTridiag t(a.num_blocks(), a.block_size());
  for (idx i = 0; i < a.num_blocks(); ++i) {
    t.diag(i) = a.diag(i).transpose();
    if (i + 1 < a.num_blocks()) {
      t.upper(i) = a.lower(i).transpose();
      t.lower(i) = a.upper(i).transpose();
    }
  }
  return t;
}

/// Empty-tolerant block-row slices of a partition column/spike: an empty
/// matrix stands for "absent" (first partition has no W, last has no V)
/// and contributes zeros wherever it is sliced.
CMatrix top_rows(const CMatrix& mat, idx s) {
  return mat.rows() == 0 ? CMatrix(s, mat.cols())
                         : mat.block(0, 0, s, mat.cols());
}
CMatrix bot_rows(const CMatrix& mat, idx s) {
  return mat.rows() == 0 ? CMatrix(s, mat.cols())
                         : mat.block(mat.rows() - s, 0, s, mat.cols());
}

/// Reduced interface system ("spike merge"): unknowns per interface i are
/// u_i = [x_i^{bot}; x_{i+1}^{top}] where x_j^{top/bot} are the first/last
/// s rows of partition j's solution.
BlockTridiag build_reduced(const std::vector<SpikePartition>& parts, idx s) {
  const int p = static_cast<int>(parts.size());
  const idx ni = p - 1;
  BlockTridiag reduced(ni, 2 * s);
  for (idx i = 0; i < ni; ++i) {
    const auto& pj = parts[static_cast<std::size_t>(i)];
    const auto& pj1 = parts[static_cast<std::size_t>(i + 1)];
    CMatrix& d = reduced.diag(i);
    d.set_block(0, 0, CMatrix::identity(s));
    d.set_block(s, s, CMatrix::identity(s));
    if (pj.v.rows() > 0) d.set_block(0, s, bot_rows(pj.v, s));
    if (pj1.w.rows() > 0) d.set_block(s, 0, top_rows(pj1.w, s));
    if (i > 0) {
      // Coupling to u_{i-1}: x_i^{bot} depends on x_{i-1}^{bot} via W_i.
      CMatrix& lo = reduced.lower(i - 1);
      if (pj.w.rows() > 0) lo.set_block(0, 0, bot_rows(pj.w, s));
    }
    if (i + 1 < ni) {
      // Coupling to u_{i+1}: x_{i+1}^{top} depends on x_{i+2}^{top} via V.
      CMatrix& up = reduced.upper(i);
      if (pj1.v.rows() > 0) up.set_block(s, s, top_rows(pj1.v, s));
    }
  }
  return reduced;
}

}  // namespace

namespace {

/// P1/P2 from an already-extracted local partition (shared with the
/// diagonal path, which needs the same local matrix for further sweeps).
SpikePartition partition_from_local(const BlockTridiag& a,
                                    const BlockTridiag& local, idx lo,
                                    idx hi) {
  SpikePartition pd;
  pd.lo = lo;
  pd.hi = hi;
  pd.first_col = rgf_first_block_column(local);
  pd.last_col = rgf_last_block_column(local);
  // Spikes toward the neighbours.
  if (hi < a.num_blocks()) numeric::gemm(pd.last_col, a.upper(hi - 1), pd.v);
  if (lo > 0) numeric::gemm(pd.first_col, a.lower(lo - 1), pd.w);
  return pd;
}

}  // namespace

SpikePartition spike_compute_partition(const BlockTridiag& a, int j, int p) {
  const auto [lo, hi] = spike_partition_bounds(a.num_blocks(), j, p);
  return partition_from_local(a, extract_partition(a, lo, hi), lo, hi);
}

CMatrix spike_reduced_solve(const std::vector<SpikePartition>& parts, idx s) {
  const int p = static_cast<int>(parts.size());
  if (p < 2)
    throw std::invalid_argument("spike_reduced_solve: needs >= 2 partitions");
  const idx ni = p - 1;
  const idx m = 2 * s;  // RHS columns: global e_first and e_last blocks
  const BlockTridiag reduced = build_reduced(parts, s);
  CMatrix rhs(ni * 2 * s, m);

  // y_j is nonzero only for the first partition (columns 0..s-1 equal its
  // local first column) and the last partition (columns s..2s-1, local last
  // column).
  auto y_top = [&](int j) {
    CMatrix y(s, m);
    if (j == 0) y.set_block(0, 0, top_rows(parts[0].first_col, s));
    if (j == p - 1)
      y.set_block(0, s,
                  top_rows(parts[static_cast<std::size_t>(j)].last_col, s));
    return y;
  };
  auto y_bot = [&](int j) {
    CMatrix y(s, m);
    if (j == 0) y.set_block(0, 0, bot_rows(parts[0].first_col, s));
    if (j == p - 1)
      y.set_block(0, s,
                  bot_rows(parts[static_cast<std::size_t>(j)].last_col, s));
    return y;
  };
  for (idx i = 0; i < ni; ++i) {
    rhs.set_block(i * 2 * s, 0, y_bot(static_cast<int>(i)));
    rhs.set_block(i * 2 * s + s, 0, y_top(static_cast<int>(i + 1)));
  }
  return BlockTridiagLU(reduced).solve(rhs);
}

CMatrix spike_partition_correction(const SpikePartition& pd, int j, int p,
                                   const CMatrix& u, idx s, idx m) {
  const idx nloc = (pd.hi - pd.lo) * s;
  CMatrix xj(nloc, m);
  if (j == 0) xj.set_block(0, 0, pd.first_col);
  if (j == p - 1) xj.set_block(0, s, pd.last_col);
  if (j < p - 1 && pd.v.rows() > 0) {
    // t_{j+1} lives in u_j rows [s, 2s).
    const CMatrix t_next = u.block(j * 2 * s + s, 0, s, m);
    numeric::gemm(pd.v, t_next, xj, cplx{-1.0}, cplx{1.0});
  }
  if (j > 0 && pd.w.rows() > 0) {
    // b_{j-1} lives in u_{j-1} rows [0, s).
    const CMatrix b_prev = u.block((j - 1) * 2 * s, 0, s, m);
    numeric::gemm(pd.w, b_prev, xj, cplx{-1.0}, cplx{1.0});
  }
  return xj;
}

namespace {

/// Reduced solve + corrections + assembly, shared by the host and spatial
/// paths (the pool path keeps its per-device version of the same calls).
CMatrix assemble_columns(const BlockTridiag& a,
                         const std::vector<SpikePartition>& parts) {
  const int p = static_cast<int>(parts.size());
  const idx s = a.block_size();
  const idx m = 2 * s;
  CMatrix q(a.dim(), m);
  if (p == 1) {
    q.set_block(0, 0, parts[0].first_col);
    q.set_block(0, s, parts[0].last_col);
    return q;
  }
  const CMatrix u = spike_reduced_solve(parts, s);
  for (int j = 0; j < p; ++j) {
    const auto& pd = parts[static_cast<std::size_t>(j)];
    q.set_block(pd.lo * s, 0, spike_partition_correction(pd, j, p, u, s, m));
  }
  return q;
}

}  // namespace

CMatrix spike_block_columns(const BlockTridiag& a, const SpikeOptions& options) {
  const idx nb = a.num_blocks();
  const int p = options.partitions;
  if (!spike_partitioning_valid(nb, p))
    throw std::invalid_argument(
        "spike_block_columns: partitions must be a power of two and <= nb");
  if (p == 1) return rgf_block_columns(a);
  std::vector<SpikePartition> parts;
  parts.reserve(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) parts.push_back(spike_compute_partition(a, j, p));
  return assemble_columns(a, parts);
}

CMatrix spike_block_columns(const BlockTridiag& a, parallel::DevicePool& pool,
                            const SpikeOptions& options) {
  const idx nb = a.num_blocks();
  const idx s = a.block_size();
  const int p = options.partitions;
  if (!spike_partitioning_valid(nb, p))
    throw std::invalid_argument(
        "spike_block_columns: partitions must be a power of two and <= nb");

  if (p == 1) {
    CMatrix q;
    pool.device(0)
        .enqueue("P1-P4",
                 [&] {
                   auto buf = pool.device(0).allocate(
                       static_cast<std::uint64_t>(a.nnz(0.0)) * 16u);
                   pool.device(0).record_h2d(
                       static_cast<std::uint64_t>(a.dim()) * s * 16u);
                   q = rgf_block_columns(a);
                   pool.device(0).record_d2h(
                       static_cast<std::uint64_t>(q.size()) * 16u);
                 })
        .get();
    return q;
  }

  // Phase P1..P2 per partition: local RGF sweeps on the partition's device.
  std::vector<SpikePartition> parts(static_cast<std::size_t>(p));
  std::vector<parallel::DeviceBuffer> storage(static_cast<std::size_t>(p));
  std::vector<std::future<void>> futs;
  futs.reserve(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) {
    auto& pd = parts[static_cast<std::size_t>(j)];
    auto& buf = storage[static_cast<std::size_t>(j)];
    auto& dev = pool.device(j % pool.size());
    futs.push_back(dev.enqueue("P1-P2", [&a, &pd, &buf, &dev, s, j, p] {
      const auto [lo, hi] = spike_partition_bounds(a.num_blocks(), j, p);
      // Device memory: partition blocks + two block columns.
      const idx nloc = (hi - lo) * s;
      const std::uint64_t bytes =
          static_cast<std::uint64_t>((3 * (hi - lo) - 2) * s * s) * 16u +
          static_cast<std::uint64_t>(2 * nloc * s) * 16u;
      buf = dev.allocate(bytes);
      dev.record_h2d(static_cast<std::uint64_t>((3 * (hi - lo) - 2) * s * s) *
                     16u);
      pd = spike_compute_partition(a, j, p);
    }));
  }
  for (auto& f : futs) f.get();

  // The reduced solve is the recursive merge step of Fig. 6; executed on the
  // device holding the first partition.
  CMatrix u;
  pool.device(0)
      .enqueue("spike-merge", [&] { u = spike_reduced_solve(parts, s); })
      .get();

  // Final correction per partition: x_j = y_j - V_j t_{j+1} - W_j b_{j-1}.
  const idx m = 2 * s;
  CMatrix q(a.dim(), m);
  std::vector<std::future<void>> post;
  post.reserve(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) {
    auto& pd = parts[static_cast<std::size_t>(j)];
    auto& dev = pool.device(j % pool.size());
    post.push_back(dev.enqueue("P3-P4", [&, j] {
      const CMatrix xj = spike_partition_correction(pd, j, p, u, s, m);
      dev.record_d2h(static_cast<std::uint64_t>(xj.size()) * 16u);
      q.set_block(pd.lo * s, 0, xj);
    }));
  }
  for (auto& f : post) f.get();
  return q;
}

// --- spatial (rank-cooperative) path --------------------------------------

int spike_partition_owner(int j, int p, int width, bool ends_to_root) {
  if (width <= 1) return 0;
  if (!ends_to_root) return j % width;
  // The end partitions carry the boundary self-energies only rank 0 holds;
  // interior partitions are identical in A and T, so any rank can compute
  // them from the plain assembled system.
  if (j == 0 || j == p - 1) return 0;
  return 1 + (j - 1) % (width - 1);
}

CMatrix spike_block_columns_spatial_root(const BlockTridiag& a,
                                         parallel::Comm& comm, int partitions,
                                         bool ends_to_root) {
  const idx nb = a.num_blocks();
  const idx s = a.block_size();
  const int p = partitions;
  if (!spike_partitioning_valid(nb, p))
    throw std::invalid_argument(
        "spike_block_columns_spatial_root: invalid partition count");
  const int width = comm.size();
  std::vector<SpikePartition> parts(static_cast<std::size_t>(p));
  // Own partitions first — the members compute theirs concurrently.
  for (int j = 0; j < p; ++j)
    if (spike_partition_owner(j, p, width, ends_to_root) == 0)
      parts[static_cast<std::size_t>(j)] = spike_compute_partition(a, j, p);
  // Receive the members' partitions (FIFO per member, ascending j).  All
  // transfers complete before any failure surfaces so the mailboxes stay
  // aligned with the protocol.
  bool poisoned = false;
  for (int j = 0; j < p; ++j) {
    const int owner = spike_partition_owner(j, p, width, ends_to_root);
    if (owner == 0) continue;
    auto& pd = parts[static_cast<std::size_t>(j)];
    const auto [lo, hi] = spike_partition_bounds(nb, j, p);
    pd.lo = lo;
    pd.hi = hi;
    pd.first_col = comm.recv_matrix(owner, kTagSpikeSpatial);
    pd.last_col = comm.recv_matrix(owner, kTagSpikeSpatial);
    pd.v = comm.recv_matrix(owner, kTagSpikeSpatial);
    pd.w = comm.recv_matrix(owner, kTagSpikeSpatial);
    if (pd.first_col.rows() != (hi - lo) * s || pd.first_col.cols() != s)
      poisoned = true;
  }
  if (poisoned)
    throw std::runtime_error(
        "spike spatial solve: a member rank failed to compute its partitions");
  return assemble_columns(a, parts);
}

void spike_spatial_member(const BlockTridiag& a, parallel::Comm& comm,
                          int partitions, bool ends_to_root) {
  const int me = comm.rank();
  const int width = comm.size();
  std::exception_ptr error;
  for (int j = 0; j < partitions; ++j) {
    if (spike_partition_owner(j, partitions, width, ends_to_root) != me)
      continue;
    SpikePartition pd;
    if (error == nullptr) {
      try {
        pd = spike_compute_partition(a, j, partitions);
      } catch (...) {
        error = std::current_exception();
        pd = SpikePartition{};  // poison: empty first_col
      }
    }
    comm.send_matrix(pd.first_col, 0, kTagSpikeSpatial);
    comm.send_matrix(pd.last_col, 0, kTagSpikeSpatial);
    comm.send_matrix(pd.v, 0, kTagSpikeSpatial);
    comm.send_matrix(pd.w, 0, kTagSpikeSpatial);
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void spike_spatial_drain(parallel::Comm& comm, int partitions,
                         bool ends_to_root) {
  const int width = comm.size();
  for (int j = 0; j < partitions; ++j) {
    const int owner = spike_partition_owner(j, partitions, width, ends_to_root);
    if (owner == 0) continue;
    for (int k = 0; k < 4; ++k) comm.recv_matrix(owner, kTagSpikeSpatial);
  }
}

void spike_spatial_member_poison(parallel::Comm& comm, int partitions,
                                 bool ends_to_root) {
  const int me = comm.rank();
  const CMatrix empty;
  for (int j = 0; j < partitions; ++j) {
    if (spike_partition_owner(j, partitions, comm.size(), ends_to_root) != me)
      continue;
    for (int k = 0; k < 4; ++k) comm.send_matrix(empty, 0, kTagSpikeSpatial);
  }
}

// --- partitioned diagonal blocks ------------------------------------------

std::vector<CMatrix> spike_diagonal_blocks(const BlockTridiag& a,
                                           int partitions) {
  const idx nb = a.num_blocks();
  const idx s = a.block_size();
  const int p = partitions;
  if (!spike_partitioning_valid(nb, p))
    throw std::invalid_argument(
        "spike_diagonal_blocks: invalid partition count");
  if (p == 1) return rgf_diagonal_blocks(a);

  // Per partition: local diagonal blocks, spikes, and the local inverse's
  // first/last block *rows* (via the transpose identity) that couple a unit
  // right-hand side in this partition to the interface unknowns.
  struct DiagPartition {
    SpikePartition pd;
    std::vector<CMatrix> dloc;  ///< local (A_j^{-1})_{c'c'}
    CMatrix top_rows_t;         ///< block c' = (A_j^{-1})_{first,c'}^T
    CMatrix bot_rows_t;         ///< block c' = (A_j^{-1})_{last,c'}^T
  };
  std::vector<DiagPartition> dp(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) {
    auto& d = dp[static_cast<std::size_t>(j)];
    const auto [lo, hi] = spike_partition_bounds(nb, j, p);
    const BlockTridiag local = extract_partition(a, lo, hi);
    d.pd = partition_from_local(a, local, lo, hi);
    d.dloc = rgf_diagonal_blocks(local);
    const BlockTridiag local_t = block_transpose(local);
    d.top_rows_t = rgf_first_block_column(local_t);
    d.bot_rows_t = rgf_last_block_column(local_t);
  }

  // Interface unknowns for every unit block column c: u_i(c) =
  // [x_i^{bot}; x_{i+1}^{top}] with the local solve y_j = A_j^{-1} E_c
  // non-zero only inside c's own partition.
  std::vector<SpikePartition> parts;
  parts.reserve(static_cast<std::size_t>(p));
  for (auto& d : dp) parts.push_back(d.pd);
  const BlockTridiag reduced = build_reduced(parts, s);
  const idx ni = p - 1;
  CMatrix rhs(ni * 2 * s, nb * s);
  for (int j = 0; j < p; ++j) {
    const auto& d = dp[static_cast<std::size_t>(j)];
    for (idx c = d.pd.lo; c < d.pd.hi; ++c) {
      const idx cl = c - d.pd.lo;  // block index inside the partition
      // y_j^{bot} feeds interface j (rows [0, s)), y_j^{top} interface j-1
      // (rows [s, 2s)).
      if (j < p - 1)
        rhs.set_block(static_cast<idx>(j) * 2 * s, c * s,
                      d.bot_rows_t.block(cl * s, 0, s, s).transpose());
      if (j > 0)
        rhs.set_block((static_cast<idx>(j) - 1) * 2 * s + s, c * s,
                      d.top_rows_t.block(cl * s, 0, s, s).transpose());
    }
  }
  const CMatrix u = BlockTridiagLU(reduced).solve(rhs);

  // Corrections: G_cc = (A_j^{-1})_{c'c'} - V_j[c'] t_{j+1}(c) - W_j[c']
  // b_{j-1}(c).
  std::vector<CMatrix> out;
  out.reserve(static_cast<std::size_t>(nb));
  for (int j = 0; j < p; ++j) {
    const auto& d = dp[static_cast<std::size_t>(j)];
    for (idx c = d.pd.lo; c < d.pd.hi; ++c) {
      const idx cl = c - d.pd.lo;
      CMatrix g = d.dloc[static_cast<std::size_t>(cl)];
      if (j < p - 1 && d.pd.v.rows() > 0) {
        const CMatrix t_next =
            u.block(static_cast<idx>(j) * 2 * s + s, c * s, s, s);
        const CMatrix vj = d.pd.v.block(cl * s, 0, s, s);
        numeric::gemm(vj, t_next, g, cplx{-1.0}, cplx{1.0});
      }
      if (j > 0 && d.pd.w.rows() > 0) {
        const CMatrix b_prev =
            u.block((static_cast<idx>(j) - 1) * 2 * s, c * s, s, s);
        const CMatrix wj = d.pd.w.block(cl * s, 0, s, s);
        numeric::gemm(wj, b_prev, g, cplx{-1.0}, cplx{1.0});
      }
      out.push_back(std::move(g));
    }
  }
  return out;
}

}  // namespace omenx::solvers
