#include "solvers/spike.hpp"

#include <future>
#include <stdexcept>
#include <vector>

#include "numeric/blas.hpp"
#include "solvers/block_lu.hpp"
#include "solvers/rgf.hpp"

namespace omenx::solvers {

using numeric::cplx;

bool spike_partitioning_valid(idx num_blocks, int partitions) {
  if (partitions < 1) return false;
  if ((partitions & (partitions - 1)) != 0) return false;  // power of two
  return static_cast<idx>(partitions) <= num_blocks;
}

namespace {

BlockTridiag extract_partition(const BlockTridiag& a, idx lo, idx hi) {
  BlockTridiag part(hi - lo, a.block_size());
  for (idx i = lo; i < hi; ++i) {
    part.diag(i - lo) = a.diag(i);
    if (i + 1 < hi) {
      part.upper(i - lo) = a.upper(i);
      part.lower(i - lo) = a.lower(i);
    }
  }
  return part;
}

struct PartitionData {
  idx lo = 0, hi = 0;
  CMatrix first_col;  ///< local A_j^{-1} first block column (n_j*s x s)
  CMatrix last_col;   ///< local A_j^{-1} last block column
  CMatrix v;          ///< spike V_j = last_col * upper(hi-1)     (0 for last)
  CMatrix w;          ///< spike W_j = first_col * lower(lo-1)    (0 for first)
  parallel::DeviceBuffer storage;  ///< device-memory reservation
};

}  // namespace

CMatrix spike_block_columns(const BlockTridiag& a, parallel::DevicePool& pool,
                            const SpikeOptions& options) {
  const idx nb = a.num_blocks();
  const idx s = a.block_size();
  const int p = options.partitions;
  if (!spike_partitioning_valid(nb, p))
    throw std::invalid_argument(
        "spike_block_columns: partitions must be a power of two and <= nb");

  if (p == 1) {
    CMatrix q;
    pool.device(0)
        .enqueue("P1-P4",
                 [&] {
                   auto buf = pool.device(0).allocate(
                       static_cast<std::uint64_t>(a.nnz(0.0)) * 16u);
                   pool.device(0).record_h2d(
                       static_cast<std::uint64_t>(a.dim()) * s * 16u);
                   q = rgf_block_columns(a);
                   pool.device(0).record_d2h(
                       static_cast<std::uint64_t>(q.size()) * 16u);
                 })
        .get();
    return q;
  }

  // Partition bounds: as even as possible.
  std::vector<PartitionData> parts(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) {
    parts[static_cast<std::size_t>(j)].lo = nb * j / p;
    parts[static_cast<std::size_t>(j)].hi = nb * (j + 1) / p;
  }

  // Phase P1..P4 per partition: local RGF sweeps on the partition's device.
  std::vector<std::future<void>> futs;
  futs.reserve(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) {
    auto& pd = parts[static_cast<std::size_t>(j)];
    auto& dev = pool.device(j % pool.size());
    futs.push_back(dev.enqueue(
        "P1-P2", [&a, &pd, &dev, s, j, nb] {
          const BlockTridiag local = extract_partition(a, pd.lo, pd.hi);
          // Device memory: partition blocks + two block columns.
          const std::uint64_t bytes =
              static_cast<std::uint64_t>(local.nnz(0.0)) * 16u +
              static_cast<std::uint64_t>(2 * local.dim() * s) * 16u;
          pd.storage = dev.allocate(bytes);
          dev.record_h2d(static_cast<std::uint64_t>(local.nnz(0.0)) * 16u);
          pd.first_col = rgf_first_block_column(local);
          pd.last_col = rgf_last_block_column(local);
          // Spikes toward the neighbours.
          if (pd.hi < nb) {
            numeric::gemm(pd.last_col, a.upper(pd.hi - 1), pd.v);
          }
          if (pd.lo > 0) {
            numeric::gemm(pd.first_col, a.lower(pd.lo - 1), pd.w);
          }
          (void)j;
        }));
  }
  for (auto& f : futs) f.get();

  // Reduced interface system ("spike merge"): unknowns per interface i are
  // u_i = [x_i^{bot}; x_{i+1}^{top}] where x_j^{top/bot} are the first/last
  // s rows of partition j's solution.
  const idx ni = p - 1;
  const idx m = 2 * s;  // RHS columns: global e_first and e_last blocks
  BlockTridiag reduced(ni, 2 * s);
  CMatrix rhs(ni * 2 * s, m);

  auto top_rows = [&](const CMatrix& mat) {
    return mat.rows() == 0 ? CMatrix(s, mat.cols()) : mat.block(0, 0, s, mat.cols());
  };
  auto bot_rows = [&](const CMatrix& mat) {
    return mat.rows() == 0 ? CMatrix(s, mat.cols())
                           : mat.block(mat.rows() - s, 0, s, mat.cols());
  };
  // y_j is nonzero only for the first partition (columns 0..s-1 equal its
  // local first column) and the last partition (columns s..2s-1, local last
  // column).
  auto y_top = [&](int j) {
    CMatrix y(s, m);
    if (j == 0) y.set_block(0, 0, top_rows(parts[0].first_col));
    if (j == p - 1)
      y.set_block(0, s, top_rows(parts[static_cast<std::size_t>(j)].last_col));
    return y;
  };
  auto y_bot = [&](int j) {
    CMatrix y(s, m);
    if (j == 0) y.set_block(0, 0, bot_rows(parts[0].first_col));
    if (j == p - 1)
      y.set_block(0, s, bot_rows(parts[static_cast<std::size_t>(j)].last_col));
    return y;
  };

  for (idx i = 0; i < ni; ++i) {
    const auto& pj = parts[static_cast<std::size_t>(i)];
    const auto& pj1 = parts[static_cast<std::size_t>(i + 1)];
    CMatrix& d = reduced.diag(i);
    d.set_block(0, 0, CMatrix::identity(s));
    d.set_block(s, s, CMatrix::identity(s));
    if (pj.v.rows() > 0) d.set_block(0, s, bot_rows(pj.v));
    if (pj1.w.rows() > 0) d.set_block(s, 0, top_rows(pj1.w));
    if (i > 0) {
      // Coupling to u_{i-1}: x_i^{bot} depends on x_{i-1}^{bot} via W_i.
      CMatrix& lo = reduced.lower(i - 1);
      if (pj.w.rows() > 0) lo.set_block(0, 0, bot_rows(pj.w));
    }
    if (i + 1 < ni) {
      // Coupling to u_{i+1}: x_{i+1}^{top} depends on x_{i+2}^{top} via V.
      CMatrix& up = reduced.upper(i);
      if (pj1.v.rows() > 0) up.set_block(s, s, top_rows(pj1.v));
    }
    rhs.set_block(i * 2 * s, 0, y_bot(static_cast<int>(i)));
    rhs.set_block(i * 2 * s + s, 0, y_top(static_cast<int>(i + 1)));
  }

  // The reduced solve is the recursive merge step of Fig. 6; executed on the
  // device holding the first partition.
  CMatrix u;
  pool.device(0)
      .enqueue("spike-merge",
               [&] { u = BlockTridiagLU(reduced).solve(rhs); })
      .get();

  // Final correction per partition: x_j = y_j - V_j t_{j+1} - W_j b_{j-1}.
  CMatrix q(a.dim(), m);
  std::vector<std::future<void>> post;
  post.reserve(static_cast<std::size_t>(p));
  for (int j = 0; j < p; ++j) {
    auto& pd = parts[static_cast<std::size_t>(j)];
    auto& dev = pool.device(j % pool.size());
    post.push_back(dev.enqueue("P3-P4", [&, j] {
      const idx nloc = (pd.hi - pd.lo) * s;
      CMatrix xj(nloc, m);
      if (j == 0) xj.set_block(0, 0, pd.first_col);
      if (j == p - 1) xj.set_block(0, s, pd.last_col);
      if (j < p - 1 && pd.v.rows() > 0) {
        // t_{j+1} lives in u_j rows [s, 2s).
        const CMatrix t_next = u.block(j * 2 * s + s, 0, s, m);
        numeric::gemm(pd.v, t_next, xj, cplx{-1.0}, cplx{1.0});
      }
      if (j > 0 && pd.w.rows() > 0) {
        // b_{j-1} lives in u_{j-1} rows [0, s).
        const CMatrix b_prev = u.block((j - 1) * 2 * s, 0, s, m);
        numeric::gemm(pd.w, b_prev, xj, cplx{-1.0}, cplx{1.0});
      }
      dev.record_d2h(static_cast<std::uint64_t>(xj.size()) * 16u);
      q.set_block(pd.lo * s, 0, xj);
    }));
  }
  for (auto& f : post) f.get();
  return q;
}

}  // namespace omenx::solvers
