#include "solvers/splitsolve.hpp"

#include <stdexcept>

#include "numeric/blas.hpp"
#include "numeric/lu.hpp"
#include "parallel/comm.hpp"
#include "parallel/tracer.hpp"

namespace omenx::solvers {

using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

SplitSolve::SplitSolve(const BlockTridiag& a, parallel::DevicePool* pool,
                       SplitSolveOptions options)
    : dim_(a.dim()), s_(a.block_size()) {
  if (!spike_partitioning_valid(a.num_blocks(), options.partitions))
    throw std::invalid_argument("SplitSolve: invalid partition count");
  SpikeOptions so;
  so.partitions = options.partitions;
  // Step 1 runs asynchronously; the caller computes Sigma/Inj meanwhile.
  // Q does not depend on the boundary self-energies, so the spatial members
  // can compute their partitions of A without ever seeing Sigma — all three
  // execution routes share the per-partition arithmetic and are
  // bit-identical for equal partition counts.
  parallel::Comm* spatial =
      options.spatial != nullptr && options.spatial->size() > 1
          ? options.spatial
          : nullptr;
  q_future_ = std::async(std::launch::async, [&a, pool, so, spatial] {
                if (spatial != nullptr)
                  return spike_block_columns_spatial_root(
                      a, *spatial, so.partitions, /*ends_to_root=*/false);
                if (pool != nullptr) return spike_block_columns(a, *pool, so);
                return spike_block_columns(a, so);
              }).share();
}

const CMatrix& SplitSolve::preprocessed_q() {
  if (!q_ready_) {
    q_ = q_future_.get();
    q_ready_ = true;
  }
  return q_;
}

CMatrix SplitSolve::solve(const CMatrix& sigma_l, const CMatrix& sigma_r,
                          const CMatrix& b_top, const CMatrix& b_bottom) {
  const CMatrix& q = preprocessed_q();
  return solve_with_q(q, dim_, s_, sigma_l, sigma_r, b_top, b_bottom);
}

CMatrix SplitSolve::solve_with_q(const CMatrix& q, idx dim, idx s,
                                 const CMatrix& sigma_l, const CMatrix& sigma_r,
                                 const CMatrix& b_top,
                                 const CMatrix& b_bottom) {
  if (sigma_l.rows() != s || sigma_r.rows() != s)
    throw std::invalid_argument("SplitSolve::solve: sigma size mismatch");
  if (b_top.rows() != s || b_bottom.rows() != s ||
      b_top.cols() != b_bottom.cols())
    throw std::invalid_argument("SplitSolve::solve: RHS size mismatch");
  const idx m = b_top.cols();
  parallel::TraceScope trace("postprocess", /*device_id=*/-1);

  // b' = stacked non-zero rows of b.
  CMatrix bprime(2 * s, m);
  bprime.set_block(0, 0, b_top);
  bprime.set_block(s, 0, b_bottom);

  // Step 2: y = Q b'.
  const CMatrix y = numeric::matmul(q, bprime);

  // Step 3: R = 1 - C Q (2s x 2s) and z = R^{-1} C y.
  // C has Sigma_L in its top-left and Sigma_R in its bottom-right corner, so
  // C M = [Sigma_L * M_toprows; Sigma_R * M_botrows] for any M.
  const CMatrix q_top = q.block(0, 0, s, 2 * s);
  const CMatrix q_bot = q.block(dim - s, 0, s, 2 * s);
  CMatrix cq(2 * s, 2 * s);
  cq.set_block(0, 0, numeric::matmul(sigma_l, q_top));
  cq.set_block(s, 0, numeric::matmul(sigma_r, q_bot));
  CMatrix r = CMatrix::identity(2 * s);
  r -= cq;

  CMatrix cy(2 * s, m);
  cy.set_block(0, 0, numeric::matmul(sigma_l, y.block(0, 0, s, m)));
  cy.set_block(s, 0, numeric::matmul(sigma_r, y.block(dim - s, 0, s, m)));
  const CMatrix z = numeric::solve(r, cy);

  // Step 4: x = Q (b' + z).
  CMatrix bz = bprime;
  bz += z;
  return numeric::matmul(q, bz);
}

BlockTridiag apply_boundary(const BlockTridiag& a, const CMatrix& sigma_l,
                            const CMatrix& sigma_r) {
  BlockTridiag t;
  apply_boundary_into(t, a, sigma_l, sigma_r);
  return t;
}

void apply_boundary_into(BlockTridiag& t, const BlockTridiag& a,
                         const CMatrix& sigma_l, const CMatrix& sigma_r) {
  t = a;
  t.diag(0).add_block(0, 0, sigma_l, cplx{-1.0});
  t.diag(t.num_blocks() - 1).add_block(0, 0, sigma_r, cplx{-1.0});
}

CMatrix expand_boundary_rhs(idx dim, const CMatrix& b_top,
                            const CMatrix& b_bottom) {
  CMatrix b;
  expand_boundary_rhs_into(b, dim, b_top, b_bottom);
  return b;
}

void expand_boundary_rhs_into(CMatrix& b, idx dim, const CMatrix& b_top,
                              const CMatrix& b_bottom) {
  b.resize(dim, b_top.cols());
  b.set_block(0, 0, b_top);
  b.set_block(dim - b_bottom.rows(), 0, b_bottom);
}

}  // namespace omenx::solvers
