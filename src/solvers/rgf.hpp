// Recursive Green's Function kernels (Ref. [47]) modified per Algorithm 1
// of the paper: compute only the first and last block columns of A^{-1}.
//
// The two sweeps (first column: bottom-up fold then top-down accumulate;
// last column: mirrored) are independent — "they naturally scale to two
// accelerators".  A diagonal-of-inverse variant supports Green's-function
// observables (DOS, Fig. 10 maps).
#pragma once

#include <vector>

#include "blockmat/block_tridiag.hpp"
#include "numeric/matrix.hpp"

namespace omenx::solvers {

using blockmat::BlockTridiag;
using numeric::CMatrix;
using numeric::idx;

/// First block column of A^{-1}: stacked blocks G_{i,0}, i = 0..nb-1
/// (dim() x s).  Implements the downward fold X_i and the accumulation
/// Q_i = -X_i Q_{i-1} of Algorithm 1.
CMatrix rgf_first_block_column(const BlockTridiag& a);

/// Last block column of A^{-1}: stacked blocks G_{i,nb-1} (dim() x s).
CMatrix rgf_last_block_column(const BlockTridiag& a);

/// Both columns side by side (dim() x 2s): [A^{-1}_{:,first}, A^{-1}_{:,last}].
CMatrix rgf_block_columns(const BlockTridiag& a);

/// Diagonal blocks of A^{-1} (standard RGF forward/backward recursion).
std::vector<CMatrix> rgf_diagonal_blocks(const BlockTridiag& a);

/// x = A^{-1} b for a general dense b (dim() x m): the downward-fold
/// recursion of Algorithm 1 applied to an arbitrary right-hand side (block
/// Thomas with per-block LU pivots).  This is the N-terminal path — RHS
/// rows may be non-zero at any block, not just the corners.
CMatrix rgf_solve(const BlockTridiag& a, const CMatrix& b);

}  // namespace omenx::solvers
