// Block-tridiagonal direct LU (block Thomas algorithm).
//
// This is the repository's stand-in for MUMPS in Fig. 8: a general sparse
// direct solver that factors the whole matrix and solves for every
// right-hand side column, without exploiting that only the first/last block
// columns of T^{-1} are needed.  Complexity: O(nb * s^3) factor +
// O(nb * s^2 * nrhs) solve.
//
// A default-constructed instance can be re-factored with factor() point
// after point: the per-block containers keep their capacity, so steady-
// state refactorization performs no heap allocation (the energy sweep's
// per-thread context relies on this).
#pragma once

#include <memory>
#include <vector>

#include "blockmat/block_tridiag.hpp"
#include "numeric/lu.hpp"

namespace omenx::numeric {
class Backend;
}  // namespace omenx::numeric

namespace omenx::solvers {

using blockmat::BlockTridiag;
using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

class BlockTridiagLU {
 public:
  /// Empty factorization; call factor() before solve().
  BlockTridiagLU() = default;

  /// Factor the block-tridiagonal matrix.  Throws on singular pivot blocks.
  explicit BlockTridiagLU(const BlockTridiag& a) { factor(a); }

  /// (Re-)factor `a`, reusing the containers of any previous factorization.
  void factor(const BlockTridiag& a);

  /// Solve A X = B for dense multi-column B (dim() rows).
  CMatrix solve(const CMatrix& b) const;

  /// Factor a batch of same-shape systems in stage lockstep: elimination
  /// row i issues one batched left-solve (the L couplings of every
  /// problem), one batched s x s GEMM (every trailing update), and one
  /// batched dense LU (every new pivot block) through `backend` — the
  /// zgetrf_batched shape of the paper's device phase.  out[p] is
  /// bit-identical to BlockTridiagLU(*as[p]): the batched stages run the
  /// same scalar kernels on the same operands, only grouped across
  /// problems instead of across rows.  Throws if shapes differ.
  static void factor_batched(std::vector<BlockTridiagLU>& out,
                             const std::vector<const BlockTridiag*>& as,
                             numeric::Backend& backend);

  idx dim() const noexcept { return nb_ * s_; }

 private:
  idx nb_ = 0;
  idx s_ = 0;
  std::vector<numeric::LUFactor> dtilde_;  ///< factored pivot blocks
  std::vector<CMatrix> l_;                 ///< L_i = A_{i,i-1} Dt_{i-1}^{-1}
  std::vector<CMatrix> u_;                 ///< copies of A_{i,i+1}
};

/// One-shot convenience.
CMatrix block_lu_solve(const BlockTridiag& a, const CMatrix& b);

}  // namespace omenx::solvers
