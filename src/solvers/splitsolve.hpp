// SplitSolve: the paper's core algorithmic contribution (Section 3B).
//
// The Schroedinger system T x = b with T = (E S - H - Sigma^RB) is split via
// the Sherman-Morrison-Woodbury identity as T = A - B C, with
//   A = E S - H                            (block tridiagonal, no OBCs),
//   B = [e_first I, e_last I]              (N_SS x 2s selector),
//   C = diag-corner(Sigma_L, Sigma_R)      (2s x N_SS).
// Step 1 computes Q = A^{-1} B (first/last block columns of A^{-1}) on the
// accelerators — *before* the boundary self-energies exist, which is what
// lets the OBC solve (FEAST, on CPUs) overlap with the heavy GPU work.
// Steps 2-4 are cheap once Sigma and Inj arrive:
//   y = Q b',   R = 1 - C Q,   z = R^{-1} C y,   x = Q (b' + z).
#pragma once

#include <future>
#include <memory>

#include "blockmat/block_tridiag.hpp"
#include "numeric/matrix.hpp"
#include "parallel/device.hpp"
#include "solvers/spike.hpp"

namespace omenx::parallel {
class Comm;
}

namespace omenx::solvers {

struct SplitSolveOptions {
  int partitions = 1;  ///< SPIKE partitions (power of two)
  /// Spatial sub-communicator (Fig. 9 level 3).  Non-null with size > 1:
  /// Step 1's partitions are computed cooperatively by the communicator's
  /// ranks — the caller must be rank 0 and the other ranks must serve the
  /// same solve (spike_spatial_member on the same A).  Bit-identical to the
  /// pool/host paths for equal partition counts.
  parallel::Comm* spatial = nullptr;
};

class SplitSolve {
 public:
  /// Launches Step 1 (Q = A^{-1} B) asynchronously on `pool`'s devices, the
  /// spatial ranks, or (with neither) a host thread.  `a` must be E*S - H
  /// *without* boundary self-energies and must outlive Step 1.
  SplitSolve(const BlockTridiag& a, parallel::DevicePool* pool,
             SplitSolveOptions options = {});

  /// Back-compat convenience: pool by reference.
  SplitSolve(const BlockTridiag& a, parallel::DevicePool& pool,
             SplitSolveOptions options = {})
      : SplitSolve(a, &pool, options) {}

  /// Block until Step 1 finishes; returns Q (dim x 2s).
  const numeric::CMatrix& preprocessed_q();

  /// Steps 2-4.  `b_top` (s x m) and `b_bottom` (s x m) are the non-zero
  /// block rows of the sparse right-hand side (injection enters through
  /// b_top for left-incident carriers).  Returns the full solution x.
  numeric::CMatrix solve(const numeric::CMatrix& sigma_l,
                         const numeric::CMatrix& sigma_r,
                         const numeric::CMatrix& b_top,
                         const numeric::CMatrix& b_bottom);

  /// Steps 2-4 against an externally computed Q = A^{-1} B (dim x 2s with
  /// block size s).  This is the whole of solve() minus Step 1 — the
  /// batched pipeline computes many Qs as one backend dispatch and then
  /// runs this per problem, bit-identical to solve() on the same Q.
  static numeric::CMatrix solve_with_q(const numeric::CMatrix& q,
                                       numeric::idx dim, numeric::idx s,
                                       const numeric::CMatrix& sigma_l,
                                       const numeric::CMatrix& sigma_r,
                                       const numeric::CMatrix& b_top,
                                       const numeric::CMatrix& b_bottom);

  numeric::idx dim() const noexcept { return dim_; }
  numeric::idx block_size() const noexcept { return s_; }

 private:
  numeric::idx dim_ = 0;
  numeric::idx s_ = 0;
  std::shared_future<numeric::CMatrix> q_future_;
  numeric::CMatrix q_;
  bool q_ready_ = false;
};

/// Fold the boundary self-energies into a copy of `a` (first/last diagonal
/// blocks receive -Sigma): the explicit T used by the direct-solver
/// baselines of Fig. 8.
BlockTridiag apply_boundary(const BlockTridiag& a,
                            const numeric::CMatrix& sigma_l,
                            const numeric::CMatrix& sigma_r);

/// In-place variant: rebuild `t` as `a` with the self-energies applied,
/// reusing t's block storage (the allocation-free energy-point path).
void apply_boundary_into(BlockTridiag& t, const BlockTridiag& a,
                         const numeric::CMatrix& sigma_l,
                         const numeric::CMatrix& sigma_r);

/// Expand sparse boundary RHS (top/bottom blocks) to a dense column set.
numeric::CMatrix expand_boundary_rhs(numeric::idx dim,
                                     const numeric::CMatrix& b_top,
                                     const numeric::CMatrix& b_bottom);

/// In-place variant of expand_boundary_rhs, reusing b's storage.
void expand_boundary_rhs_into(numeric::CMatrix& b, numeric::idx dim,
                              const numeric::CMatrix& b_top,
                              const numeric::CMatrix& b_bottom);

}  // namespace omenx::solvers
