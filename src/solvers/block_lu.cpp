#include "solvers/block_lu.hpp"

#include <stdexcept>

#include "numeric/blas.hpp"

namespace omenx::solvers {

void BlockTridiagLU::factor(const BlockTridiag& a) {
  nb_ = a.num_blocks();
  s_ = a.block_size();
  dtilde_.clear();
  l_.clear();
  u_.clear();
  dtilde_.reserve(static_cast<std::size_t>(nb_));
  l_.reserve(static_cast<std::size_t>(nb_));
  u_.reserve(static_cast<std::size_t>(nb_));
  CMatrix dt = a.diag(0);
  dtilde_.emplace_back(dt);
  l_.emplace_back();  // unused slot for i = 0
  for (idx i = 1; i < nb_; ++i) {
    // L_i = A_{i,i-1} * Dt_{i-1}^{-1}  (solved as  L_i Dt_{i-1} = A_{i,i-1}).
    CMatrix li = dtilde_.back().solve_left(a.lower(i - 1));
    CMatrix di = a.diag(i);
    numeric::gemm(li, a.upper(i - 1), di, cplx{-1.0}, cplx{1.0});
    l_.push_back(std::move(li));
    dtilde_.emplace_back(std::move(di));
  }
  for (idx i = 0; i + 1 < nb_; ++i) u_.push_back(a.upper(i));
}

CMatrix BlockTridiagLU::solve(const CMatrix& b) const {
  if (b.rows() != dim())
    throw std::invalid_argument("BlockTridiagLU::solve: dimension mismatch");
  const idx m = b.cols();
  // Forward: y_i = b_i - L_i y_{i-1}, updated in place on the stacked RHS
  // through the strided GEMM view (no block copies).
  CMatrix y = b;
  for (idx i = 1; i < nb_; ++i) {
    const CMatrix& li = l_[static_cast<std::size_t>(i)];
    numeric::gemm_view('N', li.data(), li.cols(), 'N',
                       y.row_ptr((i - 1) * s_), m, s_, m, s_, cplx{-1.0},
                       cplx{1.0}, y.row_ptr(i * s_), m);
  }
  // Backward: x_n = Dt_n^{-1} y_n; x_i = Dt_i^{-1} (y_i - U_i x_{i+1}).
  CMatrix x(dim(), m);
  CMatrix rhs;
  CMatrix xi = dtilde_.back().solve(y.block((nb_ - 1) * s_, 0, s_, m));
  x.set_block((nb_ - 1) * s_, 0, xi);
  for (idx i = nb_ - 2; i >= 0; --i) {
    y.block_into(i * s_, 0, s_, m, rhs);
    numeric::gemm(u_[static_cast<std::size_t>(i)], xi, rhs, cplx{-1.0},
                  cplx{1.0});
    xi = dtilde_[static_cast<std::size_t>(i)].solve(rhs);
    x.set_block(i * s_, 0, xi);
  }
  return x;
}

CMatrix block_lu_solve(const BlockTridiag& a, const CMatrix& b) {
  return BlockTridiagLU(a).solve(b);
}

}  // namespace omenx::solvers
