#include "solvers/block_lu.hpp"

#include <stdexcept>
#include <utility>

#include "numeric/backend.hpp"
#include "numeric/blas.hpp"

namespace omenx::solvers {

void BlockTridiagLU::factor(const BlockTridiag& a) {
  nb_ = a.num_blocks();
  s_ = a.block_size();
  dtilde_.clear();
  l_.clear();
  u_.clear();
  dtilde_.reserve(static_cast<std::size_t>(nb_));
  l_.reserve(static_cast<std::size_t>(nb_));
  u_.reserve(static_cast<std::size_t>(nb_));
  CMatrix dt = a.diag(0);
  dtilde_.emplace_back(dt);
  l_.emplace_back();  // unused slot for i = 0
  for (idx i = 1; i < nb_; ++i) {
    // L_i = A_{i,i-1} * Dt_{i-1}^{-1}  (solved as  L_i Dt_{i-1} = A_{i,i-1}).
    CMatrix li = dtilde_.back().solve_left(a.lower(i - 1));
    CMatrix di = a.diag(i);
    numeric::gemm(li, a.upper(i - 1), di, cplx{-1.0}, cplx{1.0});
    l_.push_back(std::move(li));
    dtilde_.emplace_back(std::move(di));
  }
  for (idx i = 0; i + 1 < nb_; ++i) u_.push_back(a.upper(i));
}

void BlockTridiagLU::factor_batched(std::vector<BlockTridiagLU>& out,
                                    const std::vector<const BlockTridiag*>& as,
                                    numeric::Backend& backend) {
  const std::size_t n = as.size();
  out.resize(n);
  if (n == 0) return;
  for (const BlockTridiag* a : as) {
    if (a == nullptr)
      throw std::invalid_argument("factor_batched: null system");
    if (a->num_blocks() != as[0]->num_blocks() ||
        a->block_size() != as[0]->block_size())
      throw std::invalid_argument(
          "factor_batched: mixed block structures in one batch");
  }
  const idx nb = as[0]->num_blocks();
  const idx s = as[0]->block_size();
  for (std::size_t p = 0; p < n; ++p) {
    out[p].nb_ = nb;
    out[p].s_ = s;
    out[p].dtilde_.clear();
    out[p].l_.clear();
    out[p].u_.clear();
    out[p].dtilde_.reserve(static_cast<std::size_t>(nb));
    out[p].l_.reserve(static_cast<std::size_t>(nb));
    out[p].u_.reserve(static_cast<std::size_t>(nb));
  }
  // Stage lockstep across the batch: where factor() walks rows with one
  // kernel call each, the batch walks the same rows with one *batched* call
  // each, so every stage presents p same-shape problems to the backend at
  // once.  Per problem the operands and kernels are exactly factor()'s.
  std::vector<const CMatrix*> blocks(n);
  for (std::size_t p = 0; p < n; ++p) blocks[p] = &as[p]->diag(0);
  std::vector<numeric::LUFactor> f0 = backend.lu_factor_batched(blocks);
  for (std::size_t p = 0; p < n; ++p) {
    out[p].dtilde_.push_back(std::move(f0[p]));
    out[p].l_.emplace_back();  // unused slot for i = 0
  }
  std::vector<const numeric::LUFactor*> pivots(n);
  std::vector<CMatrix> lis;
  std::vector<numeric::GemmBatchItem> items(n);
  for (idx i = 1; i < nb; ++i) {
    for (std::size_t p = 0; p < n; ++p) {
      pivots[p] = &out[p].dtilde_.back();
      blocks[p] = &as[p]->lower(i - 1);
    }
    backend.lu_solve_left_batched(pivots, blocks, lis);
    std::vector<CMatrix> dis;
    dis.reserve(n);
    for (std::size_t p = 0; p < n; ++p) dis.push_back(as[p]->diag(i));
    for (std::size_t p = 0; p < n; ++p) {
      const CMatrix& up = as[p]->upper(i - 1);
      items[p] = {lis[p].data(), lis[p].cols(), up.data(), up.cols(),
                  dis[p].data(), dis[p].cols()};
    }
    backend.gemm_batched('N', 'N', s, s, s, cplx{-1.0}, cplx{1.0}, items);
    for (std::size_t p = 0; p < n; ++p) blocks[p] = &dis[p];
    std::vector<numeric::LUFactor> fi = backend.lu_factor_batched(blocks);
    for (std::size_t p = 0; p < n; ++p) {
      out[p].l_.push_back(std::move(lis[p]));
      out[p].dtilde_.push_back(std::move(fi[p]));
    }
  }
  for (std::size_t p = 0; p < n; ++p)
    for (idx i = 0; i + 1 < nb; ++i) out[p].u_.push_back(as[p]->upper(i));
}

CMatrix BlockTridiagLU::solve(const CMatrix& b) const {
  if (b.rows() != dim())
    throw std::invalid_argument("BlockTridiagLU::solve: dimension mismatch");
  const idx m = b.cols();
  // Forward: y_i = b_i - L_i y_{i-1}, updated in place on the stacked RHS
  // through the strided GEMM view (no block copies).
  CMatrix y = b;
  for (idx i = 1; i < nb_; ++i) {
    const CMatrix& li = l_[static_cast<std::size_t>(i)];
    numeric::gemm_view('N', li.data(), li.cols(), 'N',
                       y.row_ptr((i - 1) * s_), m, s_, m, s_, cplx{-1.0},
                       cplx{1.0}, y.row_ptr(i * s_), m);
  }
  // Backward: x_n = Dt_n^{-1} y_n; x_i = Dt_i^{-1} (y_i - U_i x_{i+1}).
  CMatrix x(dim(), m);
  CMatrix rhs;
  CMatrix xi = dtilde_.back().solve(y.block((nb_ - 1) * s_, 0, s_, m));
  x.set_block((nb_ - 1) * s_, 0, xi);
  for (idx i = nb_ - 2; i >= 0; --i) {
    y.block_into(i * s_, 0, s_, m, rhs);
    numeric::gemm(u_[static_cast<std::size_t>(i)], xi, rhs, cplx{-1.0},
                  cplx{1.0});
    xi = dtilde_[static_cast<std::size_t>(i)].solve(rhs);
    x.set_block(i * s_, 0, xi);
  }
  return x;
}

CMatrix block_lu_solve(const BlockTridiag& a, const CMatrix& b) {
  return BlockTridiagLU(a).solve(b);
}

}  // namespace omenx::solvers
