#include "solvers/bcr.hpp"

#include <stdexcept>
#include <vector>

#include "numeric/blas.hpp"
#include "numeric/lu.hpp"

namespace omenx::solvers {

namespace {

using numeric::cplx;
using numeric::idx;

struct Level {
  std::vector<CMatrix> diag, upper, lower;
  std::vector<CMatrix> rhs;
};

}  // namespace

CMatrix bcr_solve(const BlockTridiag& a, const CMatrix& b) {
  const idx nb = a.num_blocks();
  const idx s = a.block_size();
  if (b.rows() != a.dim())
    throw std::invalid_argument("bcr_solve: dimension mismatch");
  const idx m = b.cols();

  // Load level 0.
  Level cur;
  cur.diag.reserve(static_cast<std::size_t>(nb));
  for (idx i = 0; i < nb; ++i) {
    cur.diag.push_back(a.diag(i));
    cur.rhs.push_back(b.block(i * s, 0, s, m));
    if (i + 1 < nb) {
      cur.upper.push_back(a.upper(i));
      cur.lower.push_back(a.lower(i));
    }
  }

  // Reduction: repeatedly eliminate odd-indexed rows.  Keep the elimination
  // data to back-substitute afterwards.
  struct Eliminated {
    std::vector<idx> kept_of;           // kept index list at this level
    Level level;                        // the level *before* reduction
  };
  std::vector<Eliminated> history;

  while (static_cast<idx>(cur.diag.size()) > 1) {
    const idx n = static_cast<idx>(cur.diag.size());
    Eliminated rec;
    rec.level = cur;

    Level next;
    std::vector<idx> kept;
    for (idx i = 0; i < n; i += 2) kept.push_back(i);
    rec.kept_of = kept;

    // For each even row i, eliminate its odd neighbours i-1 and i+1:
    //   D'_i = D_i - L_{i-1->i} Dinv_{i-1} U_{i-1->i... }
    // with the tridiagonal convention upper[j] couples j -> j+1.
    const idx nn = static_cast<idx>(kept.size());
    next.diag.resize(static_cast<std::size_t>(nn));
    next.rhs.resize(static_cast<std::size_t>(nn));
    if (nn > 1) {
      next.upper.resize(static_cast<std::size_t>(nn - 1));
      next.lower.resize(static_cast<std::size_t>(nn - 1));
    }

    for (idx kidx = 0; kidx < nn; ++kidx) {
      const idx i = kept[static_cast<std::size_t>(kidx)];
      CMatrix d = cur.diag[static_cast<std::size_t>(i)];
      CMatrix r = cur.rhs[static_cast<std::size_t>(i)];
      // Left odd neighbour i-1.
      if (i - 1 >= 0) {
        const numeric::LUFactor lu(cur.diag[static_cast<std::size_t>(i - 1)]);
        // Coupling i -> i-1 is lower[i-1]^T position: A_{i,i-1} = lower[i-1].
        const CMatrix g_up = lu.solve(cur.upper[static_cast<std::size_t>(i - 1)]);
        const CMatrix g_r = lu.solve(cur.rhs[static_cast<std::size_t>(i - 1)]);
        numeric::gemm(cur.lower[static_cast<std::size_t>(i - 1)], g_up, d,
                      cplx{-1.0}, cplx{1.0});
        numeric::gemm(cur.lower[static_cast<std::size_t>(i - 1)], g_r, r,
                      cplx{-1.0}, cplx{1.0});
        // New coupling to the even row i-2 (goes into next-level lower).
        if (i - 2 >= 0 && kidx > 0) {
          const CMatrix g_low =
              lu.solve(cur.lower[static_cast<std::size_t>(i - 2)]);
          CMatrix nl;
          numeric::gemm(cur.lower[static_cast<std::size_t>(i - 1)], g_low, nl);
          nl *= cplx{-1.0};
          next.lower[static_cast<std::size_t>(kidx - 1)] = std::move(nl);
        }
      }
      // Right odd neighbour i+1.
      if (i + 1 < n) {
        const numeric::LUFactor lu(cur.diag[static_cast<std::size_t>(i + 1)]);
        const CMatrix g_low = lu.solve(cur.lower[static_cast<std::size_t>(i)]);
        const CMatrix g_r = lu.solve(cur.rhs[static_cast<std::size_t>(i + 1)]);
        numeric::gemm(cur.upper[static_cast<std::size_t>(i)], g_low, d,
                      cplx{-1.0}, cplx{1.0});
        numeric::gemm(cur.upper[static_cast<std::size_t>(i)], g_r, r,
                      cplx{-1.0}, cplx{1.0});
        if (i + 2 < n && kidx + 1 < nn) {
          const CMatrix g_up =
              lu.solve(cur.upper[static_cast<std::size_t>(i + 1)]);
          CMatrix nu;
          numeric::gemm(cur.upper[static_cast<std::size_t>(i)], g_up, nu);
          nu *= cplx{-1.0};
          next.upper[static_cast<std::size_t>(kidx)] = std::move(nu);
        }
      }
      next.diag[static_cast<std::size_t>(kidx)] = std::move(d);
      next.rhs[static_cast<std::size_t>(kidx)] = std::move(r);
    }
    // Fill any couplings not set (when an odd neighbour did not exist, the
    // original even-even coupling is zero in a tridiagonal matrix).
    for (auto& u : next.upper)
      if (u.rows() == 0) u = CMatrix(s, s);
    for (auto& l : next.lower)
      if (l.rows() == 0) l = CMatrix(s, s);

    history.push_back(std::move(rec));
    cur = std::move(next);
  }

  // Solve the final 1-block system.
  std::vector<CMatrix> x_level;
  x_level.push_back(numeric::solve(cur.diag[0], cur.rhs[0]));

  // Back substitution through the recorded levels.
  for (idx h = static_cast<idx>(history.size()) - 1; h >= 0; --h) {
    const auto& rec = history[static_cast<std::size_t>(h)];
    const Level& lev = rec.level;
    const idx n = static_cast<idx>(lev.diag.size());
    std::vector<CMatrix> x(static_cast<std::size_t>(n));
    // Place even solutions.
    for (idx kidx = 0; kidx < static_cast<idx>(rec.kept_of.size()); ++kidx)
      x[static_cast<std::size_t>(rec.kept_of[static_cast<std::size_t>(kidx)])] =
          x_level[static_cast<std::size_t>(kidx)];
    // Recover odd rows: D_i x_i = r_i - L x_{i-1} - U x_{i+1}.
    for (idx i = 1; i < n; i += 2) {
      CMatrix rhs = lev.rhs[static_cast<std::size_t>(i)];
      numeric::gemm(lev.lower[static_cast<std::size_t>(i - 1)],
                    x[static_cast<std::size_t>(i - 1)], rhs, cplx{-1.0},
                    cplx{1.0});
      if (i + 1 < n) {
        numeric::gemm(lev.upper[static_cast<std::size_t>(i)],
                      x[static_cast<std::size_t>(i + 1)], rhs, cplx{-1.0},
                      cplx{1.0});
      }
      x[static_cast<std::size_t>(i)] =
          numeric::solve(lev.diag[static_cast<std::size_t>(i)], rhs);
    }
    x_level = std::move(x);
  }

  CMatrix out(a.dim(), m);
  for (idx i = 0; i < nb; ++i)
    out.set_block(i * s, 0, x_level[static_cast<std::size_t>(i)]);
  return out;
}

}  // namespace omenx::solvers
