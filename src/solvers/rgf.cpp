#include "solvers/rgf.hpp"

#include "numeric/blas.hpp"
#include "numeric/lu.hpp"

namespace omenx::solvers {

using numeric::cplx;

CMatrix rgf_first_block_column(const BlockTridiag& a) {
  const idx nb = a.num_blocks();
  const idx s = a.block_size();
  CMatrix q(a.dim(), s);
  if (nb == 1) {
    q.set_block(0, 0, numeric::inverse(a.diag(0)));
    return q;
  }
  // Downward fold (phases P1/P2 in Fig. 6):
  //   X_nb-1 = A_{nb-1,nb-1}^{-1} A_{nb-1,nb-2}
  //   X_i    = (A_ii - A_{i,i+1} X_{i+1})^{-1} A_{i,i-1},  i = nb-2..1
  //   X_0    = (A_00 - A_{0,1} X_1)^{-1}            (A_{0,-1} := identity)
  std::vector<CMatrix> x(static_cast<std::size_t>(nb));
  for (idx i = nb - 1; i >= 0; --i) {
    CMatrix m = a.diag(i);
    if (i + 1 < nb)
      numeric::gemm(a.upper(i), x[static_cast<std::size_t>(i + 1)], m,
                    cplx{-1.0}, cplx{1.0});
    const numeric::LUFactor lu(std::move(m));
    x[static_cast<std::size_t>(i)] =
        i > 0 ? lu.solve(a.lower(i - 1)) : lu.inverse();
  }
  // Accumulate (phases P3/P4): G_{0,0} = X_0; G_{i,0} = -X_i G_{i-1,0}.
  CMatrix gi = x[0];
  q.set_block(0, 0, gi);
  for (idx i = 1; i < nb; ++i) {
    CMatrix next;
    numeric::gemm(x[static_cast<std::size_t>(i)], gi, next, cplx{-1.0});
    gi = std::move(next);
    q.set_block(i * s, 0, gi);
  }
  return q;
}

CMatrix rgf_last_block_column(const BlockTridiag& a) {
  const idx nb = a.num_blocks();
  const idx s = a.block_size();
  CMatrix q(a.dim(), s);
  if (nb == 1) {
    q.set_block(0, 0, numeric::inverse(a.diag(0)));
    return q;
  }
  // Mirror of the first-column sweep: fold upward from the top.
  std::vector<CMatrix> y(static_cast<std::size_t>(nb));
  for (idx i = 0; i < nb; ++i) {
    CMatrix m = a.diag(i);
    if (i > 0)
      numeric::gemm(a.lower(i - 1), y[static_cast<std::size_t>(i - 1)], m,
                    cplx{-1.0}, cplx{1.0});
    const numeric::LUFactor lu(std::move(m));
    y[static_cast<std::size_t>(i)] =
        i + 1 < nb ? lu.solve(a.upper(i)) : lu.inverse();
  }
  CMatrix gi = y[static_cast<std::size_t>(nb - 1)];
  q.set_block((nb - 1) * s, 0, gi);
  for (idx i = nb - 2; i >= 0; --i) {
    CMatrix next;
    numeric::gemm(y[static_cast<std::size_t>(i)], gi, next, cplx{-1.0});
    gi = std::move(next);
    q.set_block(i * s, 0, gi);
  }
  return q;
}

CMatrix rgf_block_columns(const BlockTridiag& a) {
  const idx s = a.block_size();
  CMatrix q(a.dim(), 2 * s);
  q.set_block(0, 0, rgf_first_block_column(a));
  q.set_block(0, s, rgf_last_block_column(a));
  return q;
}

CMatrix rgf_solve(const BlockTridiag& a, const CMatrix& b) {
  const idx nb = a.num_blocks();
  const idx s = a.block_size();
  // Forward elimination (top-down fold): at row i the pivot is
  //   D_i = A_ii - A_{i,i-1} C_{i-1}  with  C_i = D_i^{-1} A_{i,i+1},
  // and the folded RHS is  Y_i = D_i^{-1} (B_i - A_{i,i-1} Y_{i-1}).
  std::vector<CMatrix> c(static_cast<std::size_t>(nb));
  std::vector<CMatrix> y(static_cast<std::size_t>(nb));
  for (idx i = 0; i < nb; ++i) {
    CMatrix m = a.diag(i);
    CMatrix r = b.block(i * s, 0, s, b.cols());
    if (i > 0) {
      numeric::gemm(a.lower(i - 1), c[static_cast<std::size_t>(i - 1)], m,
                    cplx{-1.0}, cplx{1.0});
      numeric::gemm(a.lower(i - 1), y[static_cast<std::size_t>(i - 1)], r,
                    cplx{-1.0}, cplx{1.0});
    }
    const numeric::LUFactor lu(std::move(m));
    if (i + 1 < nb) c[static_cast<std::size_t>(i)] = lu.solve(a.upper(i));
    y[static_cast<std::size_t>(i)] = lu.solve(r);
  }
  // Back substitution: X_{nb-1} = Y_{nb-1}; X_i = Y_i - C_i X_{i+1}.
  CMatrix x(a.dim(), b.cols());
  CMatrix xi = y[static_cast<std::size_t>(nb - 1)];
  x.set_block((nb - 1) * s, 0, xi);
  for (idx i = nb - 2; i >= 0; --i) {
    CMatrix next = y[static_cast<std::size_t>(i)];
    numeric::gemm(c[static_cast<std::size_t>(i)], xi, next, cplx{-1.0},
                  cplx{1.0});
    xi = std::move(next);
    x.set_block(i * s, 0, xi);
  }
  return x;
}

std::vector<CMatrix> rgf_diagonal_blocks(const BlockTridiag& a) {
  const idx nb = a.num_blocks();
  // Backward sweep: gR_i = (A_ii - A_{i,i+1} gR_{i+1} A_{i+1,i})^{-1}.
  std::vector<CMatrix> gr(static_cast<std::size_t>(nb));
  CMatrix t, m;
  for (idx i = nb - 1; i >= 0; --i) {
    m = a.diag(i);
    if (i + 1 < nb) {
      numeric::gemm(gr[static_cast<std::size_t>(i + 1)], a.lower(i), t);
      numeric::gemm(a.upper(i), t, m, cplx{-1.0}, cplx{1.0});
    }
    gr[static_cast<std::size_t>(i)] = numeric::inverse(m);
  }
  // Forward sweep: G_00 = gR_0;
  // G_ii = gR_i + gR_i A_{i,i-1} G_{i-1,i-1} A_{i-1,i} gR_i.
  std::vector<CMatrix> g(static_cast<std::size_t>(nb));
  g[0] = gr[0];
  CMatrix u;
  for (idx i = 1; i < nb; ++i) {
    const CMatrix& gri = gr[static_cast<std::size_t>(i)];
    numeric::gemm(a.upper(i - 1), gri, t);
    numeric::gemm(g[static_cast<std::size_t>(i - 1)], t, u);
    numeric::gemm(a.lower(i - 1), u, t);
    CMatrix gii = gri;
    numeric::gemm(gri, t, gii, cplx{1.0}, cplx{1.0});
    g[static_cast<std::size_t>(i)] = std::move(gii);
  }
  return g;
}

}  // namespace omenx::solvers
