#include "solvers/solver.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "numeric/blas.hpp"
#include "parallel/comm.hpp"
#include "parallel/device.hpp"
#include "perf/machine.hpp"
#include "solvers/bcr.hpp"
#include "solvers/block_lu.hpp"
#include "solvers/rgf.hpp"
#include "solvers/spike.hpp"
#include "solvers/splitsolve.hpp"

namespace omenx::solvers {

using numeric::cplx;

// --- base-class defaults ---------------------------------------------------

void Solver::factor(const BlockTridiag&) {
  throw std::logic_error(std::string(name()) +
                         ": factor/solve is not supported by this backend");
}

CMatrix Solver::solve(const CMatrix&) {
  throw std::logic_error(std::string(name()) +
                         ": factor/solve is not supported by this backend");
}

CMatrix Solver::solve_boundary(const BlockTridiag& a, const CMatrix& sigma_l,
                               const CMatrix& sigma_r, const CMatrix& b_top,
                               const CMatrix& b_bot) {
  apply_boundary_into(t_, a, sigma_l, sigma_r);
  factor(t_);
  expand_boundary_rhs_into(b_, a.dim(), b_top, b_bot);
  return solve(b_);
}

std::vector<CMatrix> Solver::diagonal_blocks(const BlockTridiag& t) {
  if ((capabilities() & kFactorSolve) == 0)
    throw std::logic_error(std::string(name()) +
                           ": diagonal_blocks is not supported");
  factor(t);
  const idx nb = t.num_blocks();
  const idx s = t.block_size();
  std::vector<CMatrix> out;
  out.reserve(static_cast<std::size_t>(nb));
  CMatrix e(t.dim(), s);
  for (idx i = 0; i < nb; ++i) {
    for (idx d = 0; d < s; ++d) e(i * s + d, d) = cplx{1.0};
    const CMatrix x = solve(e);
    out.push_back(x.block(i * s, 0, s, s));
    for (idx d = 0; d < s; ++d) e(i * s + d, d) = cplx{0.0};
  }
  return out;
}

// --- concrete strategies ---------------------------------------------------

namespace {

/// Block Thomas factorization (the MUMPS stand-in of Fig. 8).  Factor once,
/// solve any number of dense right-hand sides.
class BlockLUSolver final : public Solver {
 public:
  const char* name() const noexcept override { return "block_lu"; }
  unsigned capabilities() const noexcept override { return kFactorSolve; }
  void factor(const BlockTridiag& t) override { lu_.factor(t); }
  CMatrix solve(const CMatrix& b) override { return lu_.solve(b); }

 private:
  BlockTridiagLU lu_;
};

/// Block cyclic reduction (OMEN's tight-binding solver).  BCR has no
/// persistent factorization: factor() pins the system, solve() reduces it
/// per right-hand-side set.
class BcrSolver final : public Solver {
 public:
  const char* name() const noexcept override { return "bcr"; }
  unsigned capabilities() const noexcept override { return kFactorSolve; }
  void factor(const BlockTridiag& t) override { sys_ = &t; }
  CMatrix solve(const CMatrix& b) override {
    if (sys_ == nullptr) throw std::logic_error("bcr: factor() first");
    return bcr_solve(*sys_, b);
  }

 private:
  const BlockTridiag* sys_ = nullptr;  ///< valid until the next factor()
};

/// Recursive Green's function (Algorithm 1): first/last block columns of
/// T^{-1} serve the corner-structured boundary RHS exactly; the two-sweep
/// diagonal recursion serves LDOS/charge natively.
class RgfSolver final : public Solver {
 public:
  const char* name() const noexcept override { return "rgf"; }
  unsigned capabilities() const noexcept override {
    return kDiagonalBlocksNative;
  }
  CMatrix solve_boundary(const BlockTridiag& a, const CMatrix& sigma_l,
                         const CMatrix& sigma_r, const CMatrix& b_top,
                         const CMatrix& b_bot) override {
    apply_boundary_into(t_, a, sigma_l, sigma_r);
    const CMatrix q = rgf_block_columns(t_);
    return columns_times_rhs(q, a, b_top, b_bot);
  }
  std::vector<CMatrix> diagonal_blocks(const BlockTridiag& t) override {
    return rgf_diagonal_blocks(t);
  }

  /// x = Q_first b_top + Q_last b_bot — shared with the SPIKE strategy.
  static CMatrix columns_times_rhs(const CMatrix& q, const BlockTridiag& a,
                                   const CMatrix& b_top,
                                   const CMatrix& b_bot) {
    const idx s = a.block_size();
    const CMatrix qf = q.block(0, 0, a.dim(), s);
    const CMatrix ql = q.block(0, s, a.dim(), s);
    CMatrix x;
    numeric::gemm(qf, b_top, x);
    numeric::gemm(ql, b_bot, x, cplx{1.0}, cplx{1.0});
    return x;
  }
};

/// SPIKE partitions of the boundary-applied T: on the accelerator pool when
/// one is bound, across the spatial communicator's ranks when it has more
/// than one (the members hold no self-energies, so the end partitions are
/// pinned to the root — see spike_partition_owner).
class SpikeSolver final : public Solver {
 public:
  explicit SpikeSolver(const SolverContext& ctx) : ctx_(ctx) {}
  const char* name() const noexcept override { return "spike"; }
  unsigned capabilities() const noexcept override {
    return kDiagonalBlocksNative | kSpatialCooperative | kUsesDevicePool;
  }
  CMatrix solve_boundary(const BlockTridiag& a, const CMatrix& sigma_l,
                         const CMatrix& sigma_r, const CMatrix& b_top,
                         const CMatrix& b_bot) override {
    apply_boundary_into(t_, a, sigma_l, sigma_r);
    SpikeOptions so;
    so.partitions = ctx_.partitions;
    CMatrix q;
    if (ctx_.spatial != nullptr && ctx_.spatial->size() > 1)
      q = spike_block_columns_spatial_root(t_, *ctx_.spatial, ctx_.partitions,
                                           /*ends_to_root=*/true);
    else if (ctx_.pool != nullptr)
      q = spike_block_columns(t_, *ctx_.pool, so);
    else
      q = spike_block_columns(t_, so);
    return RgfSolver::columns_times_rhs(q, a, b_top, b_bot);
  }
  std::vector<CMatrix> diagonal_blocks(const BlockTridiag& t) override {
    return spike_diagonal_blocks(t, ctx_.partitions);
  }
  void discard() override {
    // A skipped solve leaves the members' partition transfers pending.
    if (ctx_.spatial != nullptr && ctx_.spatial->size() > 1)
      spike_spatial_drain(*ctx_.spatial, ctx_.partitions,
                          /*ends_to_root=*/true);
  }

 private:
  SolverContext ctx_;
};

/// SplitSolve (Section 3B): Step 1 (Q = A^{-1} B) starts in prepare() —
/// before the boundary self-energies exist — on the accelerators or across
/// the spatial ranks; solve_boundary runs the cheap SMW steps 2-4.
class SplitSolveSolver final : public Solver {
 public:
  explicit SplitSolveSolver(const SolverContext& ctx) : ctx_(ctx) {}
  const char* name() const noexcept override { return "splitsolve"; }
  unsigned capabilities() const noexcept override {
    return kDiagonalBlocksNative | kOverlapPrepare | kSpatialCooperative |
           kUsesDevicePool;
  }
  void prepare(const BlockTridiag& a) override {
    const bool spatial = ctx_.spatial != nullptr && ctx_.spatial->size() > 1;
    if (!spatial && ctx_.pool == nullptr)
      throw std::invalid_argument(
          "splitsolve: requires a device pool or a spatial communicator");
    SplitSolveOptions opts;
    opts.partitions = ctx_.partitions;
    opts.spatial = spatial ? ctx_.spatial : nullptr;
    // Join any previous instance's Step 1 *before* launching the new one:
    // a skipped solve (no propagating modes at the point) leaves the old
    // async consumer alive, and two consumers on one spatial communicator
    // would race for the members' partition messages.
    split_.reset();
    split_ = std::make_unique<SplitSolve>(a, ctx_.pool, opts);
  }
  CMatrix solve_boundary(const BlockTridiag& a, const CMatrix& sigma_l,
                         const CMatrix& sigma_r, const CMatrix& b_top,
                         const CMatrix& b_bot) override {
    if (split_ == nullptr) prepare(a);
    CMatrix x = split_->solve(sigma_l, sigma_r, b_top, b_bot);
    split_.reset();  // Q is per-system; the next point prepares anew
    return x;
  }
  std::vector<CMatrix> diagonal_blocks(const BlockTridiag& t) override {
    return spike_diagonal_blocks(t, ctx_.partitions);
  }
  void discard() override {
    // Join Step 1 now: its async consumer drains the spatial members'
    // transfers even when the solve itself is skipped.
    split_.reset();
  }

 private:
  SolverContext ctx_;
  std::unique_ptr<SplitSolve> split_;
};

// --- registry --------------------------------------------------------------

struct Registry {
  std::mutex mutex;
  std::map<std::string, SolverFactory> factories;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    reg->factories["rgf"] = [](const SolverContext&) {
      return std::make_unique<RgfSolver>();
    };
    reg->factories["block_lu"] = [](const SolverContext&) {
      return std::make_unique<BlockLUSolver>();
    };
    reg->factories["bcr"] = [](const SolverContext&) {
      return std::make_unique<BcrSolver>();
    };
    reg->factories["spike"] = [](const SolverContext& ctx) {
      return std::make_unique<SpikeSolver>(ctx);
    };
    reg->factories["splitsolve"] = [](const SolverContext& ctx) {
      return std::make_unique<SplitSolveSolver>(ctx);
    };
    return reg;
  }();
  return *r;
}

}  // namespace

void register_solver(const std::string& name, SolverFactory factory) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.factories[name] = std::move(factory);
}

std::vector<std::string> registered_solvers() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, _] : r.factories) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::unique_ptr<Solver> make_solver(const std::string& name,
                                    const SolverContext& ctx) {
  Registry& r = registry();
  SolverFactory factory;
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it == r.factories.end())
      throw std::invalid_argument("make_solver: unknown backend '" + name +
                                  "'");
    factory = it->second;
  }
  return factory(ctx);
}

const char* algorithm_name(SolverAlgorithm algo) noexcept {
  switch (algo) {
    case SolverAlgorithm::kSplitSolve:
      return "splitsolve";
    case SolverAlgorithm::kBlockLU:
      return "block_lu";
    case SolverAlgorithm::kBcr:
      return "bcr";
    case SolverAlgorithm::kRgf:
      return "rgf";
    case SolverAlgorithm::kSpike:
      return "spike";
    case SolverAlgorithm::kAuto:
      return "auto";
  }
  return "auto";
}

bool algorithm_is_cooperative(SolverAlgorithm algo) noexcept {
  return algo == SolverAlgorithm::kSpike ||
         algo == SolverAlgorithm::kSplitSolve;
}

// --- cost model ------------------------------------------------------------

namespace {

/// Complex-arithmetic flop estimates per backend for a boundary solve of an
/// nb-block system (block size s, m RHS columns).  Constants follow the
/// kernel mix: one s x s complex LU ~ (8/3) s^3 real flops, one s x s
/// complex GEMM ~ 8 s^3.
struct CostInputs {
  double nb, s, m;
  double executors;  ///< parallel lanes for partitioned work
  double obc_overlap_seconds;
  double cpu_flops;  ///< per-second
};

double lu_seconds(const CostInputs& c) {
  const double factor = c.nb * (8.0 / 3.0 * c.s * c.s * c.s +
                                2.0 * 8.0 * c.s * c.s * c.s);
  // Per block row: two triangular solves (~4 s^2 m each) and two coupling
  // GEMMs (~8 s^2 m each) across the forward/backward sweeps.
  const double solve = 24.0 * c.nb * c.s * c.s * c.m;
  return (factor + solve) / c.cpu_flops;
}

double bcr_seconds(const CostInputs& c) {
  // Fill-in on dense DFT blocks: measured ~2.2x the block-LU work (fig08).
  return 2.2 * lu_seconds(c);
}

double rgf_seconds(const CostInputs& c) {
  // Two column sweeps (~19 s^3 per block each) + x = Q * rhs.
  const double sweeps = 38.0 * c.nb * c.s * c.s * c.s;
  const double apply = 16.0 * c.nb * c.s * c.s * c.m;
  return (sweeps + apply) / c.cpu_flops;
}

double spike_seconds(const CostInputs& c, int partitions) {
  const double p = static_cast<double>(partitions);
  const double sweeps =
      38.0 * c.nb * c.s * c.s * c.s / std::min(c.executors, p);
  const double reduced =
      (p - 1.0) * (8.0 / 3.0 + 16.0) * 8.0 * c.s * c.s * c.s;
  const double correct =
      32.0 * c.nb * c.s * c.s * c.s / std::min(c.executors, p);
  const double apply = 16.0 * c.nb * c.s * c.s * c.m;
  return (sweeps + reduced + correct + apply) / c.cpu_flops;
}

double splitsolve_seconds(const CostInputs& c, int partitions) {
  // Step 1 is the spike cost on A, overlapped with the OBC solve; steps 2-4
  // are O(s^3 + s^2 m).
  const double step1 = spike_seconds(c, partitions);
  const double smw = (8.0 * 8.0 * c.s * c.s * c.s +
                      32.0 * c.s * c.s * c.m + 16.0 * c.nb * c.s * c.s * c.m) /
                     c.cpu_flops;
  return std::max(0.25 * step1, step1 - c.obc_overlap_seconds) + smw;
}

}  // namespace

double estimate_boundary_solve_seconds(SolverAlgorithm algo, idx nb, idx s,
                                       idx nrhs, int partitions,
                                       int executors) {
  const perf::MachineSpec spec = perf::MachineSpec::host();
  CostInputs c;
  c.nb = static_cast<double>(nb);
  c.s = static_cast<double>(s);
  c.m = static_cast<double>(nrhs);
  c.executors = static_cast<double>(std::max(1, executors));
  c.cpu_flops = spec.cpu_gflops * 1e9;
  // The OBC eigenproblem SplitSolve overlaps with: a handful of dense
  // s-sized eigensolves (FEAST subspace iterations).
  c.obc_overlap_seconds = 60.0 * c.s * c.s * c.s / c.cpu_flops;
  switch (algo) {
    case SolverAlgorithm::kBlockLU:
      return lu_seconds(c);
    case SolverAlgorithm::kBcr:
      return bcr_seconds(c);
    case SolverAlgorithm::kRgf:
      return rgf_seconds(c);
    case SolverAlgorithm::kSpike:
      return spike_seconds(c, partitions);
    case SolverAlgorithm::kSplitSolve:
      return splitsolve_seconds(c, partitions);
    case SolverAlgorithm::kAuto:
      break;
  }
  throw std::invalid_argument(
      "estimate_boundary_solve_seconds: resolve kAuto first");
}

SolverAlgorithm auto_algorithm(idx nb, idx s, idx nrhs,
                               const SolverContext& ctx) {
  const int width = ctx.spatial != nullptr ? ctx.spatial->size() : 1;
  const int devices = ctx.pool != nullptr ? ctx.pool->size() : 0;
  const bool partitioned_ok =
      ctx.partitions > 1 && spike_partitioning_valid(nb, ctx.partitions);
  const int executors =
      partitioned_ok ? std::max(width, std::max(1, devices)) : 1;

  auto estimate = [&](SolverAlgorithm algo) {
    return estimate_boundary_solve_seconds(algo, nb, s, nrhs, ctx.partitions,
                                           executors);
  };
  SolverAlgorithm best = SolverAlgorithm::kBlockLU;
  double best_seconds = estimate(best);
  auto consider = [&](SolverAlgorithm algo) {
    const double seconds = estimate(algo);
    if (seconds < best_seconds) {
      best = algo;
      best_seconds = seconds;
    }
  };
  consider(SolverAlgorithm::kBcr);
  consider(SolverAlgorithm::kRgf);
  if (partitioned_ok && (devices > 0 || width > 1)) {
    consider(SolverAlgorithm::kSpike);
    consider(SolverAlgorithm::kSplitSolve);
  }
  return best;
}

SolverAlgorithm resolve_algorithm(SolverAlgorithm requested, idx nb, idx s,
                                  idx nrhs, const SolverContext& ctx) {
  if (requested != SolverAlgorithm::kAuto) return requested;
  return auto_algorithm(nb, s, nrhs, ctx);
}

std::unique_ptr<Solver> make_solver(SolverAlgorithm algo,
                                    const SolverContext& ctx) {
  if (algo == SolverAlgorithm::kAuto)
    throw std::invalid_argument(
        "make_solver: resolve kAuto through resolve_algorithm first (the "
        "choice depends on the system shape)");
  return make_solver(algorithm_name(algo), ctx);
}

}  // namespace omenx::solvers
