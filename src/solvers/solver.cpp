#include "solvers/solver.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <stdexcept>

#include "numeric/backend.hpp"
#include "numeric/blas.hpp"
#include "parallel/comm.hpp"
#include "parallel/device.hpp"
#include "perf/machine.hpp"
#include "solvers/bcr.hpp"
#include "solvers/block_lu.hpp"
#include "solvers/rgf.hpp"
#include "solvers/spike.hpp"
#include "solvers/splitsolve.hpp"

namespace omenx::solvers {

using numeric::cplx;

namespace {

/// T = A - sum_p diag(sigma_p at block_p) — the N-terminal generalization
/// of apply_boundary_into.
void apply_attachments_into(BlockTridiag& t, const BlockTridiag& a,
                            const std::vector<Attachment>& attachments) {
  t = a;
  for (const Attachment& at : attachments)
    t.diag(at.block).add_block(0, 0, *at.sigma, cplx{-1.0});
}

/// Dense RHS with the listed block rows occupied (everything else zero).
void expand_attached_rhs_into(CMatrix& b, idx dim, idx s,
                              const std::vector<RhsBlock>& rhs) {
  b.resize(dim, rhs.front().b->cols());
  for (const RhsBlock& r : rhs) b.set_block(r.block * s, 0, *r.b);
}

/// Checks the attachment/RHS lists and reports whether this problem is the
/// classic {0, nb-1} corner pair (solvable by every backend through
/// solve_boundary).
bool attachments_are_corner_pair(const BlockTridiag& a,
                                 const std::vector<Attachment>& attachments,
                                 const std::vector<RhsBlock>& rhs,
                                 const char* who) {
  const idx nb = a.num_blocks();
  if (attachments.empty() || rhs.empty())
    throw std::invalid_argument(std::string(who) +
                                ": empty attachment or RHS list");
  bool corners = attachments.size() == 2;
  for (const Attachment& at : attachments) {
    if (at.sigma == nullptr)
      throw std::invalid_argument(std::string(who) + ": null self-energy");
    if (at.block < 0 || at.block >= nb)
      throw std::invalid_argument(std::string(who) +
                                  ": attachment block out of range");
    corners = corners && (at.block == 0 || at.block == nb - 1);
  }
  for (const RhsBlock& r : rhs) {
    if (r.b == nullptr)
      throw std::invalid_argument(std::string(who) + ": null RHS block");
    if (r.block < 0 || r.block >= nb)
      throw std::invalid_argument(std::string(who) +
                                  ": RHS block out of range");
    if (r.b->cols() != rhs.front().b->cols())
      throw std::invalid_argument(std::string(who) +
                                  ": RHS column counts differ");
    corners = corners && (r.block == 0 || r.block == nb - 1);
  }
  if (corners && attachments.size() == 2 &&
      attachments[0].block == attachments[1].block)
    throw std::invalid_argument(std::string(who) +
                                ": duplicate attachment block");
  return corners && nb > 1;
}

}  // namespace

// --- base-class defaults ---------------------------------------------------

void Solver::factor(const BlockTridiag&) {
  throw std::logic_error(std::string(name()) +
                         ": factor/solve is not supported by this backend");
}

CMatrix Solver::solve(const CMatrix&) {
  throw std::logic_error(std::string(name()) +
                         ": factor/solve is not supported by this backend");
}

CMatrix Solver::solve_boundary(const BlockTridiag& a, const CMatrix& sigma_l,
                               const CMatrix& sigma_r, const CMatrix& b_top,
                               const CMatrix& b_bot) {
  apply_boundary_into(t_, a, sigma_l, sigma_r);
  factor(t_);
  expand_boundary_rhs_into(b_, a.dim(), b_top, b_bot);
  return solve(b_);
}

CMatrix Solver::solve_attached(const BlockTridiag& a,
                               const std::vector<Attachment>& attachments,
                               const std::vector<RhsBlock>& rhs) {
  if (attachments_are_corner_pair(a, attachments, rhs, name())) {
    // Classic source/drain pair: route through solve_boundary so every
    // backend's validated (and overridden) 2-terminal path serves it,
    // bit-identically to the pre-refactor call.
    const idx nb = a.num_blocks();
    const idx s = a.block_size();
    const idx m = rhs.front().b->cols();
    const CMatrix* sl = attachments[0].block == 0 ? attachments[0].sigma
                                                  : attachments[1].sigma;
    const CMatrix* sr = attachments[0].block == nb - 1 ? attachments[0].sigma
                                                       : attachments[1].sigma;
    CMatrix b_top(s, m), b_bot(s, m);
    for (const RhsBlock& r : rhs) (r.block == 0 ? b_top : b_bot) = *r.b;
    return solve_boundary(a, *sl, *sr, b_top, b_bot);
  }
  if ((capabilities() & kMultiTerminal) == 0)
    throw std::logic_error(
        std::string(name()) +
        ": interior attachment blocks need a kMultiTerminal backend");
  // Generic interior path for kFactorSolve backends: apply every
  // self-energy, factor, solve the expanded dense RHS.  kMultiTerminal
  // backends without factor/solve (rgf) override this method.
  apply_attachments_into(t_, a, attachments);
  factor(t_);
  expand_attached_rhs_into(b_, a.dim(), a.block_size(), rhs);
  return solve(b_);
}

std::vector<CMatrix> Solver::solve_boundary_batched(
    const std::vector<BoundaryProblem>& problems, numeric::Backend& backend) {
  // Scalar fallback: any backend can serve a batch one problem at a time,
  // trivially bit-identical to the unbatched path.  kBatchable overrides
  // replace this with fused numeric::Backend calls.
  (void)backend;
  std::vector<CMatrix> xs;
  xs.reserve(problems.size());
  for (const BoundaryProblem& p : problems)
    xs.push_back(solve_boundary(*p.a, *p.sigma_l, *p.sigma_r, *p.b_top,
                                *p.b_bot));
  return xs;
}

std::vector<CMatrix> Solver::diagonal_blocks(const BlockTridiag& t) {
  if ((capabilities() & kFactorSolve) == 0)
    throw std::logic_error(std::string(name()) +
                           ": diagonal_blocks is not supported");
  factor(t);
  const idx nb = t.num_blocks();
  const idx s = t.block_size();
  std::vector<CMatrix> out;
  out.reserve(static_cast<std::size_t>(nb));
  CMatrix e(t.dim(), s);
  for (idx i = 0; i < nb; ++i) {
    for (idx d = 0; d < s; ++d) e(i * s + d, d) = cplx{1.0};
    const CMatrix x = solve(e);
    out.push_back(x.block(i * s, 0, s, s));
    for (idx d = 0; d < s; ++d) e(i * s + d, d) = cplx{0.0};
  }
  return out;
}

// --- concrete strategies ---------------------------------------------------

namespace {

/// Every problem of one batch must share the block structure — that is what
/// lets the planner fuse their kernels into single batched calls.
void check_batch_shapes(const std::vector<BoundaryProblem>& problems) {
  for (const BoundaryProblem& p : problems) {
    if (p.a == nullptr || p.sigma_l == nullptr || p.sigma_r == nullptr ||
        p.b_top == nullptr || p.b_bot == nullptr)
      throw std::invalid_argument("solve_boundary_batched: null operand");
    if (p.a->num_blocks() != problems.front().a->num_blocks() ||
        p.a->block_size() != problems.front().a->block_size())
      throw std::invalid_argument(
          "solve_boundary_batched: mixed block structures in one batch");
  }
}

/// Block Thomas factorization (the MUMPS stand-in of Fig. 8).  Factor once,
/// solve any number of dense right-hand sides.
class BlockLUSolver final : public Solver {
 public:
  const char* name() const noexcept override { return "block_lu"; }
  unsigned capabilities() const noexcept override {
    // kMultiTerminal is served by the base-class generic path: apply every
    // attachment, factor, solve the dense RHS.
    return kFactorSolve | kBatchable | kMultiTerminal;
  }
  void factor(const BlockTridiag& t) override { lu_.factor(t); }
  CMatrix solve(const CMatrix& b) override { return lu_.solve(b); }
  std::vector<CMatrix> solve_boundary_batched(
      const std::vector<BoundaryProblem>& problems,
      numeric::Backend& backend) override {
    if (problems.empty()) return {};
    check_batch_shapes(problems);
    const std::size_t n = problems.size();
    // Boundary application is cheap copies; run it as one dispatch so every
    // lane assembles its own T = A - diag-corner(Sigma_L, Sigma_R).
    ts_.resize(n);
    backend.dispatch("block_lu_apply_boundary", n, [&](std::size_t p) {
      apply_boundary_into(ts_[p], *problems[p].a, *problems[p].sigma_l,
                          *problems[p].sigma_r);
    });
    std::vector<const BlockTridiag*> systems(n);
    for (std::size_t p = 0; p < n; ++p) systems[p] = &ts_[p];
    // The whole batch factors in stage lockstep: each elimination row issues
    // one batched left-solve, one batched GEMM, one batched LU.
    BlockTridiagLU::factor_batched(lus_, systems, backend);
    std::vector<CMatrix> xs(n);
    backend.dispatch("block_lu_solve_batched", n, [&](std::size_t p) {
      const CMatrix b = expand_boundary_rhs(problems[p].a->dim(),
                                            *problems[p].b_top,
                                            *problems[p].b_bot);
      xs[p] = lus_[p].solve(b);
    });
    return xs;
  }

 private:
  BlockTridiagLU lu_;
  std::vector<BlockTridiag> ts_;    ///< per-problem boundary-applied systems
  std::vector<BlockTridiagLU> lus_; ///< per-problem factors (batch scratch)
};

/// Block cyclic reduction (OMEN's tight-binding solver).  BCR has no
/// persistent factorization: factor() pins the system, solve() reduces it
/// per right-hand-side set.
class BcrSolver final : public Solver {
 public:
  const char* name() const noexcept override { return "bcr"; }
  unsigned capabilities() const noexcept override { return kFactorSolve; }
  void factor(const BlockTridiag& t) override { sys_ = &t; }
  CMatrix solve(const CMatrix& b) override {
    if (sys_ == nullptr) throw std::logic_error("bcr: factor() first");
    return bcr_solve(*sys_, b);
  }

 private:
  const BlockTridiag* sys_ = nullptr;  ///< valid until the next factor()
};

/// Recursive Green's function (Algorithm 1): first/last block columns of
/// T^{-1} serve the corner-structured boundary RHS exactly; the two-sweep
/// diagonal recursion serves LDOS/charge natively.
class RgfSolver final : public Solver {
 public:
  const char* name() const noexcept override { return "rgf"; }
  unsigned capabilities() const noexcept override {
    return kDiagonalBlocksNative | kBatchable | kMultiTerminal;
  }
  CMatrix solve_attached(const BlockTridiag& a,
                         const std::vector<Attachment>& attachments,
                         const std::vector<RhsBlock>& rhs) override {
    if (attachments_are_corner_pair(a, attachments, rhs, name()))
      return Solver::solve_attached(a, attachments, rhs);
    // Interior attachments break the corner-RHS structure the block-column
    // kernel exploits; run the RGF downward-fold recursion against the full
    // dense RHS instead (rgf_solve = block Thomas with per-block LU pivots).
    apply_attachments_into(t_, a, attachments);
    expand_attached_rhs_into(b_, a.dim(), a.block_size(), rhs);
    return rgf_solve(t_, b_);
  }
  CMatrix solve_boundary(const BlockTridiag& a, const CMatrix& sigma_l,
                         const CMatrix& sigma_r, const CMatrix& b_top,
                         const CMatrix& b_bot) override {
    apply_boundary_into(t_, a, sigma_l, sigma_r);
    const CMatrix q = rgf_block_columns(t_);
    return columns_times_rhs(q, a, b_top, b_bot);
  }
  std::vector<CMatrix> solve_boundary_batched(
      const std::vector<BoundaryProblem>& problems,
      numeric::Backend& backend) override {
    if (problems.empty()) return {};
    check_batch_shapes(problems);
    // RGF's recursion has no cross-problem kernel to fuse; it batches at
    // the problem level — one independent recursion per lane, on lane-local
    // scratch (the shared t_ member is single-lane only).
    std::vector<CMatrix> xs(problems.size());
    backend.dispatch("rgf_batched", problems.size(), [&](std::size_t p) {
      BlockTridiag t;
      apply_boundary_into(t, *problems[p].a, *problems[p].sigma_l,
                          *problems[p].sigma_r);
      const CMatrix q = rgf_block_columns(t);
      xs[p] = columns_times_rhs(q, *problems[p].a, *problems[p].b_top,
                                *problems[p].b_bot);
    });
    return xs;
  }
  std::vector<CMatrix> diagonal_blocks(const BlockTridiag& t) override {
    return rgf_diagonal_blocks(t);
  }

  /// x = Q_first b_top + Q_last b_bot — shared with the SPIKE strategy.
  static CMatrix columns_times_rhs(const CMatrix& q, const BlockTridiag& a,
                                   const CMatrix& b_top,
                                   const CMatrix& b_bot) {
    const idx s = a.block_size();
    const CMatrix qf = q.block(0, 0, a.dim(), s);
    const CMatrix ql = q.block(0, s, a.dim(), s);
    CMatrix x;
    numeric::gemm(qf, b_top, x);
    numeric::gemm(ql, b_bot, x, cplx{1.0}, cplx{1.0});
    return x;
  }
};

/// SPIKE partitions of the boundary-applied T: on the accelerator pool when
/// one is bound, across the spatial communicator's ranks when it has more
/// than one (the members hold no self-energies, so the end partitions are
/// pinned to the root — see spike_partition_owner).
class SpikeSolver final : public Solver {
 public:
  explicit SpikeSolver(const SolverContext& ctx) : ctx_(ctx) {}
  const char* name() const noexcept override { return "spike"; }
  unsigned capabilities() const noexcept override {
    return kDiagonalBlocksNative | kSpatialCooperative | kUsesDevicePool;
  }
  CMatrix solve_boundary(const BlockTridiag& a, const CMatrix& sigma_l,
                         const CMatrix& sigma_r, const CMatrix& b_top,
                         const CMatrix& b_bot) override {
    apply_boundary_into(t_, a, sigma_l, sigma_r);
    SpikeOptions so;
    so.partitions = ctx_.partitions;
    CMatrix q;
    if (ctx_.spatial != nullptr && ctx_.spatial->size() > 1)
      q = spike_block_columns_spatial_root(t_, *ctx_.spatial, ctx_.partitions,
                                           /*ends_to_root=*/true);
    else if (ctx_.pool != nullptr)
      q = spike_block_columns(t_, *ctx_.pool, so);
    else
      q = spike_block_columns(t_, so);
    return RgfSolver::columns_times_rhs(q, a, b_top, b_bot);
  }
  std::vector<CMatrix> diagonal_blocks(const BlockTridiag& t) override {
    return spike_diagonal_blocks(t, ctx_.partitions);
  }
  void discard() override {
    // A skipped solve leaves the members' partition transfers pending.
    if (ctx_.spatial != nullptr && ctx_.spatial->size() > 1)
      spike_spatial_drain(*ctx_.spatial, ctx_.partitions,
                          /*ends_to_root=*/true);
  }

 private:
  SolverContext ctx_;
};

/// SplitSolve (Section 3B): Step 1 (Q = A^{-1} B) starts in prepare() —
/// before the boundary self-energies exist — on the accelerators or across
/// the spatial ranks; solve_boundary runs the cheap SMW steps 2-4.
class SplitSolveSolver final : public Solver {
 public:
  explicit SplitSolveSolver(const SolverContext& ctx) : ctx_(ctx) {}
  const char* name() const noexcept override { return "splitsolve"; }
  unsigned capabilities() const noexcept override {
    return kDiagonalBlocksNative | kOverlapPrepare | kSpatialCooperative |
           kUsesDevicePool | kBatchable;
  }
  void prepare_batched(const std::vector<const BlockTridiag*>& systems,
                       numeric::Backend& backend) override {
    // Step 1 (Q_i = A_i^{-1} B) for the whole batch as one backend
    // dispatch: this is the heavy phase the engine overlaps with the
    // asynchronous OBC stage.  Each lane runs the *serial* SPIKE
    // block-column kernel, which is bit-identical to the pool and spatial
    // variants for equal partition counts — so the batch needs no device
    // pool and still matches the scalar splitsolve path to the bit.
    SpikeOptions so;
    so.partitions = ctx_.partitions;
    qs_.assign(systems.size(), CMatrix());
    backend.dispatch("splitsolve_step1_batched", systems.size(),
                     [&](std::size_t p) {
                       if (systems[p] == nullptr)
                         throw std::invalid_argument(
                             "splitsolve: null system in batch");
                       qs_[p] = spike_block_columns(*systems[p], so);
                     });
  }
  std::vector<CMatrix> solve_boundary_batched(
      const std::vector<BoundaryProblem>& problems,
      numeric::Backend& backend) override {
    if (problems.empty()) {
      qs_.clear();
      return {};
    }
    check_batch_shapes(problems);
    if (qs_.size() != problems.size()) {
      // No (or mismatched) prepare_batched: run Step 1 now, unoverlapped.
      std::vector<const BlockTridiag*> systems(problems.size());
      for (std::size_t p = 0; p < problems.size(); ++p)
        systems[p] = problems[p].a;
      prepare_batched(systems, backend);
    }
    std::vector<CMatrix> xs(problems.size());
    backend.dispatch("splitsolve_smw_batched", problems.size(),
                     [&](std::size_t p) {
                       const BoundaryProblem& pr = problems[p];
                       xs[p] = SplitSolve::solve_with_q(
                           qs_[p], pr.a->dim(), pr.a->block_size(),
                           *pr.sigma_l, *pr.sigma_r, *pr.b_top, *pr.b_bot);
                     });
    qs_.clear();  // Q is per-system; the next batch prepares anew
    return xs;
  }
  void prepare(const BlockTridiag& a) override {
    const bool spatial = ctx_.spatial != nullptr && ctx_.spatial->size() > 1;
    if (!spatial && ctx_.pool == nullptr)
      throw std::invalid_argument(
          "splitsolve: requires a device pool or a spatial communicator");
    SplitSolveOptions opts;
    opts.partitions = ctx_.partitions;
    opts.spatial = spatial ? ctx_.spatial : nullptr;
    // Join any previous instance's Step 1 *before* launching the new one:
    // a skipped solve (no propagating modes at the point) leaves the old
    // async consumer alive, and two consumers on one spatial communicator
    // would race for the members' partition messages.
    split_.reset();
    split_ = std::make_unique<SplitSolve>(a, ctx_.pool, opts);
  }
  CMatrix solve_boundary(const BlockTridiag& a, const CMatrix& sigma_l,
                         const CMatrix& sigma_r, const CMatrix& b_top,
                         const CMatrix& b_bot) override {
    if (split_ == nullptr) prepare(a);
    CMatrix x = split_->solve(sigma_l, sigma_r, b_top, b_bot);
    split_.reset();  // Q is per-system; the next point prepares anew
    return x;
  }
  std::vector<CMatrix> diagonal_blocks(const BlockTridiag& t) override {
    return spike_diagonal_blocks(t, ctx_.partitions);
  }
  void discard() override {
    // Join Step 1 now: its async consumer drains the spatial members'
    // transfers even when the solve itself is skipped.
    split_.reset();
  }

 private:
  SolverContext ctx_;
  std::unique_ptr<SplitSolve> split_;
  std::vector<CMatrix> qs_;  ///< per-problem Step 1 results of the batch
};

// --- registry --------------------------------------------------------------

struct Registry {
  std::mutex mutex;
  std::map<std::string, SolverFactory> factories;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    reg->factories["rgf"] = [](const SolverContext&) {
      return std::make_unique<RgfSolver>();
    };
    reg->factories["block_lu"] = [](const SolverContext&) {
      return std::make_unique<BlockLUSolver>();
    };
    reg->factories["bcr"] = [](const SolverContext&) {
      return std::make_unique<BcrSolver>();
    };
    reg->factories["spike"] = [](const SolverContext& ctx) {
      return std::make_unique<SpikeSolver>(ctx);
    };
    reg->factories["splitsolve"] = [](const SolverContext& ctx) {
      return std::make_unique<SplitSolveSolver>(ctx);
    };
    return reg;
  }();
  return *r;
}

}  // namespace

void register_solver(const std::string& name, SolverFactory factory) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.factories[name] = std::move(factory);
}

std::vector<std::string> registered_solvers() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, _] : r.factories) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::unique_ptr<Solver> make_solver(const std::string& name,
                                    const SolverContext& ctx) {
  Registry& r = registry();
  SolverFactory factory;
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it == r.factories.end())
      throw std::invalid_argument("make_solver: unknown backend '" + name +
                                  "'");
    factory = it->second;
  }
  return factory(ctx);
}

const char* algorithm_name(SolverAlgorithm algo) noexcept {
  switch (algo) {
    case SolverAlgorithm::kSplitSolve:
      return "splitsolve";
    case SolverAlgorithm::kBlockLU:
      return "block_lu";
    case SolverAlgorithm::kBcr:
      return "bcr";
    case SolverAlgorithm::kRgf:
      return "rgf";
    case SolverAlgorithm::kSpike:
      return "spike";
    case SolverAlgorithm::kAuto:
      return "auto";
  }
  return "auto";
}

bool algorithm_is_cooperative(SolverAlgorithm algo) noexcept {
  return algo == SolverAlgorithm::kSpike ||
         algo == SolverAlgorithm::kSplitSolve;
}

unsigned algorithm_capabilities(SolverAlgorithm algo) noexcept {
  // Mirrors the capabilities() of the registered built-ins — kept static so
  // planners (the engine's batch scheduler, kAuto) can query capabilities
  // without instantiating a backend.
  switch (algo) {
    case SolverAlgorithm::kBlockLU:
      return kFactorSolve | kBatchable | kMultiTerminal;
    case SolverAlgorithm::kBcr:
      return kFactorSolve;
    case SolverAlgorithm::kRgf:
      return kDiagonalBlocksNative | kBatchable | kMultiTerminal;
    case SolverAlgorithm::kSpike:
      return kDiagonalBlocksNative | kSpatialCooperative | kUsesDevicePool;
    case SolverAlgorithm::kSplitSolve:
      return kDiagonalBlocksNative | kOverlapPrepare | kSpatialCooperative |
             kUsesDevicePool | kBatchable;
    case SolverAlgorithm::kAuto:
      return 0;
  }
  return 0;
}

// --- cost model ------------------------------------------------------------

namespace {

/// Complex-arithmetic flop estimates per backend for a boundary solve of an
/// nb-block system (block size s, m RHS columns).  Constants follow the
/// kernel mix: one s x s complex LU ~ (8/3) s^3 real flops, one s x s
/// complex GEMM ~ 8 s^3.
struct CostInputs {
  double nb, s, m;
  double executors;  ///< parallel lanes for partitioned work
  double obc_overlap_seconds;
  double cpu_flops;  ///< per-second
};

double lu_seconds(const CostInputs& c) {
  const double factor = c.nb * (8.0 / 3.0 * c.s * c.s * c.s +
                                2.0 * 8.0 * c.s * c.s * c.s);
  // Per block row: two triangular solves (~4 s^2 m each) and two coupling
  // GEMMs (~8 s^2 m each) across the forward/backward sweeps.
  const double solve = 24.0 * c.nb * c.s * c.s * c.m;
  return (factor + solve) / c.cpu_flops;
}

double bcr_seconds(const CostInputs& c) {
  // Fill-in on dense DFT blocks: measured ~2.2x the block-LU work (fig08).
  return 2.2 * lu_seconds(c);
}

double rgf_seconds(const CostInputs& c) {
  // Two column sweeps (~19 s^3 per block each) + x = Q * rhs.
  const double sweeps = 38.0 * c.nb * c.s * c.s * c.s;
  const double apply = 16.0 * c.nb * c.s * c.s * c.m;
  return (sweeps + apply) / c.cpu_flops;
}

double spike_seconds(const CostInputs& c, int partitions) {
  const double p = static_cast<double>(partitions);
  const double sweeps =
      38.0 * c.nb * c.s * c.s * c.s / std::min(c.executors, p);
  const double reduced =
      (p - 1.0) * (8.0 / 3.0 + 16.0) * 8.0 * c.s * c.s * c.s;
  const double correct =
      32.0 * c.nb * c.s * c.s * c.s / std::min(c.executors, p);
  const double apply = 16.0 * c.nb * c.s * c.s * c.m;
  return (sweeps + reduced + correct + apply) / c.cpu_flops;
}

double splitsolve_seconds(const CostInputs& c, int partitions) {
  // Step 1 is the spike cost on A, overlapped with the OBC solve; steps 2-4
  // are O(s^3 + s^2 m).
  const double step1 = spike_seconds(c, partitions);
  const double smw = (8.0 * 8.0 * c.s * c.s * c.s +
                      32.0 * c.s * c.s * c.m + 16.0 * c.nb * c.s * c.s * c.m) /
                     c.cpu_flops;
  return std::max(0.25 * step1, step1 - c.obc_overlap_seconds) + smw;
}

}  // namespace

double estimate_boundary_solve_seconds(SolverAlgorithm algo, idx nb, idx s,
                                       idx nrhs, int partitions,
                                       int executors) {
  const perf::MachineSpec& spec = perf::MachineSpec::host();
  CostInputs c;
  c.nb = static_cast<double>(nb);
  c.s = static_cast<double>(s);
  c.m = static_cast<double>(nrhs);
  c.executors = static_cast<double>(std::max(1, executors));
  c.cpu_flops = spec.cpu_gflops * 1e9;
  // The OBC eigenproblem SplitSolve overlaps with: a handful of dense
  // s-sized eigensolves (FEAST subspace iterations).
  c.obc_overlap_seconds = 60.0 * c.s * c.s * c.s / c.cpu_flops;
  switch (algo) {
    case SolverAlgorithm::kBlockLU:
      return lu_seconds(c);
    case SolverAlgorithm::kBcr:
      return bcr_seconds(c);
    case SolverAlgorithm::kRgf:
      return rgf_seconds(c);
    case SolverAlgorithm::kSpike:
      return spike_seconds(c, partitions);
    case SolverAlgorithm::kSplitSolve:
      return splitsolve_seconds(c, partitions);
    case SolverAlgorithm::kAuto:
      break;
  }
  throw std::invalid_argument(
      "estimate_boundary_solve_seconds: resolve kAuto first");
}

SolverAlgorithm auto_algorithm(idx nb, idx s, idx nrhs,
                               const SolverContext& ctx) {
  const int width = ctx.spatial != nullptr ? ctx.spatial->size() : 1;
  const int devices = ctx.pool != nullptr ? ctx.pool->size() : 0;
  const bool partitioned_ok =
      ctx.partitions > 1 && spike_partitioning_valid(nb, ctx.partitions);
  const int executors =
      partitioned_ok ? std::max(width, std::max(1, devices)) : 1;

  // With a batched caller (ctx.batch > 1), kBatchable candidates run their
  // heavy kernels as fused backend calls and are credited the measured
  // batched-GEMM throughput of the node model.  The credit is a pure
  // function of MachineSpec::host() and ctx.batch, so the kAuto determinism
  // guarantee holds as long as every rank passes the same nominal batch.
  const perf::MachineSpec& spec = perf::MachineSpec::host();
  // An offload backend runs the fused kernels on accelerator streams, so
  // its credit is the device peak; on the emulated host model gpu ==
  // cpu <= batched throughput, so the max() below leaves in-process
  // resolution untouched (see SolverContext::backend).
  const double stream_credit =
      ctx.backend != nullptr && ctx.backend->offloads()
          ? spec.gpu_gflops / spec.cpu_gflops
          : 1.0;
  const double batch_credit =
      ctx.batch > 1
          ? std::max({1.0, spec.batched_gemm_gflops / spec.cpu_gflops,
                      stream_credit})
          : 1.0;
  auto estimate = [&](SolverAlgorithm algo) {
    double seconds = estimate_boundary_solve_seconds(algo, nb, s, nrhs,
                                                     ctx.partitions, executors);
    if ((algorithm_capabilities(algo) & kBatchable) != 0)
      seconds /= batch_credit;
    return seconds;
  };
  SolverAlgorithm best = SolverAlgorithm::kBlockLU;
  double best_seconds = estimate(best);
  auto consider = [&](SolverAlgorithm algo) {
    const double seconds = estimate(algo);
    if (seconds < best_seconds) {
      best = algo;
      best_seconds = seconds;
    }
  };
  consider(SolverAlgorithm::kBcr);
  consider(SolverAlgorithm::kRgf);
  if (partitioned_ok && (devices > 0 || width > 1))
    consider(SolverAlgorithm::kSpike);
  // Batched SplitSolve runs Step 1 on backend lanes, so it no longer needs
  // accelerators or a spatial group to be worth considering.
  if (partitioned_ok && (devices > 0 || width > 1 || ctx.batch > 1))
    consider(SolverAlgorithm::kSplitSolve);
  return best;
}

SolverAlgorithm resolve_algorithm(SolverAlgorithm requested, idx nb, idx s,
                                  idx nrhs, const SolverContext& ctx) {
  if (requested != SolverAlgorithm::kAuto) return requested;
  return auto_algorithm(nb, s, nrhs, ctx);
}

std::unique_ptr<Solver> make_solver(SolverAlgorithm algo,
                                    const SolverContext& ctx) {
  if (algo == SolverAlgorithm::kAuto)
    throw std::invalid_argument(
        "make_solver: resolve kAuto through resolve_algorithm first (the "
        "choice depends on the system shape)");
  return make_solver(algorithm_name(algo), ctx);
}

}  // namespace omenx::solvers
