#include "poisson/poisson1d.hpp"

#include <cmath>
#include <stdexcept>

namespace omenx::poisson {

std::vector<double> thomas_solve(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 const std::vector<double>& c,
                                 std::vector<double> d) {
  const std::size_t n = b.size();
  if (a.size() != n || c.size() != n || d.size() != n)
    throw std::invalid_argument("thomas_solve: size mismatch");
  std::vector<double> cp(n), bp(n);
  bp[0] = b[0];
  if (bp[0] == 0.0) throw std::runtime_error("thomas_solve: zero pivot");
  cp[0] = c[0] / bp[0];
  d[0] /= bp[0];
  for (std::size_t i = 1; i < n; ++i) {
    bp[i] = b[i] - a[i] * cp[i - 1];
    if (bp[i] == 0.0) throw std::runtime_error("thomas_solve: zero pivot");
    cp[i] = c[i] / bp[i];
    d[i] = (d[i] - a[i] * d[i - 1]) / bp[i];
  }
  for (std::size_t i = n - 1; i-- > 0;) d[i] -= cp[i] * d[i + 1];
  return d;
}

std::vector<double> solve_device_potential(const lattice::DeviceRegions& regions,
                                           double vgs, double vds,
                                           const std::vector<double>& rho,
                                           const PoissonOptions& options) {
  const idx n = regions.total();
  if (n < 3) throw std::invalid_argument("solve_device_potential: too short");
  if (!rho.empty() && static_cast<idx>(rho.size()) != n)
    throw std::invalid_argument("solve_device_potential: rho size mismatch");
  const double lam = options.screening_length_cells;
  if (lam <= 0.0)
    throw std::invalid_argument("solve_device_potential: bad lambda");
  const double inv_l2 = 1.0 / (lam * lam);

  // External (imposed) potential-energy targets: contacts pin source/drain,
  // the gate pins the channel.  Electron energy = -q*V, so a positive Vgs
  // *lowers* the channel barrier and positive Vds lowers the drain.
  std::vector<double> v_ext(static_cast<std::size_t>(n), 0.0);
  for (idx i = 0; i < n; ++i) {
    if (i < regions.source_cells) {
      v_ext[static_cast<std::size_t>(i)] = 0.0;
    } else if (i < regions.source_cells + regions.gate_cells) {
      v_ext[static_cast<std::size_t>(i)] = -vgs;
    } else {
      v_ext[static_cast<std::size_t>(i)] = -vds;
    }
  }

  // (V_{i-1} - 2 V_i + V_{i+1}) - (V_i - V_ext_i)/lam^2 = c_q rho_i
  // with h = 1 cell.  Dirichlet: V_0 = 0, V_{n-1} = -vds.
  std::vector<double> a(static_cast<std::size_t>(n), 0.0);
  std::vector<double> b(static_cast<std::size_t>(n), 0.0);
  std::vector<double> c(static_cast<std::size_t>(n), 0.0);
  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  b[0] = 1.0;
  d[0] = 0.0;
  b[static_cast<std::size_t>(n - 1)] = 1.0;
  d[static_cast<std::size_t>(n - 1)] = -vds;
  for (idx i = 1; i + 1 < n; ++i) {
    a[static_cast<std::size_t>(i)] = 1.0;
    b[static_cast<std::size_t>(i)] = -2.0 - inv_l2;
    c[static_cast<std::size_t>(i)] = 1.0;
    // Electron density raises the local electron potential energy, so the
    // charge term enters with a negative sign on this (negative-definite)
    // operator's right-hand side.
    d[static_cast<std::size_t>(i)] =
        -v_ext[static_cast<std::size_t>(i)] * inv_l2 -
        (rho.empty() ? 0.0
                     : options.charge_coupling * rho[static_cast<std::size_t>(i)]);
  }
  return thomas_solve(a, b, c, d);
}

}  // namespace omenx::poisson
