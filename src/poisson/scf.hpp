// Self-consistent Schroedinger-Poisson iteration (the loop of Fig. 2 that
// consumes 99% of the simulation time, iterated 40-50 times per bias point
// in production).
//
// The charge model is injected as a callback so that the loop itself stays
// independent of the transport backend: the OMEN simulator supplies a
// ballistic wave-function charge; tests supply analytic models.
//
// The iteration is Anderson-accelerated: with history depth m > 0 each step
// extrapolates through the last m residual differences of the fixed-point
// map G(V) = Poisson(rho(V)), collapsing the slow geometric convergence of
// damped linear mixing (40-50 iterations in production) to a handful of
// steps.  Depth 0 recovers the plain damped iteration
//     V_{n+1} = (1-m) V_n + m G(V_n).
// Convergence is judged on a dual criterion: both the potential residual
// max |G(V) - V| and the charge residual max |rho_n - rho_{n-1}| must drop
// below their tolerances, so a potential that has stopped moving on a still
// drifting charge is not declared converged.
#pragma once

#include <functional>
#include <vector>

#include "charge/quadrature.hpp"
#include "lattice/structure.hpp"
#include "poisson/poisson1d.hpp"
#include "scattering/self_energy.hpp"

namespace omenx::poisson {

struct ScfOptions {
  int max_iter = 40;
  double tol = 1e-4;        ///< max |V_new - V_old| (eV)
  /// Charge half of the dual convergence criterion: max |rho_n - rho_{n-1}|
  /// must also fall below this (same units as the charge model); <= 0
  /// disables it and recovers the seed's potential-only test.
  double charge_tol = 1e-3;
  double mixing = 0.4;      ///< damping factor (linear and Anderson steps)
  /// Anderson history depth m: the update extrapolates through the last m
  /// residual differences.  0 = plain damped linear mixing.
  int anderson_depth = 3;

  // --- knobs consumed by bias-sweep drivers (omen::Simulator), not by the
  // --- loop itself ------------------------------------------------------
  /// Start each bias point from the previous point's converged potential
  /// instead of the Laplace solution.
  bool warm_start = true;
  /// Regenerate the energy grid per outer SCF iteration (adaptive
  /// refinement toward the band edges moving with the potential).
  bool adaptive_energy_grid = false;
  double grid_refine_tol = 0.5;    ///< indicator jump that triggers bisection
  double grid_min_spacing = 1e-3;  ///< eV floor for adaptive refinement
  /// Uniform lead (contact) potential shift (eV) — the *scalar spelling*
  /// of the per-contact `contact_shifts` vector: drivers never read this
  /// field directly but call resolved_contact_shifts(), which forwards the
  /// scalar onto every terminal.  Setting both spellings at once (nonzero
  /// scalar + non-empty vector) is ambiguous and throws there.
  double contact_shift = 0.0;
  /// Per-contact shifts (terminal order) — the canonical spelling.  Empty =
  /// the scalar `contact_shift` applies uniformly (the classic behavior).
  /// Non-empty must match the driver's configured contact count
  /// (resolved_contact_shifts validates); drivers hand each resolved entry
  /// to Simulator::set_contact_shift(contact, shift), so a change in one
  /// contact's electrostatics drops only that contact's cached lead solves
  /// — one cache-invalidation path for both spellings.
  std::vector<double> contact_shifts;
  /// Unify the two spellings: one shift per contact, max(num_contacts, 1)
  /// entries (classic no-contact layouts read entry 0 as the uniform
  /// ObcOptions shift).  Throws std::invalid_argument when `contact_shifts`
  /// is non-empty and its size disagrees with `num_contacts`, or when both
  /// spellings are set at once.
  std::vector<double> resolved_contact_shifts(std::size_t num_contacts) const;
  /// Dissipation model the bias sweep runs under (scattering::Spec).  The
  /// default kNone leaves the driver's configured model untouched; anything
  /// else is handed to Simulator::set_scattering for the whole sweep.
  scattering::Spec scattering;
  /// Charge-quadrature backend for the SCF charge evaluations
  /// (charge::Quadrature registry).  kRealGrid is the seed's trapezoid
  /// integration of the caller grid; kContour moves the equilibrium window
  /// onto the complex contour (a handful of Green's-function nodes replace
  /// the real-axis sweep) and keeps only the bias window [mu_R, mu_L] on
  /// the real axis.  With kContour, `adaptive_energy_grid` applies only to
  /// that real-axis remainder — at equilibrium there is none, and grid
  /// refinement is skipped entirely.
  charge::QuadratureAlgorithm quadrature =
      charge::QuadratureAlgorithm::kRealGrid;
  charge::QuadratureOptions quadrature_options;

  PoissonOptions poisson;
};

/// charge(V) -> per-cell electron density for the current potential.
using ChargeModel =
    std::function<std::vector<double>(const std::vector<double>&)>;

/// One outer-iteration record of the SCF loop (ScfResult::history).
struct ScfIteration {
  double potential_residual = 0.0;  ///< max |G(V_n) - V_n|
  double charge_residual = 0.0;     ///< max |rho_n - rho_{n-1}|
  bool anderson = false;            ///< update used the Anderson extrapolation
};

struct ScfResult {
  std::vector<double> potential;  ///< converged per-cell potential (eV)
  std::vector<double> charge;     ///< final per-cell charge
  int iterations = 0;
  double residual = 0.0;          ///< final potential residual
  double charge_residual = 0.0;   ///< final charge residual
  bool converged = false;
  std::vector<ScfIteration> history;  ///< per-iteration diagnostics
};

/// Run the Anderson-accelerated fixed-point iteration on
///   G(V) = Poisson(rho(V))
/// starting from `initial` when given (warm start) and from the
/// charge-free (Laplace) potential otherwise.  `initial_charge` seeds the
/// charge-residual reference of the first iteration (a warm-started point
/// already at its fixed point then converges on the first evaluation);
/// without it the reference is the zero vector of the Laplace start.
/// Throws std::invalid_argument when `initial`, `initial_charge`, or the
/// charge model's output does not match the device size.  The returned
/// potential satisfies the dual residual criterion without a trailing
/// mixing step, so it is a fixed point of G to within `tol`, and
/// `iterations` always equals the number of charge evaluations
/// (= history.size()), converged or not.
ScfResult self_consistent_potential(
    const lattice::DeviceRegions& regions, double vgs, double vds,
    const ChargeModel& charge, const ScfOptions& options = {},
    const std::vector<double>* initial = nullptr,
    const std::vector<double>* initial_charge = nullptr);

}  // namespace omenx::poisson
