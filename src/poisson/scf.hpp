// Self-consistent Schroedinger-Poisson iteration (the loop of Fig. 2 that
// consumes 99% of the simulation time, iterated 40-50 times per bias point
// in production).
//
// The charge model is injected as a callback so that the loop itself stays
// independent of the transport backend: the OMEN simulator supplies a
// ballistic wave-function charge; tests supply analytic models.
#pragma once

#include <functional>
#include <vector>

#include "lattice/structure.hpp"
#include "poisson/poisson1d.hpp"

namespace omenx::poisson {

struct ScfOptions {
  int max_iter = 40;
  double tol = 1e-4;      ///< max |V_new - V_old| (eV)
  double mixing = 0.4;    ///< linear potential mixing factor
  PoissonOptions poisson;
};

/// charge(V) -> per-cell electron density for the current potential.
using ChargeModel =
    std::function<std::vector<double>(const std::vector<double>&)>;

struct ScfResult {
  std::vector<double> potential;  ///< converged per-cell potential (eV)
  std::vector<double> charge;     ///< final per-cell charge
  int iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

/// Run the damped fixed-point iteration
///   V_{n+1} = (1-m) V_n + m Poisson(rho(V_n))
/// starting from the charge-free (Laplace) potential.
ScfResult self_consistent_potential(const lattice::DeviceRegions& regions,
                                    double vgs, double vds,
                                    const ChargeModel& charge,
                                    const ScfOptions& options = {});

}  // namespace omenx::poisson
