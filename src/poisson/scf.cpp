#include "poisson/scf.hpp"

#include <cmath>

namespace omenx::poisson {

ScfResult self_consistent_potential(const lattice::DeviceRegions& regions,
                                    double vgs, double vds,
                                    const ChargeModel& charge,
                                    const ScfOptions& options) {
  ScfResult out;
  out.potential = solve_device_potential(regions, vgs, vds, {},
                                         options.poisson);
  for (out.iterations = 1; out.iterations <= options.max_iter;
       ++out.iterations) {
    out.charge = charge(out.potential);
    const std::vector<double> v_new = solve_device_potential(
        regions, vgs, vds, out.charge, options.poisson);
    out.residual = 0.0;
    for (std::size_t i = 0; i < v_new.size(); ++i)
      out.residual =
          std::max(out.residual, std::abs(v_new[i] - out.potential[i]));
    for (std::size_t i = 0; i < v_new.size(); ++i)
      out.potential[i] = (1.0 - options.mixing) * out.potential[i] +
                         options.mixing * v_new[i];
    if (out.residual < options.tol) {
      out.converged = true;
      break;
    }
  }
  return out;
}

}  // namespace omenx::poisson
