#include "poisson/scf.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <deque>
#include <stdexcept>

namespace omenx::poisson {

std::vector<double> ScfOptions::resolved_contact_shifts(
    std::size_t num_contacts) const {
  if (!contact_shifts.empty()) {
    if (contact_shift != 0.0)
      throw std::invalid_argument(
          "ScfOptions: contact_shift (scalar) and contact_shifts (vector) "
          "are both set — pick one spelling");
    if (contact_shifts.size() != num_contacts)
      throw std::invalid_argument(
          "ScfOptions: contact_shifts must have one entry per configured "
          "contact");
    return contact_shifts;
  }
  return std::vector<double>(std::max<std::size_t>(num_contacts, 1),
                             contact_shift);
}

namespace {

double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double out = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    out = std::max(out, std::abs(a[i] - b[i]));
  return out;
}

/// Solve the small dense system A x = b (A symmetric positive semidefinite
/// from normal equations) by Gaussian elimination with partial pivoting.
/// Returns false when the system is numerically singular even after the
/// caller's ridge.
bool solve_dense(std::vector<double>& a, std::vector<double>& b,
                 std::size_t m) {
  for (std::size_t k = 0; k < m; ++k) {
    std::size_t piv = k;
    for (std::size_t i = k + 1; i < m; ++i)
      if (std::abs(a[i * m + k]) > std::abs(a[piv * m + k])) piv = i;
    if (std::abs(a[piv * m + k]) < 1e-300) return false;
    if (piv != k) {
      for (std::size_t j = 0; j < m; ++j)
        std::swap(a[k * m + j], a[piv * m + j]);
      std::swap(b[k], b[piv]);
    }
    for (std::size_t i = k + 1; i < m; ++i) {
      const double l = a[i * m + k] / a[k * m + k];
      for (std::size_t j = k; j < m; ++j) a[i * m + j] -= l * a[k * m + j];
      b[i] -= l * b[k];
    }
  }
  for (std::size_t k = m; k-- > 0;) {
    for (std::size_t j = k + 1; j < m; ++j) b[k] -= a[k * m + j] * b[j];
    b[k] /= a[k * m + k];
  }
  return true;
}

/// Anderson(m) update from the iterate/residual history (oldest first,
/// current last).  Writes the next iterate into `v_next` and returns true;
/// returns false (leaving `v_next` untouched) when the least-squares system
/// is singular or the extrapolation coefficients blow up, in which case the
/// caller falls back to the damped linear step.
bool anderson_step(const std::deque<std::vector<double>>& v_hist,
                   const std::deque<std::vector<double>>& f_hist, double beta,
                   std::vector<double>& v_next) {
  const std::size_t p = f_hist.size() - 1;  // index of the current iterate
  const std::size_t m = p;                  // difference columns
  const std::size_t n = f_hist[p].size();
  if (m == 0) return false;

  // Normal equations of min_gamma || F_p - sum_j gamma_j dF_j ||_2 with
  // dF_j = F_{j+1} - F_j, ridge-regularized relative to the diagonal scale.
  std::vector<double> gram(m * m, 0.0), rhs(m, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = a; b < m; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i)
        dot += (f_hist[a + 1][i] - f_hist[a][i]) *
               (f_hist[b + 1][i] - f_hist[b][i]);
      gram[a * m + b] = dot;
      gram[b * m + a] = dot;
    }
    double dot = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      dot += (f_hist[a + 1][i] - f_hist[a][i]) * f_hist[p][i];
    rhs[a] = dot;
  }
  double diag_max = 0.0;
  for (std::size_t a = 0; a < m; ++a)
    diag_max = std::max(diag_max, gram[a * m + a]);
  const double ridge = std::max(1e-12 * diag_max, 1e-300);
  for (std::size_t a = 0; a < m; ++a) gram[a * m + a] += ridge;

  if (!solve_dense(gram, rhs, m)) return false;
  double gamma_max = 0.0;
  for (const double g : rhs) {
    if (!std::isfinite(g)) return false;
    gamma_max = std::max(gamma_max, std::abs(g));
  }
  // Wild coefficients mean the history is degenerate (stagnated residuals
  // near convergence): the damped step is both cheaper and safer there.
  if (gamma_max > 1e4) return false;

  // V_next = V_p + beta F_p - sum_j gamma_j (dV_j + beta dF_j).
  v_next.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    v_next[i] = v_hist[p][i] + beta * f_hist[p][i];
  for (std::size_t j = 0; j < m; ++j) {
    const double g = rhs[j];
    if (g == 0.0) continue;
    for (std::size_t i = 0; i < n; ++i)
      v_next[i] -= g * ((v_hist[j + 1][i] - v_hist[j][i]) +
                        beta * (f_hist[j + 1][i] - f_hist[j][i]));
  }
  for (const double v : v_next)
    if (!std::isfinite(v)) return false;
  return true;
}

}  // namespace

ScfResult self_consistent_potential(const lattice::DeviceRegions& regions,
                                    double vgs, double vds,
                                    const ChargeModel& charge,
                                    const ScfOptions& options,
                                    const std::vector<double>* initial,
                                    const std::vector<double>* initial_charge) {
  ScfResult out;
  if (initial != nullptr) {
    if (static_cast<idx>(initial->size()) != regions.total())
      throw std::invalid_argument(
          "self_consistent_potential: warm-start potential size mismatch");
    out.potential = *initial;
  } else {
    out.potential =
        solve_device_potential(regions, vgs, vds, {}, options.poisson);
  }
  const std::size_t n = out.potential.size();
  const double beta = options.mixing;
  const int depth = std::max(0, options.anderson_depth);

  std::deque<std::vector<double>> v_hist, f_hist;
  // The Laplace start assumes zero charge, so the charge residual of the
  // first iteration is measured against the zero vector by default: a
  // charge-free model still converges in one evaluation.  A warm start may
  // seed the previous solution's charge instead, so a point already at its
  // fixed point passes the dual criterion on the first evaluation rather
  // than paying a second full charge sweep just to observe rho settling.
  std::vector<double> prev_charge(n, 0.0);
  if (initial_charge != nullptr) {
    if (initial_charge->size() != n)
      throw std::invalid_argument(
          "self_consistent_potential: warm-start charge size mismatch");
    prev_charge = *initial_charge;
  }

  for (out.iterations = 1; out.iterations <= options.max_iter;
       ++out.iterations) {
    out.charge = charge(out.potential);
    if (out.charge.size() != n)
      throw std::invalid_argument(
          "self_consistent_potential: charge model size mismatch");
    out.charge_residual = max_abs_diff(out.charge, prev_charge);
    prev_charge = out.charge;

    const std::vector<double> g = solve_device_potential(
        regions, vgs, vds, out.charge, options.poisson);
    std::vector<double> f(n);
    out.residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      f[i] = g[i] - out.potential[i];
      out.residual = std::max(out.residual, std::abs(f[i]));
    }
    out.history.push_back({out.residual, out.charge_residual, false});

    const bool charge_ok =
        options.charge_tol <= 0.0 || out.charge_residual < options.charge_tol;
    if (out.residual < options.tol && charge_ok) {
      // Converged on the *current* iterate: no trailing mixing step, so the
      // returned potential is a fixed point of G to within tol.
      out.converged = true;
      break;
    }

    // Restart safeguard for the strongly nonlinear transport charge: an
    // extrapolation built on a residual that just *grew* points the wrong
    // way (the history straddles a band-edge kink), so drop it and let the
    // damped step re-anchor before accelerating again.
    if (!f_hist.empty() &&
        out.residual >
            out.history[out.history.size() - 2].potential_residual) {
      v_hist.clear();
      f_hist.clear();
    }
    v_hist.push_back(out.potential);
    f_hist.push_back(std::move(f));
    while (static_cast<int>(v_hist.size()) > depth + 1) {
      v_hist.pop_front();
      f_hist.pop_front();
    }

    std::vector<double> v_next;
    bool used_anderson = false;
    if (depth > 0)
      used_anderson = anderson_step(v_hist, f_hist, beta, v_next);
    if (!used_anderson) {
      v_next.resize(n);
      const std::vector<double>& fc = f_hist.back();
      for (std::size_t i = 0; i < n; ++i)
        v_next[i] = out.potential[i] + beta * fc[i];
    }
    out.history.back().anderson = used_anderson;
    out.potential = std::move(v_next);
  }
  // Exhausting the loop leaves the counter one past max_iter; clamp so
  // iterations always equals the number of charge evaluations (and
  // history.size()), converged or not.
  out.iterations = std::min(out.iterations, options.max_iter);
  return out;
}

}  // namespace omenx::poisson
