// 1-D electrostatics along the transport axis.
//
// OMEN self-consistently couples the Schroedinger and Poisson equations
// (Fig. 2).  For the FET structures the essential electrostatics is captured
// by the standard quasi-1D MOS model: the gate imposes its potential on the
// channel within a characteristic screening length lambda,
//     d^2 V/dx^2 - (V - V_ext(x))/lambda^2 = c_q * rho(x),
// with Dirichlet contacts (source grounded, drain at -Vds in electron energy
// units) and V_ext = -Vgs under the gate.  Discretized per transport cell
// and solved with a real tridiagonal (Thomas) solve.
#pragma once

#include <vector>

#include "lattice/structure.hpp"
#include "numeric/types.hpp"

namespace omenx::poisson {

using numeric::idx;

struct PoissonOptions {
  double screening_length_cells = 3.0;  ///< lambda in units of cell length
  double charge_coupling = 0.0;         ///< c_q: eV per (charge unit/cell)
};

/// Potential-energy profile (eV per cell) for a FET at gate bias `vgs` and
/// drain bias `vds` given the per-cell electron charge `rho` (may be empty
/// for the charge-free Laplace solution).
std::vector<double> solve_device_potential(const lattice::DeviceRegions& regions,
                                           double vgs, double vds,
                                           const std::vector<double>& rho,
                                           const PoissonOptions& options = {});

/// Solve the tridiagonal system  a_i x_{i-1} + b_i x_i + c_i x_{i+1} = d_i
/// (Thomas algorithm).  Exposed for reuse and testing.
std::vector<double> thomas_solve(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 const std::vector<double>& c,
                                 std::vector<double> d);

}  // namespace omenx::poisson
