#include "scattering/self_energy.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

namespace omenx::scattering {

std::uint64_t SelfEnergy::boundary_key_component(
    const ScatteringOptions&) const {
  return 0;
}

namespace {

/// Ballistic no-op model: the registry's explicit spelling of "no
/// scattering", so drivers can treat model selection uniformly.
class NoneModel final : public SelfEnergy {
 public:
  const char* name() const noexcept override { return "none"; }
  unsigned capabilities() const noexcept override { return 0; }
  std::vector<ProbeSite> probes(idx, const std::vector<idx>&,
                                const ScatteringOptions&) const override {
    return {};
  }
};

/// Büttiker probes: one pseudo-terminal Sigma_p = -i eta I per attachment
/// block.  eta <= 0 contributes nothing — the exact ballistic limit.
class ButtikerProbeModel final : public SelfEnergy {
 public:
  const char* name() const noexcept override { return "buttiker_probe"; }
  unsigned capabilities() const noexcept override {
    return kAddsTerminals | kElastic | kNeedsProbeTuning;
  }

  std::vector<ProbeSite> probes(idx nb, const std::vector<idx>& occupied,
                                const ScatteringOptions& options) const override {
    const ButtikerOptions& o = options.buttiker;
    if (o.eta <= 0.0) return {};
    std::vector<ProbeSite> out;
    if (!o.blocks.empty()) {
      out.reserve(o.blocks.size());
      for (const idx b : o.blocks) out.push_back({b, o.eta});
      return out;
    }
    if (o.stride < 1)
      throw std::invalid_argument(
          "buttiker_probe: stride must be >= 1, got " +
          std::to_string(o.stride));
    idx free_seen = 0;
    for (idx b = 0; b < nb; ++b) {
      if (std::find(occupied.begin(), occupied.end(), b) != occupied.end())
        continue;
      if (free_seen % o.stride == 0) out.push_back({b, o.eta});
      ++free_seen;
    }
    return out;
  }
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, SelfEnergyFactory> factories;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    reg->factories["none"] = [] { return std::make_unique<NoneModel>(); };
    reg->factories["buttiker_probe"] = [] {
      return std::make_unique<ButtikerProbeModel>();
    };
    return reg;
  }();
  return *r;
}

/// Same Fermi function (and +-40 kT overflow guards) as transport::fermi —
/// duplicated because this layer must stay below transport in the include
/// graph.  The tuning residual and transport::buttiker_currents must agree
/// bit for bit, so the guards must never drift apart.
double fermi_local(double e, double mu, double kt) {
  if (kt <= 0.0) return e <= mu ? 1.0 : 0.0;
  const double arg = (e - mu) / kt;
  if (arg > 40.0) return 0.0;
  if (arg < -40.0) return 1.0;
  return 1.0 / (1.0 + std::exp(arg));
}

/// Trapezoid weights, formula-identical to transport::trapezoid_weights.
std::vector<double> trapezoid_local(const std::vector<double>& grid) {
  const std::size_t n = grid.size();
  if (n == 0) return {};
  if (n == 1) return {1.0};
  for (std::size_t i = 1; i < n; ++i)
    if (!(grid[i] > grid[i - 1]))
      throw std::invalid_argument(
          "tune_probe_potentials: energies must be strictly increasing");
  std::vector<double> w(n);
  w[0] = 0.5 * (grid[1] - grid[0]);
  w[n - 1] = 0.5 * (grid[n - 1] - grid[n - 2]);
  for (std::size_t i = 1; i + 1 < n; ++i)
    w[i] = 0.5 * (grid[i + 1] - grid[i - 1]);
  return w;
}

/// Terminal currents with transport::buttiker_currents' exact antisymmetric
/// pair accumulation, so the converged residual here IS the leak the bench
/// gate measures.
std::vector<double> currents_local(const std::vector<double>& w,
                                   const std::vector<double>& energies,
                                   const std::vector<std::vector<double>>& t,
                                   const std::vector<double>& mu, double kt) {
  const std::size_t nc = mu.size();
  std::vector<double> out(nc, 0.0);
  for (std::size_t i = 0; i < energies.size(); ++i) {
    const std::vector<double>& ti = t[i];
    for (std::size_t p = 0; p < nc; ++p) {
      const double fp = fermi_local(energies[i], mu[p], kt);
      for (std::size_t q = p + 1; q < nc; ++q) {
        const double fq = fermi_local(energies[i], mu[q], kt);
        const double c = w[i] * (ti[p * nc + q] * fp - ti[q * nc + p] * fq);
        out[p] += c;
        out[q] -= c;
      }
    }
  }
  return out;
}

/// Relative probe-current leak: max over probes of |I_p| / max(1, max|I|).
double probe_residual(const std::vector<double>& currents,
                      const std::vector<bool>& is_probe) {
  double scale = 0.0;
  for (const double c : currents) scale = std::max(scale, std::abs(c));
  double worst = 0.0;
  for (std::size_t p = 0; p < currents.size(); ++p)
    if (is_probe[p]) worst = std::max(worst, std::abs(currents[p]));
  return worst / std::max(1.0, scale);
}

/// In-place Gauss elimination with partial pivoting on a dense row-major
/// n x n system; rhs overwritten with the solution.  Probe subsystems are
/// tiny (a handful of probes), so a dense direct solve is the right tool.
void gauss_solve(std::vector<double>& a, std::vector<double>& rhs,
                 std::size_t n) {
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < n; ++r)
      if (std::abs(a[r * n + col]) > std::abs(a[piv * n + col])) piv = r;
    if (piv != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a[col * n + c], a[piv * n + c]);
      std::swap(rhs[col], rhs[piv]);
    }
    const double d = a[col * n + col];
    if (std::abs(d) < 1e-300) {
      // Decoupled/saturated probe: leave its potential unchanged.
      for (std::size_t c = 0; c < n; ++c) a[col * n + c] = c == col ? 1.0 : 0.0;
      rhs[col] = 0.0;
      continue;
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / d;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      rhs[r] -= f * rhs[col];
    }
  }
  for (std::size_t col = n; col-- > 0;) {
    double s = rhs[col];
    for (std::size_t c = col + 1; c < n; ++c) s -= a[col * n + c] * rhs[c];
    rhs[col] = s / a[col * n + col];
  }
}

}  // namespace

void register_scattering_model(const std::string& name,
                               SelfEnergyFactory factory) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.factories[name] = std::move(factory);
}

std::vector<std::string> registered_scattering_models() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, factory] : r.factories) names.push_back(name);
  return names;
}

std::unique_ptr<SelfEnergy> make_scattering_model(const std::string& name) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.factories.find(name);
  if (it == r.factories.end())
    throw std::invalid_argument("make_scattering_model: unknown model '" +
                                name + "'");
  return it->second();
}

const char* scattering_algorithm_name(ScatteringAlgorithm algo) noexcept {
  switch (algo) {
    case ScatteringAlgorithm::kNone:
      return "none";
    case ScatteringAlgorithm::kButtikerProbe:
      return "buttiker_probe";
  }
  return "none";
}

std::unique_ptr<SelfEnergy> make_scattering_model(ScatteringAlgorithm algo) {
  return make_scattering_model(scattering_algorithm_name(algo));
}

unsigned scattering_algorithm_capabilities(ScatteringAlgorithm algo) {
  return make_scattering_model(algo)->capabilities();
}

std::vector<ProbeSite> assemble_probes(const Spec& spec, idx nb,
                                       const std::vector<idx>& occupied) {
  if (spec.algorithm == ScatteringAlgorithm::kNone) return {};
  return make_scattering_model(spec.algorithm)
      ->probes(nb, occupied, spec.options);
}

std::uint64_t boundary_key_component(const Spec& spec) {
  if (spec.algorithm == ScatteringAlgorithm::kNone) return 0;
  const auto model = make_scattering_model(spec.algorithm);
  if ((model->capabilities() & kModifiesBoundaries) == 0) return 0;
  return model->boundary_key_component(spec.options);
}

ProbeTuneResult tune_probe_potentials(const std::vector<double>& energies,
                                      const std::vector<std::vector<double>>& t_matrix,
                                      std::vector<double> mu,
                                      const std::vector<bool>& is_probe,
                                      double kt,
                                      const ProbeTuneOptions& options) {
  const std::size_t nc = mu.size();
  if (kt <= 0.0)
    throw std::invalid_argument(
        "tune_probe_potentials: kt must be positive (the Fermi step has no "
        "usable derivative at kT = 0)");
  if (is_probe.size() != nc)
    throw std::invalid_argument("tune_probe_potentials: is_probe size");
  if (t_matrix.size() != energies.size() || energies.size() < 2)
    throw std::invalid_argument("tune_probe_potentials: bad table");
  for (const std::vector<double>& t : t_matrix)
    if (t.size() != nc * nc)
      throw std::invalid_argument("tune_probe_potentials: t_matrix row size");

  std::vector<std::size_t> probes;
  for (std::size_t p = 0; p < nc; ++p)
    if (is_probe[p]) probes.push_back(p);

  ProbeTuneResult out;
  if (probes.empty()) {
    out.mu = std::move(mu);
    out.converged = true;
    return out;
  }

  const std::vector<double> w = trapezoid_local(energies);
  const std::size_t np = probes.size();
  std::vector<double> currents = currents_local(w, energies, t_matrix, mu, kt);
  double res = probe_residual(currents, is_probe);

  for (int it = 0; it < options.max_iter && res > options.tol; ++it) {
    // Analytic Jacobian of the probe currents in the probe potentials.
    std::vector<double> jac(np * np, 0.0);
    std::vector<double> rhs(np);
    for (std::size_t a = 0; a < np; ++a)
      rhs[a] = -currents[probes[a]];
    for (std::size_t i = 0; i < energies.size(); ++i) {
      const std::vector<double>& t = t_matrix[i];
      for (std::size_t a = 0; a < np; ++a) {
        const std::size_t p = probes[a];
        const double fp = fermi_local(energies[i], mu[p], kt);
        const double dfp = fp * (1.0 - fp) / kt;
        double row_sum = 0.0;
        for (std::size_t q = 0; q < nc; ++q)
          if (q != p) row_sum += t[p * nc + q];
        jac[a * np + a] += w[i] * row_sum * dfp;
        for (std::size_t b = 0; b < np; ++b) {
          if (b == a) continue;
          const std::size_t q = probes[b];
          const double fq = fermi_local(energies[i], mu[q], kt);
          jac[a * np + b] -= w[i] * t[q * nc + p] * fq * (1.0 - fq) / kt;
        }
      }
    }
    gauss_solve(jac, rhs, np);

    // Secant-style fallback: halve the Newton step until the residual
    // drops (the Jacobian's diagonal dominance makes the full step almost
    // always the accepted one).
    double damp = 1.0;
    std::vector<double> trial = mu;
    std::vector<double> trial_currents;
    double trial_res = res;
    for (int half = 0; half < 8; ++half) {
      for (std::size_t a = 0; a < np; ++a)
        trial[probes[a]] = mu[probes[a]] + damp * rhs[a];
      trial_currents = currents_local(w, energies, t_matrix, trial, kt);
      trial_res = probe_residual(trial_currents, is_probe);
      if (trial_res < res) break;
      damp *= 0.5;
    }
    const double prev = res;
    mu = trial;
    currents = std::move(trial_currents);
    res = trial_res;
    out.iterations = it + 1;
    if (res >= prev && damp < 1.0 / 64.0) break;  // stalled
  }

  out.mu = std::move(mu);
  out.max_residual = res;
  out.converged = res <= options.tol;
  return out;
}

std::vector<double> eliminate_probes(const std::vector<double>& t_matrix,
                                     const std::vector<bool>& is_probe) {
  const std::size_t nc = is_probe.size();
  if (t_matrix.size() != nc * nc)
    throw std::invalid_argument("eliminate_probes: t_matrix size");
  std::vector<std::size_t> kept, probes;
  for (std::size_t p = 0; p < nc; ++p)
    (is_probe[p] ? probes : kept).push_back(p);
  const std::size_t nk = kept.size();
  const std::size_t np = probes.size();

  std::vector<double> out(nk * nk, 0.0);
  for (std::size_t a = 0; a < nk; ++a)
    for (std::size_t b = 0; b < nk; ++b)
      if (a != b) out[a * nk + b] = t_matrix[kept[a] * nc + kept[b]];
  if (np == 0) return out;

  // W_pq = delta_pq sum_r T_pr - T_pq over the probe subset; solving
  // W X = T_Pb per kept column b gives the redistribution term
  // T_aP W^{-1} T_Pb in one pass.
  std::vector<double> w_base(np * np, 0.0);
  for (std::size_t a = 0; a < np; ++a) {
    const std::size_t p = probes[a];
    double row_sum = 0.0;
    for (std::size_t r = 0; r < nc; ++r)
      if (r != p) row_sum += t_matrix[p * nc + r];
    w_base[a * np + a] = row_sum;
    for (std::size_t b = 0; b < np; ++b) {
      if (b == a) continue;
      w_base[a * np + b] -= t_matrix[p * nc + probes[b]];
    }
  }
  for (std::size_t bcol = 0; bcol < nk; ++bcol) {
    std::vector<double> w = w_base;
    std::vector<double> x(np);
    for (std::size_t a = 0; a < np; ++a)
      x[a] = t_matrix[probes[a] * nc + kept[bcol]];
    gauss_solve(w, x, np);
    for (std::size_t a = 0; a < nk; ++a) {
      if (a == bcol) continue;
      double add = 0.0;
      for (std::size_t p = 0; p < np; ++p)
        add += t_matrix[kept[a] * nc + probes[p]] * x[p];
      out[a * nk + bcol] += add;
    }
  }
  return out;
}

}  // namespace omenx::scattering
