// Composable scattering self-energy models — the layer that removes the
// pipeline's deepest remaining assumption: that every self-energy comes
// from a contact.
//
// transport::solve_energy_point assembles its per-block self-energy
// contributions from an ordered provider list.  Provider #0 is always the
// ContactSet (routed through literally the pre-refactor arithmetic, so the
// ballistic limit stays bit-identical); a scattering model appends further
// providers.  The first model, `buttiker_probe`, attaches phenomenological
// probe terminals Sigma_p = -i eta_p I to interior device blocks via the
// PR-9 kMultiTerminal interior-attachment machinery: each probe absorbs
// carriers and re-injects them at its own chemical potential mu_p, which an
// inner Newton/secant loop (tune_probe_potentials) drives to zero net probe
// current — current conservation restored, phase coherence broken with
// strength eta_p.
//
// Same registry/capability idiom as the PR-3 solver, PR-5 OBC, and PR-7
// quadrature registries: enum + name -> factory + capability bits.  This
// header is a leaf — it must not include transport headers (transmission.hpp
// includes it).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "numeric/types.hpp"

namespace omenx::scattering {

using numeric::idx;

/// Selectable scattering models (registry names are the snake_case forms).
enum class ScatteringAlgorithm { kNone, kButtikerProbe };

/// Capability bits advertised by a scattering model.
enum ScatteringCapability : unsigned {
  /// The model contributes probe pseudo-terminals: the effective terminal
  /// set of a point grows beyond the physical contacts, and observables
  /// (T_pq, densities) gain probe rows.
  kAddsTerminals = 1u << 0,
  /// Energy-conserving (elastic) scattering: every energy point remains an
  /// independent solve, so the (k, E) task decomposition is unchanged.
  kElastic = 1u << 1,
  /// Probe chemical potentials are free parameters that must be tuned to
  /// the zero-net-current condition (tune_probe_potentials) before terminal
  /// currents or occupation-weighted charge are meaningful.
  kNeedsProbeTuning = 1u << 2,
  /// The model modifies the *contact* boundary self-energies themselves
  /// (none of the built-ins do).  Models advertising this must return a
  /// nonzero boundary_key_component so cached Boundaries computed under a
  /// different scattering configuration never alias.
  kModifiesBoundaries = 1u << 3,
};

/// Büttiker-probe model options.  eta <= 0 disables the model exactly: no
/// probe attaches, and the pipeline routes through the ballistic paths
/// bit-identically (the parity gate of BENCH_scattering.json).
struct ButtikerOptions {
  /// Dephasing strength (eV): every probe's self-energy is -i*eta*I.
  double eta = 0.0;
  /// Explicit attachment blocks.  Empty = attach to every device block not
  /// already carrying a contact, stepping by `stride` (the dephasing-ladder
  /// convention).  Blocks listed here that collide with a contact block are
  /// rejected by ContactSet::validate.
  std::vector<idx> blocks;
  /// With empty `blocks`: attach to every stride-th free block (>= 1).
  idx stride = 1;

  // Memberwise — part of Spec's operator==, which cache-invalidation
  // decisions compare, so a new field MUST be added here too.
  friend bool operator==(const ButtikerOptions& a,
                         const ButtikerOptions& b) noexcept {
    return a.eta == b.eta && a.blocks == b.blocks && a.stride == b.stride;
  }
};

/// Options of every registered model (one struct travels through
/// transport::EnergyPointOptions, like obc::ObcOptions does for the OBC
/// backends).
struct ScatteringOptions {
  ButtikerOptions buttiker;

  friend bool operator==(const ScatteringOptions& a,
                         const ScatteringOptions& b) noexcept {
    return a.buttiker == b.buttiker;
  }
};

/// A model selection: which algorithm, with which options.  The default
/// (kNone) is the exact ballistic pipeline.
struct Spec {
  ScatteringAlgorithm algorithm = ScatteringAlgorithm::kNone;
  ScatteringOptions options;

  friend bool operator==(const Spec& a, const Spec& b) noexcept {
    return a.algorithm == b.algorithm && a.options == b.options;
  }
  friend bool operator!=(const Spec& a, const Spec& b) noexcept {
    return !(a == b);
  }
};

/// One probe terminal a model attaches: device block + dephasing strength.
struct ProbeSite {
  idx block = 0;
  double eta = 0.0;
};

/// Scattering model interface.  Implementations are stateless beyond the
/// options they are handed per call.
class SelfEnergy {
 public:
  virtual ~SelfEnergy() = default;

  virtual const char* name() const noexcept = 0;
  virtual unsigned capabilities() const noexcept = 0;

  /// Probe sites this model attaches to an nb-block device whose blocks in
  /// `occupied` already carry contacts.  An empty list means the model
  /// contributes nothing at these options — the caller then runs the
  /// unmodified ballistic pipeline (exact parity by construction).
  virtual std::vector<ProbeSite> probes(
      idx nb, const std::vector<idx>& occupied,
      const ScatteringOptions& options) const = 0;

  /// Component mixed into obc::BoundaryKey::scattering for models that
  /// modify the contact boundaries themselves (kModifiesBoundaries).  The
  /// built-ins return 0: probe self-energies live on interior blocks and
  /// never change a cached lead Boundary — which is what keeps the
  /// ballistic cache keys (and hit rates) bit-identical.
  virtual std::uint64_t boundary_key_component(
      const ScatteringOptions& options) const;
};

using SelfEnergyFactory = std::function<std::unique_ptr<SelfEnergy>()>;

/// Register a model under `name` (replaces an existing registration).  The
/// built-ins ("none", "buttiker_probe") self-register on first registry use.
void register_scattering_model(const std::string& name,
                               SelfEnergyFactory factory);

/// Names of all registered scattering models, sorted.
std::vector<std::string> registered_scattering_models();

/// Instantiate a model by name; throws std::invalid_argument for unknown
/// names.
std::unique_ptr<SelfEnergy> make_scattering_model(const std::string& name);

/// Instantiate a model by algorithm enum.
std::unique_ptr<SelfEnergy> make_scattering_model(ScatteringAlgorithm algo);

/// Registry name of an algorithm.
const char* scattering_algorithm_name(ScatteringAlgorithm algo) noexcept;

/// Capability bits of an algorithm (without instantiating it by hand).
unsigned scattering_algorithm_capabilities(ScatteringAlgorithm algo);

/// Probe sites of a Spec against an nb-block device (empty for kNone, and
/// for any model whose options disable it — e.g. buttiker_probe at
/// eta <= 0).  This is the provider-assembly hook solve_energy_point calls.
std::vector<ProbeSite> assemble_probes(const Spec& spec, idx nb,
                                       const std::vector<idx>& occupied);

/// The Spec's obc::BoundaryKey::scattering component (0 unless the model
/// advertises kModifiesBoundaries).
std::uint64_t boundary_key_component(const Spec& spec);

/// Options of the inner probe-tuning loop.
struct ProbeTuneOptions {
  int max_iter = 60;
  /// Convergence on max_p |I_p| / max(1, max_q |I_q|) — the same relative
  /// leak the BENCH_scattering.json gate measures (<= 1e-10 required).
  double tol = 1e-13;
};

struct ProbeTuneResult {
  /// Chemical potentials of *all* terminals: real-terminal entries returned
  /// unchanged, probe entries tuned to zero net probe current.
  std::vector<double> mu;
  int iterations = 0;        ///< Newton iterations performed
  double max_residual = 0.0; ///< final relative probe-current leak
  bool converged = false;
};

/// Tune the probe chemical potentials to zero net probe current:
///   I_p(mu) = integral sum_q [T_pq(E) f(E, mu_p) - T_qp(E) f(E, mu_q)] dE = 0
/// for every p with is_probe[p], holding the real terminals' mu fixed.
/// Damped Newton on the probe subsystem with the analytic Jacobian
///   dI_p/dmu_p = integral (sum_q T_pq) f_p(1 - f_p)/kT,
///   dI_p/dmu_q = -integral T_qp f_q(1 - f_q)/kT   (q a probe),
/// falling back to secant-style step halving when a full step does not
/// reduce the residual.  The Jacobian is strictly diagonally dominant for
/// any connected T, so convergence is quadratic near the root.
/// `t_matrix[i]` is the row-major nc x nc pairwise transmission at
/// energies[i] (transport::EnergyPointResult::t_matrix layout); `mu` holds
/// the initial guess (probe entries included).  Throws std::invalid_argument
/// for kt <= 0 (the Fermi step has no usable derivative) and for shape
/// mismatches.  With no probe flagged, returns `mu` unchanged, converged.
ProbeTuneResult tune_probe_potentials(const std::vector<double>& energies,
                                      const std::vector<std::vector<double>>& t_matrix,
                                      std::vector<double> mu,
                                      const std::vector<bool>& is_probe,
                                      double kt,
                                      const ProbeTuneOptions& options = {});

/// Linear-response probe elimination: the effective transmission between
/// the kept (non-probe) terminals after integrating out the probes at their
/// zero-current condition,
///   T_eff_ab = T_ab + T_aP (W_PP)^{-1} T_Pb,
/// where W_PP = diag(sum_r T_pr) - T_pq over the probe subset.  Probes only
/// ever *redistribute* current, so T_eff_ab >= T_ab pairwise coherent part —
/// and the two-terminal conductance sum_b T_eff_ab degrades monotonically
/// with eta (the BENCH_scattering.json monotonicity gate).  One nc x nc
/// row-major matrix in, one nk x nk (nk = kept count) out, per energy.
std::vector<double> eliminate_probes(const std::vector<double>& t_matrix,
                                     const std::vector<bool>& is_probe);

}  // namespace omenx::scattering
