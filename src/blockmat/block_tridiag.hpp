// Block-tridiagonal matrix container with uniform block size.
//
// This is the shape of T = (E*S - H - Sigma^RB) in Fig. 4 of the paper:
// nb diagonal blocks of size s, plus upper/lower coupling blocks.  Every
// transport solver (sparse direct, BCR, RGF, SplitSolve) consumes this type.
#pragma once

#include <vector>

#include "numeric/blas.hpp"
#include "numeric/matrix.hpp"

namespace omenx::blockmat {

using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

class BlockTridiag {
 public:
  BlockTridiag() = default;

  /// nb blocks of size s x s, all zero.
  BlockTridiag(idx nb, idx s);

  idx num_blocks() const noexcept { return nb_; }
  idx block_size() const noexcept { return s_; }
  idx dim() const noexcept { return nb_ * s_; }

  /// Diagonal block i (0-based).
  CMatrix& diag(idx i) { return diag_.at(static_cast<std::size_t>(i)); }
  const CMatrix& diag(idx i) const {
    return diag_.at(static_cast<std::size_t>(i));
  }

  /// Coupling block (i, i+1).
  CMatrix& upper(idx i) { return upper_.at(static_cast<std::size_t>(i)); }
  const CMatrix& upper(idx i) const {
    return upper_.at(static_cast<std::size_t>(i));
  }

  /// Coupling block (i+1, i).
  CMatrix& lower(idx i) { return lower_.at(static_cast<std::size_t>(i)); }
  const CMatrix& lower(idx i) const {
    return lower_.at(static_cast<std::size_t>(i));
  }

  /// Dense expansion (tests and small baselines only).
  CMatrix to_dense() const;

  /// y = A * x for a dense multi-column x of matching dimension.
  CMatrix multiply(const CMatrix& x) const;

  /// Non-zeros with |a_ij| > threshold, over all stored blocks.
  idx nnz(double threshold = 0.0) const;

  /// True if the full matrix is Hermitian (diag blocks Hermitian and
  /// lower(i) == upper(i)^dagger within tol).
  bool is_hermitian(double tol = 1e-10) const;

  /// this = alpha*this + beta*other (same structure required).
  void axpy(cplx alpha, const BlockTridiag& other, cplx beta);

  /// Returns E*S - H as a new block tridiagonal matrix.
  static BlockTridiag es_minus_h(cplx e, const BlockTridiag& s,
                                 const BlockTridiag& h);

  /// Rebuild this matrix as E*S - H in place.  Existing block storage is
  /// reused whenever the structure matches, so the per-energy-point
  /// assembly of T = E*S - H is allocation-free in steady state.
  void assign_es_minus_h(cplx e, const BlockTridiag& s, const BlockTridiag& h);

 private:
  idx nb_ = 0;
  idx s_ = 0;
  std::vector<CMatrix> diag_;
  std::vector<CMatrix> upper_;
  std::vector<CMatrix> lower_;
};

/// Count entries of a dense matrix with magnitude > threshold (sparsity
/// statistics for Fig. 3).
idx count_nnz(const CMatrix& m, double threshold);

}  // namespace omenx::blockmat
