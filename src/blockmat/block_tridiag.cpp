#include "blockmat/block_tridiag.hpp"

#include <stdexcept>

namespace omenx::blockmat {

BlockTridiag::BlockTridiag(idx nb, idx s) : nb_(nb), s_(s) {
  if (nb <= 0 || s <= 0)
    throw std::invalid_argument("BlockTridiag: nb and s must be positive");
  diag_.assign(static_cast<std::size_t>(nb), CMatrix(s, s));
  if (nb > 1) {
    upper_.assign(static_cast<std::size_t>(nb - 1), CMatrix(s, s));
    lower_.assign(static_cast<std::size_t>(nb - 1), CMatrix(s, s));
  }
}

CMatrix BlockTridiag::to_dense() const {
  CMatrix out(dim(), dim());
  for (idx i = 0; i < nb_; ++i) {
    out.set_block(i * s_, i * s_, diag(i));
    if (i + 1 < nb_) {
      out.set_block(i * s_, (i + 1) * s_, upper(i));
      out.set_block((i + 1) * s_, i * s_, lower(i));
    }
  }
  return out;
}

CMatrix BlockTridiag::multiply(const CMatrix& x) const {
  if (x.rows() != dim())
    throw std::invalid_argument("BlockTridiag::multiply: dimension mismatch");
  const idx m = x.cols();
  CMatrix y(dim(), m);
  // Strided GEMM views on the stacked operand: no block copies.
  for (idx i = 0; i < nb_; ++i) {
    numeric::gemm_view('N', diag(i).data(), s_, 'N', x.row_ptr(i * s_), m, s_,
                       m, s_, cplx{1.0}, cplx{0.0}, y.row_ptr(i * s_), m);
    if (i > 0)
      numeric::gemm_view('N', lower(i - 1).data(), s_, 'N',
                         x.row_ptr((i - 1) * s_), m, s_, m, s_, cplx{1.0},
                         cplx{1.0}, y.row_ptr(i * s_), m);
    if (i + 1 < nb_)
      numeric::gemm_view('N', upper(i).data(), s_, 'N',
                         x.row_ptr((i + 1) * s_), m, s_, m, s_, cplx{1.0},
                         cplx{1.0}, y.row_ptr(i * s_), m);
  }
  return y;
}

idx BlockTridiag::nnz(double threshold) const {
  idx total = 0;
  for (const auto& b : diag_) total += count_nnz(b, threshold);
  for (const auto& b : upper_) total += count_nnz(b, threshold);
  for (const auto& b : lower_) total += count_nnz(b, threshold);
  return total;
}

bool BlockTridiag::is_hermitian(double tol) const {
  for (const auto& b : diag_)
    if (!numeric::is_hermitian(b, tol)) return false;
  for (idx i = 0; i + 1 < nb_; ++i)
    if (numeric::max_abs_diff(lower(i), numeric::dagger(upper(i))) >
        tol * std::max(1.0, numeric::max_abs(upper(i))))
      return false;
  return true;
}

void BlockTridiag::axpy(cplx alpha, const BlockTridiag& other, cplx beta) {
  if (other.nb_ != nb_ || other.s_ != s_)
    throw std::invalid_argument("BlockTridiag::axpy: structure mismatch");
  auto combine = [&](CMatrix& mine, const CMatrix& theirs) {
    for (idx i = 0; i < mine.size(); ++i)
      mine.data()[i] = alpha * mine.data()[i] + beta * theirs.data()[i];
  };
  for (idx i = 0; i < nb_; ++i) combine(diag_[static_cast<std::size_t>(i)],
                                        other.diag_[static_cast<std::size_t>(i)]);
  for (idx i = 0; i + 1 < nb_; ++i) {
    combine(upper_[static_cast<std::size_t>(i)],
            other.upper_[static_cast<std::size_t>(i)]);
    combine(lower_[static_cast<std::size_t>(i)],
            other.lower_[static_cast<std::size_t>(i)]);
  }
}

BlockTridiag BlockTridiag::es_minus_h(cplx e, const BlockTridiag& s,
                                      const BlockTridiag& h) {
  BlockTridiag out;
  out.assign_es_minus_h(e, s, h);
  return out;
}

void BlockTridiag::assign_es_minus_h(cplx e, const BlockTridiag& s,
                                     const BlockTridiag& h) {
  if (s.nb_ != h.nb_ || s.s_ != h.s_)
    throw std::invalid_argument("es_minus_h: structure mismatch");
  nb_ = s.nb_;
  s_ = s.s_;
  const auto write = [e](std::vector<CMatrix>& dst,
                         const std::vector<CMatrix>& sv,
                         const std::vector<CMatrix>& hv) {
    dst.resize(sv.size());
    for (std::size_t b = 0; b < sv.size(); ++b) {
      CMatrix& d = dst[b];
      const CMatrix& sb = sv[b];
      const CMatrix& hb = hv[b];
      d.resize_uninit(sb.rows(), sb.cols());
      const cplx* sp = sb.data();
      const cplx* hp = hb.data();
      cplx* dp = d.data();
      for (idx i = 0; i < sb.size(); ++i) dp[i] = e * sp[i] - hp[i];
    }
  };
  write(diag_, s.diag_, h.diag_);
  write(upper_, s.upper_, h.upper_);
  write(lower_, s.lower_, h.lower_);
}

idx count_nnz(const CMatrix& m, double threshold) {
  idx count = 0;
  for (idx i = 0; i < m.size(); ++i)
    if (std::abs(m.data()[i]) > threshold) ++count;
  return count;
}

}  // namespace omenx::blockmat
