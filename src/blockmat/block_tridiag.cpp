#include "blockmat/block_tridiag.hpp"

#include <stdexcept>

namespace omenx::blockmat {

BlockTridiag::BlockTridiag(idx nb, idx s) : nb_(nb), s_(s) {
  if (nb <= 0 || s <= 0)
    throw std::invalid_argument("BlockTridiag: nb and s must be positive");
  diag_.assign(static_cast<std::size_t>(nb), CMatrix(s, s));
  if (nb > 1) {
    upper_.assign(static_cast<std::size_t>(nb - 1), CMatrix(s, s));
    lower_.assign(static_cast<std::size_t>(nb - 1), CMatrix(s, s));
  }
}

CMatrix BlockTridiag::to_dense() const {
  CMatrix out(dim(), dim());
  for (idx i = 0; i < nb_; ++i) {
    out.set_block(i * s_, i * s_, diag(i));
    if (i + 1 < nb_) {
      out.set_block(i * s_, (i + 1) * s_, upper(i));
      out.set_block((i + 1) * s_, i * s_, lower(i));
    }
  }
  return out;
}

CMatrix BlockTridiag::multiply(const CMatrix& x) const {
  if (x.rows() != dim())
    throw std::invalid_argument("BlockTridiag::multiply: dimension mismatch");
  CMatrix y(dim(), x.cols());
  for (idx i = 0; i < nb_; ++i) {
    CMatrix xi = x.block(i * s_, 0, s_, x.cols());
    CMatrix yi = numeric::matmul(diag(i), xi);
    if (i > 0) {
      CMatrix xm = x.block((i - 1) * s_, 0, s_, x.cols());
      CMatrix t;
      numeric::gemm(lower(i - 1), xm, t);
      yi += t;
    }
    if (i + 1 < nb_) {
      CMatrix xp = x.block((i + 1) * s_, 0, s_, x.cols());
      CMatrix t;
      numeric::gemm(upper(i), xp, t);
      yi += t;
    }
    y.set_block(i * s_, 0, yi);
  }
  return y;
}

idx BlockTridiag::nnz(double threshold) const {
  idx total = 0;
  for (const auto& b : diag_) total += count_nnz(b, threshold);
  for (const auto& b : upper_) total += count_nnz(b, threshold);
  for (const auto& b : lower_) total += count_nnz(b, threshold);
  return total;
}

bool BlockTridiag::is_hermitian(double tol) const {
  for (const auto& b : diag_)
    if (!numeric::is_hermitian(b, tol)) return false;
  for (idx i = 0; i + 1 < nb_; ++i)
    if (numeric::max_abs_diff(lower(i), numeric::dagger(upper(i))) >
        tol * std::max(1.0, numeric::max_abs(upper(i))))
      return false;
  return true;
}

void BlockTridiag::axpy(cplx alpha, const BlockTridiag& other, cplx beta) {
  if (other.nb_ != nb_ || other.s_ != s_)
    throw std::invalid_argument("BlockTridiag::axpy: structure mismatch");
  auto combine = [&](CMatrix& mine, const CMatrix& theirs) {
    for (idx i = 0; i < mine.size(); ++i)
      mine.data()[i] = alpha * mine.data()[i] + beta * theirs.data()[i];
  };
  for (idx i = 0; i < nb_; ++i) combine(diag_[static_cast<std::size_t>(i)],
                                        other.diag_[static_cast<std::size_t>(i)]);
  for (idx i = 0; i + 1 < nb_; ++i) {
    combine(upper_[static_cast<std::size_t>(i)],
            other.upper_[static_cast<std::size_t>(i)]);
    combine(lower_[static_cast<std::size_t>(i)],
            other.lower_[static_cast<std::size_t>(i)]);
  }
}

BlockTridiag BlockTridiag::es_minus_h(cplx e, const BlockTridiag& s,
                                      const BlockTridiag& h) {
  if (s.nb_ != h.nb_ || s.s_ != h.s_)
    throw std::invalid_argument("es_minus_h: structure mismatch");
  BlockTridiag out = s;
  out.axpy(e, h, cplx{-1.0});
  return out;
}

idx count_nnz(const CMatrix& m, double threshold) {
  idx count = 0;
  for (idx i = 0; i < m.size(); ++i)
    if (std::abs(m.data()[i]) > threshold) ++count;
  return count;
}

}  // namespace omenx::blockmat
