#include "blockmat/csr.hpp"

#include <cmath>
#include <stdexcept>

namespace omenx::blockmat {

CsrMatrix to_csr(const BlockTridiag& a, double drop_tol) {
  const idx nb = a.num_blocks();
  const idx s = a.block_size();
  CsrMatrix out;
  out.rows = a.dim();
  out.cols = a.dim();
  out.row_ptr.reserve(static_cast<std::size_t>(out.rows + 1));
  out.row_ptr.push_back(0);
  for (idx bi = 0; bi < nb; ++bi) {
    for (idx r = 0; r < s; ++r) {
      // Scan the (up to three) blocks in this block row, left to right.
      for (idx bj = std::max<idx>(0, bi - 1); bj <= std::min(nb - 1, bi + 1);
           ++bj) {
        const CMatrix* blk = nullptr;
        if (bj == bi) {
          blk = &a.diag(bi);
        } else if (bj == bi + 1) {
          blk = &a.upper(bi);
        } else {
          blk = &a.lower(bj);
        }
        for (idx c = 0; c < s; ++c) {
          const cplx v = (*blk)(r, c);
          if (std::abs(v) > drop_tol) {
            out.col_idx.push_back(bj * s + c);
            out.values.push_back(v);
          }
        }
      }
      out.row_ptr.push_back(static_cast<idx>(out.values.size()));
    }
  }
  return out;
}

std::vector<cplx> csr_matvec(const CsrMatrix& a, const std::vector<cplx>& x) {
  if (static_cast<idx>(x.size()) != a.cols)
    throw std::invalid_argument("csr_matvec: dimension mismatch");
  std::vector<cplx> y(static_cast<std::size_t>(a.rows), cplx{0.0});
  for (idx r = 0; r < a.rows; ++r) {
    cplx acc{0.0};
    for (idx k = a.row_ptr[static_cast<std::size_t>(r)];
         k < a.row_ptr[static_cast<std::size_t>(r + 1)]; ++k)
      acc += a.values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)])];
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

}  // namespace omenx::blockmat
