// Compressed-sparse-row export of block matrices.
//
// External sparse direct solvers (MUMPS/SuperLU in the paper) consume CSR;
// this is the exchange format a downstream user would feed them, plus a
// reference SpMV for validation.
#pragma once

#include <vector>

#include "blockmat/block_tridiag.hpp"

namespace omenx::blockmat {

struct CsrMatrix {
  idx rows = 0;
  idx cols = 0;
  std::vector<idx> row_ptr;   ///< size rows+1
  std::vector<idx> col_idx;   ///< size nnz
  std::vector<cplx> values;   ///< size nnz

  idx nnz() const { return static_cast<idx>(values.size()); }
};

/// Convert a block tridiagonal matrix to CSR, dropping entries with
/// magnitude <= drop_tol.
CsrMatrix to_csr(const BlockTridiag& a, double drop_tol = 0.0);

/// y = A x (reference sparse mat-vec).
std::vector<cplx> csr_matvec(const CsrMatrix& a, const std::vector<cplx>& x);

}  // namespace omenx::blockmat
