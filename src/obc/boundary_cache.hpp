// Cross-sweep cache of boundary conditions, keyed by (k-index, energy,
// contact-shift).
//
// The lead Hamiltonian never depends on the device potential, so every SCF
// outer iteration, transfer-characteristic bias point, and adaptive-grid
// re-sweep that revisits a (k, E) pair re-solves an *identical* lead
// eigenproblem.  The cache stores the full Boundary (self-energies,
// injection columns, mode basis) of the first evaluation and hands the same
// object back on every revisit — bit-identical by construction, since a hit
// reuses the stored matrices rather than recomputing anything.
//
// Keys compare doubles exactly on purpose: a near-miss energy is a
// different physical point and must be recomputed, and exact keys are what
// makes cached and uncached runs agree to the last bit.  Entries become
// stale only when the lead electrostatics change (the contact shift is part
// of the key, but drivers should still invalidate() on a shift change to
// drop the unreachable entries).
//
// Thread-safe: the distribution engine shares one cache among a rank's pool
// workers (flat path), and invalidate() may race with lookups — entries are
// handed out as shared_ptr so a concurrent invalidation can never pull a
// Boundary out from under a reader.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "numeric/types.hpp"
#include "obc/self_energy.hpp"

namespace omenx::obc {

using numeric::idx;

/// Cache key of one boundary evaluation.  Doubles compare exactly (see
/// file header).  `algorithm` is the ObcAlgorithm enum value (stored as an
/// int to keep this header strategy-free): two backends at the same (k, E,
/// shift) produce different Boundaries (e.g. truncated vs full spectra)
/// and must never alias.  Backend *options* are not part of the key —
/// holders of a persistent cache invalidate() when they change (the
/// engine compares each run's ObcOptions against the previous run's).
struct BoundaryKey {
  idx k = 0;              ///< global momentum index of the sweep
  double energy = 0.0;    ///< Re(E) (eV) the point was requested at
  double contact_shift = 0.0;  ///< uniform lead potential shift (eV)
  int algorithm = 0;      ///< static_cast<int>(ObcAlgorithm)
  /// Im(E) (eV) — non-zero for the complex-contour charge quadrature, whose
  /// nodes sit well off the real axis and are revisited identically on every
  /// SCF iteration (the fixed contour is what makes their hit rate approach
  /// 100% after the first pass).  Kept last so the pre-existing four-field
  /// aggregate initializers keep meaning what they always did (real axis).
  double energy_imag = 0.0;
  /// Canonical contact id (ContactSet::representative) the boundary belongs
  /// to.  Identical contacts share one id — the symmetric pair caches under
  /// the left contact's id 0, exactly the pre-refactor key population —
  /// while dissimilar leads and per-contact shifts get disjoint key ranges
  /// that invalidate_contact() can drop independently.
  int contact = 0;
  /// FNV-1a content hash of the contact's lead (lead_content_hash); 0 =
  /// untracked (direct callers without an engine fingerprint).  Makes a
  /// swapped lead material a guaranteed miss even under a reused contact id.
  std::uint64_t lead_hash = 0;
  /// Scattering-model component (scattering::boundary_key_component): 0 for
  /// the ballistic pipeline and for every model that leaves the contact
  /// boundaries untouched (Büttiker probes live on interior blocks).  Only
  /// models advertising kModifiesBoundaries populate it, so existing callers'
  /// keys — ordering, values, hit rates — are bit-identical to pre-refactor.
  std::uint64_t scattering = 0;

  friend bool operator<(const BoundaryKey& a, const BoundaryKey& b) noexcept {
    if (a.contact != b.contact) return a.contact < b.contact;
    if (a.k != b.k) return a.k < b.k;
    if (a.energy != b.energy) return a.energy < b.energy;
    if (a.energy_imag != b.energy_imag) return a.energy_imag < b.energy_imag;
    if (a.contact_shift != b.contact_shift)
      return a.contact_shift < b.contact_shift;
    if (a.lead_hash != b.lead_hash) return a.lead_hash < b.lead_hash;
    if (a.scattering != b.scattering) return a.scattering < b.scattering;
    return a.algorithm < b.algorithm;
  }
};

class BoundaryCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t invalidations = 0;
  };

  /// `max_entries` bounds the footprint: inserting at the cap evicts the
  /// oldest insertion (FIFO).  Holders should reserve() at least one full
  /// sweep's worth of keys — a cap below the sweep size churns the whole
  /// cache every pass and forfeits cross-iteration reuse (the engine
  /// reserves 2x its task count per run).
  explicit BoundaryCache(std::size_t max_entries = 4096);

  /// The cached boundary for `key`, or nullptr (counts a hit or a miss).
  std::shared_ptr<const Boundary> find(const BoundaryKey& key);

  /// Store `bnd` under `key` and return the stored entry.  If another
  /// thread (or an earlier sweep) already populated the key, the existing
  /// entry wins and is returned — first evaluation is canonical.
  std::shared_ptr<const Boundary> insert(const BoundaryKey& key, Boundary bnd);

  /// Drop every entry (the lead potential shift — or the lead itself —
  /// changed).  Outstanding shared_ptr handles stay valid.
  void invalidate();

  /// Drop only the entries cached under canonical contact id `contact` —
  /// with dissimilar contacts, a shift or lead change on one terminal must
  /// not cost the other terminals their cached eigenproblems.  Counts one
  /// invalidation against that contact's stats (and the totals).
  void invalidate_contact(int contact);

  /// Raise the eviction cap to at least `min_entries` (never lowers it).
  void reserve(std::size_t min_entries);

  std::size_t size() const;
  std::size_t max_entries() const;
  Stats stats() const;

  /// Hit/miss/insertion/invalidation counters of one canonical contact id
  /// (zeros if the id was never seen).
  Stats contact_stats(int contact) const;

  /// Sorted canonical contact ids with recorded activity.
  std::vector<int> contacts_seen() const;

 private:
  mutable std::mutex mutex_;
  std::size_t max_entries_;
  std::map<BoundaryKey, std::shared_ptr<const Boundary>> entries_;
  std::deque<BoundaryKey> order_;  ///< insertion order, oldest first
  Stats stats_;
  std::map<int, Stats> contact_stats_;  ///< per canonical contact id
};

}  // namespace omenx::obc
