// Companion linearization of the lead polynomial eigenvalue problem (Eq. 6).
//
// The open boundary conditions require the phase factors lambda = e^{i k_B}
// and eigenmodes u_B solving
//     sum_{l=-NBW}^{NBW} lambda^l (H_{q,q+l} - E S_{q,q+l}) u = 0.
// Multiplying by lambda^{NBW} gives a polynomial of degree d = 2*NBW with
// matrix coefficients C_j = Htilde_{j-NBW}, linearized into the pencil
// (A_F, B_F) of Eqs. (8)-(9) with size N_BC = d*s:
//     A_F = [[0 I 0 ...], ..., [-C_0 -C_1 ... -C_{d-1}]],
//     B_F = diag(I, ..., I, C_d).
// Eigenvectors carry the Krylov structure [u; lambda*u; ...; lambda^{d-1}u],
// which directly yields the *folded-supercell* modes used by the transport
// self-energies (lambda_f = lambda^{NBW}).
//
// The linear systems (z B_F - A_F) X = R reduce analytically to one s x s
// solve with the evaluated polynomial P(z) = sum_j C_j z^j — the size
// reduction to N_BC/(2 NBW) exploited by the paper's FEAST implementation.
#pragma once

#include <vector>

#include "dft/hamiltonian.hpp"
#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"

namespace omenx::obc {

using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

class CompanionPencil {
 public:
  /// Build the pencil for lead blocks at energy `e` (eV).
  CompanionPencil(const dft::LeadBlocks& lead, cplx e);

  idx block_size() const noexcept { return s_; }
  idx degree() const noexcept { return degree_; }
  idx dim() const noexcept { return s_ * degree_; }

  /// Dense A_F and B_F (baseline shift-and-invert path and tests).
  CMatrix a_dense() const;
  CMatrix b_dense() const;

  /// Matrix polynomial P(z) = sum_{j=0}^{d} C_j z^j (size s x s).
  CMatrix polynomial(cplx z) const;

  /// Solve (z B_F - A_F) X = B_F Y for X using the analytical reduction:
  /// one LU of P(z) instead of an N_BC-sized factorization.
  /// Y must have dim() rows.
  CMatrix solve_shifted(cplx z, const CMatrix& y) const;

  /// Coefficient C_j (j = 0..degree).
  const CMatrix& coeff(idx j) const {
    return coeffs_.at(static_cast<std::size_t>(j));
  }

 private:
  idx s_ = 0;
  idx degree_ = 0;                ///< d = 2*NBW
  std::vector<CMatrix> coeffs_;   ///< C_0..C_d
};

}  // namespace omenx::obc
