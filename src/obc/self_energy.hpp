// Boundary self-energies Sigma^RB and injection vectors Inj from lead
// eigenmodes — the quantities FEAST (or shift-and-invert) feeds into
// SplitSolve (Fig. 4 / Fig. 6 "upon availability of the boundary
// conditions").
//
// With U the matrix of modes bounded in the lead and Lambda their phase
// factors, the Bloch propagator F = U Lambda^{-1} U^+ (left) closes the
// semi-infinite lead onto its surface cell:
//     g_L = (t0 + tc^H F_L)^{-1},    Sigma_L = tc^H g_L tc,
//     g_R = (t0 + tc  F_R)^{-1},     Sigma_R = tc  g_R tc^H.
// Incident (right-moving) propagating modes inject through the first block:
//     Inj_p = -(tc^H u_p + lambda_p Sigma_L u_p).
#pragma once

#include "numeric/matrix.hpp"
#include "obc/modes.hpp"

namespace omenx::obc {

struct BoundaryOptions {
  /// Tikhonov ridge for the mode pseudo-inverse (U^H U + ridge I)^{-1} U^H.
  double pinv_ridge = 1e-12;

  // Memberwise — cached boundaries are invalidated on any change, so a new
  // field MUST be added here too.
  friend bool operator==(const BoundaryOptions& a,
                         const BoundaryOptions& b) noexcept {
    return a.pinv_ridge == b.pinv_ridge;
  }
};

/// Everything the Schroedinger solver needs to apply open boundaries at one
/// energy, plus the right-lead mode basis for transmission extraction.
struct Boundary {
  CMatrix sigma_l;  ///< sf x sf, acts on the first block
  CMatrix sigma_r;  ///< sf x sf, acts on the last block
  CMatrix inj;      ///< sf x n_inc injection columns (first block rows)

  std::vector<double> inj_velocity;  ///< |v| of each incident mode
  /// Bloch-normalized probability flux |2 Im(lambda u^H tc u)| of each
  /// incident mode.  The mode vectors are stored with unit 2-norm, not
  /// Bloch norm, so the flux carried by mode p is v_p * beta_p with
  /// beta_p = u^H S_v u (the Bloch norm group_velocity divides out) — in a
  /// non-orthogonal basis beta != 1 and dividing |psi|^2 by the bare |v|
  /// over-counts each channel by beta.  Normalizing by this flux instead
  /// makes the summed wave-function density equal the spectral function
  /// -2 Im G_ii exactly, which is what lets the complex-contour charge
  /// quadrature (charge::Quadrature) integrate the same physical density
  /// through the Green's-function route.
  std::vector<double> inj_flux;
  idx num_incident = 0;

  /// Drain-contact injection: left-moving propagating modes incident from
  /// the right lead, entering through the *last* block.  Mirror image of
  /// `inj`: Inj^R_p = -(tc u_p + lambda_p^{-1} Sigma_R u_p).  The ballistic
  /// two-contact charge (states occupied at mu_R) is built from these.
  CMatrix inj_r;                       ///< sf x n_inc_r (last block rows)
  std::vector<double> inj_r_velocity;  ///< |v| of each right-incident mode
  std::vector<double> inj_r_flux;      ///< Bloch-normalized flux, as above
  idx num_incident_right = 0;

  /// Right-bounded mode basis (columns), phases, velocities; propagating
  /// entries flagged for the transmission projection.  `right_flux` carries
  /// the Bloch-normalized flux of the propagating entries (0 for decaying
  /// ones), so transmission amplitudes are weighted by true flux ratios.
  CMatrix right_basis;
  std::vector<cplx> right_lambda;
  std::vector<double> right_velocity;
  std::vector<double> right_flux;
  std::vector<bool> right_propagating;
};

/// Build boundary data from classified lead modes.  Both contacts are the
/// same pristine material (as in the paper's FET structures), so one mode
/// set serves both sides.
Boundary build_boundary(const LeadModes& modes, const LeadOperators& ops,
                        const BoundaryOptions& options = {});

/// Moore-Penrose-style pseudo-inverse via the normal equations with a small
/// ridge: (U^H U + ridge I)^{-1} U^H.
CMatrix pseudo_inverse(const CMatrix& u, double ridge);

}  // namespace omenx::obc
