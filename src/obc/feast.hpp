// FEAST contour-integration eigensolver for the lead pencil (Eq. 10, Fig. 5).
//
// Only the m eigenvalues inside the annulus 1/R <= |lambda| <= R matter for
// transport (propagating and slowly decaying modes); the contour is the
// annulus boundary: the outer circle traversed counter-clockwise plus the
// inner circle clockwise.  Each trapezoid integration point costs one s x s
// solve thanks to the companion reduction (CompanionPencil::solve_shifted);
// the points are independent and run in parallel on the host threads — in
// the paper this is the CPU-side work overlapped with SplitSolve on GPUs.
#pragma once

#include "dft/hamiltonian.hpp"
#include "obc/modes.hpp"

namespace omenx::obc {

struct FeastOptions {
  double annulus_r = 20.0;   ///< keep modes with 1/R <= |lambda| <= R
  idx num_points = 16;       ///< trapezoid points per circle
  idx subspace = 0;          ///< probing columns; 0 = auto (expand as needed)
  idx max_refinement = 4;    ///< subspace iteration count
  double residual_tol = 1e-8;
  double prop_tol = 1e-6;
  unsigned seed = 12345;     ///< probing matrix seed (deterministic)
  bool parallel_points = true;

  // Memberwise — cached boundaries are invalidated on any change, so a new
  // field MUST be added here too.
  friend bool operator==(const FeastOptions& a,
                         const FeastOptions& b) noexcept {
    return a.annulus_r == b.annulus_r && a.num_points == b.num_points &&
           a.subspace == b.subspace && a.max_refinement == b.max_refinement &&
           a.residual_tol == b.residual_tol && a.prop_tol == b.prop_tol &&
           a.seed == b.seed && a.parallel_points == b.parallel_points;
  }
};

struct FeastStats {
  idx modes_found = 0;
  idx subspace_used = 0;
  idx iterations = 0;
  double max_residual = 0.0;
};

/// Lead modes inside the annulus at energy `e`.  `stats` (optional) reports
/// convergence diagnostics.
LeadModes compute_modes_feast(const dft::LeadBlocks& lead, cplx e,
                              const FeastOptions& options = {},
                              FeastStats* stats = nullptr);

}  // namespace omenx::obc
