// Sancho-Rubio decimation: the "standard iterative technique" of Ref. [40]
// the paper contrasts with the eigenmode-based OBC algorithms.
//
// Computes the surface Green's function of a semi-infinite lead by doubling
// the effective cell length per iteration; convergence is geometric once a
// small imaginary part is added to the energy.
#pragma once

#include "numeric/matrix.hpp"
#include "obc/modes.hpp"

namespace omenx::obc {

struct DecimationOptions {
  /// Imaginary energy broadening (eV).  THE single default: 1e-7 — small
  /// enough that decimation and the eigenvalue OBCs agree to the parity
  /// tolerances, large enough that the Sancho-Rubio iteration converges in
  /// a handful of doublings.  (Historically this header said 1e-6 while
  /// ObcOptions overrode it to 1e-7; the override is gone and this value
  /// is authoritative.)  On the real axis eta must be > 0 — the surface
  /// Green's function has poles there — and DecimationStrategy rejects
  /// eta <= 0 with std::invalid_argument; off-axis (contour) energies
  /// carry their own Im(E) and tolerate eta = 0.
  double eta = 1e-7;
  idx max_iter = 200;
  double tol = 1e-12;    ///< convergence on the coupling norm

  // Memberwise — cached boundaries are invalidated on any change, so a new
  // field MUST be added here too.
  friend bool operator==(const DecimationOptions& a,
                         const DecimationOptions& b) noexcept {
    return a.eta == b.eta && a.max_iter == b.max_iter && a.tol == b.tol;
  }
};

/// Surface Green's function of the left (q -> -inf) lead:
/// g = (t0 - tc^H g tc)^{-1} evaluated at E + i*eta.
CMatrix surface_gf_left(const LeadOperators& ops, const DecimationOptions& o = {});

/// Surface Green's function of the right (q -> +inf) lead:
/// g = (t0 - tc g tc^H)^{-1}.
CMatrix surface_gf_right(const LeadOperators& ops, const DecimationOptions& o = {});

/// Boundary self-energies from decimation:
/// Sigma_L = tc^H g_L tc, Sigma_R = tc g_R tc^H.
CMatrix sigma_left_decimation(const LeadOperators& ops,
                              const DecimationOptions& o = {});
CMatrix sigma_right_decimation(const LeadOperators& ops,
                               const DecimationOptions& o = {});

}  // namespace omenx::obc
