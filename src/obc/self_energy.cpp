#include "obc/self_energy.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/blas.hpp"
#include "numeric/lu.hpp"

namespace omenx::obc {

CMatrix pseudo_inverse(const CMatrix& u, double ridge) {
  const idx m = u.cols();
  CMatrix gram = numeric::matmul(u, u, 'C', 'N');
  for (idx i = 0; i < m; ++i) gram(i, i) += cplx{ridge};
  return numeric::LUFactor(gram).solve(numeric::dagger(u));
}

namespace {

// Gather the columns of `modes.vectors` whose kind passes `want`.
struct Selection {
  CMatrix u;
  std::vector<cplx> lambda;
  std::vector<double> velocity;
  std::vector<ModeKind> kind;
};

template <typename Pred>
Selection select_modes(const LeadModes& modes, Pred want) {
  Selection out;
  std::vector<idx> cols;
  for (idx c = 0; c < static_cast<idx>(modes.lambda.size()); ++c) {
    if (want(modes.kind[static_cast<std::size_t>(c)])) cols.push_back(c);
  }
  out.u = CMatrix(modes.vectors.rows(), static_cast<idx>(cols.size()));
  for (idx j = 0; j < static_cast<idx>(cols.size()); ++j) {
    const idx c = cols[static_cast<std::size_t>(j)];
    for (idx i = 0; i < modes.vectors.rows(); ++i)
      out.u(i, j) = modes.vectors(i, c);
    out.lambda.push_back(modes.lambda[static_cast<std::size_t>(c)]);
    out.velocity.push_back(modes.velocity[static_cast<std::size_t>(c)]);
    out.kind.push_back(modes.kind[static_cast<std::size_t>(c)]);
  }
  return out;
}

// F = U diag(f(lambda)) U^+.
CMatrix bloch_propagator(const Selection& sel, bool inverse_lambda,
                         double ridge) {
  const idx sf = sel.u.rows();
  if (sel.u.cols() == 0) return CMatrix(sf, sf);
  CMatrix scaled = sel.u;
  for (idx j = 0; j < scaled.cols(); ++j) {
    const cplx lam = sel.lambda[static_cast<std::size_t>(j)];
    const cplx f = inverse_lambda ? cplx{1.0} / lam : lam;
    for (idx i = 0; i < sf; ++i) scaled(i, j) *= f;
  }
  return numeric::matmul(scaled, pseudo_inverse(sel.u, ridge));
}

// True probability flux of the unit-2-norm mode column j: |2 Im(lambda
// u^H tc u)|.  Equals |v_p| * beta_p with beta_p = u^H S_v u the Bloch norm
// that group_velocity divides out (modes.cpp), so dividing |psi|^2 by this
// flux — not by the bare |v_p| — is what makes the summed wave-function
// density match the spectral function -2 Im G_ii in a non-orthogonal basis.
double mode_flux(const CMatrix& u, idx j, const CMatrix& tc, cplx lam) {
  cplx acc{0.0};
  for (idx a = 0; a < u.rows(); ++a) {
    cplx row{0.0};
    for (idx b = 0; b < u.rows(); ++b) row += tc(a, b) * u(b, j);
    acc += std::conj(u(a, j)) * row;
  }
  return std::abs(2.0 * (lam * acc).imag());
}

}  // namespace

Boundary build_boundary(const LeadModes& modes, const LeadOperators& ops,
                        const BoundaryOptions& options) {
  const idx sf = modes.vectors.rows();
  if (ops.t0.rows() != sf)
    throw std::invalid_argument("build_boundary: operator/mode size mismatch");

  // Left-bounded set (reflected waves in the left contact): decaying-left
  // plus left-moving propagating modes.
  const Selection left = select_modes(modes, [](ModeKind k) {
    return k == ModeKind::kDecayingLeft || k == ModeKind::kPropagatingLeft;
  });
  // Right-bounded set (transmitted waves in the right contact).
  const Selection right = select_modes(modes, [](ModeKind k) {
    return k == ModeKind::kDecayingRight || k == ModeKind::kPropagatingRight;
  });
  // Incident modes: right-moving propagating.
  const Selection incident = select_modes(
      modes, [](ModeKind k) { return k == ModeKind::kPropagatingRight; });

  Boundary out;
  // The reverse coupling E*S01^H - H01^H — NOT dagger(tc), which would
  // conjugate a complex energy and destroy Sigma's analyticity in E.
  const CMatrix& tch = ops.tcd;

  // Sigma_L = tc^H (t0 + tc^H F_L)^{-1} tc with F_L = U_L Lambda^{-1} U_L^+.
  {
    const CMatrix f_l = bloch_propagator(left, /*inverse_lambda=*/true,
                                         options.pinv_ridge);
    CMatrix denom = ops.t0 + numeric::matmul(tch, f_l);
    const CMatrix g_l = numeric::inverse(denom);
    out.sigma_l = numeric::matmul(tch, numeric::matmul(g_l, ops.tc));
  }
  // Sigma_R = tc (t0 + tc F_R)^{-1} tc^H with F_R = U_R Lambda U_R^+.
  {
    const CMatrix f_r = bloch_propagator(right, /*inverse_lambda=*/false,
                                         options.pinv_ridge);
    CMatrix denom = ops.t0 + numeric::matmul(ops.tc, f_r);
    const CMatrix g_r = numeric::inverse(denom);
    out.sigma_r = numeric::matmul(ops.tc, numeric::matmul(g_r, tch));
  }

  // Injection: Inj_p = -(tc^H u_p + lambda_p Sigma_L u_p).
  out.num_incident = incident.u.cols();
  out.inj = CMatrix(sf, out.num_incident);
  out.inj_velocity.reserve(static_cast<std::size_t>(out.num_incident));
  if (out.num_incident > 0) {
    const CMatrix t1 = numeric::matmul(tch, incident.u);
    const CMatrix t2 = numeric::matmul(out.sigma_l, incident.u);
    for (idx j = 0; j < out.num_incident; ++j) {
      const cplx lam = incident.lambda[static_cast<std::size_t>(j)];
      for (idx i = 0; i < sf; ++i)
        out.inj(i, j) = -(t1(i, j) + lam * t2(i, j));
      out.inj_velocity.push_back(
          std::abs(incident.velocity[static_cast<std::size_t>(j)]));
      out.inj_flux.push_back(mode_flux(incident.u, j, ops.tc, lam));
    }
  }

  // Drain-side injection: incident-from-the-right modes are the left-moving
  // propagating ones.  Mirroring the device (q -> N-1-q) swaps tc <-> tc^H
  // and lambda <-> 1/lambda and maps Sigma_R onto the mirrored problem's
  // Sigma_L, so the left formula transcribes to
  //   Inj^R_p = -(tc u_p + lambda_p^{-1} Sigma_R u_p)
  // applied at the last block.
  const Selection incident_r = select_modes(
      modes, [](ModeKind k) { return k == ModeKind::kPropagatingLeft; });
  out.num_incident_right = incident_r.u.cols();
  out.inj_r = CMatrix(sf, out.num_incident_right);
  out.inj_r_velocity.reserve(static_cast<std::size_t>(out.num_incident_right));
  if (out.num_incident_right > 0) {
    const CMatrix t1 = numeric::matmul(ops.tc, incident_r.u);
    const CMatrix t2 = numeric::matmul(out.sigma_r, incident_r.u);
    for (idx j = 0; j < out.num_incident_right; ++j) {
      const cplx lam = incident_r.lambda[static_cast<std::size_t>(j)];
      for (idx i = 0; i < sf; ++i)
        out.inj_r(i, j) = -(t1(i, j) + t2(i, j) / lam);
      out.inj_r_velocity.push_back(
          std::abs(incident_r.velocity[static_cast<std::size_t>(j)]));
      out.inj_r_flux.push_back(mode_flux(incident_r.u, j, ops.tc, lam));
    }
  }

  // Right-lead projection basis for transmission amplitudes.
  out.right_basis = right.u;
  out.right_lambda = right.lambda;
  out.right_velocity = right.velocity;
  out.right_propagating.reserve(right.kind.size());
  out.right_flux.reserve(right.kind.size());
  for (idx j = 0; j < static_cast<idx>(right.kind.size()); ++j) {
    const bool prop =
        right.kind[static_cast<std::size_t>(j)] == ModeKind::kPropagatingRight;
    out.right_propagating.push_back(prop);
    out.right_flux.push_back(
        prop ? mode_flux(right.u, j, ops.tc,
                         right.lambda[static_cast<std::size_t>(j)])
             : 0.0);
  }
  return out;
}

}  // namespace omenx::obc
