// Shift-and-invert baseline for the lead eigenvalue problem (Ref. [38]).
//
// The full companion pencil is transformed with one spectral shift near the
// unit circle and solved densely.  This is the method the paper replaces
// with FEAST: robust but O(N_BC^3) and hard to parallelize, so it becomes
// the bottleneck in a DFT basis (Fig. 8's first bar).
#pragma once

#include "dft/hamiltonian.hpp"
#include "obc/modes.hpp"

namespace omenx::obc {

struct ShiftInvertOptions {
  cplx sigma{1.05, 0.21};  ///< spectral shift (must avoid eigenvalues)
  double prop_tol = 1e-6;

  // Memberwise — cached boundaries are invalidated on any change, so a new
  // field MUST be added here too.
  friend bool operator==(const ShiftInvertOptions& a,
                         const ShiftInvertOptions& b) noexcept {
    return a.sigma == b.sigma && a.prop_tol == b.prop_tol;
  }
};

/// All finite lead modes at energy `e`, via dense shift-and-invert on the
/// companion pencil.
LeadModes compute_modes_shift_invert(const dft::LeadBlocks& lead, cplx e,
                                     const ShiftInvertOptions& options = {});

}  // namespace omenx::obc
