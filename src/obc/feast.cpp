#include "obc/feast.hpp"

#include <cmath>

#include "numeric/blas.hpp"
#include "numeric/eig.hpp"
#include "numeric/qr.hpp"
#include "numeric/types.hpp"
#include "parallel/thread_pool.hpp"

namespace omenx::obc {

namespace {

// Contour integration points and weights for the annulus boundary.
struct ContourPoint {
  cplx z;
  cplx weight;
};

std::vector<ContourPoint> annulus_contour(double r, idx np) {
  std::vector<ContourPoint> pts;
  pts.reserve(static_cast<std::size_t>(2 * np));
  // (1/(2*pi*i)) \oint f(z) dz on a circle of radius rho with the trapezoid
  // rule gives weights z_p / Np (Eq. 10).  The outer circle is traversed
  // counter-clockwise, the inner circle clockwise (negative weight).
  for (idx p = 0; p < np; ++p) {
    const double theta =
        2.0 * numeric::kPi * (static_cast<double>(p) + 0.5) /
        static_cast<double>(np);
    const cplx phase = std::exp(cplx{0.0, theta});
    pts.push_back({r * phase, r * phase / static_cast<double>(np)});
    pts.push_back({phase / r, -phase / (r * static_cast<double>(np))});
  }
  return pts;
}

}  // namespace

LeadModes compute_modes_feast(const dft::LeadBlocks& lead, cplx e,
                              const FeastOptions& options, FeastStats* stats) {
  const CompanionPencil pencil(lead, e);
  const idx nbc = pencil.dim();
  const idx s = pencil.block_size();
  const CMatrix a = pencil.a_dense();
  const CMatrix b = pencil.b_dense();
  const auto contour = annulus_contour(options.annulus_r, options.num_points);

  idx subspace = options.subspace > 0
                     ? std::min(options.subspace, nbc)
                     : std::min(nbc, std::max<idx>(8, nbc / 2));

  numeric::EigResult kept;
  double max_residual = 0.0;
  idx iterations = 0;

  for (;;) {  // subspace-saturation restart loop
    CMatrix y = numeric::random_cmatrix(nbc, subspace, options.seed);
    bool saturated = false;
    kept = numeric::EigResult{};

    for (idx iter = 0; iter < options.max_refinement; ++iter) {
      ++iterations;
      // Contour filter: Q = sum_p w_p (z_p B - A)^{-1} B Y.  Each point is
      // one s x s solve via the companion reduction; points run in parallel.
      std::vector<CMatrix> partial(contour.size());
      auto solve_point = [&](std::size_t p) {
        CMatrix xp = pencil.solve_shifted(contour[p].z, y);
        xp *= contour[p].weight;
        partial[p] = std::move(xp);
      };
      if (options.parallel_points) {
        parallel::ThreadPool::global().parallel_for(contour.size(),
                                                    solve_point);
      } else {
        for (std::size_t p = 0; p < contour.size(); ++p) solve_point(p);
      }
      CMatrix q(nbc, subspace);
      for (const auto& xp : partial) q += xp;

      const CMatrix qo = numeric::orthonormalize(q);
      if (qo.cols() == 0) break;  // nothing inside the contour

      // Rayleigh-Ritz on the projected pencil; shift-invert tolerates a
      // singular projected B and drops infinite Ritz values.
      const CMatrix ar = numeric::matmul(qo, numeric::matmul(a, qo), 'C', 'N');
      const CMatrix br = numeric::matmul(qo, numeric::matmul(b, qo), 'C', 'N');
      const numeric::EigResult ritz = numeric::shift_invert_eig(
          ar, br, cplx{1.07, 0.23}, /*want_vectors=*/true);

      // Back-transform and keep Ritz pairs inside the annulus.
      kept = numeric::EigResult{};
      std::vector<idx> keep_cols;
      for (idx c = 0; c < static_cast<idx>(ritz.values.size()); ++c) {
        const double mag = std::abs(ritz.values[static_cast<std::size_t>(c)]);
        if (mag >= 1.0 / options.annulus_r && mag <= options.annulus_r) {
          kept.values.push_back(ritz.values[static_cast<std::size_t>(c)]);
          keep_cols.push_back(c);
        }
      }
      kept.vectors = CMatrix(nbc, static_cast<idx>(keep_cols.size()));
      for (idx c = 0; c < static_cast<idx>(keep_cols.size()); ++c) {
        CMatrix yc = CMatrix(ritz.vectors.rows(), 1);
        for (idx rr = 0; rr < ritz.vectors.rows(); ++rr)
          yc(rr, 0) = ritz.vectors(rr, keep_cols[static_cast<std::size_t>(c)]);
        const CMatrix xc = numeric::matmul(qo, yc);
        for (idx rr = 0; rr < nbc; ++rr) kept.vectors(rr, c) = xc(rr, 0);
      }

      // Residuals ||A x - lambda B x|| / (||A x|| + |lambda| ||B x||).
      max_residual = 0.0;
      const CMatrix ax = numeric::matmul(a, kept.vectors);
      const CMatrix bx = numeric::matmul(b, kept.vectors);
      for (idx c = 0; c < static_cast<idx>(kept.values.size()); ++c) {
        const cplx lam = kept.values[static_cast<std::size_t>(c)];
        double num = 0.0, den = 0.0;
        for (idx rr = 0; rr < nbc; ++rr) {
          num += std::norm(ax(rr, c) - lam * bx(rr, c));
          den += std::norm(ax(rr, c)) + std::norm(lam) * std::norm(bx(rr, c));
        }
        max_residual = std::max(max_residual,
                                std::sqrt(num / std::max(den, 1e-300)));
      }

      if (static_cast<idx>(kept.values.size()) >= subspace &&
          subspace < nbc) {
        saturated = true;  // annulus may hold more modes than the subspace
        break;
      }
      if (max_residual < options.residual_tol) break;
      // Subspace iteration: feed the Ritz vectors back through the filter,
      // padded with fresh random columns to keep the subspace size.
      y = numeric::random_cmatrix(nbc, subspace,
                                  options.seed + 7 * (unsigned)iter + 1);
      for (idx c = 0;
           c < std::min<idx>(subspace, static_cast<idx>(kept.values.size()));
           ++c)
        for (idx rr = 0; rr < nbc; ++rr) y(rr, c) = kept.vectors(rr, c);
    }

    if (!saturated) break;
    subspace = std::min(nbc, 2 * subspace);
  }

  // Final filter: discard Ritz pairs that never converged (spurious values
  // that the contour filter could not resolve, typically deep inside large
  // annuli).  The survivors are the trustworthy modes.
  {
    const double keep_tol = std::max(options.residual_tol * 1e3, 1e-6);
    const CMatrix ax = numeric::matmul(a, kept.vectors);
    const CMatrix bx = numeric::matmul(b, kept.vectors);
    std::vector<idx> good;
    max_residual = 0.0;
    for (idx c = 0; c < static_cast<idx>(kept.values.size()); ++c) {
      const cplx lam = kept.values[static_cast<std::size_t>(c)];
      double num = 0.0, den = 0.0;
      for (idx rr = 0; rr < nbc; ++rr) {
        num += std::norm(ax(rr, c) - lam * bx(rr, c));
        den += std::norm(ax(rr, c)) + std::norm(lam) * std::norm(bx(rr, c));
      }
      const double res = std::sqrt(num / std::max(den, 1e-300));
      if (res <= keep_tol) {
        good.push_back(c);
        max_residual = std::max(max_residual, res);
      }
    }
    numeric::EigResult filtered;
    filtered.vectors = CMatrix(nbc, static_cast<idx>(good.size()));
    for (idx c = 0; c < static_cast<idx>(good.size()); ++c) {
      const idx src = good[static_cast<std::size_t>(c)];
      filtered.values.push_back(kept.values[static_cast<std::size_t>(src)]);
      for (idx rr = 0; rr < nbc; ++rr)
        filtered.vectors(rr, c) = kept.vectors(rr, src);
    }
    kept = std::move(filtered);
  }

  if (stats != nullptr) {
    stats->modes_found = static_cast<idx>(kept.values.size());
    stats->subspace_used = subspace;
    stats->iterations = iterations;
    stats->max_residual = max_residual;
  }

  const LeadOperators ops = lead_operators(dft::fold_lead(lead), e);
  return fold_and_classify(kept, lead.nbw(), s, ops, options.prop_tol);
}

}  // namespace omenx::obc
