// Unified OBC strategy layer — the boundary-condition twin of the solver
// registry (solvers/solver.hpp).
//
// The paper treats "computation of the boundary conditions" as a first-class
// pipeline stage (Fig. 4 / Fig. 6: the lead eigenproblem runs on the CPUs
// while SplitSolve's Step 1 occupies the accelerators), so the OBC backends
// get the same architecture as the device solvers: every algorithm —
// shift-and-invert (Ref. [38]), FEAST (Eq. 10 / Fig. 5), Sancho-Rubio
// decimation (Ref. [40]), and Beyn's contour method (Ref. [43]) — implements
// one Strategy interface with capability bits and registers itself in a
// name -> factory registry.  The companion linearization (companion.hpp) is
// the shared front-end of every eigenmode backend: each one solves the same
// pencil, differing only in *which* eigenpairs it extracts and how.
//
// Capability bits matter to callers: decimation produces self-energies only,
// so a density/charge request (which needs the injected wave functions)
// must be rejected loudly rather than silently integrating zeros.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dft/hamiltonian.hpp"
#include "obc/beyn.hpp"
#include "obc/decimation.hpp"
#include "obc/feast.hpp"
#include "obc/modes.hpp"
#include "obc/self_energy.hpp"
#include "obc/shift_invert.hpp"

namespace omenx::obc {

/// Selectable OBC backends (the registry names are the snake_case forms).
enum class ObcAlgorithm { kShiftInvert, kFeast, kDecimation, kBeyn };

/// Capability bits advertised by an OBC backend.
enum ObcCapability : unsigned {
  /// Boundary carries injection columns, mode velocities, and the
  /// right-lead basis: wave-function observables (transmission amplitudes,
  /// density, bond currents) are available.  Backends without this bit
  /// yield Sigma only — callers must fall back to the Green's-function
  /// (Caroli) formalism and must not request densities.
  kProvidesInjection = 1u << 0,
  /// The backend solves the lead *eigenproblem* (companion pencil) rather
  /// than iterating on the surface Green's function.
  kProvidesModes = 1u << 1,
};

/// Options bound to one boundary evaluation.  One struct travels from the
/// caller (transport::EnergyPointOptions) to the strategy so that a single
/// BoundaryOptions ridge governs both the self-energy construction and the
/// downstream transmission projection.
struct ObcOptions {
  FeastOptions feast;
  BeynOptions beyn;
  ShiftInvertOptions shift_invert;
  /// Default-constructed: DecimationOptions' own eta = 1e-7 is the single
  /// authoritative broadening default (an override here once shadowed it).
  DecimationOptions decimation;
  BoundaryOptions boundary;  ///< shared pseudo-inverse ridge
  /// Uniform lead (contact) potential shift (eV).  A lead floating at
  /// potential V has H -> H + V*S, so its boundary at energy E equals the
  /// pristine lead's boundary at E - V; strategies apply the shift exactly
  /// that way.  Part of the BoundaryCache key.
  double contact_shift = 0.0;

  // Memberwise, delegating to each struct's own operator== (declared next
  // to its fields so additions can't drift past the comparison).
  friend bool operator==(const ObcOptions& a, const ObcOptions& b) noexcept {
    return a.feast == b.feast && a.beyn == b.beyn &&
           a.shift_invert == b.shift_invert && a.decimation == b.decimation &&
           a.boundary == b.boundary && a.contact_shift == b.contact_shift;
  }
};

/// Strategy interface.  Implementations are stateless beyond the options
/// they are handed per call, so one instance may serve many energies.
class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual const char* name() const noexcept = 0;
  virtual unsigned capabilities() const noexcept = 0;

  /// Boundary data of the lead at energy `e`: the lead eigenproblem (or
  /// decimation iteration) plus the self-energy/injection construction,
  /// evaluated at e - options.contact_shift.  Advances the process-wide
  /// boundary_solve_count() — the instrumentation the cache benchmarks and
  /// CI gate read.
  Boundary boundary(const dft::LeadBlocks& lead, const dft::FoldedLead& folded,
                    cplx e, const ObcOptions& options = {});

 protected:
  /// Backend hook: `ops` and `e` already carry the contact shift.
  virtual Boundary compute(const dft::LeadBlocks& lead,
                           const LeadOperators& ops, cplx e,
                           const ObcOptions& options) = 0;
};

using StrategyFactory = std::function<std::unique_ptr<Strategy>()>;

/// Register a backend under `name` (replaces an existing registration).
/// The four built-ins ("shift_invert", "feast", "decimation", "beyn")
/// self-register on first registry use.
void register_obc_strategy(const std::string& name, StrategyFactory factory);

/// Names of all registered OBC backends, sorted.
std::vector<std::string> registered_obc_strategies();

/// Instantiate a backend by name; throws std::invalid_argument for unknown
/// names.
std::unique_ptr<Strategy> make_obc_strategy(const std::string& name);

/// Instantiate a backend by algorithm enum.
std::unique_ptr<Strategy> make_obc_strategy(ObcAlgorithm algo);

/// Registry name of an algorithm.
const char* obc_algorithm_name(ObcAlgorithm algo) noexcept;

/// Capability bits of an algorithm (without instantiating it by hand).
unsigned obc_algorithm_capabilities(ObcAlgorithm algo);

/// Memberwise equality of two option sets (== on ObcOptions).  Holders of
/// a persistent BoundaryCache (omen::Engine) compare each run's options
/// against the previous run's and invalidate on change: cached Boundaries
/// computed under a different annulus/ridge/eta must never be replayed.
inline bool obc_options_equal(const ObcOptions& a,
                              const ObcOptions& b) noexcept {
  return a == b;
}

/// Process-wide count of boundary-condition evaluations — one per lead
/// eigenproblem (or decimation) actually solved.  BoundaryCache hits do not
/// advance it; the obc_cache bench gates on exactly this.
std::uint64_t boundary_solve_count() noexcept;

}  // namespace omenx::obc
