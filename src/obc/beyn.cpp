#include "obc/beyn.hpp"

#include <cmath>

#include "numeric/blas.hpp"
#include "numeric/eig.hpp"
#include "numeric/lu.hpp"
#include "numeric/qr.hpp"
#include "numeric/types.hpp"
#include "obc/self_energy.hpp"
#include "parallel/thread_pool.hpp"

namespace omenx::obc {

namespace {

struct Moments {
  CMatrix a0;  ///< zeroth contour moment (s x m)
  CMatrix a1;  ///< first contour moment (s x m)
};

Moments contour_moments(const CompanionPencil& pencil, const CMatrix& v,
                        double r, idx np, bool parallel) {
  const idx s = pencil.block_size();
  const idx m = v.cols();
  const idx total = 2 * np;
  std::vector<CMatrix> part0(static_cast<std::size_t>(total));
  std::vector<CMatrix> part1(static_cast<std::size_t>(total));
  auto solve_point = [&](std::size_t p) {
    const bool outer = p < static_cast<std::size_t>(np);
    const double theta =
        2.0 * numeric::kPi *
        (static_cast<double>(outer ? p : p - np) + 0.5) /
        static_cast<double>(np);
    const cplx phase = std::exp(cplx{0.0, theta});
    const cplx z = outer ? r * phase : phase / r;
    const cplx w = (outer ? z : -z) / static_cast<double>(np);
    CMatrix x = numeric::LUFactor(pencil.polynomial(z)).solve(v);
    CMatrix x1 = x;
    x1 *= w * z;
    x *= w;
    part0[p] = std::move(x);
    part1[p] = std::move(x1);
  };
  if (parallel) {
    parallel::ThreadPool::global().parallel_for(
        static_cast<std::size_t>(total), solve_point);
  } else {
    for (std::size_t p = 0; p < static_cast<std::size_t>(total); ++p)
      solve_point(p);
  }
  Moments out;
  out.a0 = CMatrix(s, m);
  out.a1 = CMatrix(s, m);
  for (idx p = 0; p < total; ++p) {
    out.a0 += part0[static_cast<std::size_t>(p)];
    out.a1 += part1[static_cast<std::size_t>(p)];
  }
  return out;
}

}  // namespace

LeadModes compute_modes_beyn(const dft::LeadBlocks& lead, cplx e,
                             const BeynOptions& options, BeynStats* stats) {
  const CompanionPencil pencil(lead, e);
  const idx s = pencil.block_size();
  const idx nbw = lead.nbw();
  idx m = options.probe_columns > 0
              ? std::min(options.probe_columns, s)
              : std::min(s, std::max<idx>(24, s / 2 + 8));

  numeric::EigResult found;
  double max_residual = 0.0;
  idx rank = 0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const CMatrix v = numeric::random_cmatrix(s, m, options.seed);
    const Moments mo = contour_moments(pencil, v, options.annulus_r,
                                       options.num_points,
                                       options.parallel_points);
    // Rank-revealing basis of A_0's column span.
    const CMatrix q = numeric::orthonormalize(mo.a0, options.rank_tol);
    rank = q.cols();
    if (rank == 0) break;
    if (rank == m && m < s) {
      m = s;  // probing saturated: retry with a full probe block
      continue;
    }
    // On the invariant subspace: A_1 = T A_0 with T = V diag(lambda) V^+.
    // Projected: C1 = M C0, M = Q^H T Q, recovered by least squares.
    const CMatrix c0 = numeric::matmul(q, mo.a0, 'C', 'N');  // rank x m
    const CMatrix c1 = numeric::matmul(q, mo.a1, 'C', 'N');
    // M = C1 C0^H (C0 C0^H + ridge)^{-1}.
    CMatrix gram = numeric::matmul(c0, c0, 'N', 'C');
    for (idx i = 0; i < rank; ++i) gram(i, i) += cplx{1e-14};
    const CMatrix mmat = numeric::LUFactor(gram)
                             .solve_left(numeric::matmul(c1, c0, 'N', 'C'));
    const numeric::EigResult small = numeric::eig(mmat, /*want_vectors=*/true);

    // Back-transform, keep annulus + residual-converged pairs.
    found = numeric::EigResult{};
    std::vector<std::pair<cplx, CMatrix>> kept;
    max_residual = 0.0;
    for (idx c = 0; c < static_cast<idx>(small.values.size()); ++c) {
      const cplx lam = small.values[static_cast<std::size_t>(c)];
      const double mag = std::abs(lam);
      if (mag < 1.0 / options.annulus_r || mag > options.annulus_r) continue;
      CMatrix y(rank, 1);
      for (idx rr = 0; rr < rank; ++rr) y(rr, 0) = small.vectors(rr, c);
      CMatrix x = numeric::matmul(q, y);  // s x 1 candidate eigenvector
      // Residual of the *polynomial* problem: ||P(lambda) x|| / ||x||.
      const CMatrix px = numeric::matmul(pencil.polynomial(lam), x);
      const double res = numeric::frob_norm(px) /
                         std::max(numeric::frob_norm(x), 1e-300) /
                         std::max(numeric::max_abs(pencil.polynomial(lam)),
                                  1e-300);
      if (res > options.residual_tol) continue;
      max_residual = std::max(max_residual, res);
      kept.push_back({lam, std::move(x)});
    }
    // Assemble companion-structured vectors [u; lam u; ...] so the shared
    // fold/classify path applies unchanged.
    found.vectors = CMatrix(pencil.dim(), static_cast<idx>(kept.size()));
    for (idx c = 0; c < static_cast<idx>(kept.size()); ++c) {
      const auto& [lam, x] = kept[static_cast<std::size_t>(c)];
      found.values.push_back(lam);
      cplx scale{1.0};
      for (idx blk = 0; blk < pencil.degree(); ++blk) {
        for (idx i = 0; i < s; ++i)
          found.vectors(blk * s + i, c) = scale * x(i, 0);
        scale *= lam;
      }
    }
    break;
  }

  if (stats != nullptr) {
    stats->modes_found = static_cast<idx>(found.values.size());
    stats->rank = rank;
    stats->max_residual = max_residual;
  }
  const LeadOperators ops = lead_operators(dft::fold_lead(lead), e);
  return fold_and_classify(found, nbw, s, ops, options.prop_tol);
}

}  // namespace omenx::obc
