#include "obc/shift_invert.hpp"

#include "dft/hamiltonian.hpp"
#include "numeric/eig.hpp"

namespace omenx::obc {

LeadModes compute_modes_shift_invert(const dft::LeadBlocks& lead, cplx e,
                                     const ShiftInvertOptions& options) {
  const CompanionPencil pencil(lead, e);
  const numeric::EigResult eig = numeric::shift_invert_eig(
      pencil.a_dense(), pencil.b_dense(), options.sigma, /*want_vectors=*/true);
  const LeadOperators ops = lead_operators(dft::fold_lead(lead), e);
  return fold_and_classify(eig, lead.nbw(), lead.block_dim(), ops,
                           options.prop_tol);
}

}  // namespace omenx::obc
