// Beyn's contour-integral method for the nonlinear lead eigenproblem
// (Ref. [43]: "FEAST can be modified according to Beyn to further reduce
// the calculation time").
//
// Unlike FEAST (which filters a linearized pencil and Rayleigh-Ritz
// iterates), Beyn integrates the resolvent of the *polynomial* itself:
//     A_0 = (1/2*pi*i) \oint P(z)^{-1} V dz,
//     A_1 = (1/2*pi*i) \oint z P(z)^{-1} V dz,
// over the annulus boundary; a rank-revealing factorization of A_0 followed
// by one small eigenproblem on the compressed A_1 yields all eigenpairs
// inside the contour in one shot — no subspace iteration, and every solve
// is s x s (never N_BC-sized).
//
// This is Beyn's "method A": the zeroth moment A_0 has rank at most s, so
// the contour may enclose at most s eigenpairs.  For wide annuli that
// enclose more modes, use FEAST (whose linearized subspace can grow to
// N_BC) — Beyn is the fast path for the tight annuli used in production.
#pragma once

#include "dft/hamiltonian.hpp"
#include "obc/modes.hpp"

namespace omenx::obc {

struct BeynOptions {
  double annulus_r = 20.0;
  idx num_points = 48;     ///< trapezoid points per circle
  idx probe_columns = 0;   ///< columns of V; 0 = auto (s/2 + 8, capped at s)
  double rank_tol = 1e-7;  ///< rank cut on A_0 (rejects quadrature leakage)
  double residual_tol = 1e-6;
  double prop_tol = 1e-6;
  unsigned seed = 4242;
  bool parallel_points = true;

  // Memberwise — cached boundaries are invalidated on any change, so a new
  // field MUST be added here too.
  friend bool operator==(const BeynOptions& a, const BeynOptions& b) noexcept {
    return a.annulus_r == b.annulus_r && a.num_points == b.num_points &&
           a.probe_columns == b.probe_columns && a.rank_tol == b.rank_tol &&
           a.residual_tol == b.residual_tol && a.prop_tol == b.prop_tol &&
           a.seed == b.seed && a.parallel_points == b.parallel_points;
  }
};

struct BeynStats {
  idx modes_found = 0;
  idx rank = 0;
  double max_residual = 0.0;
};

/// Lead modes inside the annulus at energy `e` via Beyn's method.
LeadModes compute_modes_beyn(const dft::LeadBlocks& lead, cplx e,
                             const BeynOptions& options = {},
                             BeynStats* stats = nullptr);

}  // namespace omenx::obc
