#include "obc/companion.hpp"

#include <stdexcept>

#include "numeric/blas.hpp"

namespace omenx::obc {

CompanionPencil::CompanionPencil(const dft::LeadBlocks& lead, cplx e) {
  const idx nbw = lead.nbw();
  if (nbw < 1) throw std::invalid_argument("CompanionPencil: NBW must be >= 1");
  s_ = lead.block_dim();
  degree_ = 2 * nbw;
  coeffs_.reserve(static_cast<std::size_t>(degree_ + 1));
  // C_j = Htilde_{j - NBW} with Htilde_l = H_l - E*S_l;
  // Htilde_{-l} = (H_l)^dagger - E*(S_l)^dagger  (note: E multiplies the
  // conjugate-transposed S block, not the conjugate of E).
  for (idx j = 0; j <= degree_; ++j) {
    const idx l = j - nbw;
    const idx al = l < 0 ? -l : l;
    const CMatrix& h = lead.h[static_cast<std::size_t>(al)];
    const CMatrix& sm = lead.s[static_cast<std::size_t>(al)];
    CMatrix c = l < 0 ? numeric::dagger(h) : h;
    const CMatrix sc = l < 0 ? numeric::dagger(sm) : sm;
    for (idx ii = 0; ii < c.size(); ++ii)
      c.data()[ii] = c.data()[ii] - e * sc.data()[ii];
    // The mode equation is sum lambda^l (H_l - E S_l) u = 0; our pencil
    // stores C_j directly.
    coeffs_.push_back(std::move(c));
  }
}

CMatrix CompanionPencil::a_dense() const {
  const idx n = dim();
  CMatrix a(n, n);
  for (idx b = 0; b + 1 < degree_; ++b)
    a.set_block(b * s_, (b + 1) * s_, CMatrix::identity(s_));
  for (idx j = 0; j < degree_; ++j) {
    CMatrix neg = coeffs_[static_cast<std::size_t>(j)];
    neg *= cplx{-1.0};
    a.set_block((degree_ - 1) * s_, j * s_, neg);
  }
  return a;
}

CMatrix CompanionPencil::b_dense() const {
  const idx n = dim();
  CMatrix b(n, n);
  for (idx blk = 0; blk + 1 < degree_; ++blk)
    b.set_block(blk * s_, blk * s_, CMatrix::identity(s_));
  b.set_block((degree_ - 1) * s_, (degree_ - 1) * s_,
              coeffs_[static_cast<std::size_t>(degree_)]);
  return b;
}

CMatrix CompanionPencil::polynomial(cplx z) const {
  // Horner evaluation: P(z) = C_0 + z(C_1 + z(...)).
  CMatrix p = coeffs_[static_cast<std::size_t>(degree_)];
  for (idx j = degree_ - 1; j >= 0; --j) {
    p *= z;
    p += coeffs_[static_cast<std::size_t>(j)];
  }
  return p;
}

CMatrix CompanionPencil::solve_shifted(cplx z, const CMatrix& y) const {
  if (y.rows() != dim())
    throw std::invalid_argument("solve_shifted: RHS dimension mismatch");
  const idx m = y.cols();
  // R = B_F * Y: r_i = y_i for i < d-1, r_{d-1} = C_d y_{d-1}.
  std::vector<CMatrix> r(static_cast<std::size_t>(degree_));
  for (idx i = 0; i < degree_; ++i)
    r[static_cast<std::size_t>(i)] = y.block(i * s_, 0, s_, m);
  r[static_cast<std::size_t>(degree_ - 1)] = numeric::matmul(
      coeffs_[static_cast<std::size_t>(degree_)],
      r[static_cast<std::size_t>(degree_ - 1)]);

  // Block rows i < d-1 of (zB - A)X = R give x_{i+1} = z x_i - r_i.
  // Writing x_j = z^j x_0 - w_j with w_0 = 0, w_{j+1} = z w_j + r_j,
  // the last row collapses onto P(z) x_0 = r_{d-1} + z C_d w_{d-1}
  //                                        + sum_{j=0}^{d-1} C_j w_j.
  std::vector<CMatrix> w(static_cast<std::size_t>(degree_));
  w[0] = CMatrix(s_, m);
  for (idx j = 1; j < degree_; ++j) {
    w[static_cast<std::size_t>(j)] = w[static_cast<std::size_t>(j - 1)] * z;
    w[static_cast<std::size_t>(j)] += r[static_cast<std::size_t>(j - 1)];
  }
  CMatrix rhs = r[static_cast<std::size_t>(degree_ - 1)];
  {
    CMatrix t = numeric::matmul(coeffs_[static_cast<std::size_t>(degree_)],
                                w[static_cast<std::size_t>(degree_ - 1)]);
    t *= z;
    rhs += t;
  }
  for (idx j = 0; j < degree_; ++j) {
    if (j == 0) continue;  // w_0 = 0
    rhs += numeric::matmul(coeffs_[static_cast<std::size_t>(j)],
                           w[static_cast<std::size_t>(j)]);
  }
  const CMatrix x0 = numeric::solve(polynomial(z), rhs);

  // Reconstruct the full block vector x_j = z^j x_0 - w_j.
  CMatrix x(dim(), m);
  CMatrix zj_x0 = x0;
  for (idx j = 0; j < degree_; ++j) {
    CMatrix xj = zj_x0;
    xj -= w[static_cast<std::size_t>(j)];
    x.set_block(j * s_, 0, xj);
    if (j + 1 < degree_) zj_x0 *= z;
  }
  return x;
}

}  // namespace omenx::obc
