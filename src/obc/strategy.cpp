#include "obc/strategy.hpp"

#include <atomic>
#include <map>
#include <mutex>
#include <stdexcept>

namespace omenx::obc {

namespace {

std::atomic<std::uint64_t> g_boundary_solves{0};

/// Shared implementation of every eigenmode backend: solve the companion
/// pencil for the lead modes, then run the common fold/classify ->
/// self-energy/injection pipeline.  Which eigenpairs are extracted (all of
/// them, an annulus subspace, a contour moment problem) is the only thing
/// that differs between shift-invert, FEAST, and Beyn.
class ModeStrategy : public Strategy {
 public:
  unsigned capabilities() const noexcept override {
    return kProvidesInjection | kProvidesModes;
  }

 protected:
  Boundary compute(const dft::LeadBlocks& lead, const LeadOperators& ops,
                   cplx e, const ObcOptions& options) final {
    return build_boundary(modes(lead, e, options), ops, options.boundary);
  }
  virtual LeadModes modes(const dft::LeadBlocks& lead, cplx e,
                          const ObcOptions& options) = 0;
};

class ShiftInvertStrategy final : public ModeStrategy {
 public:
  const char* name() const noexcept override { return "shift_invert"; }

 protected:
  LeadModes modes(const dft::LeadBlocks& lead, cplx e,
                  const ObcOptions& options) override {
    return compute_modes_shift_invert(lead, e, options.shift_invert);
  }
};

class FeastStrategy final : public ModeStrategy {
 public:
  const char* name() const noexcept override { return "feast"; }

 protected:
  LeadModes modes(const dft::LeadBlocks& lead, cplx e,
                  const ObcOptions& options) override {
    return compute_modes_feast(lead, e, options.feast);
  }
};

class BeynStrategy final : public ModeStrategy {
 public:
  const char* name() const noexcept override { return "beyn"; }

 protected:
  LeadModes modes(const dft::LeadBlocks& lead, cplx e,
                  const ObcOptions& options) override {
    return compute_modes_beyn(lead, e, options.beyn);
  }
};

/// Sancho-Rubio decimation: surface Green's functions only — no eigenmodes,
/// no injection data (capability bits empty).
class DecimationStrategy final : public Strategy {
 public:
  const char* name() const noexcept override { return "decimation"; }
  unsigned capabilities() const noexcept override { return 0; }

 protected:
  Boundary compute(const dft::LeadBlocks&, const LeadOperators& ops, cplx e,
                   const ObcOptions& options) override {
    // On the real axis the surface Green's function has poles at the lead
    // bands: without a positive broadening the Sancho-Rubio iteration
    // diverges or stalls on them.  Off-axis (contour) energies carry their
    // own Im(E) and need no artificial eta.
    if (e.imag() == 0.0 && options.decimation.eta <= 0.0)
      throw std::invalid_argument(
          "decimation: eta must be > 0 on the real axis (the surface "
          "Green's function has poles there)");
    Boundary out;
    out.sigma_l = sigma_left_decimation(ops, options.decimation);
    out.sigma_r = sigma_right_decimation(ops, options.decimation);
    out.num_incident = 0;
    out.num_incident_right = 0;
    return out;
  }
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, StrategyFactory> factories;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    reg->factories["shift_invert"] = [] {
      return std::make_unique<ShiftInvertStrategy>();
    };
    reg->factories["feast"] = [] { return std::make_unique<FeastStrategy>(); };
    reg->factories["decimation"] = [] {
      return std::make_unique<DecimationStrategy>();
    };
    reg->factories["beyn"] = [] { return std::make_unique<BeynStrategy>(); };
    return reg;
  }();
  return *r;
}

}  // namespace

Boundary Strategy::boundary(const dft::LeadBlocks& lead,
                            const dft::FoldedLead& folded, cplx e,
                            const ObcOptions& options) {
  // A lead at uniform potential V is the pristine lead seen at E - V.
  const cplx e_eff = e - cplx{options.contact_shift, 0.0};
  const LeadOperators ops = lead_operators(folded, e_eff);
  g_boundary_solves.fetch_add(1, std::memory_order_relaxed);
  return compute(lead, ops, e_eff, options);
}

void register_obc_strategy(const std::string& name, StrategyFactory factory) {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  r.factories[name] = std::move(factory);
}

std::vector<std::string> registered_obc_strategies() {
  Registry& r = registry();
  const std::lock_guard<std::mutex> lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.factories.size());
  for (const auto& [name, _] : r.factories) names.push_back(name);
  return names;  // std::map iterates sorted
}

std::unique_ptr<Strategy> make_obc_strategy(const std::string& name) {
  Registry& r = registry();
  StrategyFactory factory;
  {
    const std::lock_guard<std::mutex> lock(r.mutex);
    const auto it = r.factories.find(name);
    if (it == r.factories.end())
      throw std::invalid_argument("make_obc_strategy: unknown backend '" +
                                  name + "'");
    factory = it->second;
  }
  return factory();
}

const char* obc_algorithm_name(ObcAlgorithm algo) noexcept {
  switch (algo) {
    case ObcAlgorithm::kShiftInvert:
      return "shift_invert";
    case ObcAlgorithm::kFeast:
      return "feast";
    case ObcAlgorithm::kDecimation:
      return "decimation";
    case ObcAlgorithm::kBeyn:
      return "beyn";
  }
  return "feast";
}

std::unique_ptr<Strategy> make_obc_strategy(ObcAlgorithm algo) {
  return make_obc_strategy(obc_algorithm_name(algo));
}

unsigned obc_algorithm_capabilities(ObcAlgorithm algo) {
  // Static property of the built-in backends — no registry lookup or
  // instantiation (this runs once per Simulator sweep).  A name-based
  // re-registration does not change the enum's built-in semantics; the
  // per-point capability check in solve_energy_point reads the instance.
  switch (algo) {
    case ObcAlgorithm::kShiftInvert:
    case ObcAlgorithm::kFeast:
    case ObcAlgorithm::kBeyn:
      return kProvidesInjection | kProvidesModes;
    case ObcAlgorithm::kDecimation:
      return 0;
  }
  return 0;
}

std::uint64_t boundary_solve_count() noexcept {
  return g_boundary_solves.load(std::memory_order_relaxed);
}

}  // namespace omenx::obc
