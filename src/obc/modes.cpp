#include "obc/modes.hpp"

#include <cmath>

#include "numeric/blas.hpp"

namespace omenx::obc {

LeadOperators lead_operators(const dft::FoldedLead& lead, cplx e) {
  LeadOperators out;
  out.s00 = lead.s00;
  out.s01 = lead.s01;
  out.t0 = lead.s00 * e - lead.h00;
  out.tc = lead.s01 * e - lead.h01;
  out.tcd = numeric::dagger(lead.s01) * e - numeric::dagger(lead.h01);
  return out;
}

double group_velocity(cplx lambda, const CMatrix& u, idx col,
                      const LeadOperators& ops) {
  const idx n = u.rows();
  // num = 2 * Im(lambda * u^H tc u)
  cplx utcu{0.0};
  cplx norm{0.0};
  for (idx i = 0; i < n; ++i) {
    const cplx ui = std::conj(u(i, col));
    for (idx j = 0; j < n; ++j) {
      const cplx uj = u(j, col);
      utcu += ui * ops.tc(i, j) * uj;
      norm += ui * (ops.s00(i, j) + lambda * ops.s01(i, j) +
                    std::conj(lambda * ops.s01(j, i))) *
              uj;
    }
  }
  // The Bloch norm u^H Sv u is real but *not* sign-definite for the ridged,
  // truncated overlaps a DFT basis produces: discarding its sign would flip
  // the velocity of a negative-norm eigenvector and misclassify the mode's
  // direction (wrong lead set => wrong Sigma and injection).  Clamp only the
  // magnitude away from zero; keep the sign.
  double den = norm.real();
  const double mag = std::max(std::abs(den), 1e-12);
  den = den < 0.0 ? -mag : mag;
  return 2.0 * std::imag(lambda * utcu) / den;
}

LeadModes fold_and_classify(const numeric::EigResult& eig, idx nbw, idx s,
                            const LeadOperators& ops, double prop_tol,
                            double vel_tol) {
  const idx sf = nbw * s;
  const idx m = static_cast<idx>(eig.values.size());
  LeadModes out;
  out.vectors = CMatrix(sf, m);
  out.lambda.reserve(static_cast<std::size_t>(m));
  out.velocity.reserve(static_cast<std::size_t>(m));
  out.kind.reserve(static_cast<std::size_t>(m));

  for (idx c = 0; c < m; ++c) {
    const cplx lam = eig.values[static_cast<std::size_t>(c)];
    // Folded phase factor.
    cplx lam_f{1.0};
    for (idx p = 0; p < nbw; ++p) lam_f *= lam;
    // Folded vector = first nbw*s entries of the companion eigenvector,
    // which already carry the [u; lambda*u; ...] structure.
    double norm = 0.0;
    for (idx i = 0; i < sf; ++i) norm += std::norm(eig.vectors(i, c));
    norm = std::sqrt(norm);
    const double scale = norm > 0.0 ? 1.0 / norm : 0.0;
    for (idx i = 0; i < sf; ++i)
      out.vectors(i, c) = eig.vectors(i, c) * scale;

    out.lambda.push_back(lam_f);
    const double mag = std::abs(lam_f);
    if (std::abs(mag - 1.0) < prop_tol) {
      const double v = group_velocity(lam_f, out.vectors, c, ops);
      if (std::abs(v) <= vel_tol) {
        // Band-edge state: a degenerate |lambda| = 1 pair with vanishing
        // group velocity.  Classifying it by sign(v) would drop *both*
        // members into the incident set (v >= 0) and double-count the
        // injection; a zero-velocity mode carries no flux, so it belongs
        // with the evanescent states, split by which half-space bounds it.
        out.velocity.push_back(0.0);
        out.kind.push_back(mag <= 1.0 ? ModeKind::kDecayingRight
                                      : ModeKind::kDecayingLeft);
        continue;
      }
      out.velocity.push_back(v);
      if (v > 0.0) {
        out.kind.push_back(ModeKind::kPropagatingRight);
        ++out.num_propagating_right;
      } else {
        out.kind.push_back(ModeKind::kPropagatingLeft);
        ++out.num_propagating_left;
      }
    } else {
      out.velocity.push_back(0.0);
      out.kind.push_back(mag < 1.0 ? ModeKind::kDecayingRight
                                   : ModeKind::kDecayingLeft);
    }
  }
  return out;
}

}  // namespace omenx::obc
