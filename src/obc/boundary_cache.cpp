#include "obc/boundary_cache.hpp"

#include <algorithm>
#include <utility>

namespace omenx::obc {

BoundaryCache::BoundaryCache(std::size_t max_entries)
    : max_entries_(max_entries == 0 ? 1 : max_entries) {}

std::shared_ptr<const Boundary> BoundaryCache::find(const BoundaryKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    ++contact_stats_[key.contact].misses;
    return nullptr;
  }
  ++stats_.hits;
  ++contact_stats_[key.contact].hits;
  return it->second;
}

std::shared_ptr<const Boundary> BoundaryCache::insert(const BoundaryKey& key,
                                                      Boundary bnd) {
  auto entry = std::make_shared<const Boundary>(std::move(bnd));
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(key, std::move(entry));
  if (inserted) {
    ++stats_.insertions;
    ++contact_stats_[key.contact].insertions;
    order_.push_back(key);
    while (entries_.size() > max_entries_ && !order_.empty()) {
      entries_.erase(order_.front());  // FIFO: oldest insertion goes first
      order_.pop_front();
    }
  }
  return it->second;  // an existing entry wins: first evaluation is canonical
}

void BoundaryCache::invalidate() {
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  order_.clear();
  ++stats_.invalidations;
  for (auto& [contact, s] : contact_stats_) ++s.invalidations;
}

void BoundaryCache::invalidate_contact(int contact) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();)
    it = it->first.contact == contact ? entries_.erase(it) : std::next(it);
  order_.erase(std::remove_if(order_.begin(), order_.end(),
                              [contact](const BoundaryKey& k) {
                                return k.contact == contact;
                              }),
               order_.end());
  ++stats_.invalidations;
  ++contact_stats_[contact].invalidations;
}

void BoundaryCache::reserve(std::size_t min_entries) {
  const std::lock_guard<std::mutex> lock(mutex_);
  max_entries_ = std::max(max_entries_, min_entries);
}

std::size_t BoundaryCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t BoundaryCache::max_entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_entries_;
}

BoundaryCache::Stats BoundaryCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

BoundaryCache::Stats BoundaryCache::contact_stats(int contact) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = contact_stats_.find(contact);
  return it == contact_stats_.end() ? Stats{} : it->second;
}

std::vector<int> BoundaryCache::contacts_seen() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> out;
  out.reserve(contact_stats_.size());
  for (const auto& [contact, s] : contact_stats_) out.push_back(contact);
  return out;
}

}  // namespace omenx::obc
