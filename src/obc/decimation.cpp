#include "obc/decimation.hpp"

#include <stdexcept>

#include "numeric/blas.hpp"
#include "numeric/lu.hpp"

namespace omenx::obc {

namespace {

// Generic Sancho-Rubio doubling for a semi-infinite lead whose surface
// couples inward via `alpha` (and back via `beta`): returns
// g = (t0 - alpha g beta)^{-1}.
CMatrix sancho_rubio(const CMatrix& t0, const CMatrix& alpha0,
                     const CMatrix& beta0, const DecimationOptions& o) {
  const idx n = t0.rows();
  CMatrix eps_s = t0;
  CMatrix eps = t0;
  for (idx i = 0; i < n; ++i) eps_s(i, i) += cplx{0.0, o.eta};
  for (idx i = 0; i < n; ++i) eps(i, i) += cplx{0.0, o.eta};
  CMatrix alpha = alpha0;
  CMatrix beta = beta0;

  for (idx it = 0; it < o.max_iter; ++it) {
    const numeric::LUFactor lu(eps);
    const CMatrix g_a = lu.solve(alpha);  // eps^{-1} alpha
    const CMatrix g_b = lu.solve(beta);   // eps^{-1} beta
    const CMatrix a_g_b = numeric::matmul(alpha, g_b);
    const CMatrix b_g_a = numeric::matmul(beta, g_a);
    // Schur complements in the (E*S - H) form: eliminating interior cells
    // *subtracts* alpha g beta from the effective surface operator.
    eps_s -= a_g_b;
    eps -= a_g_b;
    eps -= b_g_a;
    alpha = numeric::matmul(alpha, g_a);
    beta = numeric::matmul(beta, g_b);
    if (numeric::max_abs(alpha) < o.tol && numeric::max_abs(beta) < o.tol)
      return numeric::inverse(eps_s);
  }
  throw std::runtime_error(
      "sancho_rubio: decimation failed to converge; increase eta or max_iter");
}

}  // namespace

CMatrix surface_gf_left(const LeadOperators& ops, const DecimationOptions& o) {
  // Left lead (q -> -inf): the surface cell couples inward via tc^H.
  return sancho_rubio(ops.t0, ops.tcd, ops.tc, o);
}

CMatrix surface_gf_right(const LeadOperators& ops, const DecimationOptions& o) {
  // Right lead (q -> +inf): the surface cell couples inward via tc.
  return sancho_rubio(ops.t0, ops.tc, ops.tcd, o);
}

CMatrix sigma_left_decimation(const LeadOperators& ops,
                              const DecimationOptions& o) {
  const CMatrix g = surface_gf_left(ops, o);
  return numeric::matmul(ops.tcd, numeric::matmul(g, ops.tc));
}

CMatrix sigma_right_decimation(const LeadOperators& ops,
                               const DecimationOptions& o) {
  const CMatrix g = surface_gf_right(ops, o);
  return numeric::matmul(ops.tc, numeric::matmul(g, ops.tcd));
}

}  // namespace omenx::obc
