// Lead eigenmode extraction, classification, and folding.
//
// Modes of the companion pencil are classified into right/left-propagating
// (|lambda| ~ 1, sign of the group velocity) and right/left-decaying
// (|lambda| < 1 / > 1).  Folded-supercell modes (lambda_f = lambda^NBW,
// u_f = [u; lambda*u; ...]) feed the self-energy construction.
#pragma once

#include <vector>

#include "dft/hamiltonian.hpp"
#include "numeric/eig.hpp"
#include "numeric/matrix.hpp"
#include "obc/companion.hpp"

namespace omenx::obc {

enum class ModeKind {
  kPropagatingRight,  ///< |lambda| = 1, group velocity > +vel_tol
  kPropagatingLeft,   ///< |lambda| = 1, group velocity < -vel_tol
  kDecayingRight,     ///< |lambda| < 1 (bounded as q -> +inf), or band-edge
                      ///< |lambda| <= 1 with |v| <= vel_tol (carries no flux)
  kDecayingLeft,      ///< |lambda| > 1 (bounded as q -> -inf), or band-edge
                      ///< |lambda| > 1 with |v| <= vel_tol
};

/// Folded lead modes at one energy.
struct LeadModes {
  std::vector<cplx> lambda;        ///< folded phase factors lambda^NBW
  CMatrix vectors;                 ///< sf x M folded eigenvectors (columns)
  std::vector<double> velocity;    ///< group velocity (arb. units), 0 if evanescent
  std::vector<ModeKind> kind;
  idx num_propagating_right = 0;
  idx num_propagating_left = 0;
};

/// Folded-supercell operator blocks of the lead at energy E:
/// t0 = E*S00 - H00, tc = E*S01 - H01, and the reverse coupling
/// tcd = E*S01^H - H01^H.  On the real axis tcd == tc^H, but the two differ
/// at complex E: the dagger of tc would conjugate the energy (conj(E)*S01^H
/// - H01^H), making every self-energy built from it a function of conj(E)
/// and silently breaking the analyticity that the contour charge quadrature
/// deforms through.  Only the *matrices* are Hermitian-conjugated; the
/// energy continues unconjugated (same convention as the companion pencil's
/// Htilde_{-l} = H_l^H - E*S_l^H blocks).
struct LeadOperators {
  CMatrix t0, tc;
  CMatrix tcd;  ///< E*S01^H - H01^H — use instead of dagger(tc) everywhere
  CMatrix s00, s01;
};

LeadOperators lead_operators(const dft::FoldedLead& lead, cplx e);

/// Group velocity of a folded mode: v = 2*Im(lambda * u^H tc u) / (u^H Sv u)
/// with the Bloch-periodic overlap Sv = S00 + lambda*S01 + lambda^H*S01^H.
/// The denominator keeps the *sign* of the Bloch norm (only its magnitude
/// is clamped away from zero): a negative-norm eigenvector travels opposite
/// to its numerator's sign, and dropping that flips the classification.
/// Verified analytically against dE/dk for the 1-D chain.
double group_velocity(cplx lambda, const CMatrix& u, idx col,
                      const LeadOperators& ops);

/// Build folded modes from raw companion eigenpairs (values + vectors with
/// the Krylov block structure).  `prop_tol` decides |(|lambda|-1)| for the
/// propagating classification; unit-circle modes with |v| <= `vel_tol`
/// (degenerate band-edge pairs) carry no flux and are demoted to the
/// decaying set chosen by |lambda|, so they never enter the incident set.
LeadModes fold_and_classify(const numeric::EigResult& eig, idx nbw, idx s,
                            const LeadOperators& ops, double prop_tol = 1e-6,
                            double vel_tol = 1e-6);

}  // namespace omenx::obc
