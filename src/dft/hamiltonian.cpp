#include "dft/hamiltonian.hpp"

#include <cmath>
#include <stdexcept>

#include "dft/gaussian.hpp"
#include "numeric/blas.hpp"

namespace omenx::dft {

namespace {

lattice::Vec3 shifted(const lattice::Vec3& r, double dx, double dz) {
  return {r[0] + dx, r[1], r[2] + dz};
}

double distance2(const lattice::Vec3& a, const lattice::Vec3& b) {
  const double dx = a[0] - b[0], dy = a[1] - b[1], dz = a[2] - b[2];
  return dx * dx + dy * dy + dz * dz;
}

// Smooth cosine taper bringing matrix elements continuously to zero at the
// cutoff.  A hard truncation perturbs the overlap Gram matrix enough to
// threaten its positive definiteness; the taper keeps the perturbation
// gentle (the tapered S is the Gram matrix of slightly deformed orbitals).
double cutoff_taper(double r, double r_cut) {
  const double r_on = 0.6 * r_cut;
  if (r <= r_on) return 1.0;
  if (r >= r_cut) return 0.0;
  const double t = (r - r_on) / (r_cut - r_on);
  return 0.5 * (1.0 + std::cos(t * 3.14159265358979323846));
}

}  // namespace

LeadBlocks build_lead_blocks(const lattice::Structure& structure,
                             const BasisLibrary& basis,
                             const BuildOptions& options) {
  const auto orbitals = enumerate_orbitals(structure.cell_atoms, basis);
  const idx n = static_cast<idx>(orbitals.size());
  if (n == 0) throw std::invalid_argument("build_lead_blocks: empty cell");
  const double lcell = structure.cell_length;
  const idx nbw = std::max<idx>(
      1, static_cast<idx>(std::ceil(options.cutoff_nm / lcell)));

  const bool periodic_z = structure.periodicity == lattice::Periodicity::kZ;
  const idx mz = periodic_z
                     ? static_cast<idx>(std::ceil(options.cutoff_nm /
                                                  structure.z_period))
                     : 0;
  const double kk = options.k_transverse;
  const double cutoff2 = options.cutoff_nm * options.cutoff_nm;
  const double huckel_k = basis.huckel_k();

  LeadBlocks out;
  out.h.assign(static_cast<std::size_t>(nbw + 1), CMatrix(n, n));
  out.s.assign(static_cast<std::size_t>(nbw + 1), CMatrix(n, n));

  for (idx l = 0; l <= nbw; ++l) {
    CMatrix& hb = out.h[static_cast<std::size_t>(l)];
    CMatrix& sb = out.s[static_cast<std::size_t>(l)];
    for (idx i = 0; i < n; ++i) {
      const Orbital& oi = orbitals[static_cast<std::size_t>(i)];
      const lattice::Vec3 ri =
          structure.cell_atoms[static_cast<std::size_t>(oi.atom)].position;
      for (idx j = 0; j < n; ++j) {
        const Orbital& oj = orbitals[static_cast<std::size_t>(j)];
        const lattice::Vec3 rj0 =
            structure.cell_atoms[static_cast<std::size_t>(oj.atom)].position;
        cplx s_acc{0.0};
        for (idx m = -mz; m <= mz; ++m) {
          const lattice::Vec3 rj = shifted(
              rj0, static_cast<double>(l) * lcell,
              static_cast<double>(m) * (periodic_z ? structure.z_period : 0.0));
          const bool same_site = l == 0 && m == 0 && i == j;
          const double r2 = distance2(ri, rj);
          if (!same_site && r2 > cutoff2) continue;
          const double ov = gaussian_overlap(oi, ri, oj, rj) *
                            cutoff_taper(std::sqrt(r2), options.cutoff_nm);
          if (!same_site && std::abs(ov) < options.drop_tol) continue;
          const cplx phase =
              m == 0 ? cplx{1.0}
                     : std::exp(cplx{0.0, kk * static_cast<double>(m)});
          s_acc += phase * ov;
        }
        if (s_acc == cplx{0.0}) continue;
        const bool onsite = l == 0 && i == j;
        sb(i, j) = s_acc + (onsite ? cplx{options.overlap_ridge} : cplx{0.0});
        if (onsite) {
          // H_ii = E_i plus the Hueckel contribution of the periodic images
          // (s_acc - 1 is exactly the image part since self-overlap is 1).
          hb(i, j) = cplx{oi.energy} +
                     huckel_k * oi.energy * (s_acc - cplx{1.0});
        } else {
          hb(i, j) = 0.5 * huckel_k * (oi.energy + oj.energy) * s_acc;
        }
      }
    }
  }
  return out;
}

LeadBlocks build_tb_lead_blocks(const lattice::Structure& structure) {
  // sp3 Slater-Koster, nearest neighbours only (Si-like parameters, eV).
  constexpr double kEs = -4.20, kEp = 1.72;
  constexpr double kVss = -2.08, kVsp = 2.37, kVppS = 4.28, kVppP = -1.15;
  constexpr double kBond = 0.26;  // nm, captures the 0.235 nm Si NN distance
  constexpr int kNorb = 4;        // s, px, py, pz

  const idx na = structure.atoms_per_cell();
  const idx n = na * kNorb;
  const double lcell = structure.cell_length;
  const bool periodic_z = structure.periodicity == lattice::Periodicity::kZ;

  LeadBlocks out;
  out.h.assign(2, CMatrix(n, n));
  out.s.assign(2, CMatrix(n, n));
  out.s[0] = CMatrix::identity(n);

  auto couple = [&](CMatrix& hb, idx ai, idx aj, const lattice::Vec3& d) {
    const double r = std::sqrt(d[0] * d[0] + d[1] * d[1] + d[2] * d[2]);
    const double lx = d[0] / r, ly = d[1] / r, lz = d[2] / r;
    const double dir[3] = {lx, ly, lz};
    const idx bi = ai * kNorb, bj = aj * kNorb;
    hb(bi, bj) += kVss;
    for (int c = 0; c < 3; ++c) {
      hb(bi, bj + 1 + c) += dir[c] * kVsp;
      hb(bi + 1 + c, bj) += -dir[c] * kVsp;
      for (int cc = 0; cc < 3; ++cc) {
        const double dd = dir[c] * dir[cc] * (kVppS - kVppP) +
                          (c == cc ? kVppP : 0.0);
        hb(bi + 1 + c, bj + 1 + cc) += dd;
      }
    }
  };

  for (idx ai = 0; ai < na; ++ai) {
    const auto& ri = structure.cell_atoms[static_cast<std::size_t>(ai)].position;
    out.h[0](ai * kNorb, ai * kNorb) = kEs;
    for (int c = 0; c < 3; ++c)
      out.h[0](ai * kNorb + 1 + c, ai * kNorb + 1 + c) = kEp;
    for (idx l = 0; l <= 1; ++l) {
      for (idx aj = 0; aj < na; ++aj) {
        const auto& rj0 =
            structure.cell_atoms[static_cast<std::size_t>(aj)].position;
        const idx mrange = periodic_z ? 1 : 0;
        for (idx m = -mrange; m <= mrange; ++m) {
          if (l == 0 && m == 0 && ai == aj) continue;
          const lattice::Vec3 rj = shifted(
              rj0, static_cast<double>(l) * lcell,
              static_cast<double>(m) * (periodic_z ? structure.z_period : 0.0));
          const double r2 = distance2(ri, rj);
          if (r2 > kBond * kBond || r2 < 1e-12) continue;
          const lattice::Vec3 d = {rj[0] - ri[0], rj[1] - ri[1],
                                   rj[2] - ri[2]};
          couple(out.h[static_cast<std::size_t>(l)], ai, aj, d);
        }
      }
    }
  }
  return out;
}

DeviceMatrices assemble_device(const LeadBlocks& lead, idx num_cells,
                               const std::vector<double>& cell_potential) {
  const idx nbw = lead.nbw();
  const idx s = lead.block_dim();
  const idx fold = std::max<idx>(1, nbw);
  if (num_cells % fold != 0)
    throw std::invalid_argument(
        "assemble_device: num_cells must be divisible by NBW (fold factor)");
  if (static_cast<idx>(cell_potential.size()) != num_cells)
    throw std::invalid_argument(
        "assemble_device: cell_potential must have one entry per cell");
  const idx nbf = num_cells / fold;
  if (nbf < 2)
    throw std::invalid_argument("assemble_device: need at least 2 supercells");
  const idx sf = s * fold;

  DeviceMatrices out;
  out.h = BlockTridiag(nbf, sf);
  out.s = BlockTridiag(nbf, sf);
  out.fold = fold;
  out.cells = num_cells;

  auto blk = [&](idx l) -> const CMatrix& {
    return lead.h[static_cast<std::size_t>(l)];
  };
  auto sblk = [&](idx l) -> const CMatrix& {
    return lead.s[static_cast<std::size_t>(l)];
  };

  // place(): add the (g1, g2) physical-cell pair (offset l = g2-g1 >= 0)
  // into folded block position (a, b) of target matrices.
  auto place = [&](CMatrix& htgt, CMatrix& stgt, idx a, idx b, idx g1, idx g2) {
    const idx l = g2 - g1;
    const double v =
        0.5 * (cell_potential[static_cast<std::size_t>(g1)] +
               cell_potential[static_cast<std::size_t>(g2)]);
    const CMatrix& hb = blk(l);
    const CMatrix& sb = sblk(l);
    htgt.add_block(a * s, b * s, hb);
    htgt.add_block(a * s, b * s, sb, cplx{v});
    stgt.add_block(a * s, b * s, sb);
  };

  for (idx i = 0; i < nbf; ++i) {
    // Diagonal supercell block.
    for (idx a = 0; a < fold; ++a) {
      for (idx b = a; b < fold; ++b) {
        const idx l = b - a;
        if (l > nbw) continue;
        const idx g1 = i * fold + a, g2 = i * fold + b;
        place(out.h.diag(i), out.s.diag(i), a, b, g1, g2);
        if (l > 0) {
          // Hermitian mirror within the diagonal block.
          const double v =
              0.5 * (cell_potential[static_cast<std::size_t>(g1)] +
                     cell_potential[static_cast<std::size_t>(g2)]);
          const CMatrix hd = numeric::dagger(blk(l));
          const CMatrix sd = numeric::dagger(sblk(l));
          out.h.diag(i).add_block(b * s, a * s, hd);
          out.h.diag(i).add_block(b * s, a * s, sd, cplx{v});
          out.s.diag(i).add_block(b * s, a * s, sd);
        }
      }
    }
    // Upper coupling supercell block (i, i+1).
    if (i + 1 < nbf) {
      for (idx a = 0; a < fold; ++a) {
        for (idx b = 0; b < fold; ++b) {
          const idx l = fold + b - a;
          if (l < 1 || l > nbw) continue;
          const idx g1 = i * fold + a, g2 = (i + 1) * fold + b;
          place(out.h.upper(i), out.s.upper(i), a, b, g1, g2);
        }
      }
      out.h.lower(i) = numeric::dagger(out.h.upper(i));
      out.s.lower(i) = numeric::dagger(out.s.upper(i));
    }
  }
  return out;
}

FoldedLead fold_lead(const LeadBlocks& lead) {
  const idx fold = std::max<idx>(1, lead.nbw());
  const idx cells = std::max<idx>(2 * fold, 2 * fold);
  const std::vector<double> zero_pot(static_cast<std::size_t>(cells), 0.0);
  const DeviceMatrices dm = assemble_device(lead, cells, zero_pot);
  FoldedLead out;
  out.h00 = dm.h.diag(0);
  out.s00 = dm.s.diag(0);
  out.h01 = dm.h.upper(0);
  out.s01 = dm.s.upper(0);
  return out;
}

std::vector<idx> orbital_to_atom(const lattice::Structure& structure,
                                 const BasisLibrary& basis) {
  const auto orbitals = enumerate_orbitals(structure.cell_atoms, basis);
  std::vector<idx> out;
  out.reserve(orbitals.size());
  for (const auto& o : orbitals) out.push_back(o.atom);
  return out;
}

}  // namespace omenx::dft
