// Analytic overlap integrals between Cartesian Gaussian orbitals (s and p).
//
// With P = (a*A + b*B)/(a+b), p = a+b, mu = a*b/p and the Gaussian product
// prefactor S00 = (pi/p)^{3/2} exp(-mu |A-B|^2):
//   (s_A | s_B)      = S00
//   (p_i_A | s_B)    = (P_i - A_i) * S00
//   (p_i_A | p_j_B)  = [(P_i - A_i)(P_j - B_j) + delta_ij/(2p)] * S00
// Orbitals are normalized so that the self-overlap is exactly 1, which makes
// the assembled S matrix a Gram matrix of unit-norm functions (HPD).
#pragma once

#include "dft/basis.hpp"
#include "lattice/structure.hpp"

namespace omenx::dft {

/// Raw (unnormalized) overlap between two Gaussian orbitals at centers
/// `ra`, `rb` (nm).
double gaussian_overlap_raw(const Orbital& oa, const lattice::Vec3& ra,
                            const Orbital& ob, const lattice::Vec3& rb);

/// Normalization factor 1/sqrt(<g|g>) for one orbital.
double gaussian_norm(const Orbital& o);

/// Normalized overlap <a|b> / (|a| |b|).
double gaussian_overlap(const Orbital& oa, const lattice::Vec3& ra,
                        const Orbital& ob, const lattice::Vec3& rb);

}  // namespace omenx::dft
