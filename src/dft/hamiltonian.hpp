// Hamiltonian / overlap matrix assembly — the CP2K stand-in.
//
// Produces the inter-cell blocks H_{q,q+l}, S_{q,q+l} (l = 0..NBW) of a
// periodic transport cell in the Gaussian basis, optionally at a transverse
// momentum k for z-periodic structures (the paper notes CP2K provides no
// k-dependence, so OMEN builds H(k), S(k) from the 3-D blocks itself —
// that construction is `k_transverse` here).  A nearest-neighbour sp3
// tight-binding builder provides the sparsity baseline of Fig. 3 and the
// substrate for OMEN's legacy BCR solver.
#pragma once

#include <vector>

#include "blockmat/block_tridiag.hpp"
#include "dft/basis.hpp"
#include "lattice/structure.hpp"
#include "numeric/matrix.hpp"

namespace omenx::dft {

using blockmat::BlockTridiag;
using numeric::CMatrix;
using numeric::cplx;

/// Inter-cell blocks of a periodic lead/device cell:
/// h[l] = H_{q,q+l} for l = 0..nbw (H_{q,q-l} = h[l]^dagger).
struct LeadBlocks {
  std::vector<CMatrix> h;
  std::vector<CMatrix> s;

  idx nbw() const { return static_cast<idx>(h.size()) - 1; }
  idx block_dim() const { return h.empty() ? 0 : h.front().rows(); }
};

struct BuildOptions {
  /// Interaction cutoff radius (nm); determines NBW = ceil(cutoff/L_cell).
  double cutoff_nm = 0.9;
  /// Transverse momentum phase k*z_period in radians (z-periodic structures).
  double k_transverse = 0.0;
  /// Overlaps below this magnitude are dropped (sparsification).
  double drop_tol = 1e-9;
  /// Diagonal regularization added to S (S_ii = 1 + ridge).  Diffuse shells
  /// of the 3SP set are nearly linearly dependent across bonded atoms; the
  /// ridge keeps the truncated Gram matrix safely positive definite, the
  /// same role as CP2K's overlap filtering thresholds.
  double overlap_ridge = 0.02;
};

/// Assemble the Gaussian-basis blocks for one transport cell of `structure`.
LeadBlocks build_lead_blocks(const lattice::Structure& structure,
                             const BasisLibrary& basis,
                             const BuildOptions& options = {});

/// Nearest-neighbour sp3 tight-binding blocks (orthogonal basis: S = I on
/// the diagonal block, 0 elsewhere).  4 orbitals per atom.
LeadBlocks build_tb_lead_blocks(const lattice::Structure& structure);

/// Device Hamiltonian/overlap assembled as a block *tridiagonal* matrix by
/// folding `fold = max(1, NBW)` physical cells into one supercell.
/// `cell_potential` holds the electrostatic potential (eV) of every physical
/// cell (size num_cells); it enters in the non-orthogonal-basis form
/// H_ij += 0.5*(V_i + V_j)*S_ij.
struct DeviceMatrices {
  BlockTridiag h;
  BlockTridiag s;
  idx fold = 1;          ///< physical cells per supercell
  idx cells = 0;         ///< physical cell count
};

DeviceMatrices assemble_device(const LeadBlocks& lead, idx num_cells,
                               const std::vector<double>& cell_potential);

/// Folded (block-tridiagonal) lead matrices: onsite and coupling blocks of
/// the supercell representation, used by the OBC solvers.
struct FoldedLead {
  CMatrix h00, h01;  ///< onsite / coupling Hamiltonian blocks
  CMatrix s00, s01;  ///< onsite / coupling overlap blocks
};

FoldedLead fold_lead(const LeadBlocks& lead);

/// Atom index (within the physical cell) of every orbital, for mapping
/// orbital-resolved observables back onto atoms (Fig. 10 maps).
std::vector<idx> orbital_to_atom(const lattice::Structure& structure,
                                 const BasisLibrary& basis);

}  // namespace omenx::dft
