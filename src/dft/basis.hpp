// Localized contracted-Gaussian basis sets, standing in for CP2K's 3SP.
//
// Each species carries a list of shells; a shell is an angular momentum
// (s or p), a Gaussian exponent, and an on-site energy.  Si uses a 3SP set
// (3 s-shells + 3 p-shells = 12 orbitals/atom), matching the orbital count
// implied by the paper (N_SS = 665856 for 55488 atoms).
//
// The Hamiltonian is built with the Wolfsberg-Helmholz (extended-Hueckel)
// prescription H_ij = 0.5*K*(E_i+E_j)*S_ij on top of *analytic* Gaussian
// overlaps, so H is exactly Hermitian and S is a true Gram matrix (HPD).
// Exchange-correlation functionals enter as parameterizations: HSE06 shifts
// empty-shell energies upward relative to LDA, widening the band gap
// (the effect compared in Fig. 1b); PBE parameterizes the battery species.
#pragma once

#include <vector>

#include "lattice/structure.hpp"
#include "numeric/types.hpp"

namespace omenx::dft {

using numeric::idx;

enum class Functional { kLDA, kPBE, kHSE06 };

enum class AngularMomentum { kS, kP };

struct Shell {
  AngularMomentum l;
  double exponent;  ///< Gaussian exponent alpha in nm^-2
  double energy;    ///< on-site energy in eV
};

/// All shells of one species under one functional.
struct SpeciesBasis {
  std::vector<Shell> shells;

  /// Orbitals contributed: s -> 1, p -> 3 per shell.
  int num_orbitals() const;
};

/// Basis library: species x functional -> shells.
class BasisLibrary {
 public:
  explicit BasisLibrary(Functional functional = Functional::kLDA);

  Functional functional() const noexcept { return functional_; }

  const SpeciesBasis& for_species(lattice::Species s) const;

  /// Wolfsberg-Helmholz proportionality constant.
  double huckel_k() const noexcept { return 1.75; }

 private:
  Functional functional_;
  SpeciesBasis si_, o_, sn_, li_;
};

/// Flattened orbital descriptor: which atom, which shell, which Cartesian
/// p-component (0 for s; 0/1/2 = x/y/z for p).
struct Orbital {
  idx atom;          ///< index within the cell's atom list
  double exponent;   ///< Gaussian exponent
  double energy;     ///< shell on-site energy (eV)
  AngularMomentum l;
  int component;     ///< p-orbital Cartesian direction; 0 for s
};

/// Enumerate all orbitals of a cell's atoms in deterministic order.
std::vector<Orbital> enumerate_orbitals(
    const std::vector<lattice::Atom>& atoms, const BasisLibrary& lib);

}  // namespace omenx::dft
