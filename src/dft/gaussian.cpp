#include "dft/gaussian.hpp"

#include <cmath>

#include "numeric/types.hpp"

namespace omenx::dft {

namespace {
double s00(double a, double b, double r2) {
  const double p = a + b;
  const double mu = a * b / p;
  return std::pow(numeric::kPi / p, 1.5) * std::exp(-mu * r2);
}
}  // namespace

double gaussian_overlap_raw(const Orbital& oa, const lattice::Vec3& ra,
                            const Orbital& ob, const lattice::Vec3& rb) {
  const double a = oa.exponent, b = ob.exponent;
  const double p = a + b;
  const lattice::Vec3 ab = {ra[0] - rb[0], ra[1] - rb[1], ra[2] - rb[2]};
  const double r2 = ab[0] * ab[0] + ab[1] * ab[1] + ab[2] * ab[2];
  const double base = s00(a, b, r2);
  // P - A = (b/p)(B - A); P - B = (a/p)(A - B).
  auto pa = [&](int i) { return -(b / p) * ab[i]; };
  auto pb = [&](int i) { return (a / p) * ab[i]; };

  const bool a_is_p = oa.l == AngularMomentum::kP;
  const bool b_is_p = ob.l == AngularMomentum::kP;
  if (!a_is_p && !b_is_p) return base;
  if (a_is_p && !b_is_p) return pa(oa.component) * base;
  if (!a_is_p && b_is_p) return pb(ob.component) * base;
  const double delta = oa.component == ob.component ? 1.0 / (2.0 * p) : 0.0;
  return (pa(oa.component) * pb(ob.component) + delta) * base;
}

double gaussian_norm(const Orbital& o) {
  // Self overlap with identical center: r2 = 0.
  const double a = o.exponent;
  const double p = 2.0 * a;
  const double base = std::pow(numeric::kPi / p, 1.5);
  const double self =
      o.l == AngularMomentum::kS ? base : base / (2.0 * p);
  return 1.0 / std::sqrt(self);
}

double gaussian_overlap(const Orbital& oa, const lattice::Vec3& ra,
                        const Orbital& ob, const lattice::Vec3& rb) {
  return gaussian_norm(oa) * gaussian_norm(ob) *
         gaussian_overlap_raw(oa, ra, ob, rb);
}

}  // namespace omenx::dft
