#include "dft/basis.hpp"

#include <stdexcept>

namespace omenx::dft {

int SpeciesBasis::num_orbitals() const {
  int n = 0;
  for (const auto& sh : shells) n += sh.l == AngularMomentum::kS ? 1 : 3;
  return n;
}

namespace {

// Si 3SP: exponents span diffuse -> tight (nm^-2); energies in eV relative
// to the vacuum-ish zero used throughout.  The LDA set underestimates the
// gap; HSE06 lifts the higher (conduction-dominant) shells, mimicking the
// hybrid-functional gap opening seen in Fig. 1(b).
SpeciesBasis make_si(Functional f) {
  const double hse_shift = f == Functional::kHSE06 ? 0.65 : 0.0;
  SpeciesBasis b;
  // Exponents are spread by ~4-5x between shells so that same-center shells
  // remain well conditioned (the Gram matrix stays safely positive definite
  // after the interaction cutoff is applied).
  b.shells = {
      {AngularMomentum::kS, 22.0, -13.5},
      {AngularMomentum::kS, 80.0, -10.0},
      {AngularMomentum::kS, 300.0, -7.0 + hse_shift},
      {AngularMomentum::kP, 24.0, -8.5},
      {AngularMomentum::kP, 90.0, -5.5 + hse_shift},
      {AngularMomentum::kP, 320.0, -3.0 + 1.6 * hse_shift},
  };
  return b;
}

SpeciesBasis make_o(Functional) {
  SpeciesBasis b;
  b.shells = {
      {AngularMomentum::kS, 45.0, -16.0},
      {AngularMomentum::kP, 50.0, -9.0},
  };
  return b;
}

SpeciesBasis make_sn(Functional) {
  SpeciesBasis b;
  b.shells = {
      {AngularMomentum::kS, 24.0, -11.0},
      {AngularMomentum::kP, 28.0, -6.0},
  };
  return b;
}

SpeciesBasis make_li(Functional) {
  SpeciesBasis b;
  b.shells = {
      {AngularMomentum::kS, 18.0, -5.4},
  };
  return b;
}

}  // namespace

BasisLibrary::BasisLibrary(Functional functional)
    : functional_(functional),
      si_(make_si(functional)),
      o_(make_o(functional)),
      sn_(make_sn(functional)),
      li_(make_li(functional)) {}

const SpeciesBasis& BasisLibrary::for_species(lattice::Species s) const {
  switch (s) {
    case lattice::Species::kSi:
      return si_;
    case lattice::Species::kO:
      return o_;
    case lattice::Species::kSn:
      return sn_;
    case lattice::Species::kLi:
      return li_;
  }
  throw std::invalid_argument("BasisLibrary: unknown species");
}

std::vector<Orbital> enumerate_orbitals(
    const std::vector<lattice::Atom>& atoms, const BasisLibrary& lib) {
  std::vector<Orbital> out;
  for (idx a = 0; a < static_cast<idx>(atoms.size()); ++a) {
    const auto& basis = lib.for_species(atoms[static_cast<std::size_t>(a)].species);
    for (const auto& sh : basis.shells) {
      if (sh.l == AngularMomentum::kS) {
        out.push_back({a, sh.exponent, sh.energy, sh.l, 0});
      } else {
        for (int c = 0; c < 3; ++c)
          out.push_back({a, sh.exponent, sh.energy, sh.l, c});
      }
    }
  }
  return out;
}

}  // namespace omenx::dft
