// Full-machine scheduling / performance models regenerating the paper's
// evaluation figures at Titan and Piz Daint scale.
//
// Calibration constants come from quantities the paper reports directly:
//   * 241 TFLOPs per energy point (228 after the zhesv tuning), Section 5E;
//   * ~85 s per energy point per 4-node group (Tables II/III);
//   * 30 s SplitSolve base time on 2 GPUs, +10 s per recursive spike step
//     (Section 3C / Fig. 7);
//   * FEAST+MUMPS ~30 min per energy point on 16 nodes (Section 5C).
// Everything else (allocation, makespans, efficiencies, PFlop/s) is derived
// through the same scheduler logic the live code uses.
#pragma once

#include <vector>

#include "numeric/types.hpp"
#include "perf/machine.hpp"

namespace omenx::perf {

using numeric::idx;

// ---------------------------------------------------------------- Fig. 7 --
struct SplitSolveScalingModel {
  double base_time_s = 30.0;       ///< 2-GPU (1 partition) time, weak scaling
  double spike_step_time_s = 10.0; ///< per recursive merge step
  int gpus_per_partition = 2;

  /// Weak scaling: time on `gpus` with constant atoms/GPU.
  double weak_time(int gpus) const;
  double weak_efficiency(int gpus) const { return base_time_s / weak_time(gpus); }

  /// Strong scaling: fixed problem that saturates 2 GPUs.
  double strong_time(int gpus, double two_gpu_time_s = 120.0) const;
  double strong_efficiency(int gpus, double two_gpu_time_s = 120.0) const;
};

// ---------------------------------------------------------------- Fig. 8 --
/// Model times (seconds) for the three OBC+solver combinations at one
/// energy point of a paper-scale structure on `nodes` hybrid nodes.
struct SolverComparisonModel {
  MachineSpec machine = MachineSpec::titan();
  double cpu_efficiency = 0.55;  ///< fraction of peak for dense CPU kernels
  double gpu_efficiency = 0.60;  ///< fraction of peak for zgemm/zgesv chains
  double mumps_efficiency = 0.08;///< sparse multifrontal on DFT-dense blocks

  struct Times {
    double obc_s;
    double solve_s;
    double total() const { return obc_s + solve_s; }
  };

  /// nb: folded supercell count; s: supercell size; NBW enters via degree.
  Times shift_invert_mumps(idx nb, idx s, idx degree, int nodes) const;
  Times feast_mumps(idx nb, idx s, idx degree, int nodes) const;
  Times feast_splitsolve(idx nb, idx s, idx degree, int nodes) const;
};

// ------------------------------------------------- Fig. 11 / Tables II-III --
struct OmenRunModel {
  MachineSpec machine = MachineSpec::titan();
  int nodes_per_group = 4;          ///< spatial domain decomposition width
  double time_per_energy_s = 85.0;  ///< per group, UTBFET 23040 atoms
  double setup_time_s = 25.0;       ///< broadcast + assembly overhead
  double tflops_per_energy = 241.0; ///< 228 after the zhesv tuning
  int num_k = 21;

  struct StrongPoint {
    int nodes;
    double time_s;
    double efficiency;    ///< vs. the smallest-node run
    double pflops;
  };

  /// Energy counts per k point summing to ~59908, matching Section 5D
  /// ("varies from 2650 up to 3050").
  std::vector<idx> energies_per_k(idx total = 59908) const;

  /// Strong scaling over the node counts of Table III.
  std::vector<StrongPoint> strong_scaling(const std::vector<int>& nodes) const;

  struct WeakPoint {
    int nodes;
    double avg_e_per_group;
    double time_s;
    double time_per_energy;
  };

  /// Weak scaling (Table II): the energy grid is auto-generated, so the
  /// per-group energy count jitters between ~12.9 and ~14.1.
  std::vector<WeakPoint> weak_scaling(const std::vector<int>& nodes) const;
};

}  // namespace omenx::perf
