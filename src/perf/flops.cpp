#include "perf/flops.hpp"

#include <cmath>

namespace omenx::perf {

namespace {
std::uint64_t u(double x) { return static_cast<std::uint64_t>(x); }
}  // namespace

std::uint64_t gemm_flops(idx m, idx n, idx k) {
  return 8ull * static_cast<std::uint64_t>(m) * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(k);
}

std::uint64_t lu_flops(idx n) {
  return u(8.0 / 3.0 * static_cast<double>(n) * static_cast<double>(n) *
           static_cast<double>(n));
}

std::uint64_t lu_solve_flops(idx n, idx nrhs) {
  return 8ull * static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(n) *
         static_cast<std::uint64_t>(nrhs);
}

std::uint64_t splitsolve_preprocess_flops(idx nb, idx s) {
  // Per sweep and per block: GEMM(s,s,s) for the fold update, LU(s),
  // solve(s, s), and GEMM(s,s,s) for the Q accumulation.  Two sweeps
  // (first + last column).
  const std::uint64_t per_block =
      gemm_flops(s, s, s) + lu_flops(s) + lu_solve_flops(s, s) +
      gemm_flops(s, s, s);
  return 2ull * static_cast<std::uint64_t>(nb) * per_block;
}

std::uint64_t splitsolve_spike_flops(idx nb, idx s, int partitions) {
  if (partitions <= 1) return 0;
  const idx ni = partitions - 1;
  // Spike products V/W: two GEMM(n_j*s, s, s) per interior partition edge,
  // approximated with the average partition height nb/partitions.
  const idx rows = (nb / partitions) * s;
  const std::uint64_t spikes =
      2ull * static_cast<std::uint64_t>(ni) * gemm_flops(rows, s, s);
  // Reduced interface solve: block tridiagonal with 2s blocks, ni rows.
  const std::uint64_t reduced = block_lu_flops(ni, 2 * s, 2 * s);
  return spikes + reduced;
}

std::uint64_t splitsolve_postprocess_flops(idx nb, idx s, idx nrhs) {
  const idx n = nb * s;
  // y = Q b' and x = Q (b' + z): two (n x 2s) * (2s x nrhs) products;
  // R build and solve on 2s.
  return 2ull * gemm_flops(n, nrhs, 2 * s) + gemm_flops(2 * s, 2 * s, s) * 2ull +
         lu_flops(2 * s) + lu_solve_flops(2 * s, nrhs);
}

std::uint64_t block_lu_flops(idx nb, idx s, idx nrhs) {
  // Factor: per block, one LU(s), one triangular solve with s RHS for L_i,
  // one GEMM(s,s,s).  Solve: forward+backward per block, 2 GEMM(s, nrhs, s).
  const std::uint64_t factor =
      static_cast<std::uint64_t>(nb) *
      (lu_flops(s) + lu_solve_flops(s, s) + gemm_flops(s, s, s));
  const std::uint64_t solve = static_cast<std::uint64_t>(nb) * 2ull *
                              gemm_flops(s, nrhs, s);
  return factor + solve;
}

std::uint64_t feast_flops(idx s, idx degree, idx np, idx subspace,
                          idx iterations) {
  // Each contour point: LU of the s x s polynomial + solve with `subspace`
  // RHS + Horner assembly (degree GEMM-free scalings, negligible).  Two
  // circles => 2*np points.  Rayleigh-Ritz: QR of (degree*s x subspace) and
  // a subspace^3 reduced eigensolve.
  const std::uint64_t per_point = lu_flops(s) + lu_solve_flops(s, subspace);
  const idx nbc = degree * s;
  const std::uint64_t rr =
      u(16.0 / 3.0 * static_cast<double>(subspace) * subspace *
        (3.0 * static_cast<double>(nbc) - subspace)) +
      25ull * static_cast<std::uint64_t>(subspace) * subspace * subspace;
  return iterations * (2ull * np * per_point + rr);
}

std::uint64_t shift_invert_flops(idx nbc) {
  // LU of the shifted pencil, a full multi-RHS solve, and a dense
  // nonsymmetric eigensolve with vectors (zggev-class, ~55 n^3).
  return lu_flops(nbc) + lu_solve_flops(nbc, nbc) +
         55ull * static_cast<std::uint64_t>(nbc) * nbc * nbc;
}

}  // namespace omenx::perf
