#include "perf/scaling.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "omen/scheduler.hpp"
#include "perf/flops.hpp"

namespace omenx::perf {

// ---------------------------------------------------------------- Fig. 7 --
namespace {
int recursion_steps(int partitions) {
  int steps = 0;
  while ((1 << steps) < partitions) ++steps;
  return steps;
}
}  // namespace

double SplitSolveScalingModel::weak_time(int gpus) const {
  if (gpus < gpus_per_partition)
    throw std::invalid_argument("weak_time: need at least one partition");
  const int partitions = gpus / gpus_per_partition;
  return base_time_s +
         spike_step_time_s * static_cast<double>(recursion_steps(partitions));
}

double SplitSolveScalingModel::strong_time(int gpus,
                                           double two_gpu_time_s) const {
  const int partitions = std::max(1, gpus / gpus_per_partition);
  // Compute shrinks with the partition count; the spikes grow with its log.
  return two_gpu_time_s / static_cast<double>(partitions) +
         spike_step_time_s * static_cast<double>(recursion_steps(partitions));
}

double SplitSolveScalingModel::strong_efficiency(int gpus,
                                                 double two_gpu_time_s) const {
  const double t2 = strong_time(gpus_per_partition, two_gpu_time_s);
  const double tg = strong_time(gpus, two_gpu_time_s);
  return t2 / (tg * static_cast<double>(gpus) /
               static_cast<double>(gpus_per_partition));
}

// ---------------------------------------------------------------- Fig. 8 --
namespace {
double seconds(double flops, double gflops_capacity, double efficiency) {
  return flops / (gflops_capacity * 1e9 * efficiency);
}
}  // namespace

SolverComparisonModel::Times SolverComparisonModel::shift_invert_mumps(
    idx nb, idx s, idx degree, int nodes) const {
  // Shift-and-invert works on the full N_BC companion pencil, densely, and
  // parallelizes poorly: only one node's CPUs contribute effectively.
  const idx nbc = degree * s;
  const double obc_flops = static_cast<double>(shift_invert_flops(nbc));
  const double obc_s = seconds(obc_flops, machine.cpu_gflops, cpu_efficiency);
  const double solve_flops =
      static_cast<double>(block_lu_flops(nb, s, 2 * s));
  const double solve_s = seconds(solve_flops,
                                 machine.cpu_gflops * nodes, mumps_efficiency);
  return {obc_s, solve_s};
}

namespace {
// Production right-hand-side width: the injection carries one column per
// propagating (plus slow evanescent) mode — a few hundred, independent of s.
constexpr numeric::idx kInjectionColumns = 256;
}  // namespace

SolverComparisonModel::Times SolverComparisonModel::feast_mumps(
    idx nb, idx s, idx degree, int nodes) const {
  // FEAST's contour points parallelize across the group's CPUs; only the
  // m slow modes inside the annulus are probed (subspace << N_BC).
  const double obc_flops = static_cast<double>(
      feast_flops(s, degree, /*np=*/16, /*subspace=*/s / 4, /*iterations=*/2));
  const double obc_s =
      seconds(obc_flops, machine.cpu_gflops * nodes, cpu_efficiency);
  const double solve_flops =
      static_cast<double>(block_lu_flops(nb, s, kInjectionColumns));
  const double solve_s = seconds(solve_flops,
                                 machine.cpu_gflops * nodes, mumps_efficiency);
  // OBC overlaps with the (dominant) solve.
  return {std::max(0.0, obc_s - solve_s), solve_s};
}

SolverComparisonModel::Times SolverComparisonModel::feast_splitsolve(
    idx nb, idx s, idx degree, int nodes) const {
  const double pre = static_cast<double>(splitsolve_preprocess_flops(nb, s)) +
                     static_cast<double>(splitsolve_spike_flops(nb, s, nodes));
  const double post = static_cast<double>(
      splitsolve_postprocess_flops(nb, s, kInjectionColumns));
  const double solve_s =
      seconds(pre + post, machine.gpu_gflops * nodes, gpu_efficiency);
  const double obc_flops = static_cast<double>(
      feast_flops(s, degree, /*np=*/16, /*subspace=*/s / 4, /*iterations=*/2));
  const double obc_s =
      seconds(obc_flops, machine.cpu_gflops * nodes, cpu_efficiency);
  // FEAST on CPUs is hidden behind Step 1 on GPUs (Section 3C): only the
  // non-overlapped excess is visible.
  return {std::max(0.0, obc_s - solve_s), solve_s};
}

// ------------------------------------------------- Fig. 11 / Tables II-III --
std::vector<idx> OmenRunModel::energies_per_k(idx total) const {
  // Deterministic spread in [2650, 3050]: higher-symmetry k points get more
  // band crossings hence more grid points; renormalized to `total`.
  std::vector<idx> e(static_cast<std::size_t>(num_k));
  double sum = 0.0;
  std::vector<double> raw(static_cast<std::size_t>(num_k));
  for (int k = 0; k < num_k; ++k) {
    const double x = static_cast<double>(k) / static_cast<double>(num_k - 1);
    raw[static_cast<std::size_t>(k)] =
        2650.0 + 400.0 * 0.5 * (1.0 + std::cos(2.0 * 3.14159265 * x));
    sum += raw[static_cast<std::size_t>(k)];
  }
  idx assigned = 0;
  for (int k = 0; k < num_k; ++k) {
    e[static_cast<std::size_t>(k)] = static_cast<idx>(
        std::floor(raw[static_cast<std::size_t>(k)] / sum *
                   static_cast<double>(total)));
    assigned += e[static_cast<std::size_t>(k)];
  }
  for (int k = 0; assigned < total; ++k, ++assigned)
    ++e[static_cast<std::size_t>(k % num_k)];
  return e;
}

std::vector<OmenRunModel::StrongPoint> OmenRunModel::strong_scaling(
    const std::vector<int>& nodes) const {
  const std::vector<idx> loads = energies_per_k();
  const idx total_e =
      std::accumulate(loads.begin(), loads.end(), idx{0});
  std::vector<StrongPoint> out;
  out.reserve(nodes.size());
  double t_ref = 0.0;
  int n_ref = 0;
  for (const int n : nodes) {
    const int groups = n / nodes_per_group;
    const auto alloc = omen::allocate_groups(loads, groups);
    const double makespan = omen::allocation_makespan(loads, alloc);
    const double time = makespan * time_per_energy_s + setup_time_s;
    if (t_ref == 0.0) {
      t_ref = time;
      n_ref = n;
    }
    const double eff = (t_ref * static_cast<double>(n_ref)) /
                       (time * static_cast<double>(n));
    const double pflops = static_cast<double>(total_e) * tflops_per_energy *
                          1e12 / time / 1e15;
    out.push_back({n, time, eff, pflops});
  }
  return out;
}

std::vector<OmenRunModel::WeakPoint> OmenRunModel::weak_scaling(
    const std::vector<int>& nodes) const {
  std::vector<WeakPoint> out;
  out.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const int n = nodes[i];
    const int groups = n / nodes_per_group;
    // The energy grid is generated from spacing bounds, not point counts:
    // the per-group count lands between ~12.9 and ~14.1 (Table II) with a
    // deterministic, size-dependent remainder.
    const double jitter =
        0.30 * std::sin(1.7 * static_cast<double>(i) + 0.9) +
        0.25 * std::cos(0.31 * std::log2(static_cast<double>(n)));
    const double e_per_group = 13.5 + jitter;
    // Makespan: the group with the partially filled last point dominates.
    const double imbalance =
        0.3 * (std::ceil(e_per_group) - e_per_group) * time_per_energy_s;
    const double time =
        e_per_group * time_per_energy_s + setup_time_s + imbalance;
    out.push_back({n, e_per_group, time, time / e_per_group});
  }
  return out;
}

}  // namespace omenx::perf
