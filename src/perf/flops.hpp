// Deterministic FLOP counts for the transport kernels.
//
// "The number of floating point operations involved in SplitSolve is
// deterministic and can be accurately estimated" (Section 5B).  These
// analytic counts are validated against the instrumented kernels
// (numeric::FlopCounter) in the tests, then reused at paper scale where
// direct measurement is impossible.
#pragma once

#include <cstdint>

#include "numeric/types.hpp"

namespace omenx::perf {

using numeric::idx;

/// Complex GEMM: 8*m*n*k real flops.
std::uint64_t gemm_flops(idx m, idx n, idx k);

/// Complex LU factorization: (8/3) n^3.
std::uint64_t lu_flops(idx n);

/// Complex LU triangular solve with nrhs columns: 8 n^2 nrhs.
std::uint64_t lu_solve_flops(idx n, idx nrhs);

/// Algorithm 1 (both block columns of A^{-1}): per block row, two GEMMs,
/// one LU factorization, one back substitution, for each of the two sweeps.
std::uint64_t splitsolve_preprocess_flops(idx nb, idx s);

/// Spike overhead on top of preprocessing for p partitions: the extra
/// V/W products and the reduced interface solve.
std::uint64_t splitsolve_spike_flops(idx nb, idx s, int partitions);

/// Steps 2-4 (SMW postprocessing) with nrhs right-hand-side columns.
std::uint64_t splitsolve_postprocess_flops(idx nb, idx s, idx nrhs);

/// Block-tridiagonal direct LU (the MUMPS stand-in): factorization plus a
/// full solve for nrhs columns.
std::uint64_t block_lu_flops(idx nb, idx s, idx nrhs);

/// FEAST OBC cost: np contour points, each one s-sized polynomial LU solve
/// with `subspace` columns, plus the Rayleigh-Ritz reduction.
std::uint64_t feast_flops(idx s, idx degree, idx np, idx subspace,
                          idx iterations);

/// Shift-and-invert baseline on the N_BC companion pencil: one LU of N_BC
/// plus a dense QR eigensolve (~25 n^3 with our Hessenberg-QR iteration).
std::uint64_t shift_invert_flops(idx nbc);

}  // namespace omenx::perf
