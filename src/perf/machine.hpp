// Machine models for the two systems of Table I.
//
// These constants parameterize the full-scale scheduling, performance, and
// power models that regenerate Tables II/III and Figs. 7/11/12.  Measured
// laptop-scale runs exercise the same algorithms; the machine model is the
// documented substitution for Titan / Piz Daint access (see DESIGN.md).
#pragma once

#include <string>

namespace omenx::perf {

struct MachineSpec {
  std::string name;
  int hybrid_nodes;        ///< total nodes, each with 1 GPU
  int gpus;
  double cpu_gflops;       ///< per-node CPU peak (DP GFlop/s)
  double gpu_gflops;       ///< per-node GPU peak (DP GFlop/s), K20X = 1311
  double gpu_memory_gb;    ///< K20X: 6 GB
  int cpu_cores_per_node;

  // Power model parameters (machine level).
  double idle_power_mw;        ///< baseline draw incl. cooling/line losses
  double gpu_active_watts;     ///< per-GPU draw when computing
  double gpu_idle_watts;       ///< per-GPU draw when idle
  double gpu_transfer_watts;   ///< per-GPU draw during H2D/D2H phases
  double cpu_active_watts;     ///< per-node CPU draw during FEAST
  double facility_overhead;    ///< multiplier for XDP pumps, blowers, losses

  /// Sustained DP throughput (GFlop/s) of a *batched* GEMM phase: many
  /// independent same-shape multiplies issued together, one per lane.  For
  /// the host model this is measured once per process at first use; for the
  /// Table I machines it is the device peak (batching is how the paper
  /// saturates the K20X).  solvers::auto_algorithm credits kBatchable
  /// backends with the ratio batched_gemm_gflops / cpu_gflops when the
  /// caller plans batched execution.
  double batched_gemm_gflops;

  // Offload model parameters, used by estimate_batch_seconds to place a
  // shape bucket on host lanes or device streams.
  double pcie_gbps;              ///< host<->device link bandwidth (GB/s)
  double kernel_launch_seconds;  ///< per-kernel enqueue/launch overhead
  double host_lane_gflops;       ///< one CPU lane running the scalar kernels
  double device_stream_gflops;   ///< one device stream (K20X: its DP peak)

  /// Cray-XK7 Titan (ORNL): 18688 nodes, AMD Opteron 6274 + Tesla K20X.
  static MachineSpec titan();

  /// Cray-XC30 Piz Daint (CSCS): 5272 nodes, Xeon E5-2670 + Tesla K20X.
  static MachineSpec piz_daint();

  /// The machine this process runs on, as seen by the solver cost model
  /// (solvers::auto_algorithm): one node whose "accelerators" are the
  /// emulated in-process devices, so CPU and GPU throughput coincide.
  /// Measured once and cached in a thread-safe static — every call returns
  /// the same instance, so within a process the kAuto choice stays a pure
  /// function of the problem shape (all emulated ranks share the process
  /// and therefore the measurement).
  static const MachineSpec& host();

  /// Total DP peak in PFlop/s over `nodes` nodes.
  double peak_pflops(int nodes) const {
    return static_cast<double>(nodes) * (cpu_gflops + gpu_gflops) * 1e-6;
  }
};

/// Shape of one (k, E) bucket item in the engine's device phase: a
/// block-tridiagonal system of `nb` diagonal blocks of size `s` with
/// `nrhs` right-hand-side columns (the injection states).
struct BatchShape {
  long long nb = 0;
  long long s = 0;
  long long nrhs = 0;
};

/// Host-vs-device crossover estimate for one batch of `n` same-shape items.
struct BatchEstimate {
  double host_seconds = 0.0;
  double device_seconds = 0.0;
  bool device_wins() const noexcept { return device_seconds < host_seconds; }
};

/// Wall-time model for a batched block-LU device phase of `n` items of
/// `shape`, on `host_lanes` CPU lanes versus `devices` accelerator streams
/// of `spec`:
///
///   host   = ceil(n / lanes)   * flops(shape) / host_lane_gflops
///   device = ceil(n / devices) * flops(shape) / device_stream_gflops
///            + n * kernel_launch_seconds          (in-order enqueues)
///            + ceil(n / devices) * bytes(shape) / pcie_gbps
///
/// flops(shape) is the analytic block-LU count (perf/flops.hpp); bytes is
/// the operand footprint that crosses the link per item (system blocks +
/// self-energies in, solution out).  `devices == 0` returns +inf device
/// time, so the host always wins without a pool.  The engine queries this
/// with MachineSpec::host() per shape bucket ("auto" backend); the Table I
/// specs answer the paper-scale question of which buckets deserve the K20X.
BatchEstimate estimate_batch_seconds(const MachineSpec& spec,
                                     const BatchShape& shape, int n,
                                     int host_lanes, int devices);

}  // namespace omenx::perf
