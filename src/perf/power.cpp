#include "perf/power.hpp"

#include <cmath>

namespace omenx::perf {

std::vector<PhaseSlice> splitsolve_phase_slices() {
  // Proportions follow the nvprof trace of Fig. 12(b): the RGF sweeps
  // dominate; transfers overlap partially with compute; a short window
  // waits on the boundary conditions before the SMW postprocessing.
  return {
      {"H-to-D", 0.05, 0.45},
      {"P1-P2", 0.42, 1.00},
      {"P3-P4", 0.34, 0.97},
      {"OBC-wait", 0.04, 0.15},
      {"SMW-post", 0.10, 0.85},
      {"D-to-H", 0.05, 0.50},
  };
}

PowerProfile model_power_profile(const PowerModelConfig& config) {
  const MachineSpec& m = config.machine;
  const auto slices = splitsolve_phase_slices();
  const double point_time =
      config.run_time_s / static_cast<double>(config.energy_points_per_group);

  PowerProfile out;
  double sum_machine = 0.0, sum_gpu = 0.0;
  std::size_t n = 0;
  for (double t = 0.0; t < config.run_time_s; t += config.sample_interval_s) {
    // Locate the phase within the current energy point.
    const double local = std::fmod(t, point_time) / point_time;
    double acc = 0.0;
    const PhaseSlice* phase = &slices.back();
    for (const auto& sl : slices) {
      acc += sl.fraction;
      if (local < acc) {
        phase = &sl;
        break;
      }
    }
    const double gpu_w =
        phase->name == "H-to-D" || phase->name == "D-to-H"
            ? m.gpu_transfer_watts +
                  phase->gpu_utilization * (m.gpu_active_watts -
                                            m.gpu_transfer_watts)
            : m.gpu_idle_watts +
                  phase->gpu_utilization * (m.gpu_active_watts -
                                            m.gpu_idle_watts);
    const double nodes = static_cast<double>(config.active_nodes);
    const double machine_w =
        (m.idle_power_mw * 1e6 + nodes * gpu_w +
         nodes * m.cpu_active_watts * (phase->name == "OBC-wait" ? 1.0 : 0.75)) *
        m.facility_overhead;
    out.samples.push_back({t, machine_w * 1e-6, gpu_w, phase->name});
    sum_machine += machine_w * 1e-6;
    sum_gpu += gpu_w;
    out.peak_machine_mw = std::max(out.peak_machine_mw, machine_w * 1e-6);
    ++n;
  }
  out.avg_machine_mw = sum_machine / static_cast<double>(n);
  out.avg_gpu_watts = sum_gpu / static_cast<double>(n);
  const double avg_flops = config.total_pflops * 1e15;
  out.machine_mflops_per_watt = avg_flops / (out.avg_machine_mw * 1e6) / 1e6;
  out.gpu_mflops_per_watt =
      avg_flops / (static_cast<double>(config.active_nodes) *
                   out.avg_gpu_watts) /
      1e6;
  return out;
}

}  // namespace omenx::perf
