// Power-profile model for Fig. 12.
//
// Reconstructs the machine-level and GPU-level power traces of the
// 15 PFlop/s production run: per energy point the GPU walks through the
// SplitSolve phases (H-to-D, P1-P2, P3-P4, idle-while-OBC-finishes, SMW
// postprocess, D-to-H), each with its own draw; the machine level adds CPUs,
// cooling (XDP pumps, cabinet blowers) and line losses.  Averages are
// calibrated against the paper: 7.6 MW machine / 146 W GPU / 1975 and 5396
// MFLOPS/W.
#pragma once

#include <string>
#include <vector>

#include "perf/machine.hpp"

namespace omenx::perf {

struct PowerSample {
  double time_s;
  double machine_mw;
  double gpu_watts;     ///< per-GPU draw
  std::string phase;
};

struct PowerProfile {
  std::vector<PowerSample> samples;
  double avg_machine_mw = 0.0;
  double peak_machine_mw = 0.0;
  double avg_gpu_watts = 0.0;
  double machine_mflops_per_watt = 0.0;
  double gpu_mflops_per_watt = 0.0;
};

struct PowerModelConfig {
  MachineSpec machine = MachineSpec::titan();
  int active_nodes = 18564;
  double run_time_s = 912.5;
  int energy_points_per_group = 13;
  double total_pflops = 15.01;      ///< sustained rate of the modeled run
  double sample_interval_s = 1.0;
};

/// Generate the Fig. 12(a) traces.
PowerProfile model_power_profile(const PowerModelConfig& config = {});

/// Phase fractions within one energy point (used for the Fig. 12(b)
/// activity timeline): name + fraction of the per-point time + relative GPU
/// utilization in [0, 1].
struct PhaseSlice {
  std::string name;
  double fraction;
  double gpu_utilization;
};
std::vector<PhaseSlice> splitsolve_phase_slices();

}  // namespace omenx::perf
