#include "perf/machine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "numeric/blas.hpp"
#include "numeric/matrix.hpp"
#include "perf/flops.hpp"

namespace omenx::perf {

namespace {

/// One-shot calibration of the host's batched-GEMM throughput: every lane
/// (plain std::threads — deliberately not the process thread pool, so a
/// first call from a pool worker cannot deadlock the calibration) runs the
/// packed serial GEMM kernel on its own operands, the way host-backend
/// lanes execute a batch.  The result is clamped to [1x, 16x] of the
/// modeled scalar throughput: the cost model needs a sane ratio, not a
/// microbenchmark-grade number.
double measure_batched_gemm_gflops(double scalar_gflops) {
  using clock = std::chrono::steady_clock;
  const numeric::idx s = 64;  // below the kernel's internal-parallel cutoff
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned lanes = std::min(hw, 16u);
  const int reps = 4;
  std::vector<std::thread> threads;
  threads.reserve(lanes);
  const auto start = clock::now();
  for (unsigned t = 0; t < lanes; ++t) {
    threads.emplace_back([s, t] {
      numeric::set_thread_parallelism(false);
      const numeric::CMatrix a = numeric::random_cmatrix(s, s, 11u + t);
      const numeric::CMatrix b = numeric::random_cmatrix(s, s, 23u + t);
      numeric::CMatrix c(s, s);
      for (int r = 0; r < reps; ++r)
        numeric::gemm(a, b, c, numeric::cplx{1.0}, numeric::cplx{0.0});
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(clock::now() - start).count();
  const double ds = static_cast<double>(s);
  const double flops =
      8.0 * ds * ds * ds * static_cast<double>(reps) * lanes;
  const double measured = flops / std::max(seconds, 1e-9) * 1e-9;
  return std::clamp(measured, scalar_gflops, 16.0 * scalar_gflops);
}

}  // namespace

MachineSpec MachineSpec::titan() {
  MachineSpec m;
  m.name = "Cray-XK7 Titan";
  m.hybrid_nodes = 18688;
  m.gpus = 18688;
  m.cpu_gflops = 134.4;   // Opteron 6274 node (Table I)
  m.gpu_gflops = 1311.0;  // Tesla K20X
  m.gpu_memory_gb = 6.0;
  m.cpu_cores_per_node = 16;
  // Calibrated to the Fig. 12 measurements: 7.6 MW average at 15 PFlop/s
  // with 146 W per GPU, peak 8.8 MW.
  m.idle_power_mw = 3.0;       // pumps, blowers, line losses, idle silicon
  m.gpu_active_watts = 160.0;
  m.gpu_idle_watts = 25.0;
  m.gpu_transfer_watts = 80.0;
  m.cpu_active_watts = 95.0;
  m.facility_overhead = 1.08;
  m.batched_gemm_gflops = m.gpu_gflops;  // batching saturates the K20X
  m.pcie_gbps = 6.0;  // PCIe 2.0 x16 effective (Gemini-era host interface)
  m.kernel_launch_seconds = 10e-6;
  m.host_lane_gflops = m.cpu_gflops / m.cpu_cores_per_node;
  m.device_stream_gflops = m.gpu_gflops;
  return m;
}

MachineSpec MachineSpec::piz_daint() {
  MachineSpec m;
  m.name = "Cray-XC30 Piz Daint";
  m.hybrid_nodes = 5272;
  m.gpus = 5272;
  m.cpu_gflops = 166.4;  // Xeon E5-2670 node (Table I)
  m.gpu_gflops = 1311.0;
  m.gpu_memory_gb = 6.0;
  m.cpu_cores_per_node = 8;
  m.idle_power_mw = 0.9;
  m.gpu_active_watts = 180.0;
  m.gpu_idle_watts = 25.0;
  m.gpu_transfer_watts = 90.0;
  m.cpu_active_watts = 90.0;
  m.facility_overhead = 1.06;
  m.batched_gemm_gflops = m.gpu_gflops;  // batching saturates the K20X
  m.pcie_gbps = 6.0;
  m.kernel_launch_seconds = 10e-6;
  m.host_lane_gflops = m.cpu_gflops / m.cpu_cores_per_node;
  m.device_stream_gflops = m.gpu_gflops;
  return m;
}

const MachineSpec& MachineSpec::host() {
  static const MachineSpec cached = [] {
    MachineSpec m;
    m.name = "emulated host node";
    m.hybrid_nodes = 1;
    m.gpus = 2;             // default DevicePool size in the examples
    m.cpu_gflops = 40.0;    // laptop-scale DP throughput of the packed GEMM
    m.gpu_gflops = 40.0;    // emulated devices are host threads
    m.gpu_memory_gb = 6.0;  // K20X-sized capacity kept for the allocator
    m.cpu_cores_per_node = 8;
    m.idle_power_mw = 0.0;
    m.gpu_active_watts = 0.0;
    m.gpu_idle_watts = 0.0;
    m.gpu_transfer_watts = 0.0;
    m.cpu_active_watts = 45.0;
    m.facility_overhead = 1.0;
    m.batched_gemm_gflops = measure_batched_gemm_gflops(m.cpu_gflops);
    // Emulated devices are host threads running the same scalar kernels, so
    // one device stream sustains exactly one calibrated host lane; the
    // emulated "transfers" are byte accounting with no data motion, so the
    // link is effectively free and only the per-kernel enqueue cost (a
    // mutex + promise handoff, ~tens of microseconds) distinguishes an
    // offloaded bucket from a host one.  This is what makes the host
    // crossover honest: device wins only when it has more streams than the
    // host has free lanes.
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned lanes = std::min(hw, 16u);
    m.host_lane_gflops = m.batched_gemm_gflops / lanes;
    m.device_stream_gflops = m.host_lane_gflops;
    m.pcie_gbps = 1e9;  // accounting-only transfers cost no wall time
    m.kernel_launch_seconds = 10e-6;
    return m;
  }();
  return cached;
}

BatchEstimate estimate_batch_seconds(const MachineSpec& spec,
                                     const BatchShape& shape, int n,
                                     int host_lanes, int devices) {
  BatchEstimate est;
  if (n <= 0 || shape.nb <= 0 || shape.s <= 0) return est;
  const int lanes = std::max(1, host_lanes);
  const idx nb = static_cast<idx>(shape.nb);
  const idx s = static_cast<idx>(shape.s);
  const idx nrhs = static_cast<idx>(std::max<long long>(1, shape.nrhs));
  const double item_flops =
      static_cast<double>(block_lu_flops(nb, s, nrhs));
  // Operand footprint crossing the link per item: the block-tridiagonal
  // system ((3 nb - 2) blocks) plus two contact self-energies in, the RHS
  // in and the solution out (nb*s x nrhs each), 16 bytes per complex.
  const double ds = static_cast<double>(s);
  const double item_bytes =
      16.0 * ((3.0 * shape.nb - 2.0 + 2.0) * ds * ds +
              2.0 * shape.nb * ds * static_cast<double>(nrhs));
  const double host_rounds = std::ceil(double(n) / double(lanes));
  est.host_seconds =
      host_rounds * item_flops / (spec.host_lane_gflops * 1e9);
  if (devices <= 0) {
    est.device_seconds = std::numeric_limits<double>::infinity();
    return est;
  }
  const double device_rounds = std::ceil(double(n) / double(devices));
  est.device_seconds =
      device_rounds * item_flops / (spec.device_stream_gflops * 1e9) +
      double(n) * spec.kernel_launch_seconds +
      device_rounds * item_bytes / (spec.pcie_gbps * 1e9);
  return est;
}

}  // namespace omenx::perf
