#include "perf/machine.hpp"

namespace omenx::perf {

MachineSpec MachineSpec::titan() {
  MachineSpec m;
  m.name = "Cray-XK7 Titan";
  m.hybrid_nodes = 18688;
  m.gpus = 18688;
  m.cpu_gflops = 134.4;   // Opteron 6274 node (Table I)
  m.gpu_gflops = 1311.0;  // Tesla K20X
  m.gpu_memory_gb = 6.0;
  m.cpu_cores_per_node = 16;
  // Calibrated to the Fig. 12 measurements: 7.6 MW average at 15 PFlop/s
  // with 146 W per GPU, peak 8.8 MW.
  m.idle_power_mw = 3.0;       // pumps, blowers, line losses, idle silicon
  m.gpu_active_watts = 160.0;
  m.gpu_idle_watts = 25.0;
  m.gpu_transfer_watts = 80.0;
  m.cpu_active_watts = 95.0;
  m.facility_overhead = 1.08;
  return m;
}

MachineSpec MachineSpec::piz_daint() {
  MachineSpec m;
  m.name = "Cray-XC30 Piz Daint";
  m.hybrid_nodes = 5272;
  m.gpus = 5272;
  m.cpu_gflops = 166.4;  // Xeon E5-2670 node (Table I)
  m.gpu_gflops = 1311.0;
  m.gpu_memory_gb = 6.0;
  m.cpu_cores_per_node = 8;
  m.idle_power_mw = 0.9;
  m.gpu_active_watts = 180.0;
  m.gpu_idle_watts = 25.0;
  m.gpu_transfer_watts = 90.0;
  m.cpu_active_watts = 90.0;
  m.facility_overhead = 1.06;
  return m;
}

MachineSpec MachineSpec::host() {
  MachineSpec m;
  m.name = "emulated host node";
  m.hybrid_nodes = 1;
  m.gpus = 2;             // default DevicePool size in the examples
  m.cpu_gflops = 40.0;    // laptop-scale DP throughput of the packed GEMM
  m.gpu_gflops = 40.0;    // emulated devices are host threads
  m.gpu_memory_gb = 6.0;  // K20X-sized capacity kept for the allocator
  m.cpu_cores_per_node = 8;
  m.idle_power_mw = 0.0;
  m.gpu_active_watts = 0.0;
  m.gpu_idle_watts = 0.0;
  m.gpu_transfer_watts = 0.0;
  m.cpu_active_watts = 45.0;
  m.facility_overhead = 1.0;
  return m;
}

}  // namespace omenx::perf
