// Binary transfer of Hamiltonian/overlap blocks — the CP2K -> OMEN coupling.
//
// "The coupling between the two packages currently occurs through a transfer
// of binary files" (Section 4).  Only the unique inter-cell blocks are
// stored; OMEN-side ranks load them once and broadcast (see
// scheduler::broadcast_lead_blocks).
#pragma once

#include <string>

#include "dft/hamiltonian.hpp"

namespace omenx::omen {

/// Write the lead blocks to `path`.  Throws std::runtime_error on I/O error.
void write_lead_blocks(const std::string& path, const dft::LeadBlocks& lead);

/// Read lead blocks back.  Validates the magic header and dimensions.
dft::LeadBlocks read_lead_blocks(const std::string& path);

}  // namespace omenx::omen
