#include "omen/io.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace omenx::omen {

namespace {
constexpr std::uint64_t kMagic = 0x4F4D454E58484B53ULL;  // "OMENXHKS"

void write_matrix(std::ofstream& out, const numeric::CMatrix& m) {
  const std::int64_t rows = m.rows(), cols = m.cols();
  out.write(reinterpret_cast<const char*>(&rows), sizeof rows);
  out.write(reinterpret_cast<const char*>(&cols), sizeof cols);
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(sizeof(numeric::cplx) * m.size()));
}

numeric::CMatrix read_matrix(std::ifstream& in) {
  std::int64_t rows = 0, cols = 0;
  in.read(reinterpret_cast<char*>(&rows), sizeof rows);
  in.read(reinterpret_cast<char*>(&cols), sizeof cols);
  if (!in || rows < 0 || cols < 0)
    throw std::runtime_error("read_lead_blocks: corrupt matrix header");
  numeric::CMatrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(sizeof(numeric::cplx) * m.size()));
  if (!in) throw std::runtime_error("read_lead_blocks: truncated matrix data");
  return m;
}
}  // namespace

void write_lead_blocks(const std::string& path, const dft::LeadBlocks& lead) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_lead_blocks: cannot open " + path);
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof kMagic);
  const std::int64_t nblocks = static_cast<std::int64_t>(lead.h.size());
  out.write(reinterpret_cast<const char*>(&nblocks), sizeof nblocks);
  for (const auto& m : lead.h) write_matrix(out, m);
  for (const auto& m : lead.s) write_matrix(out, m);
  if (!out) throw std::runtime_error("write_lead_blocks: write failed");
}

dft::LeadBlocks read_lead_blocks(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_lead_blocks: cannot open " + path);
  std::uint64_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  if (magic != kMagic)
    throw std::runtime_error("read_lead_blocks: bad magic in " + path);
  std::int64_t nblocks = 0;
  in.read(reinterpret_cast<char*>(&nblocks), sizeof nblocks);
  if (!in || nblocks <= 0)
    throw std::runtime_error("read_lead_blocks: corrupt block count");
  dft::LeadBlocks lead;
  lead.h.reserve(static_cast<std::size_t>(nblocks));
  lead.s.reserve(static_cast<std::size_t>(nblocks));
  for (std::int64_t i = 0; i < nblocks; ++i) lead.h.push_back(read_matrix(in));
  for (std::int64_t i = 0; i < nblocks; ++i) lead.s.push_back(read_matrix(in));
  return lead;
}

}  // namespace omenx::omen
