// Multi-level workload distribution (Fig. 9).
//
// OMEN parallelizes over momentum k (almost embarrassingly parallel), then
// energy E, then a 1-D spatial domain decomposition.  Because the energy
// count differs per k point, a *dynamic* allocation of node groups per
// momentum is used to avoid imbalance (Ref. [45]).  The logic is pure and
// shared between the live thread-backed runs and the perf-model machine
// simulation of Tables II/III.
#pragma once

#include <vector>

#include "dft/hamiltonian.hpp"
#include "numeric/types.hpp"
#include "parallel/comm.hpp"

namespace omenx::omen {

using numeric::idx;

/// Allocate `total_groups` node groups to k-points proportionally to their
/// energy counts (largest-remainder rounding; every k gets >= 1 group).
/// total_groups must be >= the number of k points.
std::vector<int> allocate_groups(const std::vector<idx>& energies_per_k,
                                 int total_groups);

/// Makespan (in units of time-per-energy-point) of the allocation: each
/// k-point's energies are distributed round-robin over its groups; the
/// slowest group determines the time.
double allocation_makespan(const std::vector<idx>& energies_per_k,
                           const std::vector<int>& groups_per_k);

/// Parallel efficiency of an allocation vs. the ideal
/// sum(E)/total_groups.
double allocation_efficiency(const std::vector<idx>& energies_per_k,
                             const std::vector<int>& groups_per_k);

/// Rank-side helper mirroring OMEN's input distribution: rank 0 holds the
/// unique H/S blocks (loaded from the CP2K file) and broadcasts them to all
/// ranks of `comm` (MPI_Bcast in the paper).
void broadcast_lead_blocks(parallel::Comm& comm, dft::LeadBlocks& lead);

}  // namespace omenx::omen
