#include "omen/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <thread>

#include "numeric/backend.hpp"
#include "numeric/device_backend.hpp"
#include "omen/scheduler.hpp"
#include "parallel/comm.hpp"
#include "parallel/thread_pool.hpp"
#include "perf/machine.hpp"
#include "solvers/solver.hpp"
#include "solvers/spike.hpp"
#include "transport/batch.hpp"

namespace omenx::omen {

namespace {

using parallel::Comm;

// Engine protocol tags (user tag space).  All queue traffic converges on
// the coordinator through kTagRequest with an any-source recv; requesters
// are identified by Comm::Status, not by per-rank magic tags.
constexpr int kTagRequest = 901;  ///< {kind, arg}: kind 0 = task (arg =
                                  ///< color), kind 1 = fetch (arg = k)
constexpr int kTagAssign = 902;   ///< {ik, ie, stolen}; ik < 0 means done
constexpr int kTagBlocks = 903;   ///< lead-block streams (init + fetch)

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Momentum-level rank layout, computed identically on every rank: which
/// world ranks form which k group, and which k points each group owns.
struct Layout {
  int world = 1;
  int width = 1;  ///< energy-group width (ranks per energy group)
  int num_groups = 1;
  int num_leaders = 0;
  std::vector<int> color_of_rank;
  std::vector<int> group_first_rank;
  std::vector<int> group_size;
  std::vector<std::vector<idx>> owned;  ///< k points per color
  std::vector<idx> e_prefix;            ///< flat-task-index base per k
  /// Real-axis task count per k: within a k's flat range, local indices
  /// ie < n_real[k] are wave-function energy points and ie >= n_real[k]
  /// are Green's-function contour nodes (node index ie - n_real[k]).
  std::vector<idx> n_real;
  idx total_tasks = 0;

  Layout(const SweepRequest& req, int world_size, int width_in)
      : world(world_size), width(std::max(1, width_in)) {
    const int nk = static_cast<int>(req.energies.size());
    e_prefix.assign(static_cast<std::size_t>(nk) + 1, 0);
    n_real.assign(static_cast<std::size_t>(nk), 0);
    std::vector<idx> counts(static_cast<std::size_t>(nk), 0);
    for (int k = 0; k < nk; ++k) {
      const auto sk = static_cast<std::size_t>(k);
      n_real[sk] = static_cast<idx>(req.energies[sk].size());
      counts[sk] = n_real[sk];
      if (!req.gf_nodes.empty())
        counts[sk] += static_cast<idx>(req.gf_nodes[sk].size());
      e_prefix[sk + 1] = e_prefix[sk] + counts[sk];
    }
    total_tasks = e_prefix.back();

    color_of_rank.assign(static_cast<std::size_t>(world), 0);
    if (world >= nk) {
      // One momentum group per k point, sized by the dynamic allocation.
      num_groups = nk;
      const auto per_k = allocate_groups(counts, world);
      owned.resize(static_cast<std::size_t>(nk));
      int r = 0;
      for (int c = 0; c < nk; ++c) {
        group_first_rank.push_back(r);
        group_size.push_back(per_k[static_cast<std::size_t>(c)]);
        owned[static_cast<std::size_t>(c)] = {static_cast<idx>(c)};
        for (int i = 0; i < per_k[static_cast<std::size_t>(c)]; ++i)
          color_of_rank[static_cast<std::size_t>(r++)] = c;
      }
    } else {
      // Fewer ranks than k points: every rank is a group owning a round-
      // robin share of the momenta.
      num_groups = world;
      owned.resize(static_cast<std::size_t>(world));
      for (int r = 0; r < world; ++r) {
        color_of_rank[static_cast<std::size_t>(r)] = r;
        group_first_rank.push_back(r);
        group_size.push_back(1);
      }
      for (int k = 0; k < nk; ++k)
        owned[static_cast<std::size_t>(k % world)].push_back(
            static_cast<idx>(k));
    }
    for (int c = 0; c < num_groups; ++c)
      num_leaders += leaders_in_group(c);
  }

  int color(int rank) const {
    return color_of_rank[static_cast<std::size_t>(rank)];
  }
  int leaders_in_group(int c) const {
    return (group_size[static_cast<std::size_t>(c)] + width - 1) / width;
  }
  /// Global index of energy group `egroup` of color `c` (device slicing).
  int leader_index(int c, int egroup) const {
    int base = 0;
    for (int i = 0; i < c; ++i) base += leaders_in_group(i);
    return base + egroup;
  }
  /// Map a flat task index back to (ik, ie).
  std::pair<idx, idx> unflatten(idx flat) const {
    const auto it =
        std::upper_bound(e_prefix.begin(), e_prefix.end(), flat) - 1;
    const idx ik = static_cast<idx>(it - e_prefix.begin());
    return {ik, flat - *it};
  }
  /// Is local task index `ie` of momentum `ik` a Green's-function node?
  bool is_greens(idx ik, idx ie) const {
    return ie >= n_real[static_cast<std::size_t>(ik)];
  }
};

/// The shared work queue (coordinator side): per-k deques drained by the
/// energy-group leaders' pull requests, with stealing from the most-loaded
/// k once a group's own momenta run dry.
struct Coordinator {
  const Layout& lay;
  bool stealing;
  std::vector<std::deque<idx>> queue;  ///< remaining ie per k
  idx stolen = 0;

  Coordinator(const Layout& layout, const SweepRequest& req, bool steal)
      : lay(layout), stealing(steal) {
    // Real-axis tasks first, then the k's Green's-function nodes — the
    // local index space the Layout defines (is_greens).
    queue.resize(req.energies.size());
    for (std::size_t k = 0; k < req.energies.size(); ++k) {
      const idx count = lay.e_prefix[k + 1] - lay.e_prefix[k];
      for (idx ie = 0; ie < count; ++ie) queue[k].push_back(ie);
    }
  }

  bool pick(int color, idx& ik, idx& ie, bool& was_stolen) {
    for (const idx k : lay.owned[static_cast<std::size_t>(color)]) {
      auto& q = queue[static_cast<std::size_t>(k)];
      if (!q.empty()) {
        ik = k;
        ie = q.front();
        q.pop_front();
        was_stolen = false;
        return true;
      }
    }
    if (!stealing) return false;
    int best = -1;
    std::size_t most = 0;
    for (std::size_t k = 0; k < queue.size(); ++k)
      if (queue[k].size() > most) {
        most = queue[k].size();
        best = static_cast<int>(k);
      }
    if (best < 0) return false;
    auto& q = queue[static_cast<std::size_t>(best)];
    ik = static_cast<idx>(best);
    ie = q.back();  // steal from the tail: the owner keeps draining the head
    q.pop_back();
    was_stolen = true;
    return true;
  }
};

void send_lead_blocks(Comm& comm, int dst, const dft::LeadBlocks& lead) {
  comm.send({static_cast<double>(lead.h.size())}, dst, kTagBlocks);
  for (std::size_t i = 0; i < lead.h.size(); ++i) {
    comm.send_matrix(lead.h[i], dst, kTagBlocks);
    comm.send_matrix(lead.s[i], dst, kTagBlocks);
  }
}

dft::LeadBlocks recv_lead_blocks(Comm& comm, int src) {
  const auto meta = comm.recv(src, kTagBlocks);
  const auto n = static_cast<std::size_t>(meta.at(0));
  dft::LeadBlocks lead;
  lead.h.resize(n);
  lead.s.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    lead.h[i] = comm.recv_matrix(src, kTagBlocks);
    lead.s[i] = comm.recv_matrix(src, kTagBlocks);
  }
  return lead;
}

/// Is the request's terminal layout the classic symmetric pair (or no
/// contacts at all)?  Symmetric requests are normalized back onto the
/// pre-refactor pipeline — same batching, same spatial cooperation, same
/// cache keys — so the symmetric limit stays bit-identical at every world
/// size.  The comparison is on the *literal* block values {0, kLastBlock}:
/// the engine has no device length here, and that pair is how the simulator
/// spells the classic ends.
bool contacts_are_classic_symmetric(const SweepRequest& req) {
  if (req.contacts.empty()) return true;
  if (req.contacts.size() != 2) return false;
  const SweepContact& a = req.contacts[0];
  const SweepContact& b = req.contacts[1];
  if (a.material >= 0 || b.material >= 0) return false;
  if (a.probe_eta > 0.0 || b.probe_eta > 0.0) return false;
  if (a.shift != b.shift) return false;
  return (a.block == 0 && b.block == transport::kLastBlock) ||
         (a.block == transport::kLastBlock && b.block == 0);
}

/// Lead materials that travel beside the classic per-k blocks: every row of
/// contact_leads, but only for contact-mode requests (a symmetric classic
/// pair references material -1 exclusively and ships nothing extra).
std::size_t num_extra_materials(const SweepRequest& req) {
  if (contacts_are_classic_symmetric(req)) return 0;
  return req.contact_leads != nullptr ? req.contact_leads->size() : 0;
}

/// Two contacts at the classic ends of an nb-block device (either order)?
/// Those route through solve_boundary and may still cooperate spatially;
/// anything else is a solo kMultiTerminal solve on the group leader.
bool classic_pair_blocks(const SweepRequest& req, idx nb) {
  if (req.contacts.size() != 2) return false;
  const auto resolve = [nb](idx b) { return b < 0 ? nb - 1 : b; };
  const idx b0 = resolve(req.contacts[0].block);
  const idx b1 = resolve(req.contacts[1].block);
  return (b0 == 0 && b1 == nb - 1) || (b0 == nb - 1 && b1 == 0);
}

/// The request's terminal layout over one k's materials.  `lead`/`folded`
/// are the classic (material -1) blocks; `extras`/`extra_folded` index the
/// materials >= 0.  Every referenced object must outlive the returned set.
transport::ContactSet build_contact_set(
    const SweepRequest& req, const dft::LeadBlocks& lead,
    const dft::FoldedLead& folded, const std::vector<dft::LeadBlocks>& extras,
    const std::vector<dft::FoldedLead>& extra_folded) {
  std::vector<transport::Contact> cs;
  cs.reserve(req.contacts.size());
  for (const SweepContact& sc : req.contacts) {
    transport::Contact c;
    if (sc.probe_eta > 0.0) {
      // Büttiker probe: no lead material travels or caches for this
      // terminal — its self-energy is the local -i*eta*I.
      c.probe_eta = sc.probe_eta;
    } else if (sc.material < 0) {
      c.lead = &lead;
      c.folded = &folded;
    } else {
      c.lead = &extras[static_cast<std::size_t>(sc.material)];
      c.folded = &extra_folded[static_cast<std::size_t>(sc.material)];
    }
    c.mu = sc.mu;
    c.shift = sc.shift;
    c.block = sc.block;
    if (c.lead != nullptr) c.lead_hash = transport::lead_content_hash(*c.lead);
    cs.push_back(c);
  }
  return transport::ContactSet(std::move(cs));
}

/// Coordinator service loop: runs on a helper thread next to rank 0's own
/// worker (point-to-point only — collectives stay on the rank thread).  On
/// an internal error every leader gets a done marker so the world drains
/// and rethrows instead of hanging in recv.
void serve_queue(Comm comm, Coordinator& co, const SweepRequest& req,
                 std::exception_ptr& error) {
  const Layout& lay = co.lay;
  int done_sent = 0;
  try {
    while (done_sent < lay.num_leaders) {
      Comm::Status status;
      const auto msg = comm.recv(Comm::kAnySource, kTagRequest, status);
      const int kind = static_cast<int>(msg.at(0));
      if (kind == 1) {  // a thief fetching the blocks of a k it never owned
        const auto k = static_cast<std::size_t>(msg.at(1));
        send_lead_blocks(comm, status.source, (*req.leads)[k]);
        // Contact-mode thieves expect the extra materials right behind the
        // classic blocks, in material order.
        for (std::size_t m = 0; m < num_extra_materials(req); ++m)
          send_lead_blocks(comm, status.source, (*req.contact_leads)[m][k]);
        continue;
      }
      const int color = static_cast<int>(msg.at(1));
      idx ik = 0, ie = 0;
      bool was_stolen = false;
      if (co.pick(color, ik, ie, was_stolen)) {
        if (was_stolen) ++co.stolen;
        comm.send({static_cast<double>(ik), static_cast<double>(ie),
                   was_stolen ? 1.0 : 0.0},
                  status.source, kTagAssign);
      } else {
        comm.send({-1.0, -1.0, 0.0}, status.source, kTagAssign);
        ++done_sent;
      }
    }
  } catch (...) {
    error = std::current_exception();
    // Sends are buffered, so unsolicited markers are safe: a leader that
    // already finished simply never consumes its extra messages.
    for (int r = 0; r < lay.world; ++r) {
      const int c = lay.color(r);
      const int in_group =
          r - lay.group_first_rank[static_cast<std::size_t>(c)];
      if (in_group % lay.width != 0) continue;
      comm.send({-1.0, -1.0, 0.0}, r, kTagAssign);
      // A thief mid-fetch waits on kTagBlocks, not kTagAssign: an
      // empty-lead poison wakes it, its KData build fails on the empty
      // lead, and the leader's stage handler degrades to the drain path.
      // (A stream truncated mid-matrix still surfaces as an unpack error
      // rather than a hang for the same reason.)  Contact-mode thieves
      // read 1 + M streams per fetch, so the poison matches that count.
      for (std::size_t s = 0; s < 1 + num_extra_materials(req); ++s)
        comm.send({0.0}, r, kTagBlocks);
    }
  }
}

/// Everything one rank caches for a k point it solves: the lead blocks it
/// received, the folded/assembled device built from them, and the sweep
/// worker bound to the rank's warm context.
struct KData {
  dft::LeadBlocks lead;
  dft::FoldedLead folded;  ///< leaders only; members never run the OBCs
  /// Extra lead materials (SweepContact::material >= 0) and their folds —
  /// contact-mode leaders only; members and classic runs keep them empty.
  std::vector<dft::LeadBlocks> extra_leads;
  std::vector<dft::FoldedLead> extra_folded;
  dft::DeviceMatrices dm;
  transport::ContactSet contacts;  ///< empty in classic and member mode
  std::unique_ptr<transport::EnergySweepWorker> worker;  ///< leaders only

  /// `build_worker` = false is the spatial-member variant: members only
  /// need the assembled device matrices to compute SPIKE partitions of A,
  /// so the lead folding and the sweep worker are skipped.  `contact_mode`
  /// routes the worker through the ContactSet entry points; the set points
  /// at this KData's own members, which are stable for its lifetime (the
  /// per-rank cache holds KData by unique_ptr).
  KData(dft::LeadBlocks l, const SweepRequest& req,
        const transport::EnergyPointOptions& opts,
        transport::EnergyPointContext& ctx, parallel::DevicePool* pool,
        const dft::FoldedLead* pre_folded = nullptr, bool build_worker = true,
        std::vector<dft::LeadBlocks> extras = {}, bool contact_mode = false)
      : lead(std::move(l)),
        folded(build_worker
                   ? (pre_folded != nullptr ? *pre_folded
                                            : dft::fold_lead(lead))
                   : dft::FoldedLead{}),
        extra_leads(std::move(extras)),
        dm(dft::assemble_device(lead, req.cells, req.potential)) {
    if (!build_worker) return;
    if (contact_mode) {
      extra_folded.reserve(extra_leads.size());
      for (const dft::LeadBlocks& ex : extra_leads)
        extra_folded.push_back(dft::fold_lead(ex));
      contacts =
          build_contact_set(req, lead, folded, extra_leads, extra_folded);
      worker = std::make_unique<transport::EnergySweepWorker>(
          ctx, dm, contacts, opts, pool);
      return;
    }
    worker = std::make_unique<transport::EnergySweepWorker>(
        ctx, dm, lead, folded, opts, pool);
  }
};

struct RankLocal {
  std::vector<double> samples;  ///< {flat, T, T_caroli, propagating} each
  /// {flat, weighted per-cell density...} per charge-carrying task.  Kept
  /// per task (not accumulated per rank) so the root can sum contributions
  /// in flat task order — work stealing moves tasks between ranks run to
  /// run, and a rank-order reduce would make the charge rounding depend on
  /// the race.
  std::vector<double> charge_samples;
  double busy_seconds = 0.0;
  idx tasks = 0;
  idx greens_tasks = 0;  ///< contour-node solves among `tasks`
  // Batched-execution accounting (stays zero when the leader ran the
  // unbatched scalar path, a spatial group, or a non-batchable solver).
  idx batches = 0;          ///< fused backend calls issued
  idx batched_tasks = 0;    ///< tasks that went through those calls
  idx prefetch_hits = 0;    ///< boundary-cache hits during OBC prefetch
  idx prefetch_misses = 0;  ///< prefetch misses (or caching disabled)
  idx device_batches = 0;   ///< batches offloaded to the device backend
  idx residency_hits = 0;   ///< staged operands already device-resident
  idx residency_misses = 0;  ///< staged operands that paid an H2D transfer
};

/// Doubles per real-axis sample on the gather wire: the classic 4 plus, for
/// >= 3-terminal requests, the row-major nc x nc pairwise T matrix.
/// Identical on every rank (all read the same request object).
std::size_t sample_stride(const SweepRequest& req) {
  const std::size_t nc = req.contacts.size();
  return 4 + (nc >= 3 ? nc * nc : 0);
}

void record_sample(RankLocal& local, const Layout& lay,
                   const SweepRequest& req, idx ik, idx ie,
                   const transport::EnergyPointResult& res) {
  local.samples.push_back(
      static_cast<double>(lay.e_prefix[static_cast<std::size_t>(ik)] + ie));
  local.samples.push_back(res.transmission);
  local.samples.push_back(res.transmission_caroli);
  local.samples.push_back(static_cast<double>(res.num_propagating));
  const std::size_t nc = req.contacts.size();
  if (nc >= 3) {
    // Zero-padded to the fixed stride so a task whose solve produced no
    // T matrix (nothing propagates) still parses on the root.
    const std::size_t want = nc * nc;
    for (std::size_t i = 0; i < want; ++i)
      local.samples.push_back(i < res.t_matrix.size() ? res.t_matrix[i]
                                                      : 0.0);
  }
}

/// Per-cell charge of one task.  N-terminal requests sum every contact's
/// injected density times its own Fermi weight; classic requests keep the
/// source (mu_L) + optional drain (mu_R) pair.  Empty result = this task
/// carries no charge.
std::vector<double> weighted_task_charge(
    const SweepRequest& req, idx block_dim, idx ik, idx ie,
    const transport::EnergyPointResult& res) {
  if (!req.density_weight_contacts.empty()) {
    const auto sk = static_cast<std::size_t>(ik);
    const auto se = static_cast<std::size_t>(ie);
    std::vector<double> out;
    for (std::size_t p = 0; p < req.density_weight_contacts.size() &&
                            p < res.contact_density.size();
         ++p) {
      if (res.contact_density[p].empty()) continue;
      const auto per_cell = transport::density_per_cell(
          res.contact_density[p], block_dim, req.cells);
      const double w = req.density_weight_contacts[p][sk][se];
      if (out.empty()) out.assign(static_cast<std::size_t>(req.cells), 0.0);
      for (std::size_t c = 0; c < per_cell.size(); ++c)
        out[c] += w * per_cell[c];
    }
    return out;
  }
  if (req.density_weight.empty()) return {};
  const auto sk = static_cast<std::size_t>(ik);
  const auto se = static_cast<std::size_t>(ie);
  std::vector<double> out;
  if (!res.orbital_density.empty()) {
    out = transport::density_per_cell(res.orbital_density, block_dim,
                                      req.cells);
    const double w = req.density_weight[sk][se];
    for (auto& v : out) v *= w;
  }
  if (!req.density_weight_r.empty() && !res.orbital_density_r.empty()) {
    const auto per_cell_r = transport::density_per_cell(
        res.orbital_density_r, block_dim, req.cells);
    const double wr = req.density_weight_r[sk][se];
    if (out.empty()) out.assign(static_cast<std::size_t>(req.cells), 0.0);
    for (std::size_t c = 0; c < per_cell_r.size(); ++c)
      out[c] += wr * per_cell_r[c];
  }
  return out;
}

void accumulate_charge(RankLocal& local, const SweepRequest& req,
                       const Layout& lay, const KData& kd, idx ik, idx ie,
                       const transport::EnergyPointResult& res) {
  const auto per_cell =
      weighted_task_charge(req, kd.lead.block_dim(), ik, ie, res);
  if (per_cell.empty()) return;
  local.charge_samples.push_back(
      static_cast<double>(lay.e_prefix[static_cast<std::size_t>(ik)] + ie));
  for (idx c = 0; c < req.cells; ++c)
    local.charge_samples.push_back(per_cell[static_cast<std::size_t>(c)]);
}

/// Per-cell charge of one Green's-function node: Im(w * G_ii) summed onto
/// physical cells.  The node weight w (contour jacobian * gauss weight *
/// Fermi factor, or a pole residue) already carries the -2 spectral
/// normalization, so this is the GF-side twin of weighted_task_charge.
std::vector<double> greens_task_charge(const SweepRequest& req, idx block_dim,
                                       numeric::cplx weight,
                                       const std::vector<numeric::cplx>& diag) {
  std::vector<double> out(static_cast<std::size_t>(req.cells), 0.0);
  for (std::size_t i = 0; i < diag.size(); ++i)
    out[i / static_cast<std::size_t>(block_dim)] += (weight * diag[i]).imag();
  return out;
}

/// Does the request carry any Green's-function nodes?  Drives charge
/// allocation/gather symmetrically on every rank (all ranks read the same
/// request object).
bool request_has_greens(const SweepRequest& req) {
  for (const auto& nodes : req.gf_nodes)
    if (!nodes.empty()) return true;
  return false;
}

}  // namespace

Engine::Engine(EngineConfig config, parallel::DevicePool* pool)
    : config_(std::move(config)), pool_(pool) {
  if (config_.num_ranks < 1)
    throw std::invalid_argument("Engine: num_ranks must be >= 1");
  if (config_.ranks_per_energy_group < 1)
    throw std::invalid_argument(
        "Engine: ranks_per_energy_group must be >= 1");
  if (config_.cache_boundaries) {
    caches_.resize(static_cast<std::size_t>(config_.num_ranks));
    for (auto& c : caches_) c = std::make_unique<obc::BoundaryCache>();
  }
  if (pool_ != nullptr) {
    residency_.resize(static_cast<std::size_t>(config_.num_ranks));
    for (auto& r : residency_)
      r = std::make_unique<numeric::ResidencyCache>();
  }
}

obc::BoundaryCache* Engine::rank_cache(int rank) const {
  if (caches_.empty()) return nullptr;
  return caches_[static_cast<std::size_t>(rank)].get();
}

numeric::ResidencyCache* Engine::rank_residency(int rank) const {
  if (residency_.empty()) return nullptr;
  return residency_[static_cast<std::size_t>(rank)].get();
}

void Engine::invalidate_boundary_caches() {
  for (auto& c : caches_) c->invalidate();
  // Device-resident operands share the boundary caches' validity domain:
  // both replay lead-derived products keyed on (k, E).
  for (auto& r : residency_) r->invalidate();
}

obc::BoundaryCache::Stats Engine::boundary_cache_stats() const {
  obc::BoundaryCache::Stats total;
  for (const auto& c : caches_) {
    const auto s = c->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.insertions += s.insertions;
    total.invalidations += s.invalidations;
  }
  return total;
}

obc::BoundaryCache::Stats Engine::contact_boundary_cache_stats(
    int contact) const {
  obc::BoundaryCache::Stats total;
  for (const auto& c : caches_) {
    const auto s = c->contact_stats(contact);
    total.hits += s.hits;
    total.misses += s.misses;
    total.insertions += s.insertions;
    total.invalidations += s.invalidations;
  }
  return total;
}

namespace {

void validate_request(const SweepRequest& req) {
  if (req.leads == nullptr)
    throw std::invalid_argument("Engine: request.leads is null");
  if (req.energies.empty())
    throw std::invalid_argument("Engine: request has no k points");
  if (req.leads->size() < req.energies.size())
    throw std::invalid_argument("Engine: fewer lead blocks than k grids");
  if (req.folded != nullptr && req.folded->size() < req.energies.size())
    throw std::invalid_argument("Engine: fewer folded leads than k grids");
  if (!req.density_weight.empty()) {
    if (req.density_weight.size() != req.energies.size())
      throw std::invalid_argument("Engine: density_weight k-shape mismatch");
    for (std::size_t k = 0; k < req.energies.size(); ++k)
      if (req.density_weight[k].size() != req.energies[k].size())
        throw std::invalid_argument(
            "Engine: density_weight E-shape mismatch");
  }
  if (!req.density_weight_r.empty()) {
    if (req.density_weight.empty())
      throw std::invalid_argument(
          "Engine: density_weight_r without density_weight");
    if (req.density_weight_r.size() != req.energies.size())
      throw std::invalid_argument(
          "Engine: density_weight_r k-shape mismatch");
    for (std::size_t k = 0; k < req.energies.size(); ++k)
      if (req.density_weight_r[k].size() != req.energies[k].size())
        throw std::invalid_argument(
            "Engine: density_weight_r E-shape mismatch");
  }
  if (!req.gf_nodes.empty()) {
    if (req.gf_nodes.size() != req.energies.size())
      throw std::invalid_argument("Engine: gf_nodes k-shape mismatch");
    if (req.gf_weights.size() != req.gf_nodes.size())
      throw std::invalid_argument(
          "Engine: gf_weights/gf_nodes k-shape mismatch");
    for (std::size_t k = 0; k < req.gf_nodes.size(); ++k)
      if (req.gf_weights[k].size() != req.gf_nodes[k].size())
        throw std::invalid_argument(
            "Engine: gf_weights node-shape mismatch");
  } else if (!req.gf_weights.empty()) {
    throw std::invalid_argument("Engine: gf_weights without gf_nodes");
  }
  if (req.contacts.size() == 1)
    throw std::invalid_argument(
        "Engine: contacts must be empty (classic) or have >= 2 entries");
  if (!req.contacts.empty()) {
    const int materials = static_cast<int>(
        req.contact_leads != nullptr ? req.contact_leads->size() : 0);
    for (const SweepContact& c : req.contacts) {
      if (c.material >= materials)
        throw std::invalid_argument(
            "Engine: contact material index out of range");
      if (c.probe_eta < 0.0)
        throw std::invalid_argument("Engine: contact probe_eta is negative");
      if (c.probe_eta > 0.0 && c.material >= 0)
        throw std::invalid_argument(
            "Engine: a Buettiker probe carries no lead material "
            "(probe_eta > 0 requires material == -1)");
    }
    if (req.contact_leads != nullptr)
      for (const auto& row : *req.contact_leads)
        if (row.size() < req.energies.size())
          throw std::invalid_argument(
              "Engine: contact_leads k-shape mismatch");
  }
  if (req.contacts.size() >= 3 && !req.density_weight.empty())
    throw std::invalid_argument(
        "Engine: >= 3-terminal charge uses density_weight_contacts");
  if (!req.density_weight_contacts.empty()) {
    if (req.contacts.size() < 3)
      throw std::invalid_argument(
          "Engine: density_weight_contacts requires >= 3 contacts");
    if (req.density_weight_contacts.size() != req.contacts.size())
      throw std::invalid_argument(
          "Engine: density_weight_contacts contact-shape mismatch");
    for (const auto& table : req.density_weight_contacts) {
      if (table.size() != req.energies.size())
        throw std::invalid_argument(
            "Engine: density_weight_contacts k-shape mismatch");
      for (std::size_t k = 0; k < table.size(); ++k)
        if (table[k].size() != req.energies[k].size())
          throw std::invalid_argument(
              "Engine: density_weight_contacts E-shape mismatch");
    }
  }
}

/// FNV-1a over the lead blocks' shapes and raw entries — the *content*
/// identity the boundary caches depend on (see Engine::last_leads_hash_).
std::uint64_t leads_fingerprint(const std::vector<dft::LeadBlocks>& leads) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mix_matrix = [&](const numeric::CMatrix& m) {
    mix(static_cast<std::uint64_t>(m.rows()));
    mix(static_cast<std::uint64_t>(m.cols()));
    for (idx i = 0; i < m.rows(); ++i)
      for (idx j = 0; j < m.cols(); ++j) {
        const double parts[2] = {m(i, j).real(), m(i, j).imag()};
        std::uint64_t bits;
        std::memcpy(&bits, &parts[0], sizeof(bits));
        mix(bits);
        std::memcpy(&bits, &parts[1], sizeof(bits));
        mix(bits);
      }
  };
  for (const auto& lead : leads) {
    mix(static_cast<std::uint64_t>(lead.h.size()));
    for (const auto& m : lead.h) mix_matrix(m);
    for (const auto& m : lead.s) mix_matrix(m);
  }
  return h;
}

/// Per-contact cache-validity signature: the contact's lead-material
/// content, its shift bits, and its attachment block.  mu is deliberately
/// absent — it weights observables, never the cached Boundary.
/// `classic_hash` is leads_fingerprint(*req.leads), shared by every
/// material -1 contact.
std::vector<std::uint64_t> contact_signatures(const SweepRequest& req,
                                              std::uint64_t classic_hash) {
  std::vector<std::uint64_t> sigs;
  sigs.reserve(req.contacts.size());
  for (const SweepContact& c : req.contacts) {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(c.probe_eta > 0.0
            ? 0  // probes carry no lead material
            : (c.material < 0 ? classic_hash
                              : leads_fingerprint((*req.contact_leads)
                                    [static_cast<std::size_t>(c.material)])));
    std::uint64_t bits = 0;
    std::memcpy(&bits, &c.shift, sizeof(bits));
    mix(bits);
    mix(static_cast<std::uint64_t>(c.block));
    std::memcpy(&bits, &c.probe_eta, sizeof(bits));
    mix(bits);
    sigs.push_back(h);
  }
  return sigs;
}

SweepResult shaped_result(const SweepRequest& req) {
  SweepResult out;
  const std::size_t nk = req.energies.size();
  out.transmission.resize(nk);
  out.caroli.resize(nk);
  out.propagating.resize(nk);
  for (std::size_t k = 0; k < nk; ++k) {
    out.transmission[k].assign(req.energies[k].size(), 0.0);
    out.caroli[k].assign(req.energies[k].size(), 0.0);
    out.propagating[k].assign(req.energies[k].size(), 0);
  }
  const std::size_t nc = req.contacts.size();
  if (nc >= 3) {
    out.t_matrix.resize(nk);
    for (std::size_t k = 0; k < nk; ++k)
      out.t_matrix[k].assign(req.energies[k].size(),
                             std::vector<double>(nc * nc, 0.0));
  }
  if (!req.density_weight.empty() || !req.density_weight_contacts.empty() ||
      request_has_greens(req))
    out.charge.assign(static_cast<std::size_t>(req.cells), 0.0);
  return out;
}

/// Per-leader backend selection for the batched device phase.  A fixed
/// choice ("host", "device", a registered name) resolves once; "auto" asks
/// the perf::estimate_batch_seconds crossover per shape bucket.  Every
/// candidate runs the same scalar kernels per item, so the choice moves
/// work and transfer accounting — never results.
struct BackendArbiter {
  numeric::Backend* fixed = nullptr;  ///< non-auto resolution
  numeric::DeviceBackend* device = nullptr;  ///< offload candidate
  bool auto_select = false;
  int host_lanes = 1;
  int devices = 0;
  int nominal_batch = 1;

  numeric::Backend& choose(idx nb, idx s) const {
    if (!auto_select) return *fixed;
    if (device == nullptr) return numeric::host_backend();
    // nrhs mirrors the 2*s nominal the solver resolution uses; the nominal
    // batch (never the actual fill) keeps the estimate rank-invariant.
    const perf::BatchShape shape{static_cast<long long>(nb),
                                 static_cast<long long>(s),
                                 static_cast<long long>(2 * s)};
    const perf::BatchEstimate est = perf::estimate_batch_seconds(
        perf::MachineSpec::host(), shape, nominal_batch, host_lanes, devices);
    return est.device_wins() ? static_cast<numeric::Backend&>(*device)
                             : numeric::host_backend();
  }
};

/// Builds a leader's arbiter over its pool slice, constructing the
/// DeviceBackend in `storage` when offloading is a candidate.  `residency`
/// is the leader's persistent cross-run operand cache (may be null).
BackendArbiter make_backend_arbiter(
    const EngineConfig& cfg, std::optional<numeric::DeviceBackend>& storage,
    parallel::DevicePool* pool, numeric::ResidencyCache* residency) {
  BackendArbiter arb;
  arb.nominal_batch = std::max(1, cfg.max_batch);
  arb.host_lanes =
      static_cast<int>(parallel::ThreadPool::global().num_threads());
  if (pool != nullptr && pool->size() > 0 && cfg.backend != "host") {
    storage.emplace(*pool, residency);
    arb.device = &*storage;
    arb.devices = pool->size();
  }
  if (cfg.backend == "auto") {
    arb.auto_select = true;
    arb.fixed = &numeric::host_backend();
  } else if (cfg.backend == "host") {
    arb.fixed = &numeric::host_backend();
  } else if (cfg.backend == "device") {
    // Degrade to host when the engine has no accelerators to offload to.
    arb.fixed = arb.device != nullptr
                    ? static_cast<numeric::Backend*>(arb.device)
                    : &numeric::host_backend();
  } else {
    numeric::Backend* named = numeric::find_backend(cfg.backend);
    if (named == nullptr)
      throw std::invalid_argument("Engine: unknown backend '" + cfg.backend +
                                  "'");
    arb.fixed = named;
  }
  return arb;
}

/// H2D/D2H/busy counters of every pool device, snapshotted around a sweep
/// so EngineStats can report per-run deltas (the pool persists across
/// runs and may be shared).
struct PoolSnapshot {
  std::vector<std::uint64_t> h2d, d2h;
  std::vector<double> busy;
};

PoolSnapshot snapshot_pool(parallel::DevicePool* pool) {
  PoolSnapshot snap;
  if (pool == nullptr) return snap;
  for (int d = 0; d < pool->size(); ++d) {
    parallel::Device& dev = pool->device(d);
    snap.h2d.push_back(dev.h2d_bytes());
    snap.d2h.push_back(dev.d2h_bytes());
    snap.busy.push_back(dev.busy_seconds());
  }
  return snap;
}

void apply_pool_delta(EngineStats& stats, parallel::DevicePool* pool,
                      const PoolSnapshot& before) {
  if (pool == nullptr) return;
  stats.device_busy_seconds.assign(before.busy.size(), 0.0);
  for (int d = 0; d < pool->size(); ++d) {
    parallel::Device& dev = pool->device(d);
    const auto sd = static_cast<std::size_t>(d);
    stats.h2d_bytes += static_cast<double>(dev.h2d_bytes() - before.h2d[sd]);
    stats.d2h_bytes += static_cast<double>(dev.d2h_bytes() - before.d2h[sd]);
    stats.device_busy_seconds[sd] = dev.busy_seconds() - before.busy[sd];
  }
}

}  // namespace

SweepResult Engine::run(const SweepRequest& request) {
  validate_request(request);
  // Fail an unknown backend name on the caller thread, before any world or
  // collective exists (leaders re-resolve the same name later; by then it
  // is known good).
  if (config_.backend != "auto" && config_.backend != "host" &&
      config_.backend != "device" &&
      numeric::find_backend(config_.backend) == nullptr)
    throw std::invalid_argument("Engine: unknown backend '" +
                                config_.backend + "'");
  std::size_t total = 0;
  for (const auto& grid : request.energies) total += grid.size();
  for (const auto& nodes : request.gf_nodes) total += nodes.size();
  if (total == 0) return shaped_result(request);
  const std::size_t nc = request.contacts.size();
  if (!caches_.empty() || !residency_.empty()) {
    // Cached Boundaries (and the device-resident operands derived from
    // them) are only replayable while the OBC options and the lead
    // matrices hold: the backend is part of the cache key, but an annulus/
    // ridge/eta change — or different lead Hamiltonians under the same
    // (k, E) keys — is not.
    const std::uint64_t leads_hash = leads_fingerprint(*request.leads);
    if (request.contacts.empty()) {
      // Classic request: drop everything on either mismatch — exactly the
      // pre-contact discipline.
      const bool opts_changed =
          last_obc_opts_.has_value() &&
          !obc::obc_options_equal(*last_obc_opts_, request.point.obc_opts);
      const bool leads_changed =
          last_leads_hash_.has_value() && *last_leads_hash_ != leads_hash;
      if (opts_changed || leads_changed) invalidate_boundary_caches();
      last_contact_sigs_.reset();
    } else {
      // Contact request: the global contact_shift is neutral in the
      // options comparison (shifts live per contact), and a change
      // confined to one contact's lead material, shift, or attachment
      // block drops only that contact's key range — the dissimilar-lead
      // independence the per-contact cache keys exist for.
      bool opts_changed = false;
      if (last_obc_opts_.has_value()) {
        obc::ObcOptions prev = *last_obc_opts_;
        prev.contact_shift = request.point.obc_opts.contact_shift;
        opts_changed = !obc::obc_options_equal(prev, request.point.obc_opts);
      }
      const auto sigs = contact_signatures(request, leads_hash);
      if (opts_changed) {
        invalidate_boundary_caches();
      } else if (last_contact_sigs_.has_value() &&
                 last_contact_sigs_->size() == sigs.size()) {
        bool any = false;
        for (std::size_t p = 0; p < sigs.size(); ++p)
          if (sigs[p] != (*last_contact_sigs_)[p]) {
            for (auto& c : caches_)
              c->invalidate_contact(static_cast<int>(p));
            any = true;
          }
        // Device-resident operands are not keyed per contact; any stale
        // contact drops them all (mirrors invalidate_boundary_caches).
        if (any)
          for (auto& r : residency_) r->invalidate();
      }
      last_contact_sigs_ = sigs;
    }
    last_obc_opts_ = request.point.obc_opts;
    last_leads_hash_ = leads_hash;
    // One sweep must always fit: a cap below the task count would evict
    // entries mid-sweep and forfeit every cross-iteration hit.  Contact
    // mode fetches up to nc boundaries per task.
    const std::size_t per_task = std::max<std::size_t>(2, nc);
    for (auto& c : caches_) c->reserve(per_task * total);
  }
  // Per-contact cache counters are cumulative on the persistent caches;
  // snapshot around the sweep so the stats report this run's deltas.
  std::vector<obc::BoundaryCache::Stats> contact_stats_before;
  if (!caches_.empty() && nc >= 2)
    for (std::size_t p = 0; p < nc; ++p)
      contact_stats_before.push_back(
          contact_boundary_cache_stats(static_cast<int>(p)));
  const PoolSnapshot snapshot = snapshot_pool(pool_);
  SweepResult out = (config_.num_ranks == 1 && config_.flat_single_rank)
                        ? run_flat(request)
                        : run_distributed(request);
  apply_pool_delta(out.stats, pool_, snapshot);
  if (!caches_.empty() && nc >= 2) {
    out.stats.contact_cache_stats.resize(nc);
    for (std::size_t p = 0; p < nc; ++p) {
      const auto after = contact_boundary_cache_stats(static_cast<int>(p));
      auto& d = out.stats.contact_cache_stats[p];
      d.hits = after.hits - contact_stats_before[p].hits;
      d.misses = after.misses - contact_stats_before[p].misses;
      d.insertions = after.insertions - contact_stats_before[p].insertions;
      d.invalidations =
          after.invalidations - contact_stats_before[p].invalidations;
    }
  }
  return out;
}

SweepResult Engine::run_flat(const SweepRequest& request) {
  const double t_start = now_seconds();
  SweepResult out = shaped_result(request);
  const Layout lay(request, 1, 1);
  const std::size_t n = static_cast<std::size_t>(lay.total_tasks);
  const std::size_t nk = request.energies.size();

  // The flat loop has no spatial sub-communicators; scrub any stale handle
  // a caller may have left in the options.
  transport::EnergyPointOptions popt = request.point;
  popt.spatial = nullptr;
  // The engine owns the boundary-cache binding: its rank-0 persistent
  // cache (shared by the pool workers — BoundaryCache is thread-safe), or
  // nothing when caching is disabled.
  popt.boundary_cache = rank_cache(0);
  // Only pay the drain-injection RHS columns when the request carries a
  // drain-side weight to fold them into.
  popt.want_density_r = !request.density_weight_r.empty();
  // Terminal layout: a symmetric classic pair collapses onto the global
  // contact shift and the entire pre-refactor pipeline below (batching
  // included) runs unchanged; anything else routes per-task through the
  // ContactSet entry points.
  const bool contact_mode = !contacts_are_classic_symmetric(request);
  if (!request.contacts.empty() && !contact_mode)
    popt.obc_opts.contact_shift = request.contacts[0].shift;
  const std::size_t ncon = request.contacts.size();

  // Root-local device assembly, one per k (shared across its energies).
  // Pre-folded leads from the request are reused as-is.
  std::vector<dft::FoldedLead> folded_local;
  const std::vector<dft::FoldedLead>* folded = request.folded;
  if (folded == nullptr) {
    folded_local.resize(nk);
    for (std::size_t k = 0; k < nk; ++k)
      folded_local[k] = dft::fold_lead((*request.leads)[k]);
    folded = &folded_local;
  }
  std::vector<dft::DeviceMatrices> dms(nk);
  for (std::size_t k = 0; k < nk; ++k)
    dms[k] = dft::assemble_device((*request.leads)[k], request.cells,
                                  request.potential);

  // Contact mode: per-k copies of the extra lead materials, their folds,
  // and the ContactSet pointing at them (stable — the vectors are fully
  // built before any set references them).
  std::vector<std::vector<dft::LeadBlocks>> extra_leads_k;
  std::vector<std::vector<dft::FoldedLead>> extra_folded_k;
  std::vector<transport::ContactSet> contact_sets;
  if (contact_mode) {
    const std::size_t m_count = num_extra_materials(request);
    extra_leads_k.resize(nk);
    extra_folded_k.resize(nk);
    contact_sets.resize(nk);
    for (std::size_t k = 0; k < nk; ++k) {
      for (std::size_t m = 0; m < m_count; ++m) {
        extra_leads_k[k].push_back((*request.contact_leads)[m][k]);
        extra_folded_k[k].push_back(dft::fold_lead(extra_leads_k[k].back()));
      }
      contact_sets[k] =
          build_contact_set(request, (*request.leads)[k], (*folded)[k],
                            extra_leads_k[k], extra_folded_k[k]);
    }
  }

  const bool has_greens = request_has_greens(request);
  const bool want_charge = !request.density_weight.empty() ||
                           !request.density_weight_contacts.empty() ||
                           has_greens;
  std::vector<std::vector<double>> point_charge;
  if (want_charge) point_charge.resize(n);
  double busy_total = 0.0;
  idx greens_done = 0;

  // One Green's-function (contour) task: diagonal of G at the complex node,
  // folded into per-cell charge with the node's complex weight.
  const auto solve_greens_flat = [&](std::size_t flat) {
    const auto [ik, ie] = lay.unflatten(static_cast<idx>(flat));
    const auto sk = static_cast<std::size_t>(ik);
    const auto sg =
        static_cast<std::size_t>(ie - lay.n_real[sk]);
    transport::EnergyPointOptions task_opt = popt;
    task_opt.k_index = ik;
    const auto diag =
        contact_mode
            ? transport::solve_greens_diagonal(dms[sk], contact_sets[sk],
                                               request.gf_nodes[sk][sg],
                                               task_opt)
            : transport::solve_greens_diagonal(
                  dms[sk], (*request.leads)[sk], (*folded)[sk],
                  request.gf_nodes[sk][sg], task_opt);
    point_charge[flat] = greens_task_charge(
        request, (*request.leads)[sk].block_dim(), request.gf_weights[sk][sg],
        diag);
  };

  // Batch only when the representative resolution (rank-invariant: the
  // configured max_batch, the first k's block structure) lands on a solver
  // that advertises kBatchable; otherwise the per-task thread-pool loop
  // keeps its across-task parallelism, which the scalar fallback inside
  // solve_energy_batch would forfeit.
  // The flat loop is its own leader: one DeviceBackend over the whole pool
  // (when bound), persistent rank-0 residency, and the configured backend
  // policy deciding where each shape bucket's device phase runs.
  std::optional<numeric::DeviceBackend> device_storage;
  const BackendArbiter arbiter = make_backend_arbiter(
      config_, device_storage, pool_, rank_residency(0));

  // Classic-mode scattering that attaches probes turns every task into a
  // multi-terminal solve: the batched classic pipeline no longer applies
  // (solve_energy_batch would only degrade it back to scalar solves), so
  // keep the across-task thread-pool parallelism instead.  A model that
  // attaches nothing (kNone, buttiker at eta <= 0) changes nothing here.
  const bool scattering_probes =
      !contact_mode && n > 0 &&
      popt.scattering.algorithm != scattering::ScatteringAlgorithm::kNone &&
      !scattering::assemble_probes(popt.scattering, dms[0].h.num_blocks(),
                                   {0, dms[0].h.num_blocks() - 1})
           .empty();

  bool use_batches = false;
  // Contact mode never batches: the batched pipeline is the classic
  // single-boundary arithmetic, and contact tasks route through the
  // ContactSet entry points one at a time (still across-task parallel).
  if (config_.batch_tasks && n > 0 && !contact_mode && !scattering_probes) {
    const idx nbb = dms[0].h.num_blocks();
    const idx sbb = dms[0].h.block_size();
    solvers::SolverContext binding;
    binding.pool = pool_;
    binding.partitions = popt.partitions;
    binding.batch = std::max(1, config_.max_batch);
    binding.backend = &arbiter.choose(nbb, sbb);
    const auto algo =
        solvers::resolve_algorithm(popt.solver, nbb, sbb, 2 * sbb, binding);
    use_batches =
        (solvers::algorithm_capabilities(algo) & solvers::kBatchable) != 0;
  }

  if (use_batches) {
    // Bucket flat tasks by block structure *and task kind*: batching fuses
    // kernels within one shape, never across shapes, and Green's-function
    // nodes never fuse with wave-function points (they are scalar RGF
    // diagonal solves, executed below with across-task parallelism
    // instead).  Buckets preserve flat order, so the per-task outputs (and
    // the charge assembly below) stay deterministic.
    std::map<std::tuple<idx, idx, bool>, std::vector<std::size_t>> buckets;
    for (std::size_t flat = 0; flat < n; ++flat) {
      const auto [ik, ie] = lay.unflatten(static_cast<idx>(flat));
      const auto sk = static_cast<std::size_t>(ik);
      buckets[{dms[sk].h.num_blocks(), dms[sk].h.block_size(),
               lay.is_greens(ik, ie)}]
          .push_back(flat);
    }
    const std::size_t cap =
        static_cast<std::size_t>(std::max(1, config_.max_batch));
    transport::BatchContext bctx;
    transport::BatchStats bstats;
    for (const auto& [shape, flats] : buckets) {
      if (std::get<2>(shape)) {
        // Green's-function bucket: thread-pool loop over the nodes, each
        // worker on its own warm context.
        std::vector<double> busy(flats.size(), 0.0);
        parallel::ThreadPool::global().parallel_for(
            flats.size(), [&](std::size_t j) {
              const double t0 = now_seconds();
              solve_greens_flat(flats[j]);
              busy[j] = now_seconds() - t0;
            });
        busy_total += std::accumulate(busy.begin(), busy.end(), 0.0);
        greens_done += static_cast<idx>(flats.size());
        continue;
      }
      // The whole shape bucket lands on one backend: host lanes or device
      // streams, by policy/crossover.  Either way the per-item kernels are
      // identical, so the spectra cannot depend on the choice.
      numeric::Backend& bucket_backend =
          arbiter.choose(std::get<0>(shape), std::get<1>(shape));
      for (std::size_t base = 0; base < flats.size(); base += cap) {
        const std::size_t count = std::min(cap, flats.size() - base);
        std::vector<transport::BatchTask> chunk;
        chunk.reserve(count);
        for (std::size_t j = 0; j < count; ++j) {
          const auto [ik, ie] =
              lay.unflatten(static_cast<idx>(flats[base + j]));
          const auto sk = static_cast<std::size_t>(ik);
          const auto se = static_cast<std::size_t>(ie);
          chunk.push_back({ik, request.energies[sk][se], &dms[sk],
                           &(*request.leads)[sk], &(*folded)[sk]});
        }
        const double t0 = now_seconds();
        const auto res = transport::solve_energy_batch(
            bctx, chunk, popt, pool_, bucket_backend,
            config_.max_batch, &bstats);
        busy_total += now_seconds() - t0;
        for (std::size_t j = 0; j < count; ++j) {
          const std::size_t flat = flats[base + j];
          const auto [ik, ie] = lay.unflatten(static_cast<idx>(flat));
          const auto sk = static_cast<std::size_t>(ik);
          const auto se = static_cast<std::size_t>(ie);
          out.transmission[sk][se] = res[j].transmission;
          out.caroli[sk][se] = res[j].transmission_caroli;
          out.propagating[sk][se] = res[j].num_propagating;
          if (want_charge)
            point_charge[flat] = weighted_task_charge(
                request, (*request.leads)[sk].block_dim(), ik, ie, res[j]);
        }
      }
    }
    if (bstats.batched_solve) {
      out.stats.batches_issued = bstats.batches;
      if (bstats.batches > 0)
        out.stats.mean_batch_size = static_cast<double>(bstats.tasks) /
                                    static_cast<double>(bstats.batches);
    }
    out.stats.prefetch_hits = bstats.prefetch_hits;
    out.stats.prefetch_misses = bstats.prefetch_misses;
    out.stats.device_batches = bstats.device_batches;
    out.stats.residency_hits = bstats.residency_hits;
    out.stats.residency_misses = bstats.residency_misses;
  } else {
    // The flat (k, E) thread-pool loop the simulator always ran, with
    // per-worker warm contexts.
    std::vector<double> busy(n, 0.0);
    parallel::ThreadPool::global().parallel_for(n, [&](std::size_t flat) {
      const auto [ik, ie] = lay.unflatten(static_cast<idx>(flat));
      const double t0 = now_seconds();
      if (lay.is_greens(ik, ie)) {
        solve_greens_flat(flat);
        busy[flat] = now_seconds() - t0;
        return;
      }
      const auto sk = static_cast<std::size_t>(ik);
      const auto se = static_cast<std::size_t>(ie);
      // The cache key's momentum component is the global k index.
      transport::EnergyPointOptions task_opt = popt;
      task_opt.k_index = ik;
      const auto res =
          contact_mode
              ? transport::solve_energy_point(dms[sk], contact_sets[sk],
                                              request.energies[sk][se],
                                              task_opt, pool_)
              : transport::solve_energy_point(
                    dms[sk], (*request.leads)[sk], (*folded)[sk],
                    request.energies[sk][se], task_opt, pool_);
      busy[flat] = now_seconds() - t0;
      out.transmission[sk][se] = res.transmission;
      out.caroli[sk][se] = res.transmission_caroli;
      out.propagating[sk][se] = res.num_propagating;
      if (ncon >= 3 && !res.t_matrix.empty())
        out.t_matrix[sk][se] = res.t_matrix;
      if (want_charge)
        point_charge[flat] = weighted_task_charge(
            request, (*request.leads)[sk].block_dim(), ik, ie, res);
    });
    busy_total = std::accumulate(busy.begin(), busy.end(), 0.0);
    for (idx k = 0; k < static_cast<idx>(nk); ++k)
      if (!request.gf_nodes.empty())
        greens_done +=
            static_cast<idx>(request.gf_nodes[static_cast<std::size_t>(k)]
                                 .size());
  }
  // Deterministic charge assembly: sum in flat task order.
  for (std::size_t flat = 0; flat < point_charge.size(); ++flat)
    for (std::size_t c = 0; c < point_charge[flat].size(); ++c)
      out.charge[c] += point_charge[flat][c];

  out.stats.ranks = 1;
  out.stats.energy_groups = 1;
  out.stats.tasks_total = lay.total_tasks;
  out.stats.tasks_greens = greens_done;
  out.stats.tasks_per_rank = {lay.total_tasks};
  out.stats.busy_seconds_per_rank = {busy_total};
  out.stats.wall_seconds = now_seconds() - t_start;
  return out;
}

SweepResult Engine::run_distributed(const SweepRequest& request) {
  const double t_start = now_seconds();
  SweepResult out = shaped_result(request);
  const Layout lay(request, config_.num_ranks,
                   config_.ranks_per_energy_group);
  Coordinator co(lay, request, config_.work_stealing);
  // Terminal layout, computed identically on every rank from the shared
  // request: symmetric classic pairs normalize onto the pre-refactor
  // pipeline; contact mode threads ContactSets through the leaders.
  const bool contact_mode = !contacts_are_classic_symmetric(request);
  const std::size_t m_count = num_extra_materials(request);
  const std::size_t stride = sample_stride(request);

  parallel::CommWorld world(config_.num_ranks);
  std::exception_ptr service_error;
  world.run([&](Comm& comm) {
    const int wr = comm.rank();
    const int my_color = lay.color(wr);
    // A failing rank must not abandon the protocol: it records the error,
    // keeps draining queue traffic and the assembly collectives so no peer
    // blocks forever, and rethrows once the world has quiesced (CommWorld
    // then surfaces the first rank's exception on the caller thread).
    std::exception_ptr rank_error;
    // Leader-ness comes from the layout, not from the splits, so the
    // recovery drain below works even when an exception escapes before the
    // energy-level communicators exist.  (comm.split orders same-color
    // ranks by world rank, so k_comm.rank() == wr - group_first_rank.)
    const int in_group =
        wr - lay.group_first_rank[static_cast<std::size_t>(my_color)];
    const bool leader = in_group % lay.width == 0;
    bool protocol_done = !leader;  ///< non-leaders owe the coordinator nothing

    // --- input distribution (momentum level) ---------------------------
    // The root pushes each momentum-group leader the blocks of its owned
    // k points; sends are buffered, so this cannot deadlock with the
    // coordinator service started right after.
    std::thread service;
    if (wr == 0) {
      for (int c = 0; c < lay.num_groups; ++c) {
        const int lr = lay.group_first_rank[static_cast<std::size_t>(c)];
        if (lr == 0) continue;
        for (const idx k : lay.owned[static_cast<std::size_t>(c)]) {
          send_lead_blocks(comm, lr,
                           (*request.leads)[static_cast<std::size_t>(k)]);
          // Contact mode: the extra materials ride right behind the
          // classic blocks, in material order (the receiver loop below
          // reads them back symmetrically).
          for (std::size_t m = 0; m < m_count; ++m)
            send_lead_blocks(
                comm, lr,
                (*request.contact_leads)[m][static_cast<std::size_t>(k)]);
        }
      }
      Comm service_comm = comm;  // same rank, shared mailboxes
      service = std::thread(
          [&co, &request, &service_error, service_comm]() mutable {
            serve_queue(service_comm, co, request, service_error);
          });
    }

    // The guarded section spans everything between the service spawn and
    // the join.  The per-stage handlers inside degrade a failed stage to
    // the drain path; this outer catch covers the rest (OOM-class throws
    // from splits, broadcasts, or queue traffic) — without it an exception
    // unwinding past the joinable service thread would std::terminate.
    RankLocal local;
    // Spatial-release bookkeeping lives outside the guarded section: if an
    // exception escapes the pull loop, the leader must still send its
    // members the done marker or they would wait on the task broadcast
    // forever.
    std::optional<Comm> spatial_comm;
    bool members_released = true;
    // Announcement wire format (8 doubles): {flag, ik, ie, fetched, algo,
    // contact_shift, Re(E), Im(E)}.  Im(E) != 0 marks a contour node; those
    // are announced with the (non-cooperative) RGF algorithm, so members
    // handle the fetched-blocks broadcast and then skip the solve.
    const std::vector<double> kSpatialDone{-1.0, 0.0, 0.0, 0.0,
                                           0.0,  0.0, 0.0, 0.0};
    // The single release point for the members' service loop — every exit
    // path (drain, normal completion, escaped exception) goes through it,
    // so the done marker can never be sent twice or with a stale shape.
    const auto release_members = [&]() {
      if (members_released || !spatial_comm.has_value()) return;
      try {
        std::vector<double> done = kSpatialDone;
        spatial_comm->bcast(done, 0);
      } catch (...) {
      }
      members_released = true;
    };
    try {
      Comm k_comm = comm.split(my_color, wr);
      Comm e_comm = k_comm.split(k_comm.rank() / lay.width, k_comm.rank());
      const int egroup = k_comm.rank() / lay.width;

      // --- spatial level: does this energy group solve cooperatively? ---
      // Width > 1 makes each (k, E) task a group-wide solve: the leader
      // runs the OBC + SPIKE merge, the members compute their share of the
      // SPIKE partitions on their own copy of A (broadcast once at input
      // distribution).  Backends that can never split (block_lu, bcr, rgf
      // requested statically) skip the whole member protocol — the extra
      // ranks idle exactly like the pre-spatial engine; kAuto keeps it on
      // because its per-task resolution may pick a cooperative backend.
      const bool may_cooperate =
          request.point.solver == solvers::SolverAlgorithm::kAuto ||
          solvers::algorithm_is_cooperative(request.point.solver);
      const bool spatial_group =
          lay.width > 1 && e_comm.size() > 1 && may_cooperate;
      transport::EnergyPointOptions popt = request.point;
      popt.spatial = spatial_group ? &e_comm : nullptr;
      // Per-rank persistent boundary cache (nullptr when caching is off):
      // survives across run() calls, so repeated sweeps — the SCF outer
      // loop — reuse this rank's lead eigenproblem solves.
      popt.boundary_cache = rank_cache(wr);
      // Mirrors run_flat: drain-injection columns only when there is a
      // drain-side weight to consume them.
      popt.want_density_r = !request.density_weight_r.empty();
      // Symmetric classic contacts collapse onto the global shift (the
      // classic cache keys, batching, and spatial protocol all apply);
      // contact mode keeps per-contact shifts inside the ContactSet.
      if (!request.contacts.empty() && !contact_mode)
        popt.obc_opts.contact_shift = request.contacts[0].shift;
      if (leader && spatial_group) {
        spatial_comm = e_comm;
        members_released = false;
      }

      // --- spatial level: this energy group's accelerator share --------
      std::optional<parallel::DevicePool> slice_storage;
      parallel::DevicePool* my_pool = nullptr;
      if (pool_ != nullptr) {
        slice_storage.emplace(pool_->slice(lay.leader_index(my_color, egroup),
                                           lay.num_leaders));
        my_pool = &*slice_storage;
      }

      // Every group member receives the owned blocks once via the group
      // broadcast.  Energy-group leaders fold/assemble them to solve;
      // members of a spatial group assemble them too — they need their own
      // device matrices to compute SPIKE partitions of A per task.
      transport::EnergyPointContext ctx;
      std::map<idx, std::unique_ptr<KData>> cache;
      for (const idx k : lay.owned[static_cast<std::size_t>(my_color)]) {
        dft::LeadBlocks lead;
        std::vector<dft::LeadBlocks> extras(m_count);
        if (k_comm.rank() == 0 && rank_error == nullptr) {
          try {
            lead = wr == 0 ? (*request.leads)[static_cast<std::size_t>(k)]
                           : recv_lead_blocks(comm, 0);
            for (std::size_t m = 0; m < m_count; ++m)
              extras[m] = wr == 0 ? (*request.contact_leads)[m]
                                                            [static_cast<
                                                                std::size_t>(k)]
                                  : recv_lead_blocks(comm, 0);
          } catch (...) {
            rank_error = std::current_exception();
            lead = dft::LeadBlocks{};
            extras.assign(m_count, dft::LeadBlocks{});
          }
        }
        // Collectives over the momentum group — always run, so members
        // never stall on a group whose inputs failed to arrive.  The
        // extras broadcast count is symmetric on every rank (m_count comes
        // from the shared request).
        broadcast_lead_blocks(k_comm, lead);
        for (auto& ex : extras) broadcast_lead_blocks(k_comm, ex);
        if ((!leader && !spatial_group) || rank_error != nullptr) continue;
        try {
          // The root folded its leads when the simulator was built (and
          // the SCF loop sweeps the same ones dozens of times); its leader
          // reuses them instead of re-folding per run.
          const dft::FoldedLead* pre =
              wr == 0 && request.folded != nullptr
                  ? &(*request.folded)[static_cast<std::size_t>(k)]
                  : nullptr;
          // The worker's boundary-cache key carries the *global* k index:
          // stolen tasks land in the thief's cache under the owner's k, so
          // two momenta sharing an energy can never alias.
          transport::EnergyPointOptions kopt = popt;
          kopt.k_index = k;
          cache.emplace(k, std::make_unique<KData>(std::move(lead), request,
                                                   kopt, ctx, my_pool, pre,
                                                   /*build_worker=*/leader,
                                                   std::move(extras),
                                                   contact_mode));
        } catch (...) {
          rank_error = std::current_exception();
        }
      }

      // --- energy level: pull tasks until the coordinator says done ----
      if (leader) {
        // Non-spatial leaders accumulate assignments into a same-shape
        // bucket and flush it through the batched pipeline: on capacity,
        // on a block-structure change (a stolen k with different blocks),
        // and at protocol end.  Stolen blocks are still fetched at
        // accumulation time, so the fetch rides ahead of the flush.
        // Spatial groups solve cooperatively, one point at a time; contact
        // mode routes every task through the ContactSet entry points
        // (never the batched classic pipeline).
        // An active scattering model disqualifies batching outright (the
        // device shape is unknown until a task's blocks arrive, so this is
        // spec-level, conservative): attached probes would only degrade
        // the batch to serial scalar solves inside solve_energy_batch.
        const bool use_batches =
            config_.batch_tasks && !spatial_group && !contact_mode &&
            popt.scattering.algorithm ==
                scattering::ScatteringAlgorithm::kNone;
        const std::size_t batch_cap =
            static_cast<std::size_t>(std::max(1, config_.max_batch));
        // This leader's backend policy over its accelerator slice.  The
        // residency cache is the rank's persistent one, so operands staged
        // in this sweep hit residency in the next (SCF iterations).
        std::optional<numeric::DeviceBackend> device_storage;
        std::optional<BackendArbiter> arbiter;
        if (use_batches)
          arbiter = make_backend_arbiter(config_, device_storage, my_pool,
                                         rank_residency(wr));
        struct PendingTask {
          idx ik, ie;
          const KData* kd;
        };
        std::vector<PendingTask> pending;
        idx pending_nb = 0, pending_s = 0;
        transport::BatchContext bctx;
        const auto flush_pending = [&]() {
          if (pending.empty()) return;
          std::vector<PendingTask> batch;
          batch.swap(pending);
          if (rank_error != nullptr) return;  // drained, not solved
          try {
            std::vector<transport::BatchTask> bt;
            bt.reserve(batch.size());
            for (const PendingTask& p : batch)
              bt.push_back({p.ik,
                            request.energies[static_cast<std::size_t>(p.ik)]
                                            [static_cast<std::size_t>(p.ie)],
                            &p.kd->dm, &p.kd->lead, &p.kd->folded});
            // The flushed bucket's shape is (pending_nb, pending_s) — set
            // when its tasks were queued, before any shape change flushes.
            numeric::Backend& bucket_backend =
                arbiter.has_value() ? arbiter->choose(pending_nb, pending_s)
                                    : numeric::host_backend();
            transport::BatchStats bs;
            const double t0 = now_seconds();
            const auto res = transport::solve_energy_batch(
                bctx, bt, popt, my_pool, bucket_backend,
                config_.max_batch, &bs);
            local.busy_seconds += now_seconds() - t0;
            local.tasks += static_cast<idx>(batch.size());
            if (bs.batched_solve) {
              local.batches += bs.batches;
              local.batched_tasks += bs.tasks;
            }
            local.prefetch_hits += bs.prefetch_hits;
            local.prefetch_misses += bs.prefetch_misses;
            local.device_batches += bs.device_batches;
            local.residency_hits += bs.residency_hits;
            local.residency_misses += bs.residency_misses;
            for (std::size_t j = 0; j < batch.size(); ++j) {
              record_sample(local, lay, request, batch[j].ik, batch[j].ie,
                            res[j]);
              accumulate_charge(local, request, lay, *batch[j].kd,
                                batch[j].ik, batch[j].ie, res[j]);
            }
          } catch (...) {
            rank_error = std::current_exception();
          }
        };
        for (;;) {
          comm.send({0.0, static_cast<double>(my_color)}, 0, kTagRequest);
          const auto assign = comm.recv(0, kTagAssign);
          const auto ik = static_cast<idx>(assign.at(0));
          if (ik < 0) break;
          if (rank_error != nullptr) {
            // Drain, don't solve — and stop announcing tasks so the
            // members exit their service loop instead of waiting for a
            // cooperative solve that will never run.
            pending.clear();
            release_members();
            continue;
          }
          try {
            const auto ie = static_cast<idx>(assign.at(1));
            auto it = cache.find(ik);
            bool fetched = false;
            if (it == cache.end()) {
              // Stolen k: fetch its blocks from the coordinator, once.
              comm.send({1.0, static_cast<double>(ik)}, 0, kTagRequest);
              const dft::FoldedLead* pre =
                  wr == 0 && request.folded != nullptr
                      ? &(*request.folded)[static_cast<std::size_t>(ik)]
                      : nullptr;
              transport::EnergyPointOptions kopt = popt;
              kopt.k_index = ik;
              dft::LeadBlocks stolen = recv_lead_blocks(comm, 0);
              std::vector<dft::LeadBlocks> stolen_extras(m_count);
              for (std::size_t m = 0; m < m_count; ++m)
                stolen_extras[m] = recv_lead_blocks(comm, 0);
              it = cache
                       .emplace(ik, std::make_unique<KData>(
                                        std::move(stolen), request, kopt,
                                        ctx, my_pool, pre,
                                        /*build_worker=*/true,
                                        std::move(stolen_extras),
                                        contact_mode))
                       .first;
              fetched = true;
            }
            const bool is_gf = lay.is_greens(ik, ie);
            if (use_batches && !is_gf) {
              const KData& kd = *it->second;
              const idx nbb = kd.dm.h.num_blocks();
              const idx sbb = kd.dm.h.block_size();
              if (!pending.empty() &&
                  (nbb != pending_nb || sbb != pending_s))
                flush_pending();
              pending_nb = nbb;
              pending_s = sbb;
              pending.push_back({ik, ie, &kd});
              if (pending.size() >= batch_cap) flush_pending();
              continue;
            }
            const auto sik = static_cast<std::size_t>(ik);
            const numeric::cplx z =
                is_gf ? request.gf_nodes[sik][static_cast<std::size_t>(
                            ie - lay.n_real[sik])]
                      : numeric::cplx{
                            request.energies[sik][static_cast<std::size_t>(ie)],
                            0.0};
            // --- spatial level: announce the task to the group ---------
            // The resolved backend travels with the task: members follow
            // the leader's choice (kAuto resolution is pure, but a member
            // that lost its inputs could not resolve locally — with the
            // algorithm on the wire it can still honor the protocol by
            // sending placeholder partitions).  The announcement also
            // carries the boundary-cache key — (global ik, ie, contact
            // shift) — which members adopt into their task options, so
            // every rank of the group labels the task by the leader's key
            // no matter whose queue pull (or steal) produced it.
            if (spatial_group) {
              solvers::SolverContext binding;
              binding.pool = my_pool;
              binding.partitions = popt.partitions;
              binding.spatial = &e_comm;
              const idx nbb = it->second->dm.h.num_blocks();
              const idx sbb = it->second->dm.h.block_size();
              // GF nodes announce the (non-cooperative) RGF diagonal: the
              // members run the fetched-blocks broadcast and skip the
              // solve, exactly like a statically requested RGF task.  So
              // do multi-terminal attachments (>= 3 contacts or interior
              // blocks): solve_attached never splits spatially, and the
              // members must not wait to serve a cooperative solve the
              // leader runs solo.  A dissimilar classic pair still routes
              // through solve_boundary and may cooperate.
              // Classic tasks whose scattering model attaches probes also
              // run solo: the solve delegates to the multi-terminal path,
              // which never splits spatially.
              const bool solo =
                  is_gf ||
                  (contact_mode && !classic_pair_blocks(request, nbb)) ||
                  (!contact_mode &&
                   popt.scattering.algorithm !=
                       scattering::ScatteringAlgorithm::kNone &&
                   !scattering::assemble_probes(popt.scattering, nbb,
                                                {0, nbb - 1})
                        .empty());
              const auto algo =
                  solo ? solvers::SolverAlgorithm::kRgf
                       : solvers::resolve_algorithm(popt.solver, nbb, sbb,
                                                    2 * sbb, binding);
              std::vector<double> task{
                  1.0, static_cast<double>(ik), static_cast<double>(ie),
                  fetched ? 1.0 : 0.0,
                  static_cast<double>(static_cast<int>(algo)),
                  popt.obc_opts.contact_shift, z.real(), z.imag()};
              e_comm.bcast(task, 0);
              // A stolen k's blocks reach the members through the group,
              // mirroring the owned-k broadcast at input distribution.
              if (fetched) broadcast_lead_blocks(e_comm, it->second->lead);
            }
            if (is_gf) {
              transport::EnergyPointOptions gopt = popt;
              gopt.k_index = ik;
              gopt.spatial = nullptr;  // the RGF diagonal is a solo solve
              const double t0 = now_seconds();
              const auto diag =
                  contact_mode
                      ? it->second->worker->solve_greens(z, gopt)
                      : transport::solve_greens_diagonal(
                            ctx, it->second->dm, it->second->lead,
                            it->second->folded, z, gopt);
              local.busy_seconds += now_seconds() - t0;
              ++local.tasks;
              ++local.greens_tasks;
              const auto sg = static_cast<std::size_t>(ie - lay.n_real[sik]);
              local.charge_samples.push_back(static_cast<double>(
                  lay.e_prefix[sik] + ie));
              const auto per_cell = greens_task_charge(
                  request, it->second->lead.block_dim(),
                  request.gf_weights[sik][sg], diag);
              local.charge_samples.insert(local.charge_samples.end(),
                                          per_cell.begin(), per_cell.end());
              continue;
            }
            const double energy =
                request.energies[static_cast<std::size_t>(ik)]
                                [static_cast<std::size_t>(ie)];
            const double t0 = now_seconds();
            const auto res = it->second->worker->solve(energy);
            local.busy_seconds += now_seconds() - t0;
            ++local.tasks;
            record_sample(local, lay, request, ik, ie, res);
            accumulate_charge(local, request, lay, *it->second, ik, ie, res);
          } catch (...) {
            rank_error = std::current_exception();
          }
        }
        flush_pending();  // the tail bucket the done marker cut short
        protocol_done = true;
        release_members();
      } else if (spatial_group) {
        // --- spatial members: serve the group's cooperative solves -----
        for (;;) {
          std::vector<double> task;
          e_comm.bcast(task, 0);
          if (task.size() < 8 || task[0] < 0.0) break;
          const auto ik = static_cast<idx>(task[1]);
          const auto ie = static_cast<idx>(task[2]);
          const bool fetched = task[3] != 0.0;
          const auto algo = static_cast<solvers::SolverAlgorithm>(
              static_cast<int>(task[4]));
          // Adopt the leader's cache key: today the member's own options
          // carry the same shift (one request per run), but the announced
          // value is authoritative for the task.
          const double task_shift = task[5];
          if (fetched) {
            dft::LeadBlocks lead;
            broadcast_lead_blocks(e_comm, lead);
            if (rank_error == nullptr && cache.find(ik) == cache.end()) {
              try {
                transport::EnergyPointOptions kopt = popt;
                kopt.k_index = ik;
                kopt.obc_opts.contact_shift = task_shift;
                cache.emplace(ik, std::make_unique<KData>(
                                      std::move(lead), request, kopt, ctx,
                                      my_pool, nullptr,
                                      /*build_worker=*/false));
              } catch (...) {
                rank_error = std::current_exception();
              }
            }
          }
          if (!solvers::algorithm_is_cooperative(algo)) continue;
          const auto it = cache.find(ik);
          if (rank_error != nullptr || it == cache.end()) {
            // No usable inputs: send placeholder partitions so the leader
            // sees an error, not a hang.
            solvers::spike_spatial_member_poison(
                e_comm, popt.partitions,
                algo == solvers::SolverAlgorithm::kSpike);
            continue;
          }
          try {
            // The wire energy is authoritative (bit-identical: the leader
            // read the same request double); GF announcements never reach
            // here — kRgf fails the cooperative check above.
            const double energy = task[6];
            const double t0 = now_seconds();
            transport::serve_spatial_point(ctx, it->second->dm, energy, algo,
                                           popt.partitions, e_comm);
            local.busy_seconds += now_seconds() - t0;
          } catch (...) {
            rank_error = std::current_exception();
          }
        }
      }
    } catch (...) {
      rank_error = std::current_exception();
    }
    // The leader may have left the guarded section with its members still
    // waiting: release them (best effort — the marker is tiny).
    release_members();
    if (leader && !protocol_done) {
      // The exception escaped before (or inside) the pull loop: count this
      // leader out with the coordinator so rank 0 can join the service
      // thread.  Best effort — the drain messages are tiny.
      try {
        for (;;) {
          comm.send({0.0, static_cast<double>(my_color)}, 0, kTagRequest);
          if (static_cast<idx>(comm.recv(0, kTagAssign).at(0)) < 0) break;
        }
      } catch (...) {
      }
    }
    if (wr == 0) service.join();

    // --- assembly: rooted collectives ----------------------------------
    const auto gathered = comm.gatherv(local.samples, 0);
    std::vector<double> charge_gathered;
    const bool want_charge = !request.density_weight.empty() ||
                             !request.density_weight_contacts.empty() ||
                             request_has_greens(request);
    if (want_charge) charge_gathered = comm.gatherv(local.charge_samples, 0);
    const auto rank_stats = comm.gatherv(
        {local.busy_seconds, static_cast<double>(local.tasks),
         static_cast<double>(local.batches),
         static_cast<double>(local.batched_tasks),
         static_cast<double>(local.prefetch_hits),
         static_cast<double>(local.prefetch_misses),
         static_cast<double>(local.greens_tasks),
         static_cast<double>(local.device_batches),
         static_cast<double>(local.residency_hits),
         static_cast<double>(local.residency_misses)},
        0);

    if (wr == 0) {
      for (std::size_t i = 0; i + stride <= gathered.size(); i += stride) {
        const auto [ik, ie] = lay.unflatten(static_cast<idx>(gathered[i]));
        const auto sk = static_cast<std::size_t>(ik);
        const auto se = static_cast<std::size_t>(ie);
        out.transmission[sk][se] = gathered[i + 1];
        out.caroli[sk][se] = gathered[i + 2];
        out.propagating[sk][se] = static_cast<idx>(gathered[i + 3]);
        // stride > 4 carries the row-major ncon x ncon pairwise T matrix.
        for (std::size_t q = 0; q + 4 < stride; ++q)
          out.t_matrix[sk][se][q] = gathered[i + 4 + q];
      }
      if (want_charge) {
        // Deterministic charge: per-task contributions summed in flat task
        // order, independent of which rank solved what (work stealing
        // moves tasks between ranks run to run; mirrors run_flat).
        const std::size_t rec = 1 + static_cast<std::size_t>(request.cells);
        std::vector<std::vector<double>> per_task(
            static_cast<std::size_t>(lay.total_tasks));
        for (std::size_t i = 0; i + rec <= charge_gathered.size(); i += rec)
          per_task[static_cast<std::size_t>(charge_gathered[i])].assign(
              charge_gathered.begin() + static_cast<std::ptrdiff_t>(i + 1),
              charge_gathered.begin() + static_cast<std::ptrdiff_t>(i + rec));
        for (const auto& pc : per_task)
          for (std::size_t c = 0; c < pc.size(); ++c) out.charge[c] += pc[c];
      }
      out.stats.ranks = lay.world;
      out.stats.energy_groups = lay.num_leaders;
      out.stats.tasks_total = lay.total_tasks;
      out.stats.tasks_stolen = co.stolen;
      out.stats.tasks_per_rank.clear();
      out.stats.busy_seconds_per_rank.clear();
      idx batched_tasks_total = 0;
      constexpr std::size_t kStatsStride = 10;
      for (std::size_t r = 0; kStatsStride * r + 9 < rank_stats.size(); ++r) {
        const std::size_t base = kStatsStride * r;
        out.stats.busy_seconds_per_rank.push_back(rank_stats[base]);
        out.stats.tasks_per_rank.push_back(
            static_cast<idx>(rank_stats[base + 1]));
        out.stats.batches_issued += static_cast<idx>(rank_stats[base + 2]);
        batched_tasks_total += static_cast<idx>(rank_stats[base + 3]);
        out.stats.prefetch_hits += static_cast<idx>(rank_stats[base + 4]);
        out.stats.prefetch_misses +=
            static_cast<idx>(rank_stats[base + 5]);
        out.stats.tasks_greens += static_cast<idx>(rank_stats[base + 6]);
        out.stats.device_batches += static_cast<idx>(rank_stats[base + 7]);
        out.stats.residency_hits += static_cast<idx>(rank_stats[base + 8]);
        out.stats.residency_misses +=
            static_cast<idx>(rank_stats[base + 9]);
      }
      if (out.stats.batches_issued > 0)
        out.stats.mean_batch_size =
            static_cast<double>(batched_tasks_total) /
            static_cast<double>(out.stats.batches_issued);
    }

    // The protocol is drained and every collective matched; now the error
    // may surface.
    if (rank_error == nullptr && wr == 0 && service_error != nullptr)
      rank_error = service_error;
    if (rank_error != nullptr) std::rethrow_exception(rank_error);
  });
  out.stats.wall_seconds = now_seconds() - t_start;
  return out;
}

}  // namespace omenx::omen
