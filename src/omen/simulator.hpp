// High-level OMEN-style simulator: the public API used by the examples and
// the benchmark harness.
//
// A Simulator owns one device (structure + basis + Hamiltonian blocks) and
// runs transport over energies and transverse momenta with the configured
// OBC and linear-solver algorithms (any registered solvers::Solver backend,
// or kAuto for the cost-model choice).  All (k, E) sweeps — transmission,
// charge, current, and the SCF loop — route through the distributed
// execution engine (omen/engine.hpp): momentum groups sized by the dynamic
// allocation, energy groups pulling from the shared work queue, and with
// ranks_per_energy_group > 1 each solve split spatially across the group's
// ranks — the three-level parallelism of Fig. 9.  num_ranks = 1 is the
// degenerate single-process case.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "charge/quadrature.hpp"
#include "dft/hamiltonian.hpp"
#include "lattice/structure.hpp"
#include "omen/engine.hpp"
#include "parallel/device.hpp"
#include "poisson/scf.hpp"
#include "transport/bands.hpp"
#include "transport/transmission.hpp"

namespace omenx::omen {

using numeric::idx;

struct SimulationConfig {
  lattice::Structure structure;
  dft::Functional functional = dft::Functional::kLDA;
  dft::BuildOptions build;
  transport::EnergyPointOptions point;
  idx num_k = 1;          ///< transverse momentum points (z-periodic only)
  int num_devices = 2;    ///< emulated accelerators
  double temperature_k = 300.0;
  /// Distribution (Fig. 9): communicator ranks for the momentum/energy
  /// hierarchy.  1 = the degenerate single-process case (flat thread-pool
  /// loop, the pre-engine behavior).
  int num_ranks = 1;
  /// Energy-group width (Fig. 9's spatial level): > 1 makes the
  /// cooperative backends (spike, splitsolve) split each (k, E) solve's
  /// SPIKE partitions across the group's ranks, bit-identically to the
  /// width-1 run for equal `point.partitions`.
  int ranks_per_energy_group = 1;
  bool work_stealing = true;       ///< dynamic balancing between k groups
  /// Cross-sweep OBC boundary caching (per engine rank): the lead
  /// eigenproblem at each (k, E, contact-shift) is solved once and reused
  /// by every later sweep — bit-identical to recomputation.  Benchmarks
  /// turn it off for an honest baseline.
  bool cache_boundaries = true;
  /// Batched execution: fuse queued same-shape (k, E) tasks into batched
  /// numeric::Backend calls with the OBC stage prefetching asynchronously
  /// ahead of the device phase.  Bit-identical to the unbatched path.
  /// Benchmarks turn it off for the single-point baseline.
  bool batch_tasks = true;
  /// Tasks per batched call (also the nominal batch for kAuto resolution).
  int max_batch = 16;
  /// Backend for the batched device phase: "auto" (host-vs-device by the
  /// perf crossover model), "host", "device" (offload through the
  /// simulator's DevicePool), or any registered numeric::Backend name.
  /// Bit-identical spectra/charge for every choice.
  std::string backend = "auto";
};

struct Spectrum {
  std::vector<double> energies;
  std::vector<double> transmission;         ///< k-averaged T(E)
  std::vector<idx> propagating;             ///< k-summed channel counts
};

class Simulator {
 public:
  explicit Simulator(SimulationConfig config);

  const SimulationConfig& config() const noexcept { return config_; }
  const dft::LeadBlocks& lead_blocks(idx ik = 0) const;
  const dft::FoldedLead& folded_lead(idx ik = 0) const;

  /// Band structure of the (first-k) lead.
  transport::BandStructure bands(idx nk = 21) const;

  /// N_SS of the assembled device (atoms x orbitals).
  idx hamiltonian_dimension() const;

  /// T(E) over `energies`, averaged over the k grid with trapezoidal BZ
  /// weights (the closed [0, pi] grid half-weights both zone edges), with a
  /// flat potential or the provided per-cell potential.  Parallel over
  /// (k, E).
  Spectrum transmission_spectrum(
      const std::vector<double>& energies,
      const std::vector<double>* cell_potential = nullptr);

  /// Full observables at one energy (first k point).
  transport::EnergyPointResult solve_point(
      double energy, const std::vector<double>* cell_potential = nullptr);

  /// Ballistic two-contact charge per physical cell, integrated with the
  /// selected charge::Quadrature backend.  The default kRealGrid fills
  /// source-injected states at mu_l and drain-injected states at mu_r under
  /// trapezoid weights on `energies` (valid on non-uniform/adaptive grids)
  /// — bit-identical to the pre-registry charge path.  kContour sweeps the
  /// equilibrium window below min(mu_l, mu_r) on the complex contour
  /// (Green's-function nodes solved by the same engine sweep) and keeps
  /// only the non-equilibrium window of `energies` on the real axis.
  /// `energies` must hold >= 2 strictly increasing points (it anchors the
  /// spectral window even when the contour replaces it); throws
  /// std::invalid_argument otherwise.
  std::vector<double> charge_density(
      const std::vector<double>& energies, double mu_l, double mu_r,
      const std::vector<double>* potential,
      charge::QuadratureAlgorithm quadrature =
          charge::QuadratureAlgorithm::kRealGrid,
      const charge::QuadratureOptions& quadrature_options = {});

  /// Adaptive energy grid for the given potential: bisect the base grid
  /// where the transmission (Caroli under decimation) jumps by more than
  /// `tol` — unlike the lead's propagating-mode count, the transmission
  /// sees the device potential, so refinement clusters at the band edges
  /// and barrier steps the potential moves.  Every refinement pass is
  /// evaluated as one engine sweep (the midpoint solves distribute exactly
  /// like any other (k, E) sweep).  Used by the SCF loop.
  std::vector<double> adaptive_energy_grid(
      std::vector<double> base, const std::vector<double>* cell_potential,
      double tol = 0.5, double min_spacing = 1e-3);

  /// Ballistic drain current (2e/h * eV units) through the device with the
  /// given potential profile.
  double current(const std::vector<double>& energies, double mu_l, double mu_r,
                 const std::vector<double>* potential);

  /// Self-consistent Id(Vgs) sweep: for each gate bias run the
  /// Schroedinger-Poisson loop with the two-contact ballistic charge model
  /// and integrate the Landauer current.  With `scf.warm_start` each bias
  /// point starts from the previous point's converged potential instead of
  /// the Laplace solution; with `scf.adaptive_energy_grid` the grid is
  /// regenerated from `energies` every outer SCF iteration
  /// (adaptive_energy_grid), so refinement follows the band edges as the
  /// potential converges.
  struct IvPoint {
    double vgs;
    double current;
    int scf_iterations;
    bool converged;
    std::vector<double> potential;  ///< converged per-cell potential (eV)
  };
  /// `mu_source` is the source Fermi level (eV, absolute); the drain sits
  /// at mu_source - vds.
  std::vector<IvPoint> transfer_characteristics(
      const std::vector<double>& vgs_values, double vds,
      const lattice::DeviceRegions& regions,
      const std::vector<double>& energies, double mu_source,
      const poisson::ScfOptions& scf = {});

  /// Execution statistics of the most recent engine sweep (task counts,
  /// stolen tasks, per-rank busy time).
  const EngineStats& last_sweep_stats() const noexcept { return stats_; }

  /// Cumulative (k, E) solves issued across every engine sweep since
  /// construction or the last reset — wave-function tasks plus contour
  /// Green's-function nodes.  The charge-quadrature benchmark reads this to
  /// compare backends on total solve count, which last_sweep_stats() (one
  /// sweep only) cannot provide across an SCF iteration history.
  idx total_tasks_issued() const noexcept { return total_tasks_; }
  void reset_task_counter() noexcept { total_tasks_ = 0; }

  /// Set the uniform lead (contact) potential shift handed to the OBC
  /// stage.  A changed value invalidates the boundary caches at the next
  /// sweep (the engine detects the option change, exactly once); an
  /// unchanged value keeps every cached lead solve.
  void set_contact_shift(double shift);

  /// Drop every cached boundary (lead electrostatics changed by other
  /// means, or to bound the footprint between very different workloads).
  void invalidate_boundary_cache();

  /// Cumulative boundary-cache counters of the engine's per-rank caches.
  obc::BoundaryCache::Stats boundary_cache_stats() const;

 private:
  SimulationConfig config_;
  std::vector<dft::LeadBlocks> lead_;    ///< one per k point
  std::vector<dft::FoldedLead> folded_;  ///< one per k point
  std::vector<double> k_values_;
  std::unique_ptr<parallel::DevicePool> pool_;
  std::unique_ptr<Engine> engine_;       ///< all sweeps route through this
  EngineStats stats_;
  idx total_tasks_ = 0;  ///< cumulative solves (see total_tasks_issued)
  double kt_ = 0.0259;
  /// Lead spectral minimum at k = 0 (eV, zero potential), computed once at
  /// construction: the contour quadrature anchors below
  /// band_min + min(0, potential) + min(0, contact_shift) - margin.
  double lead_band_min_ = 0.0;
};

}  // namespace omenx::omen
