// High-level OMEN-style simulator: the public API used by the examples and
// the benchmark harness.
//
// A Simulator owns one device (structure + basis + Hamiltonian blocks) and
// runs transport over energies and transverse momenta with the configured
// OBC and linear-solver algorithms (any registered solvers::Solver backend,
// or kAuto for the cost-model choice).  All (k, E) sweeps — transmission,
// charge, current, and the SCF loop — route through the distributed
// execution engine (omen/engine.hpp): momentum groups sized by the dynamic
// allocation, energy groups pulling from the shared work queue, and with
// ranks_per_energy_group > 1 each solve split spatially across the group's
// ranks — the three-level parallelism of Fig. 9.  num_ranks = 1 is the
// degenerate single-process case.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "charge/quadrature.hpp"
#include "dft/hamiltonian.hpp"
#include "lattice/structure.hpp"
#include "omen/engine.hpp"
#include "parallel/device.hpp"
#include "poisson/scf.hpp"
#include "scattering/self_energy.hpp"
#include "transport/bands.hpp"
#include "transport/transmission.hpp"

namespace omenx::omen {

using numeric::idx;

/// One terminal of the device as the user configures it — the simulator
/// builds the lead blocks, resolves the attachment block, and threads the
/// result through every engine sweep as a transport::ContactSet.
struct ContactConfig {
  /// Uniform lead potential shift (eV), the per-contact generalization of
  /// ObcOptions::contact_shift.  Mutable after construction through
  /// Simulator::set_contact_shift(contact, shift).
  double shift = 0.0;
  /// Device block the contact attaches to: 0, transport::kLastBlock, or an
  /// interior block (interior attachments need a kMultiTerminal solver:
  /// rgf, block_lu, or kAuto).
  idx block = transport::kLastBlock;
  /// Optional lead material: when set, lead blocks are built from this
  /// structure (dissimilar leads); empty reuses the device's own lead.
  /// Must match the device's orbitals-per-cell (the self-energy block must
  /// fit the device diagonal).
  std::optional<lattice::Structure> material;
};

struct SimulationConfig {
  lattice::Structure structure;
  dft::Functional functional = dft::Functional::kLDA;
  dft::BuildOptions build;
  /// Per-point transport options.  `point.scattering` selects the
  /// dissipation model (scattering::Spec): the default kNone is the exact
  /// ballistic pipeline; buttiker_probe at eta > 0 makes the simulator
  /// materialize the model's probe pseudo-terminals into every sweep's
  /// terminal list and run the zero-current tuning loop where observables
  /// need it (terminal_currents, dissipative charge_density).
  transport::EnergyPointOptions point;
  /// Inner Newton loop of the probe chemical-potential tuning.
  scattering::ProbeTuneOptions probe_tune;
  /// Terminal layout.  Empty = the classic two-identical-contacts device
  /// (source at block 0, drain at the last block, both the device's lead
  /// material) — the seed behavior, bit-identical.  Non-empty layouts are
  /// validated at construction (>= 2 contacts, in-range pairwise-distinct
  /// attachment blocks); a symmetric pair configured explicitly is
  /// normalized by the engine back onto the classic pipeline and stays
  /// bit-identical to the empty layout.
  std::vector<ContactConfig> contacts;
  idx num_k = 1;          ///< transverse momentum points (z-periodic only)
  int num_devices = 2;    ///< emulated accelerators
  double temperature_k = 300.0;
  /// Distribution (Fig. 9): communicator ranks for the momentum/energy
  /// hierarchy.  1 = the degenerate single-process case (flat thread-pool
  /// loop, the pre-engine behavior).
  int num_ranks = 1;
  /// Energy-group width (Fig. 9's spatial level): > 1 makes the
  /// cooperative backends (spike, splitsolve) split each (k, E) solve's
  /// SPIKE partitions across the group's ranks, bit-identically to the
  /// width-1 run for equal `point.partitions`.
  int ranks_per_energy_group = 1;
  bool work_stealing = true;       ///< dynamic balancing between k groups
  /// Cross-sweep OBC boundary caching (per engine rank): the lead
  /// eigenproblem at each (k, E, contact-shift) is solved once and reused
  /// by every later sweep — bit-identical to recomputation.  Benchmarks
  /// turn it off for an honest baseline.
  bool cache_boundaries = true;
  /// Batched execution: fuse queued same-shape (k, E) tasks into batched
  /// numeric::Backend calls with the OBC stage prefetching asynchronously
  /// ahead of the device phase.  Bit-identical to the unbatched path.
  /// Benchmarks turn it off for the single-point baseline.
  bool batch_tasks = true;
  /// Tasks per batched call (also the nominal batch for kAuto resolution).
  int max_batch = 16;
  /// Backend for the batched device phase: "auto" (host-vs-device by the
  /// perf crossover model), "host", "device" (offload through the
  /// simulator's DevicePool), or any registered numeric::Backend name.
  /// Bit-identical spectra/charge for every choice.
  std::string backend = "auto";
};

struct Spectrum {
  std::vector<double> energies;
  std::vector<double> transmission;         ///< k-averaged T(E)
  std::vector<idx> propagating;             ///< k-summed channel counts
  /// Pairwise terminal transmission, k-averaged with the same BZ weights:
  /// t_matrix[ie][p * nc + q] = T_pq(E_ie).  Filled only for >= 3-terminal
  /// layouts (the classic pair is fully described by `transmission`).
  std::vector<std::vector<double>> t_matrix;
};

class Simulator {
 public:
  explicit Simulator(SimulationConfig config);

  const SimulationConfig& config() const noexcept { return config_; }
  const dft::LeadBlocks& lead_blocks(idx ik = 0) const;
  const dft::FoldedLead& folded_lead(idx ik = 0) const;

  /// Band structure of the (first-k) lead.
  transport::BandStructure bands(idx nk = 21) const;

  /// N_SS of the assembled device (atoms x orbitals).
  idx hamiltonian_dimension() const;

  /// T(E) over `energies`, averaged over the k grid with trapezoidal BZ
  /// weights (the closed [0, pi] grid half-weights both zone edges), with a
  /// flat potential or the provided per-cell potential.  Parallel over
  /// (k, E).
  Spectrum transmission_spectrum(
      const std::vector<double>& energies,
      const std::vector<double>* cell_potential = nullptr);

  /// Full observables at one energy (first k point).
  transport::EnergyPointResult solve_point(
      double energy, const std::vector<double>* cell_potential = nullptr);

  /// Ballistic two-contact charge per physical cell, integrated with the
  /// selected charge::Quadrature backend.  The default kRealGrid fills
  /// source-injected states at mu_l and drain-injected states at mu_r under
  /// trapezoid weights on `energies` (valid on non-uniform/adaptive grids)
  /// — bit-identical to the pre-registry charge path.  kContour sweeps the
  /// equilibrium window below min(mu_l, mu_r) on the complex contour
  /// (Green's-function nodes solved by the same engine sweep) and keeps
  /// only the non-equilibrium window of `energies` on the real axis.
  /// `energies` must hold >= 2 strictly increasing points (it anchors the
  /// spectral window even when the contour replaces it); throws
  /// std::invalid_argument otherwise.
  ///
  /// Deprecated in favor of the per-terminal overload below: this is the
  /// classic two-contact entry point, kept as a thin forwarding wrapper so
  /// existing examples and tests compile unchanged.  mu_l occupies the
  /// contact attached at block 0, mu_r the one at the last block.  Throws
  /// std::invalid_argument when >= 3 contacts are configured.
  std::vector<double> charge_density(
      const std::vector<double>& energies, double mu_l, double mu_r,
      const std::vector<double>* potential,
      charge::QuadratureAlgorithm quadrature =
          charge::QuadratureAlgorithm::kRealGrid,
      const charge::QuadratureOptions& quadrature_options = {});

  /// N-terminal charge per physical cell: contact p's injected density is
  /// occupied at mu[p] (one entry per configured contact, terminal order).
  /// Two-terminal layouts forward to the classic pair path above
  /// (bit-identical weights); >= 3 terminals integrate per-contact
  /// trapezoid-times-Fermi weights on `energies` (real-grid only — the
  /// contour's equilibrium/bias split is a two-reservoir construction).
  std::vector<double> charge_density(
      const std::vector<double>& energies, const std::vector<double>& mu,
      const std::vector<double>* potential,
      charge::QuadratureAlgorithm quadrature =
          charge::QuadratureAlgorithm::kRealGrid,
      const charge::QuadratureOptions& quadrature_options = {});

  /// Terminal currents I_p (2e/h * eV units, positive into the device) of
  /// the configured contact layout at the given chemical potentials:
  /// the Buettiker sum over the k-averaged T_pq spectrum.  sum_p I_p
  /// vanishes to rounding (transport::buttiker_currents's antisymmetric
  /// accumulation).  Two-terminal layouts reduce to {+I, -I} of the
  /// Landauer current.
  std::vector<double> terminal_currents(const std::vector<double>& energies,
                                        const std::vector<double>& mu,
                                        const std::vector<double>* potential);

  /// Adaptive energy grid for the given potential: bisect the base grid
  /// where the transmission (Caroli under decimation) jumps by more than
  /// `tol` — unlike the lead's propagating-mode count, the transmission
  /// sees the device potential, so refinement clusters at the band edges
  /// and barrier steps the potential moves.  Every refinement pass is
  /// evaluated as one engine sweep (the midpoint solves distribute exactly
  /// like any other (k, E) sweep).  Used by the SCF loop.
  std::vector<double> adaptive_energy_grid(
      std::vector<double> base, const std::vector<double>* cell_potential,
      double tol = 0.5, double min_spacing = 1e-3);

  /// Ballistic drain current (2e/h * eV units) through the device with the
  /// given potential profile.
  double current(const std::vector<double>& energies, double mu_l, double mu_r,
                 const std::vector<double>* potential);

  /// Self-consistent Id(Vgs) sweep: for each gate bias run the
  /// Schroedinger-Poisson loop with the two-contact ballistic charge model
  /// and integrate the Landauer current.  With `scf.warm_start` each bias
  /// point starts from the previous point's converged potential instead of
  /// the Laplace solution; with `scf.adaptive_energy_grid` the grid is
  /// regenerated from `energies` every outer SCF iteration
  /// (adaptive_energy_grid), so refinement follows the band edges as the
  /// potential converges.
  struct IvPoint {
    double vgs;
    double current;
    int scf_iterations;
    bool converged;
    std::vector<double> potential;  ///< converged per-cell potential (eV)
  };
  /// `mu_source` is the source Fermi level (eV, absolute); the drain sits
  /// at mu_source - vds.
  std::vector<IvPoint> transfer_characteristics(
      const std::vector<double>& vgs_values, double vds,
      const lattice::DeviceRegions& regions,
      const std::vector<double>& energies, double mu_source,
      const poisson::ScfOptions& scf = {});

  /// Execution statistics of the most recent engine sweep (task counts,
  /// stolen tasks, per-rank busy time).
  const EngineStats& last_sweep_stats() const noexcept { return stats_; }

  /// Cumulative (k, E) solves issued across every engine sweep since
  /// construction or the last reset — wave-function tasks plus contour
  /// Green's-function nodes.  The charge-quadrature benchmark reads this to
  /// compare backends on total solve count, which last_sweep_stats() (one
  /// sweep only) cannot provide across an SCF iteration history.
  idx total_tasks_issued() const noexcept { return total_tasks_; }
  void reset_task_counter() noexcept { total_tasks_ = 0; }

  /// Set the uniform lead (contact) potential shift handed to the OBC
  /// stage.  A changed value invalidates the boundary caches at the next
  /// sweep (the engine detects the option change, exactly once); an
  /// unchanged value keeps every cached lead solve.
  ///
  /// Deprecated in favor of set_contact_shift(contact, shift): this is the
  /// uniform-shift wrapper, forwarding the one value to every configured
  /// contact (and to the classic ObcOptions::contact_shift).
  void set_contact_shift(double shift);

  /// Per-contact lead potential shift.  The engine's per-contact
  /// signatures detect the change and drop exactly that contact's cache
  /// entries at the next sweep — the other contacts keep their cached lead
  /// solves.  Throws std::invalid_argument for an out-of-range index.
  void set_contact_shift(idx contact, double shift);

  /// Number of configured contacts (0 = the implicit classic pair).
  idx num_contacts() const noexcept {
    return static_cast<idx>(config_.contacts.size());
  }

  /// Swap the scattering model (scattering::Spec) and rebuild the probe
  /// layout against the configured contacts.  kNone (or buttiker_probe at
  /// eta <= 0) restores the exact ballistic pipeline.  Lead boundary caches
  /// survive: none of the built-in models modifies a contact boundary
  /// (scattering::kModifiesBoundaries), so cached lead solves stay valid —
  /// and are *shared* between ballistic and dissipative sweeps.
  void set_scattering(const scattering::Spec& spec);

  /// Probe pseudo-terminals the configured model attaches (empty =
  /// ballistic).  Terminal order of every sweep is [real contacts...,
  /// probes in this order].
  const std::vector<scattering::ProbeSite>& probe_sites() const noexcept {
    return probe_sites_;
  }

  /// Result of the most recent probe-tuning pass (terminal_currents or a
  /// dissipative charge_density): tuned mu per terminal, Newton iteration
  /// count, and the final relative probe-current leak.
  const scattering::ProbeTuneResult& last_probe_tune() const noexcept {
    return last_tune_;
  }

  /// Drop every cached boundary (lead electrostatics changed by other
  /// means, or to bound the footprint between very different workloads).
  void invalidate_boundary_cache();

  /// Cumulative boundary-cache counters of the engine's per-rank caches.
  obc::BoundaryCache::Stats boundary_cache_stats() const;

  /// Cumulative counters of one contact's cache entries (classic requests
  /// fetch under contact id 0).
  obc::BoundaryCache::Stats contact_boundary_cache_stats(idx contact) const;

 private:
  /// Builds the SweepContact list (+ lead-table pointer) for one request;
  /// no-op for the empty classic layout.  `mu` (terminal order, optional)
  /// fills the per-contact chemical potentials.
  void attach_contacts(SweepRequest& req, const std::vector<double>* mu) const;

  /// Terminal indices of the classic pair: .first attaches at block 0,
  /// .second at the last block.  Only valid for two-contact layouts.
  std::pair<idx, idx> classic_pair_indices() const;

  /// Recompute probe_sites_ from the configured scattering model against
  /// the device's block layout and contact attachment blocks.
  void rebuild_probe_sites();

  /// Tune the probe potentials against a swept pairwise T matrix: `mu`
  /// holds the real terminals' potentials (terminal order); probes start
  /// from their mean.  Records the result in last_tune_ and the probe
  /// counters in stats_.  Returns the full tuned mu vector.
  const std::vector<double>& tune_probes(const Spectrum& sp,
                                         const std::vector<double>& mu);

  /// Two-pass dissipative charge: T sweep + probe tuning, then a
  /// per-terminal real-grid charge sweep where every terminal (probes at
  /// their tuned mu_p included) occupies its injected states with its own
  /// Fermi weight.
  std::vector<double> dissipative_charge(const std::vector<double>& energies,
                                         const std::vector<double>& mu,
                                         const std::vector<double>* potential);

  SimulationConfig config_;
  std::vector<dft::LeadBlocks> lead_;    ///< one per k point
  std::vector<dft::FoldedLead> folded_;  ///< one per k point
  std::vector<double> k_values_;
  /// Lead blocks of the distinct contact materials: [material][ik], the
  /// table SweepRequest::contact_leads points at.  One row per configured
  /// contact with a material override, in contact order.
  std::vector<std::vector<dft::LeadBlocks>> contact_leads_;
  std::vector<std::vector<dft::FoldedLead>> contact_folded_;
  /// Per contact: row index into contact_leads_, or -1 for the device's
  /// own lead material.
  std::vector<int> contact_material_;
  /// Resolved attachment block per contact (kLastBlock -> last), validated
  /// in-range and pairwise distinct at construction.
  std::vector<idx> contact_blocks_;
  idx device_blocks_ = 0;  ///< block count of the assembled device
  /// Probe pseudo-terminals of the configured scattering model, resolved
  /// against device_blocks_ and contact_blocks_ (empty = ballistic).
  std::vector<scattering::ProbeSite> probe_sites_;
  /// Most recent probe-tuning pass (see last_probe_tune()).
  scattering::ProbeTuneResult last_tune_;
  std::unique_ptr<parallel::DevicePool> pool_;
  std::unique_ptr<Engine> engine_;       ///< all sweeps route through this
  EngineStats stats_;
  idx total_tasks_ = 0;  ///< cumulative solves (see total_tasks_issued)
  double kt_ = 0.0259;
  /// Lead spectral minimum at k = 0 (eV, zero potential), computed once at
  /// construction: the contour quadrature anchors below
  /// band_min + min(0, potential) + min(0, contact_shift) - margin.
  double lead_band_min_ = 0.0;
};

}  // namespace omenx::omen
