// Distributed execution engine for the (k, E) transport workload — the
// Fig. 9 hierarchy wired end-to-end over CommWorld ranks.
//
// The engine maps the paper's three-level communicator hierarchy onto a
// rank world:
//   momentum level: the world splits into one group per k point, sized by
//     allocate_groups (the dynamic node-group allocation of Ref. [45]);
//     with fewer ranks than k points every rank becomes a group that owns
//     several k.
//   energy level:   each momentum group splits into energy groups whose
//     leaders pull (k, E) tasks from the coordinator's queue; when a
//     group's own k runs dry it is handed points of the most-loaded other
//     k (work stealing between groups).
//   spatial level:  each energy group receives a slice of the node's
//     emulated accelerators (DevicePool::slice) and, with
//     ranks_per_energy_group > 1, solves each (k, E) task *cooperatively*:
//     the group leader runs the OBCs and the SPIKE reduced system while the
//     members compute their share of the SPIKE partitions on their own copy
//     of A = E*S - H (solvers::spike_partition_owner) — one task, many
//     ranks, bit-identical to the width-1 solve for equal partition counts.
// Inputs travel once: the root sends each momentum-group leader its lead
// blocks, the leader rebroadcasts inside the group (broadcast_lead_blocks);
// a stolen k's blocks are fetched from the coordinator on first use and
// cached.  Results return through the rooted collectives (gatherv /
// reduce), assembled deterministically by flat task index, so the spectrum
// is identical for any world size.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dft/hamiltonian.hpp"
#include "numeric/device_backend.hpp"
#include "numeric/types.hpp"
#include "obc/boundary_cache.hpp"
#include "parallel/device.hpp"
#include "transport/transmission.hpp"

namespace omenx::omen {

using numeric::idx;

struct EngineConfig {
  int num_ranks = 1;               ///< world size (momentum x energy ranks)
  /// Energy-group width — the spatial level of Fig. 9.  Width w > 1 gives
  /// each (k, E) task to a whole group: cooperative backends (spike,
  /// splitsolve) split their `partitions` SPIKE partitions across the w
  /// ranks; non-cooperative backends leave the extra ranks idle.  Spectra
  /// are bit-identical across widths for equal partition counts.
  int ranks_per_energy_group = 1;
  bool work_stealing = true;       ///< hand idle groups other k's points
  /// Size-1 worlds default to the flat thread-pool loop (the degenerate
  /// case preserves the single-process behavior and its intra-process
  /// parallelism).  Benchmarks force the rank protocol to get an honest
  /// serial baseline.
  bool flat_single_rank = true;
  /// Per-rank OBC boundary caches, persistent across run() calls: the lead
  /// eigenproblem at a (k, E, contact-shift) key is solved once per rank
  /// and reused by every later sweep that revisits the point (SCF outer
  /// iterations, bias points, adaptive-grid passes).  Bit-identical to the
  /// uncached path — a hit replays the stored Boundary verbatim.  Off =
  /// recompute every evaluation (benchmark baseline).
  bool cache_boundaries = true;
  /// Fuse queued same-shape (k, E) tasks into batched numeric::Backend
  /// calls (transport::solve_energy_batch): the OBC stage of the whole
  /// bucket prefetches asynchronously while the device phase issues Step 1
  /// / block-LU factorizations as single batched calls.  Only solvers
  /// advertising kBatchable participate; spatial groups (width > 1) always
  /// solve cooperatively, one point at a time.  Bit-identical to the
  /// unbatched path, task by task.  Off = solve_energy_point per task
  /// (benchmark baseline).
  bool batch_tasks = true;
  /// Batch capacity — how many queued tasks one leader accumulates before
  /// issuing a batched call.  Also the *nominal* batch fed to kAuto
  /// resolution (rank-invariant, never the actual bucket fill, so every
  /// rank resolves the same backend).
  int max_batch = 16;
  /// Which numeric::Backend executes the batched device phase:
  ///   "auto"   — per shape bucket, host lanes vs device streams by the
  ///              perf::estimate_batch_seconds crossover (host wins without
  ///              an engine pool);
  ///   "host"   — always the thread-pool lanes;
  ///   "device" — always offload through this engine's DevicePool (each
  ///              leader drives its pool slice; degrades to host when the
  ///              engine was built without a pool);
  ///   any other registered backend name (numeric::register_backend).
  /// Every choice is bit-identical — backends run the same scalar kernels
  /// per item — so this only moves work and transfer accounting.  Unknown
  /// names throw std::invalid_argument from run().
  std::string backend = "auto";
};

/// One terminal of a sweep, in wire-friendly scalar form: every rank reads
/// these scalars straight from the shared request object (mu and the
/// per-contact cache-key ingredients never need explicit messages); only
/// the lead *matrices* travel through the communicator.
struct SweepContact {
  /// Chemical potential (eV).  The engine records it into the per-k
  /// ContactSet; charge weighting itself arrives pre-computed through the
  /// density-weight tables, and terminal currents are integrated by the
  /// caller (transport::buttiker_currents) from the returned T matrix.
  double mu = 0.0;
  double shift = 0.0;  ///< per-contact lead potential shift (eV)
  /// Attachment block: 0, transport::kLastBlock, or an interior block
  /// (interior blocks need a kMultiTerminal solver: rgf/block_lu/auto).
  idx block = transport::kLastBlock;
  /// Lead material: -1 = this k's entry of `leads` (the classic material),
  /// m >= 0 = row m of `contact_leads`.
  int material = -1;
  /// Büttiker-probe strength (eV).  > 0 marks this terminal as a lead-less
  /// phenomenological probe (transport::Contact::probe_eta): no lead blocks
  /// travel or cache for it, its self-energy is the local -i*eta*I, and
  /// `material` must stay -1 (validate_request).  mu is the probe potential,
  /// normally pre-tuned by the caller (scattering::tune_probe_potentials).
  double probe_eta = 0.0;
};

/// Inputs of one distributed (k, E) sweep.  Only the root reads the lead
/// matrices; every other rank sees grid shapes and scalar options and
/// receives matrices through the communicator.
struct SweepRequest {
  const std::vector<dft::LeadBlocks>* leads = nullptr;  ///< per k, root only
  /// Optional pre-folded leads (same indexing as `leads`, root only): ranks
  /// holding the originals reuse them instead of re-folding every run —
  /// the SCF loop sweeps the same leads dozens of times.
  const std::vector<dft::FoldedLead>* folded = nullptr;
  std::vector<std::vector<double>> energies;            ///< per-k grids
  std::vector<double> potential;                        ///< per physical cell
  idx cells = 0;
  transport::EnergyPointOptions point;
  /// When non-empty (same shape as `energies`), each task also folds
  /// weight[ik][ie] * density_per_cell into a per-cell charge accumulator
  /// that is reduce()d to the root.  `density_weight` multiplies the
  /// source-injected density (states occupied at mu_L); the optional
  /// `density_weight_r` (same shape) multiplies the drain-injected density
  /// (occupied at mu_R) — the two-contact ballistic charge.  Empty
  /// `density_weight_r` means the drain contribution is dropped.
  std::vector<std::vector<double>> density_weight;
  std::vector<std::vector<double>> density_weight_r;
  /// Complex-plane Green's-function nodes per k (contour charge
  /// quadrature, charge::Quadrature).  When non-empty (same k-shape as
  /// `energies`; per-k grids may be empty), each node z becomes one extra
  /// task solving the diagonal of G = (zS - H - Sigma)^{-1} and folding
  /// Im(gf_weights[ik][in] * G_ii) into the per-cell charge accumulator.
  /// GF tasks ride the same queue, stealing, caching (keyed with Im(E)),
  /// and deterministic flat-order assembly as the real-axis tasks; they
  /// contribute charge only — no transmission entries.
  std::vector<std::vector<numeric::cplx>> gf_nodes;
  std::vector<std::vector<numeric::cplx>> gf_weights;  ///< same shape
  /// Terminal layout.  Empty = the classic two-identical-contacts sweep
  /// (exactly the pre-refactor pipeline).  A symmetric classic pair (two
  /// material -1 contacts with equal shifts at {0, last}) is *normalized
  /// back onto that pipeline* — batching, spatial cooperation, and cache
  /// keys included — so the symmetric limit stays bit-identical at every
  /// world size.  Anything else routes each task through the ContactSet
  /// entry points; batching is disabled for those requests.
  std::vector<SweepContact> contacts;
  /// Extra lead materials, indexed [material][ik] (root only, like
  /// `leads`).  Referenced by SweepContact::material.
  const std::vector<std::vector<dft::LeadBlocks>>* contact_leads = nullptr;
  /// Per-contact density weights for >= 3-terminal charge:
  /// [contact][ik][ie] multiplies contact p's injected per-cell density
  /// (its own Fermi weight at mu_p).  Mutually exclusive with
  /// `density_weight`; 2-terminal requests keep the classic pair of
  /// weight tables.
  std::vector<std::vector<std::vector<double>>> density_weight_contacts;
};

struct EngineStats {
  int ranks = 1;
  int energy_groups = 1;
  idx tasks_total = 0;               ///< real-axis + Green's-function tasks
  idx tasks_greens = 0;              ///< contour (complex-node) solves within
  idx tasks_stolen = 0;              ///< served outside the group's own k
  std::vector<idx> tasks_per_rank;
  std::vector<double> busy_seconds_per_rank;  ///< time inside solves
  double wall_seconds = 0.0;
  // --- batched-execution counters (zero when batch_tasks is off or the
  // resolved solver lacks kBatchable) ---------------------------------
  idx batches_issued = 0;       ///< batched pipeline invocations
  double mean_batch_size = 0.0;  ///< tasks per batch, averaged over batches
  idx prefetch_hits = 0;        ///< boundary-cache hits during OBC prefetch
  idx prefetch_misses = 0;      ///< prefetch misses (or caching disabled)
  // --- device-offload counters (zero on the host backend) --------------
  idx device_batches = 0;   ///< batches whose device phase was offloaded
  idx residency_hits = 0;   ///< staged operands already device-resident
  idx residency_misses = 0;  ///< staged operands that paid an H2D transfer
  double h2d_bytes = 0.0;   ///< host->device bytes this run (pool delta)
  double d2h_bytes = 0.0;   ///< device->host bytes this run (pool delta)
  /// Per pool device: kernel-busy seconds accumulated during this run —
  /// the Fig. 12(b) occupancy timeline's integral.  Empty without a pool.
  std::vector<double> device_busy_seconds;
  // --- dissipative-transport counters (zero for ballistic sweeps; the
  // probe-tuning loop runs *above* the engine, so these are filled by the
  // caller that owns it — omen::Simulator records its last tuning pass
  // here before handing the stats out) --------------------------------
  idx probe_terminals = 0;        ///< Büttiker probes attached per task
  idx probe_iterations = 0;       ///< Newton iterations of the tuning loop
  double probe_residual = 0.0;    ///< final max |I_probe| / max |I_terminal|
  /// Per-contact boundary-cache activity of *this run* (deltas of the
  /// persistent caches, summed over ranks; index = contact id).  Empty for
  /// classic requests (no `contacts`) or when caching is disabled.  The
  /// per-contact lead-solve count of a run is `misses` (every miss is one
  /// OBC eigenproblem for that contact).
  std::vector<obc::BoundaryCache::Stats> contact_cache_stats;
};

/// Sweep outputs, valid on the calling (root) thread.
struct SweepResult {
  std::vector<std::vector<double>> transmission;  ///< [ik][ie] wave-function
  std::vector<std::vector<double>> caroli;        ///< [ik][ie] Green's-fn
  std::vector<std::vector<idx>> propagating;      ///< [ik][ie] channels
  std::vector<double> charge;                     ///< per cell, if requested
  /// Pairwise transmission [ik][ie][p*nc+q] — only shaped/filled for
  /// >= 3-terminal requests (2-terminal T stays in `transmission`/`caroli`).
  std::vector<std::vector<std::vector<double>>> t_matrix;
  EngineStats stats;
};

class Engine {
 public:
  explicit Engine(EngineConfig config, parallel::DevicePool* pool = nullptr);

  const EngineConfig& config() const noexcept { return config_; }

  /// Run the full sweep over a fresh CommWorld of config().num_ranks ranks
  /// (or the flat in-process loop for the degenerate single-rank case).
  /// A throwing solve or transfer on any rank drains the queue protocol and
  /// the assembly collectives before surfacing here as an exception — the
  /// world never deadlocks on a failed rank.
  SweepResult run(const SweepRequest& request);

  /// Drop every rank's cached boundaries *and* device-resident operands.
  /// Call when the lead electrostatics change (contact shift, lead
  /// Hamiltonian) — stale entries are unreachable once the key changes,
  /// but holding them wastes the footprint (and device memory).
  void invalidate_boundary_caches();

  /// Cumulative hit/miss/insert/invalidate counters summed over the
  /// per-rank caches (zeros when caching is disabled).
  obc::BoundaryCache::Stats boundary_cache_stats() const;

  /// Cumulative counters of one contact id, summed over the per-rank
  /// caches.  Classic (no-contacts) requests fetch under contact id 0.
  obc::BoundaryCache::Stats contact_boundary_cache_stats(int contact) const;

 private:
  SweepResult run_flat(const SweepRequest& request);
  SweepResult run_distributed(const SweepRequest& request);
  /// Rank `rank`'s persistent cache, or nullptr when caching is off.
  obc::BoundaryCache* rank_cache(int rank) const;
  /// Rank `rank`'s persistent device-residency cache, or nullptr when the
  /// engine has no pool.
  numeric::ResidencyCache* rank_residency(int rank) const;

  EngineConfig config_;
  parallel::DevicePool* pool_;
  /// One cache per world rank (index 0 doubles as the flat loop's cache),
  /// created up front so rank threads never race on the vector.
  std::vector<std::unique_ptr<obc::BoundaryCache>> caches_;
  /// One device-residency cache per world rank, same indexing and lifetime
  /// discipline as caches_: the pool's devices outlive every run(), so
  /// operands staged in one sweep hit residency in the next (the cross-SCF
  /// story), and the caches are dropped together with the boundary caches
  /// when the inputs behind the stable ids change.  Empty without a pool.
  std::vector<std::unique_ptr<numeric::ResidencyCache>> residency_;
  /// OBC options of the previous run(): the backend is part of the cache
  /// key, but a changed option set (annulus, ridge, eta, ...) would
  /// silently replay stale Boundaries — run() invalidates on mismatch.
  std::optional<obc::ObcOptions> last_obc_opts_;
  /// Content fingerprint of the previous run()'s lead matrices: different
  /// lead Hamiltonians under the same (k, E) keys would collide with the
  /// cached Boundaries, and pointer identity can't tell (a reused stack
  /// vector reallocates at the same address; in-place edits keep the
  /// address).  Hashing the entries once per run is noise next to the
  /// sweep itself.
  std::optional<std::uint64_t> last_leads_hash_;
  /// Per-contact signatures (lead-material fingerprint + shift + block) of
  /// the previous contact-mode run(): a change in one contact's lead or
  /// shift drops only that contact's cache entries (invalidate_contact)
  /// instead of the whole cache — the dissimilar-lead independence the
  /// per-contact keys exist for.
  std::optional<std::vector<std::uint64_t>> last_contact_sigs_;
};

}  // namespace omenx::omen
