#include "omen/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>

namespace omenx::omen {

std::vector<int> allocate_groups(const std::vector<idx>& energies_per_k,
                                 int total_groups) {
  const int nk = static_cast<int>(energies_per_k.size());
  if (nk == 0) throw std::invalid_argument("allocate_groups: empty k list");
  if (total_groups < nk)
    throw std::invalid_argument(
        "allocate_groups: need at least one group per k point");
  const double total_e = static_cast<double>(
      std::accumulate(energies_per_k.begin(), energies_per_k.end(), idx{0}));
  if (total_e <= 0.0)
    throw std::invalid_argument("allocate_groups: no energy points");

  // Proportional shares with a floor of 1, then largest-remainder rounding.
  std::vector<int> alloc(static_cast<std::size_t>(nk), 1);
  int remaining = total_groups - nk;
  std::vector<std::pair<double, int>> remainders;  // (fraction, k index)
  for (int k = 0; k < nk; ++k) {
    const double ideal =
        static_cast<double>(energies_per_k[static_cast<std::size_t>(k)]) /
        total_e * static_cast<double>(total_groups);
    const int extra = std::max(0, static_cast<int>(std::floor(ideal)) - 1);
    const int granted = std::min(extra, remaining);
    alloc[static_cast<std::size_t>(k)] += granted;
    remaining -= granted;
    remainders.push_back({ideal - std::floor(ideal), k});
  }
  // Stable sort: equal fractions keep ascending-k order, so allocations are
  // deterministic under remainder ties (std::sort leaves tie order
  // unspecified, which made repeat runs disagree on the layout).
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [frac, k] : remainders) {
    if (remaining == 0) break;
    ++alloc[static_cast<std::size_t>(k)];
    --remaining;
  }
  // Any leftovers go to the most loaded k points.  A max-heap on load makes
  // this O(remaining log nk) instead of the old O(remaining * nk) rescan;
  // ties break toward the smaller k index for determinism.
  if (remaining > 0) {
    const auto load = [&](int k) {
      return static_cast<double>(energies_per_k[static_cast<std::size_t>(k)]) /
             static_cast<double>(alloc[static_cast<std::size_t>(k)]);
    };
    const auto lighter = [](const std::pair<double, int>& a,
                            const std::pair<double, int>& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;
    };
    std::priority_queue<std::pair<double, int>,
                        std::vector<std::pair<double, int>>, decltype(lighter)>
        heap(lighter);
    for (int k = 0; k < nk; ++k) heap.push({load(k), k});
    while (remaining > 0) {
      const int k = heap.top().second;
      heap.pop();
      ++alloc[static_cast<std::size_t>(k)];
      --remaining;
      heap.push({load(k), k});
    }
  }
  return alloc;
}

double allocation_makespan(const std::vector<idx>& energies_per_k,
                           const std::vector<int>& groups_per_k) {
  if (energies_per_k.size() != groups_per_k.size())
    throw std::invalid_argument("allocation_makespan: size mismatch");
  double makespan = 0.0;
  for (std::size_t k = 0; k < energies_per_k.size(); ++k) {
    if (groups_per_k[k] <= 0)
      throw std::invalid_argument("allocation_makespan: empty group");
    const double t = std::ceil(static_cast<double>(energies_per_k[k]) /
                               static_cast<double>(groups_per_k[k]));
    makespan = std::max(makespan, t);
  }
  return makespan;
}

double allocation_efficiency(const std::vector<idx>& energies_per_k,
                             const std::vector<int>& groups_per_k) {
  const double total_e = static_cast<double>(std::accumulate(
      energies_per_k.begin(), energies_per_k.end(), idx{0}));
  const double total_g = static_cast<double>(
      std::accumulate(groups_per_k.begin(), groups_per_k.end(), 0));
  const double ideal = total_e / total_g;
  const double actual = allocation_makespan(energies_per_k, groups_per_k);
  return ideal / actual;
}

void broadcast_lead_blocks(parallel::Comm& comm, dft::LeadBlocks& lead) {
  // Rank 0 announces the block count; everyone then receives each matrix.
  std::vector<double> meta{
      static_cast<double>(comm.rank() == 0 ? lead.h.size() : 0)};
  comm.bcast(meta, 0);
  const std::size_t n = static_cast<std::size_t>(meta[0]);
  if (comm.rank() != 0) {
    lead.h.assign(n, numeric::CMatrix{});
    lead.s.assign(n, numeric::CMatrix{});
  }
  for (std::size_t i = 0; i < n; ++i) {
    comm.bcast(lead.h[i], 0);
    comm.bcast(lead.s[i], 0);
  }
}

}  // namespace omenx::omen
