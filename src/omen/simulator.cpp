#include "omen/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/types.hpp"
#include "transport/energy_grid.hpp"

namespace omenx::omen {

Simulator::Simulator(SimulationConfig config) : config_(std::move(config)) {
  const dft::BasisLibrary basis(config_.functional);
  const bool periodic =
      config_.structure.periodicity == lattice::Periodicity::kZ;
  const idx nk = periodic ? std::max<idx>(1, config_.num_k) : 1;
  for (idx ik = 0; ik < nk; ++ik) {
    dft::BuildOptions opts = config_.build;
    // Uniform k grid over [0, pi] (time-reversal halves the zone).
    const double k =
        nk == 1 ? 0.0
                : numeric::kPi * static_cast<double>(ik) /
                      static_cast<double>(nk - 1);
    opts.k_transverse = k;
    k_values_.push_back(k);
    lead_.push_back(dft::build_lead_blocks(config_.structure, basis, opts));
    folded_.push_back(dft::fold_lead(lead_.back()));
  }
  pool_ = std::make_unique<parallel::DevicePool>(
      std::max(1, config_.num_devices));
  EngineConfig engine_cfg;
  engine_cfg.num_ranks = std::max(1, config_.num_ranks);
  engine_cfg.ranks_per_energy_group =
      std::max(1, config_.ranks_per_energy_group);
  engine_cfg.work_stealing = config_.work_stealing;
  engine_cfg.cache_boundaries = config_.cache_boundaries;
  engine_cfg.batch_tasks = config_.batch_tasks;
  engine_cfg.max_batch = std::max(1, config_.max_batch);
  engine_cfg.backend = config_.backend;
  engine_ = std::make_unique<Engine>(engine_cfg, pool_.get());
  kt_ = 8.617e-5 * config_.temperature_k;
  // Contour anchor ingredient: the lead's spectral minimum (zero-potential,
  // first k).  The coarse band sampler is exact at the zone endpoints,
  // where cosine-like bands take their extrema; charge_density folds in the
  // device potential, the contact shift, and a safety margin per call.
  lead_band_min_ =
      transport::band_window(transport::lead_band_structure(folded_.front()))
          .emin;
}

void Simulator::set_contact_shift(double shift) {
  // No direct invalidation here: the engine compares each run's ObcOptions
  // (shift included) against the previous run's and drops the caches
  // exactly once at the next sweep iff the value actually changed —
  // invalidating both here and there would double-count.
  config_.point.obc_opts.contact_shift = shift;
}

void Simulator::invalidate_boundary_cache() {
  engine_->invalidate_boundary_caches();
}

obc::BoundaryCache::Stats Simulator::boundary_cache_stats() const {
  return engine_->boundary_cache_stats();
}

const dft::LeadBlocks& Simulator::lead_blocks(idx ik) const {
  return lead_.at(static_cast<std::size_t>(ik));
}

const dft::FoldedLead& Simulator::folded_lead(idx ik) const {
  return folded_.at(static_cast<std::size_t>(ik));
}

transport::BandStructure Simulator::bands(idx nk) const {
  return transport::lead_band_structure(folded_.front(), nk);
}

idx Simulator::hamiltonian_dimension() const {
  return config_.structure.orbitals_per_cell() * config_.structure.num_cells;
}

namespace {

std::vector<double> flat_or(const std::vector<double>* potential, idx cells) {
  if (potential == nullptr)
    return std::vector<double>(static_cast<std::size_t>(cells), 0.0);
  if (static_cast<idx>(potential->size()) != cells)
    throw std::invalid_argument("Simulator: potential size mismatch");
  return *potential;
}

/// Trapezoidal Brillouin-zone weights of the closed uniform [0, pi] grid:
/// the zone edges k = 0 and k = pi each bound only one interval, so they
/// carry half the interior weight (a flat 1/nk average double-counts them).
std::vector<double> bz_weights(idx nk) {
  if (nk <= 1) return {1.0};
  std::vector<double> w(static_cast<std::size_t>(nk),
                        1.0 / static_cast<double>(nk - 1));
  w.front() *= 0.5;
  w.back() *= 0.5;
  return w;
}

}  // namespace

Spectrum Simulator::transmission_spectrum(
    const std::vector<double>& energies,
    const std::vector<double>* cell_potential) {
  const idx cells = config_.structure.num_cells;
  const idx nk = static_cast<idx>(lead_.size());
  const idx ne = static_cast<idx>(energies.size());

  // The (k, E) sweep runs on the distribution engine (Fig. 9 levels 1-2):
  // momentum groups sized by allocate_groups, energy groups pulling points
  // from the shared queue.  With num_ranks = 1 this degenerates to the
  // flat in-process thread-pool loop.
  SweepRequest req;
  req.leads = &lead_;
  req.folded = &folded_;
  req.energies.assign(static_cast<std::size_t>(nk), energies);
  req.potential = flat_or(cell_potential, cells);
  req.cells = cells;
  req.point = config_.point;
  req.point.want_density = false;
  req.point.want_current = false;
  const SweepResult res = engine_->run(req);
  stats_ = res.stats;
  total_tasks_ += res.stats.tasks_total;

  Spectrum out;
  out.energies = energies;
  out.transmission.assign(static_cast<std::size_t>(ne), 0.0);
  out.propagating.assign(static_cast<std::size_t>(ne), 0);
  // Sigma-only OBC backends (no kProvidesInjection) report no incident
  // channels; their transmission is the Green's-function (Caroli) trace.
  const bool caroli_fallback =
      (obc::obc_algorithm_capabilities(req.point.obc) &
       obc::kProvidesInjection) == 0;
  const std::vector<double> wk = bz_weights(nk);
  for (idx ik = 0; ik < nk; ++ik) {
    for (idx ie = 0; ie < ne; ++ie) {
      const auto sk = static_cast<std::size_t>(ik);
      const auto se = static_cast<std::size_t>(ie);
      const idx prop = res.propagating[sk][se];
      const double t =
          prop > 0 || caroli_fallback
              ? (prop > 0 ? res.transmission[sk][se] : res.caroli[sk][se])
              : 0.0;
      out.transmission[se] += t * wk[sk];
      out.propagating[se] += prop;
    }
  }
  return out;
}

transport::EnergyPointResult Simulator::solve_point(
    double energy, const std::vector<double>* cell_potential) {
  const idx cells = config_.structure.num_cells;
  const std::vector<double> pot = flat_or(cell_potential, cells);
  const auto dm = dft::assemble_device(lead_.front(), cells, pot);
  return transport::solve_energy_point(dm, lead_.front(), folded_.front(),
                                       energy, config_.point, pool_.get());
}

std::vector<double> Simulator::charge_density(
    const std::vector<double>& energies, double mu_l, double mu_r,
    const std::vector<double>* potential,
    charge::QuadratureAlgorithm quadrature,
    const charge::QuadratureOptions& quadrature_options) {
  const idx cells = config_.structure.num_cells;
  // Same grid contract as landauer_current: the quadrature backends assume
  // a strictly increasing window of >= 2 points, and a violated contract
  // must surface here — not as NaNs three SCF iterations later.
  if (energies.size() < 2)
    throw std::invalid_argument(
        "charge_density: need at least two energy points");
  for (std::size_t ie = 1; ie < energies.size(); ++ie)
    if (!(energies[ie] > energies[ie - 1]))
      throw std::invalid_argument(
          "charge_density: energies must be strictly increasing");

  // Plan the integration with the selected backend.  real_grid reproduces
  // the seed's trapezoid-times-Fermi weights bit-identically (same products
  // in the same order); contour replaces the equilibrium window with
  // Green's-function nodes and keeps only the bias window of `energies`.
  charge::ChargeWindow window;
  window.mu_l = mu_l;
  window.mu_r = mu_r;
  window.kt = kt_;
  window.grid = energies;
  double pot_min = 0.0;
  if (potential != nullptr && !potential->empty())
    pot_min = *std::min_element(potential->begin(), potential->end());
  // The potential-dependent depth is quantized to 0.5 eV steps (rounded
  // *down*, so the anchor always stays below the shifted spectrum).  Any
  // anchor below the band bottom integrates the same charge — the contour
  // encloses the same poles — but the node positions depend on it, and the
  // SCF potential drifts a little every outer iteration.  Quantizing keeps
  // the contour nodes literally identical across iterations, so the
  // boundary cache serves every node from iteration 2 onward instead of
  // missing on each micro-shifted anchor.
  const double depth = std::min(0.0, pot_min) +
                       std::min(0.0, config_.point.obc_opts.contact_shift);
  window.band_bottom =
      lead_band_min_ + 0.5 * std::floor(depth / 0.5) - 0.5;
  const charge::NodeSet nodes =
      charge::make_quadrature(quadrature)->build(window, quadrature_options);

  // One engine sweep executes both task kinds: real-axis wave-function
  // points fold weight * density into the per-cell accumulator, contour
  // nodes fold Im(w * G_ii) — the assembly stage reduce()s both to the
  // root in deterministic flat-task order.
  SweepRequest req;
  req.leads = &lead_;
  req.folded = &folded_;
  req.energies = {nodes.energies};
  req.potential = flat_or(potential, cells);
  req.cells = cells;
  req.point = config_.point;
  req.point.want_density = true;
  req.point.want_current = false;
  req.point.want_caroli = false;
  if (!nodes.energies.empty()) {
    req.density_weight = {nodes.weight_l};
    req.density_weight_r = {nodes.weight_r};
  }
  if (!nodes.gf_nodes.empty()) {
    req.gf_nodes = {nodes.gf_nodes};
    req.gf_weights = {nodes.gf_weights};
  }
  const SweepResult res = engine_->run(req);
  stats_ = res.stats;
  total_tasks_ += res.stats.tasks_total;
  // An empty plan (occupied window entirely below the band bottom at
  // equilibrium) carries no charge at all.
  if (res.charge.empty())
    return std::vector<double>(static_cast<std::size_t>(cells), 0.0);
  return res.charge;
}

std::vector<double> Simulator::adaptive_energy_grid(
    std::vector<double> base, const std::vector<double>* cell_potential,
    double tol, double min_spacing) {
  const idx cells = config_.structure.num_cells;
  const std::vector<double> pot = flat_or(cell_potential, cells);
  // Each refinement pass becomes one engine sweep over the pass's points.
  // The indicator is the transmission itself (Caroli under decimation):
  // unlike the lead's propagating-mode count it sees the *device* potential,
  // so the refinement clusters where the potential pushes band edges and
  // barrier steps — which is what moves between SCF iterations.
  const transport::BatchEvaluator indicator =
      [&](const std::vector<double>& points) {
        SweepRequest req;
        req.leads = &lead_;
        req.folded = &folded_;
        req.energies = {points};
        req.potential = pot;
        req.cells = cells;
        req.point = config_.point;
        req.point.want_density = false;
        req.point.want_current = false;
        const bool caroli =
            (obc::obc_algorithm_capabilities(req.point.obc) &
             obc::kProvidesInjection) == 0;
        req.point.want_caroli = caroli;
        const SweepResult res = engine_->run(req);
        stats_ = res.stats;
        total_tasks_ += res.stats.tasks_total;
        std::vector<double> out(points.size());
        for (std::size_t ie = 0; ie < points.size(); ++ie)
          out[ie] = res.propagating[0][ie] > 0
                        ? res.transmission[0][ie]
                        : (caroli ? res.caroli[0][ie] : 0.0);
        return out;
      };
  transport::EnergyGridOptions gopt;
  gopt.min_spacing = min_spacing;
  gopt.max_spacing = std::max(gopt.max_spacing, min_spacing);
  return transport::refine_energy_grid(std::move(base), indicator, tol, gopt);
}

double Simulator::current(const std::vector<double>& energies, double mu_l,
                          double mu_r, const std::vector<double>* potential) {
  const Spectrum sp = transmission_spectrum(energies, potential);
  return transport::landauer_current(sp.energies, sp.transmission, mu_l, mu_r,
                                     kt_);
}

std::vector<Simulator::IvPoint> Simulator::transfer_characteristics(
    const std::vector<double>& vgs_values, double vds,
    const lattice::DeviceRegions& regions,
    const std::vector<double>& energies, double mu_source,
    const poisson::ScfOptions& scf) {
  if (regions.total() != config_.structure.num_cells)
    throw std::invalid_argument(
        "transfer_characteristics: regions must cover all cells");
  // The bias sweep's lead electrostatics: apply the configured contact
  // shift up front — set_contact_shift invalidates the boundary caches iff
  // the value actually changed, so back-to-back sweeps at the same shift
  // keep their cached lead eigenproblems.
  set_contact_shift(scf.contact_shift);
  const double mu_drain = mu_source - vds;
  std::vector<IvPoint> out;
  out.reserve(vgs_values.size());
  // Warm start: each bias point seeds the SCF loop with the previous
  // point's converged potential (and its charge, as the first charge-
  // residual reference) — adjacent Vgs values have nearly identical
  // electrostatics, so the loop starts inside the Anderson history's basin
  // instead of at the Laplace solution.
  std::vector<double> warm, warm_charge;
  for (const double vgs : vgs_values) {
    // Two-contact ballistic charge model.  Both the charge evaluations
    // inside the SCF loop and the final current integral run on the
    // distribution engine.  With adaptive_energy_grid on, the grid is
    // regenerated from the base `energies` at every outer SCF iteration so
    // refinement tracks the band edges as the potential moves.
    std::vector<double> grid = energies;
    poisson::ChargeModel charge = [&](const std::vector<double>& v) {
      // Adaptive refinement targets the real-axis part of the integration
      // only: the contour backend keeps just the bias window [mu_R, mu_L]
      // on the real axis, and at equilibrium that window is empty — the
      // refinement sweeps would refine points the quadrature then discards.
      const bool contour =
          scf.quadrature == charge::QuadratureAlgorithm::kContour;
      if (scf.adaptive_energy_grid && !(contour && mu_source == mu_drain))
        grid = adaptive_energy_grid(energies, &v, scf.grid_refine_tol,
                                    scf.grid_min_spacing);
      return charge_density(grid, mu_source, mu_drain, &v, scf.quadrature,
                            scf.quadrature_options);
    };
    const bool use_warm = scf.warm_start && !warm.empty();
    const auto res = poisson::self_consistent_potential(
        regions, vgs, vds, charge, scf, use_warm ? &warm : nullptr,
        use_warm && !warm_charge.empty() ? &warm_charge : nullptr);
    if (scf.warm_start) {
      warm = res.potential;
      warm_charge = res.charge;
    }
    const double i = current(grid, mu_source, mu_drain, &res.potential);
    out.push_back({vgs, i, res.iterations, res.converged, res.potential});
  }
  return out;
}

}  // namespace omenx::omen
