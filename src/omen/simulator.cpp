#include "omen/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "numeric/types.hpp"
#include "transport/energy_grid.hpp"

namespace omenx::omen {

Simulator::Simulator(SimulationConfig config) : config_(std::move(config)) {
  const dft::BasisLibrary basis(config_.functional);
  const bool periodic =
      config_.structure.periodicity == lattice::Periodicity::kZ;
  const idx nk = periodic ? std::max<idx>(1, config_.num_k) : 1;
  for (idx ik = 0; ik < nk; ++ik) {
    dft::BuildOptions opts = config_.build;
    // Uniform k grid over [0, pi] (time-reversal halves the zone).
    const double k =
        nk == 1 ? 0.0
                : numeric::kPi * static_cast<double>(ik) /
                      static_cast<double>(nk - 1);
    opts.k_transverse = k;
    k_values_.push_back(k);
    lead_.push_back(dft::build_lead_blocks(config_.structure, basis, opts));
    folded_.push_back(dft::fold_lead(lead_.back()));
  }
  // The device's block count is fixed by the supercell fold of
  // assemble_device — resolve it once: contact attachment blocks validate
  // against it, and the scattering model's probe layout is built from it.
  {
    const auto assembled = dft::assemble_device(
        lead_.front(), config_.structure.num_cells,
        std::vector<double>(
            static_cast<std::size_t>(config_.structure.num_cells), 0.0));
    device_blocks_ = assembled.h.num_blocks();
  }
  // N-terminal layout: build the per-material lead tables and validate the
  // attachment geometry *now* — a bad layout must surface as
  // std::invalid_argument at construction, before any engine world exists
  // to drain, not as a failed solve three sweeps later.
  if (!config_.contacts.empty()) {
    if (config_.contacts.size() < 2)
      throw std::invalid_argument(
          "Simulator: contact layout needs >= 2 terminals (leave the list "
          "empty for the implicit classic pair)");
    for (const ContactConfig& cc : config_.contacts) {
      if (!cc.material.has_value()) {
        contact_material_.push_back(-1);
        continue;
      }
      contact_material_.push_back(static_cast<int>(contact_leads_.size()));
      std::vector<dft::LeadBlocks> row;
      std::vector<dft::FoldedLead> frow;
      for (idx ik = 0; ik < nk; ++ik) {
        dft::BuildOptions opts = config_.build;
        opts.k_transverse = k_values_[static_cast<std::size_t>(ik)];
        row.push_back(dft::build_lead_blocks(*cc.material, basis, opts));
        frow.push_back(dft::fold_lead(row.back()));
      }
      if (row.front().block_dim() != lead_.front().block_dim())
        throw std::invalid_argument(
            "Simulator: contact lead material must match the device's "
            "orbitals per cell (the self-energy block must fit the device "
            "diagonal)");
      contact_leads_.push_back(std::move(row));
      contact_folded_.push_back(std::move(frow));
    }
    // Resolve the attachment blocks against the actual folded device.
    for (const ContactConfig& cc : config_.contacts) {
      const idx b =
          cc.block == transport::kLastBlock ? device_blocks_ - 1 : cc.block;
      if (b < 0 || b >= device_blocks_)
        throw std::invalid_argument(
            "Simulator: contact attachment block out of range");
      for (const idx other : contact_blocks_)
        if (other == b)
          throw std::invalid_argument(
              "Simulator: contacts must attach to pairwise-distinct device "
              "blocks");
      contact_blocks_.push_back(b);
    }
  }
  pool_ = std::make_unique<parallel::DevicePool>(
      std::max(1, config_.num_devices));
  EngineConfig engine_cfg;
  engine_cfg.num_ranks = std::max(1, config_.num_ranks);
  engine_cfg.ranks_per_energy_group =
      std::max(1, config_.ranks_per_energy_group);
  engine_cfg.work_stealing = config_.work_stealing;
  engine_cfg.cache_boundaries = config_.cache_boundaries;
  engine_cfg.batch_tasks = config_.batch_tasks;
  engine_cfg.max_batch = std::max(1, config_.max_batch);
  engine_cfg.backend = config_.backend;
  engine_ = std::make_unique<Engine>(engine_cfg, pool_.get());
  kt_ = 8.617e-5 * config_.temperature_k;
  // Contour anchor ingredient: the lead's spectral minimum (zero-potential,
  // first k).  The coarse band sampler is exact at the zone endpoints,
  // where cosine-like bands take their extrema; charge_density folds in the
  // device potential, the contact shift, and a safety margin per call.
  lead_band_min_ =
      transport::band_window(transport::lead_band_structure(folded_.front()))
          .emin;
  rebuild_probe_sites();
}

void Simulator::rebuild_probe_sites() {
  probe_sites_.clear();
  if (config_.point.scattering.algorithm ==
      scattering::ScatteringAlgorithm::kNone)
    return;
  std::vector<idx> occupied = contact_blocks_;
  if (occupied.empty()) occupied = {0, device_blocks_ - 1};
  probe_sites_ = scattering::assemble_probes(config_.point.scattering,
                                             device_blocks_, occupied);
}

void Simulator::set_scattering(const scattering::Spec& spec) {
  // No cache invalidation: the built-in models never modify a contact
  // boundary (scattering::kModifiesBoundaries), so cached lead solves are
  // shared between ballistic and dissipative sweeps — by design, and the
  // reason BENCH_scattering's parity gate can check hit rates.
  config_.point.scattering = spec;
  rebuild_probe_sites();
  last_tune_ = {};
}

void Simulator::set_contact_shift(double shift) {
  // Deprecated uniform-shift wrapper: one value for every terminal.  No
  // direct invalidation here: the engine compares each run's ObcOptions
  // (shift included) against the previous run's and drops the caches
  // exactly once at the next sweep iff the value actually changed —
  // invalidating both here and there would double-count.
  config_.point.obc_opts.contact_shift = shift;
  for (ContactConfig& cc : config_.contacts) cc.shift = shift;
}

void Simulator::set_contact_shift(idx contact, double shift) {
  if (contact < 0 ||
      static_cast<std::size_t>(contact) >= config_.contacts.size())
    throw std::invalid_argument(
        "set_contact_shift: contact index out of range");
  // Same discipline as the uniform wrapper: the engine's per-contact
  // signatures see the changed shift at the next sweep and drop exactly
  // this contact's cache entries (invalidate_contact), keeping the rest.
  config_.contacts[static_cast<std::size_t>(contact)].shift = shift;
}

void Simulator::invalidate_boundary_cache() {
  engine_->invalidate_boundary_caches();
}

obc::BoundaryCache::Stats Simulator::boundary_cache_stats() const {
  return engine_->boundary_cache_stats();
}

obc::BoundaryCache::Stats Simulator::contact_boundary_cache_stats(
    idx contact) const {
  return engine_->contact_boundary_cache_stats(static_cast<int>(contact));
}

void Simulator::attach_contacts(SweepRequest& req,
                                const std::vector<double>* mu) const {
  if (config_.contacts.empty() && probe_sites_.empty()) return;
  const std::size_t nreal = std::max<std::size_t>(config_.contacts.size(), 2);
  req.contacts.reserve(nreal + probe_sites_.size());
  if (config_.contacts.empty()) {
    // Probe materialization on the implicit classic pair: the engine grows
    // the terminal set only through explicit contacts, so the pair is
    // spelled out the way the simulator always resolves it — source at
    // block 0, drain at the last block, the device's own lead material,
    // the uniform contact shift.
    for (int i = 0; i < 2; ++i) {
      SweepContact sc;
      sc.mu = mu != nullptr && static_cast<std::size_t>(i) < mu->size()
                  ? (*mu)[static_cast<std::size_t>(i)]
                  : 0.0;
      sc.shift = config_.point.obc_opts.contact_shift;
      sc.block = i == 0 ? 0 : transport::kLastBlock;
      req.contacts.push_back(sc);
    }
  } else {
    for (std::size_t i = 0; i < config_.contacts.size(); ++i) {
      SweepContact sc;
      sc.mu = mu != nullptr && i < mu->size() ? (*mu)[i] : 0.0;
      sc.shift = config_.contacts[i].shift;
      sc.block = config_.contacts[i].block;
      sc.material = contact_material_[i];
      req.contacts.push_back(sc);
    }
  }
  for (std::size_t p = 0; p < probe_sites_.size(); ++p) {
    SweepContact sc;
    const std::size_t t = req.contacts.size();
    sc.mu = mu != nullptr && t < mu->size() ? (*mu)[t] : 0.0;
    sc.block = probe_sites_[p].block;
    sc.probe_eta = probe_sites_[p].eta;
    req.contacts.push_back(sc);
  }
  // Probes are materialized into the terminal list: clear the per-point
  // spec so the transport-layer provider assembly cannot attach them a
  // second time (it already skips sets carrying probes — clearing keeps
  // the request self-describing).
  if (!probe_sites_.empty()) req.point.scattering = {};
  if (!contact_leads_.empty()) req.contact_leads = &contact_leads_;
}

std::pair<idx, idx> Simulator::classic_pair_indices() const {
  // Construction guarantees distinct resolved blocks, so for a two-contact
  // layout exactly one of them can sit at block 0.
  if (config_.contacts.size() == 2 && contact_blocks_[1] == 0) return {1, 0};
  return {0, 1};
}

const dft::LeadBlocks& Simulator::lead_blocks(idx ik) const {
  return lead_.at(static_cast<std::size_t>(ik));
}

const dft::FoldedLead& Simulator::folded_lead(idx ik) const {
  return folded_.at(static_cast<std::size_t>(ik));
}

transport::BandStructure Simulator::bands(idx nk) const {
  return transport::lead_band_structure(folded_.front(), nk);
}

idx Simulator::hamiltonian_dimension() const {
  return config_.structure.orbitals_per_cell() * config_.structure.num_cells;
}

namespace {

std::vector<double> flat_or(const std::vector<double>* potential, idx cells) {
  if (potential == nullptr)
    return std::vector<double>(static_cast<std::size_t>(cells), 0.0);
  if (static_cast<idx>(potential->size()) != cells)
    throw std::invalid_argument("Simulator: potential size mismatch");
  return *potential;
}

/// Trapezoidal Brillouin-zone weights of the closed uniform [0, pi] grid:
/// the zone edges k = 0 and k = pi each bound only one interval, so they
/// carry half the interior weight (a flat 1/nk average double-counts them).
std::vector<double> bz_weights(idx nk) {
  if (nk <= 1) return {1.0};
  std::vector<double> w(static_cast<std::size_t>(nk),
                        1.0 / static_cast<double>(nk - 1));
  w.front() *= 0.5;
  w.back() *= 0.5;
  return w;
}

}  // namespace

Spectrum Simulator::transmission_spectrum(
    const std::vector<double>& energies,
    const std::vector<double>* cell_potential) {
  const idx cells = config_.structure.num_cells;
  const idx nk = static_cast<idx>(lead_.size());
  const idx ne = static_cast<idx>(energies.size());

  // The (k, E) sweep runs on the distribution engine (Fig. 9 levels 1-2):
  // momentum groups sized by allocate_groups, energy groups pulling points
  // from the shared queue.  With num_ranks = 1 this degenerates to the
  // flat in-process thread-pool loop.
  SweepRequest req;
  req.leads = &lead_;
  req.folded = &folded_;
  req.energies.assign(static_cast<std::size_t>(nk), energies);
  req.potential = flat_or(cell_potential, cells);
  req.cells = cells;
  req.point = config_.point;
  req.point.want_density = false;
  req.point.want_current = false;
  attach_contacts(req, nullptr);
  const SweepResult res = engine_->run(req);
  stats_ = res.stats;
  total_tasks_ += res.stats.tasks_total;

  Spectrum out;
  out.energies = energies;
  out.transmission.assign(static_cast<std::size_t>(ne), 0.0);
  out.propagating.assign(static_cast<std::size_t>(ne), 0);
  // Sigma-only OBC backends (no kProvidesInjection) report no incident
  // channels; their transmission is the Green's-function (Caroli) trace.
  const bool caroli_fallback =
      (obc::obc_algorithm_capabilities(req.point.obc) &
       obc::kProvidesInjection) == 0;
  const std::vector<double> wk = bz_weights(nk);
  for (idx ik = 0; ik < nk; ++ik) {
    for (idx ie = 0; ie < ne; ++ie) {
      const auto sk = static_cast<std::size_t>(ik);
      const auto se = static_cast<std::size_t>(ie);
      const idx prop = res.propagating[sk][se];
      const double t =
          prop > 0 || caroli_fallback
              ? (prop > 0 ? res.transmission[sk][se] : res.caroli[sk][se])
              : 0.0;
      out.transmission[se] += t * wk[sk];
      out.propagating[se] += prop;
    }
  }
  // >= 3-terminal layouts carry the full pairwise table, k-averaged with
  // the same BZ weights as the scalar transmission.  Probe materialization
  // counts: a classic pair plus attached probes sweeps as >= 3 terminals,
  // so the effective count is the request's, not the configured one.
  const std::size_t ncon = req.contacts.size();
  if (ncon >= 3 && !res.t_matrix.empty()) {
    out.t_matrix.assign(static_cast<std::size_t>(ne),
                        std::vector<double>(ncon * ncon, 0.0));
    for (idx ik = 0; ik < nk; ++ik)
      for (idx ie = 0; ie < ne; ++ie) {
        const auto sk = static_cast<std::size_t>(ik);
        const auto se = static_cast<std::size_t>(ie);
        for (std::size_t q = 0; q < ncon * ncon; ++q)
          out.t_matrix[se][q] += wk[sk] * res.t_matrix[sk][se][q];
      }
  }
  return out;
}

transport::EnergyPointResult Simulator::solve_point(
    double energy, const std::vector<double>* cell_potential) {
  const idx cells = config_.structure.num_cells;
  const std::vector<double> pot = flat_or(cell_potential, cells);
  const auto dm = dft::assemble_device(lead_.front(), cells, pot);
  if (!config_.contacts.empty()) {
    // Direct N-terminal solve at the first k point: the ContactSet points
    // at the simulator-owned lead tables, so the set is cheap to rebuild
    // per call.
    std::vector<transport::Contact> cs(config_.contacts.size());
    for (std::size_t i = 0; i < cs.size(); ++i) {
      const int m = contact_material_[i];
      cs[i].lead = m < 0 ? &lead_.front()
                         : &contact_leads_[static_cast<std::size_t>(m)].front();
      cs[i].folded =
          m < 0 ? &folded_.front()
                : &contact_folded_[static_cast<std::size_t>(m)].front();
      cs[i].shift = config_.contacts[i].shift;
      cs[i].block = config_.contacts[i].block;
      cs[i].lead_hash = transport::lead_content_hash(*cs[i].lead);
    }
    return transport::solve_energy_point(dm,
                                         transport::ContactSet(std::move(cs)),
                                         energy, config_.point, pool_.get());
  }
  return transport::solve_energy_point(dm, lead_.front(), folded_.front(),
                                       energy, config_.point, pool_.get());
}

std::vector<double> Simulator::charge_density(
    const std::vector<double>& energies, double mu_l, double mu_r,
    const std::vector<double>* potential,
    charge::QuadratureAlgorithm quadrature,
    const charge::QuadratureOptions& quadrature_options) {
  const idx cells = config_.structure.num_cells;
  const std::size_t ncon = config_.contacts.size();
  if (ncon >= 3)
    throw std::invalid_argument(
        "charge_density(mu_l, mu_r): >= 3 contacts configured — use the "
        "per-terminal mu overload");
  if (ncon == 2 &&
      !((contact_blocks_[0] == 0 && contact_blocks_[1] == device_blocks_ - 1) ||
        (contact_blocks_[1] == 0 && contact_blocks_[0] == device_blocks_ - 1)))
    throw std::invalid_argument(
        "charge_density(mu_l, mu_r): the two-reservoir weights assume "
        "contacts at the device ends — interior probes need the "
        "per-terminal overload");
  // Same grid contract as landauer_current: the quadrature backends assume
  // a strictly increasing window of >= 2 points, and a violated contract
  // must surface here — not as NaNs three SCF iterations later.
  if (energies.size() < 2)
    throw std::invalid_argument(
        "charge_density: need at least two energy points");
  for (std::size_t ie = 1; ie < energies.size(); ++ie)
    if (!(energies[ie] > energies[ie - 1]))
      throw std::invalid_argument(
          "charge_density: energies must be strictly increasing");

  if (!probe_sites_.empty()) {
    // Dissipative charge: two-pass (tune the probe potentials, then occupy
    // every terminal's injected states at its own mu).  The contour's
    // equilibrium/bias-window split is a two-coherent-reservoir
    // construction and does not extend to probe terminals.
    if (quadrature != charge::QuadratureAlgorithm::kRealGrid)
      throw std::invalid_argument(
          "charge_density: dissipative (Buettiker-probe) charge supports "
          "the real_grid quadrature only");
    const auto [src, drn] =
        ncon == 2 ? classic_pair_indices() : std::pair<idx, idx>{0, 1};
    std::vector<double> mu(2, 0.0);
    mu[static_cast<std::size_t>(src)] = mu_l;
    mu[static_cast<std::size_t>(drn)] = mu_r;
    return dissipative_charge(energies, mu, potential);
  }

  // Plan the integration with the selected backend.  real_grid reproduces
  // the seed's trapezoid-times-Fermi weights bit-identically (same products
  // in the same order); contour replaces the equilibrium window with
  // Green's-function nodes and keeps only the bias window of `energies`.
  charge::ChargeWindow window;
  window.mu_l = mu_l;
  window.mu_r = mu_r;
  window.kt = kt_;
  window.grid = energies;
  double pot_min = 0.0;
  if (potential != nullptr && !potential->empty())
    pot_min = *std::min_element(potential->begin(), potential->end());
  // The potential-dependent depth is quantized to 0.5 eV steps (rounded
  // *down*, so the anchor always stays below the shifted spectrum).  Any
  // anchor below the band bottom integrates the same charge — the contour
  // encloses the same poles — but the node positions depend on it, and the
  // SCF potential drifts a little every outer iteration.  Quantizing keeps
  // the contour nodes literally identical across iterations, so the
  // boundary cache serves every node from iteration 2 onward instead of
  // missing on each micro-shifted anchor.
  // With per-contact shifts, the most negative one bounds how far any lead
  // spectrum is pushed down; the classic layout reduces to the scalar
  // ObcOptions shift.
  double shift_min = std::min(0.0, config_.point.obc_opts.contact_shift);
  for (const ContactConfig& cc : config_.contacts)
    shift_min = std::min(shift_min, cc.shift);
  const double depth = std::min(0.0, pot_min) + shift_min;
  window.band_bottom =
      lead_band_min_ + 0.5 * std::floor(depth / 0.5) - 0.5;
  const charge::NodeSet nodes =
      charge::make_quadrature(quadrature)->build(window, quadrature_options);

  // One engine sweep executes both task kinds: real-axis wave-function
  // points fold weight * density into the per-cell accumulator, contour
  // nodes fold Im(w * G_ii) — the assembly stage reduce()s both to the
  // root in deterministic flat-task order.
  SweepRequest req;
  req.leads = &lead_;
  req.folded = &folded_;
  req.energies = {nodes.energies};
  req.potential = flat_or(potential, cells);
  req.cells = cells;
  req.point = config_.point;
  req.point.want_density = true;
  req.point.want_current = false;
  req.point.want_caroli = false;
  if (!nodes.energies.empty()) {
    req.density_weight = {nodes.weight_l};
    req.density_weight_r = {nodes.weight_r};
  }
  if (!nodes.gf_nodes.empty()) {
    req.gf_nodes = {nodes.gf_nodes};
    req.gf_weights = {nodes.gf_weights};
  }
  if (ncon == 2) {
    // weight_l occupies the contact at block 0, weight_r the one at the
    // last block — record mu on the matching terminals.
    const auto [src, drn] = classic_pair_indices();
    std::vector<double> mu(2, 0.0);
    mu[static_cast<std::size_t>(src)] = mu_l;
    mu[static_cast<std::size_t>(drn)] = mu_r;
    attach_contacts(req, &mu);
  } else {
    attach_contacts(req, nullptr);
  }
  const SweepResult res = engine_->run(req);
  stats_ = res.stats;
  total_tasks_ += res.stats.tasks_total;
  // An empty plan (occupied window entirely below the band bottom at
  // equilibrium) carries no charge at all.
  if (res.charge.empty())
    return std::vector<double>(static_cast<std::size_t>(cells), 0.0);
  return res.charge;
}

std::vector<double> Simulator::charge_density(
    const std::vector<double>& energies, const std::vector<double>& mu,
    const std::vector<double>* potential,
    charge::QuadratureAlgorithm quadrature,
    const charge::QuadratureOptions& quadrature_options) {
  const std::size_t ncon = config_.contacts.size();
  if (mu.size() != std::max<std::size_t>(ncon, 2))
    throw std::invalid_argument(
        "charge_density: one chemical potential per terminal");
  if (ncon < 3) {
    // Two terminals (configured or implicit): the classic pair path, with
    // mu routed onto the source/drain roles by attachment block — the
    // weights are bit-identical to the scalar-mu entry point.
    const auto [src, drn] =
        ncon == 2 ? classic_pair_indices() : std::pair<idx, idx>{0, 1};
    return charge_density(energies, mu[static_cast<std::size_t>(src)],
                          mu[static_cast<std::size_t>(drn)], potential,
                          quadrature, quadrature_options);
  }
  // >= 3 terminals: per-contact trapezoid-times-Fermi weights on the real
  // grid.  The contour's equilibrium/bias-window split is a two-reservoir
  // construction, so only kRealGrid applies here.
  if (quadrature != charge::QuadratureAlgorithm::kRealGrid)
    throw std::invalid_argument(
        "charge_density: >= 3-terminal charge supports the real_grid "
        "quadrature only");
  const idx cells = config_.structure.num_cells;
  if (energies.size() < 2)
    throw std::invalid_argument(
        "charge_density: need at least two energy points");
  for (std::size_t ie = 1; ie < energies.size(); ++ie)
    if (!(energies[ie] > energies[ie - 1]))
      throw std::invalid_argument(
          "charge_density: energies must be strictly increasing");
  if (!probe_sites_.empty())
    return dissipative_charge(energies, mu, potential);
  const std::vector<double> w = transport::trapezoid_weights(energies);
  SweepRequest req;
  req.leads = &lead_;
  req.folded = &folded_;
  req.energies = {energies};
  req.potential = flat_or(potential, cells);
  req.cells = cells;
  req.point = config_.point;
  req.point.want_density = true;
  req.point.want_current = false;
  req.point.want_caroli = false;
  req.density_weight_contacts.resize(ncon);
  for (std::size_t p = 0; p < ncon; ++p) {
    std::vector<double> wp(w.size());
    for (std::size_t ie = 0; ie < w.size(); ++ie)
      wp[ie] = w[ie] * transport::fermi(energies[ie], mu[p], kt_);
    req.density_weight_contacts[p] = {std::move(wp)};
  }
  attach_contacts(req, &mu);
  const SweepResult res = engine_->run(req);
  stats_ = res.stats;
  total_tasks_ += res.stats.tasks_total;
  if (res.charge.empty())
    return std::vector<double>(static_cast<std::size_t>(cells), 0.0);
  return res.charge;
}

const std::vector<double>& Simulator::tune_probes(const Spectrum& sp,
                                                  const std::vector<double>& mu) {
  if (sp.t_matrix.empty())
    throw std::logic_error(
        "tune_probes: sweep returned no pairwise T matrix");
  const std::size_t nreal = mu.size();
  const std::size_t nc = nreal + probe_sites_.size();
  std::vector<double> mu_full(nc, 0.0);
  std::vector<bool> is_probe(nc, false);
  double mu0 = 0.0;
  for (std::size_t p = 0; p < nreal; ++p) {
    mu_full[p] = mu[p];
    mu0 += mu[p];
  }
  // Probes start from the real terminals' mean — the exact zero-current
  // solution at equilibrium, and a bracketing guess under bias.
  mu0 /= static_cast<double>(nreal);
  for (std::size_t p = nreal; p < nc; ++p) {
    mu_full[p] = mu0;
    is_probe[p] = true;
  }
  last_tune_ = scattering::tune_probe_potentials(
      sp.energies, sp.t_matrix, std::move(mu_full), is_probe, kt_,
      config_.probe_tune);
  stats_.probe_terminals = static_cast<idx>(probe_sites_.size());
  stats_.probe_iterations = last_tune_.iterations;
  stats_.probe_residual = last_tune_.max_residual;
  return last_tune_.mu;
}

std::vector<double> Simulator::dissipative_charge(
    const std::vector<double>& energies, const std::vector<double>& mu,
    const std::vector<double>* potential) {
  // Pass 1: pairwise T over real + probe terminals at this potential, then
  // drive every probe's net current to zero.
  const Spectrum sp = transmission_spectrum(energies, potential);
  const std::vector<double>& mu_full = tune_probes(sp, mu);
  // Pass 2: per-terminal real-grid charge — every terminal occupies its
  // injected states with its own Fermi weight, the probes at their tuned
  // mu_p (a probe both absorbs and re-injects carriers; its occupation is
  // what the zero-current condition fixes).
  const idx cells = config_.structure.num_cells;
  const std::vector<double> w = transport::trapezoid_weights(energies);
  SweepRequest req;
  req.leads = &lead_;
  req.folded = &folded_;
  req.energies = {energies};
  req.potential = flat_or(potential, cells);
  req.cells = cells;
  req.point = config_.point;
  req.point.want_density = true;
  req.point.want_current = false;
  req.point.want_caroli = false;
  req.density_weight_contacts.resize(mu_full.size());
  for (std::size_t p = 0; p < mu_full.size(); ++p) {
    std::vector<double> wp(w.size());
    for (std::size_t ie = 0; ie < w.size(); ++ie)
      wp[ie] = w[ie] * transport::fermi(energies[ie], mu_full[p], kt_);
    req.density_weight_contacts[p] = {std::move(wp)};
  }
  attach_contacts(req, &mu_full);
  const SweepResult res = engine_->run(req);
  const scattering::ProbeTuneResult tune = last_tune_;
  stats_ = res.stats;
  stats_.probe_terminals = static_cast<idx>(probe_sites_.size());
  stats_.probe_iterations = tune.iterations;
  stats_.probe_residual = tune.max_residual;
  total_tasks_ += res.stats.tasks_total;
  if (res.charge.empty())
    return std::vector<double>(static_cast<std::size_t>(cells), 0.0);
  return res.charge;
}

std::vector<double> Simulator::terminal_currents(
    const std::vector<double>& energies, const std::vector<double>& mu,
    const std::vector<double>* potential) {
  const std::size_t ncon = config_.contacts.size();
  if (mu.size() != std::max<std::size_t>(ncon, 2))
    throw std::invalid_argument(
        "terminal_currents: one chemical potential per terminal");
  if (!probe_sites_.empty()) {
    // Dissipative currents: sweep the pairwise T over real + probe
    // terminals, tune the probe potentials to zero net probe current, and
    // integrate the Buettiker sum over the full terminal set.  Only the
    // real terminals' currents are reported — the probes' vanish by
    // construction (to the tuning tolerance), which is exactly what makes
    // the real-terminal total conserved.
    const Spectrum sp = transmission_spectrum(energies, potential);
    const std::vector<double>& mu_full = tune_probes(sp, mu);
    std::vector<double> currents = transport::buttiker_currents(
        sp.energies, sp.t_matrix, mu_full, kt_);
    currents.resize(mu.size());
    return currents;
  }
  if (ncon < 3) {
    // Two terminals: I = {+I_landauer, -I_landauer}, source first in
    // terminal order.
    const auto [src, drn] =
        ncon == 2 ? classic_pair_indices() : std::pair<idx, idx>{0, 1};
    const double i =
        current(energies, mu[static_cast<std::size_t>(src)],
                mu[static_cast<std::size_t>(drn)], potential);
    std::vector<double> out(2, 0.0);
    out[static_cast<std::size_t>(src)] = i;
    out[static_cast<std::size_t>(drn)] = -i;
    return out;
  }
  const Spectrum sp = transmission_spectrum(energies, potential);
  if (sp.t_matrix.empty())
    throw std::logic_error(
        "terminal_currents: sweep returned no pairwise T matrix");
  return transport::buttiker_currents(sp.energies, sp.t_matrix, mu, kt_);
}

std::vector<double> Simulator::adaptive_energy_grid(
    std::vector<double> base, const std::vector<double>* cell_potential,
    double tol, double min_spacing) {
  const idx cells = config_.structure.num_cells;
  const std::vector<double> pot = flat_or(cell_potential, cells);
  // Each refinement pass becomes one engine sweep over the pass's points.
  // The indicator is the transmission itself (Caroli under decimation):
  // unlike the lead's propagating-mode count it sees the *device* potential,
  // so the refinement clusters where the potential pushes band edges and
  // barrier steps — which is what moves between SCF iterations.
  const transport::BatchEvaluator indicator =
      [&](const std::vector<double>& points) {
        SweepRequest req;
        req.leads = &lead_;
        req.folded = &folded_;
        req.energies = {points};
        req.potential = pot;
        req.cells = cells;
        req.point = config_.point;
        req.point.want_density = false;
        req.point.want_current = false;
        const bool caroli =
            (obc::obc_algorithm_capabilities(req.point.obc) &
             obc::kProvidesInjection) == 0;
        req.point.want_caroli = caroli;
        attach_contacts(req, nullptr);
        const SweepResult res = engine_->run(req);
        stats_ = res.stats;
        total_tasks_ += res.stats.tasks_total;
        std::vector<double> out(points.size());
        for (std::size_t ie = 0; ie < points.size(); ++ie)
          out[ie] = res.propagating[0][ie] > 0
                        ? res.transmission[0][ie]
                        : (caroli ? res.caroli[0][ie] : 0.0);
        return out;
      };
  transport::EnergyGridOptions gopt;
  gopt.min_spacing = min_spacing;
  gopt.max_spacing = std::max(gopt.max_spacing, min_spacing);
  return transport::refine_energy_grid(std::move(base), indicator, tol, gopt);
}

double Simulator::current(const std::vector<double>& energies, double mu_l,
                          double mu_r, const std::vector<double>* potential) {
  if (!probe_sites_.empty() && config_.contacts.size() < 3) {
    // Dissipative drain current: the Landauer integral over the coherent
    // T_01 misses the probe-mediated (phase-broken) share, so route
    // through the tuned Buettiker sum and report the source terminal.
    const auto [src, drn] = config_.contacts.size() == 2
                                ? classic_pair_indices()
                                : std::pair<idx, idx>{0, 1};
    std::vector<double> mu(2, 0.0);
    mu[static_cast<std::size_t>(src)] = mu_l;
    mu[static_cast<std::size_t>(drn)] = mu_r;
    return terminal_currents(energies, mu,
                             potential)[static_cast<std::size_t>(src)];
  }
  const Spectrum sp = transmission_spectrum(energies, potential);
  return transport::landauer_current(sp.energies, sp.transmission, mu_l, mu_r,
                                     kt_);
}

std::vector<Simulator::IvPoint> Simulator::transfer_characteristics(
    const std::vector<double>& vgs_values, double vds,
    const lattice::DeviceRegions& regions,
    const std::vector<double>& energies, double mu_source,
    const poisson::ScfOptions& scf) {
  if (regions.total() != config_.structure.num_cells)
    throw std::invalid_argument(
        "transfer_characteristics: regions must cover all cells");
  // Dissipation model of this sweep: kNone leaves the simulator's
  // configured model untouched (the common spelling is on
  // SimulationConfig::point.scattering); anything else swaps it in for the
  // whole bias sweep.
  if (scf.scattering.algorithm != scattering::ScatteringAlgorithm::kNone)
    set_scattering(scf.scattering);
  // The bias sweep's lead electrostatics: both spellings resolve onto ONE
  // per-contact vector (resolved_contact_shifts validates the scalar thin
  // forward), applied through one path — the engine invalidates the
  // boundary caches iff a value actually changed (per contact, in the
  // N-terminal case), so back-to-back sweeps at the same shifts keep their
  // cached lead eigenproblems.
  const std::vector<double> shifts =
      scf.resolved_contact_shifts(config_.contacts.size());
  if (config_.contacts.empty())
    set_contact_shift(shifts.front());
  else
    for (std::size_t i = 0; i < shifts.size(); ++i)
      set_contact_shift(static_cast<idx>(i), shifts[i]);
  const double mu_drain = mu_source - vds;
  std::vector<IvPoint> out;
  out.reserve(vgs_values.size());
  // Warm start: each bias point seeds the SCF loop with the previous
  // point's converged potential (and its charge, as the first charge-
  // residual reference) — adjacent Vgs values have nearly identical
  // electrostatics, so the loop starts inside the Anderson history's basin
  // instead of at the Laplace solution.
  std::vector<double> warm, warm_charge;
  for (const double vgs : vgs_values) {
    // Two-contact ballistic charge model.  Both the charge evaluations
    // inside the SCF loop and the final current integral run on the
    // distribution engine.  With adaptive_energy_grid on, the grid is
    // regenerated from the base `energies` at every outer SCF iteration so
    // refinement tracks the band edges as the potential moves.
    std::vector<double> grid = energies;
    poisson::ChargeModel charge = [&](const std::vector<double>& v) {
      // Adaptive refinement targets the real-axis part of the integration
      // only: the contour backend keeps just the bias window [mu_R, mu_L]
      // on the real axis, and at equilibrium that window is empty — the
      // refinement sweeps would refine points the quadrature then discards.
      const bool contour =
          scf.quadrature == charge::QuadratureAlgorithm::kContour;
      if (scf.adaptive_energy_grid && !(contour && mu_source == mu_drain))
        grid = adaptive_energy_grid(energies, &v, scf.grid_refine_tol,
                                    scf.grid_min_spacing);
      return charge_density(grid, mu_source, mu_drain, &v, scf.quadrature,
                            scf.quadrature_options);
    };
    const bool use_warm = scf.warm_start && !warm.empty();
    const auto res = poisson::self_consistent_potential(
        regions, vgs, vds, charge, scf, use_warm ? &warm : nullptr,
        use_warm && !warm_charge.empty() ? &warm_charge : nullptr);
    if (scf.warm_start) {
      warm = res.potential;
      warm_charge = res.charge;
    }
    const double i = current(grid, mu_source, mu_drain, &res.potential);
    out.push_back({vgs, i, res.iterations, res.converged, res.potential});
  }
  return out;
}

}  // namespace omenx::omen
