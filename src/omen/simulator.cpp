#include "omen/simulator.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>

#include "numeric/types.hpp"
#include "parallel/thread_pool.hpp"

namespace omenx::omen {

Simulator::Simulator(SimulationConfig config) : config_(std::move(config)) {
  const dft::BasisLibrary basis(config_.functional);
  const bool periodic =
      config_.structure.periodicity == lattice::Periodicity::kZ;
  const idx nk = periodic ? std::max<idx>(1, config_.num_k) : 1;
  for (idx ik = 0; ik < nk; ++ik) {
    dft::BuildOptions opts = config_.build;
    // Uniform k grid over [0, pi] (time-reversal halves the zone).
    const double k =
        nk == 1 ? 0.0
                : numeric::kPi * static_cast<double>(ik) /
                      static_cast<double>(nk - 1);
    opts.k_transverse = k;
    k_values_.push_back(k);
    lead_.push_back(dft::build_lead_blocks(config_.structure, basis, opts));
    folded_.push_back(dft::fold_lead(lead_.back()));
  }
  pool_ = std::make_unique<parallel::DevicePool>(
      std::max(1, config_.num_devices));
  kt_ = 8.617e-5 * config_.temperature_k;
}

const dft::LeadBlocks& Simulator::lead_blocks(idx ik) const {
  return lead_.at(static_cast<std::size_t>(ik));
}

const dft::FoldedLead& Simulator::folded_lead(idx ik) const {
  return folded_.at(static_cast<std::size_t>(ik));
}

transport::BandStructure Simulator::bands(idx nk) const {
  return transport::lead_band_structure(folded_.front(), nk);
}

idx Simulator::hamiltonian_dimension() const {
  return config_.structure.orbitals_per_cell() * config_.structure.num_cells;
}

namespace {

std::vector<double> flat_or(const std::vector<double>* potential, idx cells) {
  if (potential == nullptr)
    return std::vector<double>(static_cast<std::size_t>(cells), 0.0);
  if (static_cast<idx>(potential->size()) != cells)
    throw std::invalid_argument("Simulator: potential size mismatch");
  return *potential;
}

}  // namespace

Spectrum Simulator::transmission_spectrum(
    const std::vector<double>& energies,
    const std::vector<double>* cell_potential) {
  const idx cells = config_.structure.num_cells;
  const std::vector<double> pot = flat_or(cell_potential, cells);
  const idx nk = static_cast<idx>(lead_.size());
  const idx ne = static_cast<idx>(energies.size());

  Spectrum out;
  out.energies = energies;
  out.transmission.assign(static_cast<std::size_t>(ne), 0.0);
  out.propagating.assign(static_cast<std::size_t>(ne), 0);

  // Assemble one device per k (shared across its energies).
  std::vector<dft::DeviceMatrices> dms;
  dms.reserve(static_cast<std::size_t>(nk));
  for (idx ik = 0; ik < nk; ++ik)
    dms.push_back(dft::assemble_device(lead_[static_cast<std::size_t>(ik)],
                                       cells, pot));

  // The (k, E) loop: embarrassingly parallel (Fig. 9 levels 1-2).  Each
  // pool worker solves its points through its own thread-local
  // EnergyPointContext, so after warm-up the sweep runs allocation-free.
  transport::EnergyPointOptions opts = config_.point;
  opts.want_density = false;
  opts.want_current = false;
  std::vector<double> t_acc(static_cast<std::size_t>(nk * ne), 0.0);
  std::vector<idx> p_acc(static_cast<std::size_t>(nk * ne), 0);
  parallel::ThreadPool::global().parallel_for(
      static_cast<std::size_t>(nk * ne), [&](std::size_t idx_flat) {
        const idx ik = static_cast<idx>(idx_flat) / ne;
        const idx ie = static_cast<idx>(idx_flat) % ne;
        const auto res = transport::solve_energy_point(
            dms[static_cast<std::size_t>(ik)],
            lead_[static_cast<std::size_t>(ik)],
            folded_[static_cast<std::size_t>(ik)],
            energies[static_cast<std::size_t>(ie)], opts, pool_.get());
        const double t = res.num_propagating > 0 || opts.obc ==
                                 transport::ObcAlgorithm::kDecimation
                             ? (res.num_propagating > 0 ? res.transmission
                                                        : res.transmission_caroli)
                             : 0.0;
        t_acc[idx_flat] = t;
        p_acc[idx_flat] = res.num_propagating;
      });

  for (idx ik = 0; ik < nk; ++ik) {
    for (idx ie = 0; ie < ne; ++ie) {
      out.transmission[static_cast<std::size_t>(ie)] +=
          t_acc[static_cast<std::size_t>(ik * ne + ie)] /
          static_cast<double>(nk);
      out.propagating[static_cast<std::size_t>(ie)] +=
          p_acc[static_cast<std::size_t>(ik * ne + ie)];
    }
  }
  return out;
}

transport::EnergyPointResult Simulator::solve_point(
    double energy, const std::vector<double>* cell_potential) {
  const idx cells = config_.structure.num_cells;
  const std::vector<double> pot = flat_or(cell_potential, cells);
  const auto dm = dft::assemble_device(lead_.front(), cells, pot);
  return transport::solve_energy_point(dm, lead_.front(), folded_.front(),
                                       energy, config_.point, pool_.get());
}

std::vector<double> Simulator::charge_density(
    const std::vector<double>& energies, double mu_l, double mu_r,
    const std::vector<double>* potential) {
  const idx cells = config_.structure.num_cells;
  const std::vector<double> pot = flat_or(potential, cells);
  const auto dm = dft::assemble_device(lead_.front(), cells, pot);
  const idx orb_cell = config_.structure.orbitals_per_cell();

  transport::EnergyPointOptions opts = config_.point;
  opts.want_density = true;
  opts.want_current = false;
  opts.want_caroli = false;
  std::vector<double> charge(static_cast<std::size_t>(cells), 0.0);
  std::mutex merge;
  parallel::ThreadPool::global().parallel_for(
      energies.size(), [&](std::size_t ie) {
        const auto res = transport::solve_energy_point(
            dm, lead_.front(), folded_.front(), energies[ie], opts,
            pool_.get());
        if (res.orbital_density.empty()) return;
        // Trapezoid-ish energy weight, left-contact occupation (ballistic
        // left-injected states).
        const double de =
            ie + 1 < energies.size()
                ? energies[ie + 1] - energies[ie]
                : energies[ie] - energies[ie - 1];
        const double w =
            de * transport::fermi(energies[ie], mu_l, kt_);
        const auto per_cell =
            transport::density_per_cell(res.orbital_density, orb_cell, cells);
        std::lock_guard lock(merge);
        for (idx c = 0; c < cells; ++c)
          charge[static_cast<std::size_t>(c)] +=
              w * per_cell[static_cast<std::size_t>(c)];
        (void)mu_r;
      });
  return charge;
}

double Simulator::current(const std::vector<double>& energies, double mu_l,
                          double mu_r, const std::vector<double>* potential) {
  const Spectrum sp = transmission_spectrum(energies, potential);
  return transport::landauer_current(sp.energies, sp.transmission, mu_l, mu_r,
                                     kt_);
}

std::vector<Simulator::IvPoint> Simulator::transfer_characteristics(
    const std::vector<double>& vgs_values, double vds,
    const lattice::DeviceRegions& regions,
    const std::vector<double>& energies, double mu_source,
    const poisson::ScfOptions& scf) {
  if (regions.total() != config_.structure.num_cells)
    throw std::invalid_argument(
        "transfer_characteristics: regions must cover all cells");
  const double mu_drain = mu_source - vds;
  std::vector<IvPoint> out;
  out.reserve(vgs_values.size());
  for (const double vgs : vgs_values) {
    // Ballistic charge model: electrons injected from both contacts.
    poisson::ChargeModel charge = [&](const std::vector<double>& v) {
      return charge_density(energies, mu_source, mu_drain, &v);
    };
    const auto res =
        poisson::self_consistent_potential(regions, vgs, vds, charge, scf);
    const double i = current(energies, mu_source, mu_drain, &res.potential);
    out.push_back({vgs, i, res.iterations, res.converged});
  }
  return out;
}

}  // namespace omenx::omen
