#include "numeric/eig.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "numeric/blas.hpp"
#include "numeric/flops.hpp"
#include "numeric/lu.hpp"

namespace omenx::numeric {

namespace {

// Reduce `a` to upper Hessenberg form H = Q^H A Q, accumulating Q.
void hessenberg(CMatrix& a, CMatrix& q) {
  const idx n = a.rows();
  q = CMatrix::identity(n);
  FlopCounter::add(static_cast<std::uint64_t>(10u) * n * n * n / 3u);
  for (idx k = 0; k < n - 2; ++k) {
    double norm_x = 0.0;
    for (idx i = k + 1; i < n; ++i) norm_x += std::norm(a(i, k));
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) continue;
    const cplx x0 = a(k + 1, k);
    const double ax0 = std::abs(x0);
    const cplx phase = ax0 > 0.0 ? x0 / ax0 : cplx{1.0};
    const cplx alpha = -phase * norm_x;
    std::vector<cplx> v(static_cast<std::size_t>(n - k - 1));
    for (idx i = k + 1; i < n; ++i) v[static_cast<std::size_t>(i - k - 1)] = a(i, k);
    v[0] -= alpha;
    double nv = 0.0;
    for (const auto& vi : v) nv += std::norm(vi);
    nv = std::sqrt(nv);
    if (nv == 0.0) continue;
    for (auto& vi : v) vi /= nv;
    // A <- H A with H = I - 2 v v^H acting on rows k+1..n-1.
    for (idx j = k; j < n; ++j) {
      cplx dot{0.0};
      for (idx i = k + 1; i < n; ++i)
        dot += std::conj(v[static_cast<std::size_t>(i - k - 1)]) * a(i, j);
      dot *= 2.0;
      for (idx i = k + 1; i < n; ++i)
        a(i, j) -= dot * v[static_cast<std::size_t>(i - k - 1)];
    }
    // A <- A H on columns k+1..n-1.
    for (idx i = 0; i < n; ++i) {
      cplx dot{0.0};
      for (idx j = k + 1; j < n; ++j)
        dot += a(i, j) * v[static_cast<std::size_t>(j - k - 1)];
      dot *= 2.0;
      for (idx j = k + 1; j < n; ++j)
        a(i, j) -= dot * std::conj(v[static_cast<std::size_t>(j - k - 1)]);
    }
    // Q <- Q H.
    for (idx i = 0; i < n; ++i) {
      cplx dot{0.0};
      for (idx j = k + 1; j < n; ++j)
        dot += q(i, j) * v[static_cast<std::size_t>(j - k - 1)];
      dot *= 2.0;
      for (idx j = k + 1; j < n; ++j)
        q(i, j) -= dot * std::conj(v[static_cast<std::size_t>(j - k - 1)]);
    }
    // Clean the annihilated column.
    a(k + 1, k) = alpha;
    for (idx i = k + 2; i < n; ++i) a(i, k) = cplx{0.0};
  }
}

struct Givens {
  cplx c;
  cplx s;
};

// Compute a Givens rotation G = [[c, s], [-conj(s), conj(c)]] with
// G^H [f; g] = [r; 0].
Givens make_givens(cplx f, cplx g) {
  const double norm = std::sqrt(std::norm(f) + std::norm(g));
  if (norm == 0.0) return {cplx{1.0}, cplx{0.0}};
  return {f / norm, g / norm};
}

// Wilkinson shift: eigenvalue of the trailing 2x2 of H(lo..hi, lo..hi)
// closest to the bottom-right entry.
cplx wilkinson_shift(const CMatrix& h, idx hi) {
  const cplx a = h(hi - 1, hi - 1), b = h(hi - 1, hi);
  const cplx c = h(hi, hi - 1), d = h(hi, hi);
  const cplx tr = a + d;
  const cplx det = a * d - b * c;
  const cplx disc = std::sqrt(tr * tr - 4.0 * det);
  const cplx l1 = (tr + disc) * 0.5;
  const cplx l2 = (tr - disc) * 0.5;
  return std::abs(l1 - d) < std::abs(l2 - d) ? l1 : l2;
}

// Francis single-shift bulge-chase sweep on the active Hessenberg block
// [lo, hi]; Z accumulates the Schur vectors.  Each step applies the Givens
// similarity G^H H G on rows/columns (k, k+1); by the implicit-Q theorem the
// sweep equals one explicit shifted QR step.
void qr_sweep(CMatrix& h, CMatrix& z, idx lo, idx hi, cplx shift) {
  const idx n = h.rows();
  cplx f = h(lo, lo) - shift;
  cplx g = h(lo + 1, lo);
  for (idx k = lo; k < hi; ++k) {
    const Givens gr = make_givens(f, g);
    // Rows k, k+1: H <- G^H H.
    for (idx j = 0; j < n; ++j) {
      const cplx t1 = h(k, j), t2 = h(k + 1, j);
      h(k, j) = std::conj(gr.c) * t1 + std::conj(gr.s) * t2;
      h(k + 1, j) = -gr.s * t1 + gr.c * t2;
    }
    // Columns k, k+1: H <- H G.
    for (idx i = 0; i < n; ++i) {
      const cplx t1 = h(i, k), t2 = h(i, k + 1);
      h(i, k) = t1 * gr.c + t2 * gr.s;
      h(i, k + 1) = -t1 * std::conj(gr.s) + t2 * std::conj(gr.c);
    }
    // Schur vectors: Z <- Z G.
    for (idx i = 0; i < n; ++i) {
      const cplx t1 = z(i, k), t2 = z(i, k + 1);
      z(i, k) = t1 * gr.c + t2 * gr.s;
      z(i, k + 1) = -t1 * std::conj(gr.s) + t2 * std::conj(gr.c);
    }
    if (k + 1 < hi) {
      // The similarity created a bulge at (k+2, k); the next rotation on
      // rows (k+1, k+2) chases it down the subdiagonal.
      f = h(k + 1, k);
      g = h(k + 2, k);
    }
  }
  // Scrub numerical dust below the first subdiagonal in the active window.
  for (idx k = lo; k + 2 <= hi; ++k) h(k + 2, k) = cplx{0.0};
}

// Schur decomposition A = Z T Z^H of a Hessenberg matrix (in-place on h).
void hessenberg_schur(CMatrix& h, CMatrix& z) {
  const idx n = h.rows();
  if (n == 0) return;
  const double eps = 1e-15;
  // Norm-scaled deflation floor (LAPACK smlnum role): subdiagonals this far
  // below the matrix scale are numerically zero even when the neighbouring
  // diagonal entries vanish (large zero-eigenvalue clusters in companion
  // pencils would otherwise never deflate).
  double hnorm = 0.0;
  for (idx i = 0; i < n; ++i)
    for (idx j = std::max<idx>(0, i - 1); j < n; ++j)
      hnorm = std::max(hnorm, std::abs(h(i, j)));
  const double floor_tol = 1e-20 * std::max(hnorm, 1e-300);
  idx hi = n - 1;
  int iter_guard = 0;
  const int max_iter = 120 * static_cast<int>(n) + 400;
  FlopCounter::add(static_cast<std::uint64_t>(25u) * n * n * n);
  while (hi > 0) {
    // Deflation scan.
    idx lo = hi;
    while (lo > 0) {
      const double sub = std::abs(h(lo, lo - 1));
      const double scale = std::abs(h(lo - 1, lo - 1)) + std::abs(h(lo, lo));
      if (sub <= std::max(eps * scale, floor_tol)) {
        h(lo, lo - 1) = cplx{0.0};
        break;
      }
      --lo;
    }
    if (lo == hi) {
      --hi;
      iter_guard = 0;
      continue;
    }
    if (hi - lo == 1) {
      // 2x2 active block: triangularize analytically.  QR iteration stalls
      // on (nearly) defective pairs, but the exact Schur rotation is cheap:
      // rotate an eigenvector of the 2x2 onto e1.
      const cplx a = h(lo, lo), b = h(lo, hi);
      const cplx c = h(hi, lo), d = h(hi, hi);
      const cplx lam = wilkinson_shift(h, hi);
      cplx v1 = b, v2 = lam - a;
      if (std::abs(v1) + std::abs(v2) < 1e-30 * (std::abs(a) + std::abs(d))) {
        v1 = lam - d;
        v2 = c;
      }
      const Givens gr = make_givens(v1, v2);
      for (idx j = 0; j < n; ++j) {
        const cplx t1 = h(lo, j), t2 = h(hi, j);
        h(lo, j) = std::conj(gr.c) * t1 + std::conj(gr.s) * t2;
        h(hi, j) = -gr.s * t1 + gr.c * t2;
      }
      for (idx i = 0; i < n; ++i) {
        const cplx t1 = h(i, lo), t2 = h(i, hi);
        h(i, lo) = t1 * gr.c + t2 * gr.s;
        h(i, hi) = -t1 * std::conj(gr.s) + t2 * std::conj(gr.c);
      }
      for (idx i = 0; i < n; ++i) {
        const cplx t1 = z(i, lo), t2 = z(i, hi);
        z(i, lo) = t1 * gr.c + t2 * gr.s;
        z(i, hi) = -t1 * std::conj(gr.s) + t2 * std::conj(gr.c);
      }
      h(hi, lo) = cplx{0.0};
      hi = lo;
      iter_guard = 0;
      continue;
    }
    if (++iter_guard > max_iter) {
      // Stalled (nearly defective cluster).  Force the smallest relative
      // subdiagonal of the active window to zero: convergence here is
      // rounding-fragile (it can flip with code-layout-level FP
      // differences), and a <= 1e-6-relative perturbation is far below the
      // accuracy of the downstream physics — FEAST additionally drops any
      // mode whose true residual ends up large.
      idx worst = hi;
      double worst_sub = std::abs(h(hi, hi - 1));
      for (idx k = lo + 1; k <= hi; ++k) {
        const double sub = std::abs(h(k, k - 1));
        if (sub < worst_sub) {
          worst_sub = sub;
          worst = k;
        }
      }
      // Accept up to a 1e-6-relative perturbation (the historical bound was
      // 1e-8 and only looked at the last row): this branch is only reached
      // after 120n+400 stalled sweeps, where the alternative is failing
      // outright, and FEAST re-checks every mode's true residual afterwards.
      if (worst_sub < 1e-6 * std::max(hnorm, 1e-300)) {
        h(worst, worst - 1) = cplx{0.0};
        if (worst == hi) --hi;
        iter_guard = 0;
        continue;
      }
      throw std::runtime_error("eig: QR iteration failed to converge");
    }
    // Occasional randomized exceptional shift to break limit cycles (the
    // deterministic pattern depends only on the iteration counter).
    cplx shift;
    if (iter_guard % 10 == 0) {
      const double mag =
          std::abs(h(hi, hi - 1)) + std::abs(h(hi, hi)) +
          (hi >= 2 ? std::abs(h(hi - 1, hi - 2)) : 0.0);
      const double angle = 2.399963 * static_cast<double>(iter_guard);
      shift = h(hi, hi) + mag * cplx{std::cos(angle), std::sin(angle)};
    } else {
      shift = wilkinson_shift(h, hi);
    }
    qr_sweep(h, z, lo, hi, shift);
  }
}

// Eigenvectors of the triangular Schur factor T, back-transformed by Z.
CMatrix schur_vectors(const CMatrix& t, const CMatrix& z) {
  const idx n = t.rows();
  CMatrix y(n, n);
  const double small = 1e-290;
  for (idx k = 0; k < n; ++k) {
    y(k, k) = cplx{1.0};
    const cplx lam = t(k, k);
    for (idx i = k - 1; i >= 0; --i) {
      cplx rhs{0.0};
      for (idx j = i + 1; j <= k; ++j) rhs += t(i, j) * y(j, k);
      cplx denom = t(i, i) - lam;
      if (std::abs(denom) < small) denom = cplx{small};
      y(i, k) = -rhs / denom;
    }
    // Normalize the column.
    double norm = 0.0;
    for (idx i = 0; i <= k; ++i) norm += std::norm(y(i, k));
    norm = std::sqrt(norm);
    if (norm > 0.0)
      for (idx i = 0; i <= k; ++i) y(i, k) /= norm;
  }
  CMatrix x = matmul(z, y);
  // Re-normalize columns of the back-transformed vectors.
  for (idx k = 0; k < n; ++k) {
    double norm = 0.0;
    for (idx i = 0; i < n; ++i) norm += std::norm(x(i, k));
    norm = std::sqrt(norm);
    if (norm > 0.0)
      for (idx i = 0; i < n; ++i) x(i, k) /= norm;
  }
  return x;
}

}  // namespace

EigResult eig(const CMatrix& a_in, bool want_vectors) {
  if (!a_in.square()) throw std::invalid_argument("eig: matrix not square");
  const idx n = a_in.rows();
  EigResult out;
  if (n == 0) return out;
  if (n == 1) {
    out.values = {a_in(0, 0)};
    if (want_vectors) out.vectors = CMatrix::identity(1);
    return out;
  }
  CMatrix h = a_in;
  CMatrix q;
  hessenberg(h, q);
  hessenberg_schur(h, q);
  out.values.resize(static_cast<std::size_t>(n));
  for (idx i = 0; i < n; ++i) out.values[static_cast<std::size_t>(i)] = h(i, i);
  if (want_vectors) out.vectors = schur_vectors(h, q);
  return out;
}

EigResult generalized_eig(const CMatrix& a, const CMatrix& b,
                          bool want_vectors) {
  LUFactor blu(b);
  return eig(blu.solve(a), want_vectors);
}

EigResult shift_invert_eig(const CMatrix& a, const CMatrix& b, cplx sigma,
                           bool want_vectors, double drop_tol) {
  // M = (A - sigma B)^{-1} B; eig(M) = 1/(lambda - sigma).
  CMatrix shifted = a;
  shifted.add_block(0, 0, b, -sigma);
  LUFactor lu(shifted);
  EigResult mres = eig(lu.solve(b), want_vectors);
  EigResult out;
  out.values.reserve(mres.values.size());
  std::vector<idx> keep;
  for (idx i = 0; i < static_cast<idx>(mres.values.size()); ++i) {
    const cplx theta = mres.values[static_cast<std::size_t>(i)];
    if (std::abs(theta) <= drop_tol) continue;  // lambda at infinity
    out.values.push_back(sigma + cplx{1.0} / theta);
    keep.push_back(i);
  }
  if (want_vectors) {
    out.vectors = CMatrix(mres.vectors.rows(), static_cast<idx>(keep.size()));
    for (idx c = 0; c < static_cast<idx>(keep.size()); ++c)
      for (idx r = 0; r < mres.vectors.rows(); ++r)
        out.vectors(r, c) = mres.vectors(r, keep[static_cast<std::size_t>(c)]);
  }
  return out;
}

HermEigResult hermitian_eig(const CMatrix& a_in, double tol) {
  if (!a_in.square())
    throw std::invalid_argument("hermitian_eig: matrix not square");
  const idx n = a_in.rows();
  CMatrix a = a_in;
  CMatrix v = CMatrix::identity(n);
  FlopCounter::add(static_cast<std::uint64_t>(30u) * n * n * n);

  // Cyclic Jacobi with complex rotations.
  for (int sweep = 0; sweep < 100; ++sweep) {
    double off = 0.0;
    for (idx p = 0; p < n; ++p)
      for (idx q = p + 1; q < n; ++q) off += std::norm(a(p, q));
    if (std::sqrt(off) < tol * std::max(1.0, frob_norm(a_in))) break;
    for (idx p = 0; p < n; ++p) {
      for (idx q = p + 1; q < n; ++q) {
        const cplx apq = a(p, q);
        if (std::abs(apq) == 0.0) continue;
        const double app = a(p, p).real();
        const double aqq = a(q, q).real();
        // Diagonalize the 2x2 Hermitian block [[app, apq],[conj(apq), aqq]].
        const double abs_apq = std::abs(apq);
        const cplx phase = apq / abs_apq;
        const double tau = (aqq - app) / (2.0 * abs_apq);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        const cplx sp = s * phase;
        // Apply rotation: columns/rows p and q.
        for (idx i = 0; i < n; ++i) {
          const cplx aip = a(i, p), aiq = a(i, q);
          a(i, p) = c * aip - std::conj(sp) * aiq;
          a(i, q) = sp * aip + c * aiq;
        }
        for (idx j = 0; j < n; ++j) {
          const cplx apj = a(p, j), aqj = a(q, j);
          a(p, j) = c * apj - sp * aqj;
          a(q, j) = std::conj(sp) * apj + c * aqj;
        }
        for (idx i = 0; i < n; ++i) {
          const cplx vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip - std::conj(sp) * viq;
          v(i, q) = sp * vip + c * viq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue.
  std::vector<idx> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), idx{0});
  std::sort(order.begin(), order.end(), [&](idx i, idx j) {
    return a(i, i).real() < a(j, j).real();
  });
  HermEigResult out;
  out.values.resize(static_cast<std::size_t>(n));
  out.vectors = CMatrix(n, n);
  for (idx k = 0; k < n; ++k) {
    const idx src = order[static_cast<std::size_t>(k)];
    out.values[static_cast<std::size_t>(k)] = a(src, src).real();
    for (idx i = 0; i < n; ++i) out.vectors(i, k) = v(i, src);
  }
  return out;
}

}  // namespace omenx::numeric
