#include "numeric/backend.hpp"

#include <exception>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "numeric/blas.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/tracer.hpp"

namespace omenx::numeric {

namespace {

// Set while a host-backend lane is executing a batch item.  A nested
// dispatch from inside a lane must not wait on pool futures (the pool may
// be fully occupied by its siblings), so it degrades to a serial loop.
thread_local bool g_in_backend_lane = false;

// Lane discipline shared by every host-backend item: an arena of its own so
// concurrent lanes never contend on one pool, and nested kernel parallelism
// off so lanes do not oversubscribe the machine (same rule as the emulated
// accelerators in parallel/device.hpp).  Buffers that escape the lane are
// safe: pooled chunks carry their owning arena and may be released from any
// thread, including after the arena is gone.
void run_lane_item(const std::function<void(std::size_t)>& fn, std::size_t i) {
  static thread_local Workspace lane_workspace;
  const WorkspaceScope scope(lane_workspace);
  const bool saved_parallelism = thread_parallelism();
  set_thread_parallelism(false);
  const bool saved_lane = g_in_backend_lane;
  g_in_backend_lane = true;
  try {
    fn(i);
  } catch (...) {
    g_in_backend_lane = saved_lane;
    set_thread_parallelism(saved_parallelism);
    throw;
  }
  g_in_backend_lane = saved_lane;
  set_thread_parallelism(saved_parallelism);
}

class HostBackend final : public Backend {
 public:
  const char* name() const noexcept override { return "host"; }

  int lanes() const noexcept override {
    return (int)parallel::ThreadPool::global().num_threads();
  }

  void dispatch(const char* label, std::size_t n,
                const std::function<void(std::size_t)>& fn) override {
    if (n == 0) return;
    const parallel::TraceScope trace(label, -1);
    if (n == 1 || g_in_backend_lane) {
      for (std::size_t i = 0; i < n; ++i) run_lane_item(fn, i);
      return;
    }
    auto& pool = parallel::ThreadPool::global();
    std::vector<std::future<void>> pending;
    pending.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      pending.push_back(pool.submit([&fn, i] { run_lane_item(fn, i); }));
    }
    // Let every item settle before rethrowing, so no future outlives its
    // captured references; the first failure (in item order) wins.
    std::exception_ptr first_error;
    for (auto& fut : pending) {
      try {
        fut.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, Backend*>& registry() {
  static std::map<std::string, Backend*> backends{{"host", &host_backend()}};
  return backends;
}

}  // namespace

void Backend::gemm_batched(char op_a, char op_b, idx m, idx n, idx k,
                           cplx alpha, cplx beta,
                           const std::vector<GemmBatchItem>& items) {
  dispatch("backend_gemm_batched", items.size(), [&](std::size_t i) {
    const GemmBatchItem& it = items[i];
    gemm_view(op_a, it.a, it.lda, op_b, it.b, it.ldb, m, n, k, alpha, beta,
              it.c, it.ldc);
  });
}

std::vector<LUFactor> Backend::lu_factor_batched(
    const std::vector<const CMatrix*>& as, Pivoting pivoting) {
  std::vector<std::optional<LUFactor>> slots(as.size());
  dispatch("backend_lu_factor_batched", as.size(), [&](std::size_t i) {
    if (as[i] == nullptr)
      throw std::invalid_argument("lu_factor_batched: null input");
    slots[i].emplace(*as[i], pivoting);
  });
  std::vector<LUFactor> out;
  out.reserve(slots.size());
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

void Backend::lu_solve_batched(const std::vector<const LUFactor*>& factors,
                               const std::vector<const CMatrix*>& bs,
                               std::vector<CMatrix>& xs) {
  if (factors.size() != bs.size())
    throw std::invalid_argument("lu_solve_batched: size mismatch");
  xs.assign(factors.size(), CMatrix());
  dispatch("backend_lu_solve_batched", factors.size(), [&](std::size_t i) {
    xs[i] = factors[i]->solve(*bs[i]);
  });
}

void Backend::lu_solve_left_batched(const std::vector<const LUFactor*>& factors,
                                    const std::vector<const CMatrix*>& bs,
                                    std::vector<CMatrix>& xs) {
  if (factors.size() != bs.size())
    throw std::invalid_argument("lu_solve_left_batched: size mismatch");
  xs.assign(factors.size(), CMatrix());
  dispatch("backend_lu_solve_left_batched", factors.size(),
           [&](std::size_t i) { xs[i] = factors[i]->solve_left(*bs[i]); });
}

Backend& host_backend() {
  static HostBackend backend;
  return backend;
}

void register_backend(const std::string& name, Backend* backend) {
  if (backend == nullptr)
    throw std::invalid_argument("register_backend: null backend");
  const std::lock_guard<std::mutex> lock(registry_mutex());
  // A name maps to one backend forever (callers cache the raw pointer, so a
  // silent overwrite would strand them on an object the registry no longer
  // vouches for).
  const auto [it, inserted] = registry().emplace(name, backend);
  (void)it;
  if (!inserted)
    throw std::invalid_argument("register_backend: name '" + name +
                                "' is already registered");
}

Backend* find_backend(const std::string& name) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  auto& backends = registry();
  auto it = backends.find(name);
  return it == backends.end() ? nullptr : it->second;
}

std::vector<std::string> registered_backends() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, _] : registry()) names.push_back(name);
  return names;
}

}  // namespace omenx::numeric
