// Dense BLAS-like kernels (GEMM, GEMV, norms) for the Matrix container.
//
// The paper's hot loops are zgemm on the emulated accelerators; here GEMM is
// a cache-blocked, optionally OpenMP-parallel kernel.  Device workers run
// with parallelism disabled (see parallel/device.hpp) so that emulated GPUs
// do not oversubscribe the host.
#pragma once

#include "numeric/matrix.hpp"
#include "numeric/types.hpp"

namespace omenx::numeric {

/// Per-thread switch: when false, kernels in this thread run serially.
/// Accelerator-emulation workers disable parallelism to avoid nested
/// oversubscription.
void set_thread_parallelism(bool enabled) noexcept;
bool thread_parallelism() noexcept;

/// C = alpha*op(A)*op(B) + beta*C.  Op is 'N' (none), 'T' (transpose) or
/// 'C' (conjugate transpose).  Counted in the global FlopCounter.
void gemm(const CMatrix& a, const CMatrix& b, CMatrix& c,
          cplx alpha = cplx{1.0}, cplx beta = cplx{0.0}, char op_a = 'N',
          char op_b = 'N');

/// Convenience: returns op(A)*op(B).
CMatrix matmul(const CMatrix& a, const CMatrix& b, char op_a = 'N',
               char op_b = 'N');

/// y = alpha*A*x + beta*y.
void gemv(const CMatrix& a, const std::vector<cplx>& x, std::vector<cplx>& y,
          cplx alpha = cplx{1.0}, cplx beta = cplx{0.0});

/// Frobenius norm.
double frob_norm(const CMatrix& a);
double frob_norm(const RMatrix& a);

/// Max |a_ij - b_ij|.
double max_abs_diff(const CMatrix& a, const CMatrix& b);

/// Largest |a_ij|.
double max_abs(const CMatrix& a);

/// True if ||A - A^dagger||_max <= tol * max(1, ||A||_max).
bool is_hermitian(const CMatrix& a, double tol = 1e-10);

}  // namespace omenx::numeric
