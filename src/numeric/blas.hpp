// Dense BLAS-like kernels (GEMM, GEMV, norms) for the Matrix container.
//
// The paper's hot loops are zgemm on the emulated accelerators; here GEMM is
// a packed, tiled kernel in the GotoBLAS mold: operands are repacked into
// contiguous split real/imaginary panels (transpose and conjugation are
// applied during packing, never by materializing op(A)), and an FMA-friendly
// register-tile micro-kernel runs on the packed panels.  Device workers run
// with parallelism disabled (see parallel/device.hpp) so that emulated GPUs
// do not oversubscribe the host.
#pragma once

#include "numeric/matrix.hpp"
#include "numeric/types.hpp"

namespace omenx::numeric {

/// Per-thread switch: when false, kernels in this thread run serially.
/// Accelerator-emulation workers disable parallelism to avoid nested
/// oversubscription.
void set_thread_parallelism(bool enabled) noexcept;
bool thread_parallelism() noexcept;

/// C = alpha*op(A)*op(B) + beta*C.  Op is 'N' (none), 'T' (transpose) or
/// 'C' (conjugate transpose).  Counted in the global FlopCounter.
/// C must not alias A or B.  Performs no operand copies: transposition is
/// folded into panel packing, and the packing buffers are persistent
/// per-thread scratch, so a call with a right-sized C does no allocation.
void gemm(const CMatrix& a, const CMatrix& b, CMatrix& c,
          cplx alpha = cplx{1.0}, cplx beta = cplx{0.0}, char op_a = 'N',
          char op_b = 'N');

/// Strided-view GEMM core: C(m x n, row stride ldc) +=
/// alpha * op(A) * op(B) + (beta-1)*C, where op(A) is m x k read from `a`
/// with row stride lda ('N' reads a[i*lda+p], 'T'/'C' read a[p*lda+i]) and
/// op(B) is k x n likewise.  This is what the blocked LU and the
/// block-tridiagonal solvers call on sub-blocks without copying them out.
/// `count_flops=false` lets callers that account analytically (LU) avoid
/// double counting.  C must not overlap A or B.
void gemm_view(char op_a, const cplx* a, idx lda, char op_b, const cplx* b,
               idx ldb, idx m, idx n, idx k, cplx alpha, cplx beta, cplx* c,
               idx ldc, bool count_flops = true);

/// Convenience: returns op(A)*op(B).
CMatrix matmul(const CMatrix& a, const CMatrix& b, char op_a = 'N',
               char op_b = 'N');

/// y = alpha*A*x + beta*y.
void gemv(const CMatrix& a, const std::vector<cplx>& x, std::vector<cplx>& y,
          cplx alpha = cplx{1.0}, cplx beta = cplx{0.0});

/// Frobenius norm.
double frob_norm(const CMatrix& a);
double frob_norm(const RMatrix& a);

/// Max |a_ij - b_ij|.
double max_abs_diff(const CMatrix& a, const CMatrix& b);

/// Largest |a_ij|.
double max_abs(const CMatrix& a);

/// True if ||A - A^dagger||_max <= tol * max(1, ||A||_max).
bool is_hermitian(const CMatrix& a, double tol = 1e-10);

}  // namespace omenx::numeric
