// Pluggable batched-execution backend — the compute-device abstraction of
// the paper's two-phase pipeline (Section 5E).
//
// The paper executes hundreds of same-shape (k, E) kernels per sweep; the
// win on real accelerators comes from fusing them into *batched* calls
// (cuBLAS-style gemmBatched / MAGMA zgesv_nopiv_batched) instead of issuing
// hundreds of small launches.  A Backend exposes exactly that surface:
// batched GEMM, batched dense LU factorization, and batched triangular
// solves, plus a generic dispatch() for independent same-shape problems.
//
// The contract that makes batching safe everywhere: a backend executes the
// *same scalar kernels* on each batch item that the unbatched path would
// run (gemm_view, LUFactor, LUFactor::solve/solve_left), so batched results
// are bit-identical to the scalar path item by item.  The packed GEMM is
// deterministic under any thread count (disjoint C tiles, fixed-order
// accumulation within a tile), so this holds for any lane assignment.
//
// The built-in "host" backend spreads a batch over the process thread pool
// — one lane per worker, each with its own Workspace arena and with nested
// kernel parallelism disabled (the emulated-accelerator discipline of
// parallel/device.hpp).  A device/offload backend slots in by overriding
// the batched virtuals with genuinely fused kernels and registering itself
// under a name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "numeric/lu.hpp"
#include "numeric/matrix.hpp"
#include "numeric/types.hpp"

namespace omenx::numeric {

/// Per-item operand pointers of one batched GEMM.  Shape, ops, and scalars
/// are shared across the batch (that is what makes the call fusable);
/// only the operand addresses and leading dimensions vary.
struct GemmBatchItem {
  const cplx* a = nullptr;
  idx lda = 0;
  const cplx* b = nullptr;
  idx ldb = 0;
  cplx* c = nullptr;
  idx ldc = 0;
};

/// Batched-execution interface.  Instances are stateless across calls and
/// thread-safe: many solver threads may issue batches concurrently.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual const char* name() const noexcept = 0;

  /// Parallel lanes the backend can keep busy (host: pool workers; a device
  /// backend would report its stream count).  Callers size batches with it.
  virtual int lanes() const noexcept = 0;

  /// Run fn(i) for each of `n` independent problems.  `label` names the
  /// stage in traces.  Items must not share mutable state; the backend may
  /// run them in any order, on any lane.  Exceptions from items are
  /// collected and the first one rethrown after the batch settles.
  virtual void dispatch(const char* label, std::size_t n,
                        const std::function<void(std::size_t)>& fn) = 0;

  /// Batched C_i = alpha*op(A_i)*op(B_i) + beta*C_i over same-shape items.
  /// Each item runs the scalar gemm_view kernel — bit-identical to a loop
  /// of numeric::gemm calls with the same operands.
  virtual void gemm_batched(char op_a, char op_b, idx m, idx n, idx k,
                            cplx alpha, cplx beta,
                            const std::vector<GemmBatchItem>& items);

  /// Batched dense LU: factors a copy of each (same-size, square) input.
  /// Results are in input order, each bit-identical to LUFactor(*as[i]).
  virtual std::vector<LUFactor> lu_factor_batched(
      const std::vector<const CMatrix*>& as,
      Pivoting pivoting = Pivoting::kPartial);

  /// Batched triangular solves against previously produced factors:
  /// xs[i] = factors[i]->solve(*bs[i]).  RHS column counts must agree
  /// across the batch on fused backends; the host backend accepts any mix.
  virtual void lu_solve_batched(const std::vector<const LUFactor*>& factors,
                                const std::vector<const CMatrix*>& bs,
                                std::vector<CMatrix>& xs);

  /// Batched left solves: xs[i] = factors[i]->solve_left(*bs[i])
  /// (X_i A_i = B_i, the block-LU coupling step).
  virtual void lu_solve_left_batched(
      const std::vector<const LUFactor*>& factors,
      const std::vector<const CMatrix*>& bs, std::vector<CMatrix>& xs);

  /// True when batched calls genuinely offload (pay host<->device transfer
  /// and launch costs).  The host backend returns false; callers use this
  /// to decide whether staging operands (stage_operand) is worthwhile and
  /// which throughput figure of perf::MachineSpec applies.
  virtual bool offloads() const noexcept { return false; }

  /// Hint that operand `stable_id` (`bytes` wide) is about to be consumed
  /// by batched calls and is bit-stable under that id — typically reused
  /// across SCF iterations.  An offload backend stages it into device
  /// residency (transferring H2D at most once per id); returns true iff the
  /// operand was already resident, i.e. no transfer was paid.  The host
  /// backend ignores the hint and returns false.  `stable_id` 0 means
  /// "stream, do not cache".
  virtual bool stage_operand(std::uint64_t stable_id, std::uint64_t bytes) {
    (void)stable_id;
    (void)bytes;
    return false;
  }

  /// Drop any operand residency (stage_operand state).  Called when the
  /// inputs behind the stable ids change (new leads / OBC options).  No-op
  /// on backends without residency.
  virtual void invalidate_residency() {}
};

/// The built-in thread-pool backend ("host").  Singleton; always registered.
Backend& host_backend();

/// Register `backend` under `name`.
///
/// Lifetime contract: the registry stores the raw pointer and never takes
/// ownership — the backend must stay alive for as long as any lookup may
/// return it (in practice: for the rest of the process; register
/// function-local statics or objects owned by main()).  There is no
/// unregister.  Each name can be registered exactly once: a duplicate name
/// throws std::invalid_argument instead of silently replacing the earlier
/// backend (which would leave callers holding a pointer the registry no
/// longer vouches for).  A null backend also throws std::invalid_argument.
void register_backend(const std::string& name, Backend* backend);

/// Look up a backend by name; nullptr when unknown.
Backend* find_backend(const std::string& name);

/// Names of all registered backends, sorted.
std::vector<std::string> registered_backends();

}  // namespace omenx::numeric
