// Householder QR factorization for complex matrices.
//
// Used by the FEAST Rayleigh-Ritz step to orthonormalize the contour-
// integrated subspace before projecting the companion pencil.
#pragma once

#include "numeric/matrix.hpp"

namespace omenx::numeric {

struct QRResult {
  CMatrix q;  ///< m x n with orthonormal columns (thin Q).
  CMatrix r;  ///< n x n upper triangular.
};

/// Thin QR of an m x n matrix (m >= n) via Householder reflections.
QRResult qr_decompose(const CMatrix& a);

/// Orthonormal basis for the column span of `a`, dropping columns whose
/// R diagonal falls below `rank_tol * max_diag` (rank-revealing enough for
/// FEAST subspace cleanup).
CMatrix orthonormalize(const CMatrix& a, double rank_tol = 1e-10);

}  // namespace omenx::numeric
