#include "numeric/lu.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/flops.hpp"

namespace omenx::numeric {

LUFactor::LUFactor(CMatrix a, Pivoting pivoting) : lu_(std::move(a)) {
  if (!lu_.square()) throw std::invalid_argument("LUFactor: matrix not square");
  const idx n = lu_.rows();
  piv_.resize(static_cast<std::size_t>(n));
  FlopCounter::add(static_cast<std::uint64_t>(8.0 / 3.0 * n * n * n));

  for (idx k = 0; k < n; ++k) {
    idx p = k;
    if (pivoting == Pivoting::kPartial) {
      double best = std::abs(lu_(k, k));
      for (idx i = k + 1; i < n; ++i) {
        const double v = std::abs(lu_(i, k));
        if (v > best) {
          best = v;
          p = i;
        }
      }
    }
    piv_[static_cast<std::size_t>(k)] = p;
    if (p != k) {
      for (idx j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
    }
    const cplx pivot = lu_(k, k);
    if (pivot == cplx{0.0})
      throw std::runtime_error("LUFactor: exactly singular matrix");
    log_abs_det_ += std::log(std::abs(pivot));
    const cplx inv_pivot = cplx{1.0} / pivot;
    for (idx i = k + 1; i < n; ++i) {
      const cplx lik = lu_(i, k) * inv_pivot;
      lu_(i, k) = lik;
      if (lik == cplx{0.0}) continue;
      const cplx* krow = lu_.row_ptr(k);
      cplx* irow = lu_.row_ptr(i);
      for (idx j = k + 1; j < n; ++j) irow[j] -= lik * krow[j];
    }
  }
}

CMatrix LUFactor::solve(const CMatrix& b) const {
  const idx n = lu_.rows();
  if (b.rows() != n) throw std::invalid_argument("LUFactor::solve: shape");
  const idx nrhs = b.cols();
  CMatrix x = b;
  FlopCounter::add(static_cast<std::uint64_t>(8u) * n * n * nrhs);

  // Apply row permutation.
  for (idx k = 0; k < n; ++k) {
    const idx p = piv_[static_cast<std::size_t>(k)];
    if (p != k)
      for (idx j = 0; j < nrhs; ++j) std::swap(x(k, j), x(p, j));
  }
  // Forward substitution (L has unit diagonal).
  for (idx i = 1; i < n; ++i) {
    const cplx* lrow = lu_.row_ptr(i);
    cplx* xrow = x.row_ptr(i);
    for (idx k = 0; k < i; ++k) {
      const cplx lik = lrow[k];
      if (lik == cplx{0.0}) continue;
      const cplx* xk = x.row_ptr(k);
      for (idx j = 0; j < nrhs; ++j) xrow[j] -= lik * xk[j];
    }
  }
  // Backward substitution.
  for (idx i = n - 1; i >= 0; --i) {
    const cplx* urow = lu_.row_ptr(i);
    cplx* xrow = x.row_ptr(i);
    for (idx k = i + 1; k < n; ++k) {
      const cplx uik = urow[k];
      if (uik == cplx{0.0}) continue;
      const cplx* xk = x.row_ptr(k);
      for (idx j = 0; j < nrhs; ++j) xrow[j] -= uik * xk[j];
    }
    const cplx inv = cplx{1.0} / urow[i];
    for (idx j = 0; j < nrhs; ++j) xrow[j] *= inv;
  }
  return x;
}

CMatrix LUFactor::solve_left(const CMatrix& b) const {
  // X A = B  <=>  A^T X^T = B^T.  Our factorization is of A, so go through
  // the explicit transpose-solve: form A^T once from LU is awkward; instead
  // solve using (A^{-1})^T applied to rows of B via the identity
  // X = B A^{-1} = (A^{-T} B^T)^T.  We implement it with two transposes and
  // the standard solve on A^T obtained from the stored factors is not
  // available, so fall back to solving with a transposed copy.  Cost is the
  // same order; this path is only used for small SMW blocks.
  CMatrix bt = b.transpose();
  // Solve A^T y = bt  =>  y = (A^T)^{-1} bt; A^T = (P^T L U)^T = U^T L^T P.
  // Simpler: rebuild the transposed operator solve via explicit inverse of
  // small systems would lose accuracy; use the relation through solve():
  // We solve A z = e_j per column of an identity is wasteful.  Here we use
  // the U^T/L^T substitution directly.
  const idx n = lu_.rows();
  const idx nrhs = bt.cols();
  FlopCounter::add(static_cast<std::uint64_t>(8u) * n * n * nrhs);
  CMatrix x = bt;
  // A^T = U^T L^T P, so solve U^T w = bt, then L^T v = w, then x = P^T v.
  // Forward substitution with U^T (lower triangular, non-unit diagonal):
  for (idx i = 0; i < n; ++i) {
    cplx* xrow = x.row_ptr(i);
    for (idx k = 0; k < i; ++k) {
      const cplx uki = lu_(k, i);  // (U^T)(i,k) = U(k,i)
      if (uki == cplx{0.0}) continue;
      const cplx* xk = x.row_ptr(k);
      for (idx j = 0; j < nrhs; ++j) xrow[j] -= uki * xk[j];
    }
    const cplx inv = cplx{1.0} / lu_(i, i);
    for (idx j = 0; j < nrhs; ++j) xrow[j] *= inv;
  }
  // Backward substitution with L^T (upper triangular, unit diagonal):
  for (idx i = n - 1; i >= 0; --i) {
    cplx* xrow = x.row_ptr(i);
    for (idx k = i + 1; k < n; ++k) {
      const cplx lki = lu_(k, i);  // (L^T)(i,k) = L(k,i)
      if (lki == cplx{0.0}) continue;
      const cplx* xk = x.row_ptr(k);
      for (idx j = 0; j < nrhs; ++j) xrow[j] -= lki * xk[j];
    }
  }
  // x currently holds v with A^T = U^T L^T P => v = P x_final, so
  // x_final = P^T v: undo the permutation rows in reverse order.
  for (idx k = n - 1; k >= 0; --k) {
    const idx p = piv_[static_cast<std::size_t>(k)];
    if (p != k)
      for (idx j = 0; j < nrhs; ++j) std::swap(x(k, j), x(p, j));
  }
  return x.transpose();
}

CMatrix LUFactor::inverse() const {
  return solve(CMatrix::identity(lu_.rows()));
}

CMatrix solve(const CMatrix& a, const CMatrix& b, Pivoting pivoting) {
  return LUFactor(a, pivoting).solve(b);
}

CMatrix inverse(const CMatrix& a, Pivoting pivoting) {
  return LUFactor(a, pivoting).inverse();
}

}  // namespace omenx::numeric
