#include "numeric/lu.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/blas.hpp"
#include "numeric/flops.hpp"

namespace omenx::numeric {

namespace {
// Default panel width for the blocked right-looking factorization and the
// blocked triangular solves.
constexpr idx kDefaultPanel = 64;
}  // namespace

LUFactor::LUFactor(CMatrix a, Pivoting pivoting, idx panel) : lu_(std::move(a)) {
  if (!lu_.square()) throw std::invalid_argument("LUFactor: matrix not square");
  const idx n = lu_.rows();
  const idx nb = panel > 0 ? panel : kDefaultPanel;
  piv_.resize(static_cast<std::size_t>(n));
  FlopCounter::add(static_cast<std::uint64_t>(8.0 / 3.0 * n * n * n));

  for (idx k0 = 0; k0 < n; k0 += nb) {
    const idx kb = std::min(nb, n - k0);
    const idx kend = k0 + kb;

    // --- Panel factorization (unblocked) on columns [k0, kend), rows
    // [k0, n).  Row swaps are applied across the full width so the pivot
    // sequence and the factors match the unblocked algorithm exactly.
    for (idx k = k0; k < kend; ++k) {
      idx p = k;
      if (pivoting == Pivoting::kPartial) {
        double best = std::abs(lu_(k, k));
        for (idx i = k + 1; i < n; ++i) {
          const double v = std::abs(lu_(i, k));
          if (v > best) {
            best = v;
            p = i;
          }
        }
      }
      piv_[static_cast<std::size_t>(k)] = p;
      if (p != k) {
        cplx* rk = lu_.row_ptr(k);
        cplx* rp = lu_.row_ptr(p);
        for (idx j = 0; j < n; ++j) std::swap(rk[j], rp[j]);
      }
      const cplx pivot = lu_(k, k);
      if (pivot == cplx{0.0})
        throw std::runtime_error("LUFactor: exactly singular matrix");
      log_abs_det_ += std::log(std::abs(pivot));
      const cplx inv_pivot = cplx{1.0} / pivot;
      const cplx* krow = lu_.row_ptr(k);
      for (idx i = k + 1; i < n; ++i) {
        cplx* irow = lu_.row_ptr(i);
        const cplx lik = irow[k] * inv_pivot;
        irow[k] = lik;
        if (lik == cplx{0.0}) continue;
        // Rank-1 update restricted to the remaining panel columns; the
        // trailing block gets its update from the GEMM below.
        for (idx j = k + 1; j < kend; ++j) irow[j] -= lik * krow[j];
      }
    }
    if (kend == n) break;

    // --- U12 = L11^{-1} A12: unit-lower triangular solve on the panel rows
    // applied to the trailing columns.
    for (idx k = k0; k < kend; ++k) {
      const cplx* krow = lu_.row_ptr(k);
      for (idx i = k + 1; i < kend; ++i) {
        const cplx lik = lu_(i, k);
        if (lik == cplx{0.0}) continue;
        cplx* irow = lu_.row_ptr(i);
        for (idx j = kend; j < n; ++j) irow[j] -= lik * krow[j];
      }
    }

    // --- Trailing update A22 -= L21 * U12 at GEMM speed.  Non-counting:
    // the analytic (8/3) n^3 added above already covers it.
    gemm_view('N', lu_.row_ptr(kend) + k0, n, 'N', lu_.row_ptr(k0) + kend, n,
              n - kend, n - kend, kb, cplx{-1.0}, cplx{1.0},
              lu_.row_ptr(kend) + kend, n, /*count_flops=*/false);
  }
}

CMatrix LUFactor::solve(const CMatrix& b) const {
  const idx n = lu_.rows();
  if (b.rows() != n) throw std::invalid_argument("LUFactor::solve: shape");
  const idx nrhs = b.cols();
  CMatrix x = b;
  FlopCounter::add(static_cast<std::uint64_t>(8u) * n * n * nrhs);
  const idx nb = kDefaultPanel;

  // Apply row permutation.
  for (idx k = 0; k < n; ++k) {
    const idx p = piv_[static_cast<std::size_t>(k)];
    if (p != k)
      for (idx j = 0; j < nrhs; ++j) std::swap(x(k, j), x(p, j));
  }
  // Forward substitution (L has unit diagonal), blocked: solve within each
  // diagonal panel, then push the panel's contribution to all rows below in
  // one GEMM.
  for (idx k0 = 0; k0 < n; k0 += nb) {
    const idx kend = std::min(k0 + nb, n);
    for (idx i = k0 + 1; i < kend; ++i) {
      const cplx* lrow = lu_.row_ptr(i);
      cplx* xrow = x.row_ptr(i);
      for (idx k = k0; k < i; ++k) {
        const cplx lik = lrow[k];
        if (lik == cplx{0.0}) continue;
        const cplx* xk = x.row_ptr(k);
        for (idx j = 0; j < nrhs; ++j) xrow[j] -= lik * xk[j];
      }
    }
    if (kend < n)
      gemm_view('N', lu_.row_ptr(kend) + k0, n, 'N', x.row_ptr(k0), nrhs,
                n - kend, nrhs, kend - k0, cplx{-1.0}, cplx{1.0},
                x.row_ptr(kend), nrhs, /*count_flops=*/false);
  }
  // Backward substitution, blocked from the bottom.
  for (idx k0 = (n - 1) / nb * nb; k0 >= 0; k0 -= nb) {
    const idx kend = std::min(k0 + nb, n);
    for (idx i = kend - 1; i >= k0; --i) {
      const cplx* urow = lu_.row_ptr(i);
      cplx* xrow = x.row_ptr(i);
      for (idx k = i + 1; k < kend; ++k) {
        const cplx uik = urow[k];
        if (uik == cplx{0.0}) continue;
        const cplx* xk = x.row_ptr(k);
        for (idx j = 0; j < nrhs; ++j) xrow[j] -= uik * xk[j];
      }
      const cplx inv = cplx{1.0} / urow[i];
      for (idx j = 0; j < nrhs; ++j) xrow[j] *= inv;
    }
    if (k0 > 0)
      gemm_view('N', lu_.row_ptr(0) + k0, n, 'N', x.row_ptr(k0), nrhs, k0,
                nrhs, kend - k0, cplx{-1.0}, cplx{1.0}, x.row_ptr(0), nrhs,
                /*count_flops=*/false);
    if (k0 == 0) break;
  }
  return x;
}

CMatrix LUFactor::solve_left(const CMatrix& b) const {
  // X A = B  <=>  A^T X^T = B^T.  Solve with the stored factors through
  // A^T = U^T L^T P: forward substitution with U^T, backward with L^T, then
  // undo the permutation.  Only used for small SMW blocks and the block-
  // tridiagonal L_i computation, so the unblocked row loops are fine.
  if (b.cols() != lu_.rows())
    throw std::invalid_argument("LUFactor::solve_left: shape");
  CMatrix bt = b.transpose();
  const idx n = lu_.rows();
  const idx nrhs = bt.cols();
  FlopCounter::add(static_cast<std::uint64_t>(8u) * n * n * nrhs);
  CMatrix x = std::move(bt);
  // Forward substitution with U^T (lower triangular, non-unit diagonal):
  for (idx i = 0; i < n; ++i) {
    cplx* xrow = x.row_ptr(i);
    for (idx k = 0; k < i; ++k) {
      const cplx uki = lu_(k, i);  // (U^T)(i,k) = U(k,i)
      if (uki == cplx{0.0}) continue;
      const cplx* xk = x.row_ptr(k);
      for (idx j = 0; j < nrhs; ++j) xrow[j] -= uki * xk[j];
    }
    const cplx inv = cplx{1.0} / lu_(i, i);
    for (idx j = 0; j < nrhs; ++j) xrow[j] *= inv;
  }
  // Backward substitution with L^T (upper triangular, unit diagonal):
  for (idx i = n - 1; i >= 0; --i) {
    cplx* xrow = x.row_ptr(i);
    for (idx k = i + 1; k < n; ++k) {
      const cplx lki = lu_(k, i);  // (L^T)(i,k) = L(k,i)
      if (lki == cplx{0.0}) continue;
      const cplx* xk = x.row_ptr(k);
      for (idx j = 0; j < nrhs; ++j) xrow[j] -= lki * xk[j];
    }
  }
  // x currently holds v with A^T = U^T L^T P => v = P x_final, so
  // x_final = P^T v: undo the permutation rows in reverse order.
  for (idx k = n - 1; k >= 0; --k) {
    const idx p = piv_[static_cast<std::size_t>(k)];
    if (p != k)
      for (idx j = 0; j < nrhs; ++j) std::swap(x(k, j), x(p, j));
  }
  return x.transpose();
}

CMatrix LUFactor::inverse() const {
  return solve(CMatrix::identity(lu_.rows()));
}

CMatrix solve(const CMatrix& a, const CMatrix& b, Pivoting pivoting) {
  return LUFactor(a, pivoting).solve(b);
}

CMatrix inverse(const CMatrix& a, Pivoting pivoting) {
  return LUFactor(a, pivoting).inverse();
}

}  // namespace omenx::numeric
