#include "numeric/cholesky.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/flops.hpp"

namespace omenx::numeric {

CMatrix cholesky(const CMatrix& a) {
  if (!a.square()) throw std::invalid_argument("cholesky: matrix not square");
  const idx n = a.rows();
  CMatrix l(n, n);
  FlopCounter::add(static_cast<std::uint64_t>(4.0 / 3.0 * n * n * n));
  for (idx j = 0; j < n; ++j) {
    cplx diag = a(j, j);
    for (idx k = 0; k < j; ++k) diag -= l(j, k) * std::conj(l(j, k));
    const double d = diag.real();
    if (d <= 0.0 || std::abs(diag.imag()) > 1e-10 * std::max(1.0, d))
      throw std::runtime_error("cholesky: matrix not positive definite");
    l(j, j) = cplx{std::sqrt(d)};
    for (idx i = j + 1; i < n; ++i) {
      cplx sum = a(i, j);
      for (idx k = 0; k < j; ++k) sum -= l(i, k) * std::conj(l(j, k));
      l(i, j) = sum / l(j, j);
    }
  }
  return l;
}

bool is_hpd(const CMatrix& a) {
  try {
    cholesky(a);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace omenx::numeric
