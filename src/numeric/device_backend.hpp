// Offload backend — batched calls routed through the emulated accelerator
// pool (parallel/device.hpp), the rehearsal for a real GPU port.
//
// The paper's production throughput comes from one in-order stream per
// K20X device with explicit H2D/D2H transfers (Figs. 7/12).  DeviceBackend
// reproduces that discipline on the emulated pool: every batched call is
// split round-robin across the pool's devices, each item enqueued as an
// in-order kernel on its device stream (so the tracer timeline shows real
// per-device occupancy), operand bytes are staged through DeviceBuffer
// reservations (so H2D/D2H traffic and memory pressure are accounted), and
// capacity overflow degrades gracefully to the host backend instead of
// throwing mid-sweep.
//
// Bit-identity: the batched overrides do only placement and accounting and
// then delegate to the Backend base implementations, which run the *same
// scalar kernels* per item as the unbatched path — through this class's
// dispatch(), i.e. on device worker threads with nested parallelism off.
// Results are therefore bit-identical to the "host" backend item by item,
// which is what lets the engine flip buckets between host and device purely
// on cost.
//
// Residency: operands that are stable across SCF iterations (lead
// self-energies, boundary RHS blocks) are staged by a caller-supplied
// 64-bit id.  The first stage pays an H2D transfer and pins a DeviceBuffer;
// subsequent stages of the same id hit residency and transfer nothing —
// the device-side analogue of the PR-5 BoundaryCache hit-rate story.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "numeric/backend.hpp"
#include "parallel/device.hpp"

namespace omenx::numeric {

/// Device-side operand cache keyed on caller-chosen stable 64-bit ids.
/// Thread-safe.  Entries pin DeviceBuffer reservations until eviction or
/// invalidate(); eviction is FIFO per device, oldest first, and only runs
/// when a miss cannot reserve capacity.  Ids must be collision-free per
/// cache (callers hash (k, E, operand-tag) — see transport/batch.cpp).
class ResidencyCache {
 public:
  enum class Outcome {
    kHit,      ///< id already resident — no transfer
    kMiss,     ///< reserved + transferred (H2D recorded on `device`)
    kStreamed  ///< could not reserve even after eviction — transferred,
               ///< not cached (will pay H2D again next time)
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t streamed = 0;
    std::uint64_t evictions = 0;
    std::uint64_t resident_bytes = 0;  ///< currently pinned on devices
  };

  ResidencyCache() = default;
  ResidencyCache(const ResidencyCache&) = delete;
  ResidencyCache& operator=(const ResidencyCache&) = delete;

  /// Stage `bytes` of operand `id` onto `device`.  Records the H2D transfer
  /// on a miss (or stream); a hit touches no counters on the device.
  Outcome stage(std::uint64_t id, std::uint64_t bytes,
                parallel::Device& device);

  /// Drop every resident operand (releasing all reservations).  Called when
  /// the engine's inputs change (new leads / OBC options), mirroring the
  /// BoundaryCache invalidation points.
  void invalidate();

  Stats stats() const;

 private:
  struct Entry {
    std::uint64_t id = 0;
    parallel::Device* device = nullptr;
    parallel::DeviceBuffer buffer;
  };

  mutable std::mutex mutex_;
  std::list<Entry> entries_;  ///< FIFO order (front = oldest)
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  Stats stats_;
};

/// numeric::Backend implementation over an emulated accelerator pool.
/// The pool (and any external ResidencyCache) must outlive the backend.
/// Instances are thread-safe like every Backend; the engine creates one per
/// leader over that leader's pool slice.
class DeviceBackend final : public Backend {
 public:
  /// Binds the backend to `pool`.  `residency` optionally shares an
  /// external operand cache (so residency survives this instance — the
  /// engine passes a per-rank cache that lives across run() calls); when
  /// null an internal cache is used.  Throws std::invalid_argument on an
  /// empty pool.
  explicit DeviceBackend(parallel::DevicePool& pool,
                         ResidencyCache* residency = nullptr);

  const char* name() const noexcept override { return "device"; }

  /// One lane per device stream.
  int lanes() const noexcept override { return pool_.size(); }

  bool offloads() const noexcept override { return true; }

  /// Items are assigned round-robin (item i -> device i % p) and enqueued
  /// as individual in-order kernels, one trace event each.  Blocks until
  /// every item settles; the first item-order exception is rethrown.
  /// Nested dispatch from inside a device kernel runs serially on that
  /// device's stream (same degradation as the host backend's lanes).
  void dispatch(const char* label, std::size_t n,
                const std::function<void(std::size_t)>& fn) override;

  /// The batched calls stage operand bytes per device before running and
  /// record the H2D/D2H traffic of a real offload.  If any device cannot
  /// reserve workspace for its share, every reservation is released and the
  /// whole call falls back to host_backend() — never throws on capacity.
  void gemm_batched(char op_a, char op_b, idx m, idx n, idx k, cplx alpha,
                    cplx beta, const std::vector<GemmBatchItem>& items) override;
  std::vector<LUFactor> lu_factor_batched(
      const std::vector<const CMatrix*>& as,
      Pivoting pivoting = Pivoting::kPartial) override;
  void lu_solve_batched(const std::vector<const LUFactor*>& factors,
                        const std::vector<const CMatrix*>& bs,
                        std::vector<CMatrix>& xs) override;
  void lu_solve_left_batched(const std::vector<const LUFactor*>& factors,
                             const std::vector<const CMatrix*>& bs,
                             std::vector<CMatrix>& xs) override;

  bool stage_operand(std::uint64_t stable_id, std::uint64_t bytes) override;

  parallel::DevicePool& pool() noexcept { return pool_; }
  ResidencyCache& residency() noexcept { return *residency_; }
  void invalidate_residency() override { residency_->invalidate(); }

  /// Batched calls that degraded to the host path on capacity overflow.
  std::uint64_t host_fallbacks() const noexcept {
    return host_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  /// Reserve per-device call workspace (`per_device_bytes[d]` on device d).
  /// On success fills `held` with the reservations and returns true; on any
  /// capacity failure releases everything already reserved and returns
  /// false (the caller then takes the host path).
  bool reserve_workspace(const std::vector<std::uint64_t>& per_device_bytes,
                         std::vector<parallel::DeviceBuffer>& held);

  /// H2D `in_bytes` / D2H `out_bytes` for item i on its round-robin device.
  void account_item_transfers(std::size_t i, std::uint64_t in_bytes,
                              std::uint64_t out_bytes);

  parallel::DevicePool& pool_;
  ResidencyCache owned_residency_;
  ResidencyCache* residency_ = nullptr;
  std::atomic<std::uint64_t> host_fallbacks_{0};
};

/// Process-wide device backend over its own private pool
/// (OMENX_DEVICE_COUNT devices, default 2).  First use registers it under
/// "device" in the backend registry.  Engine-managed DeviceBackend
/// instances over engine pools are separate and never registered.
Backend& device_backend();

}  // namespace omenx::numeric
