#include "numeric/blas.hpp"

#include <cmath>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "numeric/flops.hpp"

namespace omenx::numeric {

namespace {
thread_local bool g_parallel = true;

// Tile geometry.  The micro-kernel computes a kMR x kNR complex tile with
// split real/imaginary accumulators held in registers (4 x 24 doubles x 2 =
// 24 AVX-512 zmm accumulators, leaving headroom for the B loads and the A
// broadcasts); panel sizes keep the packed A panel in L2 and each packed B
// micro-panel in L1 while it is swept over the A panel.
constexpr idx kMR = 4;
constexpr idx kNR = 24;
constexpr idx kMC = 96;    // multiple of kMR
constexpr idx kKC = 192;
constexpr idx kNC = 1008;  // multiple of kNR

// Persistent per-thread packing scratch: grows to the high-water mark once,
// then every later GEMM is allocation-free.
struct PackBuffers {
  std::vector<double> a_re, a_im;  // kMC x kKC, padded to kMR rows
  std::vector<double> b_re, b_im;  // kKC x kNC, padded to kNR cols
};

PackBuffers& tls_pack() {
  static thread_local PackBuffers buf;
  return buf;
}

inline idx round_up(idx v, idx m) { return (v + m - 1) / m * m; }

// op(A)[r][c] for a row-major source with leading dimension lda.
inline cplx op_elem(const cplx* a, idx lda, char op, idx r, idx c) {
  switch (op) {
    case 'N':
      return a[r * lda + c];
    case 'T':
      return a[c * lda + r];
    default:  // 'C'
      return std::conj(a[c * lda + r]);
  }
}

// Pack rows [i0, i0+mc) x depth [p0, p0+kc) of alpha*op(A) into split
// re/im panels laid out as [mc/kMR micro-panels][kc][kMR], zero-padded to a
// kMR multiple so the micro-kernel never branches on the row edge.
void pack_a(char op, const cplx* a, idx lda, idx i0, idx mc, idx p0, idx kc,
            cplx alpha, double* re, double* im) {
  for (idx ib = 0; ib < mc; ib += kMR) {
    double* pre = re + (ib / kMR) * kc * kMR;
    double* pim = im + (ib / kMR) * kc * kMR;
    for (idx p = 0; p < kc; ++p) {
      for (idx i = 0; i < kMR; ++i) {
        cplx v{0.0, 0.0};
        if (ib + i < mc) v = alpha * op_elem(a, lda, op, i0 + ib + i, p0 + p);
        pre[p * kMR + i] = v.real();
        pim[p * kMR + i] = v.imag();
      }
    }
  }
}

// Pack depth [p0, p0+kc) x cols [j0, j0+nc) of op(B) into split re/im
// panels laid out as [nc/kNR micro-panels][kc][kNR], zero-padded to kNR.
void pack_b(char op, const cplx* b, idx ldb, idx p0, idx kc, idx j0, idx nc,
            double* re, double* im) {
  for (idx jb = 0; jb < nc; jb += kNR) {
    double* pre = re + (jb / kNR) * kc * kNR;
    double* pim = im + (jb / kNR) * kc * kNR;
    for (idx p = 0; p < kc; ++p) {
      for (idx j = 0; j < kNR; ++j) {
        cplx v{0.0, 0.0};
        if (jb + j < nc) v = op_elem(b, ldb, op, p0 + p, j0 + jb + j);
        pre[p * kNR + j] = v.real();
        pim[p * kNR + j] = v.imag();
      }
    }
  }
}

// C tile += packed-A micro-panel * packed-B micro-panel.  Split-complex
// accumulation: 8 real flops per (i, j, p) as four FMA streams that
// auto-vectorize over the kNR doubles of each B row.
void micro_kernel(idx kc, const double* __restrict a_re,
                  const double* __restrict a_im, const double* __restrict b_re,
                  const double* __restrict b_im, cplx* c, idx ldc,
                  idx m_valid, idx n_valid) {
  double acc_re[kMR][kNR] = {};
  double acc_im[kMR][kNR] = {};
  for (idx p = 0; p < kc; ++p) {
    const double* br = b_re + p * kNR;
    const double* bi = b_im + p * kNR;
    for (idx i = 0; i < kMR; ++i) {
      const double ar = a_re[p * kMR + i];
      const double ai = a_im[p * kMR + i];
      for (idx j = 0; j < kNR; ++j) {
        acc_re[i][j] += ar * br[j] - ai * bi[j];
        acc_im[i][j] += ar * bi[j] + ai * br[j];
      }
    }
  }
  for (idx i = 0; i < m_valid; ++i) {
    cplx* crow = c + i * ldc;
    for (idx j = 0; j < n_valid; ++j)
      crow[j] += cplx(acc_re[i][j], acc_im[i][j]);
  }
}

}  // namespace

void set_thread_parallelism(bool enabled) noexcept { g_parallel = enabled; }
bool thread_parallelism() noexcept { return g_parallel; }

void gemm_view(char op_a, const cplx* a, idx lda, char op_b, const cplx* b,
               idx ldb, idx m, idx n, idx k, cplx alpha, cplx beta, cplx* c,
               idx ldc, bool count_flops) {
  if ((op_a != 'N' && op_a != 'T' && op_a != 'C') ||
      (op_b != 'N' && op_b != 'T' && op_b != 'C'))
    throw std::invalid_argument("gemm: op must be one of N/T/C");

  if (beta == cplx{0.0}) {
    for (idx i = 0; i < m; ++i)
      std::fill_n(c + i * ldc, n, cplx{0.0});
  } else if (beta != cplx{1.0}) {
    for (idx i = 0; i < m; ++i) {
      cplx* crow = c + i * ldc;
      for (idx j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
  if (m == 0 || n == 0 || k == 0 || alpha == cplx{0.0}) return;

  if (count_flops)
    FlopCounter::add(static_cast<std::uint64_t>(m) * n * k * 8u);

  PackBuffers& master = tls_pack();
  master.b_re.resize(static_cast<std::size_t>(kKC * kNC));
  master.b_im.resize(static_cast<std::size_t>(kKC * kNC));

  const bool par = g_parallel && static_cast<std::uint64_t>(m) * n * k >
                                     64ull * 64ull * 64ull;
  (void)par;

  for (idx jc = 0; jc < n; jc += kNC) {
    const idx nc = std::min(kNC, n - jc);
    const idx nc_pad = round_up(nc, kNR);
    for (idx pc = 0; pc < k; pc += kKC) {
      const idx kc = std::min(kKC, k - pc);
      pack_b(op_b, b, ldb, pc, kc, jc, nc, master.b_re.data(),
             master.b_im.data());
      const double* b_re = master.b_re.data();
      const double* b_im = master.b_im.data();
      const idx num_ic = (m + kMC - 1) / kMC;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (par)
#endif
      for (idx ic_idx = 0; ic_idx < num_ic; ++ic_idx) {
        const idx ic = ic_idx * kMC;
        const idx mc = std::min(kMC, m - ic);
        const idx mc_pad = round_up(mc, kMR);
        PackBuffers& local = tls_pack();
        local.a_re.resize(static_cast<std::size_t>(kMC * kKC));
        local.a_im.resize(static_cast<std::size_t>(kMC * kKC));
        pack_a(op_a, a, lda, ic, mc, pc, kc, alpha, local.a_re.data(),
               local.a_im.data());
        for (idx jr = 0; jr < nc_pad; jr += kNR) {
          const double* bp_re = b_re + (jr / kNR) * kc * kNR;
          const double* bp_im = b_im + (jr / kNR) * kc * kNR;
          const idx n_valid = std::min(kNR, nc - jr);
          for (idx ir = 0; ir < mc_pad; ir += kMR) {
            const double* ap_re = local.a_re.data() + (ir / kMR) * kc * kMR;
            const double* ap_im = local.a_im.data() + (ir / kMR) * kc * kMR;
            const idx m_valid = std::min(kMR, mc - ir);
            micro_kernel(kc, ap_re, ap_im, bp_re, bp_im,
                         c + (ic + ir) * ldc + jc + jr, ldc, m_valid,
                         n_valid);
          }
        }
      }
    }
  }
}

void gemm(const CMatrix& a_in, const CMatrix& b_in, CMatrix& c, cplx alpha,
          cplx beta, char op_a, char op_b) {
  const idx m = op_a == 'N' ? a_in.rows() : a_in.cols();
  const idx k = op_a == 'N' ? a_in.cols() : a_in.rows();
  const idx kb = op_b == 'N' ? b_in.rows() : b_in.cols();
  const idx n = op_b == 'N' ? b_in.cols() : b_in.rows();
  if (kb != k) throw std::invalid_argument("gemm: inner dim mismatch");
  // The packed kernel reads the operands while writing C (the seed copied
  // both operands, so gemm(a, b, a) used to be legal).  Check before the
  // resize can invalidate the aliased buffer.
  if (&c == &a_in || &c == &b_in ||
      (!c.empty() && (c.data() == a_in.data() || c.data() == b_in.data())))
    throw std::invalid_argument("gemm: C must not alias A or B");
  if (c.rows() != m || c.cols() != n) c.resize(m, n);

  gemm_view(op_a, a_in.data(), a_in.cols(), op_b, b_in.data(), b_in.cols(), m,
            n, k, alpha, beta, c.data(), c.cols());
}

CMatrix matmul(const CMatrix& a, const CMatrix& b, char op_a, char op_b) {
  CMatrix c;
  gemm(a, b, c, cplx{1.0}, cplx{0.0}, op_a, op_b);
  return c;
}

void gemv(const CMatrix& a, const std::vector<cplx>& x, std::vector<cplx>& y,
          cplx alpha, cplx beta) {
  const idx m = a.rows(), n = a.cols();
  if (static_cast<idx>(x.size()) != n)
    throw std::invalid_argument("gemv: dimension mismatch");
  if (static_cast<idx>(y.size()) != m) y.assign(static_cast<std::size_t>(m), cplx{0.0});
  FlopCounter::add(static_cast<std::uint64_t>(m) * n * 8u);
  for (idx i = 0; i < m; ++i) {
    cplx acc{0.0};
    const cplx* row = a.row_ptr(i);
    for (idx j = 0; j < n; ++j) acc += row[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] =
        alpha * acc + beta * y[static_cast<std::size_t>(i)];
  }
}

double frob_norm(const CMatrix& a) {
  double s = 0.0;
  const cplx* p = a.data();
  for (idx i = 0; i < a.size(); ++i) s += std::norm(p[i]);
  return std::sqrt(s);
}

double frob_norm(const RMatrix& a) {
  double s = 0.0;
  const double* p = a.data();
  for (idx i = 0; i < a.size(); ++i) s += p[i] * p[i];
  return std::sqrt(s);
}

double max_abs_diff(const CMatrix& a, const CMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  double m = 0.0;
  for (idx i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

double max_abs(const CMatrix& a) {
  double m = 0.0;
  for (idx i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a.data()[i]));
  return m;
}

bool is_hermitian(const CMatrix& a, double tol) {
  if (!a.square()) return false;
  const double scale = std::max(1.0, max_abs(a));
  for (idx i = 0; i < a.rows(); ++i)
    for (idx j = i; j < a.cols(); ++j)
      if (std::abs(a(i, j) - std::conj(a(j, i))) > tol * scale) return false;
  return true;
}

CMatrix random_cmatrix(idx rows, idx cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  CMatrix out(rows, cols);
  for (idx i = 0; i < out.size(); ++i)
    out.data()[i] = cplx(dist(rng), dist(rng));
  return out;
}

RMatrix random_rmatrix(idx rows, idx cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  RMatrix out(rows, cols);
  for (idx i = 0; i < out.size(); ++i) out.data()[i] = dist(rng);
  return out;
}

}  // namespace omenx::numeric
