#include "numeric/blas.hpp"

#include <cmath>
#include <cstring>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "numeric/flops.hpp"

namespace omenx::numeric {

namespace {
thread_local bool g_parallel = true;

// Resolve op(A) into an explicit copy when needed.  GEMM inner loops then
// always run on plain row-major operands, which keeps the kernel simple and
// cache-friendly.
CMatrix apply_op(const CMatrix& a, char op) {
  switch (op) {
    case 'N':
      return a;
    case 'T':
      return a.transpose();
    case 'C':
      return dagger(a);
    default:
      throw std::invalid_argument("gemm: op must be one of N/T/C");
  }
}

constexpr idx kBlock = 64;
}  // namespace

void set_thread_parallelism(bool enabled) noexcept { g_parallel = enabled; }
bool thread_parallelism() noexcept { return g_parallel; }

void gemm(const CMatrix& a_in, const CMatrix& b_in, CMatrix& c, cplx alpha,
          cplx beta, char op_a, char op_b) {
  const CMatrix a = apply_op(a_in, op_a);
  const CMatrix b = apply_op(b_in, op_b);
  const idx m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k) throw std::invalid_argument("gemm: inner dim mismatch");
  if (c.rows() != m || c.cols() != n) c.resize(m, n);

  if (beta == cplx{0.0}) {
    c.fill(cplx{0.0});
  } else if (beta != cplx{1.0}) {
    c *= beta;
  }

  // 8 real flops per complex multiply-add.
  FlopCounter::add(static_cast<std::uint64_t>(m) * n * k * 8u);

  const bool par = g_parallel && m * n * k > 64 * 64 * 64;
#ifdef _OPENMP
#pragma omp parallel for schedule(static) if (par)
#endif
  for (idx i0 = 0; i0 < m; i0 += kBlock) {
    const idx i1 = std::min(i0 + kBlock, m);
    for (idx k0 = 0; k0 < k; k0 += kBlock) {
      const idx k1 = std::min(k0 + kBlock, k);
      for (idx i = i0; i < i1; ++i) {
        cplx* crow = c.row_ptr(i);
        const cplx* arow = a.row_ptr(i);
        for (idx kk = k0; kk < k1; ++kk) {
          const cplx av = alpha * arow[kk];
          if (av == cplx{0.0}) continue;
          const cplx* brow = b.row_ptr(kk);
          for (idx j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
  (void)par;
}

CMatrix matmul(const CMatrix& a, const CMatrix& b, char op_a, char op_b) {
  CMatrix c;
  gemm(a, b, c, cplx{1.0}, cplx{0.0}, op_a, op_b);
  return c;
}

void gemv(const CMatrix& a, const std::vector<cplx>& x, std::vector<cplx>& y,
          cplx alpha, cplx beta) {
  const idx m = a.rows(), n = a.cols();
  if (static_cast<idx>(x.size()) != n)
    throw std::invalid_argument("gemv: dimension mismatch");
  if (static_cast<idx>(y.size()) != m) y.assign(static_cast<std::size_t>(m), cplx{0.0});
  FlopCounter::add(static_cast<std::uint64_t>(m) * n * 8u);
  for (idx i = 0; i < m; ++i) {
    cplx acc{0.0};
    const cplx* row = a.row_ptr(i);
    for (idx j = 0; j < n; ++j) acc += row[j] * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] =
        alpha * acc + beta * y[static_cast<std::size_t>(i)];
  }
}

double frob_norm(const CMatrix& a) {
  double s = 0.0;
  const cplx* p = a.data();
  for (idx i = 0; i < a.size(); ++i) s += std::norm(p[i]);
  return std::sqrt(s);
}

double frob_norm(const RMatrix& a) {
  double s = 0.0;
  const double* p = a.data();
  for (idx i = 0; i < a.size(); ++i) s += p[i] * p[i];
  return std::sqrt(s);
}

double max_abs_diff(const CMatrix& a, const CMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  double m = 0.0;
  for (idx i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  return m;
}

double max_abs(const CMatrix& a) {
  double m = 0.0;
  for (idx i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a.data()[i]));
  return m;
}

bool is_hermitian(const CMatrix& a, double tol) {
  if (!a.square()) return false;
  const double scale = std::max(1.0, max_abs(a));
  for (idx i = 0; i < a.rows(); ++i)
    for (idx j = i; j < a.cols(); ++j)
      if (std::abs(a(i, j) - std::conj(a(j, i))) > tol * scale) return false;
  return true;
}

CMatrix random_cmatrix(idx rows, idx cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  CMatrix out(rows, cols);
  for (idx i = 0; i < out.size(); ++i)
    out.data()[i] = cplx(dist(rng), dist(rng));
  return out;
}

RMatrix random_rmatrix(idx rows, idx cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  RMatrix out(rows, cols);
  for (idx i = 0; i < out.size(); ++i) out.data()[i] = dist(rng);
  return out;
}

}  // namespace omenx::numeric
