// Global floating-point-operation accounting.
//
// The paper measures FLOPs with PAPI (CPU) and CUPTI (GPU).  Here every
// numeric kernel reports its deterministic operation count to a
// thread-safe global counter, which the perf library reads to validate its
// analytic FLOP model (Section 5B of the paper notes the SplitSolve count
// is deterministic).
#pragma once

#include <atomic>
#include <cstdint>

namespace omenx::numeric {

class FlopCounter {
 public:
  /// Add `n` floating point operations to the global tally.
  static void add(std::uint64_t n) noexcept {
    counter_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Current tally since process start or last reset().
  static std::uint64_t total() noexcept {
    return counter_.load(std::memory_order_relaxed);
  }

  static void reset() noexcept {
    counter_.store(0, std::memory_order_relaxed);
  }

 private:
  static inline std::atomic<std::uint64_t> counter_{0};
};

/// RAII scope that measures the FLOPs executed while it is alive.
class FlopScope {
 public:
  FlopScope() : start_(FlopCounter::total()) {}
  std::uint64_t elapsed() const { return FlopCounter::total() - start_; }

 private:
  std::uint64_t start_;
};

}  // namespace omenx::numeric
