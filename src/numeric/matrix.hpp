// Dense row-major matrix container used by every subsystem.
//
// Kept deliberately simple: owning, contiguous storage, no expression
// templates.  Heavy kernels (GEMM, LU, QR, eigensolvers) live in separate
// translation units and operate on this type.
#pragma once

#include <algorithm>
#include <cassert>
#include <initializer_list>
#include <random>
#include <stdexcept>
#include <vector>

#include "numeric/types.hpp"

namespace omenx::numeric {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(idx rows, idx cols, T init = T{})
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), init) {
    assert(rows >= 0 && cols >= 0);
  }

  /// Build from a nested initializer list: Matrix<double>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = static_cast<idx>(init.size());
    cols_ = rows_ > 0 ? static_cast<idx>(init.begin()->size()) : 0;
    data_.reserve(static_cast<std::size_t>(rows_ * cols_));
    for (const auto& row : init) {
      if (static_cast<idx>(row.size()) != cols_)
        throw std::invalid_argument("Matrix: ragged initializer list");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  idx rows() const noexcept { return rows_; }
  idx cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }
  bool square() const noexcept { return rows_ == cols_; }

  T& operator()(idx r, idx c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  const T& operator()(idx r, idx c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }
  T* row_ptr(idx r) noexcept { return data_.data() + r * cols_; }
  const T* row_ptr(idx r) const noexcept { return data_.data() + r * cols_; }

  /// Number of stored scalars.
  idx size() const noexcept { return rows_ * cols_; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  void resize(idx rows, idx cols, T init = T{}) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows * cols), init);
  }

  /// Copy of the [r0, r0+nr) x [c0, c0+nc) sub-block.
  Matrix block(idx r0, idx c0, idx nr, idx nc) const {
    assert(r0 + nr <= rows_ && c0 + nc <= cols_);
    Matrix out(nr, nc);
    for (idx i = 0; i < nr; ++i)
      std::copy_n(row_ptr(r0 + i) + c0, nc, out.row_ptr(i));
    return out;
  }

  /// Write `src` into this matrix at offset (r0, c0).
  void set_block(idx r0, idx c0, const Matrix& src) {
    assert(r0 + src.rows() <= rows_ && c0 + src.cols() <= cols_);
    for (idx i = 0; i < src.rows(); ++i)
      std::copy_n(src.row_ptr(i), src.cols(), row_ptr(r0 + i) + c0);
  }

  /// Add `src` into this matrix at offset (r0, c0).
  void add_block(idx r0, idx c0, const Matrix& src, T scale = T{1}) {
    assert(r0 + src.rows() <= rows_ && c0 + src.cols() <= cols_);
    for (idx i = 0; i < src.rows(); ++i) {
      const T* s = src.row_ptr(i);
      T* d = row_ptr(r0 + i) + c0;
      for (idx j = 0; j < src.cols(); ++j) d[j] += scale * s[j];
    }
  }

  Matrix transpose() const {
    Matrix out(cols_, rows_);
    for (idx i = 0; i < rows_; ++i)
      for (idx j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
  }

  static Matrix identity(idx n) {
    Matrix out(n, n);
    for (idx i = 0; i < n; ++i) out(i, i) = T{1};
    return out;
  }

  static Matrix zeros(idx rows, idx cols) { return Matrix(rows, cols); }

  Matrix& operator+=(const Matrix& o) {
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  Matrix& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

 private:
  idx rows_ = 0;
  idx cols_ = 0;
  std::vector<T> data_;
};

using CMatrix = Matrix<cplx>;
using RMatrix = Matrix<double>;

/// Conjugate transpose (dagger).
inline CMatrix dagger(const CMatrix& a) {
  CMatrix out(a.cols(), a.rows());
  for (idx i = 0; i < a.rows(); ++i)
    for (idx j = 0; j < a.cols(); ++j) out(j, i) = std::conj(a(i, j));
  return out;
}

/// Promote a real matrix to complex.
inline CMatrix to_complex(const RMatrix& a) {
  CMatrix out(a.rows(), a.cols());
  for (idx i = 0; i < a.rows(); ++i)
    for (idx j = 0; j < a.cols(); ++j) out(i, j) = cplx(a(i, j), 0.0);
  return out;
}

/// Deterministically seeded random matrix with entries in [-1, 1] (+i[-1,1]
/// for complex), used for FEAST probing vectors and tests.
CMatrix random_cmatrix(idx rows, idx cols, unsigned seed);
RMatrix random_rmatrix(idx rows, idx cols, unsigned seed);

}  // namespace omenx::numeric
