// Dense row-major matrix container used by every subsystem, plus the
// Workspace arena that makes repeated solves allocation-free.
//
// Kept deliberately simple: owning, contiguous storage, no expression
// templates.  Heavy kernels (GEMM, LU, QR, eigensolvers) live in separate
// translation units and operate on this type.
//
// Every Matrix buffer is obtained through PoolAllocator.  When a Workspace
// is active on the current thread (via WorkspaceScope), freed buffers are
// parked in a size-keyed free list and handed back to later allocations of
// the same size instead of hitting the heap.  A sweep that solves the same
// shapes point after point therefore performs heap allocations only while
// warming up; the steady state is malloc-free.  matrix_heap_allocations()
// counts the actual heap allocations and is the test hook used to assert
// both properties.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <new>
#include <random>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "numeric/types.hpp"

namespace omenx::numeric {

namespace detail {

// Every chunk is prefixed by a header recording its origin so it can be
// returned to the right free list (or the heap) no matter which thread or
// scope releases it.
struct PoolCore;
struct ChunkHeader {
  PoolCore* core;     ///< owning pool, nullptr for plain heap chunks
  std::size_t bytes;  ///< payload size, the free-list key
};
inline constexpr std::size_t kHeaderSize =
    (sizeof(ChunkHeader) + alignof(std::max_align_t) - 1) /
    alignof(std::max_align_t) * alignof(std::max_align_t);

// Free-list state shared between a Workspace and chunks that outlive it.
// Reference semantics: the core survives until the Workspace is destroyed
// AND no outstanding chunk still points at it.
struct PoolCore {
  std::mutex mu;
  std::unordered_map<std::size_t, std::vector<void*>> free_chunks;
  std::size_t outstanding = 0;  ///< chunks currently lent out
  bool alive = true;            ///< the owning Workspace still exists
};

inline std::atomic<std::uint64_t> g_heap_allocs{0};
inline std::atomic<std::uint64_t> g_pool_hits{0};

}  // namespace detail

/// Number of heap allocations performed for Matrix (and pooled index)
/// buffers since process start.  Steady-state code paths — GEMM with a
/// right-sized output, energy points solved through a warmed-up context —
/// must not advance this counter; tests assert exactly that.
inline std::uint64_t matrix_heap_allocations() noexcept {
  return detail::g_heap_allocs.load(std::memory_order_relaxed);
}

/// Number of allocations served from an active Workspace free list.
inline std::uint64_t workspace_pool_hits() noexcept {
  return detail::g_pool_hits.load(std::memory_order_relaxed);
}

/// Reusable buffer arena.  Activate with WorkspaceScope; while active, all
/// Matrix buffers released on this thread are pooled and recycled.  The
/// arena is safe to destroy while borrowed buffers are still alive (they
/// fall back to plain heap deallocation), and buffers may be released from
/// any thread.
class Workspace {
 public:
  Workspace() : core_(new detail::PoolCore) {}

  ~Workspace() {
    std::vector<void*> to_free;
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      core_->alive = false;
      for (auto& [bytes, chunks] : core_->free_chunks)
        to_free.insert(to_free.end(), chunks.begin(), chunks.end());
      core_->free_chunks.clear();
      last = core_->outstanding == 0;
    }
    for (void* p : to_free) ::operator delete(p);
    if (last) delete core_;
  }

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Bytes currently parked in the free lists (diagnostics).
  std::size_t pooled_bytes() const {
    std::lock_guard<std::mutex> lock(core_->mu);
    std::size_t total = 0;
    for (const auto& [bytes, chunks] : core_->free_chunks)
      total += bytes * chunks.size();
    return total;
  }

  /// The workspace active on this thread, or nullptr.
  static Workspace*& current() noexcept {
    static thread_local Workspace* tls = nullptr;
    return tls;
  }

  /// Release every parked buffer back to the heap (borrowed buffers are
  /// unaffected).  Call between workloads of different shapes to bound the
  /// pool's footprint — free lists are size-keyed and otherwise keep the
  /// high-water population of every size ever used.
  void clear() {
    std::vector<void*> to_free;
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      for (auto& [bytes, chunks] : core_->free_chunks)
        to_free.insert(to_free.end(), chunks.begin(), chunks.end());
      core_->free_chunks.clear();
    }
    for (void* p : to_free) ::operator delete(p);
  }

  /// Borrow a chunk of exactly `bytes`: recycled if available, otherwise a
  /// fresh (counted) heap allocation tagged with this pool.
  void* acquire(std::size_t bytes) {
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      auto it = core_->free_chunks.find(bytes);
      if (it != core_->free_chunks.end() && !it->second.empty()) {
        void* chunk = it->second.back();
        it->second.pop_back();
        ++core_->outstanding;
        detail::g_pool_hits.fetch_add(1, std::memory_order_relaxed);
        return static_cast<char*>(chunk) + detail::kHeaderSize;
      }
    }
    // Allocate before taking credit: a throwing operator new must not
    // leave `outstanding` raised (that would leak the PoolCore later).
    void* chunk = ::operator new(detail::kHeaderSize + bytes);
    *static_cast<detail::ChunkHeader*>(chunk) = {core_, bytes};
    detail::g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(core_->mu);
      ++core_->outstanding;
    }
    return static_cast<char*>(chunk) + detail::kHeaderSize;
  }

 private:
  detail::PoolCore* core_;
};

/// RAII activation of a Workspace on the current thread (nestable).
class WorkspaceScope {
 public:
  explicit WorkspaceScope(Workspace& ws) : prev_(Workspace::current()) {
    Workspace::current() = &ws;
  }
  ~WorkspaceScope() { Workspace::current() = prev_; }
  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;

 private:
  Workspace* prev_;
};

namespace detail {

inline void* pool_allocate(std::size_t bytes) {
  if (Workspace* ws = Workspace::current()) return ws->acquire(bytes);
  void* chunk = ::operator new(kHeaderSize + bytes);
  *static_cast<ChunkHeader*>(chunk) = {nullptr, bytes};
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return static_cast<char*>(chunk) + kHeaderSize;
}

inline void pool_deallocate(void* payload) noexcept {
  void* chunk = static_cast<char*>(payload) - kHeaderSize;
  const ChunkHeader header = *static_cast<ChunkHeader*>(chunk);
  if (header.core == nullptr) {
    ::operator delete(chunk);
    return;
  }
  PoolCore* core = header.core;
  bool last = false;
  {
    std::lock_guard<std::mutex> lock(core->mu);
    --core->outstanding;
    if (core->alive) {
      core->free_chunks[header.bytes].push_back(chunk);
      return;
    }
    last = core->outstanding == 0;
  }
  ::operator delete(chunk);
  if (last) delete core;
}

}  // namespace detail

/// Allocator routing all Matrix storage through the active Workspace (if
/// any).  Stateless: any instance can free any other instance's memory.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(detail::pool_allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept { detail::pool_deallocate(p); }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const PoolAllocator&, const PoolAllocator&) noexcept {
    return false;
  }
};

/// std::vector routed through the Workspace pool (used for hot-path index
/// buffers such as LU pivots, so repeated factorizations stay heap-free).
template <typename T>
using pool_vector = std::vector<T, PoolAllocator<T>>;

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(idx rows, idx cols, T init = T{})
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), init) {
    assert(rows >= 0 && cols >= 0);
  }

  /// Build from a nested initializer list: Matrix<double>{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = static_cast<idx>(init.size());
    cols_ = rows_ > 0 ? static_cast<idx>(init.begin()->size()) : 0;
    data_.reserve(static_cast<std::size_t>(rows_ * cols_));
    for (const auto& row : init) {
      if (static_cast<idx>(row.size()) != cols_)
        throw std::invalid_argument("Matrix: ragged initializer list");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  idx rows() const noexcept { return rows_; }
  idx cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }
  bool square() const noexcept { return rows_ == cols_; }

  T& operator()(idx r, idx c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  const T& operator()(idx r, idx c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }
  T* row_ptr(idx r) noexcept { return data_.data() + r * cols_; }
  const T* row_ptr(idx r) const noexcept { return data_.data() + r * cols_; }

  /// Number of stored scalars.
  idx size() const noexcept { return rows_ * cols_; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Reshape and zero-fill.  Existing capacity is reused, so resizing a
  /// matrix back to a size it has already held does not allocate.
  void resize(idx rows, idx cols, T init = T{}) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows * cols), init);
  }

  /// Reshape without initializing new contents (contents unspecified).
  void resize_uninit(idx rows, idx cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<std::size_t>(rows * cols));
  }

  /// Copy of the [r0, r0+nr) x [c0, c0+nc) sub-block.
  Matrix block(idx r0, idx c0, idx nr, idx nc) const {
    assert(r0 + nr <= rows_ && c0 + nc <= cols_);
    Matrix out(nr, nc);
    for (idx i = 0; i < nr; ++i)
      std::copy_n(row_ptr(r0 + i) + c0, nc, out.row_ptr(i));
    return out;
  }

  /// Copy the [r0, r0+nr) x [c0, c0+nc) sub-block into `out` (resized as
  /// needed; reuses out's capacity).
  void block_into(idx r0, idx c0, idx nr, idx nc, Matrix& out) const {
    assert(r0 + nr <= rows_ && c0 + nc <= cols_);
    out.resize_uninit(nr, nc);
    for (idx i = 0; i < nr; ++i)
      std::copy_n(row_ptr(r0 + i) + c0, nc, out.row_ptr(i));
  }

  /// Write `src` into this matrix at offset (r0, c0).
  void set_block(idx r0, idx c0, const Matrix& src) {
    assert(r0 + src.rows() <= rows_ && c0 + src.cols() <= cols_);
    for (idx i = 0; i < src.rows(); ++i)
      std::copy_n(src.row_ptr(i), src.cols(), row_ptr(r0 + i) + c0);
  }

  /// Add `src` into this matrix at offset (r0, c0).
  void add_block(idx r0, idx c0, const Matrix& src, T scale = T{1}) {
    assert(r0 + src.rows() <= rows_ && c0 + src.cols() <= cols_);
    for (idx i = 0; i < src.rows(); ++i) {
      const T* s = src.row_ptr(i);
      T* d = row_ptr(r0 + i) + c0;
      for (idx j = 0; j < src.cols(); ++j) d[j] += scale * s[j];
    }
  }

  Matrix transpose() const {
    Matrix out(cols_, rows_);
    for (idx i = 0; i < rows_; ++i)
      for (idx j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
  }

  static Matrix identity(idx n) {
    Matrix out(n, n);
    for (idx i = 0; i < n; ++i) out(i, i) = T{1};
    return out;
  }

  static Matrix zeros(idx rows, idx cols) { return Matrix(rows, cols); }

  Matrix& operator+=(const Matrix& o) {
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  Matrix& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

 private:
  idx rows_ = 0;
  idx cols_ = 0;
  pool_vector<T> data_;
};

using CMatrix = Matrix<cplx>;
using RMatrix = Matrix<double>;

/// Conjugate transpose (dagger).
inline CMatrix dagger(const CMatrix& a) {
  CMatrix out(a.cols(), a.rows());
  for (idx i = 0; i < a.rows(); ++i)
    for (idx j = 0; j < a.cols(); ++j) out(j, i) = std::conj(a(i, j));
  return out;
}

/// Promote a real matrix to complex.
inline CMatrix to_complex(const RMatrix& a) {
  CMatrix out(a.rows(), a.cols());
  for (idx i = 0; i < a.rows(); ++i)
    for (idx j = 0; j < a.cols(); ++j) out(i, j) = cplx(a(i, j), 0.0);
  return out;
}

/// Deterministically seeded random matrix with entries in [-1, 1] (+i[-1,1]
/// for complex), used for FEAST probing vectors and tests.
CMatrix random_cmatrix(idx rows, idx cols, unsigned seed);
RMatrix random_rmatrix(idx rows, idx cols, unsigned seed);

}  // namespace omenx::numeric
