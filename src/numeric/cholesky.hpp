// Cholesky factorization for Hermitian positive definite matrices.
//
// The overlap matrix S produced by a localized Gaussian basis is HPD; the
// DFT emulator uses this to validate its assembled S, and transport code
// uses it for Loewdin-style orthogonalization checks.
#pragma once

#include "numeric/matrix.hpp"

namespace omenx::numeric {

/// Lower-triangular L with A = L L^H.  Throws std::runtime_error when the
/// matrix is not positive definite.
CMatrix cholesky(const CMatrix& a);

/// True if `a` is Hermitian positive definite (attempts a factorization).
bool is_hpd(const CMatrix& a);

}  // namespace omenx::numeric
