// Core scalar types and tolerances shared by all numeric kernels.
#pragma once

#include <complex>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace omenx::numeric {

/// Double-precision complex scalar; all transport matrices use this type.
using cplx = std::complex<double>;

/// Index type used for matrix dimensions (signed, per C++ Core Guidelines
/// ES.107: avoid unsigned arithmetic surprises in loop math).
using idx = std::int64_t;

inline constexpr double kPi = 3.14159265358979323846;

/// Default relative tolerance for iterative numeric algorithms.
inline constexpr double kDefaultTol = 1e-12;

/// True if |a-b| <= atol + rtol*max(|a|,|b|).
inline bool almost_equal(double a, double b, double rtol = 1e-10,
                         double atol = 1e-13) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

inline bool almost_equal(cplx a, cplx b, double rtol = 1e-10,
                         double atol = 1e-13) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace omenx::numeric
