// Dense complex eigensolvers built on Hessenberg reduction + shifted QR.
//
// These replace the LAPACK routines the paper relies on (zggev for the lead
// eigenproblem, Rayleigh-Ritz reductions in FEAST).  The generalized solver
// goes through B^{-1}A when B is well conditioned and through a
// shift-and-invert spectral transform otherwise (which also tolerates
// singular B: infinite eigenvalues map to theta = 0 and are dropped).
#pragma once

#include <vector>

#include "numeric/matrix.hpp"

namespace omenx::numeric {

struct EigResult {
  std::vector<cplx> values;
  /// Right eigenvectors as columns; empty when not requested.
  CMatrix vectors;
};

/// Eigenvalues (and optionally right eigenvectors) of a general complex
/// square matrix.  QR iteration on the Hessenberg form with Wilkinson
/// shifts; eigenvectors via triangular back-substitution on the Schur form.
EigResult eig(const CMatrix& a, bool want_vectors = true);

/// Generalized problem A x = lambda B x with invertible B, via B^{-1} A.
EigResult generalized_eig(const CMatrix& a, const CMatrix& b,
                          bool want_vectors = true);

/// Shift-and-invert for the pencil (A, B): eigenvalues of
/// M = (A - sigma B)^{-1} B are theta = 1/(lambda - sigma).  Finite
/// eigenvalues are recovered as lambda = sigma + 1/theta; |theta| below
/// `drop_tol` (infinite lambda) are discarded.  Works with singular B.
EigResult shift_invert_eig(const CMatrix& a, const CMatrix& b, cplx sigma,
                           bool want_vectors = true, double drop_tol = 1e-12);

/// Eigen-decomposition of a Hermitian matrix via the cyclic Jacobi method:
/// returns real eigenvalues (ascending) and orthonormal eigenvectors.
struct HermEigResult {
  std::vector<double> values;
  CMatrix vectors;
};
HermEigResult hermitian_eig(const CMatrix& a, double tol = 1e-12);

}  // namespace omenx::numeric
