#include "numeric/device_backend.hpp"

#include <cstdlib>
#include <exception>
#include <future>
#include <stdexcept>
#include <utility>

#include "numeric/blas.hpp"

namespace omenx::numeric {

namespace {

// Set while a device worker is executing one of our kernels.  A nested
// dispatch from inside a kernel must not enqueue back onto the pool (the
// current stream would deadlock waiting on a kernel behind itself), so it
// degrades to a serial loop on the same stream — the exact analogue of the
// host backend's lane rule.
thread_local bool g_in_device_kernel = false;

// Kernel discipline mirroring run_lane_item in backend.cpp: a per-stream
// workspace arena and nested kernel parallelism off, so p devices genuinely
// run p-way parallel without oversubscription and each item executes the
// same single-threaded scalar kernel as every other path — the bit-identity
// contract.
void run_kernel_item(const std::function<void(std::size_t)>& fn,
                     std::size_t i) {
  static thread_local Workspace stream_workspace;
  const WorkspaceScope scope(stream_workspace);
  const bool saved_parallelism = thread_parallelism();
  set_thread_parallelism(false);
  const bool saved_nested = g_in_device_kernel;
  g_in_device_kernel = true;
  try {
    fn(i);
  } catch (...) {
    g_in_device_kernel = saved_nested;
    set_thread_parallelism(saved_parallelism);
    throw;
  }
  g_in_device_kernel = saved_nested;
  set_thread_parallelism(saved_parallelism);
}

constexpr std::uint64_t kCplxBytes = sizeof(cplx);

std::uint64_t matrix_bytes(const CMatrix* m) {
  if (m == nullptr) return 0;
  return std::uint64_t(m->rows()) * std::uint64_t(m->cols()) * kCplxBytes;
}

}  // namespace

// ------------------------------------------------------- ResidencyCache --

ResidencyCache::Outcome ResidencyCache::stage(std::uint64_t id,
                                              std::uint64_t bytes,
                                              parallel::Device& device) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = index_.find(id);
  if (found != index_.end()) {
    ++stats_.hits;
    return Outcome::kHit;
  }
  // Miss: reserve, evicting our oldest entries on this device until the
  // operand fits.  Entries pinned on *other* devices do not free capacity
  // here, so they are left alone.
  for (;;) {
    try {
      parallel::DeviceBuffer buffer = device.allocate(bytes);
      device.record_h2d(bytes);
      entries_.push_back(Entry{id, &device, std::move(buffer)});
      index_.emplace(id, std::prev(entries_.end()));
      ++stats_.misses;
      stats_.resident_bytes += bytes;
      return Outcome::kMiss;
    } catch (const std::runtime_error&) {
      auto victim = entries_.begin();
      while (victim != entries_.end() && victim->device != &device) ++victim;
      if (victim == entries_.end()) {
        // Nothing left to evict: the operand is simply streamed — the
        // transfer happens but nothing is pinned, and the next stage of
        // this id will pay H2D again.
        device.record_h2d(bytes);
        ++stats_.streamed;
        return Outcome::kStreamed;
      }
      stats_.resident_bytes -= victim->buffer.bytes();
      ++stats_.evictions;
      index_.erase(victim->id);
      entries_.erase(victim);
    }
  }
}

void ResidencyCache::invalidate() {
  const std::lock_guard<std::mutex> lock(mutex_);
  index_.clear();
  entries_.clear();
  stats_.resident_bytes = 0;
}

ResidencyCache::Stats ResidencyCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// -------------------------------------------------------- DeviceBackend --

DeviceBackend::DeviceBackend(parallel::DevicePool& pool,
                             ResidencyCache* residency)
    : pool_(pool),
      residency_(residency != nullptr ? residency : &owned_residency_) {
  if (pool_.size() <= 0)
    throw std::invalid_argument("DeviceBackend: empty device pool");
}

void DeviceBackend::dispatch(const char* label, std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (g_in_device_kernel) {
    for (std::size_t i = 0; i < n; ++i) run_kernel_item(fn, i);
    return;
  }
  const std::size_t num_devices = std::size_t(pool_.size());
  std::vector<std::future<void>> pending;
  pending.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    parallel::Device& dev = pool_.device(int(i % num_devices));
    pending.push_back(dev.enqueue(label, [&fn, i] { run_kernel_item(fn, i); }));
  }
  // Same settle-then-rethrow rule as the host backend: every kernel
  // completes before any exception propagates, first item-order error wins.
  std::exception_ptr first_error;
  for (auto& fut : pending) {
    try {
      fut.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

bool DeviceBackend::reserve_workspace(
    const std::vector<std::uint64_t>& per_device_bytes,
    std::vector<parallel::DeviceBuffer>& held) {
  held.clear();
  held.reserve(per_device_bytes.size());
  for (std::size_t d = 0; d < per_device_bytes.size(); ++d) {
    if (per_device_bytes[d] == 0) continue;
    try {
      held.push_back(pool_.device(int(d)).allocate(per_device_bytes[d]));
    } catch (const std::runtime_error&) {
      held.clear();  // releases every reservation made so far, exactly once
      host_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
  }
  return true;
}

void DeviceBackend::account_item_transfers(std::size_t i,
                                           std::uint64_t in_bytes,
                                           std::uint64_t out_bytes) {
  parallel::Device& dev = pool_.device(int(i % std::size_t(pool_.size())));
  if (in_bytes != 0) dev.record_h2d(in_bytes);
  if (out_bytes != 0) dev.record_d2h(out_bytes);
}

void DeviceBackend::gemm_batched(char op_a, char op_b, idx m, idx n, idx k,
                                 cplx alpha, cplx beta,
                                 const std::vector<GemmBatchItem>& items) {
  if (items.empty()) return;
  // Operands per item: A (m x k), B (k x n) in; C out (and in when the
  // update reads it).
  const std::uint64_t a_bytes = std::uint64_t(m) * std::uint64_t(k) * kCplxBytes;
  const std::uint64_t b_bytes = std::uint64_t(k) * std::uint64_t(n) * kCplxBytes;
  const std::uint64_t c_bytes = std::uint64_t(m) * std::uint64_t(n) * kCplxBytes;
  const bool reads_c = beta != cplx(0.0, 0.0);
  const std::uint64_t in_bytes = a_bytes + b_bytes + (reads_c ? c_bytes : 0);
  const std::size_t num_devices = std::size_t(pool_.size());
  std::vector<std::uint64_t> per_device(num_devices, 0);
  for (std::size_t i = 0; i < items.size(); ++i)
    per_device[i % num_devices] += in_bytes + c_bytes;
  std::vector<parallel::DeviceBuffer> held;
  if (!reserve_workspace(per_device, held)) {
    host_backend().gemm_batched(op_a, op_b, m, n, k, alpha, beta, items);
    return;
  }
  for (std::size_t i = 0; i < items.size(); ++i)
    account_item_transfers(i, in_bytes, c_bytes);
  Backend::gemm_batched(op_a, op_b, m, n, k, alpha, beta, items);
}

std::vector<LUFactor> DeviceBackend::lu_factor_batched(
    const std::vector<const CMatrix*>& as, Pivoting pivoting) {
  if (as.empty()) return {};
  const std::size_t num_devices = std::size_t(pool_.size());
  std::vector<std::uint64_t> per_device(num_devices, 0);
  for (std::size_t i = 0; i < as.size(); ++i) {
    // In-place factorization of a device copy: one n x n operand in, the
    // factor (same footprint) back out.
    per_device[i % num_devices] += 2 * matrix_bytes(as[i]);
  }
  std::vector<parallel::DeviceBuffer> held;
  if (!reserve_workspace(per_device, held))
    return host_backend().lu_factor_batched(as, pivoting);
  for (std::size_t i = 0; i < as.size(); ++i)
    account_item_transfers(i, matrix_bytes(as[i]), matrix_bytes(as[i]));
  return Backend::lu_factor_batched(as, pivoting);
}

void DeviceBackend::lu_solve_batched(
    const std::vector<const LUFactor*>& factors,
    const std::vector<const CMatrix*>& bs, std::vector<CMatrix>& xs) {
  if (factors.empty()) {
    Backend::lu_solve_batched(factors, bs, xs);
    return;
  }
  const std::size_t num_devices = std::size_t(pool_.size());
  std::vector<std::uint64_t> per_device(num_devices, 0);
  for (std::size_t i = 0; i < bs.size(); ++i)
    per_device[i % num_devices] += 2 * matrix_bytes(bs[i]);
  std::vector<parallel::DeviceBuffer> held;
  if (!reserve_workspace(per_device, held)) {
    host_backend().lu_solve_batched(factors, bs, xs);
    return;
  }
  // The factor is assumed device-resident from lu_factor_batched (a real
  // port keeps it there); only the RHS moves in and the solution out.
  for (std::size_t i = 0; i < bs.size(); ++i)
    account_item_transfers(i, matrix_bytes(bs[i]), matrix_bytes(bs[i]));
  Backend::lu_solve_batched(factors, bs, xs);
}

void DeviceBackend::lu_solve_left_batched(
    const std::vector<const LUFactor*>& factors,
    const std::vector<const CMatrix*>& bs, std::vector<CMatrix>& xs) {
  if (factors.empty()) {
    Backend::lu_solve_left_batched(factors, bs, xs);
    return;
  }
  const std::size_t num_devices = std::size_t(pool_.size());
  std::vector<std::uint64_t> per_device(num_devices, 0);
  for (std::size_t i = 0; i < bs.size(); ++i)
    per_device[i % num_devices] += 2 * matrix_bytes(bs[i]);
  std::vector<parallel::DeviceBuffer> held;
  if (!reserve_workspace(per_device, held)) {
    host_backend().lu_solve_left_batched(factors, bs, xs);
    return;
  }
  for (std::size_t i = 0; i < bs.size(); ++i)
    account_item_transfers(i, matrix_bytes(bs[i]), matrix_bytes(bs[i]));
  Backend::lu_solve_left_batched(factors, bs, xs);
}

bool DeviceBackend::stage_operand(std::uint64_t stable_id,
                                  std::uint64_t bytes) {
  if (bytes == 0) return false;
  const std::size_t num_devices = std::size_t(pool_.size());
  parallel::Device& dev = pool_.device(int(stable_id % num_devices));
  if (stable_id == 0) {
    dev.record_h2d(bytes);
    return false;
  }
  return residency_->stage(stable_id, bytes, dev) ==
         ResidencyCache::Outcome::kHit;
}

Backend& device_backend() {
  // Construction order pool -> backend (destroyed in reverse, so the
  // backend's residency reservations are released before their devices).
  static parallel::DevicePool pool([] {
    const char* env = std::getenv("OMENX_DEVICE_COUNT");
    const int n = env != nullptr ? std::atoi(env) : 0;
    return n > 0 ? n : 2;
  }());
  static DeviceBackend backend(pool);
  static const bool registered = [] {
    register_backend("device", &backend);
    return true;
  }();
  (void)registered;
  return backend;
}

}  // namespace omenx::numeric
