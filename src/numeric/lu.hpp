// Dense LU factorization with and without pivoting.
//
// The no-pivot variant mirrors MAGMA's zgesv_nopiv_gpu, the kernel the paper
// identifies as SplitSolve's bottleneck (Section 5E); the partial-pivot
// variant is the robust default used by FEAST contour solves and baselines.
//
// The factorization is right-looking and blocked: panels are factored
// unblocked, then the trailing submatrix is updated with the packed GEMM
// kernel, so the O(n^3) work runs at GEMM speed.  FLOPs are accounted
// analytically — (8/3) n^3 for the factorization, 8 n^2 nrhs per solve —
// and the internal GEMM calls are non-counting, so perf::lu_flops /
// perf::lu_solve_flops match the instrumented counter exactly with no
// double counting from the trailing updates.
#pragma once

#include <vector>

#include "numeric/matrix.hpp"

namespace omenx::numeric {

enum class Pivoting { kPartial, kNone };

/// In-place LU factorization of a square complex matrix with associated
/// triangular solves.  Factorization cost ~ (8/3) n^3 real flops.
class LUFactor {
 public:
  /// Factor `a`.  Throws std::runtime_error on exact singularity.
  /// `panel` is the blocking width: 0 picks the tuned default, 1 forces the
  /// classic unblocked factorization (reference path for tests).
  explicit LUFactor(CMatrix a, Pivoting pivoting = Pivoting::kPartial,
                    idx panel = 0);

  /// Solve A X = B for X (B may have many columns).
  CMatrix solve(const CMatrix& b) const;

  /// Solve X A = B for X, using the identity X = (A^T \ B^T)^T.
  CMatrix solve_left(const CMatrix& b) const;

  /// Explicit inverse (used only for small matrices, e.g. SMW's R block).
  CMatrix inverse() const;

  /// log|det(A)| — handy for sanity checks on conditioning.
  double log_abs_det() const { return log_abs_det_; }

  idx dim() const { return lu_.rows(); }

  /// Row-pivot sequence (LAPACK-style: row k was swapped with pivots()[k]).
  const pool_vector<idx>& pivots() const { return piv_; }

 private:
  CMatrix lu_;
  pool_vector<idx> piv_;
  double log_abs_det_ = 0.0;
};

/// One-shot convenience: solve A X = B.
CMatrix solve(const CMatrix& a, const CMatrix& b,
              Pivoting pivoting = Pivoting::kPartial);

/// One-shot convenience: A^{-1}.
CMatrix inverse(const CMatrix& a, Pivoting pivoting = Pivoting::kPartial);

}  // namespace omenx::numeric
