#include "numeric/qr.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/flops.hpp"

namespace omenx::numeric {

QRResult qr_decompose(const CMatrix& a) {
  const idx m = a.rows(), n = a.cols();
  if (m < n) throw std::invalid_argument("qr_decompose: requires m >= n");
  CMatrix r = a;
  // Accumulate Q by applying the reflectors to an identity afterwards; store
  // the Householder vectors in-place below the diagonal plus a tau array.
  std::vector<std::vector<cplx>> vs;
  vs.reserve(static_cast<std::size_t>(n));
  FlopCounter::add(static_cast<std::uint64_t>(16.0 / 3.0 * n * n * (3 * m - n)));

  for (idx k = 0; k < n; ++k) {
    // Build Householder vector for column k, rows k..m-1.
    double norm_x = 0.0;
    for (idx i = k; i < m; ++i) norm_x += std::norm(r(i, k));
    norm_x = std::sqrt(norm_x);
    std::vector<cplx> v(static_cast<std::size_t>(m - k), cplx{0.0});
    if (norm_x > 0.0) {
      const cplx x0 = r(k, k);
      const double ax0 = std::abs(x0);
      const cplx phase = ax0 > 0.0 ? x0 / ax0 : cplx{1.0};
      const cplx alpha = -phase * norm_x;
      // v = x - alpha*e1, normalized.
      for (idx i = k; i < m; ++i) v[static_cast<std::size_t>(i - k)] = r(i, k);
      v[0] -= alpha;
      double nv = 0.0;
      for (const auto& vi : v) nv += std::norm(vi);
      nv = std::sqrt(nv);
      if (nv > 0.0) {
        for (auto& vi : v) vi /= nv;
        // Apply reflector H = I - 2 v v^H to trailing columns of R.
        for (idx j = k; j < n; ++j) {
          cplx dot{0.0};
          for (idx i = k; i < m; ++i)
            dot += std::conj(v[static_cast<std::size_t>(i - k)]) * r(i, j);
          dot *= 2.0;
          for (idx i = k; i < m; ++i)
            r(i, j) -= dot * v[static_cast<std::size_t>(i - k)];
        }
      }
    }
    vs.push_back(std::move(v));
  }

  // Form the thin Q by applying reflectors in reverse to the first n columns
  // of the identity.
  CMatrix q(m, n);
  for (idx j = 0; j < n; ++j) q(j, j) = cplx{1.0};
  for (idx k = n - 1; k >= 0; --k) {
    const auto& v = vs[static_cast<std::size_t>(k)];
    for (idx j = 0; j < n; ++j) {
      cplx dot{0.0};
      for (idx i = k; i < m; ++i)
        dot += std::conj(v[static_cast<std::size_t>(i - k)]) * q(i, j);
      dot *= 2.0;
      for (idx i = k; i < m; ++i)
        q(i, j) -= dot * v[static_cast<std::size_t>(i - k)];
    }
  }

  // Zero the strict lower triangle of R (numerical dust from reflections).
  CMatrix r_out(n, n);
  for (idx i = 0; i < n; ++i)
    for (idx j = i; j < n; ++j) r_out(i, j) = r(i, j);
  return {std::move(q), std::move(r_out)};
}

CMatrix orthonormalize(const CMatrix& a, double rank_tol) {
  QRResult qr = qr_decompose(a);
  double max_diag = 0.0;
  for (idx i = 0; i < qr.r.rows(); ++i)
    max_diag = std::max(max_diag, std::abs(qr.r(i, i)));
  if (max_diag == 0.0) return CMatrix(a.rows(), 0);
  idx rank = 0;
  for (idx i = 0; i < qr.r.rows(); ++i)
    if (std::abs(qr.r(i, i)) > rank_tol * max_diag) ++rank;
  // Columns of Q with large R diagonal form the retained basis.  With
  // column-pivot-free QR the significant columns are not necessarily the
  // leading ones, so gather explicitly.
  CMatrix out(a.rows(), rank);
  idx c = 0;
  for (idx j = 0; j < qr.r.cols(); ++j) {
    if (std::abs(qr.r(j, j)) > rank_tol * max_diag) {
      for (idx i = 0; i < a.rows(); ++i) out(i, c) = qr.q(i, j);
      ++c;
    }
  }
  return out;
}

}  // namespace omenx::numeric
