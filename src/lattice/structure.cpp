#include "lattice/structure.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace omenx::lattice {

int orbitals_per_atom(Species s) {
  switch (s) {
    case Species::kSi:
      return 12;  // 3SP: 3 x s + 3 x (px, py, pz)
    case Species::kO:
      return 4;  // double-zeta-like reduced set: s + p
    case Species::kSn:
      return 4;
    case Species::kLi:
      return 1;  // single s
  }
  return 0;
}

idx Structure::orbitals_per_cell() const {
  idx n = 0;
  for (const auto& a : cell_atoms) n += orbitals_per_atom(a.species);
  return n;
}

namespace {

// The 8 atoms of the conventional diamond cubic cell, in units of a0.
constexpr std::array<Vec3, 8> kDiamondBasis = {{
    {0.00, 0.00, 0.00},
    {0.00, 0.50, 0.50},
    {0.50, 0.00, 0.50},
    {0.50, 0.50, 0.00},
    {0.25, 0.25, 0.25},
    {0.25, 0.75, 0.75},
    {0.75, 0.25, 0.75},
    {0.75, 0.75, 0.25},
}};

}  // namespace

Structure make_nanowire(double diameter_nm, idx num_cells) {
  if (diameter_nm <= 0.0 || num_cells <= 0)
    throw std::invalid_argument("make_nanowire: invalid geometry");
  const double a0 = kSiLatticeConstant;
  const double radius = diameter_nm / 2.0;
  // Cross-section spans enough conventional cells to cover the circle.
  const idx span = static_cast<idx>(std::ceil(diameter_nm / a0)) + 1;
  Structure s;
  s.cell_length = a0;
  s.num_cells = num_cells;
  s.periodicity = Periodicity::kNone;
  s.name = "Si GAA nanowire d=" + std::to_string(diameter_nm) + " nm";
  for (idx cy = -span; cy <= span; ++cy) {
    for (idx cz = -span; cz <= span; ++cz) {
      for (const auto& b : kDiamondBasis) {
        const double y = (static_cast<double>(cy) + b[1]) * a0;
        const double z = (static_cast<double>(cz) + b[2]) * a0;
        if (y * y + z * z <= radius * radius)
          s.cell_atoms.push_back({Species::kSi, {b[0] * a0, y, z}});
      }
    }
  }
  if (s.cell_atoms.empty())
    throw std::invalid_argument("make_nanowire: diameter too small");
  // Deterministic ordering: sort by (x, y, z) for reproducible matrices.
  std::sort(s.cell_atoms.begin(), s.cell_atoms.end(),
            [](const Atom& a, const Atom& b) { return a.position < b.position; });
  return s;
}

Structure make_utb(double thickness_nm, idx num_cells) {
  if (thickness_nm <= 0.0 || num_cells <= 0)
    throw std::invalid_argument("make_utb: invalid geometry");
  const double a0 = kSiLatticeConstant;
  const idx span = static_cast<idx>(std::ceil(thickness_nm / a0)) + 1;
  Structure s;
  s.cell_length = a0;
  s.num_cells = num_cells;
  s.periodicity = Periodicity::kZ;
  s.z_period = a0;
  s.name = "Si UTB t_body=" + std::to_string(thickness_nm) + " nm";
  const double half = thickness_nm / 2.0;
  for (idx cy = -span; cy <= span; ++cy) {
    for (const auto& b : kDiamondBasis) {
      const double y = (static_cast<double>(cy) + b[1]) * a0;
      // One periodic z cell: keep z within [0, a0).
      if (y >= -half && y < half)
        s.cell_atoms.push_back({Species::kSi, {b[0] * a0, y, b[2] * a0}});
    }
  }
  if (s.cell_atoms.empty())
    throw std::invalid_argument("make_utb: thickness too small");
  std::sort(s.cell_atoms.begin(), s.cell_atoms.end(),
            [](const Atom& a, const Atom& b) { return a.position < b.position; });
  return s;
}

double volume_expansion(double capacity_mah_g) {
  if (capacity_mah_g < 0.0)
    throw std::invalid_argument("volume_expansion: negative capacity");
  // Two-regime model: intercalation into SnO up to ~300 mAh/g with modest
  // expansion, then Li-Sn alloying with steeper slope, saturating toward the
  // measured ~140% at 1000 mAh/g (Ebner et al., Science 2013 / Pedersen &
  // Luisier, ACS AMI 2014).
  const double c = capacity_mah_g;
  const double intercalation = 0.25 * std::min(c, 300.0) / 300.0;
  const double alloying = c > 300.0 ? 1.15 * (1.0 - std::exp(-(c - 300.0) / 350.0))
                                    : 0.0;
  return intercalation + alloying;
}

Structure make_sno_anode(idx num_cells, idx li_cells, double capacity_mah_g) {
  if (num_cells <= 0 || li_cells < 0 || li_cells > num_cells)
    throw std::invalid_argument("make_sno_anode: invalid cell counts");
  // Litharge-like SnO stacked along x; expanded isotropically with
  // lithiation.  The unit cell hosts 2 Sn + 2 O; lithiated cells add Li.
  const double expand = std::cbrt(1.0 + volume_expansion(capacity_mah_g));
  const double a = 0.38 * expand;  // nm, SnO litharge a-axis (scaled)
  Structure s;
  s.cell_length = a;
  s.num_cells = num_cells;
  s.periodicity = Periodicity::kNone;
  s.name = "lithiated SnO anode C=" + std::to_string(capacity_mah_g) + " mAh/g";
  s.cell_atoms = {
      {Species::kSn, {0.0, 0.0, 0.0}},
      {Species::kSn, {0.5 * a, 0.5 * a, 0.0}},
      {Species::kO, {0.25 * a, 0.25 * a, 0.24 * a}},
      {Species::kO, {0.75 * a, 0.75 * a, -0.24 * a}},
  };
  // Li occupancy is a property of the *device* (middle cells); since the
  // transport cell must be uniform for the leads, Li atoms are added to the
  // cell and the middle-region flag is handled by the Hamiltonian builder
  // through the potential.  For the toy model we add Li when any cell is
  // lithiated and weight its coupling by capacity.
  if (li_cells > 0 && capacity_mah_g > 0.0)
    s.cell_atoms.push_back({Species::kLi, {0.5 * a, 0.0, 0.5 * a}});
  return s;
}

DeviceRegions make_regions(double ls_nm, double lg_nm, double ld_nm,
                           double cell_length_nm) {
  if (cell_length_nm <= 0.0)
    throw std::invalid_argument("make_regions: bad cell length");
  auto cells = [&](double nm) {
    return std::max<idx>(1, static_cast<idx>(std::round(nm / cell_length_nm)));
  };
  return {cells(ls_nm), cells(lg_nm), cells(ld_nm)};
}

}  // namespace omenx::lattice
