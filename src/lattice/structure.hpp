// Atomistic structure generation for the devices studied in the paper:
// gate-all-around Si nanowire FETs (Fig. 1a), double-gate ultra-thin-body
// FETs (Fig. 1c), and a lithiated SnO battery-anode toy structure (Fig. 1e).
//
// Transport is along x.  A device is a periodic repetition of one unit cell
// (length `cell_length`) whose atom set is identical in every cell — the
// contacts are semi-infinite continuations of the same cell, which is what
// the open-boundary-condition machinery assumes.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "numeric/types.hpp"

namespace omenx::lattice {

using numeric::idx;

using Vec3 = std::array<double, 3>;

enum class Species : int { kSi = 0, kO = 1, kSn = 2, kLi = 3 };

/// Number of orbitals each species carries in the 3SP Gaussian basis
/// (3 s-shells + 3 p-shells = 3 + 9 = 12 for Si; reduced sets for the
/// battery species).
int orbitals_per_atom(Species s);

struct Atom {
  Species species;
  Vec3 position;  ///< nm, absolute within the device.
};

/// Periodicity of the confinement directions (paper Fig. 1): nanowires
/// confine y and z; UTB films confine y and are periodic in z.
enum class Periodicity { kNone, kZ };

/// One transport unit cell plus replication info.
struct Structure {
  std::vector<Atom> cell_atoms;  ///< atoms of one unit cell
  double cell_length = 0.0;      ///< nm along x
  idx num_cells = 0;             ///< device length in cells
  Periodicity periodicity = Periodicity::kNone;
  double z_period = 0.0;  ///< nm, only meaningful when periodic in z
  std::string name;

  idx atoms_per_cell() const { return static_cast<idx>(cell_atoms.size()); }
  idx total_atoms() const { return atoms_per_cell() * num_cells; }

  /// Sum of orbitals over one cell (the block size of H/S before folding).
  idx orbitals_per_cell() const;

  /// Total Hamiltonian dimension N_SS = total atoms x orbitals.
  idx total_orbitals() const { return orbitals_per_cell() * num_cells; }
};

/// Si diamond lattice constant (nm).
inline constexpr double kSiLatticeConstant = 0.5431;

/// Gate-all-around circular nanowire along <100>: diameter d (nm), length
/// expressed in unit cells.  Atoms outside the circular cross-section are
/// discarded.
Structure make_nanowire(double diameter_nm, idx num_cells);

/// Ultra-thin-body film: thickness t_body (nm) in y, periodic in z with one
/// lattice constant period.
Structure make_utb(double thickness_nm, idx num_cells);

/// Toy lithiated SnO anode: alternating Sn/O planes with Li intercalated in
/// the middle `li_cells` cells.  `capacity_mah_g` controls the Li fraction
/// (Fig. 1e's x-axis); it also expands the lattice via `volume_expansion`.
Structure make_sno_anode(idx num_cells, idx li_cells, double capacity_mah_g);

/// Relative volume expansion of lithiated SnO vs. capacity, the quantity
/// plotted in Fig. 1(e).  Simple two-regime intercalation/alloying model
/// calibrated to the paper's endpoints (~+140% at 1000 mAh/g).
double volume_expansion(double capacity_mah_g);

/// Device bias regions for FET structures (Fig. 1a/1c): source / gate /
/// drain extents along x in cells, derived from nm lengths.
struct DeviceRegions {
  idx source_cells = 0;
  idx gate_cells = 0;
  idx drain_cells = 0;
  idx total() const { return source_cells + gate_cells + drain_cells; }
};

DeviceRegions make_regions(double ls_nm, double lg_nm, double ld_nm,
                           double cell_length_nm);

}  // namespace omenx::lattice
