#include "parallel/comm.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

namespace omenx::parallel {

namespace {
// Reserved tag spaces for collectives, far above any user tag.
constexpr std::int64_t kBcastTagBase = 1'000'000'000'000LL;
constexpr std::int64_t kReduceTagBase = 2'000'000'000'000LL;
constexpr std::int64_t kReduceResultTagBase = 3'000'000'000'000LL;
constexpr std::int64_t kGatherTagBase = 4'000'000'000'000LL;
}  // namespace

namespace {

// Per-communicator, per-rank collective sequence number.  Each rank only
// touches its own slot, so no locking is required.
std::uint64_t next_collective_seq(detail::CommState& st, int rank) {
  return st.collective_seq[static_cast<std::size_t>(rank)]++;
}

// One wire format for every CMatrix transfer (bcast, send_matrix,
// recv_matrix): {rows, cols, re0, im0, re1, im1, ...}.
std::vector<double> pack_matrix(const numeric::CMatrix& m) {
  std::vector<double> buf;
  buf.reserve(static_cast<std::size_t>(2 + 2 * m.size()));
  buf.push_back(static_cast<double>(m.rows()));
  buf.push_back(static_cast<double>(m.cols()));
  for (numeric::idx i = 0; i < m.size(); ++i) {
    buf.push_back(m.data()[i].real());
    buf.push_back(m.data()[i].imag());
  }
  return buf;
}

void unpack_matrix(const std::vector<double>& buf, numeric::CMatrix& m) {
  if (buf.size() < 2)
    throw std::runtime_error("matrix transfer: truncated payload");
  const auto rows = static_cast<numeric::idx>(buf[0]);
  const auto cols = static_cast<numeric::idx>(buf[1]);
  m.resize_uninit(rows, cols);
  if (buf.size() != static_cast<std::size_t>(2 + 2 * m.size()))
    throw std::runtime_error("matrix transfer: payload/shape mismatch");
  for (numeric::idx i = 0; i < m.size(); ++i)
    m.data()[i] = numeric::cplx(buf[static_cast<std::size_t>(2 + 2 * i)],
                                buf[static_cast<std::size_t>(3 + 2 * i)]);
}

void mail_send(detail::CommState& st, int src, int dst, std::int64_t tag,
               std::vector<double> data) {
  {
    std::lock_guard lock(st.mail_mutex);
    st.mail[{src, dst, static_cast<int>(tag % 1'000'000'000LL)}]
        .push_back(std::move(data));
    // NOTE: tags are folded into the int key space; collective bases are
    // chosen so folded values cannot collide with user tags (< 10^6 assumed,
    // enforced in Comm::send).
  }
  st.mail_cv.notify_all();
}

std::vector<double> mail_recv(detail::CommState& st, int src, int dst,
                              std::int64_t tag) {
  std::unique_lock lock(st.mail_mutex);
  const auto key = std::make_tuple(src, dst,
                                   static_cast<int>(tag % 1'000'000'000LL));
  st.mail_cv.wait(lock, [&] {
    auto it = st.mail.find(key);
    return it != st.mail.end() && !it->second.empty();
  });
  auto it = st.mail.find(key);
  std::vector<double> out = std::move(it->second.front());
  it->second.erase(it->second.begin());
  if (it->second.empty()) st.mail.erase(it);
  return out;
}

// Locate a pending message matching (src | any, dst, tag).  The mail map is
// ordered by (src, dst, tag), so the first hit is the lowest sending rank.
// Caller holds mail_mutex.
auto mail_find(detail::CommState& st, int src, int dst, int folded_tag)
    -> decltype(st.mail.begin()) {
  if (src != Comm::kAnySource)
    return st.mail.find({src, dst, folded_tag});
  for (auto it = st.mail.begin(); it != st.mail.end(); ++it) {
    const auto& [s, d, t] = it->first;
    if (d == dst && t == folded_tag && !it->second.empty()) return it;
  }
  return st.mail.end();
}

std::vector<double> mail_recv_status(detail::CommState& st, int src, int dst,
                                     int tag, Comm::Status& status) {
  std::unique_lock lock(st.mail_mutex);
  auto it = st.mail.end();
  st.mail_cv.wait(lock, [&] {
    it = mail_find(st, src, dst, tag);
    return it != st.mail.end() && !it->second.empty();
  });
  status.source = std::get<0>(it->first);
  status.tag = std::get<2>(it->first);
  status.count = it->second.front().size();
  std::vector<double> out = std::move(it->second.front());
  it->second.erase(it->second.begin());
  if (it->second.empty()) st.mail.erase(it);
  return out;
}

std::int64_t fold_collective_tag(std::int64_t base, std::uint64_t seq) {
  // Distinct bases land in distinct hundred-million bands after folding.
  return base + 100'000'000LL *
                    ((base / 1'000'000'000'000LL)) +
         static_cast<std::int64_t>(seq % 90'000'000ULL) + 1'000'000LL;
}

}  // namespace

void Comm::barrier() {
  auto& st = *state_;
  std::unique_lock lock(st.barrier_mutex);
  const std::uint64_t gen = st.barrier_generation;
  if (++st.barrier_count == st.size) {
    st.barrier_count = 0;
    ++st.barrier_generation;
    st.barrier_cv.notify_all();
  } else {
    st.barrier_cv.wait(lock, [&] { return st.barrier_generation != gen; });
  }
}

void Comm::bcast(std::vector<double>& data, int root) {
  auto& st = *state_;
  if (root < 0 || root >= st.size)
    throw std::invalid_argument("bcast: root out of range");
  if (st.size == 1) return;
  const std::uint64_t seq =
      next_collective_seq(st, rank_);
  const std::int64_t tag = fold_collective_tag(kBcastTagBase, seq);
  if (rank_ == root) {
    for (int dst = 0; dst < st.size; ++dst)
      if (dst != root) mail_send(st, root, dst, tag, data);
  } else {
    data = mail_recv(st, root, rank_, tag);
  }
}

void Comm::bcast(numeric::CMatrix& m, int root) {
  std::vector<double> buf;
  if (rank_ == root) buf = pack_matrix(m);
  bcast(buf, root);
  if (rank_ != root) unpack_matrix(buf, m);
}

void Comm::allreduce(std::vector<double>& data, ReduceOp op) {
  auto& st = *state_;
  if (st.size == 1) return;
  const std::uint64_t seq =
      next_collective_seq(st, rank_);
  const std::int64_t up_tag = fold_collective_tag(kReduceTagBase, seq);
  const std::int64_t down_tag = fold_collective_tag(kReduceResultTagBase, seq);
  if (rank_ == 0) {
    std::vector<double> acc = data;
    for (int src = 1; src < st.size; ++src) {
      std::vector<double> incoming = mail_recv(st, src, 0, up_tag);
      if (incoming.size() != acc.size())
        throw std::runtime_error("allreduce: mismatched buffer sizes");
      for (std::size_t i = 0; i < acc.size(); ++i) {
        switch (op) {
          case ReduceOp::kSum:
            acc[i] += incoming[i];
            break;
          case ReduceOp::kMax:
            acc[i] = std::max(acc[i], incoming[i]);
            break;
          case ReduceOp::kMin:
            acc[i] = std::min(acc[i], incoming[i]);
            break;
        }
      }
    }
    for (int dst = 1; dst < st.size; ++dst) mail_send(st, 0, dst, down_tag, acc);
    data = std::move(acc);
  } else {
    mail_send(st, rank_, 0, up_tag, data);
    data = mail_recv(st, 0, rank_, down_tag);
  }
}

double Comm::allreduce(double value, ReduceOp op) {
  std::vector<double> buf{value};
  allreduce(buf, op);
  return buf[0];
}

void Comm::send(const std::vector<double>& data, int dst, int tag) {
  if (tag < 0 || tag >= 1'000'000)
    throw std::invalid_argument("send: user tags must be in [0, 1e6)");
  if (dst < 0 || dst >= state_->size)
    throw std::invalid_argument("send: destination out of range");
  mail_send(*state_, rank_, dst, tag, data);
}

std::vector<double> Comm::recv(int src, int tag) {
  if (tag < 0 || tag >= 1'000'000)
    throw std::invalid_argument("recv: user tags must be in [0, 1e6)");
  if (src < 0 || src >= state_->size)
    throw std::invalid_argument("recv: source out of range");
  return mail_recv(*state_, src, rank_, tag);
}

namespace {

void check_recv_args(int src, int tag, int size, const char* who) {
  if (tag < 0 || tag >= 1'000'000)
    throw std::invalid_argument(std::string(who) +
                                ": user tags must be in [0, 1e6)");
  if (src != Comm::kAnySource && (src < 0 || src >= size))
    throw std::invalid_argument(std::string(who) + ": source out of range");
}

}  // namespace

std::vector<double> Comm::recv(int src, int tag, Status& status) {
  check_recv_args(src, tag, state_->size, "recv");
  return mail_recv_status(*state_, src, rank_, tag, status);
}

Comm::Status Comm::probe(int src, int tag) {
  check_recv_args(src, tag, state_->size, "probe");
  auto& st = *state_;
  std::unique_lock lock(st.mail_mutex);
  auto it = st.mail.end();
  st.mail_cv.wait(lock, [&] {
    it = mail_find(st, src, rank_, tag);
    return it != st.mail.end() && !it->second.empty();
  });
  Status out;
  out.source = std::get<0>(it->first);
  out.tag = std::get<2>(it->first);
  out.count = it->second.front().size();
  return out;
}

std::optional<Comm::Status> Comm::iprobe(int src, int tag) {
  check_recv_args(src, tag, state_->size, "iprobe");
  auto& st = *state_;
  std::lock_guard lock(st.mail_mutex);
  auto it = mail_find(st, src, rank_, tag);
  if (it == st.mail.end() || it->second.empty()) return std::nullopt;
  Status out;
  out.source = std::get<0>(it->first);
  out.tag = std::get<2>(it->first);
  out.count = it->second.front().size();
  return out;
}

void Comm::reduce(std::vector<double>& data, ReduceOp op, int root) {
  auto& st = *state_;
  if (root < 0 || root >= st.size)
    throw std::invalid_argument("reduce: root out of range");
  if (st.size == 1) return;
  const std::uint64_t seq = next_collective_seq(st, rank_);
  const std::int64_t tag = fold_collective_tag(kReduceTagBase, seq);
  if (rank_ != root) {
    mail_send(st, rank_, root, tag, data);
    return;
  }
  std::vector<double> acc;
  for (int r = 0; r < st.size; ++r) {
    std::vector<double> part =
        r == root ? data : mail_recv(st, r, root, tag);
    if (acc.empty() && r == 0) {
      acc = std::move(part);
      continue;
    }
    if (part.size() != acc.size())
      throw std::runtime_error("reduce: mismatched buffer sizes");
    for (std::size_t i = 0; i < acc.size(); ++i) {
      switch (op) {
        case ReduceOp::kSum:
          acc[i] += part[i];
          break;
        case ReduceOp::kMax:
          acc[i] = std::max(acc[i], part[i]);
          break;
        case ReduceOp::kMin:
          acc[i] = std::min(acc[i], part[i]);
          break;
      }
    }
  }
  data = std::move(acc);
}

std::vector<double> Comm::gatherv(const std::vector<double>& local, int root,
                                  std::vector<std::size_t>* counts) {
  auto& st = *state_;
  if (root < 0 || root >= st.size)
    throw std::invalid_argument("gatherv: root out of range");
  const std::uint64_t seq = next_collective_seq(st, rank_);
  const std::int64_t tag = fold_collective_tag(kGatherTagBase, seq);
  if (rank_ != root) {
    mail_send(st, rank_, root, tag, local);
    return {};
  }
  std::vector<double> out;
  if (counts != nullptr) counts->assign(static_cast<std::size_t>(st.size), 0);
  for (int r = 0; r < st.size; ++r) {
    const std::vector<double>& part =
        r == root ? local : mail_recv(st, r, root, tag);
    if (counts != nullptr)
      (*counts)[static_cast<std::size_t>(r)] = part.size();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

void Comm::send_matrix(const numeric::CMatrix& m, int dst, int tag) {
  send(pack_matrix(m), dst, tag);
}

numeric::CMatrix Comm::recv_matrix(int src, int tag, Status* status) {
  Status st;
  const std::vector<double> buf = recv(src, tag, st);
  numeric::CMatrix m;
  unpack_matrix(buf, m);
  if (status != nullptr) *status = st;
  return m;
}

Comm Comm::split(int color, int key) {
  auto& st = *state_;
  std::unique_lock lock(st.split_mutex);
  // Wait for any previous round to fully drain before depositing.
  st.split_cv.wait(lock, [&] { return st.split_count < st.size; });
  if (st.split_count == 0) {
    st.split_keys.assign(static_cast<std::size_t>(st.size), {0, 0});
    st.split_children.clear();
    st.split_members.clear();
  }
  st.split_keys[static_cast<std::size_t>(rank_)] = {color, key};
  const std::uint64_t gen = st.split_generation;
  ++st.split_count;
  if (st.split_count == st.size) {
    // Group ranks by color, order by (key, rank).
    std::map<int, std::vector<std::pair<int, int>>> groups;  // color->(key,rank)
    for (int r = 0; r < st.size; ++r) {
      const auto [c, k] = st.split_keys[static_cast<std::size_t>(r)];
      groups[c].push_back({k, r});
    }
    for (auto& [c, members] : groups) {
      std::sort(members.begin(), members.end());
      auto child = std::make_shared<detail::CommState>(
          static_cast<int>(members.size()));
      st.split_children[c] = std::move(child);
      std::vector<int> order;
      order.reserve(members.size());
      for (auto& [k, r] : members) order.push_back(r);
      st.split_members[c] = std::move(order);
    }
    st.split_consumed = 0;
    ++st.split_generation;
    st.split_cv.notify_all();
  } else {
    st.split_cv.wait(lock, [&] { return st.split_generation != gen; });
  }
  auto child = st.split_children.at(color);
  const auto& members = st.split_members.at(color);
  const int new_rank = static_cast<int>(
      std::find(members.begin(), members.end(), rank_) - members.begin());
  if (++st.split_consumed == st.size) {
    st.split_count = 0;
    st.split_cv.notify_all();
  }
  return Comm(std::move(child), new_rank);
}

CommWorld::CommWorld(int size) : size_(size) {
  if (size <= 0) throw std::invalid_argument("CommWorld: size must be > 0");
}

void CommWorld::run(const std::function<void(Comm&)>& fn) {
  auto state = std::make_shared<detail::CommState>(size_);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(size_));
  std::mutex err_mutex;
  std::exception_ptr first_error;
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(state, r);
        fn(comm);
      } catch (...) {
        std::lock_guard lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace omenx::parallel
