// Fixed-size thread pool with futures and a parallel_for helper.
//
// This is the host-side execution substrate: OMEN's momentum/energy loops
// and the emulated accelerators are all scheduled on top of it.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace omenx::parallel {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [0, n), blocking until all complete.  Work is
  /// chunked to roughly 4 chunks per worker.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Global pool shared by the whole process (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace omenx::parallel
