// Lightweight event tracing, standing in for nvprof/CUPTI timelines.
//
// Devices and solvers record named phases (P1..P4, H-to-D transfers, ...)
// so that bench/fig12_power can print the GPU-activity timeline of Fig. 12(b)
// from a real scaled-down run.
#pragma once

#include <chrono>
#include <mutex>
#include <string>
#include <vector>

namespace omenx::parallel {

struct TraceEvent {
  std::string name;     ///< Phase label, e.g. "P1", "H-to-D".
  int device_id;        ///< Emulated accelerator index, -1 for host.
  double start_s;       ///< Seconds since tracer epoch.
  double end_s;
};

/// Thread-safe append-only event log.
class Tracer {
 public:
  Tracer() : epoch_(clock::now()) {}

  /// Record an event that ran from `start` to now.
  void record(std::string name, int device_id,
              std::chrono::steady_clock::time_point start) {
    const auto now = clock::now();
    std::lock_guard lock(mutex_);
    events_.push_back({std::move(name), device_id, seconds_since(start),
                       seconds_since(now)});
  }

  std::vector<TraceEvent> events() const {
    std::lock_guard lock(mutex_);
    return events_;
  }

  void clear() {
    std::lock_guard lock(mutex_);
    events_.clear();
    epoch_ = clock::now();
  }

  /// Process-wide tracer used by the emulated devices.
  static Tracer& global();

 private:
  using clock = std::chrono::steady_clock;
  double seconds_since(clock::time_point t) const {
    return std::chrono::duration<double>(t - epoch_).count();
  }

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  clock::time_point epoch_;
};

/// RAII helper: records an event over its lifetime.
class TraceScope {
 public:
  TraceScope(std::string name, int device_id, Tracer& tracer = Tracer::global())
      : name_(std::move(name)),
        device_id_(device_id),
        tracer_(tracer),
        start_(std::chrono::steady_clock::now()) {}
  ~TraceScope() { tracer_.record(std::move(name_), device_id_, start_); }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  std::string name_;
  int device_id_;
  Tracer& tracer_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace omenx::parallel
