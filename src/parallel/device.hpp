// Emulated accelerator ("GPU") devices.
//
// The paper runs SplitSolve on NVIDIA K20X GPUs, one in-order stream per
// device, with explicit host<->device transfers whose cost overlaps with
// compute.  Here a Device is a dedicated worker thread with:
//   * an in-order kernel queue (like a CUDA stream),
//   * a device-memory allocator with a hard capacity (K20X: 6 GB),
//   * transfer accounting (H2D / D2H / D2D bytes),
//   * per-kernel trace events feeding the Fig. 12(b) timeline.
// Numeric kernels executed on a device run single-threaded, so p emulated
// devices genuinely run p-way parallel on the host.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace omenx::parallel {

class Device;

/// RAII device-memory reservation.  Releases its bytes on destruction.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(Device* device, std::uint64_t bytes);
  ~DeviceBuffer();

  DeviceBuffer(DeviceBuffer&& o) noexcept;
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  Device* device_ = nullptr;
  std::uint64_t bytes_ = 0;
};

/// One emulated accelerator.
class Device {
 public:
  /// `memory_bytes` is the device memory capacity (default: K20X 6 GB).
  explicit Device(int id, std::uint64_t memory_bytes = 6ull << 30);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  int id() const noexcept { return id_; }

  /// Enqueue a kernel on the device stream; kernels execute in order.
  /// The label is recorded in the global tracer.
  std::future<void> enqueue(std::string label, std::function<void()> kernel);

  /// Enqueue and wait.
  void run(std::string label, std::function<void()> kernel) {
    enqueue(std::move(label), std::move(kernel)).get();
  }

  /// Block until all enqueued kernels have completed.
  void synchronize();

  /// Reserve device memory; throws std::runtime_error on exhaustion
  /// (the paper's strategy: use the minimum GPU count that fits the device).
  DeviceBuffer allocate(std::uint64_t bytes);

  std::uint64_t memory_capacity() const noexcept { return capacity_; }
  std::uint64_t memory_used() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }

  /// Transfer accounting (bytes).  These only count traffic; the actual data
  /// lives in host memory throughout the emulation.
  void record_h2d(std::uint64_t bytes) { h2d_bytes_ += bytes; }
  void record_d2h(std::uint64_t bytes) { d2h_bytes_ += bytes; }
  void record_d2d(std::uint64_t bytes) { d2d_bytes_ += bytes; }
  std::uint64_t h2d_bytes() const noexcept { return h2d_bytes_.load(); }
  std::uint64_t d2h_bytes() const noexcept { return d2h_bytes_.load(); }
  std::uint64_t d2d_bytes() const noexcept { return d2d_bytes_.load(); }

  /// Total busy seconds accumulated by executed kernels.
  double busy_seconds() const noexcept { return busy_seconds_.load(); }

 private:
  friend class DeviceBuffer;
  void release(std::uint64_t bytes) noexcept {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  void worker_loop();

  int id_;
  std::uint64_t capacity_;
  std::atomic<std::uint64_t> used_{0};
  std::atomic<std::uint64_t> h2d_bytes_{0};
  std::atomic<std::uint64_t> d2h_bytes_{0};
  std::atomic<std::uint64_t> d2d_bytes_{0};
  std::atomic<double> busy_seconds_{0.0};

  struct Kernel {
    std::string label;
    std::function<void()> fn;
    std::promise<void> done;  ///< fulfilled only after the trace is recorded
  };
  std::deque<Kernel> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::size_t inflight_ = 0;
  std::condition_variable idle_cv_;
  std::thread worker_;
};

/// A pool of p emulated accelerators, as attached to one or more hybrid
/// nodes.  SplitSolve partitions work across all devices of a pool.
///
/// A pool can also be a non-owning *slice* of another pool: the execution
/// engine hands each energy group its share of the node's accelerators
/// (Fig. 9's spatial level) without duplicating device workers.
class DevicePool {
 public:
  explicit DevicePool(int num_devices, std::uint64_t memory_bytes = 6ull << 30);

  int size() const noexcept { return static_cast<int>(view_.size()); }
  Device& device(int i) { return *view_.at(static_cast<std::size_t>(i)); }

  /// Non-owning view of this pool's share for group `part` of `parts`
  /// groups: a contiguous partition when parts <= size (remainder devices
  /// go to the first groups), a single round-robin device otherwise.  The
  /// parent pool must outlive the slice.
  DevicePool slice(int part, int parts) const;

  void synchronize_all();

 private:
  DevicePool() = default;  ///< used by slice()

  std::vector<std::unique_ptr<Device>> devices_;  ///< owned (empty in views)
  std::vector<Device*> view_;                     ///< devices visible here
};

}  // namespace omenx::parallel
