#include "parallel/device.hpp"

#include <algorithm>
#include <chrono>

#include "numeric/blas.hpp"
#include "parallel/tracer.hpp"

namespace omenx::parallel {

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

DeviceBuffer::DeviceBuffer(Device* device, std::uint64_t bytes)
    : device_(device), bytes_(bytes) {}

DeviceBuffer::~DeviceBuffer() {
  if (device_ != nullptr && bytes_ > 0) device_->release(bytes_);
}

DeviceBuffer::DeviceBuffer(DeviceBuffer&& o) noexcept
    : device_(o.device_), bytes_(o.bytes_) {
  o.device_ = nullptr;
  o.bytes_ = 0;
}

DeviceBuffer& DeviceBuffer::operator=(DeviceBuffer&& o) noexcept {
  if (this != &o) {
    if (device_ != nullptr && bytes_ > 0) device_->release(bytes_);
    device_ = o.device_;
    bytes_ = o.bytes_;
    o.device_ = nullptr;
    o.bytes_ = 0;
  }
  return *this;
}

Device::Device(int id, std::uint64_t memory_bytes)
    : id_(id), capacity_(memory_bytes), worker_([this] { worker_loop(); }) {}

Device::~Device() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

std::future<void> Device::enqueue(std::string label,
                                  std::function<void()> kernel) {
  Kernel k{std::move(label), std::move(kernel), std::promise<void>{}};
  std::future<void> fut = k.done.get_future();
  {
    std::lock_guard lock(mutex_);
    if (stopping_) throw std::runtime_error("Device: enqueue after shutdown");
    queue_.push_back(std::move(k));
    ++inflight_;
  }
  cv_.notify_one();
  return fut;
}

void Device::synchronize() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return inflight_ == 0; });
}

DeviceBuffer Device::allocate(std::uint64_t bytes) {
  std::uint64_t prev = used_.load(std::memory_order_relaxed);
  for (;;) {
    if (prev + bytes > capacity_)
      throw std::runtime_error(
          "Device " + std::to_string(id_) + ": out of device memory (" +
          std::to_string(prev + bytes) + " > " + std::to_string(capacity_) +
          " bytes); use more accelerators for this structure");
    if (used_.compare_exchange_weak(prev, prev + bytes,
                                    std::memory_order_relaxed))
      break;
  }
  return DeviceBuffer(this, bytes);
}

void Device::worker_loop() {
  // Emulated GPUs execute kernels single-threaded so that p devices give
  // true p-way parallelism without oversubscribing the host.
  omenx::numeric::set_thread_parallelism(false);
  for (;;) {
    Kernel k;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;
      k = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    std::exception_ptr error;
    try {
      k.fn();
    } catch (...) {
      error = std::current_exception();
    }
    const auto end = std::chrono::steady_clock::now();
    // Trace before completing the future: a caller that waited on run()
    // must observe its kernel's event.
    Tracer::global().record(k.label, id_, start);
    if (error)
      k.done.set_exception(error);
    else
      k.done.set_value();
    const double secs = std::chrono::duration<double>(end - start).count();
    double prev = busy_seconds_.load(std::memory_order_relaxed);
    while (!busy_seconds_.compare_exchange_weak(prev, prev + secs,
                                                std::memory_order_relaxed)) {
    }
    {
      std::lock_guard lock(mutex_);
      --inflight_;
      if (inflight_ == 0) idle_cv_.notify_all();
    }
  }
}

DevicePool::DevicePool(int num_devices, std::uint64_t memory_bytes) {
  if (num_devices <= 0)
    throw std::invalid_argument("DevicePool: need at least one device");
  devices_.reserve(static_cast<std::size_t>(num_devices));
  for (int i = 0; i < num_devices; ++i)
    devices_.push_back(std::make_unique<Device>(i, memory_bytes));
  view_.reserve(devices_.size());
  for (auto& d : devices_) view_.push_back(d.get());
}

DevicePool DevicePool::slice(int part, int parts) const {
  if (parts <= 0)
    throw std::invalid_argument("DevicePool::slice: parts must be positive, got " +
                                std::to_string(parts));
  if (part < 0 || part >= parts)
    throw std::invalid_argument("DevicePool::slice: part " +
                                std::to_string(part) + " out of range [0, " +
                                std::to_string(parts) + ")");
  DevicePool out;
  const int n = static_cast<int>(view_.size());
  if (n == 0)
    throw std::invalid_argument(
        "DevicePool::slice: cannot slice an empty pool");
  if (parts >= n) {
    out.view_.push_back(view_[static_cast<std::size_t>(part % n)]);
    return out;
  }
  const int base = n / parts, rem = n % parts;
  const int begin = part * base + std::min(part, rem);
  const int count = base + (part < rem ? 1 : 0);
  for (int i = begin; i < begin + count; ++i)
    out.view_.push_back(view_[static_cast<std::size_t>(i)]);
  return out;
}

void DevicePool::synchronize_all() {
  for (auto* d : view_) d->synchronize();
}

}  // namespace omenx::parallel
