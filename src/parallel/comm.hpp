// In-process message-passing communicator, standing in for MPI.
//
// OMEN distributes work with MPI and a hierarchy of communicators
// (momentum -> energy -> spatial domain).  This header provides the same
// semantics — rank/size, barrier, broadcast, allreduce, point-to-point
// send/recv, and communicator splitting — with ranks mapped to threads of
// one process.  The distribution logic in src/omen runs unmodified against
// this interface.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "numeric/matrix.hpp"

namespace omenx::parallel {

class Comm;

namespace detail {

/// Shared state for one communicator instance.
struct CommState {
  explicit CommState(int size)
      : size(size), bcast_buffers(1),
        collective_seq(static_cast<std::size_t>(size), 0) {}

  int size;

  // Per-rank collective sequence numbers used to derive matching tags.
  // Lives inside the communicator state so a new communicator always starts
  // from zero (a process-global map keyed by CommState* would see stale
  // counters when the allocator reuses a freed state's address, making the
  // ranks disagree on tags and deadlocking the collective).  Each rank only
  // touches its own slot.
  std::vector<std::uint64_t> collective_seq;

  // Barrier (sense-reversing).
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  int barrier_count = 0;
  std::uint64_t barrier_generation = 0;

  // Broadcast: root deposits a buffer, everyone copies it out.
  std::mutex bcast_mutex;
  std::condition_variable bcast_cv;
  std::vector<std::vector<double>> bcast_buffers;
  std::uint64_t bcast_generation = 0;
  int bcast_consumed = 0;

  // Allreduce scratch.
  std::mutex reduce_mutex;
  std::condition_variable reduce_cv;
  std::vector<double> reduce_accum;
  int reduce_count = 0;
  std::uint64_t reduce_generation = 0;
  std::vector<double> reduce_result;
  int reduce_consumed = 0;

  // Point-to-point mailboxes keyed by (src, dst, tag).
  std::mutex mail_mutex;
  std::condition_variable mail_cv;
  std::map<std::tuple<int, int, int>, std::vector<std::vector<double>>> mail;

  // Split coordination.
  std::mutex split_mutex;
  std::condition_variable split_cv;
  std::uint64_t split_generation = 0;
  int split_count = 0;
  std::vector<std::pair<int, int>> split_keys;  // (color, key) per rank
  std::map<int, std::shared_ptr<CommState>> split_children;
  std::map<int, std::vector<int>> split_members;  // color -> world ranks sorted
  int split_consumed = 0;
};

}  // namespace detail

/// Handle to a communicator as seen by one rank.
class Comm {
 public:
  Comm(std::shared_ptr<detail::CommState> state, int rank)
      : state_(std::move(state)), rank_(rank) {}

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return state_->size; }

  /// Wildcard source for recv/probe/iprobe (MPI_ANY_SOURCE).
  static constexpr int kAnySource = -1;

  /// Delivery metadata of a matched message (MPI_Status).
  struct Status {
    int source = -1;
    int tag = -1;
    std::size_t count = 0;  ///< payload length in doubles
  };

  void barrier();

  /// Broadcast a double buffer from `root` to all ranks (in-place).
  void bcast(std::vector<double>& data, int root);

  /// Broadcast a complex matrix from `root`; non-root shapes are overwritten.
  void bcast(numeric::CMatrix& m, int root);

  enum class ReduceOp { kSum, kMax, kMin };

  /// Allreduce a double buffer element-wise.
  void allreduce(std::vector<double>& data, ReduceOp op);
  double allreduce(double value, ReduceOp op);

  /// Reduce to `root` only (MPI_Reduce): the combined buffer lands in `data`
  /// on the root; other ranks' buffers are left untouched.  Contributions
  /// are combined in rank order, so the result is deterministic.
  void reduce(std::vector<double>& data, ReduceOp op, int root);

  /// Gather variable-size buffers to `root` (MPI_Gatherv): returns the
  /// ranks' buffers concatenated in rank order on the root (empty
  /// elsewhere).  `counts`, when non-null, receives the per-rank element
  /// counts on the root.
  std::vector<double> gatherv(const std::vector<double>& local, int root,
                              std::vector<std::size_t>* counts = nullptr);

  /// Blocking tagged point-to-point.
  void send(const std::vector<double>& data, int dst, int tag);
  std::vector<double> recv(int src, int tag);

  /// Receive with delivery metadata; `src` may be kAnySource, in which case
  /// the lowest sending rank with a matching message is taken and reported
  /// through `status` — the work-stealing protocol identifies requesters
  /// this way instead of encoding them in magic tags.
  std::vector<double> recv(int src, int tag, Status& status);

  /// Blocking probe: wait until a message matching (src, tag) is available
  /// and return its metadata without consuming it.  `src` may be kAnySource.
  Status probe(int src, int tag);

  /// Non-blocking probe: metadata of a matching pending message, or nullopt.
  std::optional<Status> iprobe(int src, int tag);

  /// Point-to-point complex-matrix transfer (shape travels with the data).
  /// Named distinctly from `send` so brace-initialized buffers stay
  /// unambiguous.  `src` may be kAnySource.
  void send_matrix(const numeric::CMatrix& m, int dst, int tag);
  numeric::CMatrix recv_matrix(int src, int tag, Status* status = nullptr);

  /// MPI_Comm_split: ranks with the same color form a new communicator,
  /// ordered by (key, old rank).  Collective over all ranks.
  Comm split(int color, int key);

 private:
  std::shared_ptr<detail::CommState> state_;
  int rank_;
};

/// Owns the rank threads.  `run` blocks until every rank function returns.
/// Any rank throwing aborts the job and rethrows on the caller thread.
class CommWorld {
 public:
  explicit CommWorld(int size);

  int size() const noexcept { return size_; }

  /// Launch `fn(comm)` on `size` rank-threads.
  void run(const std::function<void(Comm&)>& fn);

 private:
  int size_;
};

}  // namespace omenx::parallel
