#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace omenx::parallel {

namespace {
// Set while executing inside a pool worker; nested parallel_for calls then
// run inline to avoid queue-wait deadlocks.
thread_local bool g_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0)
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    g_in_pool_worker = true;
    task();
    g_in_pool_worker = false;
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (g_in_pool_worker) {
    // Nested parallelism would deadlock on a bounded pool; run inline.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunks = std::min(n, num_threads() * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futs;
  futs.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(lo + chunk, n);
    if (lo >= hi) break;
    futs.push_back(submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  // Settle every chunk before surfacing an error: rethrowing on the first
  // get() would unwind the caller's frame (and the objects `fn` captures)
  // while later chunks are still running on pool workers.
  std::exception_ptr first;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (first == nullptr) first = std::current_exception();
    }
  }
  if (first != nullptr) std::rethrow_exception(first);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace omenx::parallel
