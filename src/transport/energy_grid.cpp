#include "transport/energy_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace omenx::transport {

std::vector<double> make_energy_grid(double emin, double emax,
                                     const EnergyGridOptions& options) {
  if (emax <= emin)
    throw std::invalid_argument("make_energy_grid: emax must exceed emin");
  if (options.min_spacing <= 0.0 || options.max_spacing < options.min_spacing)
    throw std::invalid_argument("make_energy_grid: bad spacing bounds");
  const double span = emax - emin;
  idx n = static_cast<idx>(std::ceil(span / options.max_spacing));
  n = std::max<idx>(n, 1);
  double spacing = span / static_cast<double>(n);
  if (spacing < options.min_spacing) {
    n = std::max<idx>(1, static_cast<idx>(std::floor(span / options.min_spacing)));
    spacing = span / static_cast<double>(n);
  }
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(n + 1));
  for (idx i = 0; i <= n; ++i)
    grid.push_back(emin + spacing * static_cast<double>(i));
  return grid;
}

std::vector<double> refine_energy_grid(std::vector<double> grid,
                                       const std::function<double(double)>& f,
                                       double tol,
                                       const EnergyGridOptions& options) {
  if (grid.size() < 2) return grid;
  std::sort(grid.begin(), grid.end());
  std::vector<double> fv;
  fv.reserve(grid.size());
  for (const double e : grid) fv.push_back(f(e));

  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<double> next_grid;
    std::vector<double> next_fv;
    next_grid.push_back(grid[0]);
    next_fv.push_back(fv[0]);
    for (std::size_t i = 1; i < grid.size(); ++i) {
      const double de = grid[i] - grid[i - 1];
      if (std::abs(fv[i] - fv[i - 1]) > tol && de > 2.0 * options.min_spacing) {
        const double mid = 0.5 * (grid[i] + grid[i - 1]);
        next_grid.push_back(mid);
        next_fv.push_back(f(mid));
        changed = true;
      }
      next_grid.push_back(grid[i]);
      next_fv.push_back(fv[i]);
    }
    grid = std::move(next_grid);
    fv = std::move(next_fv);
  }
  return grid;
}

}  // namespace omenx::transport
