#include "transport/energy_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "parallel/thread_pool.hpp"

namespace omenx::transport {

std::vector<double> make_energy_grid(double emin, double emax,
                                     const EnergyGridOptions& options) {
  if (emax <= emin)
    throw std::invalid_argument("make_energy_grid: emax must exceed emin");
  if (options.min_spacing <= 0.0 || options.max_spacing < options.min_spacing)
    throw std::invalid_argument("make_energy_grid: bad spacing bounds");
  const double span = emax - emin;
  idx n = static_cast<idx>(std::ceil(span / options.max_spacing));
  n = std::max<idx>(n, 1);
  double spacing = span / static_cast<double>(n);
  if (spacing < options.min_spacing) {
    n = std::max<idx>(1, static_cast<idx>(std::floor(span / options.min_spacing)));
    spacing = span / static_cast<double>(n);
  }
  std::vector<double> grid;
  grid.reserve(static_cast<std::size_t>(n + 1));
  // Pin the last point to emax itself: accumulating emin + spacing*i drifts
  // in floating point when the span does not divide evenly, and downstream
  // integration windows (band edges, Fermi windows) key on the exact bound.
  for (idx i = 0; i < n; ++i)
    grid.push_back(emin + spacing * static_cast<double>(i));
  grid.push_back(emax);
  return grid;
}

std::vector<double> trapezoid_weights(const std::vector<double>& grid) {
  const std::size_t n = grid.size();
  if (n == 0) return {};
  if (n == 1) return {1.0};
  // A non-monotonic grid would silently produce negative weights and a
  // nonsense integral; every producer in the tree (make_energy_grid,
  // refine_energy_grid) emits strictly increasing grids, so reject anything
  // else as caller error.
  for (std::size_t i = 1; i < n; ++i)
    if (!(grid[i] > grid[i - 1]))
      throw std::invalid_argument(
          "trapezoid_weights: grid must be strictly increasing");
  std::vector<double> w(n);
  w[0] = 0.5 * (grid[1] - grid[0]);
  w[n - 1] = 0.5 * (grid[n - 1] - grid[n - 2]);
  for (std::size_t i = 1; i + 1 < n; ++i)
    w[i] = 0.5 * (grid[i + 1] - grid[i - 1]);
  return w;
}

std::vector<double> refine_energy_grid(std::vector<double> grid,
                                       const BatchEvaluator& f, double tol,
                                       const EnergyGridOptions& options) {
  if (grid.size() < 2) return grid;
  std::sort(grid.begin(), grid.end());

  // Each pass evaluates a whole batch of points at once — the initial grid
  // first, then every pass's midpoints — so the expensive f(E) solves can
  // run with full parallelism instead of one at a time.
  std::vector<double> fv = f(grid);
  if (fv.size() != grid.size())
    throw std::invalid_argument("refine_energy_grid: evaluator size mismatch");
  for (;;) {
    // Collect every interval that needs a midpoint.
    std::vector<double> mids;
    std::vector<std::size_t> mid_after;  // index i: insert before grid[i]
    for (std::size_t i = 1; i < grid.size(); ++i) {
      const double de = grid[i] - grid[i - 1];
      if (std::abs(fv[i] - fv[i - 1]) > tol && de > 2.0 * options.min_spacing) {
        mids.push_back(0.5 * (grid[i] + grid[i - 1]));
        mid_after.push_back(i);
      }
    }
    if (mids.empty()) break;
    const std::vector<double> mid_values = f(mids);
    if (mid_values.size() != mids.size())
      throw std::invalid_argument(
          "refine_energy_grid: evaluator size mismatch");

    std::vector<double> next_grid;
    std::vector<double> next_fv;
    next_grid.reserve(grid.size() + mids.size());
    next_fv.reserve(grid.size() + mids.size());
    std::size_t m = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (m < mid_after.size() && mid_after[m] == i) {
        next_grid.push_back(mids[m]);
        next_fv.push_back(mid_values[m]);
        ++m;
      }
      next_grid.push_back(grid[i]);
      next_fv.push_back(fv[i]);
    }
    grid = std::move(next_grid);
    fv = std::move(next_fv);
  }
  return grid;
}

std::vector<double> refine_energy_grid(std::vector<double> grid,
                                       const std::function<double(double)>& f,
                                       double tol,
                                       const EnergyGridOptions& options,
                                       parallel::ThreadPool* threads) {
  const BatchEvaluator batch = [&](const std::vector<double>& points) {
    std::vector<double> values(points.size());
    if (threads != nullptr && points.size() > 1) {
      threads->parallel_for(points.size(),
                            [&](std::size_t i) { values[i] = f(points[i]); });
    } else {
      for (std::size_t i = 0; i < points.size(); ++i) values[i] = f(points[i]);
    }
    return values;
  };
  return refine_energy_grid(std::move(grid), batch, tol, options);
}

}  // namespace omenx::transport
