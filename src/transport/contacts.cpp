#include "transport/contacts.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

namespace omenx::transport {

idx ContactSet::resolve_block(idx i, idx nb) const {
  const idx b = contacts_.at(static_cast<std::size_t>(i)).block;
  return b == kLastBlock ? nb - 1 : b;
}

void ContactSet::validate(idx nb) const {
  if (size() < 2)
    throw std::invalid_argument("ContactSet: need >= 2 contacts, got " +
                                std::to_string(size()));
  if (size() - num_probes() < 2)
    throw std::invalid_argument(
        "ContactSet: need >= 2 lead-backed contacts (probes are pseudo-"
        "terminals, not carrier reservoirs), got " +
        std::to_string(size() - num_probes()));
  for (idx i = 0; i < size(); ++i) {
    const Contact& c = contacts_[static_cast<std::size_t>(i)];
    if (c.probe_eta < 0.0)
      throw std::invalid_argument("ContactSet: contact " + std::to_string(i) +
                                  " has negative probe_eta");
    if (c.is_probe() && c.folded != nullptr)
      throw std::invalid_argument("ContactSet: probe contact " +
                                  std::to_string(i) +
                                  " must not carry lead material");
    if (!c.is_probe() && (c.lead == nullptr || c.folded == nullptr))
      throw std::invalid_argument("ContactSet: contact " + std::to_string(i) +
                                  " has no lead material");
    const idx b = resolve_block(i, nb);
    if (b < 0 || b >= nb)
      throw std::invalid_argument(
          "ContactSet: contact " + std::to_string(i) + " attachment block " +
          std::to_string(c.block) + " out of range for " + std::to_string(nb) +
          " device blocks");
    for (idx j = 0; j < i; ++j)
      if (resolve_block(j, nb) == b)
        throw std::invalid_argument(
            "ContactSet: contacts " + std::to_string(j) + " and " +
            std::to_string(i) + " attach to the same block " +
            std::to_string(b));
  }
}

bool ContactSet::classic_pair(idx nb) const {
  if (size() != 2) return false;
  const idx b0 = resolve_block(0, nb);
  const idx b1 = resolve_block(1, nb);
  return (b0 == 0 && b1 == nb - 1) || (b1 == 0 && b0 == nb - 1);
}

idx ContactSet::left(idx nb) const { return resolve_block(0, nb) == 0 ? 0 : 1; }

idx ContactSet::right(idx nb) const {
  return resolve_block(0, nb) == 0 ? 1 : 0;
}

bool ContactSet::has_probes() const noexcept {
  for (const Contact& c : contacts_)
    if (c.is_probe()) return true;
  return false;
}

idx ContactSet::num_probes() const noexcept {
  idx n = 0;
  for (const Contact& c : contacts_)
    if (c.is_probe()) ++n;
  return n;
}

bool ContactSet::same_boundary(idx i, idx j) const {
  const Contact& a = contacts_.at(static_cast<std::size_t>(i));
  const Contact& b = contacts_.at(static_cast<std::size_t>(j));
  // Probes have no lead boundary to share: each builds its own -i*eta*I
  // locally, and none must ever alias a cached lead Boundary.
  if (a.is_probe() || b.is_probe()) return false;
  const bool same_lead =
      a.lead == b.lead ||
      (a.lead_hash != 0 && b.lead_hash != 0 && a.lead_hash == b.lead_hash);
  return same_lead && a.shift == b.shift;
}

idx ContactSet::representative(idx i) const {
  for (idx j = 0; j < i; ++j)
    if (same_boundary(j, i)) return j;
  return i;
}

ContactSet ContactSet::pair(const dft::LeadBlocks& lead,
                            const dft::FoldedLead& folded, double mu_l,
                            double mu_r, double shift,
                            std::uint64_t lead_hash) {
  std::vector<Contact> c(2);
  c[0] = Contact{&lead, &folded, mu_l, shift, 0, lead_hash};
  c[1] = Contact{&lead, &folded, mu_r, shift, kLastBlock, lead_hash};
  return ContactSet(std::move(c));
}

std::uint64_t lead_content_hash(const dft::LeadBlocks& lead) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mix_matrix = [&](const numeric::CMatrix& m) {
    mix(static_cast<std::uint64_t>(m.rows()));
    mix(static_cast<std::uint64_t>(m.cols()));
    for (idx i = 0; i < m.rows(); ++i)
      for (idx j = 0; j < m.cols(); ++j) {
        const double parts[2] = {m(i, j).real(), m(i, j).imag()};
        std::uint64_t bits;
        std::memcpy(&bits, &parts[0], sizeof(bits));
        mix(bits);
        std::memcpy(&bits, &parts[1], sizeof(bits));
        mix(bits);
      }
  };
  mix(static_cast<std::uint64_t>(lead.h.size()));
  for (const auto& m : lead.h) mix_matrix(m);
  for (const auto& m : lead.s) mix_matrix(m);
  return h;
}

}  // namespace omenx::transport
