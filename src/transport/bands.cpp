#include "transport/bands.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/blas.hpp"
#include "numeric/cholesky.hpp"
#include "numeric/eig.hpp"
#include "numeric/lu.hpp"
#include "numeric/types.hpp"

namespace omenx::transport {

using numeric::CMatrix;
using numeric::cplx;

BandStructure lead_band_structure(const dft::FoldedLead& lead, idx nk) {
  if (nk < 2) throw std::invalid_argument("lead_band_structure: nk >= 2");
  BandStructure out;
  out.k.reserve(static_cast<std::size_t>(nk));
  out.bands.reserve(static_cast<std::size_t>(nk));
  for (idx ik = 0; ik < nk; ++ik) {
    const double k =
        numeric::kPi * static_cast<double>(ik) / static_cast<double>(nk - 1);
    const cplx phase = std::exp(cplx{0.0, k});
    CMatrix hk = lead.h00;
    hk.add_block(0, 0, lead.h01, phase);
    hk.add_block(0, 0, numeric::dagger(lead.h01), std::conj(phase));
    CMatrix sk = lead.s00;
    sk.add_block(0, 0, lead.s01, phase);
    sk.add_block(0, 0, numeric::dagger(lead.s01), std::conj(phase));

    // Cholesky reduction: S = L L^H, solve L^{-1} H L^{-H}.
    const CMatrix l = numeric::cholesky(sk);
    const numeric::LUFactor llu(l);
    const CMatrix tmp = llu.solve(hk);                    // L^{-1} H
    const CMatrix reduced =
        numeric::dagger(llu.solve(numeric::dagger(tmp)));  // L^{-1} H L^{-H}
    const auto he = numeric::hermitian_eig(reduced);
    out.k.push_back(k);
    out.bands.push_back(he.values);
  }
  return out;
}

BandWindow band_window(const BandStructure& bs) {
  if (bs.bands.empty() || bs.bands.front().empty())
    throw std::invalid_argument("band_window: empty band structure");
  double emin = bs.bands[0][0], emax = bs.bands[0][0];
  for (const auto& bands : bs.bands) {
    for (const double e : bands) {
      emin = std::min(emin, e);
      emax = std::max(emax, e);
    }
  }
  return {emin, emax};
}

double lowest_band_above(const BandStructure& bs, double reference) {
  double best = reference;
  bool found = false;
  for (const auto& bands : bs.bands) {
    for (const double e : bands) {
      if (e > reference && (!found || e < best)) {
        best = e;
        found = true;
      }
    }
  }
  return best;
}

}  // namespace omenx::transport
