#include "transport/batch.hpp"

#include <cstdint>
#include <cstring>
#include <future>
#include <stdexcept>
#include <utility>

#include "numeric/backend.hpp"
#include "parallel/comm.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/tracer.hpp"

namespace omenx::transport {

using solvers::BoundaryProblem;

namespace {

// Stable device-residency id of one per-(k, E) operand: FNV-1a over the
// momentum index, the energy's bit pattern, and an operand tag.  Bit-stable
// inputs at a fixed (k, E) — lead self-energies, injection RHS blocks —
// hash to the same id every SCF iteration, which is exactly what lets them
// go device-resident once and hit thereafter.  Id 0 is reserved for
// "stream, do not cache" (see Backend::stage_operand).
std::uint64_t stable_operand_id(idx k_index, double energy,
                                std::uint64_t tag) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(k_index));
  std::uint64_t energy_bits = 0;
  std::memcpy(&energy_bits, &energy, sizeof(energy_bits));
  mix(energy_bits);
  mix(tag);
  return h == 0 ? 1 : h;
}

std::uint64_t operand_bytes(const CMatrix& m) {
  return std::uint64_t(m.rows()) * std::uint64_t(m.cols()) * sizeof(cplx);
}

}  // namespace

std::vector<EnergyPointResult> solve_energy_batch(
    BatchContext& ctx, const std::vector<BatchTask>& tasks,
    const EnergyPointOptions& options, parallel::DevicePool* pool,
    numeric::Backend& backend, int nominal_batch, BatchStats* stats) {
  std::vector<EnergyPointResult> results(tasks.size());
  if (tasks.empty()) return results;
  if (options.spatial != nullptr && options.spatial->size() > 1)
    throw std::invalid_argument(
        "solve_energy_batch: spatial groups solve cooperatively, one point "
        "at a time — batching applies to non-spatial energy groups");

  const numeric::WorkspaceScope scope(ctx.point.workspace);
  const std::size_t n = tasks.size();

  // --- Stage 1: asynchronous OBC prefetch -------------------------------
  // Every task's boundary goes to the process thread pool *before* the
  // device phase is issued, so the lead stage runs ahead of (and
  // interleaved with) Step 1 — the paper's CPU/GPU overlap at batch scope.
  // Each job uses its own strategy instance and workspace arena; the
  // BoundaryCache's first-insert-wins discipline makes concurrent misses on
  // one key converge on a single canonical Boundary.
  for (const BatchTask& task : tasks)
    if (task.dm == nullptr || task.lead == nullptr || task.folded == nullptr)
      throw std::invalid_argument("solve_energy_batch: null task operand");

  if (options.scattering.algorithm != scattering::ScatteringAlgorithm::kNone) {
    // Provider assembly can grow the terminal set beyond the classic pair,
    // and the batched two-contact arithmetic then no longer applies.
    // Degrade to per-task scalar solves — each routes through the
    // ContactSet multi-terminal path with the probes attached.  A model
    // that attaches nothing (buttiker_probe at eta <= 0) falls through to
    // the batched pipeline below, bit-identically.
    const idx nb0 = tasks[0].dm->h.num_blocks();
    const std::vector<scattering::ProbeSite> sites =
        scattering::assemble_probes(options.scattering, nb0, {0, nb0 - 1});
    if (!sites.empty()) {
      for (std::size_t i = 0; i < n; ++i) {
        EnergyPointOptions task_options = options;
        task_options.k_index = tasks[i].k_index;
        results[i] =
            solve_energy_point(ctx.point, *tasks[i].dm, *tasks[i].lead,
                               *tasks[i].folded, tasks[i].energy, task_options,
                               pool);
      }
      if (stats != nullptr) {
        BatchStats local;
        local.batches = 1;
        local.tasks = static_cast<idx>(n);
        local.batched_solve = false;
        *stats += local;
      }
      return results;
    }
  }

  auto& threads = parallel::ThreadPool::global();
  std::vector<std::future<detail::FetchedBoundary>> prefetch;
  prefetch.reserve(n);
  // Any exit between the submissions and the await must settle the jobs
  // first: they reference the caller's tasks, and a future destroyed while
  // its job runs would leave the job touching freed state.
  const auto drain_prefetch = [&prefetch]() noexcept {
    for (auto& fut : prefetch)
      if (fut.valid()) {
        try {
          fut.get();
        } catch (...) {
        }
      }
  };
  for (std::size_t i = 0; i < n; ++i) {
    const BatchTask& task = tasks[i];
    prefetch.push_back(threads.submit([&options, &task] {
      const parallel::TraceScope trace("obc_prefetch", /*device_id=*/-1);
      static thread_local numeric::Workspace prefetch_workspace;
      const numeric::WorkspaceScope ws(prefetch_workspace);
      EnergyPointOptions task_options = options;
      task_options.k_index = task.k_index;
      auto strategy = obc::make_obc_strategy(task_options.obc);
      return detail::fetch_boundary(*strategy, *task.lead, *task.folded,
                                    cplx{task.energy, 0.0}, task_options);
    }));
  }

  bool batched = false;
  bool have_injection = false;
  bool rhs_known_nonempty = false;
  idx nb = 0, sf = 0;
  solvers::Solver* solver = nullptr;
  try {
    // --- Assemble every task's A = E*S - H ------------------------------
    ctx.a.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      ctx.a[i].assign_es_minus_h(cplx{tasks[i].energy, 0.0}, tasks[i].dm->s,
                                 tasks[i].dm->h);
    nb = ctx.a[0].num_blocks();
    sf = ctx.a[0].block_size();
    for (const BlockTridiag& a : ctx.a)
      if (a.num_blocks() != nb || a.block_size() != sf)
        throw std::invalid_argument(
            "solve_energy_batch: mixed block structures in one batch");

    // --- Solver + OBC resolution ----------------------------------------
    solvers::SolverContext binding;
    binding.pool = pool;
    binding.partitions = options.partitions;
    binding.batch = std::max(1, nominal_batch);
    binding.backend = &backend;
    solver = &ctx.point.solver(options.solver, binding, nb, sf);
    obc::Strategy& obc_strategy = ctx.point.obc_strategy(options.obc);
    have_injection =
        (obc_strategy.capabilities() & obc::kProvidesInjection) != 0;
    detail::require_injection_support(obc_strategy, have_injection, options);
    batched = (solver->capabilities() & solvers::kBatchable) != 0;

    // With Caroli columns (or a self-energy-only OBC, which forces them)
    // every task has a non-empty RHS, so the whole batch can start its
    // device phase before any boundary arrives.  Otherwise the column
    // count is boundary-dependent and Step 1 waits for the prefetch.
    rhs_known_nonempty = options.want_caroli || !have_injection;

    if (batched && rhs_known_nonempty) {
      std::vector<const BlockTridiag*> systems(n);
      for (std::size_t i = 0; i < n; ++i) systems[i] = &ctx.a[i];
      const parallel::TraceScope trace("batch_device_phase",
                                       /*device_id=*/-1);
      solver->prepare_batched(systems, backend);
    }
  } catch (...) {
    drain_prefetch();
    throw;
  }

  // --- Await the boundaries ---------------------------------------------
  // A throwing fetch must not abandon its siblings: settle every future,
  // then surface the first error.
  std::vector<detail::FetchedBoundary> boundaries;
  boundaries.reserve(n);
  std::exception_ptr prefetch_error;
  for (auto& fut : prefetch) {
    try {
      boundaries.push_back(fut.get());
    } catch (...) {
      if (prefetch_error == nullptr)
        prefetch_error = std::current_exception();
      boundaries.emplace_back();
    }
  }
  if (prefetch_error != nullptr) std::rethrow_exception(prefetch_error);

  BatchStats local;
  local.batches = 1;
  local.tasks = static_cast<idx>(n);
  local.batched_solve = batched;
  local.device_batches = (batched && backend.offloads()) ? 1 : 0;
  for (const detail::FetchedBoundary& f : boundaries)
    (f.hit ? local.prefetch_hits : local.prefetch_misses) += 1;

  // --- Shapes + RHS ------------------------------------------------------
  std::vector<detail::RhsShape> shapes(n);
  std::vector<std::size_t> solvable;
  solvable.reserve(n);
  ctx.b_top.resize(n);
  ctx.b_bot.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const obc::Boundary& bnd = boundaries[i].get();
    results[i].energy = tasks[i].energy;
    results[i].num_propagating = bnd.num_incident;
    shapes[i] = detail::rhs_shape(bnd, bnd, have_injection, sf, options);
    if (shapes[i].m == 0) continue;  // nothing propagates at this energy
    detail::build_rhs(ctx.b_top[i], ctx.b_bot[i], bnd, bnd, shapes[i], sf);
    solvable.push_back(i);
  }

  // --- Stage operands for device residency ------------------------------
  // The boundary products consumed by Stage 2 — the two lead self-energies
  // and the injection RHS blocks — are bit-stable at fixed (k, E) across
  // SCF iterations (only A = E*S - H changes with the potential), so on an
  // offload backend they are staged under stable ids: iteration 1 pays the
  // H2D transfer and pins device residency, every later iteration hits.
  // The A blocks are deliberately *not* staged — their traffic is accounted
  // by the batched calls themselves and re-streams every iteration.
  if (batched && backend.offloads()) {
    for (const std::size_t i : solvable) {
      const obc::Boundary& bnd = boundaries[i].get();
      const CMatrix* operands[4] = {&bnd.sigma_l, &bnd.sigma_r, &ctx.b_top[i],
                                    &ctx.b_bot[i]};
      for (std::uint64_t tag = 0; tag < 4; ++tag) {
        const CMatrix& op = *operands[tag];
        if (op.rows() == 0 || op.cols() == 0) continue;
        const std::uint64_t id =
            stable_operand_id(tasks[i].k_index, tasks[i].energy, tag + 1);
        (backend.stage_operand(id, operand_bytes(op)) ? local.residency_hits
                                                      : local.residency_misses)
            += 1;
      }
    }
  }

  // --- Stage 2: the device phase ----------------------------------------
  std::vector<CMatrix> xs;
  if (batched) {
    std::vector<BoundaryProblem> problems;
    problems.reserve(solvable.size());
    for (const std::size_t i : solvable) {
      const obc::Boundary& bnd = boundaries[i].get();
      problems.push_back({&ctx.a[i], &bnd.sigma_l, &bnd.sigma_r,
                          &ctx.b_top[i], &ctx.b_bot[i]});
    }
    const parallel::TraceScope trace("batch_device_phase", /*device_id=*/-1);
    if (!rhs_known_nonempty && !solvable.empty()) {
      // Deferred Step 1: prepare exactly the solvable subset so the
      // prepared state matches the problem list element for element.
      std::vector<const BlockTridiag*> solvable_systems;
      solvable_systems.reserve(solvable.size());
      for (const std::size_t i : solvable)
        solvable_systems.push_back(&ctx.a[i]);
      solver->prepare_batched(solvable_systems, backend);
    }
    xs = solver->solve_boundary_batched(problems, backend);
    if (solvable.size() != n && rhs_known_nonempty) {
      // Unreachable by construction (rhs_known_nonempty => every task is
      // solvable), kept as a guard against future shape changes.
      throw std::logic_error("solve_energy_batch: prepared/solved mismatch");
    }
  } else {
    // Scalar loop: the solver instance is stateful (prepare/solve pairs),
    // so non-batchable backends execute sequentially — still behind the
    // asynchronous OBC prefetch above.
    xs.resize(solvable.size());
    for (std::size_t j = 0; j < solvable.size(); ++j) {
      const std::size_t i = solvable[j];
      const obc::Boundary& bnd = boundaries[i].get();
      solver->prepare(ctx.a[i]);
      xs[j] = solver->solve_boundary(ctx.a[i], bnd.sigma_l, bnd.sigma_r,
                                    ctx.b_top[i], ctx.b_bot[i]);
    }
  }

  // --- Stage 3: observables, one task per lane --------------------------
  backend.dispatch("batch_finalize", solvable.size(), [&](std::size_t j) {
    const std::size_t i = solvable[j];
    detail::finalize_observables(results[i], ctx.a[i], boundaries[i].get(),
                                 boundaries[i].get(), have_injection, shapes[i],
                                 xs[j], options);
  });

  if (stats != nullptr) *stats += local;
  return results;
}

}  // namespace omenx::transport
