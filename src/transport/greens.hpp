// NEGF observables from the retarded Green's function (Eq. 4 route).
//
// The paper works in the wave-function formalism for efficiency, but the
// Green's-function route remains the reference: this module computes the
// diagonal of G^R = (E S - H - Sigma^RB)^{-1} through the unified solver
// strategy layer and derives the spectral function / density of states from
// it.  Used by the Fig. 10 maps as an independent cross-check on the WF
// densities.  Any registered backend can serve the diagonal: RGF natively
// (the two-sweep recursion), SPIKE/SplitSolve through the partitioned
// diagonal with interface corrections, block LU / BCR through the
// identity-solve fallback.
#pragma once

#include <vector>

#include "blockmat/block_tridiag.hpp"
#include "numeric/matrix.hpp"
#include "solvers/solver.hpp"

namespace omenx::transport {

using blockmat::BlockTridiag;
using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

/// Orbital-resolved local density of states at one energy:
/// LDOS_i = -Im(G^R_ii) / pi, from the diagonal of the open system's
/// inverse.  `t` must already contain the boundary self-energies.  kAuto
/// resolves to the RGF recursion — for the diagonal it dominates every
/// fallback at every shape.
std::vector<double> local_density_of_states(
    const BlockTridiag& t,
    solvers::SolverAlgorithm algo = solvers::SolverAlgorithm::kAuto,
    const solvers::SolverContext& ctx = {});

/// Total DOS(E) = sum_i LDOS_i, optionally weighted by the overlap matrix
/// (non-orthogonal basis: DOS = -Im Tr[G S] / pi).
double density_of_states(
    const BlockTridiag& t, const BlockTridiag* overlap,
    solvers::SolverAlgorithm algo = solvers::SolverAlgorithm::kAuto,
    const solvers::SolverContext& ctx = {});

}  // namespace omenx::transport
