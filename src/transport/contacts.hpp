// N-terminal contact description — the refactor that removes the deepest
// assumption left from the seed: that every device has exactly two
// *identical* pristine contacts at its first and last blocks.
//
// A Contact bundles what used to be scattered across the pipeline: the lead
// material (dft::LeadBlocks + its folded supercell), the chemical potential
// mu (previously the scalar mu_l/mu_r arguments), the per-contact potential
// shift (previously the single global ObcOptions::contact_shift), and the
// attachment block index on the device diagonal (previously hardwired to
// {0, nb-1} as the sigma_l/sigma_r pair in every solver).
//
// The symmetric two-identical-contacts limit is routed through *literally*
// the same arithmetic as the pre-refactor pipeline (one boundary fetch, the
// same sigma_l/sigma_r solve), so it stays bit-identical — the parity suite
// and BENCH_contact.json gate on EXPECT_EQ, not a tolerance.
#pragma once

#include <cstdint>
#include <vector>

#include "dft/hamiltonian.hpp"
#include "numeric/matrix.hpp"

namespace omenx::transport {

using numeric::idx;

/// Sentinel for "the last device block" — resolved against the actual block
/// count at use time, so a ContactSet built before the device is assembled
/// stays valid for any length.
constexpr idx kLastBlock = -1;

/// One terminal of the device.
struct Contact {
  /// Lead material (unit-cell blocks).  Never owned; must outlive the set.
  const dft::LeadBlocks* lead = nullptr;
  /// Folded supercell blocks of the same lead.
  const dft::FoldedLead* folded = nullptr;
  /// Chemical potential (eV) — the Fermi weight of carriers this contact
  /// injects, and the mu_p of the Buettiker current sum.
  double mu = 0.0;
  /// Uniform lead potential shift (eV): H -> H + shift*S, i.e. the boundary
  /// at energy E equals the pristine lead's at E - shift.  Part of the
  /// per-contact BoundaryCache key.
  double shift = 0.0;
  /// Device block the self-energy attaches to (kLastBlock = last).  Blocks
  /// other than {0, last} are interior ("probe") attachments and require a
  /// solver advertising solvers::kMultiTerminal.
  idx block = kLastBlock;
  /// FNV-1a content hash of *lead (lead_content_hash).  0 = untracked —
  /// the cache then distinguishes leads by contact id only, which is the
  /// pre-refactor behavior for direct (non-engine) callers.
  std::uint64_t lead_hash = 0;
  /// Büttiker-probe dephasing strength (eV).  > 0 marks this contact as a
  /// phenomenological probe terminal: it carries no lead material (`lead`
  /// and `folded` stay null), its self-energy is -i*probe_eta*I on the
  /// attachment block, and it enters T_pq / Buettiker sums like any other
  /// terminal (Gamma_p = 2*probe_eta*I, zero propagating modes).  mu is the
  /// probe's chemical potential, normally tuned to zero net probe current
  /// (scattering::tune_probe_potentials).
  double probe_eta = 0.0;

  /// True when this contact is a lead-less Büttiker probe.
  bool is_probe() const noexcept { return lead == nullptr && probe_eta > 0.0; }
};

/// An ordered set of >= 2 contacts.  Index order is the terminal index p of
/// the transmission matrix T_pq and the Buettiker sum.
class ContactSet {
 public:
  ContactSet() = default;
  explicit ContactSet(std::vector<Contact> contacts)
      : contacts_(std::move(contacts)) {}

  idx size() const noexcept { return static_cast<idx>(contacts_.size()); }
  bool empty() const noexcept { return contacts_.empty(); }
  const Contact& operator[](idx i) const {
    return contacts_.at(static_cast<std::size_t>(i));
  }
  Contact& at(idx i) { return contacts_.at(static_cast<std::size_t>(i)); }
  const std::vector<Contact>& contacts() const noexcept { return contacts_; }

  /// Attachment block of contact i against an nb-block device (resolves
  /// kLastBlock).  Does not range-check; validate() does.
  idx resolve_block(idx i, idx nb) const;

  /// Throws std::invalid_argument unless the set has >= 2 lead-backed
  /// contacts (a contact without a lead must be a probe: probe_eta > 0),
  /// in-range attachment blocks, and pairwise-distinct resolved blocks.
  /// Same discipline as the PR-7 grid validation.
  void validate(idx nb) const;

  /// True when any contact is a lead-less Büttiker probe.
  bool has_probes() const noexcept;

  /// Number of probe contacts / real (lead-backed) contacts.
  idx num_probes() const noexcept;

  /// True when the set is exactly the classic source/drain pair: two
  /// contacts attached at block 0 and the last block (either order is
  /// normalized by left()/right()).
  bool classic_pair(idx nb) const;

  /// Index of the contact attached at block 0 / the last block.  Only
  /// meaningful when classic_pair().
  idx left(idx nb) const;
  idx right(idx nb) const;

  /// True when contacts i and j share boundary data: same lead content
  /// (identical pointer, or equal nonzero hashes) and the same shift.
  /// mu may differ — it weights observables, not the boundary itself.
  bool same_boundary(idx i, idx j) const;

  /// Lowest contact index with the same boundary data as contact i — the
  /// canonical id under which this boundary is fetched and cached, so
  /// identical contacts share cache entries (the symmetric pair fetches
  /// once, under id of the left contact).
  idx representative(idx i) const;

  /// The classic symmetric pair: one lead serves both ends.
  static ContactSet pair(const dft::LeadBlocks& lead,
                         const dft::FoldedLead& folded, double mu_l,
                         double mu_r, double shift = 0.0,
                         std::uint64_t lead_hash = 0);

 private:
  std::vector<Contact> contacts_;
};

/// FNV-1a hash over a lead's block dimensions and matrix bit patterns —
/// the per-lead half of the engine's request fingerprint, reused as the
/// BoundaryKey lead_hash so dissimilar leads cache independently.
std::uint64_t lead_content_hash(const dft::LeadBlocks& lead);

}  // namespace omenx::transport
