// Batched energy-point pipeline — the paper's two-phase execution model
// (Section 5E) across *tasks* instead of within one.
//
// A batch is a bucket of queued (k, E) tasks sharing one block structure.
// The pipeline runs:
//   1. OBC prefetch: every task's boundary (BoundaryCache-disciplined) is
//      submitted to the process thread pool up front ("obc_prefetch" trace
//      spans), so the lead stage runs asynchronously ahead of —
//   2. the device phase: SplitSolve Step 1 / block-LU factorization of the
//      whole bucket issued as single batched numeric::Backend calls
//      ("batch_device_phase" trace span), then the per-task boundary
//      solves, fused through Solver::solve_boundary_batched.
//   3. Observables finalize on backend lanes, one task per lane.
// Every stage runs the same scalar arithmetic as transport::
// solve_energy_point (the shared detail:: helpers), so results are
// bit-identical to the unbatched path, task by task.
#pragma once

#include <vector>

#include "transport/transmission.hpp"

namespace omenx::numeric {
class Backend;
}  // namespace omenx::numeric

namespace omenx::transport {

/// One queued (k, E) task of a batch.  The referenced matrices must share
/// (num_blocks, block_size) across the batch and outlive the call.
struct BatchTask {
  idx k_index = 0;     ///< global momentum index (boundary-cache key)
  double energy = 0.0;
  const dft::DeviceMatrices* dm = nullptr;
  const dft::LeadBlocks* lead = nullptr;
  const dft::FoldedLead* folded = nullptr;
};

/// Per-call accounting, accumulated into the engine's sweep counters.
struct BatchStats {
  idx batches = 0;          ///< batched calls issued (1 per solve_energy_batch)
  idx tasks = 0;            ///< tasks executed through batches
  idx prefetch_hits = 0;    ///< boundary-cache hits during OBC prefetch
  idx prefetch_misses = 0;  ///< boundary-cache misses (or no cache bound)
  idx device_batches = 0;   ///< batches whose device phase ran on an
                            ///< offload backend (Backend::offloads())
  idx residency_hits = 0;   ///< staged operands already device-resident
  idx residency_misses = 0;  ///< staged operands that paid an H2D transfer
  bool batched_solve = false;  ///< false = solver lacked kBatchable, scalar loop

  void operator+=(const BatchStats& other) {
    batches += other.batches;
    tasks += other.tasks;
    prefetch_hits += other.prefetch_hits;
    prefetch_misses += other.prefetch_misses;
    device_batches += other.device_batches;
    residency_hits += other.residency_hits;
    residency_misses += other.residency_misses;
    batched_solve = batched_solve || other.batched_solve;
  }
};

/// Reusable state of a batch consumer (one per energy-group leader): the
/// workspace arena, the per-task assembled systems, and the cached solver
/// instance (inside the EnergyPointContext).
struct BatchContext {
  EnergyPointContext point;
  std::vector<blockmat::BlockTridiag> a;  ///< per-task E*S - H
  std::vector<CMatrix> b_top, b_bot;      ///< per-task sparse RHS blocks
};

/// Solve a bucket of same-shape tasks through the batched pipeline.
/// `nominal_batch` feeds SolverContext::batch for kAuto resolution — pass a
/// rank-invariant value (the engine's configured max_batch), never the
/// actual bucket fill, so every rank resolves the same backend.  When the
/// resolved solver lacks kBatchable the call degrades to the scalar loop
/// (still with asynchronous OBC prefetch when a cache is bound).  Results
/// are in task order.
std::vector<EnergyPointResult> solve_energy_batch(
    BatchContext& ctx, const std::vector<BatchTask>& tasks,
    const EnergyPointOptions& options, parallel::DevicePool* pool,
    numeric::Backend& backend, int nominal_batch, BatchStats* stats = nullptr);

}  // namespace omenx::transport
