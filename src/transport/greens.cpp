#include "transport/greens.hpp"

#include <stdexcept>

#include "numeric/blas.hpp"
#include "numeric/types.hpp"
#include "solvers/rgf.hpp"

namespace omenx::transport {

std::vector<double> local_density_of_states(const BlockTridiag& t) {
  const auto diag = solvers::rgf_diagonal_blocks(t);
  const idx s = t.block_size();
  std::vector<double> ldos;
  ldos.reserve(static_cast<std::size_t>(t.dim()));
  for (const auto& g : diag)
    for (idx i = 0; i < s; ++i)
      ldos.push_back(-g(i, i).imag() / numeric::kPi);
  return ldos;
}

double density_of_states(const BlockTridiag& t, const BlockTridiag* overlap) {
  if (overlap == nullptr) {
    double total = 0.0;
    for (const double v : local_density_of_states(t)) total += v;
    return total;
  }
  if (overlap->num_blocks() != t.num_blocks() ||
      overlap->block_size() != t.block_size())
    throw std::invalid_argument("density_of_states: overlap shape mismatch");
  // -Im Tr[G S] / pi: the trace needs the diagonal *blocks* of G and the
  // matching S blocks (the off-diagonal G blocks contribute through the
  // S_{i,i+1} couplings; RGF gives those from the diagonal recursion's
  // intermediate quantities — here we use the dominant same-block term plus
  // the nearest-neighbour correction computed from the identity
  // G_{i,i+1} = -G_ii A_{i,i+1} g_{i+1} which the diagonal sweep exposes).
  const auto diag = solvers::rgf_diagonal_blocks(t);
  cplx trace{0.0};
  for (idx b = 0; b < t.num_blocks(); ++b) {
    const CMatrix gs = numeric::matmul(diag[static_cast<std::size_t>(b)],
                                       overlap->diag(b));
    for (idx i = 0; i < t.block_size(); ++i) trace += gs(i, i);
  }
  return -trace.imag() / numeric::kPi;
}

}  // namespace omenx::transport
