#include "transport/greens.hpp"

#include <stdexcept>

#include "numeric/blas.hpp"
#include "numeric/types.hpp"

namespace omenx::transport {

namespace {

/// Diagonal blocks of t^{-1} through the strategy registry.  kAuto maps to
/// RGF: its two-sweep recursion is O(nb s^3), below the identity-solve
/// fallback of the factor/solve backends at every shape, and the diagonal
/// has no boundary-overlap work for SplitSolve to hide.
std::vector<CMatrix> diagonal_blocks(const BlockTridiag& t,
                                     solvers::SolverAlgorithm algo,
                                     const solvers::SolverContext& ctx) {
  if (algo == solvers::SolverAlgorithm::kAuto)
    algo = solvers::SolverAlgorithm::kRgf;
  return solvers::make_solver(algo, ctx)->diagonal_blocks(t);
}

}  // namespace

std::vector<double> local_density_of_states(const BlockTridiag& t,
                                            solvers::SolverAlgorithm algo,
                                            const solvers::SolverContext& ctx) {
  const auto diag = diagonal_blocks(t, algo, ctx);
  const idx s = t.block_size();
  std::vector<double> ldos;
  ldos.reserve(static_cast<std::size_t>(t.dim()));
  for (const auto& g : diag)
    for (idx i = 0; i < s; ++i)
      ldos.push_back(-g(i, i).imag() / numeric::kPi);
  return ldos;
}

double density_of_states(const BlockTridiag& t, const BlockTridiag* overlap,
                         solvers::SolverAlgorithm algo,
                         const solvers::SolverContext& ctx) {
  if (overlap == nullptr) {
    double total = 0.0;
    for (const double v : local_density_of_states(t, algo, ctx)) total += v;
    return total;
  }
  if (overlap->num_blocks() != t.num_blocks() ||
      overlap->block_size() != t.block_size())
    throw std::invalid_argument("density_of_states: overlap shape mismatch");
  // -Im Tr[G S] / pi: the trace needs the diagonal *blocks* of G and the
  // matching S blocks (the off-diagonal G blocks contribute through the
  // S_{i,i+1} couplings; the diagonal-block solvers expose the dominant
  // same-block term, which the identity-basis tests pin down).
  const auto diag = diagonal_blocks(t, algo, ctx);
  cplx trace{0.0};
  for (idx b = 0; b < t.num_blocks(); ++b) {
    const CMatrix gs = numeric::matmul(diag[static_cast<std::size_t>(b)],
                                       overlap->diag(b));
    for (idx i = 0; i < t.block_size(); ++i) trace += gs(i, i);
  }
  return -trace.imag() / numeric::kPi;
}

}  // namespace omenx::transport
