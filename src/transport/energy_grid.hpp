// Energy grid generation.
//
// OMEN does not take the energy grid as an input: it generates it from the
// minimum and maximum allowed distance between two consecutive points
// (Fig. 11 caption), which is why the weak-scaling runs in Table II carry
// 12.9-14.1 energy points per node instead of a constant.  This module
// reproduces that behaviour: uniform base grids constrained by (dmin, dmax)
// plus adaptive refinement toward features (band edges), and the trapezoid
// quadrature weights every energy integral (charge, Landauer current)
// shares.
#pragma once

#include <functional>
#include <vector>

#include "numeric/types.hpp"

namespace omenx::parallel {
class ThreadPool;
}

namespace omenx::transport {

using numeric::idx;

struct EnergyGridOptions {
  double min_spacing = 1e-4;  ///< eV
  double max_spacing = 0.05;  ///< eV
};

/// Uniform grid over [emin, emax] whose spacing is the largest value
/// <= max_spacing that divides the interval, clamped below by min_spacing.
/// The first point is exactly emin and the last exactly emax (no floating-
/// point drift from accumulated spacing).
std::vector<double> make_energy_grid(double emin, double emax,
                                     const EnergyGridOptions& options = {});

/// Trapezoid quadrature weights of a sorted (possibly non-uniform) grid:
/// half-interval weights at the endpoints, 0.5*(de_left + de_right) in the
/// interior, so sum(w_i * f_i) is the trapezoid integral of f.  A single
/// point gets weight 1 (degenerate delta grid); a grid that is not strictly
/// increasing throws std::invalid_argument.  Shared by the charge
/// integration and the Landauer current.
std::vector<double> trapezoid_weights(const std::vector<double>& grid);

/// Batch feature evaluator: values of the indicator for a whole refinement
/// pass of energies at once.  This is the hook a distribution layer
/// (omen::Engine) plugs a (k, E) sweep into, so every pass's midpoints are
/// solved with full parallelism instead of point by point.
using BatchEvaluator =
    std::function<std::vector<double>(const std::vector<double>&)>;

/// Adaptive grid: bisect intervals where |f(e_i+1) - f(e_i)| > tol until
/// min_spacing is reached, evaluating each pass's midpoints as one batch.
std::vector<double> refine_energy_grid(std::vector<double> grid,
                                       const BatchEvaluator& f, double tol,
                                       const EnergyGridOptions& options = {});

/// Pointwise-indicator convenience wrapper: same semantics, with each batch
/// evaluated concurrently on `threads` when given (`f` must then be
/// thread-safe), serially otherwise.
std::vector<double> refine_energy_grid(std::vector<double> grid,
                                       const std::function<double(double)>& f,
                                       double tol,
                                       const EnergyGridOptions& options = {},
                                       parallel::ThreadPool* threads = nullptr);

}  // namespace omenx::transport
