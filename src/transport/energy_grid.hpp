// Energy grid generation.
//
// OMEN does not take the energy grid as an input: it generates it from the
// minimum and maximum allowed distance between two consecutive points
// (Fig. 11 caption), which is why the weak-scaling runs in Table II carry
// 12.9-14.1 energy points per node instead of a constant.  This module
// reproduces that behaviour: uniform base grids constrained by (dmin, dmax)
// plus adaptive refinement toward features (band edges).
#pragma once

#include <functional>
#include <vector>

#include "numeric/types.hpp"

namespace omenx::parallel {
class ThreadPool;
}

namespace omenx::transport {

using numeric::idx;

struct EnergyGridOptions {
  double min_spacing = 1e-4;  ///< eV
  double max_spacing = 0.05;  ///< eV
};

/// Uniform grid over [emin, emax] whose spacing is the largest value
/// <= max_spacing that divides the interval, clamped below by min_spacing.
std::vector<double> make_energy_grid(double emin, double emax,
                                     const EnergyGridOptions& options = {});

/// Adaptive grid: start from the uniform grid and bisect intervals where
/// |f(e_i+1) - f(e_i)| > tol until min_spacing is reached.  `f` is any
/// cheap feature indicator (e.g. number of propagating modes).
///
/// Refinement proceeds in batched passes: all midpoints of a pass are
/// collected first and then evaluated together — concurrently on `threads`
/// when given (`f` must then be thread-safe), serially otherwise.  Energy
/// points are the expensive unit of work, so evaluating a whole pass at
/// once is what keeps the sweep pipeline busy.
std::vector<double> refine_energy_grid(std::vector<double> grid,
                                       const std::function<double(double)>& f,
                                       double tol,
                                       const EnergyGridOptions& options = {},
                                       parallel::ThreadPool* threads = nullptr);

}  // namespace omenx::transport
