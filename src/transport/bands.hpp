// Lead band structure E_n(k) from the folded supercell blocks.
//
// Used to locate band edges (energy windows for transport runs, the gap
// comparison of Fig. 1(b)) and as a sanity check on the Hamiltonian
// emulator.  The generalized Hermitian problem
//     H(k) u = E S(k) u,  H(k) = H00 + e^{ik} H01 + e^{-ik} H01^H
// is reduced with a Cholesky factorization of S(k) and solved with the
// Jacobi eigensolver.
#pragma once

#include <vector>

#include "dft/hamiltonian.hpp"
#include "numeric/matrix.hpp"

namespace omenx::transport {

using numeric::idx;

struct BandStructure {
  std::vector<double> k;                    ///< in [0, pi], folded-cell units
  std::vector<std::vector<double>> bands;   ///< bands[ik][n], ascending in n
};

BandStructure lead_band_structure(const dft::FoldedLead& lead, idx nk = 21);

/// Lowest and highest band energies over the sampled k (spectral extent).
struct BandWindow {
  double emin, emax;
};
BandWindow band_window(const BandStructure& bs);

/// Conduction-band-minimum style edge: the smallest band energy above
/// `reference`.  Returns `reference` if no band lies above it.
double lowest_band_above(const BandStructure& bs, double reference);

}  // namespace omenx::transport
