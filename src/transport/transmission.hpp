// Per-energy-point quantum transport solution (the work unit of Fig. 9's
// two outer parallel levels).
//
// For one (E, k) the pipeline is:
//   1. assemble A = E*S - H (block tridiagonal, folded supercells),
//   2. lead modes -> Sigma^RB and Inj through the OBC strategy registry
//      (shift_invert / feast / beyn / decimation), served from the
//      cross-sweep BoundaryCache when one is bound, overlapped with
//   3. Step 1 of SplitSolve on the accelerators (or a direct baseline),
//   4. wave-function observables: transmission (flux-normalized amplitudes
//      in the right lead), orbital-resolved density, interface currents —
//      cross-checked against the Green's-function (Caroli) transmission.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "dft/hamiltonian.hpp"
#include "obc/boundary_cache.hpp"
#include "obc/strategy.hpp"
#include "parallel/device.hpp"
#include "scattering/self_energy.hpp"
#include "solvers/solver.hpp"
#include "transport/contacts.hpp"

namespace omenx::parallel {
class Comm;
class ThreadPool;
}  // namespace omenx::parallel

namespace omenx::transport {

using blockmat::BlockTridiag;
using numeric::CMatrix;
using numeric::cplx;
using numeric::idx;

/// OBC backends come from the OBC strategy layer (obc/strategy.hpp):
/// shift_invert, feast, decimation, beyn — every registered backend is
/// selectable here.
using ObcAlgorithm = obc::ObcAlgorithm;

/// Linear-solver backends come from the unified strategy layer
/// (solvers/solver.hpp): rgf, block_lu, bcr, spike, splitsolve, or kAuto
/// for the deterministic cost-model choice.
using SolverAlgorithm = solvers::SolverAlgorithm;

struct EnergyPointOptions {
  ObcAlgorithm obc = ObcAlgorithm::kFeast;
  /// Per-backend OBC options plus the shared BoundaryOptions ridge (one
  /// ridge governs both the self-energy construction and the transmission
  /// projection) and the uniform lead contact shift.
  obc::ObcOptions obc_opts;
  /// Cross-sweep boundary cache, keyed by (k_index, energy, contact_shift).
  /// Null = always recompute.  The distribution engine owns this field
  /// during engine runs (it installs its per-rank persistent cache); set it
  /// only for direct solve_energy_point calls.
  obc::BoundaryCache* boundary_cache = nullptr;
  /// Global momentum index of this point's sweep — the k component of the
  /// boundary-cache key.  Must identify the *lead*, not the rank solving it
  /// (work stealing moves tasks between ranks).
  idx k_index = 0;
  SolverAlgorithm solver = SolverAlgorithm::kSplitSolve;
  int partitions = 1;              ///< SplitSolve/SPIKE partitions
  /// Spatial sub-communicator (Fig. 9 level 3).  Non-null with size > 1:
  /// cooperative backends (spike, splitsolve) split each solve's partitions
  /// across the communicator's ranks.  The caller must be rank 0; every
  /// other rank serves the same point through serve_spatial_point.
  parallel::Comm* spatial = nullptr;
  bool want_density = true;
  /// Also solve the drain-injected states (orbital_density_r) when the
  /// density is requested.  The two-contact charge path needs them; a
  /// caller integrating only source-injected density can drop the extra
  /// RHS columns.
  bool want_density_r = true;
  bool want_current = true;
  bool want_caroli = true;         ///< also compute Tr[GL G GR G^H]
  /// Scattering model (scattering/self_energy.hpp registry).  The point's
  /// self-energy providers are assembled in order: the contacts are always
  /// provider #0, then the model's probe terminals.  The default (kNone) —
  /// and any model whose options disable it, e.g. buttiker_probe at
  /// eta <= 0 — contributes nothing and leaves the ballistic pipeline
  /// bit-identical, cache keys included.
  scattering::Spec scattering;
};

struct EnergyPointResult {
  double energy = 0.0;
  double transmission = 0.0;         ///< wave-function formalism (0 if no inj)
  double transmission_caroli = 0.0;  ///< Green's-function cross-check
  idx num_propagating = 0;           ///< incident channels at this energy
  /// |psi|^2 / v summed over *source-injected* modes (incident from the
  /// left contact).  States here are occupied at mu_L in the ballistic
  /// two-contact model.
  std::vector<double> orbital_density;
  /// Same for *drain-injected* modes (incident from the right contact,
  /// occupied at mu_R).  Filled with orbital_density when want_density is
  /// set; empty when the OBC provides no injection data (decimation).
  std::vector<double> orbital_density_r;
  std::vector<double> interface_current;  ///< bond current per interface
  /// Pairwise Caroli transmission T_pq = Tr[Gamma_p G_pq Gamma_q G_pq^H]
  /// (row-major nc x nc, diagonal 0) — filled only by the >= 3-terminal
  /// ContactSet path.  The 2-terminal paths keep T in `transmission` /
  /// `transmission_caroli` exactly as before.
  std::vector<double> t_matrix;
  /// Per-contact flux-normalized injected density (nc vectors of dim()
  /// entries) — filled only by the >= 3-terminal path when want_density.
  /// The 2-terminal paths keep orbital_density / orbital_density_r.
  std::vector<std::vector<double>> contact_density;
};

/// Reusable per-thread state for repeated energy-point solves.  The
/// workspace pools every matrix buffer allocated while a point is being
/// solved, and the members cache the large recurring operands (T = E*S - H,
/// the stacked RHS, the strategy instance with its internal factors), so
/// after the first point at a given device shape a solve performs no heap
/// allocations of numeric buffers (see numeric::matrix_heap_allocations).
/// The pool keys buffers by exact size and keeps the high-water population
/// of every size it has seen; call workspace.clear() between devices of
/// very different shapes to bound the footprint.
struct EnergyPointContext {
  numeric::Workspace workspace;  ///< declared first: outlives the solver
  blockmat::BlockTridiag a;      ///< E*S - H, rebuilt in place per point
  CMatrix b_top, b_bot, x;

  /// Cached strategy instance for `requested` under `binding`, resolving
  /// kAuto deterministically from the system shape.  The instance (and its
  /// warm factorization buffers) is reused while the resolved algorithm and
  /// the binding stay the same.
  solvers::Solver& solver(solvers::SolverAlgorithm requested,
                          const solvers::SolverContext& binding, idx nb,
                          idx s);

  /// Cached OBC strategy instance (obc/strategy.hpp registry); recreated
  /// when the requested algorithm changes.  Strategies are stateless beyond
  /// the options passed per evaluation, so reuse is always safe.
  obc::Strategy& obc_strategy(ObcAlgorithm algo);

  /// Cached RGF instance for Green's-function diagonal solves
  /// (solve_greens_diagonal).  A separate slot from the wave-function
  /// solver, so a sweep interleaving contour (GF) and real-axis (WF) tasks
  /// does not recreate either backend on every switch.
  solvers::Solver& greens_solver();

 private:
  std::unique_ptr<solvers::Solver> solver_;
  solvers::SolverAlgorithm solver_algo_ = solvers::SolverAlgorithm::kAuto;
  solvers::SolverContext solver_binding_;
  std::unique_ptr<solvers::Solver> greens_solver_;
  std::unique_ptr<obc::Strategy> obc_;
  ObcAlgorithm obc_algo_ = ObcAlgorithm::kFeast;
};

/// Solve one energy point for the device `dm` with leads `lead`/`folded`.
/// `pool` is required for the SplitSolve backend (ignored otherwise).
/// Uses a thread-local EnergyPointContext, so sweeping many energies on a
/// thread pool automatically gives every worker its own warm workspace.
EnergyPointResult solve_energy_point(const dft::DeviceMatrices& dm,
                                     const dft::LeadBlocks& lead,
                                     const dft::FoldedLead& folded,
                                     double energy,
                                     const EnergyPointOptions& options = {},
                                     parallel::DevicePool* pool = nullptr);

/// Same, with an explicit context (testing and custom schedulers).
EnergyPointResult solve_energy_point(EnergyPointContext& ctx,
                                     const dft::DeviceMatrices& dm,
                                     const dft::LeadBlocks& lead,
                                     const dft::FoldedLead& folded,
                                     double energy,
                                     const EnergyPointOptions& options = {},
                                     parallel::DevicePool* pool = nullptr);

/// N-terminal entry point.  Routing keeps the validated paths hot:
///   * two identical contacts at {0, last}  -> the exact pre-refactor
///     single-boundary pipeline (bit-identical, including cache behavior);
///   * two dissimilar contacts at {0, last} -> the same 2-terminal solve
///     with the left contact's (sigma_l, inj) and the right contact's
///     (sigma_r, inj_r, mode basis), each fetched under its own per-contact
///     cache key — every solver backend works;
///   * anything else (>= 3 contacts or interior attachment blocks) -> the
///     multi-terminal path: per-contact boundary fetches (deduplicated for
///     contacts sharing lead content + shift), solvers::Attachment solve
///     (kMultiTerminal backends: rgf, block_lu), pairwise Caroli T_pq and
///     per-contact injected densities.  Interior contacts use the lead's
///     left-facing self-energy and injection set (probe convention).
/// Contact shifts override options.obc_opts.contact_shift per contact.
EnergyPointResult solve_energy_point(EnergyPointContext& ctx,
                                     const dft::DeviceMatrices& dm,
                                     const ContactSet& contacts, double energy,
                                     const EnergyPointOptions& options = {},
                                     parallel::DevicePool* pool = nullptr);

/// Same, on the thread-local context.
EnergyPointResult solve_energy_point(const dft::DeviceMatrices& dm,
                                     const ContactSet& contacts, double energy,
                                     const EnergyPointOptions& options = {},
                                     parallel::DevicePool* pool = nullptr);

/// Diagonal of the retarded Green's function G = (z S - H - Sigma)^{-1} at a
/// complex energy node z, ordered orbital-by-orbital like orbital_density.
/// The OBC strategy is evaluated at z itself: with Im z > 0 every lead mode
/// is strictly decaying, so the Boundary carries self-energies only (no
/// injection states exist or are needed) and any registered backend works.
/// This is the work unit of the contour charge quadrature
/// (charge::Quadrature): a node with complex weight w contributes
/// Im(w * G_ii) to the orbital density, and the node is served from
/// options.boundary_cache under the complex-energy key, so a fixed contour
/// hits the cache on every SCF iteration after the first.
std::vector<cplx> solve_greens_diagonal(EnergyPointContext& ctx,
                                        const dft::DeviceMatrices& dm,
                                        const dft::LeadBlocks& lead,
                                        const dft::FoldedLead& folded,
                                        cplx energy,
                                        const EnergyPointOptions& options = {});

/// Same, on a thread-local context (shared with solve_energy_point's).
std::vector<cplx> solve_greens_diagonal(const dft::DeviceMatrices& dm,
                                        const dft::LeadBlocks& lead,
                                        const dft::FoldedLead& folded,
                                        cplx energy,
                                        const EnergyPointOptions& options = {});

/// N-terminal Green's-function diagonal: every contact's self-energy is
/// folded into its attachment block (the symmetric pair reproduces the
/// two-contact overload bit for bit — one boundary fetch, same folds).
std::vector<cplx> solve_greens_diagonal(EnergyPointContext& ctx,
                                        const dft::DeviceMatrices& dm,
                                        const ContactSet& contacts, cplx energy,
                                        const EnergyPointOptions& options = {});

/// Same, on the thread-local context.
std::vector<cplx> solve_greens_diagonal(const dft::DeviceMatrices& dm,
                                        const ContactSet& contacts, cplx energy,
                                        const EnergyPointOptions& options = {});

/// Sweep many energies.  With `threads`, the sweep is parallelized over the
/// pool's workers, each reusing its own thread-local context; serial
/// otherwise.  Results are returned in energy order.
std::vector<EnergyPointResult> sweep_energy_points(
    const dft::DeviceMatrices& dm, const dft::LeadBlocks& lead,
    const dft::FoldedLead& folded, const std::vector<double>& energies,
    const EnergyPointOptions& options = {},
    parallel::DevicePool* pool = nullptr,
    parallel::ThreadPool* threads = nullptr);

/// Per-group energy-sweep entry point: binds one device's matrices and the
/// solve options to a reusable context, so a distribution layer
/// (omen::Engine) can solve whatever points the work queue hands its rank —
/// in any order, allocation-free in steady state.  The referenced matrices,
/// context, and pool must outlive the worker.
class EnergySweepWorker {
 public:
  EnergySweepWorker(EnergyPointContext& ctx, const dft::DeviceMatrices& dm,
                    const dft::LeadBlocks& lead, const dft::FoldedLead& folded,
                    const EnergyPointOptions& options,
                    parallel::DevicePool* pool = nullptr)
      : ctx_(ctx), dm_(dm), lead_(&lead), folded_(&folded), options_(options),
        pool_(pool) {}

  /// N-terminal variant: the worker routes every point through the
  /// ContactSet entry (whose symmetric-classic case is the constructor
  /// above's path, bit for bit).  The set's leads/folded must outlive the
  /// worker; the set itself is copied.
  EnergySweepWorker(EnergyPointContext& ctx, const dft::DeviceMatrices& dm,
                    ContactSet contacts, const EnergyPointOptions& options,
                    parallel::DevicePool* pool = nullptr)
      : ctx_(ctx), dm_(dm), contacts_(std::move(contacts)), options_(options),
        pool_(pool) {}

  EnergyPointResult solve(double energy) {
    if (!contacts_.empty())
      return solve_energy_point(ctx_, dm_, contacts_, energy, options_, pool_);
    return solve_energy_point(ctx_, dm_, *lead_, *folded_, energy, options_,
                              pool_);
  }

  std::vector<cplx> solve_greens(cplx energy,
                                 const EnergyPointOptions& options) {
    if (!contacts_.empty())
      return solve_greens_diagonal(ctx_, dm_, contacts_, energy, options);
    return solve_greens_diagonal(ctx_, dm_, *lead_, *folded_, energy, options);
  }

  const ContactSet& contacts() const noexcept { return contacts_; }

 private:
  EnergyPointContext& ctx_;
  const dft::DeviceMatrices& dm_;
  const dft::LeadBlocks* lead_ = nullptr;
  const dft::FoldedLead* folded_ = nullptr;
  ContactSet contacts_;  ///< empty = classic two-identical-contacts mode
  EnergyPointOptions options_;
  parallel::DevicePool* pool_;
};

/// Member-side counterpart of a cooperative spatial solve: assemble this
/// rank's copy of A = E*S - H for the point, compute the SPIKE partitions
/// spike_partition_owner assigns to this rank, and send them to spatial
/// rank 0 (the group leader running solve_energy_point with
/// options.spatial).  `algo` must be the leader's *resolved* algorithm
/// (kSpike or kSplitSolve).  Never blocks on the leader: the partitions a
/// member owns are computable from A alone, so a failed leader cannot
/// strand a member (and vice versa — a failed member sends placeholder
/// partitions that surface as an error on the leader, never a hang).
void serve_spatial_point(EnergyPointContext& ctx,
                         const dft::DeviceMatrices& dm, double energy,
                         solvers::SolverAlgorithm algo, int partitions,
                         parallel::Comm& spatial);

namespace detail {

/// Stage helpers shared verbatim between the scalar solve_energy_point and
/// the batched pipeline (transport/batch.cpp): both paths run exactly this
/// arithmetic, which is what makes the batched results bit-identical.

/// Outcome of the cache-disciplined OBC stage.  Holds either a cache
/// handout (shared_ptr keeps it alive past invalidation) or a locally
/// computed Boundary.
struct FetchedBoundary {
  std::shared_ptr<const obc::Boundary> cached;
  obc::Boundary computed;
  bool hit = false;  ///< true when the bound cache already had the key
  const obc::Boundary& get() const {
    return cached != nullptr ? *cached : computed;
  }
};

/// Stage 2: compute (or fetch) the boundary for one (k, E, shift) under the
/// options' cache discipline — find first, insert on miss (first insert is
/// canonical), compute without storing when no cache is bound.  `energy` may
/// sit off the real axis (contour charge quadrature); the cache key carries
/// Im(E) so contour nodes cache across SCF iterations like real points do.
FetchedBoundary fetch_boundary(obc::Strategy& strategy,
                               const dft::LeadBlocks& lead,
                               const dft::FoldedLead& folded, cplx energy,
                               const EnergyPointOptions& options);

/// Per-contact variant: the cache key carries the contact's canonical id,
/// its own shift, and its lead content hash, so dissimilar leads and
/// per-contact shifts cache (and invalidate) independently.  The boundary
/// itself is evaluated at E - contact.shift regardless of the global
/// options.obc_opts.contact_shift.
FetchedBoundary fetch_boundary(obc::Strategy& strategy, const Contact& contact,
                               int contact_id, cplx energy,
                               const EnergyPointOptions& options);

/// The RHS column layout of one point:
/// [e_first I, e_last I (gcols), Inj (n_inc), Inj_r (n_inc_r)].
struct RhsShape {
  idx n_inc = 0;
  idx n_inc_r = 0;
  idx gcols = 0;
  idx m = 0;  ///< total columns; 0 = nothing propagates, skip the solve
  bool want_caroli = false;
};

/// `left` supplies the source-side data (sigma_l, inj), `right` the
/// drain-side data (sigma_r, inj_r, mode basis).  The symmetric pipeline
/// passes the same Boundary for both — every read then aliases the
/// pre-refactor single-boundary arithmetic exactly.
RhsShape rhs_shape(const obc::Boundary& left, const obc::Boundary& right,
                   bool have_injection, idx sf,
                   const EnergyPointOptions& options);

/// Stage 3a: assemble the sparse boundary RHS blocks for `shape`.
void build_rhs(CMatrix& b_top, CMatrix& b_bot, const obc::Boundary& left,
               const obc::Boundary& right, const RhsShape& shape, idx sf);

/// Stage 4: all observables (Caroli + wave-function transmission, density,
/// currents) from the solved block columns `x`.
void finalize_observables(EnergyPointResult& out, const BlockTridiag& a,
                          const obc::Boundary& left, const obc::Boundary& right,
                          bool have_injection, const RhsShape& shape,
                          const CMatrix& x, const EnergyPointOptions& options);

/// Shared guard: density/current requests need a mode-based OBC.
void require_injection_support(const obc::Strategy& strategy,
                               bool have_injection,
                               const EnergyPointOptions& options);

}  // namespace detail

/// Fermi-Dirac occupation.
double fermi(double e, double mu, double kt);

/// Fermi-Dirac occupation at a complex energy (contour quadrature), with
/// the same +-40 kT overflow guards applied to Re((e - mu)/kt).  At
/// Im e = 2 n pi kt (the contour's horizontal segment) exp((e - mu)/kt) is
/// real and positive, so f there equals the real-axis Fermi function — the
/// property the L-shaped contour is built on.  kt <= 0 degenerates to a
/// step in Re(e), matching the real overload.
cplx fermi(cplx e, double mu, double kt);

/// First `n` fermionic Matsubara poles of f(z) = 1/(1 + exp((z - mu)/kt))
/// above the real axis: z_p = mu + i pi kt (2p + 1), p = 0..n-1.  Each pole
/// has residue -kt.  Throws std::invalid_argument for kt <= 0 or n < 0.
std::vector<cplx> matsubara_poles(double mu, double kt, int n);

/// Landauer ballistic current (in units of 2e/h * eV) from a transmission
/// table: I = integral T(E) [f(E, mu_l) - f(E, mu_r)] dE (trapezoid).
double landauer_current(const std::vector<double>& energies,
                        const std::vector<double>& transmission, double mu_l,
                        double mu_r, double kt);

/// Multi-terminal Buettiker currents (same units as landauer_current):
///   I_p = integral sum_{q != p} [T_pq(E) f(E, mu_p) - T_qp(E) f(E, mu_q)] dE.
/// `t_matrix[i]` is the row-major nc x nc pairwise matrix at energies[i]
/// and `mu` has nc entries.  Every product T_pq f_p enters the sum twice
/// with opposite signs, so sum_p I_p vanishes to rounding — the
/// current-conservation identity the 3-terminal tests gate on.  For nc = 2
/// with T_01 == T_10 this reduces to landauer_current term by term.
std::vector<double> buttiker_currents(
    const std::vector<double>& energies,
    const std::vector<std::vector<double>>& t_matrix,
    const std::vector<double>& mu, double kt);

/// Sum orbital density onto physical cells (fold * cells entries).
std::vector<double> density_per_cell(const std::vector<double>& orbital_density,
                                     idx orbitals_per_cell, idx cells);

/// Sum orbital density onto atoms of each cell using the orbital->atom map
/// (Fig. 10(a)-style atom-resolved charge).
std::vector<double> density_per_atom(const std::vector<double>& orbital_density,
                                     const std::vector<idx>& orbital_atom,
                                     idx atoms_per_cell, idx cells, idx fold);

}  // namespace omenx::transport
