#include "transport/transmission.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "numeric/blas.hpp"
#include "numeric/lu.hpp"
#include "parallel/comm.hpp"
#include "parallel/thread_pool.hpp"
#include "solvers/spike.hpp"
#include "transport/energy_grid.hpp"

namespace omenx::transport {

namespace {

// Trace of GammaL * G * GammaR * G^H  (Caroli/Meir-Wingreen ballistic form).
double caroli_transmission(const CMatrix& sigma_l, const CMatrix& sigma_r,
                           const CMatrix& g_first_last) {
  auto gamma = [](const CMatrix& s) {
    CMatrix g = s - numeric::dagger(s);
    g *= cplx{0.0, 1.0};
    return g;
  };
  const CMatrix gl = gamma(sigma_l);
  const CMatrix gr = gamma(sigma_r);
  const CMatrix m = numeric::matmul(
      gl, numeric::matmul(g_first_last,
                          numeric::matmul(gr, numeric::dagger(g_first_last))));
  cplx tr{0.0};
  for (idx i = 0; i < m.rows(); ++i) tr += m(i, i);
  return tr.real();
}

}  // namespace

namespace detail {

void require_injection_support(const obc::Strategy& strategy,
                               bool have_injection,
                               const EnergyPointOptions& options) {
  // Density/charge and bond currents integrate the *injected* wave
  // functions; an OBC backend without injection data would silently
  // produce zeros.  Reject before any cooperative work starts, so a
  // spatial group's members are never left waiting on a solve that
  // cannot happen.
  if ((options.want_density || options.want_current) && !have_injection)
    throw std::invalid_argument(
        std::string("solve_energy_point: OBC strategy '") + strategy.name() +
        "' provides self-energies only (no injection states); density/"
        "charge/current requests need a mode-based OBC (shift_invert, "
        "feast, beyn)");
}

FetchedBoundary fetch_boundary(obc::Strategy& strategy,
                               const dft::LeadBlocks& lead,
                               const dft::FoldedLead& folded, cplx energy,
                               const EnergyPointOptions& options) {
  // Served from the cross-sweep cache when one is bound: the lead does not
  // depend on the device potential, so SCF outer iterations, bias points,
  // and adaptive-grid re-sweeps revisiting (k, E, shift) reuse the first
  // evaluation's Boundary bit-for-bit.  Complex energies (contour nodes)
  // follow the same discipline — Im(E) is part of the key.
  FetchedBoundary out;
  if (options.boundary_cache != nullptr) {
    const obc::BoundaryKey key{options.k_index, energy.real(),
                               options.obc_opts.contact_shift,
                               static_cast<int>(options.obc), energy.imag()};
    out.cached = options.boundary_cache->find(key);
    out.hit = out.cached != nullptr;
    if (out.cached == nullptr)
      out.cached = options.boundary_cache->insert(
          key, strategy.boundary(lead, folded, energy, options.obc_opts));
  } else {
    out.computed = strategy.boundary(lead, folded, energy, options.obc_opts);
  }
  return out;
}

RhsShape rhs_shape(const obc::Boundary& bnd, bool have_injection, idx sf,
                   const EnergyPointOptions& options) {
  RhsShape shape;
  shape.n_inc = have_injection ? bnd.num_incident : 0;
  // Drain-side injection columns are only carried when the two-contact
  // density is requested (the SCF charge path): transmission and current
  // need no right-incident states, and the extra RHS columns are not free.
  shape.n_inc_r = have_injection && options.want_density &&
                          options.want_density_r
                      ? bnd.num_incident_right
                      : 0;
  shape.want_caroli = options.want_caroli || !have_injection;
  shape.gcols = shape.want_caroli ? 2 * sf : 0;
  shape.m = shape.gcols + shape.n_inc + shape.n_inc_r;
  return shape;
}

void build_rhs(CMatrix& b_top, CMatrix& b_bot, const obc::Boundary& bnd,
               const RhsShape& shape, idx sf) {
  b_top.resize(sf, shape.m);
  b_bot.resize(sf, shape.m);
  if (shape.want_caroli) {
    for (idx i = 0; i < sf; ++i) {
      b_top(i, i) = cplx{1.0};
      b_bot(i, sf + i) = cplx{1.0};
    }
  }
  for (idx j = 0; j < shape.n_inc; ++j)
    for (idx i = 0; i < sf; ++i) b_top(i, shape.gcols + j) = bnd.inj(i, j);
  // Right-contact injection enters through the last block.
  for (idx j = 0; j < shape.n_inc_r; ++j)
    for (idx i = 0; i < sf; ++i)
      b_bot(i, shape.gcols + shape.n_inc + j) = bnd.inj_r(i, j);
}

void finalize_observables(EnergyPointResult& out, const BlockTridiag& a,
                          const obc::Boundary& bnd, bool have_injection,
                          const RhsShape& shape, const CMatrix& x,
                          const EnergyPointOptions& options) {
  const idx sf = a.block_size();
  const idx gcols = shape.gcols;
  const idx n_inc = shape.n_inc;
  const idx n_inc_r = shape.n_inc_r;

  // --- Caroli transmission from G_{first,last} ---
  if (shape.want_caroli) {
    const CMatrix g_first_last = x.block(0, sf, sf, sf);
    out.transmission_caroli =
        caroli_transmission(bnd.sigma_l, bnd.sigma_r, g_first_last);
  }

  // --- Wave-function observables ---
  if (have_injection && n_inc > 0) {
    // Transmission: project the last supercell onto the right-bounded mode
    // basis; flux-normalized propagating amplitudes give T.
    const CMatrix psi_last = x.block(a.dim() - sf, gcols, sf, n_inc);
    // Same ridge as the self-energy construction: one BoundaryOptions
    // governs every pseudo-inverse of the mode basis.
    const CMatrix uplus = obc::pseudo_inverse(
        bnd.right_basis, options.obc_opts.boundary.pinv_ridge);
    const CMatrix amps = numeric::matmul(uplus, psi_last);
    // Flux-normalized amplitudes: the mode vectors have unit 2-norm, so the
    // flux a mode carries is v*beta (beta = Bloch norm u^H S_v u), stored
    // per mode as Boundary::*_flux.  Dividing by the bare |v| instead would
    // over-count every channel by beta in a non-orthogonal basis.
    double total = 0.0;
    for (idx p = 0; p < n_inc; ++p) {
      const double fp =
          std::max(bnd.inj_flux[static_cast<std::size_t>(p)], 1e-12);
      for (idx n = 0; n < amps.rows(); ++n) {
        if (!bnd.right_propagating[static_cast<std::size_t>(n)]) continue;
        const double fn = bnd.right_flux[static_cast<std::size_t>(n)];
        total += std::norm(amps(n, p)) * fn / fp;
      }
    }
    out.transmission = total;

    if (options.want_density) {
      // 1/flux weights make the summed injected density equal the spectral
      // function -2 Im G_ii exactly — the identity the contour charge
      // quadrature (charge::Quadrature) integrates on the GF side.
      out.orbital_density.assign(static_cast<std::size_t>(a.dim()), 0.0);
      for (idx p = 0; p < n_inc; ++p) {
        const double w =
            1.0 / std::max(bnd.inj_flux[static_cast<std::size_t>(p)], 1e-12);
        for (idx i = 0; i < a.dim(); ++i)
          out.orbital_density[static_cast<std::size_t>(i)] +=
              w * std::norm(x(i, gcols + p));
      }
    }
    if (options.want_current) {
      const idx nb = a.num_blocks();
      out.interface_current.assign(static_cast<std::size_t>(nb - 1), 0.0);
      for (idx iface = 0; iface + 1 < nb; ++iface) {
        const CMatrix& tc = a.upper(iface);
        for (idx p = 0; p < n_inc; ++p) {
          const double w =
              1.0 /
              std::max(bnd.inj_flux[static_cast<std::size_t>(p)], 1e-12);
          cplx acc{0.0};
          for (idx i = 0; i < sf; ++i) {
            const cplx psi_i = x(iface * sf + i, gcols + p);
            for (idx j = 0; j < sf; ++j)
              acc += std::conj(psi_i) * tc(i, j) *
                     x((iface + 1) * sf + j, gcols + p);
          }
          out.interface_current[static_cast<std::size_t>(iface)] +=
              w * 2.0 * acc.imag();
        }
      }
    }
  }

  // Drain-injected density: same flux normalization, states incident from
  // the right contact (occupied at mu_R in the two-contact charge model).
  if (n_inc_r > 0 && options.want_density) {
    out.orbital_density_r.assign(static_cast<std::size_t>(a.dim()), 0.0);
    for (idx p = 0; p < n_inc_r; ++p) {
      const double w =
          1.0 /
          std::max(bnd.inj_r_flux[static_cast<std::size_t>(p)], 1e-12);
      for (idx i = 0; i < a.dim(); ++i)
        out.orbital_density_r[static_cast<std::size_t>(i)] +=
            w * std::norm(x(i, gcols + n_inc + p));
    }
  }
}

}  // namespace detail

solvers::Solver& EnergyPointContext::solver(
    solvers::SolverAlgorithm requested, const solvers::SolverContext& binding,
    idx nb, idx s) {
  // Resolution uses the representative nrhs = 2s (the Caroli columns): the
  // actual injected-mode count is energy-dependent and unknown to the
  // spatial members, and the choice must agree across the group's ranks.
  const solvers::SolverAlgorithm resolved =
      solvers::resolve_algorithm(requested, nb, s, 2 * s, binding);
  const bool same_binding = solver_binding_.pool == binding.pool &&
                            solver_binding_.partitions == binding.partitions &&
                            solver_binding_.spatial == binding.spatial &&
                            solver_binding_.batch == binding.batch &&
                            solver_binding_.backend == binding.backend;
  if (solver_ == nullptr || solver_algo_ != resolved || !same_binding) {
    solver_ = solvers::make_solver(resolved, binding);
    solver_algo_ = resolved;
    solver_binding_ = binding;
  }
  return *solver_;
}

obc::Strategy& EnergyPointContext::obc_strategy(ObcAlgorithm algo) {
  if (obc_ == nullptr || obc_algo_ != algo) {
    obc_ = obc::make_obc_strategy(algo);
    obc_algo_ = algo;
  }
  return *obc_;
}

solvers::Solver& EnergyPointContext::greens_solver() {
  if (greens_solver_ == nullptr)
    greens_solver_ =
        solvers::make_solver(solvers::SolverAlgorithm::kRgf, {});
  return *greens_solver_;
}

namespace {

// Thread-local context: every pool worker that sweeps energies keeps its
// own warm workspace, so steady-state points are allocation-free.  Shared
// between the wave-function and Green's-function entry points, so a worker
// interleaving contour and real-axis tasks reuses one workspace.
EnergyPointContext& thread_context() {
  static thread_local EnergyPointContext ctx;
  return ctx;
}

}  // namespace

EnergyPointResult solve_energy_point(const dft::DeviceMatrices& dm,
                                     const dft::LeadBlocks& lead,
                                     const dft::FoldedLead& folded,
                                     double energy,
                                     const EnergyPointOptions& options,
                                     parallel::DevicePool* pool) {
  return solve_energy_point(thread_context(), dm, lead, folded, energy,
                            options, pool);
}

EnergyPointResult solve_energy_point(EnergyPointContext& ctx,
                                     const dft::DeviceMatrices& dm,
                                     const dft::LeadBlocks& lead,
                                     const dft::FoldedLead& folded,
                                     double energy,
                                     const EnergyPointOptions& options,
                                     parallel::DevicePool* pool) {
  const numeric::WorkspaceScope scope(ctx.workspace);
  EnergyPointResult out;
  out.energy = energy;
  const cplx e{energy, 0.0};
  ctx.a.assign_es_minus_h(e, dm.s, dm.h);
  const BlockTridiag& a = ctx.a;
  const idx sf = a.block_size();

  // --- strategy lookups (registries + deterministic kAuto resolution) -----
  solvers::SolverContext binding;
  binding.pool = pool;
  binding.partitions = options.partitions;
  binding.spatial =
      options.spatial != nullptr && options.spatial->size() > 1
          ? options.spatial
          : nullptr;
  solvers::Solver& solver =
      ctx.solver(options.solver, binding, a.num_blocks(), sf);
  obc::Strategy& obc_strategy = ctx.obc_strategy(options.obc);
  const bool have_injection =
      (obc_strategy.capabilities() & obc::kProvidesInjection) != 0;
  detail::require_injection_support(obc_strategy, have_injection, options);

  // kOverlapPrepare backends (SplitSolve Step 1) start work here — before
  // the boundary conditions exist.
  solver.prepare(a);

  // --- Open boundary conditions (CPU side, overlapping with Step 1) ---
  const detail::FetchedBoundary fetched =
      detail::fetch_boundary(obc_strategy, lead, folded, e, options);
  const obc::Boundary& bnd = fetched.get();
  out.num_propagating = bnd.num_incident;

  // --- Solve: Green's-function columns (for Caroli) + injected waves ---
  // RHS layout: [e_first I (s), e_last I (s), Inj (n_inc)] so one solve
  // covers both formalisms.
  const detail::RhsShape shape =
      detail::rhs_shape(bnd, have_injection, sf, options);
  if (shape.m == 0) {
    // Nothing to solve at this energy — but cooperative/asynchronous
    // backends may have outstanding work (spatial members' partitions,
    // SplitSolve's Step 1) that must be settled before the next point.
    solver.discard();
    return out;
  }

  detail::build_rhs(ctx.b_top, ctx.b_bot, bnd, shape, sf);

  CMatrix& x = ctx.x;
  x = solver.solve_boundary(a, bnd.sigma_l, bnd.sigma_r, ctx.b_top, ctx.b_bot);

  detail::finalize_observables(out, a, bnd, have_injection, shape, x, options);
  return out;
}

std::vector<cplx> solve_greens_diagonal(EnergyPointContext& ctx,
                                        const dft::DeviceMatrices& dm,
                                        const dft::LeadBlocks& lead,
                                        const dft::FoldedLead& folded,
                                        cplx energy,
                                        const EnergyPointOptions& options) {
  const numeric::WorkspaceScope scope(ctx.workspace);
  ctx.a.assign_es_minus_h(energy, dm.s, dm.h);
  BlockTridiag& a = ctx.a;
  const idx sf = a.block_size();

  obc::Strategy& strategy = ctx.obc_strategy(options.obc);
  const detail::FetchedBoundary fetched =
      detail::fetch_boundary(strategy, lead, folded, energy, options);
  const obc::Boundary& bnd = fetched.get();

  // Fold the contact self-energies into the corner blocks; RGF then yields
  // exactly the diagonal blocks of G = (z S - H - Sigma)^{-1}.  No
  // injection columns exist off the real axis (every lead mode decays), so
  // self-energy-only backends are as good as mode-based ones here.
  a.diag(0) -= bnd.sigma_l;
  a.diag(a.num_blocks() - 1) -= bnd.sigma_r;
  const auto blocks = ctx.greens_solver().diagonal_blocks(a);

  std::vector<cplx> out(static_cast<std::size_t>(a.dim()));
  for (idx b = 0; b < a.num_blocks(); ++b)
    for (idx i = 0; i < sf; ++i)
      out[static_cast<std::size_t>(b * sf + i)] =
          blocks[static_cast<std::size_t>(b)](i, i);
  return out;
}

std::vector<cplx> solve_greens_diagonal(const dft::DeviceMatrices& dm,
                                        const dft::LeadBlocks& lead,
                                        const dft::FoldedLead& folded,
                                        cplx energy,
                                        const EnergyPointOptions& options) {
  return solve_greens_diagonal(thread_context(), dm, lead, folded, energy,
                               options);
}

std::vector<EnergyPointResult> sweep_energy_points(
    const dft::DeviceMatrices& dm, const dft::LeadBlocks& lead,
    const dft::FoldedLead& folded, const std::vector<double>& energies,
    const EnergyPointOptions& options, parallel::DevicePool* pool,
    parallel::ThreadPool* threads) {
  std::vector<EnergyPointResult> out(energies.size());
  if (threads != nullptr) {
    threads->parallel_for(energies.size(), [&](std::size_t i) {
      out[i] = solve_energy_point(dm, lead, folded, energies[i], options, pool);
    });
  } else {
    for (std::size_t i = 0; i < energies.size(); ++i)
      out[i] = solve_energy_point(dm, lead, folded, energies[i], options, pool);
  }
  return out;
}

void serve_spatial_point(EnergyPointContext& ctx,
                         const dft::DeviceMatrices& dm, double energy,
                         solvers::SolverAlgorithm algo, int partitions,
                         parallel::Comm& spatial) {
  if (!solvers::algorithm_is_cooperative(algo))
    throw std::invalid_argument(
        "serve_spatial_point: backend is not spatially cooperative");
  const numeric::WorkspaceScope scope(ctx.workspace);
  const bool ends_to_root = algo == solvers::SolverAlgorithm::kSpike;
  // Members never see the boundary self-energies: spike pins the end
  // partitions to the leader (the interior ones are identical in A and T),
  // and splitsolve's Step 1 runs on plain A by construction.  So the member
  // assembles A locally and computes immediately — overlapping with the
  // leader's OBC solve, the rank-level version of the paper's CPU/GPU
  // overlap.  A failure *before* any partition was sent must still emit
  // the placeholder messages: the leader counts on receiving them
  // (spike_spatial_member handles mid-stream failures itself).
  try {
    ctx.a.assign_es_minus_h(cplx{energy, 0.0}, dm.s, dm.h);
  } catch (...) {
    solvers::spike_spatial_member_poison(spatial, partitions, ends_to_root);
    throw;
  }
  solvers::spike_spatial_member(ctx.a, spatial, partitions, ends_to_root);
}

double fermi(double e, double mu, double kt) {
  if (kt <= 0.0) return e <= mu ? 1.0 : 0.0;
  const double arg = (e - mu) / kt;
  if (arg > 40.0) return 0.0;
  if (arg < -40.0) return 1.0;
  return 1.0 / (1.0 + std::exp(arg));
}

cplx fermi(cplx e, double mu, double kt) {
  if (kt <= 0.0) return e.real() <= mu ? cplx{1.0} : cplx{0.0};
  const cplx arg = (e - mu) / kt;
  if (arg.real() > 40.0) return cplx{0.0};
  if (arg.real() < -40.0) return cplx{1.0};
  return 1.0 / (1.0 + std::exp(arg));
}

std::vector<cplx> matsubara_poles(double mu, double kt, int n) {
  if (kt <= 0.0)
    throw std::invalid_argument("matsubara_poles: kt must be positive");
  if (n < 0) throw std::invalid_argument("matsubara_poles: n must be >= 0");
  std::vector<cplx> out;
  out.reserve(static_cast<std::size_t>(n));
  const double pi = 3.14159265358979323846;
  for (int p = 0; p < n; ++p)
    out.emplace_back(mu, pi * kt * (2.0 * p + 1.0));
  return out;
}

double landauer_current(const std::vector<double>& energies,
                        const std::vector<double>& transmission, double mu_l,
                        double mu_r, double kt) {
  if (energies.size() != transmission.size() || energies.size() < 2)
    throw std::invalid_argument("landauer_current: bad table");
  // Same trapezoid weights as the charge integration (energy_grid.hpp):
  // half-weight endpoints, 0.5*(de_left + de_right) interior.
  const std::vector<double> w = trapezoid_weights(energies);
  double current = 0.0;
  for (std::size_t i = 0; i < energies.size(); ++i)
    current += w[i] * transmission[i] *
               (fermi(energies[i], mu_l, kt) - fermi(energies[i], mu_r, kt));
  return current;
}

std::vector<double> density_per_cell(const std::vector<double>& orbital_density,
                                     idx orbitals_per_cell, idx cells) {
  if (static_cast<idx>(orbital_density.size()) != orbitals_per_cell * cells)
    throw std::invalid_argument("density_per_cell: size mismatch");
  std::vector<double> out(static_cast<std::size_t>(cells), 0.0);
  for (idx c = 0; c < cells; ++c)
    for (idx o = 0; o < orbitals_per_cell; ++o)
      out[static_cast<std::size_t>(c)] +=
          orbital_density[static_cast<std::size_t>(c * orbitals_per_cell + o)];
  return out;
}

std::vector<double> density_per_atom(const std::vector<double>& orbital_density,
                                     const std::vector<idx>& orbital_atom,
                                     idx atoms_per_cell, idx cells, idx fold) {
  const idx orb_cell = static_cast<idx>(orbital_atom.size());
  if (static_cast<idx>(orbital_density.size()) != orb_cell * cells * fold)
    throw std::invalid_argument("density_per_atom: size mismatch");
  std::vector<double> out(
      static_cast<std::size_t>(atoms_per_cell * cells * fold), 0.0);
  for (idx g = 0; g < cells * fold; ++g) {
    for (idx o = 0; o < orb_cell; ++o) {
      const idx atom = g * atoms_per_cell + orbital_atom[static_cast<std::size_t>(o)];
      out[static_cast<std::size_t>(atom)] +=
          orbital_density[static_cast<std::size_t>(g * orb_cell + o)];
    }
  }
  return out;
}

}  // namespace omenx::transport
