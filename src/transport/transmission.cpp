#include "transport/transmission.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "numeric/blas.hpp"
#include "numeric/lu.hpp"
#include "parallel/comm.hpp"
#include "parallel/thread_pool.hpp"
#include "solvers/spike.hpp"
#include "transport/energy_grid.hpp"

namespace omenx::transport {

namespace {

// Trace of GammaL * G * GammaR * G^H  (Caroli/Meir-Wingreen ballistic form).
double caroli_transmission(const CMatrix& sigma_l, const CMatrix& sigma_r,
                           const CMatrix& g_first_last) {
  auto gamma = [](const CMatrix& s) {
    CMatrix g = s - numeric::dagger(s);
    g *= cplx{0.0, 1.0};
    return g;
  };
  const CMatrix gl = gamma(sigma_l);
  const CMatrix gr = gamma(sigma_r);
  const CMatrix m = numeric::matmul(
      gl, numeric::matmul(g_first_last,
                          numeric::matmul(gr, numeric::dagger(g_first_last))));
  cplx tr{0.0};
  for (idx i = 0; i < m.rows(); ++i) tr += m(i, i);
  return tr.real();
}

// Provider assembly: the contacts are always provider #0; an active
// scattering model appends its probe pseudo-terminals as lead-less
// contacts.  Returns false when the model contributes nothing — kNone, a
// disabled model (buttiker_probe at eta <= 0), or a set whose probes were
// already materialized upstream (omen::Simulator) — and the caller then
// proceeds on the unmodified set/path, bit-identically.
bool assemble_providers(const ContactSet& contacts, idx nb,
                        const scattering::Spec& spec, ContactSet& out) {
  if (spec.algorithm == scattering::ScatteringAlgorithm::kNone) return false;
  if (contacts.has_probes()) return false;
  std::vector<idx> occupied;
  occupied.reserve(static_cast<std::size_t>(contacts.size()));
  for (idx i = 0; i < contacts.size(); ++i)
    occupied.push_back(contacts.resolve_block(i, nb));
  const std::vector<scattering::ProbeSite> sites =
      scattering::assemble_probes(spec, nb, occupied);
  if (sites.empty()) return false;
  std::vector<Contact> cs = contacts.contacts();
  cs.reserve(cs.size() + sites.size());
  for (const scattering::ProbeSite& site : sites) {
    Contact p;
    p.block = site.block;
    p.probe_eta = site.eta;
    cs.push_back(p);
  }
  out = ContactSet(std::move(cs));
  return true;
}

}  // namespace

namespace detail {

void require_injection_support(const obc::Strategy& strategy,
                               bool have_injection,
                               const EnergyPointOptions& options) {
  // Density/charge and bond currents integrate the *injected* wave
  // functions; an OBC backend without injection data would silently
  // produce zeros.  Reject before any cooperative work starts, so a
  // spatial group's members are never left waiting on a solve that
  // cannot happen.
  if ((options.want_density || options.want_current) && !have_injection)
    throw std::invalid_argument(
        std::string("solve_energy_point: OBC strategy '") + strategy.name() +
        "' provides self-energies only (no injection states); density/"
        "charge/current requests need a mode-based OBC (shift_invert, "
        "feast, beyn)");
}

FetchedBoundary fetch_boundary(obc::Strategy& strategy,
                               const dft::LeadBlocks& lead,
                               const dft::FoldedLead& folded, cplx energy,
                               const EnergyPointOptions& options) {
  // Served from the cross-sweep cache when one is bound: the lead does not
  // depend on the device potential, so SCF outer iterations, bias points,
  // and adaptive-grid re-sweeps revisiting (k, E, shift) reuse the first
  // evaluation's Boundary bit-for-bit.  Complex energies (contour nodes)
  // follow the same discipline — Im(E) is part of the key.
  FetchedBoundary out;
  if (options.boundary_cache != nullptr) {
    obc::BoundaryKey key{options.k_index, energy.real(),
                         options.obc_opts.contact_shift,
                         static_cast<int>(options.obc), energy.imag()};
    key.scattering = scattering::boundary_key_component(options.scattering);
    out.cached = options.boundary_cache->find(key);
    out.hit = out.cached != nullptr;
    if (out.cached == nullptr)
      out.cached = options.boundary_cache->insert(
          key, strategy.boundary(lead, folded, energy, options.obc_opts));
  } else {
    out.computed = strategy.boundary(lead, folded, energy, options.obc_opts);
  }
  return out;
}

FetchedBoundary fetch_boundary(obc::Strategy& strategy, const Contact& contact,
                               int contact_id, cplx energy,
                               const EnergyPointOptions& options) {
  obc::ObcOptions opts = options.obc_opts;
  opts.contact_shift = contact.shift;
  FetchedBoundary out;
  if (options.boundary_cache != nullptr) {
    obc::BoundaryKey key{options.k_index, energy.real(), contact.shift,
                         static_cast<int>(options.obc), energy.imag()};
    key.contact = contact_id;
    key.lead_hash = contact.lead_hash;
    key.scattering = scattering::boundary_key_component(options.scattering);
    out.cached = options.boundary_cache->find(key);
    out.hit = out.cached != nullptr;
    if (out.cached == nullptr)
      out.cached = options.boundary_cache->insert(
          key,
          strategy.boundary(*contact.lead, *contact.folded, energy, opts));
  } else {
    out.computed =
        strategy.boundary(*contact.lead, *contact.folded, energy, opts);
  }
  return out;
}

RhsShape rhs_shape(const obc::Boundary& left, const obc::Boundary& right,
                   bool have_injection, idx sf,
                   const EnergyPointOptions& options) {
  RhsShape shape;
  shape.n_inc = have_injection ? left.num_incident : 0;
  // Drain-side injection columns are only carried when the two-contact
  // density is requested (the SCF charge path): transmission and current
  // need no right-incident states, and the extra RHS columns are not free.
  shape.n_inc_r = have_injection && options.want_density &&
                          options.want_density_r
                      ? right.num_incident_right
                      : 0;
  shape.want_caroli = options.want_caroli || !have_injection;
  shape.gcols = shape.want_caroli ? 2 * sf : 0;
  shape.m = shape.gcols + shape.n_inc + shape.n_inc_r;
  return shape;
}

void build_rhs(CMatrix& b_top, CMatrix& b_bot, const obc::Boundary& left,
               const obc::Boundary& right, const RhsShape& shape, idx sf) {
  b_top.resize(sf, shape.m);
  b_bot.resize(sf, shape.m);
  if (shape.want_caroli) {
    for (idx i = 0; i < sf; ++i) {
      b_top(i, i) = cplx{1.0};
      b_bot(i, sf + i) = cplx{1.0};
    }
  }
  for (idx j = 0; j < shape.n_inc; ++j)
    for (idx i = 0; i < sf; ++i) b_top(i, shape.gcols + j) = left.inj(i, j);
  // Right-contact injection enters through the last block.
  for (idx j = 0; j < shape.n_inc_r; ++j)
    for (idx i = 0; i < sf; ++i)
      b_bot(i, shape.gcols + shape.n_inc + j) = right.inj_r(i, j);
}

void finalize_observables(EnergyPointResult& out, const BlockTridiag& a,
                          const obc::Boundary& left, const obc::Boundary& right,
                          bool have_injection, const RhsShape& shape,
                          const CMatrix& x, const EnergyPointOptions& options) {
  const idx sf = a.block_size();
  const idx gcols = shape.gcols;
  const idx n_inc = shape.n_inc;
  const idx n_inc_r = shape.n_inc_r;

  // --- Caroli transmission from G_{first,last} ---
  if (shape.want_caroli) {
    const CMatrix g_first_last = x.block(0, sf, sf, sf);
    out.transmission_caroli =
        caroli_transmission(left.sigma_l, right.sigma_r, g_first_last);
  }

  // --- Wave-function observables ---
  if (have_injection && n_inc > 0) {
    // Transmission: project the last supercell onto the right-bounded mode
    // basis; flux-normalized propagating amplitudes give T.
    const CMatrix psi_last = x.block(a.dim() - sf, gcols, sf, n_inc);
    // Same ridge as the self-energy construction: one BoundaryOptions
    // governs every pseudo-inverse of the mode basis.
    const CMatrix uplus = obc::pseudo_inverse(
        right.right_basis, options.obc_opts.boundary.pinv_ridge);
    const CMatrix amps = numeric::matmul(uplus, psi_last);
    // Flux-normalized amplitudes: the mode vectors have unit 2-norm, so the
    // flux a mode carries is v*beta (beta = Bloch norm u^H S_v u), stored
    // per mode as Boundary::*_flux.  Dividing by the bare |v| instead would
    // over-count every channel by beta in a non-orthogonal basis.
    double total = 0.0;
    for (idx p = 0; p < n_inc; ++p) {
      const double fp =
          std::max(left.inj_flux[static_cast<std::size_t>(p)], 1e-12);
      for (idx n = 0; n < amps.rows(); ++n) {
        if (!right.right_propagating[static_cast<std::size_t>(n)]) continue;
        const double fn = right.right_flux[static_cast<std::size_t>(n)];
        total += std::norm(amps(n, p)) * fn / fp;
      }
    }
    out.transmission = total;

    if (options.want_density) {
      // 1/flux weights make the summed injected density equal the spectral
      // function -2 Im G_ii exactly — the identity the contour charge
      // quadrature (charge::Quadrature) integrates on the GF side.
      out.orbital_density.assign(static_cast<std::size_t>(a.dim()), 0.0);
      for (idx p = 0; p < n_inc; ++p) {
        const double w =
            1.0 / std::max(left.inj_flux[static_cast<std::size_t>(p)], 1e-12);
        for (idx i = 0; i < a.dim(); ++i)
          out.orbital_density[static_cast<std::size_t>(i)] +=
              w * std::norm(x(i, gcols + p));
      }
    }
    if (options.want_current) {
      const idx nb = a.num_blocks();
      out.interface_current.assign(static_cast<std::size_t>(nb - 1), 0.0);
      for (idx iface = 0; iface + 1 < nb; ++iface) {
        const CMatrix& tc = a.upper(iface);
        for (idx p = 0; p < n_inc; ++p) {
          const double w =
              1.0 /
              std::max(left.inj_flux[static_cast<std::size_t>(p)], 1e-12);
          cplx acc{0.0};
          for (idx i = 0; i < sf; ++i) {
            const cplx psi_i = x(iface * sf + i, gcols + p);
            for (idx j = 0; j < sf; ++j)
              acc += std::conj(psi_i) * tc(i, j) *
                     x((iface + 1) * sf + j, gcols + p);
          }
          out.interface_current[static_cast<std::size_t>(iface)] +=
              w * 2.0 * acc.imag();
        }
      }
    }
  }

  // Drain-injected density: same flux normalization, states incident from
  // the right contact (occupied at mu_R in the two-contact charge model).
  if (n_inc_r > 0 && options.want_density) {
    out.orbital_density_r.assign(static_cast<std::size_t>(a.dim()), 0.0);
    for (idx p = 0; p < n_inc_r; ++p) {
      const double w =
          1.0 /
          std::max(right.inj_r_flux[static_cast<std::size_t>(p)], 1e-12);
      for (idx i = 0; i < a.dim(); ++i)
        out.orbital_density_r[static_cast<std::size_t>(i)] +=
            w * std::norm(x(i, gcols + n_inc + p));
    }
  }
}

}  // namespace detail

solvers::Solver& EnergyPointContext::solver(
    solvers::SolverAlgorithm requested, const solvers::SolverContext& binding,
    idx nb, idx s) {
  // Resolution uses the representative nrhs = 2s (the Caroli columns): the
  // actual injected-mode count is energy-dependent and unknown to the
  // spatial members, and the choice must agree across the group's ranks.
  const solvers::SolverAlgorithm resolved =
      solvers::resolve_algorithm(requested, nb, s, 2 * s, binding);
  const bool same_binding = solver_binding_.pool == binding.pool &&
                            solver_binding_.partitions == binding.partitions &&
                            solver_binding_.spatial == binding.spatial &&
                            solver_binding_.batch == binding.batch &&
                            solver_binding_.backend == binding.backend;
  if (solver_ == nullptr || solver_algo_ != resolved || !same_binding) {
    solver_ = solvers::make_solver(resolved, binding);
    solver_algo_ = resolved;
    solver_binding_ = binding;
  }
  return *solver_;
}

obc::Strategy& EnergyPointContext::obc_strategy(ObcAlgorithm algo) {
  if (obc_ == nullptr || obc_algo_ != algo) {
    obc_ = obc::make_obc_strategy(algo);
    obc_algo_ = algo;
  }
  return *obc_;
}

solvers::Solver& EnergyPointContext::greens_solver() {
  if (greens_solver_ == nullptr)
    greens_solver_ =
        solvers::make_solver(solvers::SolverAlgorithm::kRgf, {});
  return *greens_solver_;
}

namespace {

// Thread-local context: every pool worker that sweeps energies keeps its
// own warm workspace, so steady-state points are allocation-free.  Shared
// between the wave-function and Green's-function entry points, so a worker
// interleaving contour and real-axis tasks reuses one workspace.
EnergyPointContext& thread_context() {
  static thread_local EnergyPointContext ctx;
  return ctx;
}

}  // namespace

EnergyPointResult solve_energy_point(const dft::DeviceMatrices& dm,
                                     const dft::LeadBlocks& lead,
                                     const dft::FoldedLead& folded,
                                     double energy,
                                     const EnergyPointOptions& options,
                                     parallel::DevicePool* pool) {
  return solve_energy_point(thread_context(), dm, lead, folded, energy,
                            options, pool);
}

EnergyPointResult solve_energy_point(EnergyPointContext& ctx,
                                     const dft::DeviceMatrices& dm,
                                     const dft::LeadBlocks& lead,
                                     const dft::FoldedLead& folded,
                                     double energy,
                                     const EnergyPointOptions& options,
                                     parallel::DevicePool* pool) {
  if (options.scattering.algorithm != scattering::ScatteringAlgorithm::kNone) {
    // Provider assembly on the classic path: when the model attaches
    // probes, the point becomes a multi-terminal solve over the classic
    // pair plus the probe pseudo-terminals.  When it attaches nothing the
    // assembly is a no-op and the ballistic pipeline below runs unchanged.
    const ContactSet pair = ContactSet::pair(lead, folded, 0.0, 0.0,
                                             options.obc_opts.contact_shift);
    ContactSet assembled;
    if (assemble_providers(pair, dm.h.num_blocks(), options.scattering,
                           assembled)) {
      EnergyPointResult r =
          solve_energy_point(ctx, dm, assembled, energy, options, pool);
      // Map the per-contact densities back onto the classic source/drain
      // slots (providers 0/1 are the classic pair).  Probe-injected charge
      // has no slot in the two-table classic weighting — N-terminal charge
      // consumers use contact_density with density_weight_contacts instead.
      if (!r.contact_density.empty()) {
        r.orbital_density = r.contact_density[0];
        if (options.want_density_r && r.contact_density.size() > 1)
          r.orbital_density_r = r.contact_density[1];
      }
      return r;
    }
  }
  const numeric::WorkspaceScope scope(ctx.workspace);
  EnergyPointResult out;
  out.energy = energy;
  const cplx e{energy, 0.0};
  ctx.a.assign_es_minus_h(e, dm.s, dm.h);
  const BlockTridiag& a = ctx.a;
  const idx sf = a.block_size();

  // --- strategy lookups (registries + deterministic kAuto resolution) -----
  solvers::SolverContext binding;
  binding.pool = pool;
  binding.partitions = options.partitions;
  binding.spatial =
      options.spatial != nullptr && options.spatial->size() > 1
          ? options.spatial
          : nullptr;
  solvers::Solver& solver =
      ctx.solver(options.solver, binding, a.num_blocks(), sf);
  obc::Strategy& obc_strategy = ctx.obc_strategy(options.obc);
  const bool have_injection =
      (obc_strategy.capabilities() & obc::kProvidesInjection) != 0;
  detail::require_injection_support(obc_strategy, have_injection, options);

  // kOverlapPrepare backends (SplitSolve Step 1) start work here — before
  // the boundary conditions exist.
  solver.prepare(a);

  // --- Open boundary conditions (CPU side, overlapping with Step 1) ---
  const detail::FetchedBoundary fetched =
      detail::fetch_boundary(obc_strategy, lead, folded, e, options);
  const obc::Boundary& bnd = fetched.get();
  out.num_propagating = bnd.num_incident;

  // --- Solve: Green's-function columns (for Caroli) + injected waves ---
  // RHS layout: [e_first I (s), e_last I (s), Inj (n_inc)] so one solve
  // covers both formalisms.
  const detail::RhsShape shape =
      detail::rhs_shape(bnd, bnd, have_injection, sf, options);
  if (shape.m == 0) {
    // Nothing to solve at this energy — but cooperative/asynchronous
    // backends may have outstanding work (spatial members' partitions,
    // SplitSolve's Step 1) that must be settled before the next point.
    solver.discard();
    return out;
  }

  detail::build_rhs(ctx.b_top, ctx.b_bot, bnd, bnd, shape, sf);

  CMatrix& x = ctx.x;
  x = solver.solve_boundary(a, bnd.sigma_l, bnd.sigma_r, ctx.b_top, ctx.b_bot);

  detail::finalize_observables(out, a, bnd, bnd, have_injection, shape, x,
                               options);
  return out;
}

namespace {

// Per-contact boundary views: which of a Boundary's two lead orientations a
// contact reads.  A contact on the last block is the classic drain and uses
// the right-extending lead data (sigma_r, inj_r); every other attachment —
// block 0 and interior probes alike — uses the left-extending data
// (sigma_l, inj), the "left-facing probe" convention.
struct ContactView {
  const CMatrix* sigma = nullptr;
  const CMatrix* inj = nullptr;
  const std::vector<double>* inj_flux = nullptr;
  idx n_modes = 0;  ///< incident channel count of this orientation
  idx block = 0;    ///< resolved attachment block
  bool probe = false;  ///< lead-less Büttiker probe (sigma = -i*eta*I)
  double eta = 0.0;    ///< probe dephasing strength (Gamma = 2*eta*I)
};

ContactView contact_view(const obc::Boundary& bnd, idx block, idx nb) {
  ContactView v;
  v.block = block;
  if (block == nb - 1) {
    v.sigma = &bnd.sigma_r;
    v.inj = &bnd.inj_r;
    v.inj_flux = &bnd.inj_r_flux;
    v.n_modes = bnd.num_incident_right;
  } else {
    v.sigma = &bnd.sigma_l;
    v.inj = &bnd.inj;
    v.inj_flux = &bnd.inj_flux;
    v.n_modes = bnd.num_incident;
  }
  return v;
}

// Fetch every contact's boundary, one solve per *distinct* boundary: a
// contact whose lead content + shift matches a lower-indexed contact reuses
// that contact's Boundary (and its cache entry — representative() is the
// canonical cache id).  `fetched` must be reserved to nc: FetchedBoundary
// may own its Boundary by value, so reallocation would dangle the pointers.
void fetch_contact_boundaries(obc::Strategy& strategy,
                              const ContactSet& contacts, cplx energy,
                              const EnergyPointOptions& options,
                              std::vector<detail::FetchedBoundary>& fetched,
                              std::vector<const obc::Boundary*>& bnd) {
  const idx nc = contacts.size();
  fetched.clear();
  fetched.reserve(static_cast<std::size_t>(nc));
  bnd.assign(static_cast<std::size_t>(nc), nullptr);
  for (idx i = 0; i < nc; ++i) {
    // Probes have no lead boundary: their -i*eta*I self-energy is built
    // locally by the caller, and their bnd slot stays null.
    if (contacts[i].is_probe()) continue;
    const idx rep = contacts.representative(i);
    if (rep == i) {
      fetched.push_back(detail::fetch_boundary(
          strategy, contacts[i], static_cast<int>(i), energy, options));
      bnd[static_cast<std::size_t>(i)] = &fetched.back().get();
    } else {
      bnd[static_cast<std::size_t>(i)] = bnd[static_cast<std::size_t>(rep)];
    }
  }
}

// Backend choice for the interior-attachment solve: the resolved algorithm
// must advertise kMultiTerminal.  kAuto falls back deterministically to the
// cheaper of rgf/block_lu under the same cost model the 2-terminal
// resolution uses; an explicitly requested non-capable backend is an error,
// not a silent substitution.
solvers::SolverAlgorithm multi_terminal_algorithm(
    solvers::SolverAlgorithm requested, idx nb, idx s, idx nrhs,
    const solvers::SolverContext& binding) {
  const solvers::SolverAlgorithm resolved =
      solvers::resolve_algorithm(requested, nb, s, nrhs, binding);
  if ((solvers::algorithm_capabilities(resolved) & solvers::kMultiTerminal) !=
      0)
    return resolved;
  if (requested != solvers::SolverAlgorithm::kAuto)
    throw std::invalid_argument(
        std::string("solve_energy_point: solver '") +
        solvers::algorithm_name(resolved) +
        "' does not support interior contact attachments; use rgf, "
        "block_lu, or kAuto");
  const double rgf = solvers::estimate_boundary_solve_seconds(
      solvers::SolverAlgorithm::kRgf, nb, s, nrhs, binding.partitions, 1);
  const double blu = solvers::estimate_boundary_solve_seconds(
      solvers::SolverAlgorithm::kBlockLU, nb, s, nrhs, binding.partitions, 1);
  return rgf <= blu ? solvers::SolverAlgorithm::kRgf
                    : solvers::SolverAlgorithm::kBlockLU;
}

// Route 2: two dissimilar contacts at {0, last}.  Same 2-terminal solve as
// the classic path — only the boundary stage differs (two per-contact
// fetches instead of one shared fetch), so every solver backend works.
EnergyPointResult solve_dissimilar_pair(EnergyPointContext& ctx,
                                        const dft::DeviceMatrices& dm,
                                        const ContactSet& contacts, idx cl,
                                        idx cr, double energy,
                                        const EnergyPointOptions& options,
                                        parallel::DevicePool* pool) {
  const numeric::WorkspaceScope scope(ctx.workspace);
  EnergyPointResult out;
  out.energy = energy;
  const cplx e{energy, 0.0};
  ctx.a.assign_es_minus_h(e, dm.s, dm.h);
  const BlockTridiag& a = ctx.a;
  const idx sf = a.block_size();

  solvers::SolverContext binding;
  binding.pool = pool;
  binding.partitions = options.partitions;
  binding.spatial =
      options.spatial != nullptr && options.spatial->size() > 1
          ? options.spatial
          : nullptr;
  solvers::Solver& solver =
      ctx.solver(options.solver, binding, a.num_blocks(), sf);
  obc::Strategy& obc_strategy = ctx.obc_strategy(options.obc);
  const bool have_injection =
      (obc_strategy.capabilities() & obc::kProvidesInjection) != 0;
  detail::require_injection_support(obc_strategy, have_injection, options);

  solver.prepare(a);

  const detail::FetchedBoundary fl = detail::fetch_boundary(
      obc_strategy, contacts[cl], static_cast<int>(cl), e, options);
  const detail::FetchedBoundary fr = detail::fetch_boundary(
      obc_strategy, contacts[cr], static_cast<int>(cr), e, options);
  const obc::Boundary& left = fl.get();
  const obc::Boundary& right = fr.get();
  out.num_propagating = left.num_incident;

  const detail::RhsShape shape =
      detail::rhs_shape(left, right, have_injection, sf, options);
  if (shape.m == 0) {
    solver.discard();
    return out;
  }

  detail::build_rhs(ctx.b_top, ctx.b_bot, left, right, shape, sf);

  CMatrix& x = ctx.x;
  x = solver.solve_boundary(a, left.sigma_l, right.sigma_r, ctx.b_top,
                            ctx.b_bot);

  detail::finalize_observables(out, a, left, right, have_injection, shape, x,
                               options);
  return out;
}

// Route 3: >= 3 contacts or interior attachment blocks.  One solve against
// nc identity column groups (pairwise Caroli T_pq) plus, when the density
// is requested, every contact's injected modes.  Interface bond currents
// are not defined per-pair here and stay empty — terminal currents come
// from buttiker_currents over the T_pq table.
EnergyPointResult solve_multi_terminal(EnergyPointContext& ctx,
                                       const dft::DeviceMatrices& dm,
                                       const ContactSet& contacts,
                                       double energy,
                                       const EnergyPointOptions& options,
                                       parallel::DevicePool* pool) {
  const numeric::WorkspaceScope scope(ctx.workspace);
  EnergyPointResult out;
  out.energy = energy;
  const cplx e{energy, 0.0};
  ctx.a.assign_es_minus_h(e, dm.s, dm.h);
  const BlockTridiag& a = ctx.a;
  const idx sf = a.block_size();
  const idx nb = a.num_blocks();
  const idx nc = contacts.size();

  solvers::SolverContext binding;
  binding.pool = pool;
  binding.partitions = options.partitions;
  const solvers::SolverAlgorithm algo =
      multi_terminal_algorithm(options.solver, nb, sf, nc * sf, binding);
  solvers::Solver& solver = ctx.solver(algo, binding, nb, sf);
  obc::Strategy& obc_strategy = ctx.obc_strategy(options.obc);
  const bool have_injection =
      (obc_strategy.capabilities() & obc::kProvidesInjection) != 0;
  detail::require_injection_support(obc_strategy, have_injection, options);

  solver.prepare(a);

  std::vector<detail::FetchedBoundary> fetched;
  std::vector<const obc::Boundary*> bnd;
  fetch_contact_boundaries(obc_strategy, contacts, e, options, fetched, bnd);

  // Probe self-energies are built locally — Sigma_p = -i*eta*I on the
  // attachment block, so Gamma_p = i(Sigma - Sigma^H) = 2*eta*I.  The
  // vector is reserved up front: views hold pointers into it.
  std::vector<CMatrix> probe_sigma;
  probe_sigma.reserve(static_cast<std::size_t>(nc));
  std::vector<ContactView> view(static_cast<std::size_t>(nc));
  for (idx p = 0; p < nc; ++p) {
    const Contact& c = contacts[p];
    if (c.is_probe()) {
      probe_sigma.emplace_back(sf, sf);
      CMatrix& s = probe_sigma.back();
      for (idx i = 0; i < sf; ++i) s(i, i) = cplx{0.0, -c.probe_eta};
      ContactView v;
      v.sigma = &s;
      v.block = contacts.resolve_block(p, nb);
      v.probe = true;
      v.eta = c.probe_eta;
      view[static_cast<std::size_t>(p)] = v;
    } else {
      view[static_cast<std::size_t>(p)] =
          contact_view(*bnd[static_cast<std::size_t>(p)],
                       contacts.resolve_block(p, nb), nb);
    }
  }

  // RHS layout: [I at b_0 (sf), ..., I at b_{nc-1} (sf), Inj_0, ...,
  // Inj_{nc-1}].  Identity group q yields the block column G_{:,b_q}, so
  // G_{b_p, b_q} sits at x.block(b_p*sf, q*sf) — the Caroli operand.
  const idx gcols = nc * sf;
  const bool want_inj = have_injection && options.want_density;
  std::vector<idx> inj_off(static_cast<std::size_t>(nc), 0);
  idx m = gcols;
  idx total_modes = 0;
  for (idx p = 0; p < nc; ++p) {
    const ContactView& v = view[static_cast<std::size_t>(p)];
    total_modes += v.n_modes;
    inj_off[static_cast<std::size_t>(p)] = m;
    if (want_inj) m += v.n_modes;
  }
  out.num_propagating = have_injection ? total_modes : 0;

  std::vector<CMatrix> rhs_blocks(static_cast<std::size_t>(nc));
  std::vector<solvers::Attachment> attachments;
  std::vector<solvers::RhsBlock> rhs;
  attachments.reserve(static_cast<std::size_t>(nc));
  rhs.reserve(static_cast<std::size_t>(nc));
  for (idx p = 0; p < nc; ++p) {
    const ContactView& v = view[static_cast<std::size_t>(p)];
    attachments.push_back({v.block, v.sigma});
    CMatrix& rb = rhs_blocks[static_cast<std::size_t>(p)];
    rb.resize(sf, m);
    for (idx i = 0; i < sf; ++i) rb(i, p * sf + i) = cplx{1.0};
    if (want_inj)
      for (idx j = 0; j < v.n_modes; ++j)
        for (idx i = 0; i < sf; ++i)
          rb(i, inj_off[static_cast<std::size_t>(p)] + j) = (*v.inj)(i, j);
    rhs.push_back({v.block, &rb});
  }

  CMatrix& x = ctx.x;
  x = solver.solve_attached(a, attachments, rhs);

  // --- Pairwise Caroli transmission T_pq = Tr[G_p G Gq G^H] ---
  out.t_matrix.assign(static_cast<std::size_t>(nc * nc), 0.0);
  for (idx p = 0; p < nc; ++p) {
    const ContactView& vp = view[static_cast<std::size_t>(p)];
    for (idx q = 0; q < nc; ++q) {
      if (q == p) continue;
      const ContactView& vq = view[static_cast<std::size_t>(q)];
      const CMatrix g_pq = x.block(vp.block * sf, q * sf, sf, sf);
      out.t_matrix[static_cast<std::size_t>(p * nc + q)] =
          caroli_transmission(*vp.sigma, *vq.sigma, g_pq);
    }
  }
  // Scalar fields stay meaningful for mixed consumers: T_01 is the
  // source->drain channel of the classic labeling.
  out.transmission_caroli = out.t_matrix[1];
  out.transmission = out.t_matrix[1];

  // --- Per-contact flux-normalized injected densities ---
  if (want_inj) {
    out.contact_density.assign(static_cast<std::size_t>(nc), {});
    for (idx p = 0; p < nc; ++p) {
      const ContactView& v = view[static_cast<std::size_t>(p)];
      std::vector<double>& d = out.contact_density[static_cast<std::size_t>(p)];
      d.assign(static_cast<std::size_t>(a.dim()), 0.0);
      if (v.probe) {
        // Probe spectral injection from the identity columns already
        // solved: [G Gamma_p G^H]_ii = 2*eta * sum_j |G(i, b_p*sf + j)|^2 —
        // the same normalization the 1/flux mode weights satisfy, so probe
        // and contact densities add coherently in the charge assembly.
        const double g = 2.0 * v.eta;
        for (idx j = 0; j < sf; ++j)
          for (idx i = 0; i < a.dim(); ++i)
            d[static_cast<std::size_t>(i)] +=
                g * std::norm(x(i, p * sf + j));
        continue;
      }
      for (idx j = 0; j < v.n_modes; ++j) {
        const double w =
            1.0 /
            std::max((*v.inj_flux)[static_cast<std::size_t>(j)], 1e-12);
        for (idx i = 0; i < a.dim(); ++i)
          d[static_cast<std::size_t>(i)] +=
              w * std::norm(x(i, inj_off[static_cast<std::size_t>(p)] + j));
      }
    }
  }
  return out;
}

}  // namespace

EnergyPointResult solve_energy_point(EnergyPointContext& ctx,
                                     const dft::DeviceMatrices& dm,
                                     const ContactSet& contacts, double energy,
                                     const EnergyPointOptions& options,
                                     parallel::DevicePool* pool) {
  const idx nb = dm.h.num_blocks();
  {
    ContactSet assembled;
    if (assemble_providers(contacts, nb, options.scattering, assembled))
      return solve_energy_point(ctx, dm, assembled, energy, options, pool);
  }
  contacts.validate(nb);
  if (contacts.classic_pair(nb) && !contacts.has_probes()) {
    const idx cl = contacts.left(nb);
    const idx cr = contacts.right(nb);
    if (contacts.same_boundary(cl, cr)) {
      // Route 1: the symmetric limit runs *literally* the pre-refactor
      // pipeline — one boundary fetch under the classic key, the same
      // sigma_l/sigma_r solve — so it is bit-identical by construction.
      EnergyPointOptions opts = options;
      opts.obc_opts.contact_shift = contacts[cl].shift;
      return solve_energy_point(ctx, dm, *contacts[cl].lead,
                                *contacts[cl].folded, energy, opts, pool);
    }
    return solve_dissimilar_pair(ctx, dm, contacts, cl, cr, energy, options,
                                 pool);
  }
  return solve_multi_terminal(ctx, dm, contacts, energy, options, pool);
}

EnergyPointResult solve_energy_point(const dft::DeviceMatrices& dm,
                                     const ContactSet& contacts, double energy,
                                     const EnergyPointOptions& options,
                                     parallel::DevicePool* pool) {
  return solve_energy_point(thread_context(), dm, contacts, energy, options,
                            pool);
}

std::vector<cplx> solve_greens_diagonal(EnergyPointContext& ctx,
                                        const dft::DeviceMatrices& dm,
                                        const dft::LeadBlocks& lead,
                                        const dft::FoldedLead& folded,
                                        cplx energy,
                                        const EnergyPointOptions& options) {
  if (options.scattering.algorithm != scattering::ScatteringAlgorithm::kNone) {
    // Probe broadening enters G through the same provider assembly as the
    // wave-function path: -i*eta*I folded into each probe block.
    const ContactSet pair = ContactSet::pair(lead, folded, 0.0, 0.0,
                                             options.obc_opts.contact_shift);
    ContactSet assembled;
    if (assemble_providers(pair, dm.h.num_blocks(), options.scattering,
                           assembled))
      return solve_greens_diagonal(ctx, dm, assembled, energy, options);
  }
  const numeric::WorkspaceScope scope(ctx.workspace);
  ctx.a.assign_es_minus_h(energy, dm.s, dm.h);
  BlockTridiag& a = ctx.a;
  const idx sf = a.block_size();

  obc::Strategy& strategy = ctx.obc_strategy(options.obc);
  const detail::FetchedBoundary fetched =
      detail::fetch_boundary(strategy, lead, folded, energy, options);
  const obc::Boundary& bnd = fetched.get();

  // Fold the contact self-energies into the corner blocks; RGF then yields
  // exactly the diagonal blocks of G = (z S - H - Sigma)^{-1}.  No
  // injection columns exist off the real axis (every lead mode decays), so
  // self-energy-only backends are as good as mode-based ones here.
  a.diag(0) -= bnd.sigma_l;
  a.diag(a.num_blocks() - 1) -= bnd.sigma_r;
  const auto blocks = ctx.greens_solver().diagonal_blocks(a);

  std::vector<cplx> out(static_cast<std::size_t>(a.dim()));
  for (idx b = 0; b < a.num_blocks(); ++b)
    for (idx i = 0; i < sf; ++i)
      out[static_cast<std::size_t>(b * sf + i)] =
          blocks[static_cast<std::size_t>(b)](i, i);
  return out;
}

std::vector<cplx> solve_greens_diagonal(const dft::DeviceMatrices& dm,
                                        const dft::LeadBlocks& lead,
                                        const dft::FoldedLead& folded,
                                        cplx energy,
                                        const EnergyPointOptions& options) {
  return solve_greens_diagonal(thread_context(), dm, lead, folded, energy,
                               options);
}

std::vector<cplx> solve_greens_diagonal(EnergyPointContext& ctx,
                                        const dft::DeviceMatrices& dm,
                                        const ContactSet& contacts, cplx energy,
                                        const EnergyPointOptions& options) {
  const idx nb = dm.h.num_blocks();
  {
    ContactSet assembled;
    if (assemble_providers(contacts, nb, options.scattering, assembled))
      return solve_greens_diagonal(ctx, dm, assembled, energy, options);
  }
  contacts.validate(nb);
  if (contacts.classic_pair(nb) && !contacts.has_probes()) {
    const idx cl = contacts.left(nb);
    const idx cr = contacts.right(nb);
    if (contacts.same_boundary(cl, cr)) {
      // Symmetric limit: one fetch, the exact two-contact folds.
      EnergyPointOptions opts = options;
      opts.obc_opts.contact_shift = contacts[cl].shift;
      return solve_greens_diagonal(ctx, dm, *contacts[cl].lead,
                                   *contacts[cl].folded, energy, opts);
    }
  }
  const numeric::WorkspaceScope scope(ctx.workspace);
  ctx.a.assign_es_minus_h(energy, dm.s, dm.h);
  BlockTridiag& a = ctx.a;
  const idx sf = a.block_size();

  obc::Strategy& strategy = ctx.obc_strategy(options.obc);
  std::vector<detail::FetchedBoundary> fetched;
  std::vector<const obc::Boundary*> bnd;
  fetch_contact_boundaries(strategy, contacts, energy, options, fetched, bnd);

  // Fold every contact's self-energy into its attachment block (last block
  // uses the right-extending lead orientation, everything else the
  // left-facing probe convention — same as the wave-function path), then
  // read the diagonal of G = (z S - H - sum_p Sigma_p)^{-1}.
  for (idx p = 0; p < contacts.size(); ++p) {
    const idx bp = contacts.resolve_block(p, nb);
    if (contacts[p].is_probe()) {
      // A - Sigma_p with Sigma_p = -i*eta*I: adds +i*eta to the diagonal.
      CMatrix& d = a.diag(bp);
      const double eta = contacts[p].probe_eta;
      for (idx i = 0; i < a.block_size(); ++i) d(i, i) += cplx{0.0, eta};
      continue;
    }
    const obc::Boundary& b = *bnd[static_cast<std::size_t>(p)];
    a.diag(bp) -= bp == nb - 1 ? b.sigma_r : b.sigma_l;
  }
  const auto blocks = ctx.greens_solver().diagonal_blocks(a);

  std::vector<cplx> out(static_cast<std::size_t>(a.dim()));
  for (idx b = 0; b < a.num_blocks(); ++b)
    for (idx i = 0; i < sf; ++i)
      out[static_cast<std::size_t>(b * sf + i)] =
          blocks[static_cast<std::size_t>(b)](i, i);
  return out;
}

std::vector<cplx> solve_greens_diagonal(const dft::DeviceMatrices& dm,
                                        const ContactSet& contacts, cplx energy,
                                        const EnergyPointOptions& options) {
  return solve_greens_diagonal(thread_context(), dm, contacts, energy, options);
}

std::vector<EnergyPointResult> sweep_energy_points(
    const dft::DeviceMatrices& dm, const dft::LeadBlocks& lead,
    const dft::FoldedLead& folded, const std::vector<double>& energies,
    const EnergyPointOptions& options, parallel::DevicePool* pool,
    parallel::ThreadPool* threads) {
  std::vector<EnergyPointResult> out(energies.size());
  if (threads != nullptr) {
    threads->parallel_for(energies.size(), [&](std::size_t i) {
      out[i] = solve_energy_point(dm, lead, folded, energies[i], options, pool);
    });
  } else {
    for (std::size_t i = 0; i < energies.size(); ++i)
      out[i] = solve_energy_point(dm, lead, folded, energies[i], options, pool);
  }
  return out;
}

void serve_spatial_point(EnergyPointContext& ctx,
                         const dft::DeviceMatrices& dm, double energy,
                         solvers::SolverAlgorithm algo, int partitions,
                         parallel::Comm& spatial) {
  if (!solvers::algorithm_is_cooperative(algo))
    throw std::invalid_argument(
        "serve_spatial_point: backend is not spatially cooperative");
  const numeric::WorkspaceScope scope(ctx.workspace);
  const bool ends_to_root = algo == solvers::SolverAlgorithm::kSpike;
  // Members never see the boundary self-energies: spike pins the end
  // partitions to the leader (the interior ones are identical in A and T),
  // and splitsolve's Step 1 runs on plain A by construction.  So the member
  // assembles A locally and computes immediately — overlapping with the
  // leader's OBC solve, the rank-level version of the paper's CPU/GPU
  // overlap.  A failure *before* any partition was sent must still emit
  // the placeholder messages: the leader counts on receiving them
  // (spike_spatial_member handles mid-stream failures itself).
  try {
    ctx.a.assign_es_minus_h(cplx{energy, 0.0}, dm.s, dm.h);
  } catch (...) {
    solvers::spike_spatial_member_poison(spatial, partitions, ends_to_root);
    throw;
  }
  solvers::spike_spatial_member(ctx.a, spatial, partitions, ends_to_root);
}

double fermi(double e, double mu, double kt) {
  if (kt <= 0.0) return e <= mu ? 1.0 : 0.0;
  const double arg = (e - mu) / kt;
  if (arg > 40.0) return 0.0;
  if (arg < -40.0) return 1.0;
  return 1.0 / (1.0 + std::exp(arg));
}

cplx fermi(cplx e, double mu, double kt) {
  if (kt <= 0.0) return e.real() <= mu ? cplx{1.0} : cplx{0.0};
  const cplx arg = (e - mu) / kt;
  if (arg.real() > 40.0) return cplx{0.0};
  if (arg.real() < -40.0) return cplx{1.0};
  return 1.0 / (1.0 + std::exp(arg));
}

std::vector<cplx> matsubara_poles(double mu, double kt, int n) {
  if (kt <= 0.0)
    throw std::invalid_argument("matsubara_poles: kt must be positive");
  if (n < 0) throw std::invalid_argument("matsubara_poles: n must be >= 0");
  std::vector<cplx> out;
  out.reserve(static_cast<std::size_t>(n));
  const double pi = 3.14159265358979323846;
  for (int p = 0; p < n; ++p)
    out.emplace_back(mu, pi * kt * (2.0 * p + 1.0));
  return out;
}

double landauer_current(const std::vector<double>& energies,
                        const std::vector<double>& transmission, double mu_l,
                        double mu_r, double kt) {
  if (energies.size() != transmission.size() || energies.size() < 2)
    throw std::invalid_argument("landauer_current: bad table");
  // Same trapezoid weights as the charge integration (energy_grid.hpp):
  // half-weight endpoints, 0.5*(de_left + de_right) interior.
  const std::vector<double> w = trapezoid_weights(energies);
  double current = 0.0;
  for (std::size_t i = 0; i < energies.size(); ++i)
    current += w[i] * transmission[i] *
               (fermi(energies[i], mu_l, kt) - fermi(energies[i], mu_r, kt));
  return current;
}

std::vector<double> buttiker_currents(
    const std::vector<double>& energies,
    const std::vector<std::vector<double>>& t_matrix,
    const std::vector<double>& mu, double kt) {
  const std::size_t nc = mu.size();
  if (nc < 2)
    throw std::invalid_argument("buttiker_currents: need >= 2 terminals");
  if (t_matrix.size() != energies.size() || energies.size() < 2)
    throw std::invalid_argument("buttiker_currents: bad table");
  for (const std::vector<double>& t : t_matrix)
    if (t.size() != nc * nc)
      throw std::invalid_argument("buttiker_currents: t_matrix row size");
  const std::vector<double> w = trapezoid_weights(energies);
  std::vector<double> out(nc, 0.0);
  // Antisymmetric pair accumulation: each pair's contribution
  //   c_pq = w [T_pq f_p - T_qp f_q]
  // enters I_p as +c_pq and I_q as -c_pq — the *same* double both times —
  // so sum_p I_p collapses to exact +-c cancellations (current
  // conservation to rounding of the final nc-term sum, which is what the
  // 3-terminal tests and BENCH_contact.json gate on).
  for (std::size_t i = 0; i < energies.size(); ++i) {
    const std::vector<double>& t = t_matrix[i];
    for (std::size_t p = 0; p < nc; ++p) {
      const double fp = fermi(energies[i], mu[p], kt);
      for (std::size_t q = p + 1; q < nc; ++q) {
        const double fq = fermi(energies[i], mu[q], kt);
        const double c = w[i] * (t[p * nc + q] * fp - t[q * nc + p] * fq);
        out[p] += c;
        out[q] -= c;
      }
    }
  }
  return out;
}

std::vector<double> density_per_cell(const std::vector<double>& orbital_density,
                                     idx orbitals_per_cell, idx cells) {
  if (static_cast<idx>(orbital_density.size()) != orbitals_per_cell * cells)
    throw std::invalid_argument("density_per_cell: size mismatch");
  std::vector<double> out(static_cast<std::size_t>(cells), 0.0);
  for (idx c = 0; c < cells; ++c)
    for (idx o = 0; o < orbitals_per_cell; ++o)
      out[static_cast<std::size_t>(c)] +=
          orbital_density[static_cast<std::size_t>(c * orbitals_per_cell + o)];
  return out;
}

std::vector<double> density_per_atom(const std::vector<double>& orbital_density,
                                     const std::vector<idx>& orbital_atom,
                                     idx atoms_per_cell, idx cells, idx fold) {
  const idx orb_cell = static_cast<idx>(orbital_atom.size());
  if (static_cast<idx>(orbital_density.size()) != orb_cell * cells * fold)
    throw std::invalid_argument("density_per_atom: size mismatch");
  std::vector<double> out(
      static_cast<std::size_t>(atoms_per_cell * cells * fold), 0.0);
  for (idx g = 0; g < cells * fold; ++g) {
    for (idx o = 0; o < orb_cell; ++o) {
      const idx atom = g * atoms_per_cell + orbital_atom[static_cast<std::size_t>(o)];
      out[static_cast<std::size_t>(atom)] +=
          orbital_density[static_cast<std::size_t>(g * orb_cell + o)];
    }
  }
  return out;
}

}  // namespace omenx::transport
