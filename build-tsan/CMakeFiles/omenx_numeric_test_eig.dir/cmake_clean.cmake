file(REMOVE_RECURSE
  "CMakeFiles/omenx_numeric_test_eig.dir/tests/numeric/test_eig.cpp.o"
  "CMakeFiles/omenx_numeric_test_eig.dir/tests/numeric/test_eig.cpp.o.d"
  "omenx_numeric_test_eig"
  "omenx_numeric_test_eig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_numeric_test_eig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
