# Empty compiler generated dependencies file for omenx_numeric_test_eig.
# This may be replaced when dependencies are built.
