# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for omenx_numeric_test_eig.
