file(REMOVE_RECURSE
  "CMakeFiles/omenx_numeric_test_blas.dir/tests/numeric/test_blas.cpp.o"
  "CMakeFiles/omenx_numeric_test_blas.dir/tests/numeric/test_blas.cpp.o.d"
  "omenx_numeric_test_blas"
  "omenx_numeric_test_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_numeric_test_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
