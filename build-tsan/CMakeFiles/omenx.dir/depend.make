# Empty dependencies file for omenx.
# This may be replaced when dependencies are built.
