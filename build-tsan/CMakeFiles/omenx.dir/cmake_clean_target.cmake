file(REMOVE_RECURSE
  "libomenx.a"
)
