
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blockmat/block_tridiag.cpp" "CMakeFiles/omenx.dir/src/blockmat/block_tridiag.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/blockmat/block_tridiag.cpp.o.d"
  "/root/repo/src/blockmat/csr.cpp" "CMakeFiles/omenx.dir/src/blockmat/csr.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/blockmat/csr.cpp.o.d"
  "/root/repo/src/dft/basis.cpp" "CMakeFiles/omenx.dir/src/dft/basis.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/dft/basis.cpp.o.d"
  "/root/repo/src/dft/gaussian.cpp" "CMakeFiles/omenx.dir/src/dft/gaussian.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/dft/gaussian.cpp.o.d"
  "/root/repo/src/dft/hamiltonian.cpp" "CMakeFiles/omenx.dir/src/dft/hamiltonian.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/dft/hamiltonian.cpp.o.d"
  "/root/repo/src/lattice/structure.cpp" "CMakeFiles/omenx.dir/src/lattice/structure.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/lattice/structure.cpp.o.d"
  "/root/repo/src/numeric/blas.cpp" "CMakeFiles/omenx.dir/src/numeric/blas.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/numeric/blas.cpp.o.d"
  "/root/repo/src/numeric/cholesky.cpp" "CMakeFiles/omenx.dir/src/numeric/cholesky.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/numeric/cholesky.cpp.o.d"
  "/root/repo/src/numeric/eig.cpp" "CMakeFiles/omenx.dir/src/numeric/eig.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/numeric/eig.cpp.o.d"
  "/root/repo/src/numeric/lu.cpp" "CMakeFiles/omenx.dir/src/numeric/lu.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/numeric/lu.cpp.o.d"
  "/root/repo/src/numeric/qr.cpp" "CMakeFiles/omenx.dir/src/numeric/qr.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/numeric/qr.cpp.o.d"
  "/root/repo/src/obc/beyn.cpp" "CMakeFiles/omenx.dir/src/obc/beyn.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/obc/beyn.cpp.o.d"
  "/root/repo/src/obc/companion.cpp" "CMakeFiles/omenx.dir/src/obc/companion.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/obc/companion.cpp.o.d"
  "/root/repo/src/obc/decimation.cpp" "CMakeFiles/omenx.dir/src/obc/decimation.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/obc/decimation.cpp.o.d"
  "/root/repo/src/obc/feast.cpp" "CMakeFiles/omenx.dir/src/obc/feast.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/obc/feast.cpp.o.d"
  "/root/repo/src/obc/modes.cpp" "CMakeFiles/omenx.dir/src/obc/modes.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/obc/modes.cpp.o.d"
  "/root/repo/src/obc/self_energy.cpp" "CMakeFiles/omenx.dir/src/obc/self_energy.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/obc/self_energy.cpp.o.d"
  "/root/repo/src/obc/shift_invert.cpp" "CMakeFiles/omenx.dir/src/obc/shift_invert.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/obc/shift_invert.cpp.o.d"
  "/root/repo/src/omen/engine.cpp" "CMakeFiles/omenx.dir/src/omen/engine.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/omen/engine.cpp.o.d"
  "/root/repo/src/omen/io.cpp" "CMakeFiles/omenx.dir/src/omen/io.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/omen/io.cpp.o.d"
  "/root/repo/src/omen/scheduler.cpp" "CMakeFiles/omenx.dir/src/omen/scheduler.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/omen/scheduler.cpp.o.d"
  "/root/repo/src/omen/simulator.cpp" "CMakeFiles/omenx.dir/src/omen/simulator.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/omen/simulator.cpp.o.d"
  "/root/repo/src/parallel/comm.cpp" "CMakeFiles/omenx.dir/src/parallel/comm.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/parallel/comm.cpp.o.d"
  "/root/repo/src/parallel/device.cpp" "CMakeFiles/omenx.dir/src/parallel/device.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/parallel/device.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "CMakeFiles/omenx.dir/src/parallel/thread_pool.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/perf/flops.cpp" "CMakeFiles/omenx.dir/src/perf/flops.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/perf/flops.cpp.o.d"
  "/root/repo/src/perf/machine.cpp" "CMakeFiles/omenx.dir/src/perf/machine.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/perf/machine.cpp.o.d"
  "/root/repo/src/perf/power.cpp" "CMakeFiles/omenx.dir/src/perf/power.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/perf/power.cpp.o.d"
  "/root/repo/src/perf/scaling.cpp" "CMakeFiles/omenx.dir/src/perf/scaling.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/perf/scaling.cpp.o.d"
  "/root/repo/src/poisson/poisson1d.cpp" "CMakeFiles/omenx.dir/src/poisson/poisson1d.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/poisson/poisson1d.cpp.o.d"
  "/root/repo/src/poisson/scf.cpp" "CMakeFiles/omenx.dir/src/poisson/scf.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/poisson/scf.cpp.o.d"
  "/root/repo/src/solvers/bcr.cpp" "CMakeFiles/omenx.dir/src/solvers/bcr.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/solvers/bcr.cpp.o.d"
  "/root/repo/src/solvers/block_lu.cpp" "CMakeFiles/omenx.dir/src/solvers/block_lu.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/solvers/block_lu.cpp.o.d"
  "/root/repo/src/solvers/rgf.cpp" "CMakeFiles/omenx.dir/src/solvers/rgf.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/solvers/rgf.cpp.o.d"
  "/root/repo/src/solvers/spike.cpp" "CMakeFiles/omenx.dir/src/solvers/spike.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/solvers/spike.cpp.o.d"
  "/root/repo/src/solvers/splitsolve.cpp" "CMakeFiles/omenx.dir/src/solvers/splitsolve.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/solvers/splitsolve.cpp.o.d"
  "/root/repo/src/transport/bands.cpp" "CMakeFiles/omenx.dir/src/transport/bands.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/transport/bands.cpp.o.d"
  "/root/repo/src/transport/energy_grid.cpp" "CMakeFiles/omenx.dir/src/transport/energy_grid.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/transport/energy_grid.cpp.o.d"
  "/root/repo/src/transport/greens.cpp" "CMakeFiles/omenx.dir/src/transport/greens.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/transport/greens.cpp.o.d"
  "/root/repo/src/transport/transmission.cpp" "CMakeFiles/omenx.dir/src/transport/transmission.cpp.o" "gcc" "CMakeFiles/omenx.dir/src/transport/transmission.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
