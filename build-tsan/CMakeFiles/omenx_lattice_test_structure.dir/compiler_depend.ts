# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for omenx_lattice_test_structure.
