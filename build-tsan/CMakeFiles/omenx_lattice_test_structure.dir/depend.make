# Empty dependencies file for omenx_lattice_test_structure.
# This may be replaced when dependencies are built.
