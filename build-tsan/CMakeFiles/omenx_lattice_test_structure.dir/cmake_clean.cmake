file(REMOVE_RECURSE
  "CMakeFiles/omenx_lattice_test_structure.dir/tests/lattice/test_structure.cpp.o"
  "CMakeFiles/omenx_lattice_test_structure.dir/tests/lattice/test_structure.cpp.o.d"
  "omenx_lattice_test_structure"
  "omenx_lattice_test_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_lattice_test_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
