# Empty compiler generated dependencies file for omenx_blockmat_test_block_tridiag.
# This may be replaced when dependencies are built.
