file(REMOVE_RECURSE
  "CMakeFiles/omenx_blockmat_test_block_tridiag.dir/tests/blockmat/test_block_tridiag.cpp.o"
  "CMakeFiles/omenx_blockmat_test_block_tridiag.dir/tests/blockmat/test_block_tridiag.cpp.o.d"
  "omenx_blockmat_test_block_tridiag"
  "omenx_blockmat_test_block_tridiag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_blockmat_test_block_tridiag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
