# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for omenx_blockmat_test_block_tridiag.
