file(REMOVE_RECURSE
  "CMakeFiles/omenx_numeric_test_qr.dir/tests/numeric/test_qr.cpp.o"
  "CMakeFiles/omenx_numeric_test_qr.dir/tests/numeric/test_qr.cpp.o.d"
  "omenx_numeric_test_qr"
  "omenx_numeric_test_qr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_numeric_test_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
