file(REMOVE_RECURSE
  "CMakeFiles/omenx_numeric_test_matrix.dir/tests/numeric/test_matrix.cpp.o"
  "CMakeFiles/omenx_numeric_test_matrix.dir/tests/numeric/test_matrix.cpp.o.d"
  "omenx_numeric_test_matrix"
  "omenx_numeric_test_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_numeric_test_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
