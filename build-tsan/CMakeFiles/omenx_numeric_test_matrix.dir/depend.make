# Empty dependencies file for omenx_numeric_test_matrix.
# This may be replaced when dependencies are built.
