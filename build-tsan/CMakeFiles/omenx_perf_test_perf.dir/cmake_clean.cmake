file(REMOVE_RECURSE
  "CMakeFiles/omenx_perf_test_perf.dir/tests/perf/test_perf.cpp.o"
  "CMakeFiles/omenx_perf_test_perf.dir/tests/perf/test_perf.cpp.o.d"
  "omenx_perf_test_perf"
  "omenx_perf_test_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_perf_test_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
