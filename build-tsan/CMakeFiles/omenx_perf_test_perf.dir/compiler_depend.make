# Empty compiler generated dependencies file for omenx_perf_test_perf.
# This may be replaced when dependencies are built.
