# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for omenx_perf_test_perf.
