# Empty dependencies file for omenx_omen_test_omen.
# This may be replaced when dependencies are built.
