# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for omenx_omen_test_omen.
