file(REMOVE_RECURSE
  "CMakeFiles/omenx_omen_test_omen.dir/tests/omen/test_omen.cpp.o"
  "CMakeFiles/omenx_omen_test_omen.dir/tests/omen/test_omen.cpp.o.d"
  "omenx_omen_test_omen"
  "omenx_omen_test_omen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_omen_test_omen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
