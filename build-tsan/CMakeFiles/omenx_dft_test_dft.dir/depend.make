# Empty dependencies file for omenx_dft_test_dft.
# This may be replaced when dependencies are built.
