file(REMOVE_RECURSE
  "CMakeFiles/omenx_dft_test_dft.dir/tests/dft/test_dft.cpp.o"
  "CMakeFiles/omenx_dft_test_dft.dir/tests/dft/test_dft.cpp.o.d"
  "omenx_dft_test_dft"
  "omenx_dft_test_dft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_dft_test_dft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
