# Empty dependencies file for omenx_transport_test_transport.
# This may be replaced when dependencies are built.
