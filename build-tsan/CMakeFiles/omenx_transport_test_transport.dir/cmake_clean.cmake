file(REMOVE_RECURSE
  "CMakeFiles/omenx_transport_test_transport.dir/tests/transport/test_transport.cpp.o"
  "CMakeFiles/omenx_transport_test_transport.dir/tests/transport/test_transport.cpp.o.d"
  "omenx_transport_test_transport"
  "omenx_transport_test_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_transport_test_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
