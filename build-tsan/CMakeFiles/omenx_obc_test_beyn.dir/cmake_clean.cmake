file(REMOVE_RECURSE
  "CMakeFiles/omenx_obc_test_beyn.dir/tests/obc/test_beyn.cpp.o"
  "CMakeFiles/omenx_obc_test_beyn.dir/tests/obc/test_beyn.cpp.o.d"
  "omenx_obc_test_beyn"
  "omenx_obc_test_beyn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_obc_test_beyn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
