file(REMOVE_RECURSE
  "CMakeFiles/omenx_numeric_test_cholesky.dir/tests/numeric/test_cholesky.cpp.o"
  "CMakeFiles/omenx_numeric_test_cholesky.dir/tests/numeric/test_cholesky.cpp.o.d"
  "omenx_numeric_test_cholesky"
  "omenx_numeric_test_cholesky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_numeric_test_cholesky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
