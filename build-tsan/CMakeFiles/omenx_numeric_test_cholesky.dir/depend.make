# Empty dependencies file for omenx_numeric_test_cholesky.
# This may be replaced when dependencies are built.
