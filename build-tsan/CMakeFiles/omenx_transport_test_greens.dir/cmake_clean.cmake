file(REMOVE_RECURSE
  "CMakeFiles/omenx_transport_test_greens.dir/tests/transport/test_greens.cpp.o"
  "CMakeFiles/omenx_transport_test_greens.dir/tests/transport/test_greens.cpp.o.d"
  "omenx_transport_test_greens"
  "omenx_transport_test_greens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_transport_test_greens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
