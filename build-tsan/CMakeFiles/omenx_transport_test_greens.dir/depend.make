# Empty dependencies file for omenx_transport_test_greens.
# This may be replaced when dependencies are built.
