file(REMOVE_RECURSE
  "CMakeFiles/omenx_solvers_test_solvers.dir/tests/solvers/test_solvers.cpp.o"
  "CMakeFiles/omenx_solvers_test_solvers.dir/tests/solvers/test_solvers.cpp.o.d"
  "omenx_solvers_test_solvers"
  "omenx_solvers_test_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_solvers_test_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
