# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for omenx_solvers_test_solvers.
