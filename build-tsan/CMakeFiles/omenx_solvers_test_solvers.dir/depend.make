# Empty dependencies file for omenx_solvers_test_solvers.
# This may be replaced when dependencies are built.
