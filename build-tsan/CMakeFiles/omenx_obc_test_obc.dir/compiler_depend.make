# Empty compiler generated dependencies file for omenx_obc_test_obc.
# This may be replaced when dependencies are built.
