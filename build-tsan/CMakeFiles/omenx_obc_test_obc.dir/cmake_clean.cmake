file(REMOVE_RECURSE
  "CMakeFiles/omenx_obc_test_obc.dir/tests/obc/test_obc.cpp.o"
  "CMakeFiles/omenx_obc_test_obc.dir/tests/obc/test_obc.cpp.o.d"
  "omenx_obc_test_obc"
  "omenx_obc_test_obc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_obc_test_obc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
