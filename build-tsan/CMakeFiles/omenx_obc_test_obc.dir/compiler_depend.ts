# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for omenx_obc_test_obc.
