# Empty compiler generated dependencies file for omenx_omen_test_engine.
# This may be replaced when dependencies are built.
