file(REMOVE_RECURSE
  "CMakeFiles/omenx_omen_test_engine.dir/tests/omen/test_engine.cpp.o"
  "CMakeFiles/omenx_omen_test_engine.dir/tests/omen/test_engine.cpp.o.d"
  "omenx_omen_test_engine"
  "omenx_omen_test_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_omen_test_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
