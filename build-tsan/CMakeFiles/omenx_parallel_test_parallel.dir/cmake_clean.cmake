file(REMOVE_RECURSE
  "CMakeFiles/omenx_parallel_test_parallel.dir/tests/parallel/test_parallel.cpp.o"
  "CMakeFiles/omenx_parallel_test_parallel.dir/tests/parallel/test_parallel.cpp.o.d"
  "omenx_parallel_test_parallel"
  "omenx_parallel_test_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_parallel_test_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
