# Empty compiler generated dependencies file for omenx_parallel_test_parallel.
# This may be replaced when dependencies are built.
