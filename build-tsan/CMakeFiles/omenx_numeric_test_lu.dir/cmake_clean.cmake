file(REMOVE_RECURSE
  "CMakeFiles/omenx_numeric_test_lu.dir/tests/numeric/test_lu.cpp.o"
  "CMakeFiles/omenx_numeric_test_lu.dir/tests/numeric/test_lu.cpp.o.d"
  "omenx_numeric_test_lu"
  "omenx_numeric_test_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_numeric_test_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
