# Empty dependencies file for omenx_numeric_test_lu.
# This may be replaced when dependencies are built.
