file(REMOVE_RECURSE
  "CMakeFiles/omenx_poisson_test_poisson.dir/tests/poisson/test_poisson.cpp.o"
  "CMakeFiles/omenx_poisson_test_poisson.dir/tests/poisson/test_poisson.cpp.o.d"
  "omenx_poisson_test_poisson"
  "omenx_poisson_test_poisson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omenx_poisson_test_poisson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
