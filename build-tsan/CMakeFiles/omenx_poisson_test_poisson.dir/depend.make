# Empty dependencies file for omenx_poisson_test_poisson.
# This may be replaced when dependencies are built.
