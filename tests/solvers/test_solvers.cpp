// Solver suite tests: every solver is validated against a dense LU
// reference on random Hermitian-structured block tridiagonal systems, and
// SplitSolve against the explicit (A - BC) system of Fig. 4.
#include <gtest/gtest.h>

#include "blockmat/block_tridiag.hpp"
#include "numeric/blas.hpp"
#include "numeric/lu.hpp"
#include "parallel/device.hpp"
#include "parallel/tracer.hpp"
#include "solvers/bcr.hpp"
#include "solvers/block_lu.hpp"
#include "solvers/rgf.hpp"
#include "solvers/spike.hpp"
#include "solvers/splitsolve.hpp"

namespace bm = omenx::blockmat;
namespace nm = omenx::numeric;
namespace pp = omenx::parallel;
namespace sv = omenx::solvers;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

// Well-conditioned random block tridiagonal system.
bm::BlockTridiag random_system(idx nb, idx s, unsigned seed) {
  bm::BlockTridiag t(nb, s);
  for (idx i = 0; i < nb; ++i) {
    t.diag(i) = nm::random_cmatrix(s, s, seed + static_cast<unsigned>(i));
    for (idx d = 0; d < s; ++d)
      t.diag(i)(d, d) += cplx{6.0, 0.5};
    if (i + 1 < nb) {
      t.upper(i) =
          nm::random_cmatrix(s, s, seed + 1000 + static_cast<unsigned>(i));
      t.lower(i) =
          nm::random_cmatrix(s, s, seed + 2000 + static_cast<unsigned>(i));
    }
  }
  return t;
}

}  // namespace

TEST(BlockLU, MatchesDenseSolve) {
  const auto a = random_system(6, 4, 1);
  const CMatrix b = nm::random_cmatrix(a.dim(), 3, 99);
  const CMatrix x = sv::block_lu_solve(a, b);
  const CMatrix ref = nm::solve(a.to_dense(), b);
  EXPECT_LT(nm::max_abs_diff(x, ref), 1e-9);
}

TEST(BlockLU, SingleBlock) {
  const auto a = random_system(1, 5, 2);
  const CMatrix b = nm::random_cmatrix(5, 2, 98);
  EXPECT_LT(nm::max_abs_diff(sv::block_lu_solve(a, b),
                             nm::solve(a.to_dense(), b)),
            1e-10);
}

TEST(BlockLU, DimensionMismatchThrows) {
  const auto a = random_system(3, 2, 3);
  EXPECT_THROW(sv::block_lu_solve(a, CMatrix(5, 1)), std::invalid_argument);
}

TEST(Bcr, MatchesDenseSolvePowerOfTwo) {
  const auto a = random_system(8, 3, 4);
  const CMatrix b = nm::random_cmatrix(a.dim(), 2, 97);
  EXPECT_LT(nm::max_abs_diff(sv::bcr_solve(a, b), nm::solve(a.to_dense(), b)),
            1e-9);
}

TEST(Bcr, MatchesDenseSolveOddCount) {
  const auto a = random_system(7, 3, 5);
  const CMatrix b = nm::random_cmatrix(a.dim(), 2, 96);
  EXPECT_LT(nm::max_abs_diff(sv::bcr_solve(a, b), nm::solve(a.to_dense(), b)),
            1e-9);
}

TEST(Bcr, SingleAndTwoBlocks) {
  for (idx nb : {1, 2, 3}) {
    const auto a = random_system(nb, 4, 6 + static_cast<unsigned>(nb));
    const CMatrix b = nm::random_cmatrix(a.dim(), 2, 95);
    EXPECT_LT(nm::max_abs_diff(sv::bcr_solve(a, b),
                               nm::solve(a.to_dense(), b)),
              1e-9)
        << "nb=" << nb;
  }
}

TEST(Rgf, FirstColumnMatchesDenseInverse) {
  const auto a = random_system(5, 3, 7);
  const CMatrix ainv = nm::inverse(a.to_dense());
  const CMatrix q = sv::rgf_first_block_column(a);
  const CMatrix expected = ainv.block(0, 0, a.dim(), 3);
  EXPECT_LT(nm::max_abs_diff(q, expected), 1e-9);
}

TEST(Rgf, LastColumnMatchesDenseInverse) {
  const auto a = random_system(5, 3, 8);
  const CMatrix ainv = nm::inverse(a.to_dense());
  const CMatrix q = sv::rgf_last_block_column(a);
  const CMatrix expected = ainv.block(0, a.dim() - 3, a.dim(), 3);
  EXPECT_LT(nm::max_abs_diff(q, expected), 1e-9);
}

TEST(Rgf, BothColumnsStacked) {
  const auto a = random_system(4, 2, 9);
  const CMatrix q = sv::rgf_block_columns(a);
  EXPECT_EQ(q.cols(), 4);
  const CMatrix ainv = nm::inverse(a.to_dense());
  EXPECT_LT(nm::max_abs_diff(q.block(0, 0, a.dim(), 2),
                             ainv.block(0, 0, a.dim(), 2)),
            1e-9);
  EXPECT_LT(nm::max_abs_diff(q.block(0, 2, a.dim(), 2),
                             ainv.block(0, a.dim() - 2, a.dim(), 2)),
            1e-9);
}

TEST(Rgf, DiagonalBlocksMatchDenseInverse) {
  const auto a = random_system(6, 3, 10);
  const CMatrix ainv = nm::inverse(a.to_dense());
  const auto diags = sv::rgf_diagonal_blocks(a);
  ASSERT_EQ(static_cast<idx>(diags.size()), 6);
  for (idx i = 0; i < 6; ++i)
    EXPECT_LT(nm::max_abs_diff(diags[static_cast<std::size_t>(i)],
                               ainv.block(i * 3, i * 3, 3, 3)),
              1e-9)
        << "block " << i;
}

TEST(Spike, PartitionValidation) {
  EXPECT_TRUE(sv::spike_partitioning_valid(8, 1));
  EXPECT_TRUE(sv::spike_partitioning_valid(8, 2));
  EXPECT_TRUE(sv::spike_partitioning_valid(8, 8));
  EXPECT_FALSE(sv::spike_partitioning_valid(8, 3));
  EXPECT_FALSE(sv::spike_partitioning_valid(8, 16));
  EXPECT_FALSE(sv::spike_partitioning_valid(8, 0));
}

class SpikePartitions : public ::testing::TestWithParam<int> {};

TEST_P(SpikePartitions, MatchesSinglePartitionRgf) {
  const int p = GetParam();
  const auto a = random_system(16, 3, 11);
  pp::DevicePool pool(std::max(2, p));
  sv::SpikeOptions opt;
  opt.partitions = p;
  const CMatrix q = sv::spike_block_columns(a, pool, opt);
  const CMatrix ref = sv::rgf_block_columns(a);
  EXPECT_LT(nm::max_abs_diff(q, ref), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, SpikePartitions,
                         ::testing::Values(1, 2, 4, 8));

TEST(Spike, UnevenBlockCountsAcrossPartitions) {
  // 10 blocks over 4 partitions: sizes 2,3,2,3.
  const auto a = random_system(10, 2, 12);
  pp::DevicePool pool(4);
  sv::SpikeOptions opt;
  opt.partitions = 4;
  const CMatrix q = sv::spike_block_columns(a, pool, opt);
  EXPECT_LT(nm::max_abs_diff(q, sv::rgf_block_columns(a)), 1e-8);
}

TEST(Spike, FewerDevicesThanPartitions) {
  const auto a = random_system(8, 2, 13);
  pp::DevicePool pool(2);
  sv::SpikeOptions opt;
  opt.partitions = 4;  // partitions share devices round-robin
  EXPECT_LT(nm::max_abs_diff(sv::spike_block_columns(a, pool, opt),
                             sv::rgf_block_columns(a)),
            1e-8);
}

TEST(Spike, RecordsDeviceTraffic) {
  const auto a = random_system(8, 2, 14);
  pp::DevicePool pool(2);
  sv::SpikeOptions opt;
  opt.partitions = 2;
  sv::spike_block_columns(a, pool, opt);
  EXPECT_GT(pool.device(0).h2d_bytes(), 0u);
}

TEST(SplitSolve, ShermanMorrisonWoodburyIdentity) {
  // x from SplitSolve equals the direct solve of T = A - BC.
  const auto a = random_system(8, 3, 15);
  const idx s = 3;
  CMatrix sigma_l = nm::random_cmatrix(s, s, 50);
  CMatrix sigma_r = nm::random_cmatrix(s, s, 51);
  sigma_l *= cplx{0.3};
  sigma_r *= cplx{0.3};
  const CMatrix b_top = nm::random_cmatrix(s, 2, 52);
  const CMatrix b_bot = nm::random_cmatrix(s, 2, 53);

  pp::DevicePool pool(2);
  sv::SplitSolve ss(a, pool, {.partitions = 2});
  const CMatrix x = ss.solve(sigma_l, sigma_r, b_top, b_bot);

  const auto t = sv::apply_boundary(a, sigma_l, sigma_r);
  const CMatrix b = sv::expand_boundary_rhs(a.dim(), b_top, b_bot);
  const CMatrix ref = nm::solve(t.to_dense(), b);
  EXPECT_LT(nm::max_abs_diff(x, ref), 1e-8);
}

TEST(SplitSolve, MatchesBlockLUAndBcr) {
  const auto a = random_system(8, 2, 16);
  const idx s = 2;
  CMatrix sigma_l = nm::random_cmatrix(s, s, 60);
  CMatrix sigma_r = nm::random_cmatrix(s, s, 61);
  sigma_l *= cplx{0.2};
  sigma_r *= cplx{0.2};
  const CMatrix b_top = nm::random_cmatrix(s, 1, 62);
  const CMatrix b_bot = CMatrix(s, 1);

  pp::DevicePool pool(2);
  sv::SplitSolve ss(a, pool, {.partitions = 1});
  const CMatrix x = ss.solve(sigma_l, sigma_r, b_top, b_bot);

  const auto t = sv::apply_boundary(a, sigma_l, sigma_r);
  const CMatrix b = sv::expand_boundary_rhs(a.dim(), b_top, b_bot);
  EXPECT_LT(nm::max_abs_diff(x, sv::block_lu_solve(t, b)), 1e-8);
  EXPECT_LT(nm::max_abs_diff(x, sv::bcr_solve(t, b)), 1e-8);
}

TEST(SplitSolve, PreprocessingOverlapsWithBoundaryWork) {
  // Step 1 runs without Sigma; Q must be available and correct before any
  // boundary data exists.
  const auto a = random_system(6, 2, 17);
  pp::DevicePool pool(2);
  sv::SplitSolve ss(a, pool, {.partitions = 2});
  const CMatrix& q = ss.preprocessed_q();
  EXPECT_EQ(q.rows(), a.dim());
  EXPECT_EQ(q.cols(), 4);
  EXPECT_LT(nm::max_abs_diff(q, sv::rgf_block_columns(a)), 1e-8);
}

TEST(SplitSolve, ZeroSigmaReducesToOpenSystem) {
  const auto a = random_system(5, 2, 18);
  const CMatrix zero(2, 2);
  const CMatrix b_top = nm::random_cmatrix(2, 1, 70);
  const CMatrix b_bot = nm::random_cmatrix(2, 1, 71);
  pp::DevicePool pool(2);
  sv::SplitSolve ss(a, pool, {});
  const CMatrix x = ss.solve(zero, zero, b_top, b_bot);
  const CMatrix ref =
      nm::solve(a.to_dense(), sv::expand_boundary_rhs(a.dim(), b_top, b_bot));
  EXPECT_LT(nm::max_abs_diff(x, ref), 1e-9);
}

TEST(SplitSolve, InvalidPartitionsThrow) {
  const auto a = random_system(4, 2, 19);
  pp::DevicePool pool(2);
  EXPECT_THROW(sv::SplitSolve(a, pool, {.partitions = 3}),
               std::invalid_argument);
  EXPECT_THROW(sv::SplitSolve(a, pool, {.partitions = 8}),
               std::invalid_argument);
}

TEST(SplitSolve, ManyRhsColumns) {
  const auto a = random_system(6, 3, 20);
  const idx s = 3;
  CMatrix sigma_l = nm::random_cmatrix(s, s, 80) * cplx{0.1};
  CMatrix sigma_r = nm::random_cmatrix(s, s, 81) * cplx{0.1};
  const CMatrix b_top = nm::random_cmatrix(s, 7, 82);
  const CMatrix b_bot = nm::random_cmatrix(s, 7, 83);
  pp::DevicePool pool(4);
  sv::SplitSolve ss(a, pool, {.partitions = 2});
  const CMatrix x = ss.solve(sigma_l, sigma_r, b_top, b_bot);
  const auto t = sv::apply_boundary(a, sigma_l, sigma_r);
  const CMatrix ref =
      nm::solve(t.to_dense(), sv::expand_boundary_rhs(a.dim(), b_top, b_bot));
  EXPECT_LT(nm::max_abs_diff(x, ref), 1e-8);
}

// Property sweep: SplitSolve == dense reference across system shapes and
// partition counts.
struct ShapeParam {
  idx nb;
  idx s;
  int partitions;
};

class SplitSolveShapes : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(SplitSolveShapes, AgreesWithDense) {
  const auto [nb, s, p] = GetParam();
  const auto a = random_system(nb, s, 333 + static_cast<unsigned>(nb * s));
  CMatrix sigma_l = nm::random_cmatrix(s, s, 90) * cplx{0.25};
  CMatrix sigma_r = nm::random_cmatrix(s, s, 91) * cplx{0.25};
  const CMatrix b_top = nm::random_cmatrix(s, 2, 92);
  const CMatrix b_bot = nm::random_cmatrix(s, 2, 93);
  pp::DevicePool pool(std::max(2, p));
  sv::SplitSolve ss(a, pool, {.partitions = p});
  const CMatrix x = ss.solve(sigma_l, sigma_r, b_top, b_bot);
  const auto t = sv::apply_boundary(a, sigma_l, sigma_r);
  const CMatrix ref =
      nm::solve(t.to_dense(), sv::expand_boundary_rhs(a.dim(), b_top, b_bot));
  EXPECT_LT(nm::max_abs_diff(x, ref), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SplitSolveShapes,
    ::testing::Values(ShapeParam{2, 2, 1}, ShapeParam{4, 1, 2},
                      ShapeParam{8, 2, 4}, ShapeParam{12, 3, 4},
                      ShapeParam{16, 2, 8}, ShapeParam{9, 4, 2},
                      ShapeParam{32, 2, 8}));
