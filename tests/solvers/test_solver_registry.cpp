// Strategy-layer tests: the registry, per-backend capabilities, the
// factor/solve and boundary-solve contracts, diagonal blocks from every
// backend, and the deterministic kAuto cost model.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "blockmat/block_tridiag.hpp"
#include "numeric/blas.hpp"
#include "numeric/lu.hpp"
#include "parallel/device.hpp"
#include "perf/machine.hpp"
#include "solvers/solver.hpp"
#include "solvers/spike.hpp"
#include "solvers/splitsolve.hpp"

namespace bm = omenx::blockmat;
namespace nm = omenx::numeric;
namespace pp = omenx::parallel;
namespace sv = omenx::solvers;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

bm::BlockTridiag random_system(idx nb, idx s, unsigned seed) {
  bm::BlockTridiag t(nb, s);
  for (idx i = 0; i < nb; ++i) {
    t.diag(i) = nm::random_cmatrix(s, s, seed + static_cast<unsigned>(i));
    for (idx d = 0; d < s; ++d) t.diag(i)(d, d) += cplx{6.0, 0.5};
    if (i + 1 < nb) {
      t.upper(i) =
          nm::random_cmatrix(s, s, seed + 1000 + static_cast<unsigned>(i));
      t.lower(i) =
          nm::random_cmatrix(s, s, seed + 2000 + static_cast<unsigned>(i));
    }
  }
  return t;
}

const char* kBackends[] = {"rgf", "block_lu", "bcr", "spike", "splitsolve"};

}  // namespace

TEST(SolverRegistry, BuiltinsAreRegistered) {
  const auto names = sv::registered_solvers();
  for (const char* backend : kBackends)
    EXPECT_NE(std::find(names.begin(), names.end(), backend), names.end())
        << backend;
}

TEST(SolverRegistry, MakeByNameAndEnumAgree) {
  pp::DevicePool pool(2);
  sv::SolverContext ctx;
  ctx.pool = &pool;
  for (const auto algo :
       {sv::SolverAlgorithm::kRgf, sv::SolverAlgorithm::kBlockLU,
        sv::SolverAlgorithm::kBcr, sv::SolverAlgorithm::kSpike,
        sv::SolverAlgorithm::kSplitSolve}) {
    const auto by_enum = sv::make_solver(algo, ctx);
    const auto by_name = sv::make_solver(sv::algorithm_name(algo), ctx);
    EXPECT_STREQ(by_enum->name(), by_name->name());
    EXPECT_STREQ(by_enum->name(), sv::algorithm_name(algo));
  }
  EXPECT_THROW(sv::make_solver("no_such_backend"), std::invalid_argument);
  EXPECT_THROW(sv::make_solver(sv::SolverAlgorithm::kAuto),
               std::invalid_argument);
}

TEST(SolverRegistry, UserBackendsCanRegister) {
  // A user backend shadows nothing and resolves by name.
  class Fancy final : public sv::Solver {
   public:
    const char* name() const noexcept override { return "fancy"; }
    unsigned capabilities() const noexcept override {
      return sv::kFactorSolve;
    }
    void factor(const bm::BlockTridiag&) override {}
    CMatrix solve(const CMatrix& b) override { return b; }
  };
  sv::register_solver("fancy", [](const sv::SolverContext&) {
    return std::make_unique<Fancy>();
  });
  const auto names = sv::registered_solvers();
  EXPECT_NE(std::find(names.begin(), names.end(), "fancy"), names.end());
  EXPECT_STREQ(sv::make_solver("fancy")->name(), "fancy");
}

TEST(SolverRegistry, CapabilitiesMatchTheBackendContracts) {
  pp::DevicePool pool(2);
  sv::SolverContext ctx;
  ctx.pool = &pool;
  const auto caps = [&](const char* name) {
    return sv::make_solver(name, ctx)->capabilities();
  };
  EXPECT_TRUE(caps("block_lu") & sv::kFactorSolve);
  EXPECT_TRUE(caps("bcr") & sv::kFactorSolve);
  EXPECT_TRUE(caps("rgf") & sv::kDiagonalBlocksNative);
  EXPECT_FALSE(caps("rgf") & sv::kFactorSolve);
  EXPECT_TRUE(caps("spike") & sv::kSpatialCooperative);
  EXPECT_TRUE(caps("splitsolve") & sv::kOverlapPrepare);
  EXPECT_TRUE(caps("splitsolve") & sv::kSpatialCooperative);
  EXPECT_TRUE(sv::algorithm_is_cooperative(sv::SolverAlgorithm::kSpike));
  EXPECT_TRUE(sv::algorithm_is_cooperative(sv::SolverAlgorithm::kSplitSolve));
  EXPECT_FALSE(sv::algorithm_is_cooperative(sv::SolverAlgorithm::kBlockLU));
}

TEST(SolverRegistry, BoundarySolveParityAcrossAllBackends) {
  // Every backend solves the same boundary problem to the same answer.
  const idx nb = 8, s = 3;
  const auto a = random_system(nb, s, 21);
  CMatrix sigma_l = nm::random_cmatrix(s, s, 30) * cplx{0.3};
  CMatrix sigma_r = nm::random_cmatrix(s, s, 31) * cplx{0.3};
  const CMatrix b_top = nm::random_cmatrix(s, 4, 32);
  const CMatrix b_bot = nm::random_cmatrix(s, 4, 33);

  const auto t = sv::apply_boundary(a, sigma_l, sigma_r);
  const CMatrix ref =
      nm::solve(t.to_dense(), sv::expand_boundary_rhs(a.dim(), b_top, b_bot));

  pp::DevicePool pool(2);
  sv::SolverContext ctx;
  ctx.pool = &pool;
  ctx.partitions = 2;
  for (const char* backend : kBackends) {
    auto solver = sv::make_solver(backend, ctx);
    solver->prepare(a);
    const CMatrix x = solver->solve_boundary(a, sigma_l, sigma_r, b_top, b_bot);
    EXPECT_LT(nm::max_abs_diff(x, ref), 1e-8) << backend;
  }
}

TEST(SolverRegistry, DiagonalBlocksParityAcrossAllBackends) {
  const idx nb = 8, s = 3;
  const auto t = random_system(nb, s, 40);
  const CMatrix ginv = nm::inverse(t.to_dense());

  pp::DevicePool pool(2);
  sv::SolverContext ctx;
  ctx.pool = &pool;
  ctx.partitions = 4;
  for (const char* backend : kBackends) {
    auto solver = sv::make_solver(backend, ctx);
    const auto diag = solver->diagonal_blocks(t);
    ASSERT_EQ(static_cast<idx>(diag.size()), nb) << backend;
    for (idx i = 0; i < nb; ++i)
      EXPECT_LT(nm::max_abs_diff(diag[static_cast<std::size_t>(i)],
                                 ginv.block(i * s, i * s, s, s)),
                1e-8)
          << backend << " block " << i;
  }
}

TEST(SolverRegistry, SpikeDiagonalBlocksAcrossPartitionCounts) {
  const auto t = random_system(13, 2, 50);
  const auto ref = sv::spike_diagonal_blocks(t, 1);  // plain RGF
  for (const int p : {2, 4, 8}) {
    const auto diag = sv::spike_diagonal_blocks(t, p);
    ASSERT_EQ(diag.size(), ref.size()) << "p=" << p;
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_LT(nm::max_abs_diff(diag[i], ref[i]), 1e-8)
          << "p=" << p << " block " << i;
  }
}

TEST(SolverRegistry, FactorOnceSolveMany) {
  const auto t = random_system(6, 3, 60);
  auto solver = sv::make_solver("block_lu");
  solver->factor(t);
  for (unsigned seed : {70u, 71u, 72u}) {
    const CMatrix b = nm::random_cmatrix(t.dim(), 2, seed);
    EXPECT_LT(nm::max_abs_diff(solver->solve(b), nm::solve(t.to_dense(), b)),
              1e-9);
  }
  // rgf exposes no general factor/solve.
  EXPECT_THROW(sv::make_solver("rgf")->factor(t), std::logic_error);
}

TEST(SolverAuto, DeterministicAndConcrete) {
  pp::DevicePool pool(4);
  sv::SolverContext ctx;
  ctx.pool = &pool;
  ctx.partitions = 4;
  for (const idx nb : {4, 16, 64, 256}) {
    for (const idx s : {2, 8, 32}) {
      const auto first = sv::auto_algorithm(nb, s, 2 * s, ctx);
      EXPECT_NE(first, sv::SolverAlgorithm::kAuto);
      for (int rep = 0; rep < 3; ++rep)
        EXPECT_EQ(sv::auto_algorithm(nb, s, 2 * s, ctx), first)
            << "nb=" << nb << " s=" << s;
    }
  }
}

TEST(SolverAuto, RespectsResourceEligibility) {
  // No pool, no spatial communicator: the partitioned backends are out.
  sv::SolverContext serial;
  serial.partitions = 4;
  const auto pick = sv::auto_algorithm(64, 16, 32, serial);
  EXPECT_TRUE(pick == sv::SolverAlgorithm::kBlockLU ||
              pick == sv::SolverAlgorithm::kBcr ||
              pick == sv::SolverAlgorithm::kRgf);

  // Large partitioned system with accelerators: the overlap-friendly
  // partitioned backends win.
  pp::DevicePool pool(4);
  sv::SolverContext parallel;
  parallel.pool = &pool;
  parallel.partitions = 4;
  const auto big = sv::auto_algorithm(512, 32, 64, parallel);
  EXPECT_TRUE(big == sv::SolverAlgorithm::kSplitSolve ||
              big == sv::SolverAlgorithm::kSpike);

  // resolve_algorithm is the identity on concrete requests.
  EXPECT_EQ(sv::resolve_algorithm(sv::SolverAlgorithm::kBcr, 64, 16, 32,
                                  parallel),
            sv::SolverAlgorithm::kBcr);
}

TEST(SolverAuto, CostModelReadsTheHostMachine) {
  // The model must be fed by perf/machine's host spec, which is constant.
  const auto a = omenx::perf::MachineSpec::host();
  const auto b = omenx::perf::MachineSpec::host();
  EXPECT_EQ(a.cpu_gflops, b.cpu_gflops);
  EXPECT_GT(a.cpu_gflops, 0.0);
  EXPECT_EQ(a.name, b.name);
}
