#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "numeric/blas.hpp"
#include "numeric/device_backend.hpp"
#include "numeric/lu.hpp"
#include "parallel/comm.hpp"
#include "parallel/device.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/tracer.hpp"

namespace pp = omenx::parallel;
namespace nm = omenx::numeric;

TEST(ThreadPool, SubmitReturnsValue) {
  pp::ThreadPool pool(4);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  pp::ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  pp::ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  pp::ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(Device, KernelsExecuteInOrder) {
  pp::Device dev(0);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i)
    dev.enqueue("k", [&order, i] { order.push_back(i); });
  dev.synchronize();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Device, MemoryAccountingAndExhaustion) {
  pp::Device dev(1, /*memory_bytes=*/1000);
  {
    auto buf = dev.allocate(600);
    EXPECT_EQ(dev.memory_used(), 600u);
    EXPECT_THROW(dev.allocate(500), std::runtime_error);
    auto buf2 = dev.allocate(400);
    EXPECT_EQ(dev.memory_used(), 1000u);
  }
  EXPECT_EQ(dev.memory_used(), 0u);  // RAII released
}

TEST(Device, MoveSemanticsOfBuffer) {
  pp::Device dev(2, 100);
  pp::DeviceBuffer a = dev.allocate(60);
  pp::DeviceBuffer b = std::move(a);
  EXPECT_EQ(b.bytes(), 60u);
  EXPECT_EQ(dev.memory_used(), 60u);
  b = pp::DeviceBuffer{};
  EXPECT_EQ(dev.memory_used(), 0u);
}

TEST(Device, BufferMoveAssignReleasesTargetExactlyOnce) {
  // Move-assigning over a live buffer must release the target's bytes
  // first — once, not twice — and the moved-from buffer must become empty
  // so its destructor releases nothing.
  pp::Device dev(7, 100);
  pp::DeviceBuffer a = dev.allocate(60);
  pp::DeviceBuffer b = dev.allocate(30);
  EXPECT_EQ(dev.memory_used(), 90u);
  b = std::move(a);  // 30 released, 60 transferred
  EXPECT_EQ(dev.memory_used(), 60u);
  EXPECT_EQ(b.bytes(), 60u);
  EXPECT_EQ(a.bytes(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
  b = pp::DeviceBuffer{};
  EXPECT_EQ(dev.memory_used(), 0u);
  // A second release cannot fire: the accounting stays at zero after the
  // moved-from handles die.
  EXPECT_EQ(dev.memory_used(), 0u);
}

TEST(Device, BufferSelfMoveAssignIsSafe) {
  pp::Device dev(8, 100);
  pp::DeviceBuffer a = dev.allocate(40);
  pp::DeviceBuffer* pa = &a;  // defeat -Wself-move
  a = std::move(*pa);
  EXPECT_EQ(a.bytes(), 40u);
  EXPECT_EQ(dev.memory_used(), 40u);
}

TEST(Device, BackendOomFallsBackToHostAndReleasesEverything) {
  // A DeviceBackend over a pool too small for the batch workspace must
  // degrade to the host path (no throw mid-sweep), produce bit-identical
  // numbers, and leave no reservation behind — each buffer released
  // exactly once.
  pp::DevicePool pool(2, /*memory_bytes=*/256);
  nm::DeviceBackend backend(pool);
  const nm::idx s = 12;  // 2 * 16 * 12^2 bytes per item >> 256 B
  std::vector<nm::CMatrix> as;
  for (unsigned p = 0; p < 4; ++p) {
    as.push_back(nm::random_cmatrix(s, s, 60 + p));
    for (nm::idx i = 0; i < s; ++i) as.back()(i, i) += nm::cplx{12.0, 0.5};
  }
  std::vector<const nm::CMatrix*> ptrs;
  for (const auto& a : as) ptrs.push_back(&a);

  const auto factors = backend.lu_factor_batched(ptrs);
  EXPECT_EQ(backend.host_fallbacks(), 1u);
  ASSERT_EQ(factors.size(), 4u);
  const nm::CMatrix rhs = nm::random_cmatrix(s, 2, 99);
  for (unsigned p = 0; p < 4; ++p) {
    const nm::LUFactor ref(as[p]);
    const nm::CMatrix got = factors[p].solve(rhs);
    const nm::CMatrix want = ref.solve(rhs);
    for (nm::idx i = 0; i < s; ++i)
      for (nm::idx j = 0; j < 2; ++j) {
        EXPECT_EQ(got(i, j).real(), want(i, j).real());
        EXPECT_EQ(got(i, j).imag(), want(i, j).imag());
      }
  }
  EXPECT_EQ(pool.device(0).memory_used(), 0u);
  EXPECT_EQ(pool.device(1).memory_used(), 0u);
}

TEST(Device, TransferAccounting) {
  pp::Device dev(3);
  dev.record_h2d(100);
  dev.record_h2d(50);
  dev.record_d2h(30);
  dev.record_d2d(7);
  EXPECT_EQ(dev.h2d_bytes(), 150u);
  EXPECT_EQ(dev.d2h_bytes(), 30u);
  EXPECT_EQ(dev.d2d_bytes(), 7u);
}

TEST(Device, TracerRecordsKernels) {
  pp::Tracer::global().clear();
  pp::Device dev(4);
  dev.run("P1", [] {});
  dev.run("P2", [] {});
  auto events = pp::Tracer::global().events();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].name, "P1");
  EXPECT_EQ(events[1].name, "P2");
  EXPECT_EQ(events[0].device_id, 4);
  EXPECT_LE(events[0].start_s, events[0].end_s);
}

TEST(DevicePool, ParallelDevicesActuallyOverlap) {
  pp::DevicePool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int d = 0; d < 4; ++d) {
    pool.device(d).enqueue("busy", [&] {
      const int now = ++concurrent;
      int expect = peak.load();
      while (expect < now && !peak.compare_exchange_weak(expect, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      --concurrent;
    });
  }
  pool.synchronize_all();
  EXPECT_GE(peak.load(), 2);  // devices run concurrently, not serialized
}

TEST(Comm, RankAndSize) {
  pp::CommWorld world(5);
  std::vector<std::atomic<int>> seen(5);
  world.run([&](pp::Comm& comm) {
    EXPECT_EQ(comm.size(), 5);
    seen[static_cast<std::size_t>(comm.rank())]++;
  });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Comm, BarrierSynchronizes) {
  pp::CommWorld world(4);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  world.run([&](pp::Comm& comm) {
    phase1++;
    comm.barrier();
    if (phase1.load() != 4) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(Comm, BcastVector) {
  pp::CommWorld world(4);
  world.run([&](pp::Comm& comm) {
    std::vector<double> data;
    if (comm.rank() == 2) data = {1.0, 2.0, 3.0};
    comm.bcast(data, 2);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_DOUBLE_EQ(data[1], 2.0);
  });
}

TEST(Comm, BcastMatrix) {
  pp::CommWorld world(3);
  world.run([&](pp::Comm& comm) {
    nm::CMatrix m;
    if (comm.rank() == 0) m = nm::random_cmatrix(6, 4, 99);
    comm.bcast(m, 0);
    const nm::CMatrix expected = nm::random_cmatrix(6, 4, 99);
    EXPECT_LT(nm::max_abs_diff(m, expected), 1e-15);
  });
}

TEST(Comm, AllreduceSumAndMax) {
  pp::CommWorld world(6);
  world.run([&](pp::Comm& comm) {
    const double r = static_cast<double>(comm.rank());
    EXPECT_DOUBLE_EQ(comm.allreduce(r, pp::Comm::ReduceOp::kSum), 15.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(r, pp::Comm::ReduceOp::kMax), 5.0);
    EXPECT_DOUBLE_EQ(comm.allreduce(r, pp::Comm::ReduceOp::kMin), 0.0);
  });
}

TEST(Comm, SendRecvRoundTrip) {
  pp::CommWorld world(2);
  world.run([&](pp::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(std::vector<double>{3.14, 2.71}, 1, 7);
      auto back = comm.recv(1, 8);
      ASSERT_EQ(back.size(), 1u);
      EXPECT_DOUBLE_EQ(back[0], 6.28);
    } else {
      auto data = comm.recv(0, 7);
      comm.send({data[0] * 2.0}, 0, 8);
    }
  });
}

TEST(Comm, SplitByParity) {
  pp::CommWorld world(6);
  world.run([&](pp::Comm& comm) {
    pp::Comm sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // The sub-communicator must be functional.
    const double total =
        sub.allreduce(static_cast<double>(comm.rank()),
                      pp::Comm::ReduceOp::kSum);
    if (comm.rank() % 2 == 0)
      EXPECT_DOUBLE_EQ(total, 0.0 + 2.0 + 4.0);
    else
      EXPECT_DOUBLE_EQ(total, 1.0 + 3.0 + 5.0);
  });
}

TEST(Comm, RepeatedCollectivesStaySequenced) {
  pp::CommWorld world(4);
  world.run([&](pp::Comm& comm) {
    for (int round = 0; round < 20; ++round) {
      std::vector<double> v{static_cast<double>(round)};
      comm.bcast(v, round % comm.size());
      EXPECT_DOUBLE_EQ(v[0], static_cast<double>(round));
      const double s = comm.allreduce(1.0, pp::Comm::ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(s, 4.0);
    }
  });
}

TEST(Comm, ErrorsPropagateToCaller) {
  pp::CommWorld world(2);
  EXPECT_THROW(world.run([&](pp::Comm& comm) {
                 if (comm.rank() == 1) throw std::runtime_error("rank error");
               }),
               std::runtime_error);
}

TEST(Comm, HierarchicalSplitTwoLevels) {
  // Mimic OMEN: 8 ranks -> 2 momentum groups of 4 -> 2 energy groups of 2.
  pp::CommWorld world(8);
  world.run([&](pp::Comm& comm) {
    pp::Comm momentum = comm.split(comm.rank() / 4, comm.rank());
    EXPECT_EQ(momentum.size(), 4);
    pp::Comm energy = momentum.split(momentum.rank() / 2, momentum.rank());
    EXPECT_EQ(energy.size(), 2);
    const double s = energy.allreduce(1.0, pp::Comm::ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(s, 2.0);
  });
}

TEST(Comm, GathervNonUniformSizes) {
  // Rank r contributes r+1 elements of value r; root 2 sees them
  // concatenated in rank order with the per-rank counts reported.
  pp::CommWorld world(5);
  world.run([&](pp::Comm& comm) {
    const int r = comm.rank();
    std::vector<double> local(static_cast<std::size_t>(r) + 1,
                              static_cast<double>(r));
    std::vector<std::size_t> counts;
    const auto all = comm.gatherv(local, 2, &counts);
    if (r != 2) {
      EXPECT_TRUE(all.empty());
      return;
    }
    ASSERT_EQ(all.size(), 15u);  // 1+2+3+4+5
    ASSERT_EQ(counts.size(), 5u);
    std::size_t at = 0;
    for (int src = 0; src < 5; ++src) {
      EXPECT_EQ(counts[static_cast<std::size_t>(src)],
                static_cast<std::size_t>(src) + 1);
      for (int i = 0; i <= src; ++i)
        EXPECT_DOUBLE_EQ(all[at++], static_cast<double>(src));
    }
  });
}

TEST(Comm, GathervEmptyContribution) {
  pp::CommWorld world(3);
  world.run([&](pp::Comm& comm) {
    std::vector<double> local;
    if (comm.rank() == 1) local = {42.0};
    std::vector<std::size_t> counts;
    const auto all = comm.gatherv(local, 0, &counts);
    if (comm.rank() != 0) return;
    ASSERT_EQ(all.size(), 1u);
    EXPECT_DOUBLE_EQ(all[0], 42.0);
    EXPECT_EQ(counts[0], 0u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 0u);
  });
}

TEST(Comm, ReduceToRootOnly) {
  pp::CommWorld world(4);
  world.run([&](pp::Comm& comm) {
    const double r = static_cast<double>(comm.rank());
    std::vector<double> data{r, -r};
    comm.reduce(data, pp::Comm::ReduceOp::kSum, 2);
    if (comm.rank() == 2) {
      EXPECT_DOUBLE_EQ(data[0], 6.0);
      EXPECT_DOUBLE_EQ(data[1], -6.0);
    } else {
      // Non-root buffers are untouched (MPI_Reduce semantics).
      EXPECT_DOUBLE_EQ(data[0], r);
      EXPECT_DOUBLE_EQ(data[1], -r);
    }
    std::vector<double> mx{r};
    comm.reduce(mx, pp::Comm::ReduceOp::kMax, 0);
    if (comm.rank() == 0) EXPECT_DOUBLE_EQ(mx[0], 3.0);
    std::vector<double> mn{r + 1.0};
    comm.reduce(mn, pp::Comm::ReduceOp::kMin, 0);
    if (comm.rank() == 0) EXPECT_DOUBLE_EQ(mn[0], 1.0);
  });
}

TEST(Comm, RecvStatusReportsSourceAndCount) {
  pp::CommWorld world(4);
  world.run([&](pp::Comm& comm) {
    if (comm.rank() == 0) {
      int seen_from[4] = {0, 0, 0, 0};
      for (int i = 0; i < 3; ++i) {
        pp::Comm::Status st;
        const auto msg = comm.recv(pp::Comm::kAnySource, 5, st);
        ASSERT_GE(st.source, 1);
        ASSERT_LE(st.source, 3);
        ++seen_from[st.source];
        EXPECT_EQ(st.tag, 5);
        EXPECT_EQ(st.count, static_cast<std::size_t>(st.source));
        EXPECT_EQ(msg.size(), st.count);
        EXPECT_DOUBLE_EQ(msg[0], 10.0 * st.source);
      }
      for (int s = 1; s < 4; ++s) EXPECT_EQ(seen_from[s], 1);
    } else {
      std::vector<double> payload(static_cast<std::size_t>(comm.rank()),
                                  10.0 * comm.rank());
      comm.send(payload, 0, 5);
    }
  });
}

TEST(Comm, ProbeAndIprobe) {
  pp::CommWorld world(2);
  world.run([&](pp::Comm& comm) {
    if (comm.rank() == 0) {
      // Nothing pending yet on tag 9.
      EXPECT_FALSE(comm.iprobe(pp::Comm::kAnySource, 9).has_value());
      comm.send(std::vector<double>{1.0}, 1, 8);  // release rank 1
      const auto st = comm.probe(pp::Comm::kAnySource, 9);  // blocking
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(st.count, 2u);
      // probe does not consume: the message is still there.
      const auto again = comm.iprobe(1, 9);
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(again->count, 2u);
      const auto msg = comm.recv(1, 9);
      EXPECT_DOUBLE_EQ(msg[1], 7.0);
      EXPECT_FALSE(comm.iprobe(1, 9).has_value());
    } else {
      comm.recv(0, 8);
      comm.send(std::vector<double>{6.0, 7.0}, 0, 9);
    }
  });
}

TEST(Comm, MatrixSendRecvRoundTrip) {
  pp::CommWorld world(2);
  world.run([&](pp::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_matrix(nm::random_cmatrix(5, 3, 7), 1, 11);
    } else {
      pp::Comm::Status st;
      const nm::CMatrix m = comm.recv_matrix(pp::Comm::kAnySource, 11, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.count, 2u + 2u * 15u);
      const nm::CMatrix expected = nm::random_cmatrix(5, 3, 7);
      EXPECT_LT(nm::max_abs_diff(m, expected), 1e-15);
    }
  });
}

TEST(Comm, CollectivesInterleaveOnParentAndChild) {
  // Stress the tag sequencing when collectives alternate between a parent
  // communicator and its split children (regression for the stale
  // CollectiveSeq deadlock class fixed in PR 1).
  pp::CommWorld world(6);
  world.run([&](pp::Comm& comm) {
    pp::Comm child = comm.split(comm.rank() % 2, comm.rank());
    for (int round = 0; round < 25; ++round) {
      std::vector<double> v{static_cast<double>(round)};
      comm.bcast(v, round % comm.size());
      EXPECT_DOUBLE_EQ(v[0], static_cast<double>(round));
      const double s = child.allreduce(1.0, pp::Comm::ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(s, 3.0);
      const auto g =
          comm.gatherv({static_cast<double>(comm.rank())}, round % 3);
      if (comm.rank() == round % 3) EXPECT_EQ(g.size(), 6u);
      std::vector<double> r{1.0};
      child.reduce(r, pp::Comm::ReduceOp::kSum, 0);
      if (child.rank() == 0) EXPECT_DOUBLE_EQ(r[0], 3.0);
      const auto cg = child.gatherv({1.0, 2.0}, round % child.size());
      if (child.rank() == round % child.size()) EXPECT_EQ(cg.size(), 6u);
    }
  });
}

TEST(DevicePool, SliceRejectsBadPartitionIndex) {
  pp::DevicePool pool(2);
  EXPECT_THROW(pool.slice(-1, 2), std::invalid_argument);
  EXPECT_THROW(pool.slice(2, 2), std::invalid_argument);
  EXPECT_THROW(pool.slice(0, 0), std::invalid_argument);
}

TEST(DevicePool, ZeroDevicePoolThrows) {
  // A pool with no devices cannot exist (and so no slice can ever see an
  // empty view): the constructor refuses up front.
  EXPECT_THROW(pp::DevicePool(0), std::invalid_argument);
  EXPECT_THROW(pp::DevicePool(-3), std::invalid_argument);
}

TEST(DevicePool, SingleDeviceSliceIsAlwaysDeviceZero) {
  pp::DevicePool pool(1);
  pp::DevicePool one = pool.slice(0, 1);
  ASSERT_EQ(one.size(), 1);
  // Exhaustive single-device case: every group of a many-group split maps
  // round-robin back onto device 0.
  for (int part = 0; part < 4; ++part) {
    pp::DevicePool s = one.slice(part, 4);
    ASSERT_EQ(s.size(), 1);
    EXPECT_EQ(s.device(0).id(), 0);
  }
}

TEST(DevicePool, SliceMoreGroupsThanDevicesIsRoundRobin) {
  pp::DevicePool pool(3);
  for (int part = 0; part < 7; ++part) {
    pp::DevicePool s = pool.slice(part, 7);
    ASSERT_EQ(s.size(), 1);
    EXPECT_EQ(s.device(0).id(), part % 3);
  }
}

TEST(DevicePool, SliceUnevenRemainderGoesToFirstGroups) {
  // 5 devices over 3 groups: 2, 2, 1 — remainder devices land in the
  // first groups, partitions are contiguous and disjoint.
  pp::DevicePool pool(5);
  pp::DevicePool s0 = pool.slice(0, 3);
  pp::DevicePool s1 = pool.slice(1, 3);
  pp::DevicePool s2 = pool.slice(2, 3);
  ASSERT_EQ(s0.size(), 2);
  ASSERT_EQ(s1.size(), 2);
  ASSERT_EQ(s2.size(), 1);
  EXPECT_EQ(s0.device(0).id(), 0);
  EXPECT_EQ(s0.device(1).id(), 1);
  EXPECT_EQ(s1.device(0).id(), 2);
  EXPECT_EQ(s1.device(1).id(), 3);
  EXPECT_EQ(s2.device(0).id(), 4);
}

TEST(DevicePool, SliceOfSliceComposesOverContiguousShare) {
  // The engine hands an energy group a contiguous share, and the group may
  // re-slice it (nested hierarchy levels).  4 devices -> 2 groups of 2 ->
  // 2 sub-slices of 1 each.
  pp::DevicePool pool(4);
  pp::DevicePool half = pool.slice(1, 2);  // devices {2, 3}
  ASSERT_EQ(half.size(), 2);
  pp::DevicePool quarter = half.slice(1, 2);
  ASSERT_EQ(quarter.size(), 1);
  EXPECT_EQ(quarter.device(0).id(), 3);
}
