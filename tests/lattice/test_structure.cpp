#include "lattice/structure.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace lt = omenx::lattice;
using lt::idx;

TEST(Structure, NanowireAtomsInsideCircle) {
  const auto s = lt::make_nanowire(2.2, 10);
  EXPECT_GT(s.atoms_per_cell(), 0);
  EXPECT_EQ(s.num_cells, 10);
  EXPECT_EQ(s.periodicity, lt::Periodicity::kNone);
  const double r = 1.1;
  for (const auto& a : s.cell_atoms) {
    EXPECT_EQ(a.species, lt::Species::kSi);
    EXPECT_LE(a.position[1] * a.position[1] + a.position[2] * a.position[2],
              r * r + 1e-12);
    EXPECT_GE(a.position[0], 0.0);
    EXPECT_LT(a.position[0], s.cell_length);
  }
}

TEST(Structure, NanowireAtomCountScalesWithArea) {
  const auto small = lt::make_nanowire(1.2, 2);
  const auto large = lt::make_nanowire(2.4, 2);
  // 2x diameter => ~4x cross-section atoms.
  const double ratio = static_cast<double>(large.atoms_per_cell()) /
                       static_cast<double>(small.atoms_per_cell());
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.0);
}

TEST(Structure, NanowireDiameterFromPaperHasAtoms) {
  // The 55488-atom NWFET has d=3.2 nm; per-cell count x cells should be in
  // the right ballpark (paper: 55488 atoms over ~192 cells of 0.5431 nm
  // => ~289 atoms/cell).
  const auto s = lt::make_nanowire(3.2, 4);
  EXPECT_GT(s.atoms_per_cell(), 200);
  EXPECT_LT(s.atoms_per_cell(), 400);
}

TEST(Structure, OrbitalCounting) {
  EXPECT_EQ(lt::orbitals_per_atom(lt::Species::kSi), 12);
  const auto s = lt::make_nanowire(1.0, 3);
  EXPECT_EQ(s.orbitals_per_cell(), 12 * s.atoms_per_cell());
  EXPECT_EQ(s.total_orbitals(), s.orbitals_per_cell() * 3);
  EXPECT_EQ(s.total_atoms(), s.atoms_per_cell() * 3);
}

TEST(Structure, UtbConfinedInYPeriodicInZ) {
  const auto s = lt::make_utb(2.0, 6);
  EXPECT_EQ(s.periodicity, lt::Periodicity::kZ);
  EXPECT_DOUBLE_EQ(s.z_period, lt::kSiLatticeConstant);
  for (const auto& a : s.cell_atoms) {
    EXPECT_GE(a.position[1], -1.0);
    EXPECT_LT(a.position[1], 1.0);
    EXPECT_GE(a.position[2], 0.0);
    EXPECT_LT(a.position[2], s.z_period + 1e-12);
  }
}

TEST(Structure, UtbThicknessScaling) {
  const auto thin = lt::make_utb(1.0, 2);
  const auto thick = lt::make_utb(3.0, 2);
  EXPECT_GT(thick.atoms_per_cell(), 2 * thin.atoms_per_cell());
}

TEST(Structure, InvalidGeometryThrows) {
  EXPECT_THROW(lt::make_nanowire(-1.0, 4), std::invalid_argument);
  EXPECT_THROW(lt::make_nanowire(2.0, 0), std::invalid_argument);
  EXPECT_THROW(lt::make_utb(0.0, 4), std::invalid_argument);
}

TEST(Structure, VolumeExpansionMonotoneAndCalibrated) {
  EXPECT_DOUBLE_EQ(lt::volume_expansion(0.0), 0.0);
  double prev = -1.0;
  for (double c = 0.0; c <= 1000.0; c += 50.0) {
    const double v = lt::volume_expansion(c);
    EXPECT_GT(v, prev);
    prev = v;
  }
  // Paper Fig. 1(e): roughly +130-150% at C = 1000 mAh/g.
  EXPECT_NEAR(lt::volume_expansion(1000.0), 1.4, 0.2);
  EXPECT_THROW(lt::volume_expansion(-5.0), std::invalid_argument);
}

TEST(Structure, SnoAnodeSpecies) {
  const auto s = lt::make_sno_anode(8, 2, 1000.0);
  EXPECT_EQ(s.num_cells, 8);
  bool has_sn = false, has_o = false, has_li = false;
  for (const auto& a : s.cell_atoms) {
    has_sn |= a.species == lt::Species::kSn;
    has_o |= a.species == lt::Species::kO;
    has_li |= a.species == lt::Species::kLi;
  }
  EXPECT_TRUE(has_sn);
  EXPECT_TRUE(has_o);
  EXPECT_TRUE(has_li);
  // Unlithiated anode has no Li.
  const auto dry = lt::make_sno_anode(8, 0, 0.0);
  for (const auto& a : dry.cell_atoms) EXPECT_NE(a.species, lt::Species::kLi);
}

TEST(Structure, SnoLatticeExpandsWithCapacity) {
  const auto a = lt::make_sno_anode(4, 2, 0.0);
  const auto b = lt::make_sno_anode(4, 2, 1000.0);
  EXPECT_GT(b.cell_length, a.cell_length * 1.2);
}

TEST(Structure, RegionsFromNanometers) {
  const auto r = lt::make_regions(20.0, 10.0, 20.0, lt::kSiLatticeConstant);
  EXPECT_EQ(r.source_cells, 37);  // 20 / 0.5431 rounded
  EXPECT_EQ(r.gate_cells, 18);
  EXPECT_EQ(r.total(), 37 + 18 + 37);
  EXPECT_THROW(lt::make_regions(1.0, 1.0, 1.0, 0.0), std::invalid_argument);
}
