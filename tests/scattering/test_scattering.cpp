// Tests of the composable scattering::SelfEnergy layer and its first model,
// the Buettiker dephasing probe:
//   * registry round-trips, capability bits, boundary-key neutrality;
//   * probe-site assembly (ladder stride, explicit blocks, eta <= 0 off);
//   * the inner Newton loop (tune_probe_potentials) — convergence, bounds,
//     zero-net-current condition, input validation;
//   * linear-response probe elimination against the analytic 3-terminal
//     closed form;
//   * ballistic parity — buttiker_probe at eta = 0 must reproduce the
//     kNone pipeline *bit-identically* (EXPECT_EQ, no tolerance), cache
//     traffic included;
//   * dissipative end-to-end sweeps through the Simulator and engine:
//     probe-current leak, conductance degradation with eta, and
//     bit-identity across world sizes {1, 2, 4} with stealing on/off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "omen/simulator.hpp"
#include "scattering/self_energy.hpp"
#include "transport/bands.hpp"
#include "transport/contacts.hpp"

namespace lt = omenx::lattice;
namespace om = omenx::omen;
namespace sc = omenx::scattering;
namespace tr = omenx::transport;
using omenx::numeric::idx;

namespace {

lt::Structure chain_structure(idx cells, double cell_length = 0.5,
                              bool periodic = false) {
  lt::Structure s;
  s.cell_atoms = {{lt::Species::kLi, {0.0, 0.0, 0.0}}};
  s.cell_length = cell_length;
  s.num_cells = cells;
  s.name = "scattering test chain";
  if (periodic) s.periodicity = lt::Periodicity::kZ;
  return s;
}

om::SimulationConfig chain_config(idx cells, idx nk = 1) {
  om::SimulationConfig cfg;
  cfg.structure = chain_structure(cells, 0.5, nk > 1);
  cfg.build.cutoff_nm = 1.0;  // NBW = 2: folded supercells
  cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = tr::SolverAlgorithm::kBlockLU;
  cfg.num_k = nk;
  cfg.num_devices = 2;
  return cfg;
}

sc::Spec buttiker(double eta, std::vector<idx> blocks = {}, idx stride = 1) {
  sc::Spec spec;
  spec.algorithm = sc::ScatteringAlgorithm::kButtikerProbe;
  spec.options.buttiker.eta = eta;
  spec.options.buttiker.blocks = std::move(blocks);
  spec.options.buttiker.stride = stride;
  return spec;
}

std::vector<double> band_grid(om::Simulator& sim, double step = 0.17) {
  const auto win = tr::band_window(sim.bands(9));
  std::vector<double> grid;
  for (double e = win.emin + 0.05; e < win.emax; e += step) grid.push_back(e);
  return grid;
}

}  // namespace

// --------------------------------------------------------------- registry --

TEST(ScatteringRegistry, BuiltinsRoundTrip) {
  const auto names = sc::registered_scattering_models();
  EXPECT_NE(std::find(names.begin(), names.end(), "none"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "buttiker_probe"),
            names.end());

  for (const auto algo : {sc::ScatteringAlgorithm::kNone,
                          sc::ScatteringAlgorithm::kButtikerProbe}) {
    const auto by_enum = sc::make_scattering_model(algo);
    const auto by_name =
        sc::make_scattering_model(sc::scattering_algorithm_name(algo));
    EXPECT_STREQ(by_enum->name(), by_name->name());
    EXPECT_EQ(by_enum->capabilities(),
              sc::scattering_algorithm_capabilities(algo));
  }
  EXPECT_THROW(sc::make_scattering_model("annihilation_operator"),
               std::invalid_argument);
}

TEST(ScatteringRegistry, CapabilityBits) {
  EXPECT_EQ(
      sc::scattering_algorithm_capabilities(sc::ScatteringAlgorithm::kNone),
      0u);
  const unsigned probe_caps = sc::scattering_algorithm_capabilities(
      sc::ScatteringAlgorithm::kButtikerProbe);
  EXPECT_TRUE(probe_caps & sc::kAddsTerminals);
  EXPECT_TRUE(probe_caps & sc::kElastic);
  EXPECT_TRUE(probe_caps & sc::kNeedsProbeTuning);
  // Probes live on interior blocks: no built-in touches a contact boundary,
  // so cached lead solves are shared with the ballistic runs.
  EXPECT_FALSE(probe_caps & sc::kModifiesBoundaries);
  EXPECT_EQ(sc::boundary_key_component(buttiker(0.1)), 0u);
  EXPECT_EQ(sc::boundary_key_component(sc::Spec{}), 0u);
}

TEST(ScatteringRegistry, CustomRegistration) {
  class Silent final : public sc::SelfEnergy {
   public:
    const char* name() const noexcept override { return "silent"; }
    unsigned capabilities() const noexcept override { return 0; }
    std::vector<sc::ProbeSite> probes(
        idx, const std::vector<idx>&,
        const sc::ScatteringOptions&) const override {
      return {};
    }
  };
  sc::register_scattering_model("silent",
                                [] { return std::make_unique<Silent>(); });
  const auto model = sc::make_scattering_model("silent");
  EXPECT_STREQ(model->name(), "silent");
  EXPECT_TRUE(model->probes(8, {0, 7}, {}).empty());
}

// --------------------------------------------------------- probe assembly --

TEST(ProbeAssembly, NoneAndDisabledModelsAttachNothing) {
  EXPECT_TRUE(sc::assemble_probes(sc::Spec{}, 8, {0, 7}).empty());
  EXPECT_TRUE(sc::assemble_probes(buttiker(0.0), 8, {0, 7}).empty());
  EXPECT_TRUE(sc::assemble_probes(buttiker(-1.0), 8, {0, 7}).empty());
}

TEST(ProbeAssembly, LadderSkipsOccupiedBlocks) {
  const auto sites = sc::assemble_probes(buttiker(0.05), 6, {0, 5});
  ASSERT_EQ(sites.size(), 4u);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    EXPECT_EQ(sites[i].block, static_cast<idx>(i + 1));
    EXPECT_EQ(sites[i].eta, 0.05);
  }
}

TEST(ProbeAssembly, StrideThinsTheLadder) {
  const auto sites = sc::assemble_probes(buttiker(0.1, {}, 2), 8, {0, 7});
  ASSERT_EQ(sites.size(), 3u);
  EXPECT_EQ(sites[0].block, 1);
  EXPECT_EQ(sites[1].block, 3);
  EXPECT_EQ(sites[2].block, 5);
}

TEST(ProbeAssembly, ExplicitBlocksAreTakenVerbatim) {
  const auto sites = sc::assemble_probes(buttiker(0.2, {2, 5}), 8, {0, 7});
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].block, 2);
  EXPECT_EQ(sites[1].block, 5);
}

// ------------------------------------------------------------ probe tuning --

namespace {

// Constant-in-energy 3-terminal table: terminals {0, 2} real, 1 a probe.
// T_01 = T_10 = a, T_12 = T_21 = b, T_02 = T_20 = c.
std::vector<std::vector<double>> three_terminal_table(std::size_t ne, double a,
                                                      double b, double c) {
  const std::vector<double> t{0.0, a, c,  //
                              a, 0.0, b,  //
                              c, b, 0.0};
  return std::vector<std::vector<double>>(ne, t);
}

double probe_current(const std::vector<double>& energies,
                     const std::vector<std::vector<double>>& t,
                     const std::vector<double>& mu, double kt,
                     std::size_t p) {
  return tr::buttiker_currents(energies, t, mu, kt)[p];
}

}  // namespace

TEST(ProbeTuning, DrivesProbeCurrentToZero) {
  std::vector<double> energies;
  for (double e = -1.0; e <= 1.0; e += 0.05) energies.push_back(e);
  const auto t = three_terminal_table(energies.size(), 0.8, 0.5, 0.3);
  const std::vector<double> mu0{0.25, 0.0, -0.25};
  const std::vector<bool> is_probe{false, true, false};
  const double kt = 0.025;

  const auto res = sc::tune_probe_potentials(energies, t, mu0, is_probe, kt);
  EXPECT_TRUE(res.converged);
  EXPECT_GE(res.iterations, 1);
  EXPECT_LE(res.max_residual, 1e-10);
  // Real terminals untouched, probe inside the bias window.
  EXPECT_EQ(res.mu[0], mu0[0]);
  EXPECT_EQ(res.mu[2], mu0[2]);
  EXPECT_GT(res.mu[1], mu0[2]);
  EXPECT_LT(res.mu[1], mu0[0]);
  // The tuned potential really zeroes the net probe current, and current
  // conservation then forces I_0 = -I_2.
  const auto currents = tr::buttiker_currents(energies, t, res.mu, kt);
  const double scale = std::max(std::abs(currents[0]), std::abs(currents[2]));
  EXPECT_GT(scale, 1e-6);
  EXPECT_LE(std::abs(currents[1]), 1e-10 * scale);
  EXPECT_NEAR(currents[0], -currents[2], 1e-10 * scale);
}

TEST(ProbeTuning, AsymmetricCouplingPullsProbeTowardStrongSide) {
  // A probe coupled 4x harder to the source floats near the source mu.
  std::vector<double> energies;
  for (double e = -1.0; e <= 1.0; e += 0.05) energies.push_back(e);
  const auto t = three_terminal_table(energies.size(), 0.8, 0.2, 0.0);
  const std::vector<double> mu0{0.2, 0.0, -0.2};
  const auto res = sc::tune_probe_potentials(energies, t, mu0,
                                             {false, true, false}, 0.025);
  ASSERT_TRUE(res.converged);
  EXPECT_GT(res.mu[1], 0.0);  // closer to the source than the midpoint
}

TEST(ProbeTuning, NoProbesReturnsInputConverged) {
  const std::vector<double> energies{0.0, 0.1};
  const auto t = three_terminal_table(2, 0.5, 0.5, 0.5);
  const std::vector<double> mu0{0.1, 0.0, -0.1};
  const auto res = sc::tune_probe_potentials(energies, t, mu0,
                                             {false, false, false}, 0.025);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
  EXPECT_EQ(res.mu, mu0);
}

TEST(ProbeTuning, RejectsBadInputs) {
  const std::vector<double> energies{0.0, 0.1};
  const auto t = three_terminal_table(2, 0.5, 0.5, 0.5);
  const std::vector<double> mu{0.1, 0.0, -0.1};
  const std::vector<bool> probes{false, true, false};
  // kt <= 0: the Fermi derivative the Newton Jacobian needs vanishes.
  EXPECT_THROW(sc::tune_probe_potentials(energies, t, mu, probes, 0.0),
               std::invalid_argument);
  EXPECT_THROW(sc::tune_probe_potentials(energies, t, mu, probes, -1.0),
               std::invalid_argument);
  // Shape mismatches.
  EXPECT_THROW(sc::tune_probe_potentials(energies, t, {0.1, 0.0}, probes,
                                         0.025),
               std::invalid_argument);
  EXPECT_THROW(sc::tune_probe_potentials(energies, t, mu, {false, true},
                                         0.025),
               std::invalid_argument);
  EXPECT_THROW(
      sc::tune_probe_potentials({0.0}, t, mu, probes, 0.025),
      std::invalid_argument);
}

// ------------------------------------------------------- probe elimination --

TEST(ProbeElimination, MatchesThreeTerminalClosedForm) {
  // One probe (index 1) symmetrically coupled: W_PP = T_10 + T_12 = a + b,
  // so T_eff_02 = c + a*b / (a + b).
  const double a = 0.7, b = 0.4, c = 0.25;
  const std::vector<double> t{0.0, a, c,  //
                              a, 0.0, b,  //
                              c, b, 0.0};
  const auto eff = sc::eliminate_probes(t, {false, true, false});
  ASSERT_EQ(eff.size(), 4u);
  EXPECT_EQ(eff[0], 0.0);
  EXPECT_NEAR(eff[1], c + a * b / (a + b), 1e-14);
  EXPECT_NEAR(eff[2], c + a * b / (a + b), 1e-14);
  EXPECT_EQ(eff[3], 0.0);
}

TEST(ProbeElimination, NoProbesIsIdentity) {
  const std::vector<double> t{0.0, 0.3, 0.3, 0.0};
  EXPECT_EQ(sc::eliminate_probes(t, {false, false}), t);
}

TEST(ProbeElimination, ProbesOnlyRedistribute) {
  // The effective coherent + probe-mediated transmission never drops below
  // the direct coherent part.
  const std::vector<double> t{0.0, 0.5, 0.2, 0.1,  //
                              0.5, 0.0, 0.3, 0.4,  //
                              0.2, 0.3, 0.0, 0.6,  //
                              0.1, 0.4, 0.6, 0.0};
  const auto eff = sc::eliminate_probes(t, {false, true, true, false});
  ASSERT_EQ(eff.size(), 4u);
  EXPECT_GE(eff[1], 0.1);  // direct T_03 was 0.1
  EXPECT_GE(eff[2], 0.1);
}

// -------------------------------------------------------- ballistic parity --

TEST(ScatteringPipeline, EtaZeroIsBitIdenticalToBallistic) {
  // The acceptance bar of the refactor: buttiker_probe at eta = 0 attaches
  // nothing, and the pipeline must route through the *identical* ballistic
  // arithmetic — same doubles, same boundary-cache traffic.
  om::Simulator reference(chain_config(12));
  const auto grid = band_grid(reference, 0.11);
  ASSERT_GE(grid.size(), 4u);
  std::vector<double> barrier(12, 0.0);
  barrier[5] = barrier[6] = 0.5;
  const auto base = reference.transmission_spectrum(grid, &barrier);
  const auto base_cache = reference.boundary_cache_stats();

  om::Simulator sim(chain_config(12));
  sim.set_scattering(buttiker(0.0));
  EXPECT_TRUE(sim.probe_sites().empty());
  const auto sp = sim.transmission_spectrum(grid, &barrier);
  const auto cache = sim.boundary_cache_stats();
  ASSERT_EQ(sp.transmission.size(), base.transmission.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(sp.transmission[i], base.transmission[i]) << "point " << i;
    EXPECT_EQ(sp.propagating[i], base.propagating[i]) << "point " << i;
  }
  // Same cache keys, same traffic: eta = 0 must not perturb the caching.
  EXPECT_EQ(cache.hits, base_cache.hits);
  EXPECT_EQ(cache.misses, base_cache.misses);

  // Charge too, through the same scalar-mu wrapper.
  const auto win = tr::band_window(reference.bands(9));
  const double mid = 0.5 * (win.emin + win.emax);
  std::vector<double> cgrid;
  for (double e = mid - 0.4; e <= mid + 0.4; e += 0.08) cgrid.push_back(e);
  const auto q_base = reference.charge_density(cgrid, mid, mid - 0.2, &barrier);
  const auto q = sim.charge_density(cgrid, mid, mid - 0.2, &barrier);
  ASSERT_EQ(q.size(), q_base.size());
  for (std::size_t c = 0; c < q.size(); ++c)
    EXPECT_EQ(q[c], q_base[c]) << "cell " << c;
}

TEST(ScatteringPipeline, ProbeSweepsCacheLeadBoundaries) {
  // Probe self-energies live on interior blocks and carry no lead: only the
  // two real contacts solve boundaries, their keys do not depend on eta
  // (boundary_key_component == 0), and an identical re-sweep — or a sweep
  // at a *different* eta — is served entirely from the cache.
  om::Simulator sim(chain_config(12));
  sim.set_scattering(buttiker(0.05, {2}));
  ASSERT_EQ(sim.probe_sites().size(), 1u);
  const auto grid = band_grid(sim, 0.11);
  (void)sim.transmission_spectrum(grid);

  for (const double eta : {0.05, 0.2}) {
    sim.set_scattering(buttiker(eta, {2}));
    (void)sim.transmission_spectrum(grid);
    const auto stats = sim.last_sweep_stats();
    std::uint64_t hits = 0, misses = 0;
    for (const auto& cs : stats.contact_cache_stats) {
      hits += cs.hits;
      misses += cs.misses;
    }
    EXPECT_EQ(misses, 0u) << "eta = " << eta
                          << ": dissipation must not re-solve lead boundaries";
    EXPECT_GT(hits, 0u);
  }
}

// ------------------------------------------------------- dissipative sweeps --

TEST(ScatteringPipeline, ProbesWidenTheTerminalSetAndTmatrix) {
  om::Simulator sim(chain_config(12));
  sim.set_scattering(buttiker(0.08, {1, 3}));
  ASSERT_EQ(sim.probe_sites().size(), 2u);
  const auto grid = band_grid(sim, 0.11);
  const auto sp = sim.transmission_spectrum(grid);
  ASSERT_EQ(sp.t_matrix.size(), grid.size());
  for (const auto& row : sp.t_matrix) {
    ASSERT_EQ(row.size(), 16u);  // (2 contacts + 2 probes)^2
    for (const double t : row) EXPECT_GE(t, -1e-10);
  }
}

TEST(ScatteringPipeline, TunedProbesLeakNothingAndConserveCurrent) {
  om::Simulator sim(chain_config(12));
  sim.set_scattering(buttiker(0.1, {2}));
  const auto grid = band_grid(sim, 0.11);
  const auto win = tr::band_window(sim.bands(9));
  const double mid = 0.5 * (win.emin + win.emax);

  const auto currents =
      sim.terminal_currents(grid, {mid + 0.1, mid - 0.1}, nullptr);
  ASSERT_EQ(currents.size(), 2u);  // probe rows are sliced off
  const auto& tune = sim.last_probe_tune();
  EXPECT_TRUE(tune.converged);
  EXPECT_LE(tune.max_residual, 1e-10);
  ASSERT_EQ(tune.mu.size(), 3u);
  EXPECT_GT(tune.mu[2], mid - 0.1);
  EXPECT_LT(tune.mu[2], mid + 0.1);
  // Probe current is zero, so the two real terminals balance exactly.
  const double scale =
      std::max(std::abs(currents[0]), std::abs(currents[1]));
  EXPECT_GT(scale, 1e-9);
  EXPECT_NEAR(currents[0], -currents[1], 1e-10 * std::max(1.0, scale));
  // The stats carry the inner-loop counters for the sweep records.
  EXPECT_EQ(sim.last_sweep_stats().probe_terminals, 1);
  EXPECT_GE(sim.last_sweep_stats().probe_iterations, 1);
}

TEST(ScatteringPipeline, ConductanceDegradesMonotonicallyWithEta) {
  // Dephasing suppresses the resonant two-terminal conductance of a clean
  // chain: G(eta) must be non-increasing over an eta ramp.
  om::Simulator probe(chain_config(12));
  const auto grid = band_grid(probe, 0.11);
  const auto win = tr::band_window(probe.bands(9));
  const double mid = 0.5 * (win.emin + win.emax);

  double prev = 0.0;
  bool first = true;
  for (const double eta : {0.0, 0.02, 0.1, 0.3}) {
    om::Simulator sim(chain_config(12));
    if (eta > 0.0) sim.set_scattering(buttiker(eta));
    const double current =
        sim.current(grid, mid + 0.05, mid - 0.05, nullptr);
    if (!first)
      EXPECT_LE(current, prev * (1.0 + 1e-12)) << "eta = " << eta;
    EXPECT_GT(current, 0.0) << "eta = " << eta;
    prev = current;
    first = false;
  }
}

TEST(ScatteringPipeline, DissipativeChargeIsRealGridOnly) {
  om::Simulator sim(chain_config(8));
  sim.set_scattering(buttiker(0.05, {1}));
  const auto grid = band_grid(sim, 0.11);
  const auto win = tr::band_window(sim.bands(9));
  const double mid = 0.5 * (win.emin + win.emax);
  // The contour quadrature assumes an equilibrium (two-reservoir) analytic
  // continuation; probes inject at tuned real-axis potentials.
  EXPECT_THROW(sim.charge_density(grid, mid, mid - 0.1, nullptr,
                                  omenx::charge::QuadratureAlgorithm::kContour),
               std::invalid_argument);
  const auto q = sim.charge_density(grid, mid, mid - 0.1, nullptr);
  ASSERT_EQ(q.size(), 8u);
  double total = 0.0;
  for (const double c : q) {
    EXPECT_GE(c, 0.0);
    total += c;
  }
  EXPECT_GT(total, 0.0);
}

TEST(ScatteringPipeline, DissipativeSweepBitIdenticalAcrossWorldSizes) {
  // Probe contacts ride the multi-terminal wire protocol (solo spatial
  // announcements, strided T-matrix gather): every world size and stealing
  // mode must reproduce the flat loop bit-for-bit.
  auto make = [] {
    om::SimulationConfig cfg = chain_config(8, /*nk=*/3);
    cfg.point.scattering = buttiker(0.07, {2});
    return cfg;
  };
  om::Simulator reference(make());
  ASSERT_EQ(reference.probe_sites().size(), 1u);
  const auto grid = band_grid(reference);
  const auto base = reference.transmission_spectrum(grid);
  ASSERT_EQ(base.t_matrix.size(), grid.size());
  const auto win = tr::band_window(reference.bands(9));
  const double mid = 0.5 * (win.emin + win.emax);
  const auto base_i =
      reference.terminal_currents(grid, {mid + 0.1, mid - 0.1}, nullptr);
  const auto base_mu = reference.last_probe_tune().mu;

  for (const int ranks : {1, 2, 4}) {
    for (const bool stealing : {true, false}) {
      om::SimulationConfig cfg = make();
      cfg.num_ranks = ranks;
      cfg.work_stealing = stealing;
      om::Simulator sim(cfg);
      const auto sp = sim.transmission_spectrum(grid);
      ASSERT_EQ(sp.t_matrix.size(), base.t_matrix.size());
      for (std::size_t ie = 0; ie < base.t_matrix.size(); ++ie)
        for (std::size_t q = 0; q < base.t_matrix[ie].size(); ++q)
          EXPECT_EQ(sp.t_matrix[ie][q], base.t_matrix[ie][q])
              << "ranks=" << ranks << " stealing=" << stealing << " ie=" << ie
              << " pq=" << q;
      const auto currents =
          sim.terminal_currents(grid, {mid + 0.1, mid - 0.1}, nullptr);
      ASSERT_EQ(currents.size(), base_i.size());
      for (std::size_t c = 0; c < base_i.size(); ++c)
        EXPECT_EQ(currents[c], base_i[c]) << "ranks=" << ranks;
      // Same T table + same Newton loop = bit-identical tuned potentials.
      EXPECT_EQ(sim.last_probe_tune().mu, base_mu);
    }
  }
}

// ------------------------------------------------------------- validation --

TEST(ScatteringPipeline, RejectsProbeOnContactBlock) {
  om::SimulationConfig cfg = chain_config(8);
  cfg.contacts.resize(2);
  cfg.contacts[0].block = 0;
  cfg.contacts[1].block = tr::kLastBlock;
  om::Simulator sim(cfg);
  sim.set_scattering(buttiker(0.1, {0}));  // collides with the source
  const auto grid = band_grid(sim);
  EXPECT_THROW((void)sim.transmission_spectrum(grid), std::invalid_argument);
}
