// Transport-level integration tests.
//
// The 1-D single-orbital chain gives exact references: T(E) = 1 inside the
// band, 0 outside; with a potential barrier the WF and Caroli transmissions
// must still agree and current must be conserved along the device.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/hamiltonian.hpp"
#include "numeric/blas.hpp"
#include "parallel/device.hpp"
#include "parallel/thread_pool.hpp"
#include "transport/energy_grid.hpp"
#include "transport/transmission.hpp"

namespace df = omenx::dft;
namespace nm = omenx::numeric;
namespace pp = omenx::parallel;
namespace tr = omenx::transport;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

df::LeadBlocks chain_lead(double t = -1.0) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  lead.h[0] = CMatrix(1, 1);
  lead.h[1] = CMatrix{{cplx{t}}};
  lead.s[0] = CMatrix::identity(1);
  lead.s[1] = CMatrix(1, 1);
  return lead;
}

// Chain device with an optional on-site barrier in the middle cells.
df::DeviceMatrices chain_device(idx cells, double barrier = 0.0,
                                idx barrier_lo = 0, idx barrier_hi = 0) {
  std::vector<double> pot(static_cast<std::size_t>(cells), 0.0);
  for (idx i = barrier_lo; i < barrier_hi; ++i)
    pot[static_cast<std::size_t>(i)] = barrier;
  return df::assemble_device(chain_lead(), cells, pot);
}

}  // namespace

TEST(EnergyGrid, UniformRespectsBounds) {
  tr::EnergyGridOptions opt;
  opt.min_spacing = 0.01;
  opt.max_spacing = 0.1;
  const auto grid = tr::make_energy_grid(-1.0, 1.0, opt);
  ASSERT_GE(grid.size(), 2u);
  EXPECT_DOUBLE_EQ(grid.front(), -1.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double de = grid[i] - grid[i - 1];
    EXPECT_GE(de, opt.min_spacing - 1e-12);
    EXPECT_LE(de, opt.max_spacing + 1e-12);
  }
}

TEST(EnergyGrid, CountDependsOnSpacingNotInput) {
  // The grid size is a derived quantity (Fig. 11 caption).
  tr::EnergyGridOptions a;
  a.max_spacing = 0.1;
  tr::EnergyGridOptions b;
  b.max_spacing = 0.05;
  EXPECT_GT(tr::make_energy_grid(0.0, 1.0, b).size(),
            tr::make_energy_grid(0.0, 1.0, a).size());
}

TEST(EnergyGrid, RefinementAddsPointsAtSteps) {
  tr::EnergyGridOptions opt;
  opt.min_spacing = 1e-3;
  opt.max_spacing = 0.2;
  auto grid = tr::make_energy_grid(-1.0, 1.0, opt);
  const std::size_t before = grid.size();
  auto step = [](double e) { return e < 0.0 ? 0.0 : 1.0; };
  grid = tr::refine_energy_grid(grid, step, 0.5, opt);
  EXPECT_GT(grid.size(), before);
  // Refined points cluster near the step at 0.
  double closest = 1e9;
  for (double e : grid) closest = std::min(closest, std::abs(e));
  EXPECT_LT(closest, 2e-3);
}

TEST(EnergyGrid, LastPointIsExactlyEmax) {
  // Spans that don't divide evenly by the spacing used to accumulate the
  // seed grid: emin + spacing*n drifts by a few ULPs, which downstream
  // integration windows keyed on the exact bound then miss.
  tr::EnergyGridOptions opt;
  opt.min_spacing = 1e-6;
  opt.max_spacing = 0.03;
  for (const auto& [emin, emax] : {std::pair<double, double>{-1.37, 0.94},
                                   {0.1, 0.8000000000000003},
                                   {-2.0001, 1.9999}}) {
    const auto grid = tr::make_energy_grid(emin, emax, opt);
    EXPECT_DOUBLE_EQ(grid.front(), emin);
    EXPECT_DOUBLE_EQ(grid.back(), emax);  // bitwise, not approximately
    for (std::size_t i = 1; i < grid.size(); ++i)
      EXPECT_GT(grid[i], grid[i - 1]);
  }
}

TEST(EnergyGrid, TrapezoidWeightsIntegrateNonUniformGrid) {
  // Deliberately non-uniform grid; weights must reproduce the exact
  // trapezoid integral (segment sum) of any table, and integrate a linear
  // function exactly.
  const std::vector<double> grid{0.0, 0.1, 0.15, 0.4, 0.42, 1.0};
  const auto w = tr::trapezoid_weights(grid);
  ASSERT_EQ(w.size(), grid.size());
  // Sum of weights is the span (integral of 1).
  double wsum = 0.0;
  for (const double wi : w) wsum += wi;
  EXPECT_NEAR(wsum, 1.0, 1e-14);
  // Linear f integrates exactly: integral of (3x + 1) over [0,1] = 2.5.
  double lin = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) lin += w[i] * (3.0 * grid[i] + 1.0);
  EXPECT_NEAR(lin, 2.5, 1e-14);
  // Against the explicit segment-sum trapezoid for a curved analytic f.
  auto f = [](double x) { return std::exp(x); };
  double seg = 0.0;
  for (std::size_t i = 1; i < grid.size(); ++i)
    seg += 0.5 * (f(grid[i]) + f(grid[i - 1])) * (grid[i] - grid[i - 1]);
  double wsumf = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) wsumf += w[i] * f(grid[i]);
  EXPECT_NEAR(wsumf, seg, 1e-13);
  // Degenerate grids.
  EXPECT_TRUE(tr::trapezoid_weights({}).empty());
  const auto single = tr::trapezoid_weights({0.3});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0], 1.0);
}

TEST(EnergyGrid, BatchEvaluatorOverloadMatchesPointwise) {
  tr::EnergyGridOptions opt;
  opt.min_spacing = 1e-3;
  opt.max_spacing = 0.25;
  const auto base = tr::make_energy_grid(0.0, 1.0, opt);
  const auto f = [](double e) { return e > 0.35 ? 1.0 : 0.0; };
  const auto pointwise = tr::refine_energy_grid(base, f, 0.5, opt);
  const tr::BatchEvaluator batch = [&](const std::vector<double>& pts) {
    std::vector<double> v(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) v[i] = f(pts[i]);
    return v;
  };
  const auto batched = tr::refine_energy_grid(base, batch, 0.5, opt);
  ASSERT_EQ(pointwise.size(), batched.size());
  for (std::size_t i = 0; i < pointwise.size(); ++i)
    EXPECT_DOUBLE_EQ(pointwise[i], batched[i]);
}

TEST(EnergyGrid, InvalidArgumentsThrow) {
  EXPECT_THROW(tr::make_energy_grid(1.0, 0.0), std::invalid_argument);
  tr::EnergyGridOptions bad;
  bad.min_spacing = 0.2;
  bad.max_spacing = 0.1;
  EXPECT_THROW(tr::make_energy_grid(0.0, 1.0, bad), std::invalid_argument);
}

TEST(Transport, PristineChainHasUnitTransmission) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = chain_device(8);
  tr::EnergyPointOptions opt;
  opt.obc = tr::ObcAlgorithm::kShiftInvert;
  opt.solver = tr::SolverAlgorithm::kBlockLU;
  for (const double e : {-1.5, -0.5, 0.3, 1.2}) {
    const auto res = tr::solve_energy_point(dm, lead, folded, e, opt);
    EXPECT_NEAR(res.transmission, 1.0, 1e-6) << "E=" << e;
    EXPECT_NEAR(res.transmission_caroli, 1.0, 1e-6) << "E=" << e;
    EXPECT_EQ(res.num_propagating, 1);
  }
}

TEST(Transport, OutsideBandZeroTransmission) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = chain_device(6);
  tr::EnergyPointOptions opt;
  opt.obc = tr::ObcAlgorithm::kShiftInvert;
  opt.solver = tr::SolverAlgorithm::kBlockLU;
  const auto res = tr::solve_energy_point(dm, lead, folded, 2.5, opt);
  EXPECT_EQ(res.num_propagating, 0);
  EXPECT_NEAR(res.transmission, 0.0, 1e-10);
  EXPECT_NEAR(res.transmission_caroli, 0.0, 1e-8);
}

TEST(Transport, BarrierSuppressesTransmissionAndFormalismsAgree) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = chain_device(10, /*barrier=*/1.5, 4, 6);
  tr::EnergyPointOptions opt;
  opt.obc = tr::ObcAlgorithm::kShiftInvert;
  opt.solver = tr::SolverAlgorithm::kBlockLU;
  const auto res = tr::solve_energy_point(dm, lead, folded, -0.5, opt);
  EXPECT_GT(res.transmission, 0.0);
  EXPECT_LT(res.transmission, 0.9);
  EXPECT_NEAR(res.transmission, res.transmission_caroli, 1e-6);
}

TEST(Transport, CurrentIsConservedAlongDevice) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = chain_device(12, 0.8, 5, 7);
  tr::EnergyPointOptions opt;
  opt.obc = tr::ObcAlgorithm::kShiftInvert;
  opt.solver = tr::SolverAlgorithm::kBlockLU;
  const auto res = tr::solve_energy_point(dm, lead, folded, -0.4, opt);
  ASSERT_GE(res.interface_current.size(), 2u);
  for (std::size_t i = 1; i < res.interface_current.size(); ++i)
    EXPECT_NEAR(res.interface_current[i], res.interface_current[0], 1e-8);
  // Bond current equals the transmission for flux-normalized injection.
  EXPECT_NEAR(res.interface_current[0], res.transmission, 1e-6);
}

TEST(Transport, SplitSolveBackendMatchesDirect) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = chain_device(8, 0.6, 3, 5);
  tr::EnergyPointOptions direct;
  direct.obc = tr::ObcAlgorithm::kShiftInvert;
  direct.solver = tr::SolverAlgorithm::kBlockLU;
  tr::EnergyPointOptions split;
  split.obc = tr::ObcAlgorithm::kShiftInvert;
  split.solver = tr::SolverAlgorithm::kSplitSolve;
  split.partitions = 2;
  pp::DevicePool pool(2);
  const auto rd = tr::solve_energy_point(dm, lead, folded, -0.7, direct);
  const auto rs = tr::solve_energy_point(dm, lead, folded, -0.7, split, &pool);
  EXPECT_NEAR(rd.transmission, rs.transmission, 1e-8);
  EXPECT_NEAR(rd.transmission_caroli, rs.transmission_caroli, 1e-8);
}

TEST(Transport, FeastObcMatchesShiftInvert) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = chain_device(6);
  tr::EnergyPointOptions si;
  si.obc = tr::ObcAlgorithm::kShiftInvert;
  si.solver = tr::SolverAlgorithm::kBlockLU;
  tr::EnergyPointOptions fe;
  fe.obc = tr::ObcAlgorithm::kFeast;
  fe.solver = tr::SolverAlgorithm::kBlockLU;
  fe.obc_opts.feast.annulus_r = 50.0;
  const auto a = tr::solve_energy_point(dm, lead, folded, -0.8, si);
  const auto b = tr::solve_energy_point(dm, lead, folded, -0.8, fe);
  EXPECT_NEAR(a.transmission, b.transmission, 1e-5);
}

TEST(Transport, DecimationGivesCaroliOnly) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = chain_device(6);
  tr::EnergyPointOptions opt;
  opt.obc = tr::ObcAlgorithm::kDecimation;
  opt.solver = tr::SolverAlgorithm::kBlockLU;
  opt.want_density = false;  // Sigma-only OBC: density/current requests
  opt.want_current = false;  // are rejected loudly
  const auto res = tr::solve_energy_point(dm, lead, folded, -0.5, opt);
  EXPECT_NEAR(res.transmission_caroli, 1.0, 1e-4);
  EXPECT_EQ(res.num_propagating, 0);  // no injection data from decimation
}

TEST(Transport, DensityDecaysInsideBarrier) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const idx cells = 16;
  const auto dm = chain_device(cells, 2.5, 6, 10);
  tr::EnergyPointOptions opt;
  opt.obc = tr::ObcAlgorithm::kShiftInvert;
  opt.solver = tr::SolverAlgorithm::kBlockLU;
  const auto res = tr::solve_energy_point(dm, lead, folded, -1.0, opt);
  const auto per_cell = tr::density_per_cell(res.orbital_density, 1, cells);
  // Density in the middle of the barrier is far below the source side.
  EXPECT_LT(per_cell[8], 0.2 * per_cell[1]);
}

// Two-contact ballistic charge: the drain-injected density must be the
// mirror image of the source-injected one on a mirror-symmetric device
// (same leads, symmetric barrier), and its states carry the same flux
// normalization.
TEST(Transport, RightInjectedDensityMirrorsLeftOnSymmetricDevice) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const idx cells = 16;
  // Barrier cells 6..9: symmetric under i -> 15 - i.
  const auto dm = chain_device(cells, 1.2, 6, 10);
  tr::EnergyPointOptions opt;
  opt.obc = tr::ObcAlgorithm::kShiftInvert;
  opt.solver = tr::SolverAlgorithm::kBlockLU;
  const auto res = tr::solve_energy_point(dm, lead, folded, -0.6, opt);
  ASSERT_EQ(res.orbital_density.size(), static_cast<std::size_t>(cells));
  ASSERT_EQ(res.orbital_density_r.size(), static_cast<std::size_t>(cells));
  for (idx i = 0; i < cells; ++i)
    EXPECT_NEAR(res.orbital_density_r[static_cast<std::size_t>(i)],
                res.orbital_density[static_cast<std::size_t>(cells - 1 - i)],
                1e-8)
        << "cell " << i;
  // Both injections see one propagating channel on the chain; the density
  // is genuinely nonzero on the incoming side.
  EXPECT_GT(res.orbital_density_r[static_cast<std::size_t>(cells - 1)], 0.1);
}

// The drain-side columns ride only on the density path: transmission-only
// solves must not change.
TEST(Transport, RightInjectionOnlyComputedWhenDensityRequested) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto dm = chain_device(8);
  tr::EnergyPointOptions opt;
  opt.obc = tr::ObcAlgorithm::kShiftInvert;
  opt.solver = tr::SolverAlgorithm::kBlockLU;
  opt.want_density = false;
  const auto res = tr::solve_energy_point(dm, lead, folded, -0.5, opt);
  EXPECT_TRUE(res.orbital_density_r.empty());
  EXPECT_NEAR(res.transmission, 1.0, 1e-6);
}

TEST(Transport, FermiFunctionLimits) {
  EXPECT_DOUBLE_EQ(tr::fermi(0.0, 1.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(tr::fermi(2.0, 1.0, 0.0), 0.0);
  EXPECT_NEAR(tr::fermi(1.0, 1.0, 0.025), 0.5, 1e-12);
  EXPECT_GT(tr::fermi(0.9, 1.0, 0.025), 0.5);
}

TEST(Transport, LandauerCurrentSignAndMagnitude) {
  std::vector<double> e, t;
  for (double x = -2.0; x <= 2.001; x += 0.01) {
    e.push_back(x);
    t.push_back(1.0);
  }
  // T == 1, windows [mu_r, mu_l]: current = mu_l - mu_r at kT -> 0.
  const double i1 = tr::landauer_current(e, t, 0.5, -0.5, 1e-4);
  EXPECT_NEAR(i1, 1.0, 1e-2);
  const double i2 = tr::landauer_current(e, t, -0.5, 0.5, 1e-4);
  EXPECT_NEAR(i2, -1.0, 1e-2);
}

TEST(Transport, DensityAggregationHelpers) {
  std::vector<double> orb{1.0, 2.0, 3.0, 4.0};
  const auto per_cell = tr::density_per_cell(orb, 2, 2);
  EXPECT_DOUBLE_EQ(per_cell[0], 3.0);
  EXPECT_DOUBLE_EQ(per_cell[1], 7.0);
  const std::vector<idx> orbital_atom{0, 0};
  const auto per_atom = tr::density_per_atom(orb, orbital_atom, 1, 2, 1);
  ASSERT_EQ(per_atom.size(), 2u);
  EXPECT_DOUBLE_EQ(per_atom[0], 3.0);
  EXPECT_DOUBLE_EQ(per_atom[1], 7.0);
}

// Transmission staircase: a two-orbital chain has T = number of bands
// crossing E; sweep energies and verify integer plateaus.
TEST(Transport, TwoOrbitalChainStaircase) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  lead.h[0] = CMatrix{{cplx{0.0}, cplx{0.0}}, {cplx{0.0}, cplx{1.0}}};
  lead.h[1] = CMatrix{{cplx{-1.0}, cplx{0.0}}, {cplx{0.0}, cplx{-0.6}}};
  lead.s[0] = CMatrix::identity(2);
  lead.s[1] = CMatrix(2, 2);
  const auto folded = df::fold_lead(lead);
  const std::vector<double> pot(6, 0.0);
  const auto dm = df::assemble_device(lead, 6, pot);
  tr::EnergyPointOptions opt;
  opt.obc = tr::ObcAlgorithm::kShiftInvert;
  opt.solver = tr::SolverAlgorithm::kBlockLU;
  // Band 1: [-2, 2]; band 2: 1 + [-1.2, 1.2] = [-0.2, 2.2].
  const auto r1 = tr::solve_energy_point(dm, lead, folded, -1.0, opt);
  EXPECT_NEAR(r1.transmission, 1.0, 1e-6);
  const auto r2 = tr::solve_energy_point(dm, lead, folded, 0.5, opt);
  EXPECT_NEAR(r2.transmission, 2.0, 1e-6);
  const auto r3 = tr::solve_energy_point(dm, lead, folded, 2.1, opt);
  EXPECT_NEAR(r3.transmission, 1.0, 1e-6);
}

// --- Allocation-free steady state --------------------------------------

// After the first two points warm the context's workspace, a solve performs
// zero heap allocations of numeric buffers: the arena recycles every matrix
// (T = E*S - H assembly, decimation iterates, block-LU factors, RHS,
// solution) from the previous points.
TEST(Transport, EnergyPointSteadyStateIsAllocationFree) {
  const idx cells = 12;
  const auto dm = chain_device(cells, 0.5, 5, 7);
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  tr::EnergyPointOptions opts;
  opts.obc = tr::ObcAlgorithm::kDecimation;
  opts.solver = tr::SolverAlgorithm::kBlockLU;
  opts.want_density = false;
  opts.want_current = false;

  tr::EnergyPointContext ctx;
  tr::solve_energy_point(ctx, dm, lead, folded, -0.8, opts);
  tr::solve_energy_point(ctx, dm, lead, folded, -0.3, opts);

  const std::uint64_t before = nm::matrix_heap_allocations();
  double acc = 0.0;
  for (double e : {-0.9, -0.5, -0.1, 0.2, 0.7}) {
    const auto res = tr::solve_energy_point(ctx, dm, lead, folded, e, opts);
    acc += res.transmission_caroli;
  }
  EXPECT_EQ(nm::matrix_heap_allocations(), before) << acc;
}

// The BCR backend goes through the same context plumbing.
TEST(Transport, EnergyPointBcrSteadyStateIsAllocationFree) {
  const auto dm = chain_device(9);
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  tr::EnergyPointOptions opts;
  opts.obc = tr::ObcAlgorithm::kDecimation;
  opts.solver = tr::SolverAlgorithm::kBcr;
  opts.want_density = false;
  opts.want_current = false;

  tr::EnergyPointContext ctx;
  tr::solve_energy_point(ctx, dm, lead, folded, -0.6, opts);
  tr::solve_energy_point(ctx, dm, lead, folded, -0.2, opts);
  const std::uint64_t before = nm::matrix_heap_allocations();
  tr::solve_energy_point(ctx, dm, lead, folded, 0.1, opts);
  tr::solve_energy_point(ctx, dm, lead, folded, 0.4, opts);
  EXPECT_EQ(nm::matrix_heap_allocations(), before);
}

// The batched refinement must produce the same grid as the seed's
// point-at-a-time loop and actually add the midpoints near a step.
TEST(EnergyGrid, BatchedRefinementMatchesSerialSemantics) {
  tr::EnergyGridOptions opt;
  opt.min_spacing = 1e-3;
  opt.max_spacing = 0.25;
  const auto base = tr::make_energy_grid(0.0, 1.0, opt);
  const auto f = [](double e) { return e > 0.5 ? 1.0 : 0.0; };
  const auto serial = tr::refine_energy_grid(base, f, 0.5, opt);
  const auto batched = tr::refine_energy_grid(
      base, f, 0.5, opt, &omenx::parallel::ThreadPool::global());
  ASSERT_EQ(serial.size(), batched.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_DOUBLE_EQ(serial[i], batched[i]);
  EXPECT_GT(serial.size(), base.size());
}

// sweep_energy_points returns per-point results in order and the pooled
// sweep agrees with the serial one.
TEST(Transport, SweepMatchesPointwiseSolves) {
  const auto dm = chain_device(8);
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  tr::EnergyPointOptions opts;
  opts.obc = tr::ObcAlgorithm::kDecimation;
  opts.solver = tr::SolverAlgorithm::kBlockLU;
  opts.want_density = false;
  opts.want_current = false;
  std::vector<double> energies{-1.2, -0.4, 0.0, 0.8, 1.5};
  const auto serial = tr::sweep_energy_points(dm, lead, folded, energies, opts);
  const auto pooled = tr::sweep_energy_points(
      dm, lead, folded, energies, opts, nullptr,
      &omenx::parallel::ThreadPool::global());
  ASSERT_EQ(serial.size(), energies.size());
  ASSERT_EQ(pooled.size(), energies.size());
  for (std::size_t i = 0; i < energies.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].energy, energies[i]);
    EXPECT_NEAR(serial[i].transmission_caroli, pooled[i].transmission_caroli,
                1e-10);
  }
}

// --- complex-plane Fermi machinery (contour charge quadrature) ------------

TEST(Transport, FermiComplexMatchesAnalyticValues) {
  const double mu = -5.0, kt = 0.025;
  // On the real axis the complex overload reduces to the real one exactly.
  for (const double e : {-5.4, -5.0, -4.9, -4.975}) {
    const cplx f = tr::fermi(cplx{e, 0.0}, mu, kt);
    EXPECT_DOUBLE_EQ(f.real(), tr::fermi(e, mu, kt));
    EXPECT_DOUBLE_EQ(f.imag(), 0.0);
  }
  // Hand-evaluated point off the axis: z - mu = kt * (1 + i), so
  // f = 1 / (1 + e^{1+i}).
  const cplx z = mu + cplx{kt, kt};
  const cplx expect = 1.0 / (1.0 + std::exp(cplx{1.0, 1.0}));
  const cplx got = tr::fermi(z, mu, kt);
  EXPECT_NEAR(got.real(), expect.real(), 1e-14);
  EXPECT_NEAR(got.imag(), expect.imag(), 1e-14);
  // At height 2 n pi kt the exponential is real-positive: f equals the
  // real-axis Fermi function (the property the L-contour's run relies on).
  const double h = 2.0 * 3.0 * 3.14159265358979323846 * kt;
  for (const double e : {-5.2, -5.0, -4.93}) {
    const cplx fr = tr::fermi(cplx{e, h}, mu, kt);
    EXPECT_NEAR(fr.real(), tr::fermi(e, mu, kt), 1e-12);
    EXPECT_NEAR(fr.imag(), 0.0, 1e-12);
  }
}

TEST(Transport, FermiComplexOverflowGuards) {
  const double mu = 0.0, kt = 0.025;
  // Far above / below the window: the guard must clamp instead of
  // overflowing exp into inf/NaN, matching the real overload.
  const cplx hot = tr::fermi(cplx{100.0, 0.3}, mu, kt);
  EXPECT_DOUBLE_EQ(hot.real(), 0.0);
  EXPECT_DOUBLE_EQ(hot.imag(), 0.0);
  const cplx cold = tr::fermi(cplx{-100.0, 0.3}, mu, kt);
  EXPECT_DOUBLE_EQ(cold.real(), 1.0);
  EXPECT_DOUBLE_EQ(cold.imag(), 0.0);
  // kt <= 0 degenerates to a step in Re(e).
  EXPECT_DOUBLE_EQ(tr::fermi(cplx{-0.1, 0.2}, mu, 0.0).real(), 1.0);
  EXPECT_DOUBLE_EQ(tr::fermi(cplx{0.1, 0.2}, mu, 0.0).real(), 0.0);
}

TEST(Transport, MatsubaraPolesLocationsAndResidues) {
  const double mu = -5.1, kt = 0.0259;
  const double pi = 3.14159265358979323846;
  const auto poles = tr::matsubara_poles(mu, kt, 4);
  ASSERT_EQ(poles.size(), 4u);
  for (int p = 0; p < 4; ++p) {
    EXPECT_DOUBLE_EQ(poles[static_cast<std::size_t>(p)].real(), mu);
    EXPECT_DOUBLE_EQ(poles[static_cast<std::size_t>(p)].imag(),
                     pi * kt * (2.0 * p + 1.0));
    // Residue check: (z - z_p) * f(z) -> -kt as z -> z_p.
    const cplx zp = poles[static_cast<std::size_t>(p)];
    const cplx dz{1e-7, 1e-7};
    const cplx res = dz * tr::fermi(zp + dz, mu, kt);
    EXPECT_NEAR(res.real(), -kt, 1e-6);
    EXPECT_NEAR(res.imag(), 0.0, 1e-6);
  }
  EXPECT_TRUE(tr::matsubara_poles(mu, kt, 0).empty());
  EXPECT_THROW(tr::matsubara_poles(mu, 0.0, 4), std::invalid_argument);
  EXPECT_THROW(tr::matsubara_poles(mu, kt, -1), std::invalid_argument);
}

// --- trapezoid_weights edge cases (charge-integration contract) -----------

TEST(EnergyGrid, TrapezoidWeightsTwoPointGrid) {
  const auto w = tr::trapezoid_weights({-1.0, 2.0});
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 1.5);
  EXPECT_DOUBLE_EQ(w[1], 1.5);
}

TEST(EnergyGrid, TrapezoidWeightsSumToSpanExactly) {
  // The half-interval construction telescopes: the weight sum equals
  // emax - emin to the last ulp, not merely to a tolerance.
  std::vector<double> grid;
  for (int i = 0; i <= 1000; ++i)
    grid.push_back(-6.5 + 3.1e-3 * i + 1e-4 * std::sin(0.1 * i));
  const auto w = tr::trapezoid_weights(grid);
  double sum = 0.0;
  for (std::size_t i = 1; i + 1 < w.size(); ++i) sum += w[i];
  // Telescoped interior + the two half-end weights == span, summed in the
  // same pairwise order the implementation uses.
  double span = 0.0;
  for (std::size_t i = 1; i < grid.size(); ++i) span += grid[i] - grid[i - 1];
  sum += w.front() + w.back();
  EXPECT_NEAR(sum, span, 1e-12 * std::abs(span));
  EXPECT_NEAR(sum, grid.back() - grid.front(), 1e-10);
}

TEST(EnergyGrid, TrapezoidWeightsRejectNonMonotonicGrids) {
  EXPECT_THROW(tr::trapezoid_weights({0.0, 1.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(tr::trapezoid_weights({0.0, 0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(tr::trapezoid_weights({1.0, 0.0}), std::invalid_argument);
}
