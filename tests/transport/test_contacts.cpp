// Tests for the N-terminal contact layer: ContactSet geometry/routing
// helpers, the lead content hash, and the per-contact partitioning of the
// BoundaryCache (dissimilar leads must cache — and invalidate —
// independently).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "dft/hamiltonian.hpp"
#include "numeric/matrix.hpp"
#include "obc/boundary_cache.hpp"
#include "transport/contacts.hpp"
#include "transport/transmission.hpp"

namespace df = omenx::dft;
namespace nm = omenx::numeric;
namespace ob = omenx::obc;
namespace tr = omenx::transport;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

df::LeadBlocks chain_lead(double t = -1.0, double onsite = 0.0) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  lead.h[0] = CMatrix{{cplx{onsite}}};
  lead.h[1] = CMatrix{{cplx{t}}};
  lead.s[0] = CMatrix::identity(1);
  lead.s[1] = CMatrix(1, 1);
  return lead;
}

}  // namespace

TEST(ContactSet, PairFactoryIsTheClassicLayout) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  const auto set = tr::ContactSet::pair(lead, folded, 0.1, -0.1);
  ASSERT_EQ(set.size(), 2);
  EXPECT_TRUE(set.classic_pair(5));
  EXPECT_EQ(set.left(5), 0);
  EXPECT_EQ(set.right(5), 1);
  EXPECT_EQ(set.resolve_block(0, 5), 0);
  EXPECT_EQ(set.resolve_block(1, 5), 4);  // kLastBlock resolves to nb - 1
  EXPECT_DOUBLE_EQ(set[0].mu, 0.1);
  EXPECT_DOUBLE_EQ(set[1].mu, -0.1);
  // One lead serves both ends: the contacts share boundary data, so the
  // right contact caches under the left contact's canonical id.
  EXPECT_TRUE(set.same_boundary(0, 1));
  EXPECT_EQ(set.representative(0), 0);
  EXPECT_EQ(set.representative(1), 0);
  EXPECT_NO_THROW(set.validate(5));
}

TEST(ContactSet, ReversedPairNormalizesLeftRight) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  std::vector<tr::Contact> cs(2);
  cs[0].lead = &lead;
  cs[0].folded = &folded;
  cs[0].block = tr::kLastBlock;
  cs[1].lead = &lead;
  cs[1].folded = &folded;
  cs[1].block = 0;
  const tr::ContactSet set(std::move(cs));
  EXPECT_TRUE(set.classic_pair(4));
  EXPECT_EQ(set.left(4), 1);
  EXPECT_EQ(set.right(4), 0);
}

TEST(ContactSet, ValidateRejectsBadLayouts) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  // Fewer than two terminals.
  {
    std::vector<tr::Contact> cs(1);
    cs[0].lead = &lead;
    cs[0].folded = &folded;
    cs[0].block = 0;
    EXPECT_THROW(tr::ContactSet(std::move(cs)).validate(4),
                 std::invalid_argument);
  }
  // Duplicate attachment blocks (kLastBlock aliases nb - 1).
  {
    std::vector<tr::Contact> cs(2);
    for (auto& c : cs) {
      c.lead = &lead;
      c.folded = &folded;
    }
    cs[0].block = 3;
    cs[1].block = tr::kLastBlock;
    EXPECT_THROW(tr::ContactSet(std::move(cs)).validate(4),
                 std::invalid_argument);
  }
  // Out-of-range block.
  {
    std::vector<tr::Contact> cs(2);
    for (auto& c : cs) {
      c.lead = &lead;
      c.folded = &folded;
    }
    cs[0].block = 0;
    cs[1].block = 9;
    EXPECT_THROW(tr::ContactSet(std::move(cs)).validate(4),
                 std::invalid_argument);
  }
  // Null lead.
  {
    std::vector<tr::Contact> cs(2);
    cs[0].lead = &lead;
    cs[0].folded = &folded;
    cs[0].block = 0;
    cs[1].block = tr::kLastBlock;
    EXPECT_THROW(tr::ContactSet(std::move(cs)).validate(4),
                 std::invalid_argument);
  }
}

TEST(ContactSet, DissimilarContactsGetDistinctRepresentatives) {
  const auto lead_a = chain_lead(-1.0);
  const auto lead_b = chain_lead(-1.4);
  const auto folded_a = df::fold_lead(lead_a);
  const auto folded_b = df::fold_lead(lead_b);
  std::vector<tr::Contact> cs(3);
  cs[0].lead = &lead_a;
  cs[0].folded = &folded_a;
  cs[0].block = 0;
  cs[1].lead = &lead_b;
  cs[1].folded = &folded_b;
  cs[1].block = 1;
  cs[2].lead = &lead_a;
  cs[2].folded = &folded_a;
  cs[2].block = tr::kLastBlock;
  const tr::ContactSet set(std::move(cs));
  EXPECT_FALSE(set.classic_pair(4));
  EXPECT_FALSE(set.same_boundary(0, 1));
  EXPECT_TRUE(set.same_boundary(0, 2));
  EXPECT_EQ(set.representative(1), 1);
  EXPECT_EQ(set.representative(2), 0);
  // A per-contact shift splits otherwise identical contacts: the boundary
  // at energy E depends on the shift.
  auto shifted = set.contacts();
  shifted[2].shift = 0.2;
  const tr::ContactSet split(std::move(shifted));
  EXPECT_FALSE(split.same_boundary(0, 2));
  EXPECT_EQ(split.representative(2), 2);
}

TEST(ContactSet, LeadContentHashTracksTheMatrixBits) {
  const auto lead = chain_lead(-1.0, 0.2);
  auto copy = lead;
  EXPECT_EQ(tr::lead_content_hash(lead), tr::lead_content_hash(copy));
  copy.h[1](0, 0) += cplx{1e-15};  // any bit change must re-key the cache
  EXPECT_NE(tr::lead_content_hash(lead), tr::lead_content_hash(copy));
  EXPECT_NE(tr::lead_content_hash(lead),
            tr::lead_content_hash(chain_lead(-1.2, 0.2)));
}

TEST(BoundaryCache, ContactsPartitionTheKeySpace) {
  ob::BoundaryCache cache;
  ob::Boundary bnd;
  bnd.sigma_l = CMatrix::identity(1);
  ob::BoundaryKey key0{/*k=*/0, /*energy=*/0.5, /*contact_shift=*/0.0,
                       /*algorithm=*/1};
  ob::BoundaryKey key1 = key0;
  key1.contact = 1;
  key1.lead_hash = 77;
  // Same (k, E, shift, algorithm) under different contact ids are distinct
  // entries.
  EXPECT_EQ(cache.find(key0), nullptr);
  cache.insert(key0, bnd);
  EXPECT_EQ(cache.find(key1), nullptr);
  cache.insert(key1, bnd);
  EXPECT_NE(cache.find(key0), nullptr);
  EXPECT_NE(cache.find(key1), nullptr);
  EXPECT_EQ(cache.size(), 2u);

  // Per-contact counters saw exactly their own traffic.
  const auto s0 = cache.contact_stats(0);
  const auto s1 = cache.contact_stats(1);
  EXPECT_EQ(s0.hits, 1u);
  EXPECT_EQ(s0.misses, 1u);
  EXPECT_EQ(s1.hits, 1u);
  EXPECT_EQ(s1.misses, 1u);
  EXPECT_EQ(cache.contacts_seen(), (std::vector<int>{0, 1}));

  // Dropping contact 0 must leave contact 1's entries untouched.
  cache.invalidate_contact(0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find(key0), nullptr);
  EXPECT_NE(cache.find(key1), nullptr);
  EXPECT_EQ(cache.contact_stats(0).invalidations, 1u);
  EXPECT_EQ(cache.contact_stats(1).invalidations, 0u);
}

TEST(BoundaryCache, LeadHashKeysDissimilarMaterials) {
  // A swapped lead material under a *reused* contact id must still miss:
  // the content hash is part of the key.
  ob::BoundaryCache cache;
  ob::Boundary bnd;
  ob::BoundaryKey a{/*k=*/0, /*energy=*/1.0, /*contact_shift=*/0.0,
                    /*algorithm=*/0};
  a.contact = 1;
  a.lead_hash = tr::lead_content_hash(chain_lead(-1.0));
  ob::BoundaryKey b = a;
  b.lead_hash = tr::lead_content_hash(chain_lead(-1.3));
  cache.insert(a, bnd);
  EXPECT_NE(cache.find(a), nullptr);
  EXPECT_EQ(cache.find(b), nullptr);
}

// ----------------------------------------- Buettiker current edge cases --

namespace {

// Constant-in-energy pairwise table replicated over `ne` energies.
std::vector<std::vector<double>> constant_table(std::size_t ne,
                                                std::vector<double> t) {
  return std::vector<std::vector<double>>(ne, std::move(t));
}

}  // namespace

TEST(ButtikerCurrents, AllZeroTransmissionYieldsExactZeros) {
  // A terminal with every T_pq == 0 (all rows *and* columns) carries
  // exactly zero current — not a rounding-sized residue — because every
  // accumulated product has a literal 0.0 factor.  And with the whole
  // table zero, every terminal's current is exactly 0.0 whatever the bias.
  const std::vector<double> energies{-0.5, 0.0, 0.5, 1.0};
  const auto t = constant_table(energies.size(),
                                {0.0, 0.0, 0.0,  //
                                 0.0, 0.0, 0.7,  //
                                 0.0, 0.7, 0.0});
  const auto currents = tr::buttiker_currents(
      energies, t, {0.3, 0.1, -0.2}, 0.025);
  ASSERT_EQ(currents.size(), 3u);
  EXPECT_EQ(currents[0], 0.0);  // decoupled terminal: exact zero
  EXPECT_NE(currents[1], 0.0);  // the coupled pair still conducts
  EXPECT_EQ(currents[1], -currents[2]);

  const auto dead = tr::buttiker_currents(
      energies, constant_table(energies.size(), std::vector<double>(9, 0.0)),
      {0.3, 0.1, -0.2}, 0.025);
  for (const double i : dead) EXPECT_EQ(i, 0.0);
}

TEST(ButtikerCurrents, TwoTerminalDegeneratesToLandauer) {
  // For nc = 2 with a symmetric table the Buettiker sum reduces to the
  // Landauer integral term by term: EXPECT_EQ, not a tolerance.
  std::vector<double> energies;
  std::vector<std::vector<double>> table;
  for (double e = -1.0; e <= 1.0; e += 0.05) {
    energies.push_back(e);
    const double t = 0.8 / (1.0 + e * e);  // smooth Lorentzian-ish T(E)
    table.push_back({0.0, t, t, 0.0});
  }
  std::vector<double> transmission;
  for (const auto& row : table) transmission.push_back(row[1]);

  const double mu_l = 0.22, mu_r = -0.13, kt = 0.025;
  const double landauer =
      tr::landauer_current(energies, transmission, mu_l, mu_r, kt);
  const auto currents =
      tr::buttiker_currents(energies, table, {mu_l, mu_r}, kt);
  ASSERT_EQ(currents.size(), 2u);
  EXPECT_EQ(currents[0], landauer);
  EXPECT_EQ(currents[1], -landauer);
}

TEST(ButtikerCurrents, EquivariantUnderContactPermutation) {
  // Relabeling the terminals permutes the currents — no hidden dependence
  // on terminal order — and each current flips sign when the bias table is
  // transposed (reciprocal T) with the potentials negated.
  const std::vector<double> energies{-0.4, 0.0, 0.4};
  const std::vector<double> t{0.0, 0.6, 0.2,  //
                              0.6, 0.0, 0.4,  //
                              0.2, 0.4, 0.0};
  const std::vector<double> mu{0.2, 0.05, -0.15};
  const double kt = 0.025;
  const auto base =
      tr::buttiker_currents(energies, constant_table(3, t), mu, kt);

  // Cyclic permutation p -> (p + 1) % 3 of the labels.
  const std::size_t perm[3] = {1, 2, 0};
  std::vector<double> t_perm(9, 0.0), mu_perm(3, 0.0);
  for (std::size_t p = 0; p < 3; ++p) {
    mu_perm[perm[p]] = mu[p];
    for (std::size_t q = 0; q < 3; ++q)
      t_perm[perm[p] * 3 + perm[q]] = t[p * 3 + q];
  }
  const auto permuted = tr::buttiker_currents(
      energies, constant_table(3, t_perm), mu_perm, kt);
  // To rounding, not bitwise: relabeling reorders the q-accumulation.
  for (std::size_t p = 0; p < 3; ++p)
    EXPECT_NEAR(permuted[perm[p]], base[p], 1e-14) << "terminal " << p;

  // Antisymmetry under bias reversal: on a symmetric energy grid with an
  // energy-independent symmetric table, f(E, -mu) = 1 - f(-E, mu) mirrors
  // every Fermi difference, so negating all potentials reverses every
  // current (to rounding — the trapezoid visits the mirrored points in the
  // opposite order).
  const auto reversed = tr::buttiker_currents(
      energies, constant_table(3, t), {-mu[0], -mu[1], -mu[2]}, kt);
  for (std::size_t p = 0; p < 3; ++p)
    EXPECT_NEAR(reversed[p], -base[p], 1e-12) << "terminal " << p;
}
