// NEGF Green's-function observable tests.
#include <gtest/gtest.h>

#include <cmath>

#include "blockmat/block_tridiag.hpp"
#include "blockmat/csr.hpp"
#include "numeric/blas.hpp"
#include "numeric/lu.hpp"
#include "transport/greens.hpp"

namespace bm = omenx::blockmat;
namespace nm = omenx::numeric;
namespace tr = omenx::transport;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {
bm::BlockTridiag open_chain(idx nb, double e, double eta) {
  // (E + i*eta) - H for a 1-D chain with hopping -1.
  bm::BlockTridiag t(nb, 1);
  for (idx i = 0; i < nb; ++i) {
    t.diag(i)(0, 0) = cplx{e, eta};
    if (i + 1 < nb) {
      t.upper(i)(0, 0) = cplx{1.0};   // E*S01 - H01 = -(-1)
      t.lower(i)(0, 0) = cplx{1.0};
    }
  }
  return t;
}
}  // namespace

TEST(Greens, LdosMatchesDenseInverse) {
  const auto t = open_chain(6, 0.3, 0.05);
  const auto ldos = tr::local_density_of_states(t);
  const CMatrix ginv = nm::inverse(t.to_dense());
  ASSERT_EQ(static_cast<idx>(ldos.size()), 6);
  for (idx i = 0; i < 6; ++i)
    EXPECT_NEAR(ldos[static_cast<std::size_t>(i)],
                -ginv(i, i).imag() / omenx::numeric::kPi, 1e-10);
}

TEST(Greens, LdosIsNonNegativeWithBroadening) {
  const auto t = open_chain(10, -0.4, 0.02);
  for (const double v : tr::local_density_of_states(t)) EXPECT_GE(v, 0.0);
}

TEST(Greens, DosSumsLdos) {
  const auto t = open_chain(8, 0.1, 0.03);
  const auto ldos = tr::local_density_of_states(t);
  double sum = 0.0;
  for (const double v : ldos) sum += v;
  EXPECT_NEAR(tr::density_of_states(t, nullptr), sum, 1e-12);
}

TEST(Greens, OverlapWeightedDosIdentityBasis) {
  // With S = I the weighted and unweighted DOS agree.
  const auto t = open_chain(5, 0.2, 0.04);
  bm::BlockTridiag s(5, 1);
  for (idx i = 0; i < 5; ++i) s.diag(i)(0, 0) = cplx{1.0};
  EXPECT_NEAR(tr::density_of_states(t, &s), tr::density_of_states(t, nullptr),
              1e-12);
}

TEST(Csr, RoundTripMatchesDense) {
  bm::BlockTridiag t(4, 3);
  for (idx i = 0; i < 4; ++i) {
    t.diag(i) = nm::random_cmatrix(3, 3, 1 + (unsigned)i);
    if (i + 1 < 4) {
      t.upper(i) = nm::random_cmatrix(3, 3, 11 + (unsigned)i);
      t.lower(i) = nm::random_cmatrix(3, 3, 21 + (unsigned)i);
    }
  }
  const auto csr = bm::to_csr(t);
  EXPECT_EQ(csr.rows, 12);
  EXPECT_EQ(csr.nnz(), t.nnz(0.0));
  // SpMV against the block multiply.
  std::vector<cplx> x(12);
  for (idx i = 0; i < 12; ++i) x[static_cast<std::size_t>(i)] = cplx(i * 0.5, -1.0);
  CMatrix xm(12, 1);
  for (idx i = 0; i < 12; ++i) xm(i, 0) = x[static_cast<std::size_t>(i)];
  const auto y = bm::csr_matvec(csr, x);
  const CMatrix ym = t.multiply(xm);
  for (idx i = 0; i < 12; ++i)
    EXPECT_LT(std::abs(y[static_cast<std::size_t>(i)] - ym(i, 0)), 1e-12);
}

TEST(Csr, DropTolSparsifies) {
  bm::BlockTridiag t(2, 2);
  t.diag(0)(0, 0) = cplx{1.0};
  t.diag(0)(1, 1) = cplx{1e-12};
  t.diag(1)(0, 0) = cplx{2.0};
  const auto full = bm::to_csr(t, 0.0);
  const auto dropped = bm::to_csr(t, 1e-9);
  EXPECT_EQ(full.nnz(), 3);
  EXPECT_EQ(dropped.nnz(), 2);
}

TEST(Csr, MatvecDimensionMismatchThrows) {
  bm::BlockTridiag t(2, 2);
  const auto csr = bm::to_csr(t);
  EXPECT_THROW(bm::csr_matvec(csr, std::vector<cplx>(3)),
               std::invalid_argument);
}
