// Solver-parity suite: every registered backend must produce the same
// transmission spectrum and the same diagonal blocks; the spatial level of
// the engine (energy-group width > 1) must reproduce the width-1 spectra
// bit-for-bit; kAuto must be deterministic end-to-end.
//
// Carries the "engine" ctest label: the width sweeps exercise the spatial
// broadcast/partition-transfer protocol across CommWorld ranks, so CI
// reruns this file under ThreadSanitizer.
#include <gtest/gtest.h>

#include <cmath>

#include "dft/hamiltonian.hpp"
#include "numeric/blas.hpp"
#include "omen/engine.hpp"
#include "parallel/device.hpp"
#include "transport/greens.hpp"
#include "transport/transmission.hpp"

namespace df = omenx::dft;
namespace nm = omenx::numeric;
namespace om = omenx::omen;
namespace pp = omenx::parallel;
namespace sv = omenx::solvers;
namespace tr = omenx::transport;
using nm::CMatrix;
using nm::cplx;
using nm::idx;

namespace {

df::LeadBlocks chain_lead(double t = -1.0) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  lead.h[0] = CMatrix(1, 1);
  lead.h[1] = CMatrix{{cplx{t}}};
  lead.s[0] = CMatrix::identity(1);
  lead.s[1] = CMatrix(1, 1);
  return lead;
}

// Random-Hermitian multi-orbital lead for the engine-level sweeps.
df::LeadBlocks synthetic_lead(idx s, unsigned seed) {
  df::LeadBlocks lead;
  lead.h.resize(2);
  lead.s.resize(2);
  CMatrix h0 = nm::random_cmatrix(s, s, seed);
  lead.h[0] = (h0 + nm::dagger(h0)) * cplx{0.25};
  lead.h[1] = nm::random_cmatrix(s, s, seed + 1) * cplx{0.4};
  lead.s[0] = CMatrix::identity(s);
  lead.s[1] = CMatrix(s, s);
  return lead;
}

struct WidthRun {
  std::vector<std::vector<double>> caroli;
  std::vector<double> charge;
};

WidthRun run_width(tr::SolverAlgorithm solver, int partitions, int ranks,
                   int width, pp::DevicePool* pool) {
  std::vector<df::LeadBlocks> leads{synthetic_lead(4, 91)};
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = 12;
  req.potential.assign(12, 0.0);
  req.energies = {{-1.1, -0.6, -0.2, 0.3, 0.7, 1.2}};
  req.point.obc = tr::ObcAlgorithm::kShiftInvert;
  req.point.solver = solver;
  req.point.partitions = partitions;
  req.point.want_current = false;
  req.density_weight = {{0.2, 0.2, 0.2, 0.2, 0.2, 0.2}};

  om::EngineConfig cfg;
  cfg.num_ranks = ranks;
  cfg.ranks_per_energy_group = width;
  om::Engine engine(cfg, pool);
  const auto res = engine.run(req);
  return {res.caroli, res.charge};
}

}  // namespace

TEST(SolverParity, TransmissionSpectrumAgreesAcrossBackends) {
  const auto lead = chain_lead();
  const auto folded = df::fold_lead(lead);
  std::vector<double> pot(10, 0.0);
  pot[4] = pot[5] = 0.8;  // barrier makes the spectrum non-trivial
  const auto dm = df::assemble_device(lead, 10, pot);
  pp::DevicePool pool(2);

  tr::EnergyPointOptions ref_opt;
  ref_opt.obc = tr::ObcAlgorithm::kShiftInvert;
  ref_opt.solver = tr::SolverAlgorithm::kBlockLU;
  const std::vector<double> grid{-1.4, -0.9, -0.4, 0.1, 0.6, 1.1};
  std::vector<tr::EnergyPointResult> ref;
  for (const double e : grid)
    ref.push_back(tr::solve_energy_point(dm, lead, folded, e, ref_opt));

  for (const auto algo :
       {tr::SolverAlgorithm::kBcr, tr::SolverAlgorithm::kRgf,
        tr::SolverAlgorithm::kSpike, tr::SolverAlgorithm::kSplitSolve,
        tr::SolverAlgorithm::kAuto}) {
    tr::EnergyPointOptions opt = ref_opt;
    opt.solver = algo;
    opt.partitions = 2;
    tr::EnergyPointContext ctx;
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const auto res =
          tr::solve_energy_point(ctx, dm, lead, folded, grid[i], opt, &pool);
      EXPECT_NEAR(res.transmission, ref[i].transmission, 1e-8)
          << sv::algorithm_name(algo) << " E=" << grid[i];
      EXPECT_NEAR(res.transmission_caroli, ref[i].transmission_caroli, 1e-8)
          << sv::algorithm_name(algo) << " E=" << grid[i];
      EXPECT_EQ(res.num_propagating, ref[i].num_propagating);
    }
  }
}

TEST(SolverParity, LdosAgreesAcrossBackends) {
  // greens routes through the strategy layer: every backend serves the
  // diagonal, and the default (kAuto -> rgf) matches them all.
  omenx::blockmat::BlockTridiag t(6, 2);
  for (idx i = 0; i < 6; ++i) {
    t.diag(i) = nm::random_cmatrix(2, 2, 7 + static_cast<unsigned>(i));
    for (idx d = 0; d < 2; ++d) t.diag(i)(d, d) += cplx{4.0, 0.8};
    if (i + 1 < 6) {
      t.upper(i) = nm::random_cmatrix(2, 2, 17 + static_cast<unsigned>(i));
      t.lower(i) = nm::random_cmatrix(2, 2, 27 + static_cast<unsigned>(i));
    }
  }
  const auto ref = tr::local_density_of_states(t);
  sv::SolverContext ctx;
  ctx.partitions = 2;
  for (const auto algo :
       {sv::SolverAlgorithm::kBlockLU, sv::SolverAlgorithm::kBcr,
        sv::SolverAlgorithm::kRgf, sv::SolverAlgorithm::kSpike,
        sv::SolverAlgorithm::kSplitSolve}) {
    const auto ldos = tr::local_density_of_states(t, algo, ctx);
    ASSERT_EQ(ldos.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_NEAR(ldos[i], ref[i], 1e-9) << sv::algorithm_name(algo);
    EXPECT_NEAR(tr::density_of_states(t, nullptr, algo, ctx),
                tr::density_of_states(t, nullptr), 1e-9);
  }
}

TEST(SolverParity, SpatialWidthsAreBitIdentical) {
  // The acceptance bar: ranks_per_energy_group in {1, 2, 4} on a 4-rank
  // world — same partition count — must give bit-identical transmission and
  // charge for both cooperative backends.  (The SPIKE arithmetic is fixed
  // by the partition count; the spatial level only changes where each
  // partition executes.)
  pp::DevicePool pool(2);
  for (const auto algo :
       {tr::SolverAlgorithm::kSpike, tr::SolverAlgorithm::kSplitSolve}) {
    const auto base = run_width(algo, 4, 4, 1, &pool);
    for (const int width : {2, 4}) {
      const auto run = run_width(algo, 4, 4, width, &pool);
      ASSERT_EQ(run.caroli[0].size(), base.caroli[0].size());
      for (std::size_t i = 0; i < base.caroli[0].size(); ++i)
        EXPECT_DOUBLE_EQ(run.caroli[0][i], base.caroli[0][i])
            << sv::algorithm_name(algo) << " width=" << width << " point "
            << i;
      ASSERT_EQ(run.charge.size(), base.charge.size());
      for (std::size_t c = 0; c < base.charge.size(); ++c)
        EXPECT_DOUBLE_EQ(run.charge[c], base.charge[c])
            << sv::algorithm_name(algo) << " width=" << width << " cell "
            << c;
    }
    // The flat single-process loop uses the same arithmetic again.
    const auto flat = run_width(algo, 4, 1, 1, &pool);
    for (std::size_t i = 0; i < base.caroli[0].size(); ++i)
      EXPECT_DOUBLE_EQ(flat.caroli[0][i], base.caroli[0][i]);
  }
}

TEST(SolverParity, SpatialWidthWithWorkStealingStaysBitIdentical) {
  // Two k points with very different grids force stealing; the thieves'
  // spatial members must fetch the stolen k's blocks through the group
  // broadcast and still reproduce the width-1 numbers exactly.
  std::vector<df::LeadBlocks> leads{synthetic_lead(3, 55),
                                    synthetic_lead(3, 66)};
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = 10;
  req.potential.assign(10, 0.0);
  req.energies.resize(2);
  for (int ie = 0; ie < 10; ++ie) req.energies[0].push_back(-1.0 + 0.2 * ie);
  req.energies[1] = {-0.5, 0.0};
  req.point.obc = tr::ObcAlgorithm::kDecimation;
  req.point.solver = tr::SolverAlgorithm::kSplitSolve;
  req.point.partitions = 2;
  req.point.want_density = false;
  req.point.want_current = false;
  pp::DevicePool pool(2);

  om::EngineConfig narrow;
  narrow.num_ranks = 4;
  const auto base = om::Engine(narrow, &pool).run(req);

  om::EngineConfig wide;
  wide.num_ranks = 4;
  wide.ranks_per_energy_group = 2;
  const auto run = om::Engine(wide, &pool).run(req);
  for (std::size_t k = 0; k < 2; ++k)
    for (std::size_t i = 0; i < req.energies[k].size(); ++i)
      EXPECT_DOUBLE_EQ(run.caroli[k][i], base.caroli[k][i])
          << "k=" << k << " point " << i;
}

TEST(SolverParity, SkippedPointsKeepSpatialProtocolAligned) {
  // Far-out-of-band energies with want_caroli = false give points where
  // nothing propagates and the leader solves nothing (m == 0) — but the
  // spatial members have already sent their partitions.  The leader must
  // drain those transfers (Solver::discard) or the *next* point would
  // consume stale partitions and produce silently wrong numbers.
  for (const auto algo :
       {tr::SolverAlgorithm::kSpike, tr::SolverAlgorithm::kSplitSolve}) {
    std::vector<df::LeadBlocks> leads{synthetic_lead(3, 77)};
    om::SweepRequest req;
    req.leads = &leads;
    req.cells = 12;
    req.potential.assign(12, 0.0);
    req.energies = {{-10.0, -0.4, 10.0, 0.0, 0.4}};  // skip, solve, skip...
    req.point.obc = tr::ObcAlgorithm::kShiftInvert;
    req.point.solver = algo;
    req.point.partitions = 2;
    req.point.want_caroli = false;
    req.point.want_current = false;
    req.density_weight = {{0.3, 0.3, 0.3, 0.3, 0.3}};
    pp::DevicePool pool(2);

    om::EngineConfig narrow;
    narrow.num_ranks = 4;
    const auto base = om::Engine(narrow, &pool).run(req);

    om::EngineConfig wide;
    wide.num_ranks = 4;
    wide.ranks_per_energy_group = 2;
    const auto run = om::Engine(wide, &pool).run(req);
    for (std::size_t i = 0; i < req.energies[0].size(); ++i)
      EXPECT_DOUBLE_EQ(run.transmission[0][i], base.transmission[0][i])
          << sv::algorithm_name(algo) << " point " << i;
    ASSERT_EQ(run.charge.size(), base.charge.size());
    for (std::size_t c = 0; c < base.charge.size(); ++c)
      EXPECT_DOUBLE_EQ(run.charge[c], base.charge[c])
          << sv::algorithm_name(algo) << " cell " << c;
  }
}

TEST(SolverParity, AutoIsDeterministicThroughTheEngine) {
  pp::DevicePool pool(2);
  const auto a = run_width(tr::SolverAlgorithm::kAuto, 2, 2, 1, &pool);
  const auto b = run_width(tr::SolverAlgorithm::kAuto, 2, 2, 1, &pool);
  for (std::size_t i = 0; i < a.caroli[0].size(); ++i)
    EXPECT_DOUBLE_EQ(a.caroli[0][i], b.caroli[0][i]);
  for (std::size_t c = 0; c < a.charge.size(); ++c)
    EXPECT_DOUBLE_EQ(a.charge[c], b.charge[c]);
}

TEST(SolverParity, SpatialErrorsSurfaceWithoutDeadlock) {
  // cells = 1 makes every KData build throw; with width-2 groups both the
  // leaders and the spatial members must drain their protocols and the
  // error must surface on the caller.
  std::vector<df::LeadBlocks> leads{synthetic_lead(3, 12)};
  om::SweepRequest req;
  req.leads = &leads;
  req.cells = 1;
  req.potential.assign(1, 0.0);
  req.point.obc = tr::ObcAlgorithm::kDecimation;
  req.point.solver = tr::SolverAlgorithm::kSplitSolve;
  req.point.partitions = 2;
  req.energies = {{-0.5, 0.0, 0.5}};

  om::EngineConfig cfg;
  cfg.num_ranks = 4;
  cfg.ranks_per_energy_group = 2;
  pp::DevicePool pool(2);
  om::Engine engine(cfg, &pool);
  EXPECT_THROW(engine.run(req), std::invalid_argument);
}
