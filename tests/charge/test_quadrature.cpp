// Charge-quadrature registry and backend tests.
//
// The contour backend is validated against the scalar pole model: for
// G(z) = 1/(z - E0) the exact occupied density is 2 pi f(E0), so the node
// set must reproduce the Fermi function itself through the residue theorem
// — a complete end-to-end check of node placement, jacobians, Fermi
// factors, and pole residues with no transport machinery involved.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "charge/quadrature.hpp"
#include "lattice/structure.hpp"
#include "omen/simulator.hpp"
#include "transport/bands.hpp"
#include "transport/energy_grid.hpp"
#include "transport/transmission.hpp"

namespace ch = omenx::charge;
namespace lt = omenx::lattice;
namespace om = omenx::omen;
namespace tr = omenx::transport;
using omenx::numeric::cplx;

namespace {

constexpr double kPi = 3.14159265358979323846;

ch::ChargeWindow test_window(double mu_l, double mu_r) {
  ch::ChargeWindow w;
  w.mu_l = mu_l;
  w.mu_r = mu_r;
  w.kt = 0.0259;
  w.band_bottom = -6.5;
  w.grid = {-6.2, -5.6, -5.0, -4.4};
  return w;
}

// Density of the scalar pole model under a node set: GF nodes contribute
// Im(w / (z - e0)); real-axis tasks have no scalar analogue and must be
// absent for the windows these tests use.
double scalar_density(const ch::NodeSet& nodes, double e0) {
  double acc = 0.0;
  for (std::size_t i = 0; i < nodes.gf_nodes.size(); ++i)
    acc += std::imag(nodes.gf_weights[i] / (nodes.gf_nodes[i] - e0));
  return acc;
}

om::SimulationConfig chain_config(omenx::numeric::idx cells) {
  om::SimulationConfig cfg;
  lt::Structure s;
  s.cell_atoms = {{lt::Species::kLi, {0.0, 0.0, 0.0}}};
  s.cell_length = 0.5;
  s.num_cells = cells;
  s.name = "chain";
  cfg.structure = s;
  cfg.build.cutoff_nm = 1.0;
  cfg.point.obc = tr::ObcAlgorithm::kShiftInvert;
  cfg.point.solver = tr::SolverAlgorithm::kBlockLU;
  return cfg;
}

}  // namespace

// --- registry --------------------------------------------------------------

TEST(QuadratureRegistry, BuiltinsAreRegistered) {
  const auto names = ch::registered_quadratures();
  EXPECT_NE(std::find(names.begin(), names.end(), "real_grid"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "contour"), names.end());
  EXPECT_STREQ(ch::make_quadrature("real_grid")->name(), "real_grid");
  EXPECT_STREQ(ch::make_quadrature("contour")->name(), "contour");
  EXPECT_STREQ(
      ch::make_quadrature(ch::QuadratureAlgorithm::kRealGrid)->name(),
      "real_grid");
  EXPECT_STREQ(ch::make_quadrature(ch::QuadratureAlgorithm::kContour)->name(),
               "contour");
  EXPECT_THROW(ch::make_quadrature("no_such_backend"), std::invalid_argument);
}

TEST(QuadratureRegistry, CapabilityBits) {
  EXPECT_EQ(
      ch::quadrature_algorithm_capabilities(ch::QuadratureAlgorithm::kRealGrid),
      0u);
  const unsigned contour =
      ch::quadrature_algorithm_capabilities(ch::QuadratureAlgorithm::kContour);
  EXPECT_TRUE(contour & ch::kUsesComplexPlane);
  EXPECT_TRUE(contour & ch::kSplitsWindows);
}

TEST(QuadratureRegistry, CustomRegistrationWins) {
  ch::register_quadrature("custom_contour", [] {
    return ch::make_quadrature(ch::QuadratureAlgorithm::kContour);
  });
  const auto names = ch::registered_quadratures();
  EXPECT_NE(std::find(names.begin(), names.end(), "custom_contour"),
            names.end());
  EXPECT_STREQ(ch::make_quadrature("custom_contour")->name(), "contour");
}

// --- Gauss-Legendre --------------------------------------------------------

TEST(GaussLegendre, NodesAscendAndWeightsSumToTwo) {
  for (int n : {1, 2, 5, 16, 64}) {
    const auto gl = ch::gauss_legendre(n);
    ASSERT_EQ(gl.nodes.size(), static_cast<std::size_t>(n));
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      if (i > 0) EXPECT_GT(gl.nodes[i], gl.nodes[i - 1]);
      EXPECT_GT(gl.weights[i], 0.0);
      sum += gl.weights[i];
    }
    EXPECT_NEAR(sum, 2.0, 1e-13);
  }
  EXPECT_THROW(ch::gauss_legendre(0), std::invalid_argument);
}

TEST(GaussLegendre, ExactForPolynomialsUpToDegree2nMinus1) {
  // n-point Gauss integrates x^k exactly for k <= 2n-1:
  // int_{-1}^{1} x^k dx = 2/(k+1) for even k, 0 for odd.
  for (int n : {2, 4, 7}) {
    const auto gl = ch::gauss_legendre(n);
    for (int k = 0; k <= 2 * n - 1; ++k) {
      double acc = 0.0;
      for (int i = 0; i < n; ++i)
        acc += gl.weights[i] * std::pow(gl.nodes[i], k);
      const double exact = (k % 2 == 0) ? 2.0 / (k + 1.0) : 0.0;
      EXPECT_NEAR(acc, exact, 1e-12) << "n=" << n << " k=" << k;
    }
  }
}

// --- real_grid backend -----------------------------------------------------

TEST(RealGridQuadrature, ReproducesTrapezoidTimesFermiExactly) {
  const auto win = test_window(-5.1, -5.3);
  const auto nodes =
      ch::make_quadrature(ch::QuadratureAlgorithm::kRealGrid)->build(win);
  ASSERT_EQ(nodes.energies, win.grid);
  EXPECT_TRUE(nodes.gf_nodes.empty());
  const auto w = tr::trapezoid_weights(win.grid);
  ASSERT_EQ(nodes.weight_l.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    // Bit-identical products in the same order as the pre-registry path.
    EXPECT_DOUBLE_EQ(nodes.weight_l[i],
                     w[i] * tr::fermi(win.grid[i], win.mu_l, win.kt));
    EXPECT_DOUBLE_EQ(nodes.weight_r[i],
                     w[i] * tr::fermi(win.grid[i], win.mu_r, win.kt));
  }
}

TEST(RealGridQuadrature, RejectsDegenerateGrids) {
  auto quad = ch::make_quadrature(ch::QuadratureAlgorithm::kRealGrid);
  auto win = test_window(-5.1, -5.1);
  win.grid = {-5.0};
  EXPECT_THROW(quad->build(win), std::invalid_argument);
  win.grid = {-5.0, -5.0};
  EXPECT_THROW(quad->build(win), std::invalid_argument);
  win.grid = {-5.0, -5.5};
  EXPECT_THROW(quad->build(win), std::invalid_argument);
}

// --- contour backend: the scalar pole model --------------------------------

TEST(ContourQuadrature, ScalarPoleReproducesFermiFunction) {
  const auto win = test_window(-5.1, -5.1);
  const auto quad = ch::make_quadrature(ch::QuadratureAlgorithm::kContour);
  // The default rule (128 points) sits at ~2e-7 absolute error; 256 points
  // is converged to roundoff.
  const auto dflt = quad->build(win);
  EXPECT_TRUE(dflt.energies.empty());  // equilibrium: no real remainder
  EXPECT_GE(dflt.gf_nodes.size(), 100u);
  ch::QuadratureOptions tight;
  tight.contour_points = 256;
  const auto nodes = quad->build(win, tight);
  // Deep state, band-edge-ish state, states bracketing mu by a few kT, and
  // a state far above the window (f ~ 0, pole outside the contour).
  for (const double e0 : {-6.3, -5.8, -5.2, -5.1, -5.05, -4.0}) {
    const double exact = 2.0 * kPi * tr::fermi(e0, win.mu_l, win.kt);
    EXPECT_NEAR(scalar_density(dflt, e0), exact, 1e-6) << "E0=" << e0;
    EXPECT_NEAR(scalar_density(nodes, e0), exact, 1e-10) << "E0=" << e0;
  }
}

TEST(ContourQuadrature, InvariantUnderBandBottomShift) {
  // Any anchor below the spectrum encloses the same poles: moving EB must
  // not change the integral (this is what lets the Simulator quantize the
  // potential-dependent anchor for cache stability).
  auto win = test_window(-5.1, -5.1);
  const auto quad = ch::make_quadrature(ch::QuadratureAlgorithm::kContour);
  ch::QuadratureOptions tight;
  tight.contour_points = 256;  // converged: isolates the anchor dependence
  const auto a = quad->build(win, tight);
  win.band_bottom -= 0.37;
  const auto b = quad->build(win, tight);
  for (const double e0 : {-6.3, -5.4, -5.1}) {
    EXPECT_NEAR(scalar_density(a, e0), scalar_density(b, e0), 1e-9)
        << "E0=" << e0;
  }
}

TEST(ContourQuadrature, ConvergesGeometricallyInNodeCount) {
  const auto win = test_window(-5.1, -5.1);
  const auto quad = ch::make_quadrature(ch::QuadratureAlgorithm::kContour);
  const double e0 = -5.6;
  const double exact = 2.0 * kPi * tr::fermi(e0, win.mu_l, win.kt);
  double prev = 1e300;
  for (int np : {32, 64, 128, 256}) {
    ch::QuadratureOptions opt;
    opt.contour_points = np;
    const double err =
        std::abs(scalar_density(quad->build(win, opt), e0) - exact);
    EXPECT_LT(err, 0.5 * prev) << "np=" << np;
    prev = err;
  }
  EXPECT_LT(prev, 1e-9);
}

TEST(ContourQuadrature, BiasWindowStaysOnRealAxis) {
  // mu_l != mu_r: the disputed window keeps real-axis tasks whose weights
  // are the occupation differences f_c - f_min — zero at the left contact
  // for mu_l = mu_min, positive for the other.
  auto win = test_window(-5.3, -5.0);
  win.grid.clear();
  for (double e = -6.4; e <= -4.3; e += 0.01) win.grid.push_back(e);
  const auto nodes =
      ch::make_quadrature(ch::QuadratureAlgorithm::kContour)->build(win);
  ASSERT_GE(nodes.energies.size(), 2u);
  const double lo = -5.3 - 30.0 * win.kt;
  const double hi = -5.0 + 30.0 * win.kt;
  for (std::size_t i = 0; i < nodes.energies.size(); ++i) {
    EXPECT_GE(nodes.energies[i], lo);
    EXPECT_LE(nodes.energies[i], hi);
    // mu_l = mu_min here, so the source weight vanishes identically and the
    // drain weight is non-negative.
    EXPECT_DOUBLE_EQ(nodes.weight_l[i], 0.0);
    EXPECT_GE(nodes.weight_r[i], 0.0);
  }
  // The drain weights integrate f(mu_r) - f(mu_l): summed over the window
  // this is ~ (mu_r - mu_l) for a wide-enough grid.
  double sum = 0.0;
  for (const double w : nodes.weight_r) sum += w;
  EXPECT_NEAR(sum, 0.3, 1e-3);
}

TEST(ContourQuadrature, RejectsUnusableWindows) {
  const auto quad = ch::make_quadrature(ch::QuadratureAlgorithm::kContour);
  auto win = test_window(-5.1, -5.1);
  win.kt = 0.0;
  EXPECT_THROW(quad->build(win), std::invalid_argument);
  win = test_window(-5.1, -5.1);
  ch::QuadratureOptions opt;
  opt.contour_points = 3;
  EXPECT_THROW(quad->build(win, opt), std::invalid_argument);
  opt = {};
  opt.num_poles = 0;
  EXPECT_THROW(quad->build(win, opt), std::invalid_argument);
}

// --- Simulator integration -------------------------------------------------

TEST(SimulatorCharge, DegenerateGridsThrowAndEngineDrains) {
  om::Simulator sim(chain_config(6));
  const auto win = tr::band_window(sim.bands(9));
  const double mu = 0.5 * (win.emin + win.emax);
  std::vector<double> grid;
  for (double e = win.emin - 0.3; e <= mu + 0.4; e += 0.02) grid.push_back(e);

  // The validation bugfix: bad grids must throw std::invalid_argument up
  // front instead of feeding NaNs into the SCF loop.
  EXPECT_THROW(sim.charge_density({}, mu, mu, nullptr), std::invalid_argument);
  EXPECT_THROW(sim.charge_density({mu}, mu, mu, nullptr),
               std::invalid_argument);
  EXPECT_THROW(sim.charge_density({mu, mu}, mu, mu, nullptr),
               std::invalid_argument);
  EXPECT_THROW(sim.charge_density({mu, mu - 0.5}, mu, mu, nullptr),
               std::invalid_argument);

  // Regression: the engine must drain cleanly past the throws — the next
  // sweep on the same Simulator matches a fresh instance bit-for-bit.
  const auto after = sim.charge_density(grid, mu, mu, nullptr);
  om::Simulator fresh(chain_config(6));
  const auto expect = fresh.charge_density(grid, mu, mu, nullptr);
  ASSERT_EQ(after.size(), expect.size());
  for (std::size_t i = 0; i < after.size(); ++i)
    EXPECT_DOUBLE_EQ(after[i], expect[i]);
}

TEST(SimulatorCharge, ContourMatchesRealGridOnChainDevice) {
  // End-to-end through the engine: the contour's Green's-function nodes
  // must land on the same per-cell charge as the dense real-axis
  // wave-function integration, to within the *real grid's* trapezoid error
  // (the contour is converged orders of magnitude tighter).
  om::Simulator sim(chain_config(8));
  const auto win = tr::band_window(sim.bands(9));
  const double mu = 0.5 * (win.emin + win.emax);
  std::vector<double> grid;
  for (double e = win.emin - 0.4; e <= mu + 0.8; e += 0.002) grid.push_back(e);
  std::vector<double> barrier(8, 0.0);
  barrier[3] = barrier[4] = 0.25;

  const auto real = sim.charge_density(grid, mu, mu, &barrier);
  const auto contour =
      sim.charge_density(grid, mu, mu, &barrier,
                         ch::QuadratureAlgorithm::kContour);
  ASSERT_EQ(contour.size(), real.size());
  for (std::size_t i = 0; i < real.size(); ++i)
    EXPECT_NEAR(contour[i], real[i], 2e-2) << "cell " << i;
  // The solve-count win that motivates the backend.
  EXPECT_LT(sim.last_sweep_stats().tasks_total,
            static_cast<omenx::numeric::idx>(grid.size()) / 5);
  EXPECT_EQ(sim.last_sweep_stats().tasks_greens,
            sim.last_sweep_stats().tasks_total);
}
